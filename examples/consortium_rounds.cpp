// A consortium blockchain in operation: 30 nodes with the paper's skewed
// power distribution run Themis on the simulated 20 Mbps gossip network.
// The example shows the two things a consortium operator cares about:
//
//   1. Equality/unpredictability converging epoch by epoch (the Fig. 4/5
//      story at readable scale), and
//   2. governance: a new member joining and a misbehaving member being
//      removed through the NodeSetContract (§IV-C), with the resulting
//      D_base rescale factor.
//
//   build/examples/consortium_rounds
#include <cstdio>

#include "nodeset/contract.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"

using namespace themis;

int main() {
  std::printf("consortium_rounds: 30-node Themis consortium\n\n");

  sim::PoxConfig cfg;
  cfg.algorithm = core::Algorithm::kThemis;
  cfg.n_nodes = 30;
  cfg.beta = 8;
  cfg.expected_interval_s = 2.0;
  cfg.txs_per_block = 1024;
  cfg.seed = 2022;
  sim::PoxExperiment consortium(cfg);

  const std::uint64_t epochs = 6;
  std::printf("running %llu epochs of %llu blocks (beta = 8)...\n\n",
              static_cast<unsigned long long>(epochs),
              static_cast<unsigned long long>(consortium.delta()));
  consortium.run_to_height(epochs * consortium.delta());

  const auto freq_var = consortium.per_epoch_frequency_variance();
  const auto prob_var = consortium.per_epoch_probability_variance();
  std::printf("epoch | sigma_f^2 (Equality) | sigma_p^2 (Unpredictability)\n");
  for (std::size_t e = 0; e < freq_var.size(); ++e) {
    std::printf("  %2zu  |      %10.6f      |      %10.6f\n", e, freq_var[e],
                prob_var[e]);
  }
  std::printf("\nThe multiples absorb the initial 180:1 power spread: both "
              "variances fall toward the 1/n ideal.\n");

  const auto forks = consortium.fork_stats();
  std::printf("\nledger health after %.0f simulated seconds:\n",
              consortium.elapsed().to_seconds());
  std::printf("  main chain height : %llu\n",
              static_cast<unsigned long long>(consortium.reference().head_height()));
  std::printf("  throughput        : %.1f TPS\n", consortium.tps());
  std::printf("  stale rate        : %.2f%%  (longest fork: %llu blocks)\n",
              100.0 * forks.stale_rate,
              static_cast<unsigned long long>(forks.longest_fork_duration));

  // --- governance: node set update (§IV-C) --------------------------------
  std::printf("\n--- governance via NodeSetContract ---\n");
  std::vector<nodeset::NodeIdentity> identities;
  for (ledger::NodeId i = 0; i < 30; ++i) {
    identities.push_back({i, crypto::Keypair::from_node_id(i).public_key(),
                          "node" + std::to_string(i)});
  }
  nodeset::NodeSetContract contract(identities);

  // A new organization applies through member 3.
  nodeset::NodeIdentity newcomer{30, crypto::Keypair::from_node_id(30).public_key(),
                                 "newco.example"};
  const auto join = contract.propose_add(3, newcomer);
  std::printf("member 3 relayed a join proposal for node 30\n");
  for (ledger::NodeId voter = 0; voter < 30; ++voter) {
    if (contract.proposal(join).status != nodeset::ProposalStatus::open) break;
    if (voter % 2 == 0) contract.vote(join, voter, true);
  }
  std::printf("proposal %llu status: %s\n",
              static_cast<unsigned long long>(join),
              contract.proposal(join).status == nodeset::ProposalStatus::passed
                  ? "passed"
                  : "open");

  // Member 7 is caught packing invalid transactions.
  const auto removal =
      contract.propose_remove(0, 7, "packed invalid transactions at height 412");
  for (ledger::NodeId voter = 10; voter < 26; ++voter) {
    if (contract.proposal(removal).status != nodeset::ProposalStatus::open) break;
    contract.vote(removal, voter, true);
  }

  const auto activation = contract.activate_pending();
  std::printf("activated at the next round: +%zu member(s), -%zu member(s)\n",
              activation.added.size(), activation.removed.size());
  std::printf("consortium now has %zu members; D_base rescale factor "
              "n_new/n_old = %.4f (§IV-C)\n",
              contract.member_count(), activation.base_difficulty_scale);
  return 0;
}
