// A light client audits a consortium chain (the Trend-1 scenario, §I):
// an outside user who runs no consensus node syncs block headers only,
// verifies the proof-of-work of each one, follows the most-work chain, and
// checks that a specific payment is included — all without trusting the
// serving node.  Also demonstrates the state machine (account balances,
// nonce discipline) and double-spend evidence for a §IV-C removal proposal.
//
//   build/examples/light_client_audit
#include <cstdio>
#include <memory>

#include "consensus/miner.h"
#include "crypto/merkle.h"
#include "ledger/blocktree.h"
#include "ledger/light_client.h"
#include "state/double_spend.h"
#include "state/ledger_state.h"
#include "state/transfer.h"

using namespace themis;

int main() {
  std::printf("light_client_audit: header-only sync + SPV payment check\n\n");

  // --- Full node side: a small chain with real PoW and real transfers ------
  ledger::BlockTree tree;
  state::StateManager states(
      std::map<ledger::NodeId, UInt128>{{0, 10'000}, {1, 5'000}});

  ledger::BlockHash head = tree.genesis_hash();
  std::vector<std::vector<ledger::Transaction>> bodies;
  ledger::TxId audited_tx{};
  ledger::BlockHash audited_block{};

  for (std::uint64_t h = 1; h <= 6; ++h) {
    std::vector<ledger::Transaction> txs;
    txs.push_back(state::make_transfer_tx(
        0, h, static_cast<std::int64_t>(h) * 1000,
        state::Transfer{1, 100 * h, bytes_of("invoice " + std::to_string(h))}));
    txs.push_back(state::make_transfer_tx(
        1, h, static_cast<std::int64_t>(h) * 1000 + 1,
        state::Transfer{0, 10 * h, {}}));
    if (h == 4) audited_tx = txs[0].id();

    std::vector<Hash32> leaves;
    for (const auto& tx : txs) leaves.push_back(tx.id());

    ledger::BlockHeader header;
    header.height = h;
    header.prev = head;
    header.producer = static_cast<ledger::NodeId>(h % 3);
    header.difficulty = 8.0;
    header.merkle_root = crypto::merkle_root(leaves);
    header.tx_count = static_cast<std::uint32_t>(txs.size());
    header.timestamp_nanos = static_cast<std::int64_t>(h) * 1'000'000'000;
    const auto mined = consensus::RealMiner::mine(header, 0, 1u << 24);
    auto block = std::make_shared<const ledger::Block>(
        mined.value(), crypto::Signature{}, txs);
    if (h == 4) audited_block = block->id();
    tree.insert(block);
    head = block->id();
    bodies.push_back(std::move(txs));
  }
  const auto& final_state = states.state_at(tree, head);
  std::printf("full node: 6 blocks mined; balances: node0=%llu node1=%llu "
              "(supply conserved: %llu)\n",
              static_cast<unsigned long long>(final_state.balance(0).lo()),
              static_cast<unsigned long long>(final_state.balance(1).lo()),
              static_cast<unsigned long long>(final_state.total_supply().lo()));

  // --- Light client side ----------------------------------------------------
  ledger::HeaderChain light;
  std::size_t accepted = 0;
  for (const auto& id : tree.chain_to(head)) {
    if (id == tree.genesis_hash()) continue;
    if (light.submit(tree.block(id)->header()) ==
        ledger::HeaderChain::AcceptResult::accepted) {
      ++accepted;
    }
  }
  std::printf("\nlight client: synced %zu headers, best height %llu, "
              "total work %.0f\n",
              accepted, static_cast<unsigned long long>(light.best_height()),
              light.best_total_work());

  // A forged header (claims work it never did) is rejected on arrival.
  ledger::BlockHeader forged;
  forged.height = light.best_height() + 1;
  forged.prev = light.best_tip();
  forged.difficulty = 1e9;
  const auto verdict = light.submit(forged);
  std::printf("forged header rejected: %s\n",
              verdict == ledger::HeaderChain::AcceptResult::bad_pow ? "yes"
                                                                    : "NO!?");

  // SPV: prove the height-4 invoice without downloading the block.
  std::vector<Hash32> leaves;
  for (const auto& tx : bodies[3]) leaves.push_back(tx.id());
  const auto proof = crypto::merkle_prove(leaves, 0);
  std::printf("SPV inclusion of invoice-4 payment: %s (proof: %zu hashes)\n",
              light.verify_inclusion(audited_block, audited_tx, proof)
                  ? "verified"
                  : "FAILED",
              proof.size());

  // --- Double-spend evidence ------------------------------------------------
  // Node 1 equivocates: two different transfers with the same nonce.
  const auto pay_a = state::make_transfer_tx(1, 99, 0, state::Transfer{0, 500, {}});
  const auto pay_b = state::make_transfer_tx(1, 99, 0, state::Transfer{2, 500, {}});
  const auto evidence = state::find_double_spend({pay_a}, {pay_b});
  std::printf("\ndouble-spend scan across competing blocks: %s\n",
              evidence.has_value() ? evidence->describe().c_str() : "none");
  std::printf("-> attach this proof to NodeSetContract::propose_remove "
              "(§IV-C).\n");
  return 0;
}
