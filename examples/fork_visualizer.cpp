// Fork visualizer: renders a node's block tree as ASCII and annotates which
// chain each main-chain rule (longest / GHOST / GEOST) selects.
//
// With no arguments it runs a short 16-node Themis simulation and visualizes
// the reference node's tree; pass a seed to explore other runs:
//
//   build/examples/fork_visualizer [seed]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "consensus/forkchoice.h"
#include "core/geost.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"

using namespace themis;

namespace {

void render(const ledger::BlockTree& tree, const ledger::BlockHash& node,
            const std::string& indent, bool last,
            const std::map<ledger::BlockHash, std::string, std::less<>>& tags) {
  std::string line = indent;
  if (!indent.empty()) line += last ? "`-- " : "|-- ";
  const auto block = tree.block(node);
  line += "h" + std::to_string(block->height());
  if (block->producer() != ledger::kNoNode) {
    line += " (node " + std::to_string(block->producer()) + ")";
  } else {
    line += " (genesis)";
  }
  line += " " + to_hex(node).substr(0, 8);
  const auto tag = tags.find(node);
  if (tag != tags.end()) line += "   <== " + tag->second;
  std::printf("%s\n", line.c_str());

  const auto& children = tree.children(node);
  for (std::size_t i = 0; i < children.size(); ++i) {
    render(tree, children[i], indent + (indent.empty() ? "" : (last ? "    " : "|   ")),
           i + 1 == children.size(), tags);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("fork_visualizer: 16-node Themis run, seed %llu\n\n",
              static_cast<unsigned long long>(seed));

  sim::PoxConfig cfg;
  cfg.algorithm = core::Algorithm::kThemis;
  cfg.n_nodes = 16;
  cfg.hash_rates = sim::uniform_power(16, 100.0);
  cfg.beta = 4;
  cfg.expected_interval_s = 1.0;  // fast blocks -> visible forks
  cfg.link.min_delay = SimTime::millis(300);
  cfg.txs_per_block = 0;
  cfg.seed = seed;
  sim::PoxExperiment exp(cfg);
  exp.run_to_height(24);

  const auto& tree = exp.reference().tree();

  consensus::LongestChainRule longest;
  consensus::GhostRule ghost;
  core::GeostRule geost(16);
  const auto start = tree.genesis_hash();
  std::map<ledger::BlockHash, std::string, std::less<>> tags;
  const auto mark = [&](const ledger::BlockHash& head, const std::string& rule) {
    auto& tag = tags[head];
    tag = tag.empty() ? rule : tag + ", " + rule;
  };
  mark(longest.choose_head(tree, start), "longest");
  mark(ghost.choose_head(tree, start), "GHOST");
  mark(geost.choose_head(tree, start), "GEOST");

  render(tree, start, "", true, tags);

  const auto stats = exp.fork_stats();
  std::printf("\n%llu blocks, %llu on the GEOST main chain, stale rate %.1f%%\n",
              static_cast<unsigned long long>(stats.total_blocks),
              static_cast<unsigned long long>(stats.main_chain_blocks),
              100.0 * stats.stale_rate);
  std::printf("%llu fork run(s); longest spans %llu height(s)\n",
              static_cast<unsigned long long>(stats.fork_count),
              static_cast<unsigned long long>(stats.longest_fork_duration));
  std::printf("\nTip: rerun with a different seed to see GHOST and GEOST "
              "disagree on a weight tie.\n");
  return 0;
}
