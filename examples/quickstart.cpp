// Quickstart: a four-member consortium running Themis end to end on the
// REAL code paths — actual SHA-256d proof-of-work, Schnorr header signatures,
// the full §III validation pipeline, the Eq. 6 difficulty table, and the
// GEOST main-chain rule.  No simulator, no shortcuts: everything a real
// deployment would execute per block runs here (at a low difficulty so it
// finishes instantly).
//
//   build/examples/quickstart
#include <cstdio>
#include <memory>

#include "consensus/miner.h"
#include "core/adaptive_difficulty.h"
#include "core/geost.h"
#include "crypto/merkle.h"
#include "crypto/schnorr.h"
#include "ledger/blocktree.h"
#include "ledger/txpool.h"
#include "ledger/validation.h"
#include "nodeset/contract.h"

using namespace themis;

namespace {

constexpr std::size_t kMembers = 4;
constexpr std::uint64_t kDelta = 8;  // tiny epochs so the demo shows an update

struct Member {
  ledger::NodeId id;
  crypto::Keypair keys;
};

}  // namespace

int main() {
  std::printf("Themis quickstart: 4-member consortium, real PoW + signatures\n\n");

  // 1. Consortium membership: identities registered in the NodeSetContract.
  std::vector<Member> members;
  std::vector<nodeset::NodeIdentity> identities;
  for (ledger::NodeId i = 0; i < kMembers; ++i) {
    members.push_back({i, crypto::Keypair::from_node_id(i)});
    identities.push_back({i, members.back().keys.public_key(),
                          "node" + std::to_string(i) + ".consortium.example"});
  }
  nodeset::NodeSetContract contract(identities);
  std::printf("consortium formed with %zu members\n", contract.member_count());

  // 2. The shared difficulty policy (Eq. 6/7).  Low H_0 keeps real mining
  //    instant; every node would derive this same table from the chain.
  core::AdaptiveConfig adaptive;
  adaptive.n_nodes = kMembers;
  adaptive.delta = kDelta;
  adaptive.expected_interval_s = 1.0;
  adaptive.h0 = 4.0;
  core::AdaptiveDifficulty difficulty(adaptive);
  std::printf("basic difficulty D_base^0 = %.0f (Eq. 7: I0*n*H0)\n\n",
              difficulty.initial_base_difficulty());

  // 3. A transaction pool fed by the members.
  ledger::TxPool pool;
  for (std::uint64_t i = 0; i < 64; ++i) {
    pool.add(ledger::Transaction(static_cast<ledger::NodeId>(i % kMembers), i,
                                 static_cast<std::int64_t>(i) * 100,
                                 bytes_of("transfer #" + std::to_string(i))));
  }
  std::printf("transaction pool primed with %zu canonical 512-byte txs\n\n",
              pool.size());

  // 4. Mine two epochs of blocks.  Producers rotate unevenly on purpose so
  //    the epoch-1 difficulty table visibly adjusts.
  ledger::BlockTree tree;
  core::GeostRule geost(kMembers);
  ledger::BlockHash head = tree.genesis_hash();

  const ledger::ValidationContext ctx{
      .public_key =
          [&](ledger::NodeId id) { return contract.key_of(id); },
      .expected_difficulty =
          [&](ledger::NodeId producer, const ledger::BlockHash& parent)
          -> std::optional<double> {
        if (!tree.contains(parent)) return std::nullopt;
        return difficulty.difficulty_for(tree, parent, producer);
      },
      .parent_height =
          [&](const ledger::BlockHash& parent) -> std::optional<std::uint64_t> {
        if (!tree.contains(parent)) return std::nullopt;
        return tree.height(parent);
      },
  };

  for (std::uint64_t round = 0; round < 2 * kDelta; ++round) {
    // Node election: an unequal rotation — node 0 wins half the rounds.
    const Member& producer = members[(round % 2 == 0) ? 0 : 1 + (round / 2) % 3];

    ledger::BlockHeader header;
    header.height = tree.height(head) + 1;
    header.prev = head;
    header.producer = producer.id;
    header.epoch = difficulty.epoch_for(tree, head);
    header.difficulty = difficulty.difficulty_for(tree, head, producer.id);
    header.timestamp_nanos = static_cast<std::int64_t>(round) * 1'000'000'000;

    auto txs = pool.select(2);
    header.tx_count = static_cast<std::uint32_t>(txs.size());
    std::vector<Hash32> leaves;
    for (const auto& tx : txs) leaves.push_back(tx.id());
    header.merkle_root = crypto::merkle_root(leaves);

    // Solve the real puzzle: grind sha256d(header) below T_0 / D_i.
    const auto mined = consensus::RealMiner::mine(header, 0, 1u << 24);
    if (!mined) {
      std::printf("round %2llu: mining budget exhausted (unexpected)\n",
                  static_cast<unsigned long long>(round));
      return 1;
    }
    const crypto::Signature signature = producer.keys.sign(mined->hash());
    auto block =
        std::make_shared<const ledger::Block>(*mined, signature, std::move(txs));

    // Receiver-side §III pipeline: membership, signature, difficulty, PoW,
    // merkle commitment, transactions.
    const ledger::BlockCheck verdict = ledger::validate_block(*block, ctx);
    if (verdict != ledger::BlockCheck::ok) {
      std::printf("round %2llu: block rejected (%s)\n",
                  static_cast<unsigned long long>(round),
                  std::string(ledger::to_string(verdict)).c_str());
      return 1;
    }
    std::vector<ledger::TxId> confirmed;
    for (const auto& tx : block->transactions()) confirmed.push_back(tx.id());
    pool.remove(confirmed);

    tree.insert(block);
    head = geost.choose_head(tree, tree.genesis_hash());

    std::printf(
        "round %2llu: node %u mined height %llu  D=%6.1f nonce=%-8llu id=%.16s\n",
        static_cast<unsigned long long>(round), producer.id,
        static_cast<unsigned long long>(block->height()), mined->difficulty,
        static_cast<unsigned long long>(mined->nonce),
        to_hex(block->id()).c_str());
  }

  // 5. Show the self-adaptive adjustment: after epoch 0, node 0 (which won
  //    half the blocks) gets a proportionally higher difficulty multiple.
  const auto& table = difficulty.table_for(tree, head);
  std::printf("\nepoch %u difficulty multiples (Eq. 6):\n", table.epoch);
  for (ledger::NodeId i = 0; i < kMembers; ++i) {
    std::printf("  node %u: m_i = %.3f  ->  D_i = %.1f\n", i,
                table.multiples[i], table.multiples[i] * table.base_difficulty);
  }

  std::printf("\nmain chain (GEOST): height %llu, %zu blocks, pool has %zu txs left\n",
              static_cast<unsigned long long>(tree.height(head)),
              tree.chain_to(head).size(), pool.size());
  std::printf("storage overhead per epoch (§VI-C): %zu bytes network-wide\n",
              difficulty.storage_overhead_bytes_per_epoch());
  return 0;
}
