// Attack scenarios side by side (§VI-B, §VII-D Fig. 7):
//
//   1. Single-point attacks on block producers: 20% of the nodes are
//      "vulnerable" — whenever they are elected, their block is suppressed.
//      Themis sails through (other miners continue the round); PBFT burns a
//      view-change timeout whenever a vulnerable replica leads.
//   2. A 51%-style private-chain attack: an attacker forks 15 blocks deep and
//      reveals a shorter private chain; GEOST's weight rule keeps the buried
//      prefix (Proposition 2).
//
//   build/examples/attack_simulation
#include <cstdio>
#include <numeric>

#include "consensus/wire.h"
#include "core/adaptive_difficulty.h"
#include "sim/experiment.h"

using namespace themis;

namespace {

double themis_tps(double vulnerable_ratio) {
  sim::PoxConfig cfg;
  cfg.algorithm = core::Algorithm::kThemis;
  cfg.n_nodes = 30;
  cfg.beta = 8;
  cfg.txs_per_block = 1024;
  cfg.vulnerable_ratio = vulnerable_ratio;
  cfg.seed = 99;
  sim::PoxExperiment exp(cfg);
  exp.run_to_height(150);
  return exp.tps();
}

sim::PbftResult pbft_run(double vulnerable_ratio) {
  sim::PbftScenario scenario;
  scenario.n_nodes = 30;
  scenario.pbft.batch_size = 1024;
  scenario.pbft.base_timeout = SimTime::seconds(3.0);
  scenario.vulnerable_ratio = vulnerable_ratio;
  scenario.duration = SimTime::seconds(240);
  scenario.seed = 99;
  return sim::run_pbft(scenario);
}

}  // namespace

int main() {
  std::printf("attack_simulation: producer suppression and private chains\n\n");

  // --- 1. vulnerable block producers ---------------------------------------
  std::printf("[1] single-point attacks on elected producers (n=30)\n");
  const double themis_clean = themis_tps(0.0);
  const double themis_attacked = themis_tps(0.20);
  const auto pbft_clean = pbft_run(0.0);
  const auto pbft_attacked = pbft_run(0.20);

  std::printf("    Themis TPS: %7.1f -> %7.1f  (%.1f%% retained)\n",
              themis_clean, themis_attacked,
              100.0 * themis_attacked / themis_clean);
  std::printf("    PBFT   TPS: %7.1f -> %7.1f  (%.1f%% retained, %llu view changes)\n\n",
              pbft_clean.tps, pbft_attacked.tps,
              pbft_clean.tps > 0 ? 100.0 * pbft_attacked.tps / pbft_clean.tps : 0.0,
              static_cast<unsigned long long>(pbft_attacked.view_changes));

  // --- 2. private-chain (51%-style) attack ----------------------------------
  std::printf("[2] private-chain reveal against a GEOST network (n=24)\n");
  sim::PoxConfig cfg;
  cfg.algorithm = core::Algorithm::kThemis;
  cfg.n_nodes = 24;
  cfg.beta = 8;
  cfg.txs_per_block = 0;
  cfg.seed = 7;
  sim::PoxExperiment exp(cfg);
  exp.run_to_height(60);

  const auto chain = exp.reference().main_chain();
  const auto fork_point = chain[chain.size() - 16];  // fork 15 blocks deep
  const auto buried = chain[chain.size() - 15];

  // The attacker (node 23) mined privately at under half the honest rate:
  // 9 blocks while the honest chain grew 15.
  core::AdaptiveConfig adaptive;
  adaptive.n_nodes = cfg.n_nodes;
  adaptive.delta = exp.delta();
  adaptive.expected_interval_s = cfg.expected_interval_s;
  adaptive.h0 = cfg.h0;
  adaptive.initial_base_difficulty =
      cfg.expected_interval_s *
      std::accumulate(exp.hash_rates().begin(), exp.hash_rates().end(), 0.0);
  core::AdaptiveDifficulty forger(adaptive);

  ledger::BlockHash parent = fork_point;
  for (int i = 0; i < 9; ++i) {
    ledger::BlockHeader h;
    h.height = exp.reference().tree().height(parent) + 1;
    h.prev = parent;
    h.producer = 23;
    h.epoch = forger.epoch_for(exp.reference().tree(), parent);
    h.difficulty = forger.difficulty_for(exp.reference().tree(), parent, 23);
    h.timestamp_nanos = exp.elapsed().count_nanos();
    h.nonce = 0xbad0000 + static_cast<std::uint64_t>(i);
    auto block = std::make_shared<const ledger::Block>(
        h, crypto::Signature{}, std::vector<ledger::Transaction>{});
    exp.network().broadcast(23, consensus::kBlockAnnounce, block->size_bytes(),
                            ledger::BlockPtr(block));
    // Let the forged block propagate before extending it: the next header's
    // height/difficulty are read from the honest reference view.
    exp.simulation().run_until(exp.elapsed() + SimTime::seconds(2.0));
    parent = block->id();
  }
  exp.simulation().run_until(exp.elapsed() + SimTime::seconds(20.0));

  std::size_t reorged = 0;
  for (std::size_t i = 0; i < exp.size(); ++i) {
    if (!exp.node(i).tree().is_ancestor(buried, exp.node(i).head())) ++reorged;
  }
  std::printf("    attacker revealed 9 private blocks against 15 honest ones\n");
  std::printf("    nodes reorged off the buried block: %zu of %zu\n", reorged,
              exp.size());
  std::printf("    -> Proposition 2: the buried prefix is %s\n",
              reorged == 0 ? "safe" : "COMPROMISED (unexpected!)");
  return reorged == 0 ? 0 : 1;
}
