// themis-cli: command-line client for a themis-noded JSON-RPC endpoint.
//
//   themis-cli submit --from=1 --to=2 --amount=50 --node=127.0.0.1:9200
//   themis-cli submit --from=1 --to=2 --amount=50 --wait   # poll until confirmed
//   themis-cli tx --id=<64-char hex>
//   themis-cli balance --account=2
//   themis-cli head | status | metrics
//   themis-cli block --height=3   (or --hash=<hex>)
//
// Every command prints the JSON-RPC result (or error) as one JSON line on
// stdout.  Exit codes: 0 ok, 1 transport failure, 2 usage error, 3 the node
// answered with a JSON-RPC error (e.g. a rejected transaction).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/uint128.h"
#include "finality/aggregation.h"
#include "rpc/http_client.h"
#include "rpc/json.h"
#include "state/authstate/merkle_state.h"

namespace {

constexpr std::string_view kUsage =
    "themis-cli <command> [flags]\n"
    "commands:\n"
    "  submit    --from=<id> --to=<id> --amount=<n> [--memo=<s>] [--nonce=<n>]\n"
    "            or --raw=<hex of signed tx>; add --wait to poll until the\n"
    "            transaction is confirmed (--timeout=<sec>, default 30)\n"
    "  tx        --id=<hex>          transaction status\n"
    "  balance   --account=<id>      balance + next nonce; add --prove to\n"
    "            fetch a Merkle inclusion proof and verify it locally\n"
    "            against the head state root (prints VERIFIED or FAILED)\n"
    "  head                          current head hash + height\n"
    "  block     --hash=<hex> | --height=<n>\n"
    "  checkpoint [--height=<n>]     finality certificate at a checkpoint\n"
    "            height (latest when omitted); add --validators=<n> to\n"
    "            re-verify the aggregate signature offline against the\n"
    "            deterministic consortium keys (prints VERIFIED or FAILED)\n"
    "  status                        node summary\n"
    "  metrics                       chain/tx/p2p/rpc counters\n"
    "  watch     live dashboard: polls /metrics and prints height, pool\n"
    "            depth, peers, confirmed-TPS deltas and stage p50/p99 once\n"
    "            per tick (--interval=<sec>, default 2; --count=<n> ticks,\n"
    "            0 = until interrupted)\n"
    "common flags:\n"
    "  --node=<host:port>   RPC endpoint (default 127.0.0.1:9200)\n";

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 9200;
};

Endpoint parse_endpoint(std::string_view spec) {
  Endpoint ep;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos) {
    ep.host = std::string(spec);
  } else {
    ep.host = std::string(spec.substr(0, colon));
    ep.port = static_cast<std::uint16_t>(
        std::strtoul(std::string(spec.substr(colon + 1)).c_str(), nullptr, 10));
  }
  return ep;
}

/// One JSON-RPC call; exits the process on transport failure.
themis::rpc::Json call(themis::rpc::HttpClient& client,
                       const std::string& method, themis::rpc::Json params) {
  themis::rpc::Json request;
  request.set("jsonrpc", "2.0");
  request.set("id", std::uint64_t{1});
  request.set("method", method);
  request.set("params", std::move(params));
  const auto result = client.post("/", request.dump());
  if (!result.has_value()) {
    std::cerr << "error: cannot reach node\n";
    std::exit(1);
  }
  try {
    return themis::rpc::Json::parse(result->body);
  } catch (const themis::rpc::JsonError& e) {
    std::cerr << "error: bad response: " << e.what() << "\n";
    std::exit(1);
  }
}

/// Print the result (or error) and return the process exit code.
int finish(const themis::rpc::Json& response) {
  if (response.has("error")) {
    std::cout << response["error"].dump() << "\n";
    return 3;
  }
  std::cout << response["result"].dump() << "\n";
  return 0;
}

/// `watch`: poll GET /metrics and render one dashboard line per tick —
/// height, peers, pool depth, confirmed/submitted counters with per-second
/// deltas, and the verify/e2e stage latencies the node estimates from its
/// live histograms.  Designed to be greppable rather than a full-screen UI,
/// so it works under tee, CI logs and scripts alike.
int watch_loop(themis::rpc::HttpClient& client, std::uint64_t interval_sec,
               std::uint64_t count) {
  using themis::rpc::Json;
  bool have_prev = false;
  double prev_confirmed = 0.0;
  double prev_submitted = 0.0;
  auto prev_when = std::chrono::steady_clock::now();
  for (std::uint64_t tick = 0; count == 0 || tick < count; ++tick) {
    if (tick > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval_sec));
    }
    const auto result = client.get("/metrics");
    if (!result.has_value()) {
      std::cerr << "error: cannot reach node\n";
      return 1;
    }
    try {
      const Json m = Json::parse(result->body);
      const auto now = std::chrono::steady_clock::now();
      const double confirmed =
          m["tx"]["confirmed"].is_number()
              ? static_cast<double>(m["tx"]["confirmed"].as_u64())
              : 0.0;
      const double submitted =
          m["tx"]["submitted"].is_number()
              ? static_cast<double>(m["tx"]["submitted"].as_u64())
              : 0.0;
      const double dt = std::chrono::duration<double>(now - prev_when).count();
      char tps[64] = "tps=-";
      if (have_prev && dt > 0) {
        std::snprintf(tps, sizeof(tps), "tps=%.1f sub/s=%.1f",
                      (confirmed - prev_confirmed) / dt,
                      (submitted - prev_submitted) / dt);
      }
      std::string stages;
      if (m["stages"].is_object()) {
        char buf[128];
        if (m["stages"]["verify"].is_object()) {
          std::snprintf(buf, sizeof(buf), " verify_p50=%.2fms",
                        m["stages"]["verify"]["p50_ms"].as_double());
          stages += buf;
        }
        if (m["stages"]["e2e"].is_object()) {
          std::snprintf(buf, sizeof(buf), " e2e_p50=%.0fms e2e_p99=%.0fms",
                        m["stages"]["e2e"]["p50_ms"].as_double(),
                        m["stages"]["e2e"]["p99_ms"].as_double());
          stages += buf;
        }
      }
      std::string finality;
      if (m["finality"].is_object() && m["finality"]["enabled"].is_bool() &&
          m["finality"]["enabled"].as_bool()) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " fin=%llu lag=%llu",
                      static_cast<unsigned long long>(
                          m["finality"]["finalized_height"].as_u64()),
                      static_cast<unsigned long long>(
                          m["finality"]["lag"].as_u64()));
        finality = buf;
      }
      std::cout << "h=" << m["chain"]["height"].as_u64() << finality
                << " peers=" << m["p2p"]["peers"].as_u64()
                << " pool=" << m["tx"]["pool_depth"].as_u64()
                << " conf=" << static_cast<std::uint64_t>(confirmed)
                << " sub=" << static_cast<std::uint64_t>(submitted) << " "
                << tps << stages
                << " rpc_err=" << m["rpc"]["errors"].as_u64() << std::endl;
      have_prev = true;
      prev_confirmed = confirmed;
      prev_submitted = submitted;
      prev_when = now;
    } catch (const themis::rpc::JsonError& e) {
      std::cerr << "error: bad /metrics response: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  if (argc < 2 || std::string_view(argv[1]) == "--help" ||
      std::string_view(argv[1]) == "-h") {
    std::cout << kUsage;
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  const bench::ArgParser parser(argc - 1, argv + 1);

  const Endpoint ep =
      parse_endpoint(parser.value("--node").value_or("127.0.0.1:9200"));
  rpc::HttpClient client(ep.host, ep.port);

  if (command == "submit") {
    rpc::Json params;
    if (const auto raw = parser.value("--raw")) {
      params.set("raw", std::string(*raw));
    } else {
      const auto from = parser.value("--from");
      const auto to = parser.value("--to");
      const auto amount = parser.value("--amount");
      if (!from || !to || !amount) {
        std::cerr << "error: submit needs --from, --to, --amount (or --raw)\n"
                  << kUsage;
        return 2;
      }
      params.set("sender", parser.value_u64("--from", 0));
      params.set("to", parser.value_u64("--to", 0));
      // Amounts past 2^64 - 1 travel as exact decimal strings (the server
      // accepts either form); anything that fits stays a JSON number.
      const auto amount128 = UInt128::from_decimal(*amount);
      if (!amount128.has_value()) {
        std::cerr << "error: --amount must be a decimal integer < 2^128\n";
        return 2;
      }
      if (amount128->fits_u64()) {
        params.set("amount", amount128->lo());
      } else {
        params.set("amount", std::string(*amount));
      }
      if (const auto memo = parser.value("--memo")) {
        params.set("memo", std::string(*memo));
      }
      if (parser.value("--nonce")) {
        params.set("nonce", parser.value_u64("--nonce", 0));
      }
    }
    const bool wait = parser.flag("--wait");
    const std::uint64_t timeout_sec = parser.value_u64("--timeout", 30);

    const rpc::Json response = call(client, "submit_tx", std::move(params));
    if (!wait || response.has("error")) return finish(response);

    // Poll get_tx until the node reports the transaction confirmed.
    const std::string id = response["result"]["id"].as_string();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(timeout_sec);
    while (std::chrono::steady_clock::now() < deadline) {
      rpc::Json query;
      query.set("id", id);
      const rpc::Json status = call(client, "get_tx", std::move(query));
      if (status.has("error")) return finish(status);
      if (status["result"]["state"].as_string() == "confirmed") {
        return finish(status);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::cerr << "error: transaction " << id << " not confirmed within "
              << timeout_sec << "s\n";
    return 3;
  }

  if (command == "tx") {
    const auto id = parser.value("--id");
    if (!id) {
      std::cerr << "error: tx needs --id\n";
      return 2;
    }
    rpc::Json params;
    params.set("id", std::string(*id));
    return finish(call(client, "get_tx", std::move(params)));
  }

  if (command == "balance") {
    const auto account = parser.value("--account");
    if (!account) {
      std::cerr << "error: balance needs --account\n";
      return 2;
    }
    const std::uint64_t account_id = parser.value_u64("--account", 0);
    const bool prove = parser.flag("--prove");
    rpc::Json params;
    params.set("account", account_id);
    if (prove) params.set("prove", true);
    const rpc::Json response = call(client, "get_balance", std::move(params));
    if (!prove || response.has("error")) return finish(response);

    // Verify the proof locally: decode the page, find the claimed account
    // inside it, and walk the Merkle path up to the state root the node
    // advertises.  A node that misreports a balance cannot produce a path
    // that still hashes to its own committed root.
    std::cout << response["result"].dump() << "\n";
    bool ok = false;
    try {
      const rpc::Json& result = response["result"];
      const Hash32 root = hash_from_hex(result["state_root"].as_string());
      const auto balance =
          UInt128::from_decimal(result["balance"].as_string());
      if (!balance.has_value()) throw rpc::JsonError("bad balance");
      state::Account claimed;
      claimed.balance = *balance;
      claimed.next_nonce = result["next_nonce"].as_u64();
      const rpc::Json& pj = result["proof"];
      state::authstate::AccountProof proof;
      proof.page = static_cast<std::uint32_t>(pj["page"].as_u64());
      proof.page_count =
          static_cast<std::uint32_t>(pj["page_count"].as_u64());
      proof.page_bytes = from_hex(pj["page_bytes"].as_string());
      for (const rpc::Json& step : pj["steps"].as_array()) {
        proof.steps.push_back(crypto::MerkleStep{
            hash_from_hex(step["sibling"].as_string()),
            step["left"].as_bool()});
      }
      if (pj["available"].as_bool()) {
        ok = state::authstate::verify_account_proof(
            root, static_cast<std::uint32_t>(account_id), claimed, proof);
      } else {
        // Past the committed page range: the account is empty by
        // construction, provided the claim is the default state and the
        // page really lies beyond the span the root commits to.
        ok = proof.page >= proof.page_count && claimed == state::Account{};
      }
      if (ok) {
        // Cross-check the proven root against the node's status line; a
        // mismatch at the same head means the node contradicts itself.
        const rpc::Json status = call(client, "status", rpc::Json());
        if (!status.has("error") &&
            status["result"]["head"].as_string() ==
                result["head"].as_string() &&
            status["result"]["state_root"].as_string() !=
                result["state_root"].as_string()) {
          ok = false;
        }
      }
    } catch (const std::exception&) {
      ok = false;
    }
    std::cout << (ok ? "VERIFIED" : "FAILED") << "\n";
    return ok ? 0 : 3;
  }

  if (command == "block") {
    rpc::Json params;
    if (const auto hash = parser.value("--hash")) {
      params.set("hash", std::string(*hash));
    } else if (parser.value("--height")) {
      params.set("height", parser.value_u64("--height", 0));
    } else {
      std::cerr << "error: block needs --hash or --height\n";
      return 2;
    }
    return finish(call(client, "get_block", std::move(params)));
  }

  if (command == "checkpoint") {
    rpc::Json params;
    if (parser.value("--height")) {
      params.set("height", parser.value_u64("--height", 0));
    }
    const rpc::Json response = call(client, "get_checkpoint", std::move(params));
    const auto validators = parser.value("--validators");
    if (!validators || response.has("error")) return finish(response);

    // Offline verification: decode the wire certificate and check the
    // aggregate signature against the deterministic consortium keys — no
    // trust in the serving node beyond the block id it finalized.
    std::cout << response["result"].dump() << "\n";
    bool ok = false;
    try {
      const Bytes raw = from_hex(response["result"]["raw"].as_string());
      const auto cert = finality::CheckpointCertificate::decode(raw);
      const auto backend = finality::make_backend(cert.backend);
      const auto set = finality::ValidatorSet::deterministic(
          parser.value_u64("--validators", 0));
      ok = backend != nullptr && backend->verify(cert, set);
    } catch (const std::exception&) {
      ok = false;
    }
    std::cout << (ok ? "VERIFIED" : "FAILED") << "\n";
    return ok ? 0 : 3;
  }

  if (command == "watch") {
    const std::uint64_t interval = parser.value_u64("--interval", 2);
    const std::uint64_t count = parser.value_u64("--count", 0);
    return watch_loop(client, interval == 0 ? 1 : interval, count);
  }

  if (command == "head") return finish(call(client, "get_head", rpc::Json()));
  if (command == "status") return finish(call(client, "status", rpc::Json()));
  if (command == "metrics") return finish(call(client, "metrics", rpc::Json()));

  std::cerr << "error: unknown command '" << command << "'\n" << kUsage;
  return 2;
}
