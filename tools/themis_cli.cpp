// themis-cli: command-line client for a themis-noded JSON-RPC endpoint.
//
//   themis-cli submit --from=1 --to=2 --amount=50 --node=127.0.0.1:9200
//   themis-cli submit --from=1 --to=2 --amount=50 --wait   # poll until confirmed
//   themis-cli tx --id=<64-char hex>
//   themis-cli balance --account=2
//   themis-cli head | status | metrics
//   themis-cli block --height=3   (or --hash=<hex>)
//
// Every command prints the JSON-RPC result (or error) as one JSON line on
// stdout.  Exit codes: 0 ok, 1 transport failure, 2 usage error, 3 the node
// answered with a JSON-RPC error (e.g. a rejected transaction).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "rpc/http_client.h"
#include "rpc/json.h"

namespace {

constexpr std::string_view kUsage =
    "themis-cli <command> [flags]\n"
    "commands:\n"
    "  submit    --from=<id> --to=<id> --amount=<n> [--memo=<s>] [--nonce=<n>]\n"
    "            or --raw=<hex of signed tx>; add --wait to poll until the\n"
    "            transaction is confirmed (--timeout=<sec>, default 30)\n"
    "  tx        --id=<hex>          transaction status\n"
    "  balance   --account=<id>      balance + next nonce\n"
    "  head                          current head hash + height\n"
    "  block     --hash=<hex> | --height=<n>\n"
    "  status                        node summary\n"
    "  metrics                       chain/tx/p2p/rpc counters\n"
    "common flags:\n"
    "  --node=<host:port>   RPC endpoint (default 127.0.0.1:9200)\n";

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 9200;
};

Endpoint parse_endpoint(std::string_view spec) {
  Endpoint ep;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos) {
    ep.host = std::string(spec);
  } else {
    ep.host = std::string(spec.substr(0, colon));
    ep.port = static_cast<std::uint16_t>(
        std::strtoul(std::string(spec.substr(colon + 1)).c_str(), nullptr, 10));
  }
  return ep;
}

/// One JSON-RPC call; exits the process on transport failure.
themis::rpc::Json call(themis::rpc::HttpClient& client,
                       const std::string& method, themis::rpc::Json params) {
  themis::rpc::Json request;
  request.set("jsonrpc", "2.0");
  request.set("id", std::uint64_t{1});
  request.set("method", method);
  request.set("params", std::move(params));
  const auto result = client.post("/", request.dump());
  if (!result.has_value()) {
    std::cerr << "error: cannot reach node\n";
    std::exit(1);
  }
  try {
    return themis::rpc::Json::parse(result->body);
  } catch (const themis::rpc::JsonError& e) {
    std::cerr << "error: bad response: " << e.what() << "\n";
    std::exit(1);
  }
}

/// Print the result (or error) and return the process exit code.
int finish(const themis::rpc::Json& response) {
  if (response.has("error")) {
    std::cout << response["error"].dump() << "\n";
    return 3;
  }
  std::cout << response["result"].dump() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  if (argc < 2 || std::string_view(argv[1]) == "--help" ||
      std::string_view(argv[1]) == "-h") {
    std::cout << kUsage;
    return argc < 2 ? 2 : 0;
  }
  const std::string command = argv[1];
  const bench::ArgParser parser(argc - 1, argv + 1);

  const Endpoint ep =
      parse_endpoint(parser.value("--node").value_or("127.0.0.1:9200"));
  rpc::HttpClient client(ep.host, ep.port);

  if (command == "submit") {
    rpc::Json params;
    if (const auto raw = parser.value("--raw")) {
      params.set("raw", std::string(*raw));
    } else {
      const auto from = parser.value("--from");
      const auto to = parser.value("--to");
      const auto amount = parser.value("--amount");
      if (!from || !to || !amount) {
        std::cerr << "error: submit needs --from, --to, --amount (or --raw)\n"
                  << kUsage;
        return 2;
      }
      params.set("sender", parser.value_u64("--from", 0));
      params.set("to", parser.value_u64("--to", 0));
      params.set("amount", parser.value_u64("--amount", 0));
      if (const auto memo = parser.value("--memo")) {
        params.set("memo", std::string(*memo));
      }
      if (parser.value("--nonce")) {
        params.set("nonce", parser.value_u64("--nonce", 0));
      }
    }
    const bool wait = parser.flag("--wait");
    const std::uint64_t timeout_sec = parser.value_u64("--timeout", 30);

    const rpc::Json response = call(client, "submit_tx", std::move(params));
    if (!wait || response.has("error")) return finish(response);

    // Poll get_tx until the node reports the transaction confirmed.
    const std::string id = response["result"]["id"].as_string();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(timeout_sec);
    while (std::chrono::steady_clock::now() < deadline) {
      rpc::Json query;
      query.set("id", id);
      const rpc::Json status = call(client, "get_tx", std::move(query));
      if (status.has("error")) return finish(status);
      if (status["result"]["state"].as_string() == "confirmed") {
        return finish(status);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::cerr << "error: transaction " << id << " not confirmed within "
              << timeout_sec << "s\n";
    return 3;
  }

  if (command == "tx") {
    const auto id = parser.value("--id");
    if (!id) {
      std::cerr << "error: tx needs --id\n";
      return 2;
    }
    rpc::Json params;
    params.set("id", std::string(*id));
    return finish(call(client, "get_tx", std::move(params)));
  }

  if (command == "balance") {
    const auto account = parser.value("--account");
    if (!account) {
      std::cerr << "error: balance needs --account\n";
      return 2;
    }
    rpc::Json params;
    params.set("account", parser.value_u64("--account", 0));
    return finish(call(client, "get_balance", std::move(params)));
  }

  if (command == "block") {
    rpc::Json params;
    if (const auto hash = parser.value("--hash")) {
      params.set("hash", std::string(*hash));
    } else if (parser.value("--height")) {
      params.set("height", parser.value_u64("--height", 0));
    } else {
      std::cerr << "error: block needs --hash or --height\n";
      return 2;
    }
    return finish(call(client, "get_block", std::move(params)));
  }

  if (command == "head") return finish(call(client, "get_head", rpc::Json()));
  if (command == "status") return finish(call(client, "status", rpc::Json()));
  if (command == "metrics") return finish(call(client, "metrics", rpc::Json()));

  std::cerr << "error: unknown command '" << command << "'\n" << kUsage;
  return 2;
}
