#!/usr/bin/env python3
"""Prometheus text-exposition (version 0.0.4) linter.

Validates the output of a node's GET /metrics.prom endpoint:

    curl -s http://127.0.0.1:9200/metrics.prom | tools/prom_lint.py
    tools/prom_lint.py metrics.prom
    tools/prom_lint.py --require=themis_finality_height,themis_head_height

Checks, per the exposition-format spec:
  * every line is a comment, a blank line, or a `name{labels} value` sample;
  * metric and label names match the allowed grammar;
  * sample values parse as Go-style float64 (incl. +Inf/-Inf/NaN);
  * # TYPE appears at most once per metric family, before its samples,
    with a known type;
  * counter samples are non-negative;
  * histograms are well-formed: `le` buckets are cumulative (monotone
    non-decreasing in bound order), the +Inf bucket exists and equals
    `_count`, and `_sum`/`_count` are present;
  * with --require=<name,...>, every named metric family has at least one
    sample (CI gates the finality gauges this way so a silent registration
    regression fails the pipeline, not just a dashboard).

Exit status: 0 clean, 1 lint errors, 2 usage/IO error.  Used by CI after
curling a live daemon; no third-party dependencies.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    """Prometheus sample values are Go float64; returns None on garbage."""
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def base_family(name):
    """Histogram/summary series belong to the family without the suffix."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class Linter:
    def __init__(self):
        self.errors = []
        self.types = {}          # family -> declared type
        self.type_line = {}      # family -> line number of # TYPE
        self.samples = []        # (line_no, name, labels dict, value)
        self.sampled_families = set()

    def error(self, line_no, message):
        self.errors.append(f"line {line_no}: {message}")

    def lint_line(self, line_no, line):
        if line == "" or line.isspace():
            return
        if line.startswith("#"):
            self.lint_comment(line_no, line)
            return
        match = SAMPLE.match(line)
        if not match:
            self.error(line_no, f"unparseable sample line: {line!r}")
            return
        name = match.group("name")
        value = parse_value(match.group("value"))
        if value is None:
            self.error(line_no, f"bad sample value {match.group('value')!r}")
            return
        labels = {}
        raw_labels = match.group("labels")
        if raw_labels is not None:
            consumed = 0
            for pair in LABEL_PAIR.finditer(raw_labels):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            rest = raw_labels[consumed:].strip().strip(",")
            if rest:
                self.error(line_no, f"malformed label set {{{raw_labels}}}")
            for label in labels:
                if not LABEL_NAME.match(label):
                    self.error(line_no, f"bad label name {label!r}")
        family = base_family(name)
        self.sampled_families.add(family)
        self.sampled_families.add(name)
        self.samples.append((line_no, name, labels, value))

    def lint_comment(self, line_no, line):
        parts = line.split(None, 3)
        if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
            return  # free-form comment: allowed
        if len(parts) < 3:
            self.error(line_no, f"{parts[1]} without a metric name")
            return
        name = parts[2]
        if not METRIC_NAME.match(name):
            self.error(line_no, f"bad metric name in {parts[1]}: {name!r}")
            return
        if parts[1] == "TYPE":
            kind = parts[3].strip() if len(parts) > 3 else ""
            if kind not in KNOWN_TYPES:
                self.error(line_no, f"unknown TYPE {kind!r} for {name}")
            if name in self.types:
                self.error(line_no, f"duplicate TYPE for {name}")
            if name in self.sampled_families:
                self.error(line_no, f"TYPE for {name} after its samples")
            self.types[name] = kind
            self.type_line[name] = line_no

    def lint_histograms(self):
        for family, kind in self.types.items():
            if kind != "histogram":
                continue
            buckets = []   # (line_no, labels-without-le frozen, le, value)
            sums = {}
            counts = {}
            for line_no, name, labels, value in self.samples:
                if base_family(name) != family:
                    continue
                rest = frozenset(
                    (k, v) for k, v in labels.items() if k != "le")
                if name == family + "_bucket":
                    if "le" not in labels:
                        self.error(line_no, f"{name} without an le label")
                        continue
                    buckets.append((line_no, rest, labels["le"], value))
                elif name == family + "_sum":
                    sums[rest] = value
                elif name == family + "_count":
                    counts[rest] = (line_no, value)
            series = {}
            for line_no, rest, le, value in buckets:
                series.setdefault(rest, []).append((line_no, le, value))
            if not series:
                self.error(self.type_line[family],
                           f"histogram {family} has no _bucket samples")
                continue
            for rest, entries in series.items():
                bounds = []
                inf_value = None
                previous = None
                for line_no, le, value in entries:
                    if le == "+Inf":
                        inf_value = (line_no, value)
                    else:
                        bound = parse_value(le)
                        if bound is None:
                            self.error(line_no, f"bad le bound {le!r}")
                            continue
                        bounds.append((bound, line_no, value))
                bounds.sort()
                for bound, line_no, value in bounds:
                    if previous is not None and value < previous:
                        self.error(
                            line_no,
                            f"{family}_bucket le=\"{bound}\" not cumulative"
                            f" ({value} < {previous})")
                    previous = value
                if inf_value is None:
                    self.error(self.type_line[family],
                               f"histogram {family} missing the +Inf bucket")
                else:
                    line_no, value = inf_value
                    if previous is not None and value < previous:
                        self.error(line_no,
                                   f"{family} +Inf bucket below last bound")
                    if rest in counts and counts[rest][1] != value:
                        self.error(
                            line_no,
                            f"{family}: +Inf bucket ({value}) !="
                            f" _count ({counts[rest][1]})")
                if rest not in sums:
                    self.error(self.type_line[family],
                               f"histogram {family} missing _sum")
                if rest not in counts:
                    self.error(self.type_line[family],
                               f"histogram {family} missing _count")

    def lint_counters(self):
        for line_no, name, _labels, value in self.samples:
            if self.types.get(base_family(name)) == "counter" and value < 0:
                self.error(line_no, f"counter {name} is negative ({value})")

    def run(self, text, required=()):
        for line_no, line in enumerate(text.splitlines(), start=1):
            self.lint_line(line_no, line)
        self.lint_histograms()
        self.lint_counters()
        if not self.samples:
            self.errors.append("no samples found (empty exposition)")
        for family in required:
            if family not in self.sampled_families:
                self.errors.append(
                    f"required metric family {family!r} has no samples")
        return self.errors


def main(argv):
    required = []
    args = []
    for arg in argv[1:]:
        if arg.startswith("--require="):
            required.extend(
                name for name in arg[len("--require="):].split(",") if name)
        else:
            args.append(arg)
    if len(args) > 1 or (len(args) == 1 and args[0] in ("-h", "--help")):
        sys.stderr.write(__doc__)
        return 2
    if len(args) == 1:
        try:
            with open(args[0], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as err:
            sys.stderr.write(f"error: {err}\n")
            return 2
    else:
        text = sys.stdin.read()
    errors = Linter().run(text, required)
    for message in errors:
        sys.stderr.write(f"prom_lint: {message}\n")
    if errors:
        sys.stderr.write(f"prom_lint: {len(errors)} error(s)\n")
        return 1
    sys.stderr.write(
        f"prom_lint: OK ({len(text.splitlines())} lines,"
        f" {text.count('# TYPE ')} families)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
