// themis-trace: analyze a JSONL event trace written by the simulator's
// --trace=<path> flag.
//
//   themis-trace <trace.jsonl>            full summary (timelines, reorgs,
//                                         propagation percentiles, sigma_f^2)
//   themis-trace --events <trace.jsonl>   per-kind event counts only
//   themis-trace - < trace.jsonl          read from stdin
//
// The sigma_f^2 column is computed by the same metrics code the experiment
// harness uses, so it matches PoxExperiment::per_epoch_frequency_variance()
// exactly.
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_analysis.h"
#include "obs/trace_reader.h"

namespace {

int usage(std::ostream& out, int code) {
  out << "usage: themis-trace [--events] <trace.jsonl | ->\n"
         "  --events  print per-kind event counts instead of the full summary\n"
         "  -         read the trace from stdin\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  bool events_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--events") {
      events_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && (arg == "-" || arg[0] != '-')) {
      if (!path.empty()) return usage(std::cerr, 2);
      path = arg;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (path.empty()) return usage(std::cerr, 2);

  obs::ReadResult trace;
  if (path == "-") {
    trace = obs::read_trace(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "themis-trace: cannot open " << path << "\n";
      return 1;
    }
    trace = obs::read_trace(in);
  }
  if (trace.malformed_lines > 0) {
    std::cerr << "themis-trace: skipped " << trace.malformed_lines
              << " malformed line(s)\n";
  }
  if (trace.events.empty()) {
    std::cerr << "themis-trace: no events in " << path << "\n";
    return 1;
  }

  if (events_only) {
    std::map<std::string, std::uint64_t> counts;
    for (const obs::TraceEvent& event : trace.events) ++counts[event.ev];
    for (const auto& [kind, count] : counts) {
      std::cout << kind << ": " << count << "\n";
    }
    std::cout << "total: " << trace.events.size() << "\n";
    return 0;
  }

  const obs::TraceSummary summary = obs::analyze_trace(trace.events);
  obs::print_summary(std::cout, summary);
  return 0;
}
