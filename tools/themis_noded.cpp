// themis-noded: run one Themis consensus node on a real TCP network.
//
// The daemon wires the p2p subsystem (src/p2p) around the paper's consensus
// stack: GEOST fork choice by default, §III validation, real double-SHA-256
// proof of work, a durable block store under --datadir, and the framed wire
// protocol with handshake, ping/pong liveness and locator-based chain sync.
//
// A 4-node loopback network (see README "Run a local 4-node network"):
//
//   themis-noded --id=0 --nodes=4 --listen=9100 --datadir=/tmp/n0 &
//   themis-noded --id=1 --nodes=4 --listen=9101 --peer=127.0.0.1:9100 ... &
//
// Every node is both server and client: it listens, dials its --peer list
// with exponential backoff, and re-dials dropped peers, so start order does
// not matter.  SIGINT/SIGTERM (or --run-for / --stop-at-height) stop the
// node cleanly; --report and --trace expose the src/obs counters and the
// JSONL event trace the simulator benches use.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.h"
#include "common/bytes.h"
#include "consensus/difficulty.h"
#include "consensus/forkchoice.h"
#include "core/geost.h"
#include "finality/aggregation.h"
#include "obs/live/log.h"
#include "obs/observability.h"
#include "obs/report.h"
#include "p2p/node.h"
#include "rpc/gateway.h"
#include "rpc/http_server.h"

namespace {

constexpr std::string_view kUsage =
    "themis-noded [flags]\n"
    "  --id=<n>              node id within the consensus set (default 0)\n"
    "  --nodes=<n>           consensus set size (default 4)\n"
    "  --listen=<port>       TCP listen port (default 0 = ephemeral)\n"
    "  --no-listen           outbound-only node\n"
    "  --peer=<host:port>    peer to dial; repeatable\n"
    "  --datadir=<path>      durable state dir (default: memory only)\n"
    "  --difficulty=<d>      expected hashes per block (default 20000)\n"
    "  --fork-choice=<r>     geost | ghost | longest (default geost)\n"
    "  --no-mine             serve sync and relay blocks, do not mine\n"
    "  --no-signatures       skip Schnorr signing/verification\n"
    "  --ckpt-interval=<k>   checkpoint finality every k heights (default 16;\n"
    "                        0 disables the overlay; needs signatures on)\n"
    "  --finality-backend=<b>  certificate aggregation: concat | half\n"
    "                        (default concat)\n"
    "  --rpc-port=<port>     serve JSON-RPC over HTTP (default: disabled;\n"
    "                        0 picks an ephemeral port, printed at startup)\n"
    "  --genesis-fund=<n>    genesis balance per consortium account\n"
    "                        (default 1000000)\n"
    "  --snapshot-interval=<n>  write a verified state snapshot every n\n"
    "                        finalized blocks (0 = disabled); restart\n"
    "                        restores from it instead of replaying history\n"
    "  --prune               with snapshots, drop block-store records below\n"
    "                        each snapshot height (bounded disk)\n"
    "  --max-block-txs=<n>   transactions per mined block cap (default 256)\n"
    "  --seed=<u64>          rng seed for nonce start / dial jitter\n"
    "  --run-for=<sec>       stop after this many seconds (0 = until signal)\n"
    "  --stop-at-height=<h>  stop once the head reaches height h\n"
    "  --status-interval=<s> status line period in seconds (0 = quiet)\n"
    "  --log-level=<l>       debug | info | warn | error | off (default info)\n"
    "  --log-json            structured JSONL log records instead of text\n"
    "  --trace=<path>        write a JSONL event trace on exit\n"
    "  --report[=<path>]     counters report on exit (stderr or file)\n";

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void status_line(const themis::p2p::P2pNode& node) {
  namespace live = themis::obs::live;
  const auto stats = node.chain_stats();
  const auto transport = node.transport_stats();
  live::log_info(
      "noded", "status",
      {{"height", node.head_height()},
       {"head", themis::to_hex(node.head()).substr(0, 12)},
       {"peers", static_cast<std::uint64_t>(node.ready_peer_count())},
       {"mined", stats.blocks_produced},
       {"recv", stats.blocks_received},
       {"pool", static_cast<std::uint64_t>(node.pool_depth())},
       {"tx_conf", stats.txs_confirmed},
       {"bytes_in", transport.bytes_in},
       {"bytes_out", transport.bytes_out}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  const bench::ArgParser parser(argc, argv);
  if (parser.flag("--help") || parser.flag("-h")) {
    std::cout << kUsage;
    return 0;
  }

  p2p::P2pNodeConfig config;
  config.id = static_cast<ledger::NodeId>(parser.value_u64("--id", 0));
  config.n_nodes =
      static_cast<std::size_t>(parser.value_u64("--nodes", 4));
  config.listen_port =
      static_cast<std::uint16_t>(parser.value_u64("--listen", 0));
  config.listen = !parser.flag("--no-listen");
  for (const auto peer : parser.values("--peer")) {
    config.peers.emplace_back(peer);
  }
  if (const auto v = parser.value("--datadir")) config.datadir = *v;
  if (const auto v = parser.value("--difficulty")) {
    config.difficulty = std::strtod(std::string(*v).c_str(), nullptr);
  }
  config.mine = !parser.flag("--no-mine");
  config.use_signatures = !parser.flag("--no-signatures");
  config.checkpoint_interval =
      parser.value_u64("--ckpt-interval", config.checkpoint_interval);
  if (const auto v = parser.value("--finality-backend")) {
    config.finality_backend = std::string(*v);
    if (finality::make_backend(config.finality_backend) == nullptr) {
      std::cerr << "error: unknown --finality-backend '"
                << config.finality_backend << "' (concat | half)\n";
      return 2;
    }
  }
  config.rng_seed = parser.value_u64("--seed", 1 + config.id);
  config.genesis_fund = parser.value_u64("--genesis-fund", config.genesis_fund);
  config.snapshot_interval = parser.value_u64("--snapshot-interval", 0);
  config.prune = parser.flag("--prune");
  config.max_block_txs = static_cast<std::size_t>(
      parser.value_u64("--max-block-txs", config.max_block_txs));

  bool rpc_enabled = false;
  std::uint16_t rpc_port = 0;
  if (const auto v = parser.value("--rpc-port")) {
    rpc_enabled = true;
    rpc_port = static_cast<std::uint16_t>(
        std::strtoul(std::string(*v).c_str(), nullptr, 10));
  }

  const std::uint64_t run_for = parser.value_u64("--run-for", 0);
  const std::uint64_t stop_at_height = parser.value_u64("--stop-at-height", 0);
  const std::uint64_t status_interval =
      parser.value_u64("--status-interval", 5);
  std::string trace_path;
  if (const auto v = parser.value("--trace")) trace_path = *v;
  bool report = false;
  std::string report_path;
  if (const auto v = parser.flag_or_value("--report")) {
    report = true;
    report_path = *v;
  }

  std::shared_ptr<consensus::ForkChoiceRule> rule;
  const std::string fork_choice{parser.value("--fork-choice").value_or("geost")};
  if (fork_choice == "geost") {
    rule = std::make_shared<core::GeostRule>(config.n_nodes);
  } else if (fork_choice == "ghost") {
    rule = std::make_shared<consensus::GhostRule>();
  } else if (fork_choice == "longest") {
    rule = std::make_shared<consensus::LongestChainRule>();
  } else {
    std::cerr << "error: unknown fork choice '" << fork_choice << "'\n";
    return 2;
  }
  const std::string log_level_name{
      parser.value("--log-level").value_or("info")};
  const bool log_json = parser.flag("--log-json");
  parser.reject_unknown(kUsage);

  if (config.id >= config.n_nodes) {
    std::cerr << "error: --id must be < --nodes\n";
    return 2;
  }

  // Structured leveled logging: the library default is off; the daemon turns
  // it on (themis-noded is the one place ad-hoc status lines used to live).
  obs::live::Logger& logger = obs::live::Logger::global();
  logger.set_level(obs::live::log_level_from(log_level_name));
  logger.set_json(log_json);

  obs::Observability obs;
  obs.tracer.enable(!trace_path.empty());

  p2p::P2pNode node(config, rule);
  node.set_observability(&obs);
  if (!node.start()) {
    std::cerr << "error: failed to bind listen port " << config.listen_port
              << "\n";
    return 1;
  }

  // Client-facing JSON-RPC surface, started after the node so handlers can
  // always rely on a running consensus stack.
  rpc::Gateway gateway(node);
  std::unique_ptr<rpc::HttpServer> rpc_server;
  if (rpc_enabled) {
    rpc::HttpServerConfig http;
    http.port = rpc_port;
    rpc_server = std::make_unique<rpc::HttpServer>(
        http, [&gateway](const rpc::HttpRequest& request) {
          return gateway.handle(request);
        });
    if (!rpc_server->start()) {
      std::cerr << "error: failed to bind rpc port " << rpc_port << "\n";
      node.stop();
      return 1;
    }
    obs::live::log_info(
        "noded", "rpc listening",
        {{"port", static_cast<std::uint64_t>(rpc_server->port())},
         {"endpoints", "/status /metrics /metrics.prom /health"}});
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  obs::live::log_info(
      "noded", "node up",
      {{"id", static_cast<std::uint64_t>(config.id)},
       {"nodes", static_cast<std::uint64_t>(config.n_nodes)},
       {"port", static_cast<std::uint64_t>(node.listen_port())},
       {"fork_choice", rule->name()},
       {"difficulty", config.difficulty},
       {"mining", config.mine},
       {"datadir", config.datadir.empty() ? std::string("<memory>")
                                          : config.datadir.string()}});
  if (const auto replayed = node.chain_stats().store_replayed) {
    obs::live::log_info("noded", "store replayed",
                        {{"blocks", replayed}, {"height", node.head_height()}});
  }

  const auto started = std::chrono::steady_clock::now();
  auto next_status = started + std::chrono::seconds(status_interval);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto now = std::chrono::steady_clock::now();
    if (run_for > 0 && now - started >= std::chrono::seconds(run_for)) break;
    if (stop_at_height > 0 && node.head_height() >= stop_at_height) break;
    if (status_interval > 0 && now >= next_status) {
      status_line(node);
      next_status = now + std::chrono::seconds(status_interval);
    }
  }

  obs::live::log_info("noded", "stopping");
  // Snapshot counters (including the per-peer link matrix) while the peers
  // are still connected, then shut down — RPC first, so no handler races a
  // stopping node.
  node.fill_observability();
  gateway.fill_observability(obs);
  if (rpc_server != nullptr) rpc_server->stop();
  node.stop();
  status_line(node);
  if (!trace_path.empty()) {
    if (obs.tracer.write_file(trace_path)) {
      obs::live::log_info("noded", "trace written",
                          {{"path", trace_path},
                           {"events", static_cast<std::uint64_t>(
                                          obs.tracer.size())}});
    } else {
      obs::live::log_error("noded", "trace write failed",
                           {{"path", trace_path}});
    }
  }
  if (report) {
    if (report_path.empty()) {
      obs::write_report(std::cerr, obs);
    } else {
      std::ofstream out(report_path);
      if (out) {
        obs::write_report(out, obs);
        obs::live::log_info("noded", "report written",
                            {{"path", report_path}});
      } else {
        obs::live::log_error("noded", "report write failed",
                             {{"path", report_path}});
      }
    }
  }
  return 0;
}
