// Fig. 2: a block tree on which the longest chain, the chain selected by
// GHOST, and the chain selected by GEOST all differ — and the attacker's
// withheld chain displaces the main chain only under the longest-chain rule.
//
// Fully deterministic (a hand-built tree): --trials/--threads are accepted
// for bench-runner uniformity but there is no stochastic dimension to fan
// out.
#include <iostream>
#include <map>
#include <memory>

#include "bench_util.h"
#include "consensus/forkchoice.h"
#include "core/geost.h"
#include "ledger/blocktree.h"

namespace {

using namespace themis;

class Fig2Tree {
 public:
  Fig2Tree() {
    names_["genesis"] =
        std::make_shared<const ledger::Block>(ledger::Block::genesis());
  }

  void add(const std::string& name, const std::string& parent,
           ledger::NodeId producer) {
    const auto& p = names_.at(parent);
    ledger::BlockHeader h;
    h.height = p->height() + 1;
    h.prev = p->id();
    h.producer = producer;
    h.nonce = nonce_++;
    auto block = std::make_shared<const ledger::Block>(
        h, crypto::Signature{}, std::vector<ledger::Transaction>{});
    names_[name] = block;
    tree_.insert(block);
  }

  std::string name_of(const ledger::BlockHash& id) const {
    for (const auto& [name, block] : names_) {
      if (block->id() == id) return name;
    }
    return "?";
  }

  std::string chain_string(const ledger::BlockHash& head) const {
    std::string out;
    for (const auto& id : tree_.chain_to(head)) {
      if (!out.empty()) out += " -> ";
      out += name_of(id);
    }
    return out;
  }

  ledger::BlockTree& tree() { return tree_; }
  const ledger::BlockPtr& block(const std::string& name) { return names_.at(name); }

 private:
  ledger::BlockTree tree_;
  std::map<std::string, ledger::BlockPtr> names_;
  std::uint64_t nonce_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 2 — fork choice under selfish mining",
                "Jia et al., ICDCS 2022, Fig. 2 / §V-B");

  constexpr std::size_t kNodes = 6;  // node 5 is the attacker
  Fig2Tree t;
  // Round 1: one honest block.
  t.add("1", "genesis", 0);
  // Round 2: three honest blocks coexist (2A, 2B, 2C).
  t.add("2A", "1", 1);
  t.add("2B", "1", 2);
  t.add("2C", "1", 3);
  // Rounds 3-4: the 2B subtree is produced by a concentrated set, the 2C
  // subtree by a spread set — equal weights, different equality.
  t.add("3B", "2B", 1);
  t.add("4B", "3B", 1);
  t.add("3C", "2C", 4);
  t.add("4C", "3C", 0);
  // The attacker's withheld chain: longer than any honest branch.
  for (int i = 1; i <= 5; ++i) {
    t.add("att" + std::to_string(i),
          i == 1 ? std::string("genesis") : "att" + std::to_string(i - 1), 5);
  }

  consensus::LongestChainRule longest;
  consensus::GhostRule ghost;
  core::GeostRule geost(kNodes);
  const auto start = t.tree().genesis_hash();

  metrics::Table rules({"rule", "selected head", "main chain"});
  for (const auto& [name, head] :
       std::initializer_list<std::pair<std::string, ledger::BlockHash>>{
           {"longest-chain", longest.choose_head(t.tree(), start)},
           {"GHOST", ghost.choose_head(t.tree(), start)},
           {"GEOST", geost.choose_head(t.tree(), start)}}) {
    rules.add_row({name, t.name_of(head), t.chain_string(head)});
  }
  emit(rules, args);

  metrics::Table detail(
      {"subtree root", "weight", "sigma_f^2 (subtree)", "receipt order"});
  for (const std::string name : {"2A", "2B", "2C", "att1"}) {
    const auto priority = geost.priority_of(t.tree(), t.block(name)->id());
    detail.add_row({name, metrics::Table::num(priority.weight),
                    metrics::Table::num(priority.equality_variance, 5),
                    metrics::Table::num(priority.receipt_seq)});
  }
  std::cout << "\nGEOST decision detail at the height-2 fork:\n";
  emit(detail, args);

  std::cout << "\nPaper's reading: only the longest-chain rule is displaced by "
               "the attacker; GHOST keeps the first-received heavy subtree "
               "(4B); GEOST finalizes the most equal subtree (4C).\n";
  bench::print_run_footer(args, timer);
  return 0;
}
