// Simulator scale-out benchmark: a fig6-style GEOST (Themis) sweep at large
// n, reporting discrete-event throughput (events/sec) next to the consensus
// metrics.  This is the headline driver for the calendar-queue/arena event
// core: BENCH_sim_scale.json records events/sec before and after.
//
// Unlike the figure drivers this measures the *simulator*, not the paper's
// claims: uniform power, Themis/GEOST only, throughput per wall-clock second.
//
//   --nodes=<n[,n...]>  consensus set sizes (default 500,1000,2000;
//                       --quick: 500)
//   --height=<h>        target main-chain height per point (default 120;
//                       --quick: 40)
//   --json=<path>       write machine-readable results
//   --floors=<path>     JSON perf floors; exit 2 when violated
//                       (key "sim_min_events_per_sec" applies to every point)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpc/json.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"
#include "sim/trial_runner.h"

namespace {

using namespace themis;

std::vector<std::size_t> parse_sizes(std::string_view spec) {
  std::vector<std::size_t> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string item(spec.substr(begin, end - begin));
    if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    begin = end + 1;
  }
  return out;
}

struct PointResult {
  std::size_t nodes = 0;
  std::uint64_t height = 0;
  std::uint64_t events = 0;
  std::uint64_t pending_peak = 0;
  double build_wall_s = 0.0;
  double run_wall_s = 0.0;
  double events_per_sec = 0.0;
  double tps = 0.0;
  double elapsed_sim_s = 0.0;
  std::uint64_t total_blocks = 0;
  std::uint64_t stale_blocks = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser parser(argc, argv);
  constexpr std::string_view kUsage =
      "sim_scale [--nodes=<n,..>] [--height=<h>] [--quick] [--seed=<u64>] "
      "[--threads <N>] [--csv] [--json=<path>] [--floors=<path>]";
  const bool quick = parser.flag("--quick");
  const bool csv = parser.flag("--csv");
  const std::uint64_t seed = parser.value_u64("--seed", 1);
  const std::size_t threads =
      static_cast<std::size_t>(parser.value_u64("--threads", 1));
  const std::uint64_t height = parser.value_u64("--height", quick ? 40 : 120);
  std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{500}
            : std::vector<std::size_t>{500, 1000, 2000};
  if (const auto v = parser.value("--nodes")) sizes = parse_sizes(*v);
  std::string json_path;
  if (const auto v = parser.value("--json")) json_path = *v;
  std::string floors_path;
  if (const auto v = parser.value("--floors")) floors_path = *v;
  parser.reject_unknown(kUsage);
  if (sizes.empty() || height == 0) {
    std::cerr << "error: need at least one --nodes size and --height > 0\n";
    return 1;
  }

  bench::banner("Simulator scale-out: GEOST sweep throughput at large n",
                "event-core benchmark (fig6-style config, Themis/GEOST)");

  const bench::WallTimer total_timer;
  std::vector<PointResult> results;
  for (const std::size_t n : sizes) {
    sim::PoxConfig config;
    config.algorithm = core::Algorithm::kThemis;
    config.n_nodes = n;
    config.hash_rates = sim::uniform_power(n, config.h0);
    config.beta = 8;
    config.expected_interval_s = 4.0;
    config.txs_per_block = 4096;
    config.seed = seed;
    // --threads here drives the in-run draw workers (results are
    // bit-identical for every value; only wall clock changes).
    config.draw_threads = threads;

    PointResult r;
    r.nodes = n;
    r.height = height;

    const bench::WallTimer build_timer;
    sim::PoxExperiment exp(config);
    r.build_wall_s = build_timer.seconds();

    const bench::WallTimer run_timer;
    exp.run_to_height(height, SimTime::seconds(1e7));
    r.run_wall_s = run_timer.seconds();

    r.events = exp.simulation().events_processed();
    r.events_per_sec =
        r.run_wall_s > 0 ? static_cast<double>(r.events) / r.run_wall_s : 0.0;
    r.tps = exp.tps();
    r.elapsed_sim_s = exp.elapsed().to_seconds();
    r.pending_peak = exp.simulation().queue_stats().peak_live;
    const metrics::ForkStats forks = exp.fork_stats();
    r.total_blocks = forks.total_blocks;
    r.stale_blocks = forks.stale_blocks;
    results.push_back(r);
  }

  metrics::Table t({"nodes", "height", "events", "run wall s", "events/sec",
                    "TPS", "sim s", "blocks", "stale"});
  for (const PointResult& r : results) {
    t.add_row({std::to_string(r.nodes), std::to_string(r.height),
               std::to_string(r.events), metrics::Table::num(r.run_wall_s, 2),
               metrics::Table::num(r.events_per_sec, 0),
               metrics::Table::num(r.tps, 1),
               metrics::Table::num(r.elapsed_sim_s, 1),
               std::to_string(r.total_blocks), std::to_string(r.stale_blocks)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cerr << "[sim_scale] total wall: " << total_timer.seconds() << "s\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
    } else {
      out << "{\n  \"benchmark\": \"sim_scale\",\n"
          << "  \"config\": {\"algorithm\": \"themis-geost\", \"beta\": 8, "
          << "\"interval_s\": 4.0, \"fanout\": 8, \"seed\": " << seed
          << ", \"height\": " << height << ", \"threads\": " << threads
          << "},\n  \"points\": [\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        out << "    {\"nodes\": " << r.nodes << ", \"events\": " << r.events
            << ", \"pending_peak\": " << r.pending_peak
            << ", \"build_wall_s\": " << r.build_wall_s
            << ", \"run_wall_s\": " << r.run_wall_s
            << ", \"events_per_sec\": " << r.events_per_sec
            << ", \"tps\": " << r.tps << ", \"sim_s\": " << r.elapsed_sim_s
            << ", \"blocks\": " << r.total_blocks
            << ", \"stale\": " << r.stale_blocks << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      std::cerr << "[sim_scale] wrote " << json_path << "\n";
    }
  }

  if (!floors_path.empty()) {
    std::ifstream in(floors_path);
    if (!in) {
      std::cerr << "error: cannot read floors file " << floors_path << "\n";
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    rpc::Json floors;
    try {
      floors = rpc::Json::parse(text);
    } catch (const rpc::JsonError& e) {
      std::cerr << "error: bad floors JSON: " << e.what() << "\n";
      return 1;
    }
    bool violated = false;
    if (floors.has("sim_min_events_per_sec")) {
      const double floor = floors["sim_min_events_per_sec"].as_double();
      for (const PointResult& r : results) {
        if (r.events_per_sec < floor) {
          std::cerr << "FLOOR VIOLATED: n=" << r.nodes << " events/sec "
                    << r.events_per_sec << " < " << floor << "\n";
          violated = true;
        }
      }
    }
    if (violated) return 2;
    std::cerr << "[sim_scale] all perf floors met (" << floors_path << ")\n";
  }
  return 0;
}
