// Fig. 5 — Unpredictability (lower is better): variance of block-producing
// probability sigma_p^2 against epochs for PBFT, PoW-H, Themis-Lite, Themis.
//
// Paper targets: converged Themis ~2.82 % of PoW-H and Themis-Lite ~3.85 %;
// PBFT (one-hot leader) is ~395x Themis and ~11x PoW-H.
#include <iostream>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Fig. 5 — Unpredictability: sigma_p^2 vs epochs",
                "Jia et al., ICDCS 2022, Fig. 5 / §VII-D");

  const std::size_t n = args.quick ? 40 : 100;  // paper: 100
  const std::uint64_t epochs = args.quick ? 6 : 12;
  std::cout << "n=" << n << "  delta=8n  epochs=" << epochs << "\n";

  auto run_pox = [&](core::Algorithm algorithm) {
    sim::PoxConfig cfg;
    cfg.algorithm = algorithm;
    cfg.n_nodes = n;
    cfg.beta = 8;
    cfg.txs_per_block = 0;
    cfg.seed = args.seed;
    sim::PoxExperiment exp(cfg);
    exp.run_to_height(epochs * exp.delta());
    return exp.per_epoch_probability_variance();
  };

  const auto themis = run_pox(core::Algorithm::kThemis);
  const auto lite = run_pox(core::Algorithm::kThemisLite);
  const auto powh = run_pox(core::Algorithm::kPowH);
  // PBFT: the next leader is known, so each round's probability vector is
  // one-hot; sigma_p^2 = (n-1)/n^2 in every epoch (§VII-C).
  const double pbft_value = metrics::pbft_probability_variance(n);

  metrics::Table t({"epoch", "PBFT", "PoW-H", "Themis-Lite", "Themis"});
  const std::size_t rows = std::min({themis.size(), lite.size(), powh.size()});
  for (std::size_t e = 0; e < rows; ++e) {
    t.add_row({std::to_string(e), metrics::Table::num(pbft_value, 6),
               metrics::Table::num(powh[e], 6),
               metrics::Table::num(lite[e], 6),
               metrics::Table::num(themis[e], 6)});
  }
  emit(t, args);

  auto tail = [](const std::vector<double>& v) {
    double sum = 0;
    const std::size_t k = std::min<std::size_t>(3, v.size());
    for (std::size_t i = v.size() - k; i < v.size(); ++i) sum += v[i];
    return sum / static_cast<double>(k);
  };
  const double powh_tail = tail(powh);
  const double themis_tail = tail(themis);
  std::cout << "\nconverged sigma_p^2 as % of PoW-H (paper: Themis 2.82%, "
               "Themis-Lite 3.85%):\n"
            << "  Themis      " << 100.0 * themis_tail / powh_tail << "%\n"
            << "  Themis-Lite " << 100.0 * tail(lite) / powh_tail << "%\n"
            << "PBFT / Themis ratio (paper: ~395x): "
            << pbft_value / themis_tail << "x\n"
            << "PBFT / PoW-H  ratio (paper: ~11x):  "
            << pbft_value / powh_tail << "x\n";
  return 0;
}
