// Fig. 5 — Unpredictability (lower is better): variance of block-producing
// probability sigma_p^2 against epochs for PBFT, PoW-H, Themis-Lite, Themis.
//
// Paper targets: converged Themis ~2.82 % of PoW-H and Themis-Lite ~3.85 %;
// PBFT (one-hot leader) is ~395x Themis and ~11x PoW-H.
//
// With --trials N each algorithm runs N independent seeds in parallel and
// every cell reports mean ± 95% CI across trials.
#include <iostream>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/experiment.h"
#include "sim/trial_runner.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 5 — Unpredictability: sigma_p^2 vs epochs",
                "Jia et al., ICDCS 2022, Fig. 5 / §VII-D");

  const std::size_t n = args.quick ? 40 : 100;  // paper: 100
  const std::uint64_t epochs = args.quick ? 6 : 12;
  std::cout << "n=" << n << "  delta=8n  epochs=" << epochs << "\n";

  const auto spec_for = [&](core::Algorithm algorithm) {
    sim::PoxTrialSpec spec;
    spec.config.algorithm = algorithm;
    spec.config.n_nodes = n;
    spec.config.beta = 8;
    spec.config.txs_per_block = 0;
    spec.config.seed = args.seed;
    spec.target_height = epochs * sim::PoxExperiment::delta_for(spec.config);
    return spec;
  };
  const std::vector<sim::PoxTrialSpec> points = {
      spec_for(core::Algorithm::kThemis), spec_for(core::Algorithm::kThemisLite),
      spec_for(core::Algorithm::kPowH)};
  const auto sweep = sim::run_pox_sweep(points, args.runner());

  const auto epoch_summaries = [&](std::size_t point) {
    std::vector<std::vector<double>> series;
    for (const auto& trial : sweep[point]) {
      series.push_back(trial.probability_variance);
    }
    return metrics::summarize_series(series);
  };
  const auto themis_s = epoch_summaries(0);
  const auto lite_s = epoch_summaries(1);
  const auto powh_s = epoch_summaries(2);

  // PBFT: the next leader is known, so each round's probability vector is
  // one-hot; sigma_p^2 = (n-1)/n^2 in every epoch (§VII-C).
  const double pbft_value = metrics::pbft_probability_variance(n);

  metrics::Table t({"epoch", "PBFT", "PoW-H", "Themis-Lite", "Themis"});
  const std::size_t rows =
      std::min({themis_s.size(), lite_s.size(), powh_s.size()});
  for (std::size_t e = 0; e < rows; ++e) {
    t.add_row({std::to_string(e), metrics::Table::num(pbft_value, 6),
               bench::cell(powh_s[e], 6), bench::cell(lite_s[e], 6),
               bench::cell(themis_s[e], 6)});
  }
  emit(t, args);

  const auto tail = [](const std::vector<sim::PoxTrialResult>& trials) {
    return metrics::summarize_over(trials, [](const sim::PoxTrialResult& r) {
             const auto& v = r.probability_variance;
             double sum = 0;
             const std::size_t k = std::min<std::size_t>(3, v.size());
             for (std::size_t i = v.size() - k; i < v.size(); ++i) sum += v[i];
             return sum / static_cast<double>(k);
           })
        .mean;
  };
  const double powh_tail = tail(sweep[2]);
  const double themis_tail = tail(sweep[0]);
  std::cout << "\nconverged sigma_p^2 as % of PoW-H (paper: Themis 2.82%, "
               "Themis-Lite 3.85%):\n"
            << "  Themis      " << 100.0 * themis_tail / powh_tail << "%\n"
            << "  Themis-Lite " << 100.0 * tail(sweep[1]) / powh_tail << "%\n"
            << "PBFT / Themis ratio (paper: ~395x): "
            << pbft_value / themis_tail << "x\n"
            << "PBFT / PoW-H  ratio (paper: ~11x):  "
            << pbft_value / powh_tail << "x\n";
  bench::print_run_footer(args, timer);
  return 0;
}
