// load_gen: end-to-end transaction-pipeline benchmark.
//
// Boots N consensus nodes in-process (real TCP p2p between them, each with a
// JSON-RPC server) and K concurrent client threads that hammer the RPC
// surface over real HTTP connections: every client signs as its own
// consortium account (the consensus set is sized nodes+clients, so client
// accounts exist in the genesis allocation and nonce sequences never race),
// submits a fixed number of transfers, then polls get_tx until every
// transaction is confirmed on the chain.
//
// Reported: confirmed throughput (confirmed txs / wall time from first
// submit to last confirmation) and the submit->confirmed latency
// distribution (p50/p90/p99), plus per-node pipeline counters.  --json
// writes the same numbers machine-readably (CI uploads BENCH_txpipe.json).
//
// This is a benchmark of the implementation's pipeline, not of the paper's
// consensus math: GHOST fork choice keeps the fork-choice cost independent
// of the (deliberately inflated) consensus-set size.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "consensus/forkchoice.h"
#include "p2p/node.h"
#include "rpc/gateway.h"
#include "rpc/http_client.h"
#include "rpc/http_server.h"
#include "rpc/json.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kUsage =
    "load_gen [flags]\n"
    "  --nodes=<n>       consensus nodes (default 3)\n"
    "  --clients=<k>     concurrent client threads (default 4)\n"
    "  --txs=<n>         transactions per client (default 150)\n"
    "  --difficulty=<d>  expected hashes per block (default 6000)\n"
    "  --amount=<n>      transfer amount (default 1)\n"
    "  --timeout=<sec>   confirmation deadline after last submit (default 120)\n"
    "  --json=<path>     also write results as JSON (e.g. BENCH_txpipe.json)\n"
    "  --quick           smaller run for CI (2 nodes, 2 clients, 40 txs)\n";

struct ClientResult {
  std::uint64_t submitted = 0;
  std::uint64_t submit_errors = 0;
  std::uint64_t confirmed = 0;
  Clock::time_point first_submit{};
  Clock::time_point last_confirm{};
  std::vector<double> latencies_ms;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  const bench::ArgParser parser(argc, argv);
  if (parser.flag("--help") || parser.flag("-h")) {
    std::cout << kUsage;
    return 0;
  }
  const bool quick = parser.flag("--quick");
  const std::size_t n_nodes =
      static_cast<std::size_t>(parser.value_u64("--nodes", quick ? 2 : 3));
  const std::size_t n_clients =
      static_cast<std::size_t>(parser.value_u64("--clients", quick ? 2 : 4));
  const std::uint64_t txs_per_client =
      parser.value_u64("--txs", quick ? 40 : 150);
  double difficulty = 6000.0;
  if (const auto v = parser.value("--difficulty")) {
    difficulty = std::strtod(std::string(*v).c_str(), nullptr);
  }
  const std::uint64_t amount = parser.value_u64("--amount", 1);
  const std::uint64_t timeout_sec = parser.value_u64("--timeout", 120);
  std::string json_path;
  if (const auto v = parser.value("--json")) json_path = *v;
  parser.reject_unknown(kUsage);

  // Consensus set = nodes + clients: every client signs as its own account.
  const std::size_t set_size = n_nodes + n_clients;

  // --- boot the network -----------------------------------------------------
  std::vector<std::unique_ptr<p2p::P2pNode>> nodes;
  std::vector<std::unique_ptr<rpc::Gateway>> gateways;
  std::vector<std::unique_ptr<rpc::HttpServer>> servers;
  std::vector<std::uint16_t> rpc_ports;

  for (std::size_t i = 0; i < n_nodes; ++i) {
    p2p::P2pNodeConfig config;
    config.id = static_cast<ledger::NodeId>(i);
    config.n_nodes = set_size;
    config.listen_port = 0;
    config.difficulty = difficulty;
    config.rng_seed = 1 + i;
    for (std::size_t j = 0; j < i; ++j) {
      config.peers.push_back("127.0.0.1:" +
                             std::to_string(nodes[j]->listen_port()));
    }
    auto node = std::make_unique<p2p::P2pNode>(
        config, std::make_shared<consensus::GhostRule>());
    if (!node->start()) {
      std::cerr << "error: failed to start node " << i << "\n";
      return 1;
    }
    auto gateway = std::make_unique<rpc::Gateway>(*node);
    rpc::Gateway* gw = gateway.get();
    auto server = std::make_unique<rpc::HttpServer>(
        rpc::HttpServerConfig{},
        [gw](const rpc::HttpRequest& request) { return gw->handle(request); });
    if (!server->start()) {
      std::cerr << "error: failed to start rpc server " << i << "\n";
      return 1;
    }
    rpc_ports.push_back(server->port());
    nodes.push_back(std::move(node));
    gateways.push_back(std::move(gateway));
    servers.push_back(std::move(server));
  }
  std::cerr << "[load_gen] " << n_nodes << " nodes up (difficulty "
            << difficulty << "), " << n_clients << " clients x "
            << txs_per_client << " txs\n";

  // --- drive load -----------------------------------------------------------
  std::vector<ClientResult> results(n_clients);
  std::vector<std::thread> clients;
  const auto bench_start = Clock::now();

  for (std::size_t k = 0; k < n_clients; ++k) {
    clients.emplace_back([&, k] {
      ClientResult& r = results[k];
      const auto sender = static_cast<std::uint64_t>(n_nodes + k);
      const auto to = static_cast<std::uint64_t>(k % n_nodes);
      rpc::HttpClient client("127.0.0.1", rpc_ports[k % n_nodes]);

      struct Pending {
        std::string id;
        Clock::time_point submitted;
      };
      std::vector<Pending> pending;
      pending.reserve(txs_per_client);

      r.first_submit = Clock::now();
      for (std::uint64_t nonce = 1; nonce <= txs_per_client; ++nonce) {
        rpc::Json params;
        params.set("sender", sender);
        params.set("to", to);
        params.set("amount", amount);
        params.set("nonce", nonce);
        rpc::Json request;
        request.set("jsonrpc", "2.0");
        request.set("id", nonce);
        request.set("method", "submit_tx");
        request.set("params", std::move(params));
        const std::string body = request.dump();

        bool accepted = false;
        // A nonce too far ahead of the head state is rejected (admission
        // window); back off and retry so a fast client cannot outrun mining.
        for (int attempt = 0; attempt < 200 && !accepted; ++attempt) {
          const auto response = client.post("/", body);
          if (!response.has_value()) {
            ++r.submit_errors;
            break;
          }
          rpc::Json reply;
          try {
            reply = rpc::Json::parse(response->body);
          } catch (const rpc::JsonError&) {
            ++r.submit_errors;
            break;
          }
          if (reply.has("result")) {
            pending.push_back(
                {reply["result"]["id"].as_string(), Clock::now()});
            ++r.submitted;
            accepted = true;
          } else if (reply["error"]["message"].as_string() == "nonce_gap") {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          } else {
            ++r.submit_errors;
            break;
          }
        }
      }

      // Poll until every submitted transaction confirms (or deadline).
      const auto deadline = Clock::now() + std::chrono::seconds(timeout_sec);
      std::size_t cursor = 0;
      while (!pending.empty() && Clock::now() < deadline) {
        cursor = cursor % pending.size();
        rpc::Json params;
        params.set("id", pending[cursor].id);
        rpc::Json request;
        request.set("jsonrpc", "2.0");
        request.set("id", 0);
        request.set("method", "get_tx");
        request.set("params", std::move(params));
        const auto response = client.post("/", request.dump());
        bool confirmed = false;
        if (response.has_value()) {
          try {
            const rpc::Json reply = rpc::Json::parse(response->body);
            confirmed = reply["result"]["state"].is_string() &&
                        reply["result"]["state"].as_string() == "confirmed";
          } catch (const rpc::JsonError&) {
          }
        }
        if (confirmed) {
          const auto now = Clock::now();
          r.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  now - pending[cursor].submitted)
                  .count());
          r.last_confirm = now;
          ++r.confirmed;
          pending.erase(pending.begin() +
                        static_cast<std::ptrdiff_t>(cursor));
        } else {
          ++cursor;
          if (cursor >= pending.size()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
          }
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();

  // --- aggregate ------------------------------------------------------------
  std::uint64_t submitted = 0, confirmed = 0, errors = 0;
  std::vector<double> latencies;
  auto first_submit = Clock::time_point::max();
  auto last_confirm = bench_start;
  for (const ClientResult& r : results) {
    submitted += r.submitted;
    confirmed += r.confirmed;
    errors += r.submit_errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (r.submitted > 0) first_submit = std::min(first_submit, r.first_submit);
    if (r.confirmed > 0) last_confirm = std::max(last_confirm, r.last_confirm);
  }
  std::sort(latencies.begin(), latencies.end());
  const double elapsed_sec =
      confirmed == 0 ? 0.0
                     : std::chrono::duration<double>(last_confirm -
                                                     first_submit)
                           .count();
  const double tps =
      elapsed_sec > 0 ? static_cast<double>(confirmed) / elapsed_sec : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p90 = percentile(latencies, 0.90);
  const double p99 = percentile(latencies, 0.99);

  // Node-side counters after the dust settles.
  std::uint64_t chain_confirmed = 0, chain_returned = 0, chain_purged = 0;
  std::uint64_t pool_left = 0;
  std::uint64_t height = 0;
  for (const auto& node : nodes) {
    const auto stats = node->chain_stats();
    chain_confirmed = std::max(chain_confirmed, stats.txs_confirmed);
    chain_returned += stats.txs_returned;
    chain_purged += stats.txs_purged;
    pool_left += node->pool_depth();
    height = std::max(height, node->head_height());
  }

  std::cout << "load_gen: nodes=" << n_nodes << " clients=" << n_clients
            << " submitted=" << submitted << " confirmed=" << confirmed
            << " errors=" << errors << "\n"
            << "  confirmed_tps=" << tps << " over " << elapsed_sec << "s"
            << " (height " << height << ")\n"
            << "  latency_ms p50=" << p50 << " p90=" << p90 << " p99=" << p99
            << "\n"
            << "  pipeline: confirmed=" << chain_confirmed
            << " reorg_returned=" << chain_returned
            << " purged=" << chain_purged << " pool_left=" << pool_left
            << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
    } else {
      out << "{\n"
          << "  \"benchmark\": \"load_gen\",\n"
          << "  \"config\": {\"nodes\": " << n_nodes
          << ", \"clients\": " << n_clients
          << ", \"txs_per_client\": " << txs_per_client
          << ", \"difficulty\": " << difficulty << "},\n"
          << "  \"submitted\": " << submitted << ",\n"
          << "  \"confirmed\": " << confirmed << ",\n"
          << "  \"submit_errors\": " << errors << ",\n"
          << "  \"elapsed_sec\": " << elapsed_sec << ",\n"
          << "  \"confirmed_tps\": " << tps << ",\n"
          << "  \"latency_ms\": {\"p50\": " << p50 << ", \"p90\": " << p90
          << ", \"p99\": " << p99 << "},\n"
          << "  \"chain\": {\"height\": " << height
          << ", \"txs_confirmed\": " << chain_confirmed
          << ", \"txs_returned\": " << chain_returned
          << ", \"txs_purged\": " << chain_purged
          << ", \"pool_left\": " << pool_left << "}\n"
          << "}\n";
      std::cerr << "[load_gen] wrote " << json_path << "\n";
    }
  }

  for (auto& server : servers) server->stop();
  for (auto& node : nodes) node->stop();

  // The run failed if a majority of transactions never confirmed.
  return confirmed * 2 >= submitted || submitted == 0 ? 0 : 1;
}
