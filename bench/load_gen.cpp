// load_gen: end-to-end transaction-pipeline benchmark.
//
// Boots N consensus nodes in-process (real TCP p2p between them, each with a
// JSON-RPC server) and K concurrent client threads that hammer the RPC
// surface over real HTTP connections: every client signs as its own
// consortium account (the consensus set is sized nodes+clients, so client
// accounts exist in the genesis allocation and nonce sequences never race),
// submits a fixed number of transfers, then polls get_tx until every
// transaction is confirmed on the chain.
//
// Reported: confirmed throughput (confirmed txs / wall time from first
// submit to last confirmation) and the submit->confirmed latency
// distribution (p50/p90/p99), plus per-node pipeline counters.  --json
// writes the same numbers machine-readably (CI uploads BENCH_txpipe.json).
//
// This is a benchmark of the implementation's pipeline, not of the paper's
// consensus math: GHOST fork choice keeps the fork-choice cost independent
// of the (deliberately inflated) consensus-set size.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "consensus/forkchoice.h"
#include "p2p/node.h"
#include "rpc/gateway.h"
#include "rpc/http_client.h"
#include "rpc/http_server.h"
#include "rpc/json.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::string_view kUsage =
    "load_gen [flags]\n"
    "  --nodes=<n>       consensus nodes (default 3)\n"
    "  --miners=<m>      how many of the nodes mine (default: all); on a\n"
    "                    small host fewer miners means fewer PoW races and\n"
    "                    less reorg churn, as in a consortium deployment\n"
    "                    where serving nodes outnumber block producers\n"
    "  --clients=<k>     concurrent client threads (default 4)\n"
    "  --txs=<n>         transactions per client (default 150)\n"
    "  --submit-batch=<n> txs per submit_txs request (default 50)\n"
    "  --difficulty=<d>  expected hashes per block (default 6000)\n"
    "  --amount=<n>      transfer amount (default 1)\n"
    "  --timeout=<sec>   confirmation deadline after last submit (default 120)\n"
    "  --json=<path>     also write results as JSON (e.g. BENCH_txpipe.json)\n"
    "  --connect=<h:p,..> drive external daemons at these RPC endpoints\n"
    "                    instead of booting nodes in-process; node counters\n"
    "                    are scraped from each endpoint's /metrics\n"
    "  --sender-base=<n> first client account id (default: node count, i.e.\n"
    "                    the daemons were started with --nodes=nodes+clients)\n"
    "  --floors=<path>   JSON perf floors; exit 2 when violated, e.g.\n"
    "                    {\"min_confirmed_tps\": 100, \"max_p99_ms\": 5000,\n"
    "                     \"max_submit_errors\": 0,\n"
    "                     \"require_all_confirmed\": true,\n"
    "                     \"require_stage_histograms\": true}\n"
    "                    (the last asserts every tx-lifecycle stage histogram\n"
    "                    — verify/pool/inclusion/confirm/e2e — carries data;\n"
    "                    fails under THEMIS_MIN_TELEMETRY builds by design)\n"
    "  --quick           smaller run for CI (2 nodes, 2 clients, 40 txs)\n";

/// One RPC endpoint ("host:port") to aim clients at.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

std::vector<Endpoint> parse_endpoints(const std::string& spec) {
  std::vector<Endpoint> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    if (!item.empty()) {
      const std::size_t colon = item.rfind(':');
      if (colon == std::string::npos || colon + 1 >= item.size()) {
        return {};  // malformed
      }
      Endpoint ep;
      ep.host = item.substr(0, colon);
      ep.port = static_cast<std::uint16_t>(
          std::strtoul(item.substr(colon + 1).c_str(), nullptr, 10));
      if (ep.host.empty() || ep.port == 0) return {};
      out.push_back(std::move(ep));
    }
    begin = end + 1;
  }
  return out;
}

struct ClientResult {
  std::uint64_t submitted = 0;
  std::uint64_t submit_errors = 0;
  std::uint64_t confirmed = 0;
  Clock::time_point first_submit{};
  Clock::time_point last_confirm{};
  std::vector<double> latencies_ms;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;

  const bench::ArgParser parser(argc, argv);
  if (parser.flag("--help") || parser.flag("-h")) {
    std::cout << kUsage;
    return 0;
  }
  const bool quick = parser.flag("--quick");
  const std::size_t n_nodes =
      static_cast<std::size_t>(parser.value_u64("--nodes", quick ? 2 : 3));
  const std::size_t n_miners = static_cast<std::size_t>(
      parser.value_u64("--miners", static_cast<std::uint64_t>(n_nodes)));
  const std::size_t n_clients =
      static_cast<std::size_t>(parser.value_u64("--clients", quick ? 2 : 4));
  const std::uint64_t txs_per_client =
      parser.value_u64("--txs", quick ? 40 : 150);
  const std::uint64_t submit_batch =
      std::max<std::uint64_t>(1, parser.value_u64("--submit-batch", 50));
  double difficulty = 6000.0;
  if (const auto v = parser.value("--difficulty")) {
    difficulty = std::strtod(std::string(*v).c_str(), nullptr);
  }
  const std::uint64_t amount = parser.value_u64("--amount", 1);
  const std::uint64_t timeout_sec = parser.value_u64("--timeout", 120);
  std::string json_path;
  if (const auto v = parser.value("--json")) json_path = *v;
  std::vector<Endpoint> endpoints;
  const bool external = parser.value("--connect").has_value();
  if (external) {
    endpoints = parse_endpoints(std::string(*parser.value("--connect")));
    if (endpoints.empty()) {
      std::cerr << "error: --connect expects host:port[,host:port...]\n";
      return 1;
    }
  }
  const std::uint64_t sender_base = parser.value_u64(
      "--sender-base", external ? endpoints.size() : n_nodes);
  std::string floors_path;
  if (const auto v = parser.value("--floors")) floors_path = *v;
  parser.reject_unknown(kUsage);

  // Consensus set = nodes + clients: every client signs as its own account.
  const std::size_t set_size = n_nodes + n_clients;

  // --- boot the network (skipped when driving external daemons) -------------
  std::vector<std::unique_ptr<p2p::P2pNode>> nodes;
  std::vector<std::unique_ptr<rpc::Gateway>> gateways;
  std::vector<std::unique_ptr<rpc::HttpServer>> servers;

  for (std::size_t i = 0; i < n_nodes && !external; ++i) {
    p2p::P2pNodeConfig config;
    config.id = static_cast<ledger::NodeId>(i);
    config.n_nodes = set_size;
    config.listen_port = 0;
    config.difficulty = difficulty;
    config.rng_seed = 1 + i;
    config.mine = i < n_miners;
    for (std::size_t j = 0; j < i; ++j) {
      config.peers.push_back("127.0.0.1:" +
                             std::to_string(nodes[j]->listen_port()));
    }
    auto node = std::make_unique<p2p::P2pNode>(
        config, std::make_shared<consensus::GhostRule>());
    if (!node->start()) {
      std::cerr << "error: failed to start node " << i << "\n";
      return 1;
    }
    auto gateway = std::make_unique<rpc::Gateway>(*node);
    rpc::Gateway* gw = gateway.get();
    auto server = std::make_unique<rpc::HttpServer>(
        rpc::HttpServerConfig{},
        [gw](const rpc::HttpRequest& request) { return gw->handle(request); });
    if (!server->start()) {
      std::cerr << "error: failed to start rpc server " << i << "\n";
      return 1;
    }
    endpoints.push_back({"127.0.0.1", server->port()});
    nodes.push_back(std::move(node));
    gateways.push_back(std::move(gateway));
    servers.push_back(std::move(server));
  }
  if (external) {
    std::cerr << "[load_gen] driving " << endpoints.size()
              << " external daemons, " << n_clients << " clients x "
              << txs_per_client << " txs (senders from " << sender_base
              << ")\n";
  } else {
    std::cerr << "[load_gen] " << n_nodes << " nodes up (difficulty "
              << difficulty << "), " << n_clients << " clients x "
              << txs_per_client << " txs\n";
  }

  // --- drive load -----------------------------------------------------------
  std::vector<ClientResult> results(n_clients);
  std::vector<std::thread> clients;
  const auto bench_start = Clock::now();

  for (std::size_t k = 0; k < n_clients; ++k) {
    clients.emplace_back([&, k] {
      ClientResult& r = results[k];
      const auto sender = sender_base + k;
      const auto to = static_cast<std::uint64_t>(k % endpoints.size());
      const Endpoint& ep = endpoints[k % endpoints.size()];
      rpc::HttpClient client(ep.host, ep.port);

      struct Pending {
        std::string id;
        Clock::time_point submitted;
      };
      std::vector<Pending> pending;
      pending.reserve(txs_per_client);

      r.first_submit = Clock::now();
      // Submit in submit_txs batches: each round trip carries a window of
      // consecutive nonces, and the node settles the whole window through
      // one combining-queue admission pass (one Schnorr verification batch).
      std::uint64_t next_nonce = 1;
      while (next_nonce <= txs_per_client) {
        const std::uint64_t window = std::min<std::uint64_t>(
            submit_batch, txs_per_client - next_nonce + 1);
        rpc::Json::Array specs;
        specs.reserve(static_cast<std::size_t>(window));
        for (std::uint64_t nonce = next_nonce; nonce < next_nonce + window;
             ++nonce) {
          rpc::Json spec;
          spec.set("sender", sender);
          spec.set("to", to);
          spec.set("amount", amount);
          spec.set("nonce", nonce);
          specs.push_back(std::move(spec));
        }
        rpc::Json params;
        params.set("txs", rpc::Json(std::move(specs)));
        rpc::Json request;
        request.set("jsonrpc", "2.0");
        request.set("id", next_nonce);
        request.set("method", "submit_txs");
        request.set("params", std::move(params));
        const std::string body = request.dump();

        // A nonce too far ahead of the head state is rejected (admission
        // window); back off and retry the gapped tail so a fast client
        // cannot outrun mining.
        bool window_done = false;
        int attempt = 0;
        for (; attempt < 200 && !window_done; ++attempt) {
          const auto response = client.post("/", body);
          rpc::Json reply;
          bool parsed = false;
          if (response.has_value()) {
            try {
              reply = rpc::Json::parse(response->body);
              parsed = reply.has("result");
            } catch (const rpc::JsonError&) {
            }
          }
          if (!parsed) {
            // Transport or protocol failure: count the window and move on.
            r.submit_errors += window;
            next_nonce += window;
            window_done = true;
            break;
          }
          const auto now = Clock::now();
          bool nonce_gap = false;
          std::uint64_t consumed = 0;
          for (const rpc::Json& entry : reply["result"]["results"].as_array()) {
            const std::string& status = entry["status"].as_string();
            if (status == "accepted" || status == "duplicate") {
              pending.push_back({entry["id"].as_string(), now});
              ++r.submitted;
              ++consumed;
            } else if (status == "nonce_gap") {
              // The rest of the window is ahead of the head state; retry
              // from here once mining catches up.
              nonce_gap = true;
              break;
            } else {
              ++r.submit_errors;
              ++consumed;  // do not retry a hard rejection
            }
          }
          next_nonce += consumed;
          if (!nonce_gap) {
            window_done = true;
          } else if (consumed == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          } else {
            break;  // partial progress: rebuild the request from next_nonce
          }
        }
        if (attempt >= 200 && !window_done) {
          // Mining never caught up; give up on the rest of this window.
          r.submit_errors += window;
          next_nonce += window;
        }
      }

      // Poll until every submitted transaction confirms (or deadline): one
      // batched get_txs sweep resolves every pending id per round trip.
      const auto deadline = Clock::now() + std::chrono::seconds(timeout_sec);
      while (!pending.empty() && Clock::now() < deadline) {
        rpc::Json::Array ids;
        ids.reserve(pending.size());
        for (const Pending& p : pending) ids.push_back(rpc::Json(p.id));
        rpc::Json params;
        params.set("ids", rpc::Json(std::move(ids)));
        rpc::Json request;
        request.set("jsonrpc", "2.0");
        request.set("id", 0);
        request.set("method", "get_txs");
        request.set("params", std::move(params));
        const auto response = client.post("/", request.dump());
        bool any_confirmed = false;
        if (response.has_value()) {
          try {
            const rpc::Json reply = rpc::Json::parse(response->body);
            const rpc::Json::Array& states =
                reply["result"]["states"].as_array();
            if (states.size() == pending.size()) {
              const auto now = Clock::now();
              std::size_t keep = 0;
              for (std::size_t i = 0; i < pending.size(); ++i) {
                if (states[i].as_string() == "confirmed") {
                  r.latencies_ms.push_back(
                      std::chrono::duration<double, std::milli>(
                          now - pending[i].submitted)
                          .count());
                  r.last_confirm = now;
                  ++r.confirmed;
                  any_confirmed = true;
                } else {
                  // Guard the self-move: libstdc++ string move-assignment
                  // empties the source, which is the destination here when
                  // nothing before index i has confirmed yet.
                  if (keep != i) pending[keep] = std::move(pending[i]);
                  ++keep;
                }
              }
              pending.resize(keep);
            }
          } catch (const rpc::JsonError&) {
          }
        }
        if (!any_confirmed && !pending.empty()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();

  // --- aggregate ------------------------------------------------------------
  std::uint64_t submitted = 0, confirmed = 0, errors = 0;
  std::vector<double> latencies;
  auto first_submit = Clock::time_point::max();
  auto last_confirm = bench_start;
  for (const ClientResult& r : results) {
    submitted += r.submitted;
    confirmed += r.confirmed;
    errors += r.submit_errors;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    if (r.submitted > 0) first_submit = std::min(first_submit, r.first_submit);
    if (r.confirmed > 0) last_confirm = std::max(last_confirm, r.last_confirm);
  }
  std::sort(latencies.begin(), latencies.end());
  const double elapsed_sec =
      confirmed == 0 ? 0.0
                     : std::chrono::duration<double>(last_confirm -
                                                     first_submit)
                           .count();
  const double tps =
      elapsed_sec > 0 ? static_cast<double>(confirmed) / elapsed_sec : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p90 = percentile(latencies, 0.90);
  const double p99 = percentile(latencies, 0.99);

  // Node-side counters after the dust settles: read directly in-process,
  // scraped from each daemon's /metrics when driving an external network.
  std::uint64_t chain_confirmed = 0, chain_returned = 0, chain_purged = 0;
  std::uint64_t pool_left = 0;
  std::uint64_t height = 0;
  // Tx-lifecycle stage latencies from the nodes' live histograms, merged
  // across nodes: counts sum (each tx is staged on the node that admitted
  // it), latencies keep the worst node (a conservative fleet-wide bound).
  struct StageAgg {
    std::uint64_t count = 0;
    double mean_ms = 0.0, p50_ms = 0.0, p99_ms = 0.0;
  };
  constexpr std::array<std::string_view, 5> kStageKeys = {
      "verify", "pool", "inclusion", "confirm", "e2e"};
  std::map<std::string, StageAgg, std::less<>> stage_aggs;
  const auto merge_stage = [&stage_aggs](std::string_view key,
                                         std::uint64_t count, double mean_ms,
                                         double p50_ms, double p99_ms) {
    StageAgg& agg = stage_aggs[std::string(key)];
    agg.count += count;
    agg.mean_ms = std::max(agg.mean_ms, mean_ms);
    agg.p50_ms = std::max(agg.p50_ms, p50_ms);
    agg.p99_ms = std::max(agg.p99_ms, p99_ms);
  };
  for (const auto& node : nodes) {
    const auto stats = node->chain_stats();
    chain_confirmed = std::max(chain_confirmed, stats.txs_confirmed);
    chain_returned += stats.txs_returned;
    chain_purged += stats.txs_purged;
    pool_left += node->pool_depth();
    height = std::max(height, node->head_height());
    for (const auto& h : node->live_registry().histogram_samples()) {
      std::string_view key;
      if (h.name == "themis_tx_stage_verify_seconds") key = "verify";
      else if (h.name == "themis_tx_stage_pool_seconds") key = "pool";
      else if (h.name == "themis_tx_stage_inclusion_seconds") key = "inclusion";
      else if (h.name == "themis_tx_stage_confirm_seconds") key = "confirm";
      else if (h.name == "themis_tx_e2e_seconds") key = "e2e";
      else continue;
      merge_stage(key, h.snap.total, h.snap.mean_ns() / 1e6,
                  h.snap.quantile_ns(0.50) / 1e6,
                  h.snap.quantile_ns(0.99) / 1e6);
    }
  }
  if (external) {
    for (const Endpoint& ep : endpoints) {
      rpc::HttpClient scraper(ep.host, ep.port);
      const auto response = scraper.get("/metrics");
      if (!response.has_value() || response->status != 200) {
        std::cerr << "warning: could not scrape " << ep.host << ":" << ep.port
                  << "/metrics\n";
        continue;
      }
      try {
        const rpc::Json metrics = rpc::Json::parse(response->body);
        const rpc::Json& tx = metrics["tx"];
        chain_confirmed =
            std::max(chain_confirmed, tx["confirmed"].as_u64());
        chain_returned += tx["returned"].as_u64();
        chain_purged += tx["purged"].as_u64();
        pool_left += tx["pool_depth"].as_u64();
        height = std::max(height, metrics["chain"]["height"].as_u64());
        if (metrics["stages"].is_object()) {
          for (const std::string_view key : kStageKeys) {
            const rpc::Json& s = metrics["stages"][std::string(key)];
            if (!s.is_object()) continue;
            merge_stage(key, s["count"].as_u64(), s["mean_ms"].as_double(),
                        s["p50_ms"].as_double(), s["p99_ms"].as_double());
          }
        }
      } catch (const rpc::JsonError&) {
        std::cerr << "warning: bad /metrics payload from " << ep.host << ":"
                  << ep.port << "\n";
      }
    }
  }

  std::uint64_t rpc_requests = 0;
  for (const auto& server : servers) rpc_requests += server->stats().requests;
  if (rpc_requests > 0) {
    std::cerr << "[load_gen] " << rpc_requests << " HTTP requests served ("
              << submitted << " submits)\n";
  }

  std::cout << "load_gen: nodes=" << (external ? endpoints.size() : n_nodes)
            << " clients=" << n_clients
            << " submitted=" << submitted << " confirmed=" << confirmed
            << " errors=" << errors << "\n"
            << "  confirmed_tps=" << tps << " over " << elapsed_sec << "s"
            << " (height " << height << ")\n"
            << "  latency_ms p50=" << p50 << " p90=" << p90 << " p99=" << p99
            << "\n"
            << "  pipeline: confirmed=" << chain_confirmed
            << " reorg_returned=" << chain_returned
            << " purged=" << chain_purged << " pool_left=" << pool_left
            << "\n";
  if (!stage_aggs.empty()) {
    std::cout << "  stages(ms p50/p99):";
    for (const std::string_view key : kStageKeys) {
      const auto it = stage_aggs.find(key);
      if (it == stage_aggs.end()) continue;
      std::cout << " " << key << "=" << it->second.p50_ms << "/"
                << it->second.p99_ms << " (n=" << it->second.count << ")";
    }
    std::cout << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
    } else {
      out << "{\n"
          << "  \"benchmark\": \"load_gen\",\n"
          << "  \"config\": {\"nodes\": " << n_nodes
          << ", \"miners\": " << (external ? 0 : n_miners)
          << ", \"clients\": " << n_clients
          << ", \"txs_per_client\": " << txs_per_client
          << ", \"difficulty\": " << difficulty << "},\n"
          << "  \"submitted\": " << submitted << ",\n"
          << "  \"confirmed\": " << confirmed << ",\n"
          << "  \"submit_errors\": " << errors << ",\n"
          << "  \"elapsed_sec\": " << elapsed_sec << ",\n"
          << "  \"confirmed_tps\": " << tps << ",\n"
          << "  \"latency_ms\": {\"p50\": " << p50 << ", \"p90\": " << p90
          << ", \"p99\": " << p99 << "},\n"
          << "  \"chain\": {\"height\": " << height
          << ", \"txs_confirmed\": " << chain_confirmed
          << ", \"txs_returned\": " << chain_returned
          << ", \"txs_purged\": " << chain_purged
          << ", \"pool_left\": " << pool_left << "},\n"
          << "  \"stages\": {";
      bool first_stage = true;
      for (const std::string_view key : kStageKeys) {
        const auto it = stage_aggs.find(key);
        if (it == stage_aggs.end()) continue;
        out << (first_stage ? "" : ", ") << "\"" << key
            << "\": {\"count\": " << it->second.count
            << ", \"mean_ms\": " << it->second.mean_ms
            << ", \"p50_ms\": " << it->second.p50_ms
            << ", \"p99_ms\": " << it->second.p99_ms << "}";
        first_stage = false;
      }
      out << "}\n"
          << "}\n";
      std::cerr << "[load_gen] wrote " << json_path << "\n";
    }
  }

  for (auto& server : servers) server->stop();
  for (auto& node : nodes) node->stop();

  // --- perf floors (the CI regression gate) ---------------------------------
  if (!floors_path.empty()) {
    std::ifstream in(floors_path);
    if (!in) {
      std::cerr << "error: cannot read floors file " << floors_path << "\n";
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    rpc::Json floors;
    try {
      floors = rpc::Json::parse(text);
    } catch (const rpc::JsonError& e) {
      std::cerr << "error: bad floors JSON: " << e.what() << "\n";
      return 1;
    }
    bool violated = false;
    const auto fail = [&violated](const std::string& what) {
      std::cerr << "FLOOR VIOLATED: " << what << "\n";
      violated = true;
    };
    if (floors.has("min_confirmed_tps") &&
        tps < floors["min_confirmed_tps"].as_double()) {
      fail("confirmed_tps " + std::to_string(tps) + " < " +
           std::to_string(floors["min_confirmed_tps"].as_double()));
    }
    if (floors.has("max_p99_ms") && p99 > floors["max_p99_ms"].as_double()) {
      fail("latency p99 " + std::to_string(p99) + "ms > " +
           std::to_string(floors["max_p99_ms"].as_double()) + "ms");
    }
    if (floors.has("max_submit_errors") &&
        errors > floors["max_submit_errors"].as_u64()) {
      fail(std::to_string(errors) + " submit errors > " +
           std::to_string(floors["max_submit_errors"].as_u64()));
    }
    if (floors.has("require_all_confirmed") &&
        floors["require_all_confirmed"].as_bool() && confirmed < submitted) {
      fail(std::to_string(submitted - confirmed) +
           " transactions never confirmed");
    }
    if (floors.has("require_stage_histograms") &&
        floors["require_stage_histograms"].as_bool()) {
      // Every lifecycle stage must have recorded data (zero counts mean the
      // stage wiring regressed — or telemetry was compiled out) and the
      // estimated quantiles must be ordered sanely.
      for (const std::string_view key : kStageKeys) {
        const auto it = stage_aggs.find(key);
        if (it == stage_aggs.end() || it->second.count == 0) {
          fail("stage histogram '" + std::string(key) + "' recorded no data");
          continue;
        }
        if (it->second.p99_ms + 1e-9 < it->second.p50_ms ||
            it->second.p50_ms < 0) {
          fail("stage histogram '" + std::string(key) +
               "' has inconsistent quantiles (p50=" +
               std::to_string(it->second.p50_ms) +
               "ms p99=" + std::to_string(it->second.p99_ms) + "ms)");
        }
      }
    }
    if (violated) return 2;
    std::cerr << "[load_gen] all perf floors met (" << floors_path << ")\n";
  }

  // The run failed if a majority of transactions never confirmed.
  return confirmed * 2 >= submitted || submitted == 0 ? 0 : 1;
}
