// Microbenchmarks for the discrete-event simulator core (google-benchmark):
// schedule/fire throughput, cancel/reschedule churn (the mining-restart
// pattern), and a gossip-shaped burst workload.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "net/event_queue.h"
#include "net/simulation.h"

namespace {

using namespace themis;

/// Schedule `n` events at pseudo-random offsets, drain them all.  The
/// canonical schedule/fire hot loop.
void BM_SimScheduleFire(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Simulation sim;
    Rng rng(42);
    for (int i = 0; i < n; ++i) {
      sim.schedule_after(SimTime::nanos(static_cast<std::int64_t>(
                             rng.next_below(1'000'000'000))),
                         [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimScheduleFire)->Arg(10'000)->Arg(100'000);

/// The mining-restart pattern: a standing population of far-future events,
/// each repeatedly cancelled and rescheduled before it can fire.
void BM_SimCancelReschedule(benchmark::State& state) {
  const int population = 1'000;
  const int churn = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Simulation sim;
    Rng rng(7);
    std::vector<net::EventId> ids(population);
    for (int i = 0; i < population; ++i) {
      ids[i] = sim.schedule_after(
          SimTime::seconds(1.0 + static_cast<double>(i)), [] {});
    }
    for (int i = 0; i < churn; ++i) {
      const std::size_t k = static_cast<std::size_t>(rng.next_below(population));
      sim.cancel(ids[k]);
      ids[k] = sim.schedule_after(
          SimTime::seconds(1.0 + rng.next_double() * 1000.0), [] {});
    }
    benchmark::DoNotOptimize(sim.pending());
  }
  state.SetItemsProcessed(state.iterations() * churn);
}
BENCHMARK(BM_SimCancelReschedule)->Arg(100'000);

/// Gossip-shaped load: every fired event fans out to `fanout` new events a
/// short delay ahead (message relays), until a budget is exhausted.
void BM_SimFanoutCascade(benchmark::State& state) {
  const std::uint64_t budget = static_cast<std::uint64_t>(state.range(0));
  const int fanout = 8;
  for (auto _ : state) {
    net::Simulation sim;
    Rng rng(9);
    std::uint64_t remaining = budget;
    std::function<void()> relay = [&] {
      for (int i = 0; i < fanout && remaining > 0; ++i, --remaining) {
        sim.schedule_after(
            SimTime::micros(static_cast<std::int64_t>(rng.next_below(200'000))),
            [&] { relay(); });
      }
    };
    sim.schedule_after(SimTime::zero(), [&] { relay(); });
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * budget);
}
BENCHMARK(BM_SimFanoutCascade)->Arg(100'000);

// ---- CalendarQueue vs NaiveEventQueue A/B -----------------------------------
//
// Same workload through both queue implementations, with the capture size the
// gossip fast path actually carries (~40 bytes: endpoints plus a shared
// message pointer).  That size is what separates the two designs: it fits
// EventFn's inline storage but overflows std::function's, so the naive queue
// pays a heap allocation per event on top of the O(log n) sift and the
// live-set hashing.

/// Bulk load n events at random offsets, then drain — the worst case for
/// calendar locality (random-order inserts at full occupancy).
template <typename Queue>
void queue_schedule_fire(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    Queue q;
    Rng rng(42);
    for (int i = 0; i < n; ++i) {
      const std::uint64_t a = rng.next_u64();
      const std::uint64_t b = rng.next_u64();
      q.push(SimTime::nanos(static_cast<std::int64_t>(
                 rng.next_below(1'000'000'000))),
             [a, b, i, &sink] { sink += a ^ b ^ static_cast<std::uint64_t>(i); });
    }
    while (!q.empty()) {
      auto fired = q.pop();
      fired.fn();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_CalendarQueueScheduleFire(benchmark::State& state) {
  queue_schedule_fire<net::CalendarQueue>(state);
}
void BM_NaiveQueueScheduleFire(benchmark::State& state) {
  queue_schedule_fire<net::NaiveEventQueue>(state);
}
BENCHMARK(BM_CalendarQueueScheduleFire)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000);
BENCHMARK(BM_NaiveQueueScheduleFire)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

/// Steady state: a standing population of range(0) events; every fired event
/// schedules one replacement a short random delay ahead — the shape of a live
/// simulation, and the shape where the heap's O(log n) sift (cache-missing a
/// random path through a huge array) separates from the calendar's O(1)
/// bucket append.  Building the standing population is excluded from timing.
template <typename Queue>
void queue_steady_state(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  const std::uint64_t budget = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      Queue q;
      Rng rng(7);
      for (int i = 0; i < population; ++i) {
        const std::uint64_t a = rng.next_u64();
        const std::uint64_t b = rng.next_u64();
        q.push(
            SimTime::micros(static_cast<std::int64_t>(rng.next_below(200'000))),
            [a, b, i, &sink] { sink += a ^ b ^ static_cast<std::uint64_t>(i); });
      }
      state.ResumeTiming();
      for (std::uint64_t done = 0; done < budget; ++done) {
        auto fired = q.pop();
        fired.fn();
        const std::uint64_t a = rng.next_u64();
        const std::uint64_t b = rng.next_u64();
        q.push(fired.time + SimTime::micros(static_cast<std::int64_t>(
                                rng.next_below(200'000))),
               [a, b, done, &sink] { sink += a ^ b ^ done; });
      }
      benchmark::DoNotOptimize(sink);
      state.PauseTiming();
    }  // queue teardown outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * budget);
}
void BM_CalendarQueueSteadyState(benchmark::State& state) {
  queue_steady_state<net::CalendarQueue>(state);
}
void BM_NaiveQueueSteadyState(benchmark::State& state) {
  queue_steady_state<net::NaiveEventQueue>(state);
}
BENCHMARK(BM_CalendarQueueSteadyState)
    ->Args({4096, 100'000})
    ->Args({100'000, 1'000'000})
    ->Args({1'000'000, 1'000'000});
BENCHMARK(BM_NaiveQueueSteadyState)
    ->Args({4096, 100'000})
    ->Args({100'000, 1'000'000})
    ->Args({1'000'000, 1'000'000});

}  // namespace
