// Fig. 3: the initial computing-power distribution — blocks mined per node in
// the BTC.com ranking week (Jan 06-12 2022) used to initialize h_i = b_i*H_0.
//
// A static data dump: --trials/--threads are accepted for bench-runner
// uniformity but there is no stochastic dimension to fan out.
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/power_dist.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 3 — initial computing-power distribution",
                "Jia et al., ICDCS 2022, Fig. 3 / §VII-A");

  const auto& ranking = sim::btc_pool_ranking_jan2022();
  std::uint64_t total = 0;
  for (const auto& p : ranking) total += p.blocks;

  metrics::Table t({"rank", "pool", "blocks", "share %", "h_i (x H_0)"});
  std::size_t rank = 1;
  for (const auto& p : ranking) {
    const double share = 100.0 * static_cast<double>(p.blocks) /
                         static_cast<double>(total);
    const bool unknown = p.name == "unknown";
    t.add_row({unknown ? "-" : std::to_string(rank++), p.name,
               metrics::Table::num(p.blocks), metrics::Table::num(share, 2),
               unknown ? "1 each" : metrics::Table::num(p.blocks)});
  }
  emit(t, args);

  const std::uint64_t top4 = ranking[0].blocks + ranking[1].blocks +
                             ranking[2].blocks + ranking[3].blocks;
  std::cout << "\ntotal blocks: " << total
            << "  top-4 share: " << 100.0 * top4 / total
            << "% (paper: 59.17%)  unknown share: "
            << 100.0 * ranking.back().blocks / total << "% (paper: 1.68%)\n";

  const auto power = sim::btc_jan2022_power(100, 1.0);
  std::cout << "sigma_p^2 of the raw distribution over 100 nodes: "
            << metrics::probability_variance_from_power(power)
            << " (the PoW-H baseline's per-round probability variance)\n";
  bench::print_run_footer(args, timer);
  return 0;
}
