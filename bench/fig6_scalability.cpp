// Fig. 6 — Scalability (higher is better): TPS against the number of
// consensus nodes for PoW-H, Themis, Themis-Lite and PBFT.
//
// Paper shape: the three PoX algorithms stay within ~20 TPS of each other,
// starting >1000 and easing to ~650 at 600 nodes; PBFT drops below 500 past
// 200 nodes and almost hits 0 at 600 (the leader's O(n) broadcast plus O(n)
// per-replica verification blow past the view-change timeout).
//
// Power is uniform here (the post-convergence regime): scalability isolates
// network size, not power skew, and uniform power admits any n.
//
// With --trials N every (scale, algorithm) point runs N independent seeds,
// fanned across --threads workers; cells report mean ± 95% CI, and a
// per-trial table lists each trial's seed and TPS (stdout is bit-identical
// for any --threads value — diff it to check).
#include <iostream>

#include "bench_util.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"
#include "sim/trial_runner.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 6 — Scalability: TPS vs number of consensus nodes",
                "Jia et al., ICDCS 2022, Fig. 6 / §VII-D");

  const std::vector<std::size_t> scales =
      args.quick ? std::vector<std::size_t>{10, 50, 100}
                 : std::vector<std::size_t>{10, 50, 100, 200, 400, 600};
  const std::vector<core::Algorithm> algorithms = {
      core::Algorithm::kPowH, core::Algorithm::kThemisLite,
      core::Algorithm::kThemis};
  const std::uint32_t batch = 4096;
  const double interval = 4.0;

  // One sweep point per (scale, algorithm), fanned out together so the big
  // scales do not serialize behind each other.
  std::vector<sim::PoxTrialSpec> points;
  for (const std::size_t n : scales) {
    for (const auto algorithm : algorithms) {
      sim::PoxTrialSpec spec;
      spec.config.algorithm = algorithm;
      spec.config.n_nodes = n;
      spec.config.hash_rates = sim::uniform_power(n, spec.config.h0);
      spec.config.beta = 8;
      spec.config.expected_interval_s = interval;
      spec.config.txs_per_block = batch;
      spec.config.seed = args.seed;
      spec.target_height = args.quick ? 150 : 300;
      spec.max_sim_time = SimTime::seconds(args.quick ? 2000.0 : 4000.0);
      spec.collect_variances = false;  // throughput-only sweep
      points.push_back(std::move(spec));
    }
  }
  const auto sweep = sim::run_pox_sweep(points, args.runner());

  std::vector<sim::PbftScenario> pbft_points;
  for (const std::size_t n : scales) {
    sim::PbftScenario scenario;
    scenario.n_nodes = n;
    scenario.pbft.batch_size = batch;
    scenario.duration = SimTime::seconds(args.quick ? 120.0 : 240.0);
    scenario.seed = args.seed;
    pbft_points.push_back(scenario);
  }
  const auto pbft_sweep = sim::run_pbft_sweep(pbft_points, args.runner());

  const auto tps_of = [](const std::vector<sim::PoxTrialResult>& trials) {
    return metrics::summarize_over(
        trials, [](const sim::PoxTrialResult& r) { return r.tps; });
  };

  metrics::Table t({"nodes", "PoW-H", "Themis-Lite", "Themis", "PBFT",
                    "PBFT view-changes"});
  for (std::size_t s = 0; s < scales.size(); ++s) {
    const auto pbft_tps = metrics::summarize_over(
        pbft_sweep[s],
        [](const sim::PbftTrialResult& r) { return r.result.tps; });
    const auto pbft_vc = metrics::summarize_over(
        pbft_sweep[s], [](const sim::PbftTrialResult& r) {
          return static_cast<double>(r.result.view_changes);
        });
    t.add_row({std::to_string(scales[s]),
               bench::cell(tps_of(sweep[3 * s + 0]), 1),
               bench::cell(tps_of(sweep[3 * s + 1]), 1),
               bench::cell(tps_of(sweep[3 * s + 2]), 1),
               bench::cell(pbft_tps, 1), bench::cell(pbft_vc, 0)});
  }
  emit(t, args);

  if (args.runner().trials > 1) {
    const char* names[] = {"PoW-H", "Themis-Lite", "Themis"};
    metrics::Table detail(
        {"nodes", "algorithm", "trial", "seed", "TPS", "sim elapsed s"});
    for (std::size_t s = 0; s < scales.size(); ++s) {
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        for (const auto& r : sweep[3 * s + a]) {
          detail.add_row({std::to_string(scales[s]), names[a],
                          std::to_string(r.trial), std::to_string(r.seed),
                          metrics::Table::num(r.tps, 6),
                          metrics::Table::num(r.elapsed_sim_s, 6)});
        }
      }
    }
    std::cout << "\nper-trial metrics (bit-identical for any --threads):\n";
    emit(detail, args);
  }

  std::cout << "\nReading: PoX TPS declines gently (propagation depth grows "
               "with n); PBFT collapses once its round time crosses the "
               "view-change timeout.\n";
  bench::print_run_footer(args, timer);
  return 0;
}
