// Fig. 6 — Scalability (higher is better): TPS against the number of
// consensus nodes for PoW-H, Themis, Themis-Lite and PBFT.
//
// Paper shape: the three PoX algorithms stay within ~20 TPS of each other,
// starting >1000 and easing to ~650 at 600 nodes; PBFT drops below 500 past
// 200 nodes and almost hits 0 at 600 (the leader's O(n) broadcast plus O(n)
// per-replica verification blow past the view-change timeout).
//
// Power is uniform here (the post-convergence regime): scalability isolates
// network size, not power skew, and uniform power admits any n.
#include <iostream>

#include "bench_util.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Fig. 6 — Scalability: TPS vs number of consensus nodes",
                "Jia et al., ICDCS 2022, Fig. 6 / §VII-D");

  const std::vector<std::size_t> scales =
      args.quick ? std::vector<std::size_t>{10, 50, 100}
                 : std::vector<std::size_t>{10, 50, 100, 200, 400, 600};
  const std::uint32_t batch = 4096;
  const double interval = 4.0;

  metrics::Table t({"nodes", "PoW-H", "Themis-Lite", "Themis", "PBFT",
                    "PBFT view-changes"});

  for (const std::size_t n : scales) {
    std::vector<double> pox_tps;
    for (const auto algorithm :
         {core::Algorithm::kPowH, core::Algorithm::kThemisLite,
          core::Algorithm::kThemis}) {
      sim::PoxConfig cfg;
      cfg.algorithm = algorithm;
      cfg.n_nodes = n;
      cfg.hash_rates = sim::uniform_power(n, cfg.h0);
      cfg.beta = 8;
      cfg.expected_interval_s = interval;
      cfg.txs_per_block = batch;
      cfg.seed = args.seed;
      sim::PoxExperiment exp(cfg);
      exp.run_to_height(args.quick ? 150 : 300,
                        SimTime::seconds(args.quick ? 2000.0 : 4000.0));
      pox_tps.push_back(exp.tps());
    }

    sim::PbftScenario scenario;
    scenario.n_nodes = n;
    scenario.pbft.batch_size = batch;
    scenario.duration = SimTime::seconds(args.quick ? 120.0 : 240.0);
    scenario.seed = args.seed;
    const auto pbft = sim::run_pbft(scenario);

    t.add_row({std::to_string(n), metrics::Table::num(pox_tps[0], 1),
               metrics::Table::num(pox_tps[1], 1),
               metrics::Table::num(pox_tps[2], 1),
               metrics::Table::num(pbft.tps, 1),
               metrics::Table::num(pbft.view_changes)});
  }
  emit(t, args);

  std::cout << "\nReading: PoX TPS declines gently (propagation depth grows "
               "with n); PBFT collapses once its round time crosses the "
               "view-change timeout.\n";
  return 0;
}
