// Table I — comparison of consensus algorithms on the three design goals.
//
// The paper's table is qualitative; this harness derives the marks from
// measurements on a common scenario:
//   Equality         — converged sigma_f^2 relative to the round-robin ideal
//   Unpredictability — converged sigma_p^2 (one-hot = fully predictable)
//   Scalability      — TPS retention from n=10 to n=400
// Marks: O = meets the goal, ^ = meets it with caveats, X = does not.
#include <iostream>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"

namespace {

using namespace themis;

struct Scores {
  double equality = 0;          // converged sigma_f^2
  double unpredictability = 0;  // converged sigma_p^2
  double tps_retention = 0;     // tps(400) / tps(10)
};

std::string mark(double value, double good, double poor, bool lower_is_better) {
  if (lower_is_better) {
    if (value <= good) return "O";
    if (value <= poor) return "^";
    return "X";
  }
  if (value >= good) return "O";
  if (value >= poor) return "^";
  return "X";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Table I — comparison of consensus algorithms",
                "Jia et al., ICDCS 2022, Table I");

  const std::size_t n = args.quick ? 30 : 60;
  const std::uint64_t epochs = args.quick ? 4 : 8;

  auto measure_pox = [&](core::Algorithm algorithm) {
    Scores s;
    sim::PoxConfig cfg;
    cfg.algorithm = algorithm;
    cfg.n_nodes = n;
    cfg.beta = 8;
    cfg.txs_per_block = 0;
    cfg.seed = args.seed;
    sim::PoxExperiment exp(cfg);
    exp.run_to_height(epochs * exp.delta());
    s.equality = exp.per_epoch_frequency_variance().back();
    s.unpredictability = exp.per_epoch_probability_variance().back();

    // Scalability: TPS retention between 10 and 400 uniform nodes.
    double tps_small = 0, tps_large = 0;
    for (const std::size_t scale : {std::size_t{10}, std::size_t{400}}) {
      sim::PoxConfig c2;
      c2.algorithm = algorithm;
      c2.n_nodes = scale;
      c2.hash_rates = sim::uniform_power(scale, c2.h0);
      c2.beta = 8;
      c2.txs_per_block = 4096;
      c2.seed = args.seed;
      sim::PoxExperiment e2(c2);
      e2.run_to_height(args.quick ? 80 : 150);
      (scale == 10 ? tps_small : tps_large) = e2.tps();
    }
    s.tps_retention = tps_large / tps_small;
    return s;
  };

  const Scores themis = measure_pox(core::Algorithm::kThemis);
  const Scores powh = measure_pox(core::Algorithm::kPowH);

  // PBFT: equality from rotation, predictability one-hot, scalability from
  // the same two scales.
  Scores pbft;
  pbft.unpredictability = metrics::pbft_probability_variance(n);
  {
    double tps_small = 0, tps_large = 0;
    std::uint64_t committed_small = 1;
    for (const std::size_t scale : {std::size_t{10}, std::size_t{400}}) {
      sim::PbftScenario scenario;
      scenario.n_nodes = scale;
      scenario.pbft.batch_size = 4096;
      scenario.duration = SimTime::seconds(args.quick ? 90.0 : 180.0);
      scenario.seed = args.seed;
      const auto r = sim::run_pbft(scenario);
      (scale == 10 ? tps_small : tps_large) = r.tps;
      if (scale == 10) committed_small = std::max<std::uint64_t>(1, r.committed_blocks);
    }
    pbft.tps_retention = tps_small > 0 ? tps_large / tps_small : 0.0;
    (void)committed_small;
    pbft.equality = 0.0;  // strict rotation
  }

  const double rr_floor = 1e-6;  // "as equal as round-robin" threshold
  metrics::Table t({"algorithm", "Equality", "Unpredictability", "Scalability",
                    "sigma_f^2", "sigma_p^2", "TPS retention"});
  auto row = [&](const std::string& name, const Scores& s) {
    t.add_row({name, mark(s.equality, 1e-4, 5e-3, true),
               mark(s.unpredictability, 5e-5, 5e-3, true),
               mark(s.tps_retention, 0.6, 0.25, false),
               metrics::Table::num(s.equality, 6),
               metrics::Table::num(s.unpredictability, 6),
               metrics::Table::num(s.tps_retention, 2)});
  };
  row("PoW-H", powh);
  row("PBFT", {pbft.equality, pbft.unpredictability, pbft.tps_retention});
  row("Themis", themis);
  (void)rr_floor;
  emit(t, args);

  std::cout << "\nPaper's Table I: PoW ^/^/O, PBFT O/X/X, Themis O/O/O.\n"
               "(O = meets the goal, ^ = needs improvement, X = does not.)\n";
  return 0;
}
