// Table I — comparison of consensus algorithms on the three design goals.
//
// The paper's table is qualitative; this harness derives the marks from
// measurements on a common scenario:
//   Equality         — converged sigma_f^2 relative to the round-robin ideal
//   Unpredictability — converged sigma_p^2 (one-hot = fully predictable)
//   Scalability      — TPS retention from n=10 to n=400
// Marks: O = meets the goal, ^ = meets it with caveats, X = does not.
//
// With --trials N every measurement point runs N independent seeds in
// parallel and the marks are derived from the cross-trial means.
#include <iostream>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"
#include "sim/trial_runner.h"

namespace {

using namespace themis;

struct Scores {
  double equality = 0;          // converged sigma_f^2
  double unpredictability = 0;  // converged sigma_p^2
  double tps_retention = 0;     // tps(400) / tps(10)
};

std::string mark(double value, double good, double poor, bool lower_is_better) {
  if (lower_is_better) {
    if (value <= good) return "O";
    if (value <= poor) return "^";
    return "X";
  }
  if (value >= good) return "O";
  if (value >= poor) return "^";
  return "X";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Table I — comparison of consensus algorithms",
                "Jia et al., ICDCS 2022, Table I");

  const std::size_t n = args.quick ? 30 : 60;
  const std::uint64_t epochs = args.quick ? 4 : 8;
  const auto options = args.runner();

  // Three points per PoX algorithm — the variance scenario plus the two
  // scalability scales — all fanned out in a single sweep.
  const auto points_for = [&](core::Algorithm algorithm) {
    std::vector<sim::PoxTrialSpec> points;
    sim::PoxTrialSpec main_spec;
    main_spec.config.algorithm = algorithm;
    main_spec.config.n_nodes = n;
    main_spec.config.beta = 8;
    main_spec.config.txs_per_block = 0;
    main_spec.config.seed = args.seed;
    main_spec.target_height =
        epochs * sim::PoxExperiment::delta_for(main_spec.config);
    points.push_back(std::move(main_spec));
    for (const std::size_t scale : {std::size_t{10}, std::size_t{400}}) {
      sim::PoxTrialSpec spec;
      spec.config.algorithm = algorithm;
      spec.config.n_nodes = scale;
      spec.config.hash_rates = sim::uniform_power(scale, spec.config.h0);
      spec.config.beta = 8;
      spec.config.txs_per_block = 4096;
      spec.config.seed = args.seed;
      spec.target_height = args.quick ? 80 : 150;
      spec.collect_variances = false;
      points.push_back(std::move(spec));
    }
    return points;
  };

  std::vector<sim::PoxTrialSpec> points = points_for(core::Algorithm::kThemis);
  {
    auto powh = points_for(core::Algorithm::kPowH);
    points.insert(points.end(), std::make_move_iterator(powh.begin()),
                  std::make_move_iterator(powh.end()));
  }
  const auto sweep = sim::run_pox_sweep(points, options);

  // Point layout: [0..2] Themis (main, n=10, n=400), [3..5] PoW-H.
  const auto scores_at = [&](std::size_t base) {
    Scores s;
    s.equality = metrics::summarize_over(
                     sweep[base],
                     [](const sim::PoxTrialResult& r) {
                       return r.frequency_variance.back();
                     })
                     .mean;
    s.unpredictability = metrics::summarize_over(
                             sweep[base],
                             [](const sim::PoxTrialResult& r) {
                               return r.probability_variance.back();
                             })
                             .mean;
    const auto tps_mean = [&](std::size_t point) {
      return metrics::summarize_over(
                 sweep[point],
                 [](const sim::PoxTrialResult& r) { return r.tps; })
          .mean;
    };
    s.tps_retention = tps_mean(base + 2) / tps_mean(base + 1);
    return s;
  };
  const Scores themis = scores_at(0);
  const Scores powh = scores_at(3);

  // PBFT: equality from rotation, predictability one-hot, scalability from
  // the same two scales.
  Scores pbft;
  pbft.unpredictability = metrics::pbft_probability_variance(n);
  pbft.equality = 0.0;  // strict rotation
  {
    std::vector<sim::PbftScenario> pbft_points;
    for (const std::size_t scale : {std::size_t{10}, std::size_t{400}}) {
      sim::PbftScenario scenario;
      scenario.n_nodes = scale;
      scenario.pbft.batch_size = 4096;
      scenario.duration = SimTime::seconds(args.quick ? 90.0 : 180.0);
      scenario.seed = args.seed;
      pbft_points.push_back(scenario);
    }
    const auto pbft_sweep = sim::run_pbft_sweep(pbft_points, options);
    const auto tps_mean = [&](std::size_t point) {
      return metrics::summarize_over(
                 pbft_sweep[point],
                 [](const sim::PbftTrialResult& r) { return r.result.tps; })
          .mean;
    };
    const double tps_small = tps_mean(0);
    pbft.tps_retention = tps_small > 0 ? tps_mean(1) / tps_small : 0.0;
  }

  metrics::Table t({"algorithm", "Equality", "Unpredictability", "Scalability",
                    "sigma_f^2", "sigma_p^2", "TPS retention"});
  auto row = [&](const std::string& name, const Scores& s) {
    t.add_row({name, mark(s.equality, 1e-4, 5e-3, true),
               mark(s.unpredictability, 5e-5, 5e-3, true),
               mark(s.tps_retention, 0.6, 0.25, false),
               metrics::Table::num(s.equality, 6),
               metrics::Table::num(s.unpredictability, 6),
               metrics::Table::num(s.tps_retention, 2)});
  };
  row("PoW-H", powh);
  row("PBFT", pbft);
  row("Themis", themis);
  emit(t, args);

  std::cout << "\nPaper's Table I: PoW ^/^/O, PBFT O/X/X, Themis O/O/O.\n"
               "(O = meets the goal, ^ = needs improvement, X = does not.)\n";
  bench::print_run_footer(args, timer);
  return 0;
}
