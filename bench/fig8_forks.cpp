// Fig. 8 — Fork duration (lower is better): longest fork duration and average
// fork rate across several runs under identical difficulty and block-interval
// settings, for PoW-H, Themis-Lite and Themis.
//
// Paper values: fork rate 4.36 % (PoW-H) / 5.33 % (Themis) / 5.61 % (Lite);
// PoW-H converges within 1-2 blocks, Themis/Lite within 2-3.  (PBFT has no
// forks and is excluded, as in the paper.)
//
// Runs are independent trials on the parallel trial runner (default 6, 3
// with --quick; override with --trials); per-trial seeds follow the
// trial_seed contract, so results are thread-count invariant.
//
// --ablation additionally reruns Themis with the m_i >= 1 floor and the
// D_base retarget disabled (design-choice ablations from DESIGN.md).
#include <iostream>

#include "bench_util.h"
#include "sim/experiment.h"
#include "sim/trial_runner.h"

namespace {

using namespace themis;

sim::PoxTrialSpec spec_for(core::Algorithm algorithm, std::size_t n,
                           std::uint64_t epochs, std::uint64_t seed,
                           bool floor_on = true, bool retarget_on = true) {
  sim::PoxTrialSpec spec;
  spec.config.algorithm = algorithm;
  spec.config.n_nodes = n;
  spec.config.beta = 8;
  spec.config.txs_per_block = 0;
  spec.config.seed = seed;
  spec.config.enforce_multiple_floor = floor_on;
  spec.config.enable_retarget = retarget_on;
  const std::uint64_t delta = sim::PoxExperiment::delta_for(spec.config);
  spec.target_height = epochs * delta;
  // Measure the converged regime (the last two epochs): the paper compares
  // the algorithms "under the same block-producing difficulty and block
  // interval settings", which for Themis means after the multiples and the
  // retarget settle back to the I_0 interval.
  spec.tail_from_height = (epochs - 2) * delta;
  spec.collect_variances = false;
  return spec;
}

void add_row(metrics::Table& t, const std::string& name,
             const std::vector<sim::PoxTrialResult>& trials) {
  const auto over = [&](auto fn) {
    return metrics::summarize_over(trials, fn);
  };
  std::uint64_t longest = 0;
  for (const auto& r : trials) {
    longest = std::max(longest, r.tail_forks.longest_fork_duration);
  }
  t.add_row({name,
             bench::cell(over([](const sim::PoxTrialResult& r) {
                           return 100.0 * r.tail_forks.stale_rate;
                         }),
                         2),
             bench::cell(over([](const sim::PoxTrialResult& r) {
                           return 100.0 * r.tail_forks.forked_height_fraction;
                         }),
                         2),
             bench::cell(over([](const sim::PoxTrialResult& r) {
                           return r.tail_forks.mean_fork_duration;
                         }),
                         2),
             metrics::Table::num(longest)});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, {"--ablation"});
  const bench::WallTimer timer;
  const bool ablation = bench::ArgParser(argc, argv).flag("--ablation");
  bench::banner("Fig. 8 — fork rate and fork duration (multi-trial)",
                "Jia et al., ICDCS 2022, Fig. 8 / §VII-D");

  const std::size_t n = args.quick ? 30 : 60;
  const std::uint64_t epochs = args.quick ? 4 : 6;
  const std::size_t default_trials = args.quick ? 3 : 6;
  const auto options = args.runner(default_trials);
  std::cout << "n=" << n << "  epochs/run=" << epochs << " (delta=8n)  runs="
            << options.trials << "\n";

  std::vector<sim::PoxTrialSpec> points = {
      spec_for(core::Algorithm::kPowH, n, epochs, args.seed),
      spec_for(core::Algorithm::kThemisLite, n, epochs, args.seed),
      spec_for(core::Algorithm::kThemis, n, epochs, args.seed)};
  if (ablation) {
    points.push_back(spec_for(core::Algorithm::kThemis, n, epochs, args.seed,
                              /*floor_on=*/false));
    points.push_back(spec_for(core::Algorithm::kThemis, n, epochs, args.seed,
                              /*floor_on=*/true, /*retarget_on=*/false));
  }
  const auto sweep = sim::run_pox_sweep(points, options);

  metrics::Table t({"algorithm", "fork rate % (stale)", "forked heights %",
                    "mean fork duration", "longest fork duration"});
  add_row(t, "PoW-H", sweep[0]);
  add_row(t, "Themis-Lite", sweep[1]);
  add_row(t, "Themis", sweep[2]);
  emit(t, args);

  if (ablation) {
    metrics::Table a({"Themis variant", "fork rate % (stale)",
                      "forked heights %", "mean fork duration",
                      "longest fork duration"});
    add_row(a, "baseline", sweep[2]);
    add_row(a, "no m_i floor", sweep[3]);
    add_row(a, "no retarget", sweep[4]);
    std::cout << "\nDesign-choice ablations:\n";
    emit(a, args);
  }

  std::cout << "\nPaper values: PoW-H 4.36% (1-2 blocks), Themis 5.33% and "
               "Themis-Lite 5.61% (2-3 blocks).\n";
  bench::print_run_footer(args, timer, default_trials);
  return 0;
}
