// Fig. 8 — Fork duration (lower is better): longest fork duration and average
// fork rate across 6 runs under identical difficulty and block-interval
// settings, for PoW-H, Themis-Lite and Themis.
//
// Paper values: fork rate 4.36 % (PoW-H) / 5.33 % (Themis) / 5.61 % (Lite);
// PoW-H converges within 1-2 blocks, Themis/Lite within 2-3.  (PBFT has no
// forks and is excluded, as in the paper.)
//
// --ablation additionally reruns Themis with the m_i >= 1 floor and the
// D_base retarget disabled (design-choice ablations from DESIGN.md).
#include <cstring>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/experiment.h"

namespace {

using namespace themis;

struct ForkSummary {
  double mean_stale_rate = 0;
  double mean_forked_fraction = 0;
  std::uint64_t longest_duration = 0;
  double mean_duration = 0;
};

ForkSummary measure(core::Algorithm algorithm, std::size_t n,
                    std::uint64_t epochs, int runs, std::uint64_t seed,
                    bool floor_on = true, bool retarget_on = true) {
  ForkSummary summary;
  RunningStats stale, forked, duration;
  for (int run = 0; run < runs; ++run) {
    sim::PoxConfig cfg;
    cfg.algorithm = algorithm;
    cfg.n_nodes = n;
    cfg.beta = 8;
    cfg.txs_per_block = 0;
    cfg.seed = seed + static_cast<std::uint64_t>(run) * 1000;
    cfg.enforce_multiple_floor = floor_on;
    cfg.enable_retarget = retarget_on;
    sim::PoxExperiment exp(cfg);
    const std::uint64_t blocks = epochs * exp.delta();
    exp.run_to_height(blocks);
    // Measure the converged regime (the last half of the run): the paper
    // compares the algorithms "under the same block-producing difficulty and
    // block interval settings", which for Themis means after the multiples
    // and the retarget settle back to the I_0 interval.
    const auto stats =
        exp.fork_stats(/*from_height=*/(epochs - 2) * exp.delta());
    stale.add(stats.stale_rate);
    forked.add(stats.forked_height_fraction);
    duration.add(stats.mean_fork_duration);
    summary.longest_duration =
        std::max(summary.longest_duration, stats.longest_fork_duration);
  }
  summary.mean_stale_rate = stale.mean();
  summary.mean_forked_fraction = forked.mean();
  summary.mean_duration = duration.mean();
  return summary;
}

void add_row(metrics::Table& t, const std::string& name, const ForkSummary& s) {
  t.add_row({name, metrics::Table::num(100.0 * s.mean_stale_rate, 2),
             metrics::Table::num(100.0 * s.mean_forked_fraction, 2),
             metrics::Table::num(s.mean_duration, 2),
             metrics::Table::num(s.longest_duration)});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bool ablation = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ablation") == 0) ablation = true;
  }
  bench::banner("Fig. 8 — fork rate and fork duration (6 runs each)",
                "Jia et al., ICDCS 2022, Fig. 8 / §VII-D");

  const std::size_t n = args.quick ? 30 : 60;
  const std::uint64_t epochs = args.quick ? 4 : 6;
  const int runs = args.quick ? 3 : 6;
  std::cout << "n=" << n << "  epochs/run=" << epochs << " (delta=8n)  runs="
            << runs << "\n";

  metrics::Table t({"algorithm", "fork rate % (stale)", "forked heights %",
                    "mean fork duration", "longest fork duration"});
  add_row(t, "PoW-H",
          measure(core::Algorithm::kPowH, n, epochs, runs, args.seed));
  add_row(t, "Themis-Lite",
          measure(core::Algorithm::kThemisLite, n, epochs, runs, args.seed));
  add_row(t, "Themis",
          measure(core::Algorithm::kThemis, n, epochs, runs, args.seed));
  emit(t, args);

  if (ablation) {
    metrics::Table a({"Themis variant", "fork rate % (stale)",
                      "forked heights %", "mean fork duration",
                      "longest fork duration"});
    add_row(a, "baseline",
            measure(core::Algorithm::kThemis, n, epochs, runs, args.seed));
    add_row(a, "no m_i floor",
            measure(core::Algorithm::kThemis, n, epochs, runs, args.seed,
                    /*floor_on=*/false));
    add_row(a, "no retarget",
            measure(core::Algorithm::kThemis, n, epochs, runs, args.seed,
                    /*floor_on=*/true, /*retarget_on=*/false));
    std::cout << "\nDesign-choice ablations:\n";
    emit(a, args);
  }

  std::cout << "\nPaper values: PoW-H 4.36% (1-2 blocks), Themis 5.33% and "
               "Themis-Lite 5.61% (2-3 blocks).\n";
  return 0;
}
