// Fig. 9 — stable variance of block-producing frequency against the epoch-
// length factor beta (delta = beta * n).
//
// Paper shape: U-curve — small beta makes q_i/delta too noisy an estimate;
// large beta lets high-power nodes overshoot within the counting window.
// Recommended deployment range: beta in [7, 11].
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Fig. 9 — stable sigma_f^2 vs beta (delta = beta*n)",
                "Jia et al., ICDCS 2022, Fig. 9 / §VII-D");

  const std::size_t n = args.quick ? 30 : 50;
  const std::vector<double> betas =
      args.quick ? std::vector<double>{2, 4, 8, 12, 16}
                 : std::vector<double>{2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 14, 16};
  // "At the same block height" (§VII-D): every beta runs to the same height,
  // and the stable value is the average sigma_f^2 of the last 5 full epochs
  // (paper footnote 15).  The height budget gives the largest delta exactly 6
  // epochs — this is what produces the paper's U-shape: small beta estimates
  // q_i/delta too noisily, while large beta has spent most of the shared
  // height budget before its multiples converge ("high computing power nodes
  // have already produced many blocks in the counting epoch").
  const std::uint64_t target_height =
      static_cast<std::uint64_t>(6 * 16.0 * n);
  const int seeds = args.quick ? 2 : 3;

  std::cout << "n=" << n << "  common height=" << target_height
            << "  seeds averaged=" << seeds << "\n";

  metrics::Table t({"beta", "delta", "epochs", "stable sigma_f^2"});
  for (const double beta : betas) {
    RunningStats stable;
    std::uint64_t delta = 0;
    std::size_t epoch_count = 0;
    for (int s = 0; s < seeds; ++s) {
      sim::PoxConfig cfg;
      cfg.algorithm = core::Algorithm::kThemis;
      cfg.n_nodes = n;
      cfg.beta = beta;
      cfg.txs_per_block = 0;
      cfg.seed = args.seed + static_cast<std::uint64_t>(s) * 7919;
      sim::PoxExperiment exp(cfg);
      exp.run_to_height(target_height);
      const auto series = exp.per_epoch_frequency_variance();
      delta = exp.delta();
      epoch_count = series.size();
      const std::size_t k = std::min<std::size_t>(5, series.size());
      for (std::size_t i = series.size() - k; i < series.size(); ++i) {
        stable.add(series[i]);
      }
    }
    t.add_row({metrics::Table::num(beta, 0), std::to_string(delta),
               std::to_string(epoch_count),
               metrics::Table::num(stable.mean(), 7)});
  }
  emit(t, args);

  std::cout << "\nPaper's recommendation: deploy with beta in [7, 11] (the "
               "bottom of the U).\n";
  return 0;
}
