// Fig. 9 — stable variance of block-producing frequency against the epoch-
// length factor beta (delta = beta * n).
//
// Paper shape: U-curve — small beta makes q_i/delta too noisy an estimate;
// large beta lets high-power nodes overshoot within the counting window.
// Recommended deployment range: beta in [7, 11].
//
// Each beta averages several independent trials (default 3, 2 with --quick;
// override with --trials), all fanned across --threads workers.
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/experiment.h"
#include "sim/trial_runner.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 9 — stable sigma_f^2 vs beta (delta = beta*n)",
                "Jia et al., ICDCS 2022, Fig. 9 / §VII-D");

  const std::size_t n = args.quick ? 30 : 50;
  const std::vector<double> betas =
      args.quick ? std::vector<double>{2, 4, 8, 12, 16}
                 : std::vector<double>{2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 14, 16};
  // "At the same block height" (§VII-D): every beta runs to the same height,
  // and the stable value is the average sigma_f^2 of the last 5 full epochs
  // (paper footnote 15).  The height budget gives the largest delta exactly 6
  // epochs — this is what produces the paper's U-shape: small beta estimates
  // q_i/delta too noisily, while large beta has spent most of the shared
  // height budget before its multiples converge ("high computing power nodes
  // have already produced many blocks in the counting epoch").
  const std::uint64_t target_height =
      static_cast<std::uint64_t>(6 * 16.0 * n);
  const std::size_t default_trials = args.quick ? 2 : 3;
  const auto options = args.runner(default_trials);

  std::cout << "n=" << n << "  common height=" << target_height
            << "  seeds averaged=" << options.trials << "\n";

  std::vector<sim::PoxTrialSpec> points;
  for (const double beta : betas) {
    sim::PoxTrialSpec spec;
    spec.config.algorithm = core::Algorithm::kThemis;
    spec.config.n_nodes = n;
    spec.config.beta = beta;
    spec.config.txs_per_block = 0;
    spec.config.seed = args.seed;
    spec.target_height = target_height;
    points.push_back(std::move(spec));
  }
  const auto sweep = sim::run_pox_sweep(points, options);

  metrics::Table t({"beta", "delta", "epochs", "stable sigma_f^2"});
  for (std::size_t b = 0; b < betas.size(); ++b) {
    // Stable value: average sigma_f^2 of each trial's last 5 full epochs,
    // pooled across trials (matches the historical per-seed accumulation).
    RunningStats stable;
    for (const auto& trial : sweep[b]) {
      const auto& series = trial.frequency_variance;
      const std::size_t k = std::min<std::size_t>(5, series.size());
      for (std::size_t i = series.size() - k; i < series.size(); ++i) {
        stable.add(series[i]);
      }
    }
    const auto& first = sweep[b].front();
    t.add_row({metrics::Table::num(betas[b], 0), std::to_string(first.delta),
               std::to_string(first.frequency_variance.size()),
               metrics::Table::num(stable.mean(), 7)});
  }
  emit(t, args);

  std::cout << "\nPaper's recommendation: deploy with beta in [7, 11] (the "
               "bottom of the U).\n";
  bench::print_run_footer(args, timer, default_trials);
  return 0;
}
