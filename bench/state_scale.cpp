// Authenticated-state scale benchmark: restart paths and query latency at a
// million-account ledger.  This is the headline driver for the authstate
// layer: BENCH_state.json records how much faster a node restarts from a
// state snapshot (+ pruned store) than from a full O(history) replay, plus
// get_balance and Merkle-proof latency percentiles against the same state.
//
// The chain is synthesized directly into a BlockStore (no PoW, no network):
// account 0 is funded past 2^64 at genesis and fans out one transfer per new
// account, so the final state holds --accounts live accounts and at least
// one >64-bit balance exercising the wide-limb paths end to end.
//
//   --accounts=<n>      live accounts to create (default 1048576; --quick:
//                       65536)
//   --txs-per-block=<n> transfers per synthesized block (default 4096;
//                       --quick: 1024)
//   --churn-blocks=<n>  extra blocks of transfers among existing accounts
//                       after creation — restart cost is O(history), so a
//                       history of creations only would understate it
//                       (default 256; --quick: 64)
//   --lookups=<n>       random get_balance samples (default 10000)
//   --proofs=<n>        random prove+verify samples (default 256)
//   --json=<path>       write machine-readable results
//   --floors=<path>     JSON perf floors; exit 2 when violated
//                       (key "state_min_restart_speedup" gates
//                       full_replay_s / snapshot_restart_s)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/uint128.h"
#include "crypto/merkle.h"
#include "ledger/block.h"
#include "ledger/block_store.h"
#include "ledger/blocktree.h"
#include "rpc/json.h"
#include "state/authstate/merkle_state.h"
#include "state/authstate/snapshot.h"
#include "state/ledger_state.h"
#include "state/transfer.h"

namespace {

using namespace themis;
namespace fs = std::filesystem;

// Genesis funding for the fan-out sender: 2^65, so the ledger carries
// >64-bit balances from block 1 onward.
const UInt128 kGenesisFund(2, 0);

double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

struct Results {
  std::uint64_t accounts = 0;
  std::uint64_t blocks = 0;
  std::uint64_t txs_per_block = 0;
  std::uint64_t snapshot_height = 0;
  double build_s = 0.0;
  // Restart paths.
  double full_replay_s = 0.0;
  double snapshot_restart_s = 0.0;
  double pruned_restart_s = 0.0;
  double snapshot_write_s = 0.0;
  double prune_s = 0.0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t store_bytes_before = 0;
  std::uint64_t store_bytes_after = 0;
  std::uint64_t records_pruned = 0;
  // Query latency (microseconds).
  std::uint64_t lookups = 0;
  double balance_p50_us = 0.0;
  double balance_p99_us = 0.0;
  std::uint64_t proofs = 0;
  double root_rebuild_s = 0.0;
  double proof_gen_p50_us = 0.0;
  double proof_gen_p99_us = 0.0;
  double proof_verify_p50_us = 0.0;
  double proof_verify_p99_us = 0.0;

  double speedup_snapshot() const {
    return snapshot_restart_s > 0 ? full_replay_s / snapshot_restart_s : 0.0;
  }
  double speedup_pruned() const {
    return pruned_restart_s > 0 ? full_replay_s / pruned_restart_s : 0.0;
  }
};

/// Synthesize the chain into `store`: creation blocks fan `txs_per_block`
/// transfers from account 0 out to fresh accounts 1, 2, ...; churn blocks
/// then move funds to random existing accounts.  Returns the head id and
/// fills `head_state` / the state copy at `snapshot_height`.
ledger::BlockHash build_chain(ledger::BlockStore& store, std::uint64_t blocks,
                              std::uint64_t create_blocks,
                              std::uint64_t txs_per_block, std::uint64_t seed,
                              std::uint64_t snapshot_height,
                              state::LedgerState& head_state,
                              state::LedgerState& snap_state,
                              ledger::BlockHash& snap_block) {
  head_state.fund(0, kGenesisFund);
  ledger::BlockHash prev = ledger::Block::genesis().id();
  std::uint64_t nonce = 1;
  ledger::NodeId next_account = 1;
  std::mt19937_64 rng(seed ^ 0x5354415445ULL);
  for (std::uint64_t h = 1; h <= blocks; ++h) {
    std::vector<ledger::Transaction> txs;
    txs.reserve(txs_per_block);
    std::vector<Hash32> leaves;
    leaves.reserve(txs_per_block);
    for (std::uint64_t i = 0; i < txs_per_block; ++i) {
      state::Transfer transfer;
      if (h <= create_blocks) {
        transfer.to = next_account++;
      } else {
        transfer.to = static_cast<ledger::NodeId>(
            1 + rng() % (next_account > 1 ? next_account - 1 : 1));
      }
      // The very first transfer moves a >2^64 amount so at least one
      // recipient balance exercises the high limb.
      transfer.amount = (nonce == 1) ? UInt128(1, 5) : UInt128(1000);
      txs.push_back(state::make_transfer_tx(
          0, nonce++, static_cast<std::int64_t>(h) * 1'000'000'000, transfer));
      leaves.push_back(txs.back().id());
    }
    ledger::BlockHeader header;
    header.height = h;
    header.prev = prev;
    header.merkle_root = crypto::merkle_root(leaves);
    header.producer = 0;
    header.timestamp_nanos = static_cast<std::int64_t>(h) * 1'000'000'000;
    header.nonce = h;
    header.tx_count = static_cast<std::uint32_t>(txs.size());
    const ledger::Block block(header, crypto::Signature{}, std::move(txs));
    const std::size_t applied = head_state.apply_block(block);
    if (applied != txs_per_block) {
      std::cerr << "error: block " << h << " applied " << applied << "/"
                << txs_per_block << " transfers\n";
      std::exit(1);
    }
    store.append(block);
    prev = block.id();
    if (h == snapshot_height) {
      snap_state = head_state;
      snap_block = block.id();
    }
  }
  return prev;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser parser(argc, argv);
  constexpr std::string_view kUsage =
      "state_scale [--accounts=<n>] [--txs-per-block=<n>] "
      "[--churn-blocks=<n>] [--lookups=<n>] [--proofs=<n>] [--quick] "
      "[--seed=<u64>] [--csv] [--json=<path>] [--floors=<path>]";
  const bool quick = parser.flag("--quick");
  const bool csv = parser.flag("--csv");
  const std::uint64_t seed = parser.value_u64("--seed", 1);
  const std::uint64_t accounts =
      parser.value_u64("--accounts", quick ? 65536 : 1048576);
  const std::uint64_t txs_per_block =
      parser.value_u64("--txs-per-block", quick ? 1024 : 4096);
  const std::uint64_t churn_blocks =
      parser.value_u64("--churn-blocks", quick ? 64 : 256);
  const std::uint64_t lookups = parser.value_u64("--lookups", 10000);
  const std::uint64_t proofs = parser.value_u64("--proofs", 256);
  std::string json_path;
  if (const auto v = parser.value("--json")) json_path = *v;
  std::string floors_path;
  if (const auto v = parser.value("--floors")) floors_path = *v;
  parser.reject_unknown(kUsage);

  const std::uint64_t create_blocks =
      (accounts + txs_per_block - 1) / txs_per_block;
  const std::uint64_t blocks = create_blocks + churn_blocks;
  if (accounts == 0 || txs_per_block == 0 || blocks < 10) {
    std::cerr << "error: need --accounts / --txs-per-block / --churn-blocks "
                 "giving >= 10 blocks (got "
              << blocks << ")\n";
    return 1;
  }
  // Snapshot near the head: the suffix replayed after a snapshot restart is
  // the finality window a live node would keep (8 blocks here).
  const std::uint64_t snapshot_height = blocks - 8;

  bench::banner("Authenticated state at scale: restart + query latency",
                "snapshot/pruning benchmark (synthesized chain, no PoW)");

  const fs::path dir =
      fs::temp_directory_path() /
      ("themis_state_scale_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const fs::path store_path = dir / "blocks.dat";
  const fs::path snap_path = dir / "state.snap";

  Results r;
  r.accounts = accounts;
  r.blocks = blocks;
  r.txs_per_block = txs_per_block;
  r.snapshot_height = snapshot_height;
  r.lookups = lookups;
  r.proofs = proofs;

  const std::map<ledger::NodeId, UInt128> genesis_alloc{{0, kGenesisFund}};
  state::LedgerState head_state;
  state::LedgerState snap_state;
  ledger::BlockHash snap_block{};
  ledger::BlockHash head{};
  {
    const bench::WallTimer timer;
    ledger::BlockStore store(store_path);
    head = build_chain(store, blocks, create_blocks, txs_per_block, seed,
                       snapshot_height, head_state, snap_state, snap_block);
    r.build_s = timer.seconds();
    r.store_bytes_before = store.valid_bytes();
    std::cerr << "[state_scale] built " << blocks << " blocks / "
              << blocks * txs_per_block << " transfers in " << r.build_s
              << "s (" << r.store_bytes_before / (1024 * 1024) << " MiB)\n";
  }

  // --- Restart path A: full replay (cold: no index, state from genesis).
  fs::remove(fs::path(store_path.string() + ".idx"));
  {
    const bench::WallTimer timer;
    ledger::BlockStore store(store_path);  // full scan, index rebuilt
    ledger::BlockTree tree;                // rooted at genesis
    const std::size_t attached = store.replay_into(tree);
    state::StateManager mgr(genesis_alloc);
    const state::LedgerState& s = mgr.state_at(tree, head);
    r.full_replay_s = timer.seconds();
    if (attached != blocks || s.accounts() != head_state.accounts()) {
      std::cerr << "error: full replay diverged (attached " << attached
                << ")\n";
      return 1;
    }
  }
  std::cerr << "[state_scale] full replay restart: " << r.full_replay_s
            << "s\n";

  // --- Restart path B: snapshot + suffix replay (store still unpruned).
  {
    const bench::WallTimer timer;
    state::authstate::Snapshot snap;
    snap.height = snapshot_height;
    snap.block = snap_block;
    snap.state = snap_state;
    if (!state::authstate::write_snapshot(snap_path, snap)) {
      std::cerr << "error: snapshot write failed\n";
      return 1;
    }
    r.snapshot_write_s = timer.seconds();
    r.snapshot_bytes = fs::file_size(snap_path);
  }
  {
    const bench::WallTimer timer;
    auto snap = state::authstate::read_snapshot(snap_path);
    if (!snap) {
      std::cerr << "error: snapshot read failed\n";
      return 1;
    }
    ledger::BlockStore store(store_path);  // indexed open
    auto root_block = store.read_by_id(snap->block);
    if (!root_block) {
      std::cerr << "error: snapshot block missing from store\n";
      return 1;
    }
    ledger::BlockTree tree(
        std::make_shared<const ledger::Block>(*std::move(root_block)));
    state::StateManager mgr({});
    mgr.reset_base(std::move(snap->state));
    store.replay_into(tree, snap->height + 1);
    const state::LedgerState& s = mgr.state_at(tree, head);
    r.snapshot_restart_s = timer.seconds();
    if (s.accounts() != head_state.accounts()) {
      std::cerr << "error: snapshot restart diverged\n";
      return 1;
    }
  }
  std::cerr << "[state_scale] snapshot restart:    " << r.snapshot_restart_s
            << "s (speedup " << r.speedup_snapshot() << "x)\n";

  // --- Restart path C: snapshot + pruned store.
  {
    const bench::WallTimer timer;
    ledger::BlockStore store(store_path);
    r.records_pruned = store.prune_below(snapshot_height);
    r.prune_s = timer.seconds();
    r.store_bytes_after = store.valid_bytes();
  }
  {
    const bench::WallTimer timer;
    auto snap = state::authstate::read_snapshot(snap_path);
    ledger::BlockStore store(store_path);
    auto root_block = store.read_by_id(snap->block);
    if (!root_block) {
      std::cerr << "error: snapshot block missing after prune\n";
      return 1;
    }
    ledger::BlockTree tree(
        std::make_shared<const ledger::Block>(*std::move(root_block)));
    state::StateManager mgr({});
    mgr.reset_base(std::move(snap->state));
    store.replay_into(tree, snap->height + 1);
    const state::LedgerState& s = mgr.state_at(tree, head);
    r.pruned_restart_s = timer.seconds();
    if (s.accounts() != head_state.accounts()) {
      std::cerr << "error: pruned restart diverged\n";
      return 1;
    }
  }
  std::cerr << "[state_scale] pruned restart:      " << r.pruned_restart_s
            << "s (speedup " << r.speedup_pruned() << "x, store "
            << r.store_bytes_before / (1024 * 1024) << " -> "
            << r.store_bytes_after / (1024 * 1024) << " MiB)\n";

  // --- get_balance latency over random ids against the head state.
  std::mt19937_64 rng(seed);
  {
    std::uniform_int_distribution<ledger::NodeId> pick(
        0, static_cast<ledger::NodeId>(accounts - 1));
    std::vector<double> us;
    us.reserve(lookups);
    UInt128 checksum;
    for (std::uint64_t i = 0; i < lookups; ++i) {
      const ledger::NodeId id = pick(rng);
      const auto t0 = std::chrono::steady_clock::now();
      const state::Account& account = head_state.account(id);
      const auto t1 = std::chrono::steady_clock::now();
      checksum += account.balance;
      us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    if (checksum == UInt128(0)) std::cerr << "[state_scale] (empty sum?)\n";
    r.balance_p50_us = percentile(us, 0.50);
    r.balance_p99_us = percentile(us, 0.99);
  }

  // --- Merkle root + proof generation/verification latency.
  {
    const bench::WallTimer timer;
    state::authstate::RootCache cache;
    cache.rebuild(head_state);
    r.root_rebuild_s = timer.seconds();
    const Hash32 root = cache.root();

    std::uniform_int_distribution<ledger::NodeId> pick(
        1, static_cast<ledger::NodeId>(accounts - 1));
    std::vector<double> gen_us, verify_us;
    gen_us.reserve(proofs);
    verify_us.reserve(proofs);
    for (std::uint64_t i = 0; i < proofs; ++i) {
      const ledger::NodeId id = pick(rng);
      const auto t0 = std::chrono::steady_clock::now();
      state::authstate::AccountProof proof;
      proof.page = state::authstate::page_of(id);
      proof.page_count = cache.page_count();
      proof.page_bytes = state::authstate::encode_page(head_state, proof.page);
      proof.steps = crypto::merkle_prove(cache.page_hashes(), proof.page);
      const auto t1 = std::chrono::steady_clock::now();
      const bool ok = state::authstate::verify_account_proof(
          root, id, head_state.account(id), proof);
      const auto t2 = std::chrono::steady_clock::now();
      if (!ok) {
        std::cerr << "error: proof for account " << id << " did not verify\n";
        return 1;
      }
      gen_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
      verify_us.push_back(
          std::chrono::duration<double, std::micro>(t2 - t1).count());
    }
    r.proof_gen_p50_us = percentile(gen_us, 0.50);
    r.proof_gen_p99_us = percentile(gen_us, 0.99);
    r.proof_verify_p50_us = percentile(verify_us, 0.50);
    r.proof_verify_p99_us = percentile(verify_us, 0.99);
  }

  std::error_code ec;
  fs::remove_all(dir, ec);

  metrics::Table t({"metric", "value"});
  t.add_row({"accounts", std::to_string(r.accounts)});
  t.add_row({"blocks x txs", std::to_string(r.blocks) + " x " +
                                 std::to_string(r.txs_per_block)});
  t.add_row({"full replay restart s", metrics::Table::num(r.full_replay_s, 3)});
  t.add_row(
      {"snapshot restart s", metrics::Table::num(r.snapshot_restart_s, 3)});
  t.add_row({"pruned restart s", metrics::Table::num(r.pruned_restart_s, 3)});
  t.add_row({"restart speedup (snapshot)",
             metrics::Table::num(r.speedup_snapshot(), 1)});
  t.add_row(
      {"restart speedup (pruned)", metrics::Table::num(r.speedup_pruned(), 1)});
  t.add_row({"store MiB before/after",
             std::to_string(r.store_bytes_before / (1024 * 1024)) + " / " +
                 std::to_string(r.store_bytes_after / (1024 * 1024))});
  t.add_row({"snapshot MiB",
             std::to_string(r.snapshot_bytes / (1024 * 1024))});
  t.add_row({"get_balance p50 us", metrics::Table::num(r.balance_p50_us, 2)});
  t.add_row({"get_balance p99 us", metrics::Table::num(r.balance_p99_us, 2)});
  t.add_row({"root rebuild s", metrics::Table::num(r.root_rebuild_s, 3)});
  t.add_row({"proof gen p50/p99 us",
             metrics::Table::num(r.proof_gen_p50_us, 1) + " / " +
                 metrics::Table::num(r.proof_gen_p99_us, 1)});
  t.add_row({"proof verify p50/p99 us",
             metrics::Table::num(r.proof_verify_p50_us, 1) + " / " +
                 metrics::Table::num(r.proof_verify_p99_us, 1)});
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
    } else {
      out << "{\n  \"benchmark\": \"state_scale\",\n"
          << "  \"config\": {\"accounts\": " << r.accounts
          << ", \"blocks\": " << r.blocks
          << ", \"txs_per_block\": " << r.txs_per_block
          << ", \"churn_blocks\": " << churn_blocks
          << ", \"snapshot_height\": " << r.snapshot_height
          << ", \"seed\": " << seed << ", \"quick\": "
          << (quick ? "true" : "false") << "},\n"
          << "  \"restart\": {\"full_replay_s\": " << r.full_replay_s
          << ", \"snapshot_restart_s\": " << r.snapshot_restart_s
          << ", \"pruned_restart_s\": " << r.pruned_restart_s
          << ", \"speedup_snapshot\": " << r.speedup_snapshot()
          << ", \"speedup_pruned\": " << r.speedup_pruned()
          << ", \"snapshot_write_s\": " << r.snapshot_write_s
          << ", \"prune_s\": " << r.prune_s
          << ", \"snapshot_bytes\": " << r.snapshot_bytes
          << ", \"store_bytes_before\": " << r.store_bytes_before
          << ", \"store_bytes_after\": " << r.store_bytes_after
          << ", \"records_pruned\": " << r.records_pruned << "},\n"
          << "  \"get_balance\": {\"lookups\": " << r.lookups
          << ", \"p50_us\": " << r.balance_p50_us
          << ", \"p99_us\": " << r.balance_p99_us << "},\n"
          << "  \"proof\": {\"count\": " << r.proofs
          << ", \"root_rebuild_s\": " << r.root_rebuild_s
          << ", \"gen_p50_us\": " << r.proof_gen_p50_us
          << ", \"gen_p99_us\": " << r.proof_gen_p99_us
          << ", \"verify_p50_us\": " << r.proof_verify_p50_us
          << ", \"verify_p99_us\": " << r.proof_verify_p99_us << "}\n}\n";
      std::cerr << "[state_scale] wrote " << json_path << "\n";
    }
  }

  if (!floors_path.empty()) {
    std::ifstream in(floors_path);
    if (!in) {
      std::cerr << "error: cannot read floors file " << floors_path << "\n";
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    rpc::Json floors;
    try {
      floors = rpc::Json::parse(text);
    } catch (const rpc::JsonError& e) {
      std::cerr << "error: bad floors JSON: " << e.what() << "\n";
      return 1;
    }
    bool violated = false;
    if (floors.has("state_min_restart_speedup")) {
      const double floor = floors["state_min_restart_speedup"].as_double();
      if (r.speedup_snapshot() < floor) {
        std::cerr << "FLOOR VIOLATED: snapshot restart speedup "
                  << r.speedup_snapshot() << " < " << floor << "\n";
        violated = true;
      }
      if (r.speedup_pruned() < floor) {
        std::cerr << "FLOOR VIOLATED: pruned restart speedup "
                  << r.speedup_pruned() << " < " << floor << "\n";
        violated = true;
      }
    }
    if (violated) return 2;
    std::cerr << "[state_scale] all perf floors met (" << floors_path << ")\n";
  }
  return 0;
}
