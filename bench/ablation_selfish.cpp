// Ablation (§V-B / Fig. 2 discussion): selfish-mining revenue against the
// attacker's power share q, under the three main-chain rules.
//
// The paper's qualitative claim: "Compared with the longest chain rule,
// GEOST and GHOST both can alleviate the selfish mining problem".  This
// harness measures the attacker's share of the finalized main chain; honest
// behaviour earns exactly q, so values above q mean the attack pays.
//
// With --trials N every (q, rule) cell averages N independent seeds; all
// cells x trials are fanned across --threads workers via the generic trial
// runner (each task builds its own simulation and fork-choice rule).
#include <iostream>

#include "bench_util.h"
#include "core/geost.h"
#include "metrics/equality.h"
#include "sim/selfish_miner.h"
#include "sim/trial_runner.h"

namespace {

using namespace themis;

enum class Rule { kLongest, kGhost, kGeost };

double revenue_share(Rule which, double q, SimTime duration,
                     std::uint64_t seed) {
  const std::size_t n_honest = 9;
  const std::size_t n_total = n_honest + 1;
  std::shared_ptr<consensus::ForkChoiceRule> rule;
  switch (which) {
    case Rule::kLongest:
      rule = std::make_shared<consensus::LongestChainRule>();
      break;
    case Rule::kGhost:
      rule = std::make_shared<consensus::GhostRule>();
      break;
    case Rule::kGeost:
      rule = std::make_shared<core::GeostRule>(n_total);
      break;
  }
  net::Simulation sim;
  // High contention on purpose: propagation is a sizable fraction of the
  // block interval, so honest blocks frequently fork among themselves.  That
  // is exactly the regime where weight (GHOST/GEOST) and length (longest)
  // disagree -- and where Fig. 2's story plays out.
  net::GossipNetwork network(sim, net::LinkConfig{20e6, SimTime::millis(800)},
                             n_total, 3, seed);
  const double attacker_power =
      q / (1.0 - q) * static_cast<double>(n_honest);
  const double total = static_cast<double>(n_honest) + attacker_power;
  auto policy = std::make_shared<consensus::FixedDifficulty>(2.0 * total);

  std::vector<std::unique_ptr<consensus::PowNode>> honest;
  for (ledger::NodeId i = 0; i < n_honest; ++i) {
    consensus::NodeConfig nc;
    nc.id = i;
    nc.n_nodes = n_total;
    nc.hash_rate = 1.0;
    nc.rng_seed = seed * 100 + i;
    honest.push_back(
        std::make_unique<consensus::PowNode>(sim, network, nc, rule, policy));
  }
  sim::SelfishMinerConfig ac;
  ac.id = static_cast<ledger::NodeId>(n_honest);
  ac.n_nodes = n_total;
  ac.hash_rate = attacker_power;
  ac.rng_seed = seed * 31 + 5;
  sim::SelfishMiner attacker(sim, network, ac, rule, policy);

  for (auto& node : honest) node->start();
  attacker.start();
  sim.run_until(duration);

  const auto chain = honest[0]->main_chain();
  std::vector<ledger::NodeId> producers;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    producers.push_back(honest[0]->tree().block(chain[i])->producer());
  }
  const auto counts = metrics::producer_counts(producers, n_total);
  return static_cast<double>(counts[n_total - 1]) /
         static_cast<double>(producers.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Ablation — selfish-mining revenue vs fork-choice rule",
                "Jia et al., ICDCS 2022, §V-B (Fig. 2 discussion)");

  const SimTime duration = SimTime::seconds(args.quick ? 2000.0 : 5000.0);
  const std::vector<double> shares = args.quick
                                         ? std::vector<double>{0.25, 0.40}
                                         : std::vector<double>{0.15, 0.25, 0.33,
                                                               0.40, 0.45};
  const std::vector<Rule> rules = {Rule::kLongest, Rule::kGhost, Rule::kGeost};
  const auto options = args.runner();

  // Fan every (q, rule, trial) cell across the workers at once; cells[c][t]
  // stays indexed by cell and trial, so output never depends on scheduling.
  const std::size_t n_cells = shares.size() * rules.size();
  std::vector<std::vector<double>> cells(n_cells,
                                         std::vector<double>(options.trials));
  parallel_for_index(
      options.resolved_threads(), n_cells * options.trials,
      [&](std::size_t flat) {
        const std::size_t cell = flat / options.trials;
        const std::size_t trial = flat % options.trials;
        const double q = shares[cell / rules.size()];
        const Rule rule = rules[cell % rules.size()];
        cells[cell][trial] =
            revenue_share(rule, q, duration, sim::trial_seed(args.seed, trial));
      });

  metrics::Table t({"attacker share q", "longest-chain", "GHOST", "GEOST",
                    "honest baseline"});
  for (std::size_t s = 0; s < shares.size(); ++s) {
    const auto summary = [&](std::size_t r) {
      return metrics::summarize(cells[s * rules.size() + r]);
    };
    t.add_row({metrics::Table::num(shares[s], 2), bench::cell(summary(0), 3),
               bench::cell(summary(1), 3), bench::cell(summary(2), 3),
               metrics::Table::num(shares[s], 2)});
  }
  emit(t, args);

  std::cout << "\nReading: above q ~ 1/3, the withheld-chain attack pays under "
               "the longest-chain rule (revenue > q); the weight-based rules "
               "hold the attacker at or below its fair share.\n";
  bench::print_run_footer(args, timer);
  return 0;
}
