// Microbenchmarks for the consensus hot paths (google-benchmark): GEOST and
// GHOST tree walks, the Eq. 6 table computation, and event-queue throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "consensus/forkchoice.h"
#include "consensus/head_tracker.h"
#include "core/adaptive_difficulty.h"
#include "core/geost.h"
#include "net/simulation.h"

namespace {

using namespace themis;

/// A chain of `length` blocks with a small fork every 50 heights.
ledger::BlockTree build_tree(std::uint64_t length, std::size_t n_nodes) {
  ledger::BlockTree tree;
  Rng rng(7);
  ledger::BlockPtr parent =
      std::make_shared<const ledger::Block>(ledger::Block::genesis());
  std::uint64_t nonce = 0;
  for (std::uint64_t h = 1; h <= length; ++h) {
    auto make = [&](ledger::NodeId producer) {
      ledger::BlockHeader hd;
      hd.height = h;
      hd.prev = parent->id();
      hd.producer = producer;
      hd.nonce = ++nonce;
      hd.timestamp_nanos = static_cast<std::int64_t>(h) * 1'000'000'000;
      return std::make_shared<const ledger::Block>(
          hd, crypto::Signature{}, std::vector<ledger::Transaction>{});
    };
    auto main_block = make(static_cast<ledger::NodeId>(rng.next_below(n_nodes)));
    tree.insert(main_block);
    if (h % 50 == 0) {  // stale sibling
      tree.insert(make(static_cast<ledger::NodeId>(rng.next_below(n_nodes))));
    }
    parent = std::move(main_block);
  }
  return tree;
}

void BM_GhostWalkFromGenesis(benchmark::State& state) {
  const auto tree = build_tree(static_cast<std::uint64_t>(state.range(0)), 100);
  consensus::GhostRule rule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.choose_head(tree, tree.genesis_hash()));
  }
}
BENCHMARK(BM_GhostWalkFromGenesis)->Arg(1000)->Arg(5000);

void BM_GeostWalkFromGenesis(benchmark::State& state) {
  const auto tree = build_tree(static_cast<std::uint64_t>(state.range(0)), 100);
  core::GeostRule rule(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.choose_head(tree, tree.genesis_hash()));
  }
}
BENCHMARK(BM_GeostWalkFromGenesis)->Arg(1000)->Arg(5000);

/// Pre-built arrival stream for the amortized benchmarks: the same chain
/// shape as build_tree (a stale sibling every 50 heights), in receipt order,
/// with every block id already computed.  Building blocks — allocation plus
/// double-SHA256 of the header — costs ~1 µs each and would otherwise drown
/// the consensus-maintenance cost the benchmark is after.
std::vector<ledger::BlockPtr> make_arrival_stream(std::uint64_t length,
                                                  std::size_t n_nodes) {
  std::vector<ledger::BlockPtr> stream;
  stream.reserve(length + length / 50);
  Rng rng(7);
  ledger::BlockPtr parent =
      std::make_shared<const ledger::Block>(ledger::Block::genesis());
  std::uint64_t nonce = 0;
  for (std::uint64_t h = 1; h <= length; ++h) {
    auto make = [&](ledger::NodeId producer) {
      ledger::BlockHeader hd;
      hd.height = h;
      hd.prev = parent->id();
      hd.producer = producer;
      hd.nonce = ++nonce;
      hd.timestamp_nanos = static_cast<std::int64_t>(h) * 1'000'000'000;
      auto b = std::make_shared<const ledger::Block>(
          hd, crypto::Signature{}, std::vector<ledger::Transaction>{});
      b->id();  // prime the lazy hash outside the timed region
      return b;
    };
    auto main_block = make(static_cast<ledger::NodeId>(rng.next_below(n_nodes)));
    stream.push_back(main_block);
    if (h % 50 == 0) {  // stale sibling
      stream.push_back(make(static_cast<ledger::NodeId>(rng.next_below(n_nodes))));
    }
    parent = std::move(main_block);
  }
  return stream;
}

/// The realistic per-arrival access pattern (what PowNode does on every
/// gossip delivery): insert one block, update the cached head/anchor via
/// HeadTracker, and let the aggregate floor trail the finalized anchor.
/// Amortized cost per block is what bounds simulated consensus throughput.
template <typename Rule>
void insert_update_head_loop(benchmark::State& state, const Rule& rule,
                             std::uint64_t length, std::size_t n_nodes) {
  constexpr std::uint64_t kFinalityDepth = 64;
  const std::vector<ledger::BlockPtr> stream =
      make_arrival_stream(length, n_nodes);
  for (auto _ : state) {
    // Tree construction/destruction (~5k map-node frees) is not part of the
    // per-arrival cost this benchmark tracks; keep it off the clock.
    state.PauseTiming();
    auto tree = std::make_unique<ledger::BlockTree>();
    consensus::HeadTracker tracker;
    tracker.reset(*tree, rule, tree->genesis_hash(), kFinalityDepth);
    state.ResumeTiming();
    for (const ledger::BlockPtr& block : stream) {
      tree->insert(block);
      tracker.on_insert(*tree, rule, block->id(), block->header().prev,
                        /*batch_is_leaf=*/true);
      tree->set_aggregate_floor(tracker.anchor_height());
    }
    benchmark::DoNotOptimize(tracker.head());
    state.PauseTiming();
    tree.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}

void BM_GhostInsertUpdateHead(benchmark::State& state) {
  consensus::GhostRule rule;
  insert_update_head_loop(state, rule,
                          static_cast<std::uint64_t>(state.range(0)), 100);
}
BENCHMARK(BM_GhostInsertUpdateHead)->Arg(1000)->Arg(5000);

void BM_GeostInsertUpdateHead(benchmark::State& state) {
  core::GeostRule rule(100);
  insert_update_head_loop(state, rule,
                          static_cast<std::uint64_t>(state.range(0)), 100);
}
BENCHMARK(BM_GeostInsertUpdateHead)->Arg(1000)->Arg(5000);

void BM_SubtreeEqualityVariance(benchmark::State& state) {
  const auto tree = build_tree(200, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::subtree_equality_variance(tree, tree.genesis_hash(), 100));
  }
}
BENCHMARK(BM_SubtreeEqualityVariance);

void BM_AdaptiveTableComputation(benchmark::State& state) {
  const std::size_t n = 100;
  const auto tree = build_tree(8 * n * 4, n);  // 4 epochs at beta = 8
  core::AdaptiveConfig cfg;
  cfg.n_nodes = n;
  cfg.delta = 8 * n;
  cfg.expected_interval_s = 4.0;
  cfg.h0 = 1.0;
  // Find the tip of the main chain to query against.
  consensus::GhostRule rule;
  const auto head = rule.choose_head(tree, tree.genesis_hash());
  for (auto _ : state) {
    core::AdaptiveDifficulty policy(cfg);  // cold cache each iteration
    benchmark::DoNotOptimize(policy.difficulty_for(tree, head, 0));
  }
}
BENCHMARK(BM_AdaptiveTableComputation);

void BM_AdaptiveTableCachedLookup(benchmark::State& state) {
  const std::size_t n = 100;
  const auto tree = build_tree(8 * n * 4, n);
  core::AdaptiveConfig cfg;
  cfg.n_nodes = n;
  cfg.delta = 8 * n;
  cfg.expected_interval_s = 4.0;
  cfg.h0 = 1.0;
  core::AdaptiveDifficulty policy(cfg);
  consensus::GhostRule rule;
  const auto head = rule.choose_head(tree, tree.genesis_hash());
  policy.difficulty_for(tree, head, 0);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.difficulty_for(tree, head, 0));
  }
}
BENCHMARK(BM_AdaptiveTableCachedLookup);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulation sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule_after(SimTime::nanos(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace
