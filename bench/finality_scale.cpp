// Checkpoint finality at simulator scale: a Themis/GEOST sweep over
// consortium size n and checkpoint interval k, with the FinalityOverlay
// gossiping checkpoint votes next to block announcements.  Reports, per
// (n, k) point, how far the head runs ahead of hard finality (lag in
// blocks) and how long a checkpoint takes to certify after the head first
// reaches it (latency in simulated seconds) — the cost of bolting BFT
// finality onto the probabilistic chain.
//
//   --nodes=<n[,n...]>     consortium sizes (default 100,200,400; --quick: 100)
//   --interval=<k[,k...]>  checkpoint intervals (default 8,16,32; --quick: 16)
//   --height=<h>           target main-chain height per point (default 96;
//                          --quick: 48)
//   --json=<path>          write machine-readable results
//   --floors=<path>        JSON perf floors; exit 2 when violated
//                          (keys "finality_max_lag_blocks" — max head/finality
//                          lag at certification — and
//                          "finality_min_certificates" per point)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpc/json.h"
#include "sim/experiment.h"
#include "sim/finality_overlay.h"
#include "sim/power_dist.h"

namespace {

using namespace themis;

std::vector<std::uint64_t> parse_list(std::string_view spec) {
  std::vector<std::uint64_t> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string item(spec.substr(begin, end - begin));
    if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    begin = end + 1;
  }
  return out;
}

struct PointResult {
  std::size_t nodes = 0;
  std::uint64_t interval = 0;
  std::uint64_t height = 0;
  std::uint64_t votes = 0;
  std::uint64_t certificates = 0;
  std::uint64_t finalized_min = 0;
  std::uint64_t finalized_max = 0;
  double mean_lag = 0.0;
  std::uint64_t max_lag = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  double sim_s = 0.0;
  double wall_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::ArgParser parser(argc, argv);
  constexpr std::string_view kUsage =
      "finality_scale [--nodes=<n,..>] [--interval=<k,..>] [--height=<h>] "
      "[--quick] [--seed=<u64>] [--csv] [--json=<path>] [--floors=<path>]";
  const bool quick = parser.flag("--quick");
  const bool csv = parser.flag("--csv");
  const std::uint64_t seed = parser.value_u64("--seed", 1);
  const std::uint64_t height = parser.value_u64("--height", quick ? 48 : 96);
  std::vector<std::uint64_t> sizes =
      quick ? std::vector<std::uint64_t>{100}
            : std::vector<std::uint64_t>{100, 200, 400};
  if (const auto v = parser.value("--nodes")) sizes = parse_list(*v);
  std::vector<std::uint64_t> intervals =
      quick ? std::vector<std::uint64_t>{16}
            : std::vector<std::uint64_t>{8, 16, 32};
  if (const auto v = parser.value("--interval")) intervals = parse_list(*v);
  std::string json_path;
  if (const auto v = parser.value("--json")) json_path = *v;
  std::string floors_path;
  if (const auto v = parser.value("--floors")) floors_path = *v;
  parser.reject_unknown(kUsage);
  if (sizes.empty() || intervals.empty() || height == 0) {
    std::cerr << "error: need --nodes, --interval and --height > 0\n";
    return 1;
  }

  bench::banner("Checkpoint finality: lag and latency vs n and interval k",
                "finality overlay sweep (Themis/GEOST, gossiped votes)");

  const bench::WallTimer total_timer;
  std::vector<PointResult> results;
  for (const std::uint64_t n : sizes) {
    for (const std::uint64_t k : intervals) {
      sim::PoxConfig config;
      config.algorithm = core::Algorithm::kThemis;
      config.n_nodes = n;
      config.hash_rates = sim::uniform_power(n, config.h0);
      config.beta = 8;
      config.expected_interval_s = 4.0;
      config.txs_per_block = 0;
      config.seed = seed;

      PointResult r;
      r.nodes = n;
      r.interval = k;
      r.height = height;

      const bench::WallTimer point_timer;
      sim::PoxExperiment exp(config);
      std::vector<consensus::PowNode*> nodes;
      nodes.reserve(exp.size());
      for (std::size_t i = 0; i < exp.size(); ++i) nodes.push_back(&exp.node(i));
      sim::FinalityOverlayConfig oc;
      oc.interval = k;
      sim::FinalityOverlay overlay(exp.simulation(), exp.network(),
                                   std::move(nodes), oc);
      overlay.attach();
      exp.run_to_height(height, SimTime::seconds(1e7));
      r.wall_s = point_timer.seconds();
      r.sim_s = exp.elapsed().to_seconds();

      const sim::FinalityOverlay::Metrics m = overlay.metrics();
      r.votes = m.votes_cast;
      r.certificates = m.certificates;
      r.finalized_min = m.finalized_min;
      r.finalized_max = m.finalized_max;
      r.mean_lag = m.mean_lag_blocks;
      r.max_lag = m.max_lag_blocks;
      r.mean_latency_s = m.mean_latency_s;
      r.max_latency_s = m.max_latency_s;
      results.push_back(r);
    }
  }

  metrics::Table t({"nodes", "k", "height", "votes", "certs", "fin min",
                    "fin max", "mean lag", "max lag", "mean lat s",
                    "max lat s", "wall s"});
  for (const PointResult& r : results) {
    t.add_row({std::to_string(r.nodes), std::to_string(r.interval),
               std::to_string(r.height), std::to_string(r.votes),
               std::to_string(r.certificates), std::to_string(r.finalized_min),
               std::to_string(r.finalized_max),
               metrics::Table::num(r.mean_lag, 2), std::to_string(r.max_lag),
               metrics::Table::num(r.mean_latency_s, 2),
               metrics::Table::num(r.max_latency_s, 2),
               metrics::Table::num(r.wall_s, 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cerr << "[finality_scale] total wall: " << total_timer.seconds()
            << "s\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << "\n";
    } else {
      out << "{\n  \"benchmark\": \"finality_scale\",\n"
          << "  \"config\": {\"algorithm\": \"themis-geost\", \"beta\": 8, "
          << "\"interval_s\": 4.0, \"seed\": " << seed
          << ", \"height\": " << height << "},\n  \"points\": [\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const PointResult& r = results[i];
        out << "    {\"nodes\": " << r.nodes << ", \"interval\": " << r.interval
            << ", \"votes\": " << r.votes
            << ", \"certificates\": " << r.certificates
            << ", \"finalized_min\": " << r.finalized_min
            << ", \"finalized_max\": " << r.finalized_max
            << ", \"mean_lag_blocks\": " << r.mean_lag
            << ", \"max_lag_blocks\": " << r.max_lag
            << ", \"mean_latency_s\": " << r.mean_latency_s
            << ", \"max_latency_s\": " << r.max_latency_s
            << ", \"sim_s\": " << r.sim_s << ", \"wall_s\": " << r.wall_s
            << "}" << (i + 1 < results.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      std::cerr << "[finality_scale] wrote " << json_path << "\n";
    }
  }

  if (!floors_path.empty()) {
    std::ifstream in(floors_path);
    if (!in) {
      std::cerr << "error: cannot read floors file " << floors_path << "\n";
      return 1;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    rpc::Json floors;
    try {
      floors = rpc::Json::parse(text);
    } catch (const rpc::JsonError& e) {
      std::cerr << "error: bad floors JSON: " << e.what() << "\n";
      return 1;
    }
    bool violated = false;
    if (floors.has("finality_max_lag_blocks")) {
      const double cap = floors["finality_max_lag_blocks"].as_double();
      for (const PointResult& r : results) {
        if (static_cast<double>(r.max_lag) > cap) {
          std::cerr << "FLOOR VIOLATED: n=" << r.nodes << " k=" << r.interval
                    << " max finality lag " << r.max_lag << " > " << cap
                    << " blocks\n";
          violated = true;
        }
      }
    }
    if (floors.has("finality_min_certificates")) {
      const double floor = floors["finality_min_certificates"].as_double();
      for (const PointResult& r : results) {
        if (static_cast<double>(r.certificates) < floor) {
          std::cerr << "FLOOR VIOLATED: n=" << r.nodes << " k=" << r.interval
                    << " certificates " << r.certificates << " < " << floor
                    << "\n";
          violated = true;
        }
      }
    }
    if (violated) return 2;
    std::cerr << "[finality_scale] all perf floors met (" << floors_path
              << ")\n";
  }
  return 0;
}
