// Microbenchmarks for the cryptographic substrate (google-benchmark).
//
// These are not paper figures; they quantify the per-block costs §VI-C argues
// are negligible: hashing for the PoW puzzle, header signing/verification,
// and merkle commitments.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "ledger/block.h"

namespace {

using namespace themis;

void BM_Sha256_64B(benchmark::State& state) {
  const Bytes data(64, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  const Bytes data(4096, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_HeaderPowHash(benchmark::State& state) {
  ledger::BlockHeader h;
  h.height = 100;
  h.difficulty = 1e6;
  for (auto _ : state) {
    ++h.nonce;  // one puzzle attempt
    benchmark::DoNotOptimize(h.hash());
  }
}
BENCHMARK(BM_HeaderPowHash);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes msg(32, 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_SchnorrSign(benchmark::State& state) {
  const auto keypair = crypto::Keypair::from_node_id(1);
  const Hash32 msg = crypto::sha256(bytes_of("header"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(keypair.sign(msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const auto keypair = crypto::Keypair::from_node_id(1);
  const Hash32 msg = crypto::sha256(bytes_of("header"));
  const auto sig = keypair.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(keypair.public_key(), msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

// A synthetic admission batch: several senders, each with a run of
// transaction digests — the shape the RPC admission pipeline sees.
std::vector<crypto::BatchVerifyItem> admission_batch(std::size_t n) {
  std::vector<crypto::BatchVerifyItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto keypair = crypto::Keypair::from_node_id(i % 4);
    Bytes payload = bytes_of("admission tx");
    payload.push_back(static_cast<std::uint8_t>(i));
    payload.push_back(static_cast<std::uint8_t>(i >> 8));
    const Hash32 msg = crypto::sha256(payload);
    items.push_back({keypair.public_key(), msg, keypair.sign(msg)});
  }
  return items;
}

// Baseline for the batch comparison: the same admission batch verified one
// signature at a time, as the pre-reactor request thread did.
void BM_SchnorrAdmitSingle(benchmark::State& state) {
  const auto items = admission_batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool ok = true;
    for (const auto& it : items) ok &= crypto::verify(it.pub, it.msg, it.sig);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SchnorrAdmitSingle)->Arg(16)->Arg(64);

// Batched admission at 1/2/4/8 verification threads.  Items/s is the headline
// number; on a single-core host the thread counts collapse to the same figure,
// on CI runners the parallel split shows through.
void BM_SchnorrAdmitBatch(benchmark::State& state) {
  const auto items = admission_batch(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify_batch(items, threads));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SchnorrAdmitBatch)
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8});

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash32> leaves;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::sha256(Bytes{static_cast<std::uint8_t>(i),
                                          static_cast<std::uint8_t>(i >> 8)}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::merkle_root(leaves));
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024)->Arg(4096);

}  // namespace
