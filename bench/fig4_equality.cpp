// Fig. 4 — Equality (lower is better): variance of block-producing frequency
// sigma_f^2 against difficulty-adjustment epochs for PBFT, PoW-H, Themis-Lite
// and Themis.
//
// Paper targets: Themis converges to ~10.80 % of PoW-H's variance,
// Themis-Lite to ~12.16 %; PBFT's round-robin is ~0 throughout.
#include <iostream>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Fig. 4 — Equality: sigma_f^2 vs epochs",
                "Jia et al., ICDCS 2022, Fig. 4 / §VII-D");

  const std::size_t n = args.quick ? 40 : 100;   // paper: 100
  const std::uint64_t epochs = args.quick ? 6 : 12;
  std::cout << "n=" << n << "  delta=8n  epochs=" << epochs << "\n";

  auto run_pox = [&](core::Algorithm algorithm) {
    sim::PoxConfig cfg;
    cfg.algorithm = algorithm;
    cfg.n_nodes = n;
    cfg.beta = 8;
    cfg.txs_per_block = 0;  // throughput is not measured here
    cfg.seed = args.seed;
    sim::PoxExperiment exp(cfg);
    exp.run_to_height(epochs * exp.delta());
    return exp.per_epoch_frequency_variance();
  };

  const auto themis = run_pox(core::Algorithm::kThemis);
  const auto lite = run_pox(core::Algorithm::kThemisLite);
  const auto powh = run_pox(core::Algorithm::kPowH);

  // PBFT: strict rotation — simulate one epoch's worth of sequences and
  // measure; rotation is stationary, so the value holds for every epoch.
  sim::PbftScenario scenario;
  scenario.n_nodes = n;
  scenario.pbft.batch_size = 16;
  scenario.pbft.verify_delay = SimTime::micros(50);
  scenario.pbft.exec_delay_per_tx = SimTime::micros(1);
  scenario.duration = SimTime::seconds(1e6);
  scenario.max_blocks = 8 * n;  // one epoch of delta = 8n sequences
  const auto pbft_result = sim::run_pbft(scenario);
  const auto pbft_var = metrics::per_epoch_frequency_variance(
      pbft_result.producers, 8 * n, n);
  const double pbft_value = pbft_var.empty() ? 0.0 : pbft_var.front();

  metrics::Table t({"epoch", "PBFT", "PoW-H", "Themis-Lite", "Themis"});
  const std::size_t rows =
      std::min({themis.size(), lite.size(), powh.size()});
  for (std::size_t e = 0; e < rows; ++e) {
    t.add_row({std::to_string(e), metrics::Table::num(pbft_value, 6),
               metrics::Table::num(powh[e], 6),
               metrics::Table::num(lite[e], 6),
               metrics::Table::num(themis[e], 6)});
  }
  emit(t, args);

  // Converged ratios (mean of the last 3 epochs), the paper's headline.
  auto tail = [](const std::vector<double>& v) {
    double sum = 0;
    const std::size_t k = std::min<std::size_t>(3, v.size());
    for (std::size_t i = v.size() - k; i < v.size(); ++i) sum += v[i];
    return sum / static_cast<double>(k);
  };
  const double powh_tail = tail(powh);
  std::cout << "\nconverged sigma_f^2 as % of PoW-H (paper: Themis 10.80%, "
               "Themis-Lite 12.16%):\n"
            << "  Themis      " << 100.0 * tail(themis) / powh_tail << "%\n"
            << "  Themis-Lite " << 100.0 * tail(lite) / powh_tail << "%\n"
            << "  PBFT        " << 100.0 * pbft_value / powh_tail << "%\n";
  return 0;
}
