// Fig. 4 — Equality (lower is better): variance of block-producing frequency
// sigma_f^2 against difficulty-adjustment epochs for PBFT, PoW-H, Themis-Lite
// and Themis.
//
// Paper targets: Themis converges to ~10.80 % of PoW-H's variance,
// Themis-Lite to ~12.16 %; PBFT's round-robin is ~0 throughout.
//
// With --trials N each algorithm runs N independent seeds in parallel (see
// bench_util.h) and every cell reports mean ± 95% CI across trials.
#include <iostream>

#include "bench_util.h"
#include "metrics/equality.h"
#include "sim/experiment.h"
#include "sim/trial_runner.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 4 — Equality: sigma_f^2 vs epochs",
                "Jia et al., ICDCS 2022, Fig. 4 / §VII-D");

  const std::size_t n = args.quick ? 40 : 100;   // paper: 100
  const std::uint64_t epochs = args.quick ? 6 : 12;
  std::cout << "n=" << n << "  delta=8n  epochs=" << epochs << "\n";

  const auto spec_for = [&](core::Algorithm algorithm) {
    sim::PoxTrialSpec spec;
    spec.config.algorithm = algorithm;
    spec.config.n_nodes = n;
    spec.config.beta = 8;
    spec.config.txs_per_block = 0;  // throughput is not measured here
    spec.config.seed = args.seed;
    spec.target_height = epochs * sim::PoxExperiment::delta_for(spec.config);
    return spec;
  };
  const std::vector<sim::PoxTrialSpec> points = {
      spec_for(core::Algorithm::kThemis), spec_for(core::Algorithm::kThemisLite),
      spec_for(core::Algorithm::kPowH)};
  const auto sweep = sim::run_pox_sweep(points, args.runner());

  const auto epoch_summaries = [&](std::size_t point) {
    std::vector<std::vector<double>> series;
    for (const auto& trial : sweep[point]) {
      series.push_back(trial.frequency_variance);
    }
    return metrics::summarize_series(series);
  };
  const auto themis_s = epoch_summaries(0);
  const auto lite_s = epoch_summaries(1);
  const auto powh_s = epoch_summaries(2);

  // PBFT: strict rotation — simulate one epoch's worth of sequences and
  // measure; rotation is stationary, so the value holds for every epoch.
  sim::PbftScenario scenario;
  scenario.n_nodes = n;
  scenario.pbft.batch_size = 16;
  scenario.pbft.verify_delay = SimTime::micros(50);
  scenario.pbft.exec_delay_per_tx = SimTime::micros(1);
  scenario.duration = SimTime::seconds(1e6);
  scenario.max_blocks = 8 * n;  // one epoch of delta = 8n sequences
  const auto pbft_result = sim::run_pbft(scenario);
  const auto pbft_var = metrics::per_epoch_frequency_variance(
      pbft_result.producers, 8 * n, n);
  const double pbft_value = pbft_var.empty() ? 0.0 : pbft_var.front();

  metrics::Table t({"epoch", "PBFT", "PoW-H", "Themis-Lite", "Themis"});
  const std::size_t rows =
      std::min({themis_s.size(), lite_s.size(), powh_s.size()});
  for (std::size_t e = 0; e < rows; ++e) {
    t.add_row({std::to_string(e), metrics::Table::num(pbft_value, 6),
               bench::cell(powh_s[e], 6), bench::cell(lite_s[e], 6),
               bench::cell(themis_s[e], 6)});
  }
  emit(t, args);

  // Converged ratios (mean of the last 3 epochs per trial, averaged across
  // trials), the paper's headline.
  const auto tail = [](const std::vector<sim::PoxTrialResult>& trials) {
    return metrics::summarize_over(trials, [](const sim::PoxTrialResult& r) {
             const auto& v = r.frequency_variance;
             double sum = 0;
             const std::size_t k = std::min<std::size_t>(3, v.size());
             for (std::size_t i = v.size() - k; i < v.size(); ++i) sum += v[i];
             return sum / static_cast<double>(k);
           })
        .mean;
  };
  const double powh_tail = tail(sweep[2]);
  std::cout << "\nconverged sigma_f^2 as % of PoW-H (paper: Themis 10.80%, "
               "Themis-Lite 12.16%):\n"
            << "  Themis      " << 100.0 * tail(sweep[0]) / powh_tail << "%\n"
            << "  Themis-Lite " << 100.0 * tail(sweep[1]) / powh_tail << "%\n"
            << "  PBFT        " << 100.0 * pbft_value / powh_tail << "%\n";
  bench::print_run_footer(args, timer);
  return 0;
}
