// Shared helpers for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick         smaller n / fewer epochs (CI-friendly)
//   --csv           emit CSV instead of an aligned table
//   --seed=<u64>    override the experiment base seed
//   --trials <N>    independent trials per sweep point (also --trials=<N>;
//                   0/absent = the driver's historical default)
//   --threads <N>   worker threads for the trial runner (also --threads=<N>;
//                   0 = one per hardware thread, default 1)
// and prints the paper's rows/series for one figure or table.
//
// Per-trial seeding follows the trial-runner contract (sim/trial_runner.h):
// trial 0 uses the base seed itself, so default runs reproduce the
// historical single-seed outputs; results are bit-identical for any
// --threads value.  Data goes to stdout; the wall-clock footer goes to
// stderr so outputs can be diffed across thread counts.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/aggregate.h"
#include "metrics/table.h"
#include "sim/trial_runner.h"

namespace themis::bench {

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  std::uint64_t seed = 1;
  std::size_t trials = 0;   ///< 0 = driver default
  std::size_t threads = 1;  ///< 0 = hardware thread count

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    const auto value_of = [&](std::string_view arg, std::string_view flag,
                              int& i) -> const char* {
      // Accept both "--flag=N" and "--flag N".
      if (arg.starts_with(flag) && arg.size() > flag.size() &&
          arg[flag.size()] == '=') {
        return arg.data() + flag.size() + 1;
      }
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg == "--csv") {
        args.csv = true;
      } else if (const char* v = value_of(arg, "--seed", i)) {
        args.seed = std::strtoull(v, nullptr, 10);
      } else if (const char* v = value_of(arg, "--trials", i)) {
        args.trials = std::strtoull(v, nullptr, 10);
      } else if (const char* v = value_of(arg, "--threads", i)) {
        args.threads = std::strtoull(v, nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick --csv --seed=<u64> --trials <N> "
                     "--threads <N>\n";
        std::exit(0);
      }
    }
    return args;
  }

  /// Trials to run, with the driver's historical default when --trials is
  /// absent (1 for single-seed figures, more for the averaged ones).
  std::size_t trials_or(std::size_t fallback) const {
    return trials > 0 ? trials : fallback;
  }

  sim::TrialRunnerOptions runner(std::size_t default_trials = 1) const {
    sim::TrialRunnerOptions options;
    options.trials = trials_or(default_trials);
    options.threads = threads;
    return options;
  }
};

inline void emit(const metrics::Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void banner(std::string_view title, std::string_view paper_ref) {
  std::cout << "== " << title << " ==\n"
            << "   reproduces: " << paper_ref << "\n";
}

/// Cell helper: single trial prints the plain value (historical output),
/// several trials print "mean ± 95% CI".
inline std::string cell(const metrics::Summary& summary, int precision = 4) {
  return metrics::format_mean_ci(summary, precision);
}

class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Wall-clock/parallelism footer on stderr (stdout stays diffable across
/// --threads values).
inline void print_run_footer(const BenchArgs& args, const WallTimer& timer,
                             std::size_t default_trials = 1) {
  const auto options = args.runner(default_trials);
  std::cerr << "[bench] trials/point=" << options.trials
            << " threads=" << options.resolved_threads()
            << " wall=" << timer.seconds() << "s\n";
}

}  // namespace themis::bench
