// Shared helpers for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick        smaller n / fewer epochs (CI-friendly)
//   --csv          emit CSV instead of an aligned table
//   --seed=<u64>   override the experiment seed
// and prints the paper's rows/series for one figure or table.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/table.h"

namespace themis::bench {

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  std::uint64_t seed = 1;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg == "--csv") {
        args.csv = true;
      } else if (arg.starts_with("--seed=")) {
        args.seed = std::strtoull(arg.substr(7).data(), nullptr, 10);
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --quick --csv --seed=<u64>\n";
        std::exit(0);
      }
    }
    return args;
  }
};

inline void emit(const metrics::Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

inline void banner(std::string_view title, std::string_view paper_ref) {
  std::cout << "== " << title << " ==\n"
            << "   reproduces: " << paper_ref << "\n";
}

}  // namespace themis::bench
