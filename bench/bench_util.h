// Shared helpers for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --quick           smaller n / fewer epochs (CI-friendly)
//   --csv             emit CSV instead of an aligned table
//   --seed=<u64>      override the experiment base seed
//   --trials <N>      independent trials per sweep point (also --trials=<N>;
//                     0/absent = the driver's historical default)
//   --threads <N>     worker threads for the trial runner (also --threads=<N>;
//                     0 = one per hardware thread, default 1)
//   --trace=<path>    write a JSONL event trace of the base-seed run
//   --report[=<path>] print an end-of-run counters/histograms report
//                     (stderr without a path, so stdout stays diffable)
// and prints the paper's rows/series for one figure or table.
//
// Flag parsing is centralised in ArgParser so a new flag lands in every
// driver at once; drivers with extra switches (e.g. fig8's --ablation) reuse
// the same parser instead of hand-rolling strcmp loops.
//
// Per-trial seeding follows the trial-runner contract (sim/trial_runner.h):
// trial 0 uses the base seed itself, so default runs reproduce the
// historical single-seed outputs; results are bit-identical for any
// --threads value.  Observability rides the same contract: the bundle is
// attached to point 0 / trial 0 only — the base-seed run — so tracing never
// races across workers and never changes any trial's results.  Data goes to
// stdout; the wall-clock footer, trace-file notice and (pathless) report go
// to stderr so outputs can be diffed across thread counts and with tracing
// on or off.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/aggregate.h"
#include "metrics/table.h"
#include "obs/observability.h"
#include "obs/report.h"
#include "sim/trial_runner.h"

namespace themis::bench {

/// Minimal argv scanner shared by every bench driver.  Accepts GNU-ish
/// spellings: bare switches ("--quick"), values as "--flag=V" or "--flag V",
/// and switches with an optional value ("--report" / "--report=path").
///
/// Every name a driver queries (or registers via permit()) is recorded as
/// recognised; reject_unknown() then turns any leftover `-`-prefixed token
/// into a hard error with a usage hint, so a typo like "--trails 5" fails
/// loudly instead of silently running with defaults.
class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    args_.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// True when the bare switch `name` is present.
  bool flag(std::string_view name) const {
    permit(name);
    for (std::string_view arg : args_) {
      if (arg == name) return true;
    }
    return false;
  }

  /// Value of "--name=V" or "--name V"; nullopt when the flag is absent.
  std::optional<std::string_view> value(std::string_view name) const {
    permit(name);
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string_view arg = args_[i];
      if (arg.starts_with(name) && arg.size() > name.size() &&
          arg[name.size()] == '=') {
        return arg.substr(name.size() + 1);
      }
      if (arg == name && i + 1 < args_.size()) return args_[i + 1];
    }
    return std::nullopt;
  }

  /// Every value of a repeatable flag ("--peer=a --peer b"), in argv order.
  std::vector<std::string_view> values(std::string_view name) const {
    permit(name);
    std::vector<std::string_view> out;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string_view arg = args_[i];
      if (arg.starts_with(name) && arg.size() > name.size() &&
          arg[name.size()] == '=') {
        out.push_back(arg.substr(name.size() + 1));
      } else if (arg == name && i + 1 < args_.size()) {
        out.push_back(args_[++i]);
      }
    }
    return out;
  }

  /// A switch that may carry a value: "--report" yields an empty view,
  /// "--report=path" yields "path", absence yields nullopt.  Unlike value(),
  /// never consumes the following argument.
  std::optional<std::string_view> flag_or_value(std::string_view name) const {
    permit(name);
    for (std::string_view arg : args_) {
      if (arg == name) return std::string_view{};
      if (arg.starts_with(name) && arg.size() > name.size() &&
          arg[name.size()] == '=') {
        return arg.substr(name.size() + 1);
      }
    }
    return std::nullopt;
  }

  std::uint64_t value_u64(std::string_view name, std::uint64_t fallback) const {
    const auto v = value(name);
    if (!v) return fallback;
    return std::strtoull(std::string(*v).c_str(), nullptr, 10);
  }

  /// Mark `name` as a recognised flag without looking it up (for switches a
  /// driver only reads conditionally, or parses with a second ArgParser).
  void permit(std::string_view name) const {
    for (const std::string& known : recognized_) {
      if (known == name) return;
    }
    recognized_.emplace_back(name);
  }

  /// Hard error (exit 2) on any `-`-prefixed argv token whose name — the
  /// part before any '=' — was never queried or permit()ed.  Tokens consumed
  /// as the value of a "--flag V" spelling are exempt.
  void reject_unknown(std::string_view usage) const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string_view arg = args_[i];
      if (!arg.starts_with('-')) continue;
      const std::string_view name = arg.substr(0, arg.find('='));
      bool known = false;
      for (const std::string& candidate : recognized_) {
        if (candidate == name) {
          known = true;
          break;
        }
      }
      if (!known) {
        std::cerr << "error: unknown flag '" << name << "'\n"
                  << "usage: " << usage << "\n";
        std::exit(2);
      }
      // "--flag V": the next token belongs to this flag, never a flag itself.
      if (arg == name && i + 1 < args_.size() &&
          !args_[i + 1].starts_with('-')) {
        ++i;
      }
    }
  }

 private:
  std::vector<std::string_view> args_;
  /// Names queried so far; owned strings so permit() outlives temporaries.
  mutable std::vector<std::string> recognized_;
};

struct BenchArgs {
  bool quick = false;
  bool csv = false;
  std::uint64_t seed = 1;
  std::size_t trials = 0;   ///< 0 = driver default
  std::size_t threads = 1;  ///< 0 = hardware thread count
  std::string trace_path;   ///< empty = no trace
  bool report = false;
  std::string report_path;  ///< empty = report to stderr
  /// Allocated when --trace/--report asked for observation; shared_ptr so
  /// BenchArgs stays copyable (the bundle itself must not move once the
  /// simulation caches pointers into it).
  std::shared_ptr<obs::Observability> observability;

  /// Flags every bench accepts (also the reject_unknown usage hint).
  static constexpr std::string_view kUsage =
      "--quick --csv --seed=<u64> --trials <N> --threads <N> "
      "--trace=<path> --report[=<path>]";

  /// Parse the shared flags.  Drivers with extra switches list them in
  /// `extra_known` (e.g. {"--ablation"}) so the unknown-flag check accepts
  /// them; anything else `-`-prefixed on the command line is a hard error.
  static BenchArgs parse(
      int argc, char** argv,
      std::initializer_list<std::string_view> extra_known = {}) {
    const ArgParser parser(argc, argv);
    for (const std::string_view name : extra_known) parser.permit(name);
    BenchArgs args;
    args.quick = parser.flag("--quick");
    args.csv = parser.flag("--csv");
    args.seed = parser.value_u64("--seed", args.seed);
    args.trials = parser.value_u64("--trials", args.trials);
    args.threads = parser.value_u64("--threads", args.threads);
    if (const auto v = parser.value("--trace")) args.trace_path = *v;
    if (const auto v = parser.flag_or_value("--report")) {
      args.report = true;
      args.report_path = *v;
    }
    if (parser.flag("--help") || parser.flag("-h")) {
      std::cout << "flags: " << kUsage << "\n";
      std::exit(0);
    }
    parser.reject_unknown(kUsage);
    if (!args.trace_path.empty() || args.report) {
      args.observability = std::make_shared<obs::Observability>();
      args.observability->tracer.enable(!args.trace_path.empty());
    }
    return args;
  }

  /// Trials to run, with the driver's historical default when --trials is
  /// absent (1 for single-seed figures, more for the averaged ones).
  std::size_t trials_or(std::size_t fallback) const {
    return trials > 0 ? trials : fallback;
  }

  sim::TrialRunnerOptions runner(std::size_t default_trials = 1) const {
    sim::TrialRunnerOptions options;
    options.trials = trials_or(default_trials);
    options.threads = threads;
    options.observability = observability.get();
    return options;
  }
};

inline void emit(const metrics::Table& table, const BenchArgs& args) {
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Keep glibc malloc from bouncing pages back to the kernel mid-run.  Large-n
/// simulations allocate tens of thousands of per-node trees, queues and
/// policies; with the default thresholds glibc serves the biggest vectors
/// with mmap and trims the heap on every free wave, so steady state degrades
/// into mmap/munmap + page-fault churn (measured ~20% of wall time at
/// n=2000).  Raising both thresholds keeps the memory resident for the whole
/// process; peak RSS is unchanged — the pages were all touched anyway.
inline void retain_heap_pages() {
#if defined(__GLIBC__)
  mallopt(M_TRIM_THRESHOLD, 1 << 29);
  mallopt(M_MMAP_THRESHOLD, 1 << 29);
#endif
}

inline void banner(std::string_view title, std::string_view paper_ref) {
  retain_heap_pages();  // every bench driver calls banner() before running
  std::cout << "== " << title << " ==\n"
            << "   reproduces: " << paper_ref << "\n";
}

/// Cell helper: single trial prints the plain value (historical output),
/// several trials print "mean ± 95% CI".
inline std::string cell(const metrics::Summary& summary, int precision = 4) {
  return metrics::format_mean_ci(summary, precision);
}

class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Flush the observability outputs a driver asked for: the JSONL trace file
/// and the end-of-run report (stderr, or the --report=<path> file).  A no-op
/// when neither flag was given.
inline void write_observability_outputs(const BenchArgs& args) {
  if (!args.observability) return;
  const obs::Observability& o = *args.observability;
  if (!args.trace_path.empty()) {
    if (o.tracer.write_file(args.trace_path)) {
      std::cerr << "[bench] trace: " << args.trace_path << " ("
                << o.tracer.size() << " events)\n";
    } else {
      std::cerr << "[bench] trace: FAILED to write " << args.trace_path
                << "\n";
    }
  }
  if (args.report) {
    if (args.report_path.empty()) {
      obs::write_report(std::cerr, o);
    } else {
      std::ofstream out(args.report_path);
      if (out) {
        obs::write_report(out, o);
        std::cerr << "[bench] report: " << args.report_path << "\n";
      } else {
        std::cerr << "[bench] report: FAILED to write " << args.report_path
                  << "\n";
      }
    }
  }
}

/// Wall-clock/parallelism footer on stderr (stdout stays diffable across
/// --threads values), plus any requested trace/report outputs.
inline void print_run_footer(const BenchArgs& args, const WallTimer& timer,
                             std::size_t default_trials = 1) {
  const auto options = args.runner(default_trials);
  std::cerr << "[bench] trials/point=" << options.trials
            << " threads=" << options.resolved_threads()
            << " wall=" << timer.seconds() << "s\n";
  write_observability_outputs(args);
}

}  // namespace themis::bench
