// Fig. 1: per-node block-producing difficulty, probability and frequency for
// PoW, PBFT and Themis on a small heterogeneous consortium.
//
//   (a) PoW:    same difficulty for everyone; probability/frequency follow
//               invested computing power.
//   (b) PBFT:   round-robin; frequency identical, probability one-hot.
//   (c) Themis: difficulty tracks power; probability/frequency equalize.
//
// With --trials N the stochastic panels (a) and (c) average their per-node
// columns over N independent seeds run in parallel; (b) is deterministic
// rotation and runs once.
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "core/adaptive_difficulty.h"
#include "metrics/equality.h"
#include "sim/experiment.h"
#include "sim/trial_runner.h"

namespace {

using namespace themis;
using themis::bench::BenchArgs;

constexpr std::size_t kNodes = 8;

std::vector<double> heterogeneous_power() {
  // An 8-node consortium with a 20:1 power spread.
  return {200, 120, 80, 40, 20, 10, 10, 10};
}

/// Per-node columns of one panel (one trial's measurement).
struct PanelColumns {
  std::vector<double> difficulty;
  std::vector<double> probability;
  std::vector<double> frequency;
};

/// Element-wise mean across trials.
PanelColumns average(const std::vector<PanelColumns>& trials) {
  PanelColumns out;
  out.difficulty.assign(kNodes, 0.0);
  out.probability.assign(kNodes, 0.0);
  out.frequency.assign(kNodes, 0.0);
  for (const PanelColumns& t : trials) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      out.difficulty[i] += t.difficulty[i];
      out.probability[i] += t.probability[i];
      out.frequency[i] += t.frequency[i];
    }
  }
  const auto n = static_cast<double>(trials.size());
  for (std::size_t i = 0; i < kNodes; ++i) {
    out.difficulty[i] /= n;
    out.probability[i] /= n;
    out.frequency[i] /= n;
  }
  return out;
}

void print_algorithm(const std::string& name, const PanelColumns& c,
                     const BenchArgs& args) {
  metrics::Table t({"node", "difficulty D_i", "probability p_i", "frequency f_i"});
  for (std::size_t i = 0; i < kNodes; ++i) {
    t.add_row({std::to_string(i), metrics::Table::num(c.difficulty[i], 1),
               metrics::Table::num(c.probability[i], 4),
               metrics::Table::num(c.frequency[i], 4)});
  }
  std::cout << "\n-- " << name << " --\n";
  emit(t, args);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 1 — illustration of the three consensus families",
                "Jia et al., ICDCS 2022, Fig. 1");

  const std::vector<double> power = heterogeneous_power();
  const double total = std::accumulate(power.begin(), power.end(), 0.0);
  const double interval = 2.0;
  const std::uint64_t epochs = args.quick ? 8 : 16;
  const auto options = args.runner();

  // --- (a) PoW: one shared difficulty -------------------------------------
  {
    const auto trials = sim::run_trials(
        args.seed, options, [&](std::size_t, std::uint64_t seed) {
          sim::PoxConfig cfg;
          cfg.algorithm = core::Algorithm::kPowH;
          cfg.n_nodes = kNodes;
          cfg.hash_rates = power;
          cfg.beta = 8;
          cfg.expected_interval_s = interval;
          cfg.txs_per_block = 0;
          cfg.seed = seed;
          sim::PoxExperiment exp(cfg);
          exp.run_to_height(epochs * exp.delta());
          const auto producers = exp.main_chain_producers();
          const auto counts = metrics::producer_counts(producers, kNodes);
          PanelColumns c;
          c.difficulty.assign(kNodes, interval * total);
          for (std::size_t i = 0; i < kNodes; ++i) {
            c.probability.push_back(power[i] / total);
            c.frequency.push_back(static_cast<double>(counts[i]) /
                                  static_cast<double>(producers.size()));
          }
          return c;
        });
    print_algorithm("(a) PoW: equal difficulty, power-proportional frequency",
                    average(trials), args);
  }

  // --- (b) PBFT: round-robin leadership ------------------------------------
  {
    sim::PbftScenario scenario;
    scenario.n_nodes = kNodes;
    scenario.pbft.batch_size = 64;
    scenario.pbft.verify_delay = SimTime::micros(100);
    scenario.pbft.exec_delay_per_tx = SimTime::micros(10);
    scenario.duration = SimTime::seconds(600);
    scenario.max_blocks = args.quick ? 40 : 160;
    const auto result = sim::run_pbft(scenario);
    const auto counts = metrics::producer_counts(result.producers, kNodes);
    PanelColumns c;
    c.difficulty.assign(kNodes, 0.0);   // no puzzle at all
    c.probability.assign(kNodes, 0.0);  // one-hot each round
    c.probability[0] = 1.0;             // the known next leader
    for (std::size_t i = 0; i < kNodes; ++i) {
      c.frequency.push_back(static_cast<double>(counts[i]) /
                            static_cast<double>(result.producers.size()));
    }
    print_algorithm(
        "(b) PBFT: no puzzle, deterministic leader (probability one-hot)", c,
        args);
  }

  // --- (c) Themis: per-node difficulty matches power -----------------------
  {
    const auto trials = sim::run_trials(
        args.seed, options, [&](std::size_t, std::uint64_t seed) {
          sim::PoxConfig cfg;
          cfg.algorithm = core::Algorithm::kThemis;
          cfg.n_nodes = kNodes;
          cfg.hash_rates = power;
          cfg.beta = 16;  // larger delta: less q_i/delta noise at this tiny n
          cfg.expected_interval_s = interval;
          cfg.txs_per_block = 0;
          cfg.seed = seed;
          sim::PoxExperiment exp(cfg);
          exp.run_to_height(epochs * exp.delta());

          // Difficulty and probability in the last full epoch.
          const auto chain = exp.reference().main_chain();
          const std::uint64_t last_boundary =
              ((chain.size() - 1) / exp.delta()) * exp.delta();
          core::AdaptiveConfig adaptive;
          adaptive.n_nodes = kNodes;
          adaptive.delta = exp.delta();
          adaptive.expected_interval_s = interval;
          adaptive.h0 = cfg.h0;
          adaptive.initial_base_difficulty = interval * total;
          core::AdaptiveDifficulty observer(adaptive);
          const auto& table =
              observer.table_for(exp.reference().tree(), chain[last_boundary]);

          std::vector<double> effective(kNodes);
          for (std::size_t i = 0; i < kNodes; ++i) {
            effective[i] = power[i] / table.multiples[i];
          }
          const double eff_total =
              std::accumulate(effective.begin(), effective.end(), 0.0);
          // Frequency over the converged regime (the last 5 full epochs),
          // matching how Fig. 1c depicts the steady state.
          auto producers = exp.main_chain_producers();
          const std::size_t window =
              std::min<std::size_t>(producers.size(), 5 * exp.delta());
          const std::vector<ledger::NodeId> tail_producers(
              producers.end() - static_cast<std::ptrdiff_t>(window),
              producers.end());
          const auto counts = metrics::producer_counts(tail_producers, kNodes);
          PanelColumns c;
          for (std::size_t i = 0; i < kNodes; ++i) {
            c.difficulty.push_back(table.multiples[i] * table.base_difficulty);
            c.probability.push_back(effective[i] / eff_total);
            c.frequency.push_back(static_cast<double>(counts[i]) /
                                  static_cast<double>(window));
          }
          return c;
        });
    print_algorithm(
        "(c) Themis: difficulty matches power, probability/frequency equalize",
        average(trials), args);
  }

  std::cout << "\nReading: in (a) probability spreads with power; in (b) the "
               "probability column is one-hot (fully predictable); in (c) "
               "difficulty absorbs the power spread so probability ~ 1/n.\n";
  bench::print_run_footer(args, timer);
  return 0;
}
