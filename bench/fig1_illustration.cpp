// Fig. 1: per-node block-producing difficulty, probability and frequency for
// PoW, PBFT and Themis on a small heterogeneous consortium.
//
//   (a) PoW:    same difficulty for everyone; probability/frequency follow
//               invested computing power.
//   (b) PBFT:   round-robin; frequency identical, probability one-hot.
//   (c) Themis: difficulty tracks power; probability/frequency equalize.
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "core/adaptive_difficulty.h"
#include "metrics/equality.h"
#include "sim/experiment.h"

namespace {

using namespace themis;
using themis::bench::BenchArgs;

constexpr std::size_t kNodes = 8;

std::vector<double> heterogeneous_power() {
  // An 8-node consortium with a 20:1 power spread.
  return {200, 120, 80, 40, 20, 10, 10, 10};
}

void print_algorithm(const std::string& name,
                     const std::vector<double>& difficulty,
                     const std::vector<double>& probability,
                     const std::vector<double>& frequency,
                     const BenchArgs& args) {
  metrics::Table t({"node", "difficulty D_i", "probability p_i", "frequency f_i"});
  for (std::size_t i = 0; i < kNodes; ++i) {
    t.add_row({std::to_string(i), metrics::Table::num(difficulty[i], 1),
               metrics::Table::num(probability[i], 4),
               metrics::Table::num(frequency[i], 4)});
  }
  std::cout << "\n-- " << name << " --\n";
  emit(t, args);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Fig. 1 — illustration of the three consensus families",
                "Jia et al., ICDCS 2022, Fig. 1");

  const std::vector<double> power = heterogeneous_power();
  const double total = std::accumulate(power.begin(), power.end(), 0.0);
  const double interval = 2.0;
  const std::uint64_t epochs = args.quick ? 8 : 16;

  // --- (a) PoW: one shared difficulty -------------------------------------
  {
    sim::PoxConfig cfg;
    cfg.algorithm = core::Algorithm::kPowH;
    cfg.n_nodes = kNodes;
    cfg.hash_rates = power;
    cfg.beta = 8;
    cfg.expected_interval_s = interval;
    cfg.txs_per_block = 0;
    cfg.seed = args.seed;
    sim::PoxExperiment exp(cfg);
    exp.run_to_height(epochs * exp.delta());
    const auto producers = exp.main_chain_producers();
    const auto counts = metrics::producer_counts(producers, kNodes);
    std::vector<double> difficulty(kNodes, interval * total);
    std::vector<double> probability, frequency;
    for (std::size_t i = 0; i < kNodes; ++i) {
      probability.push_back(power[i] / total);
      frequency.push_back(static_cast<double>(counts[i]) /
                          static_cast<double>(producers.size()));
    }
    print_algorithm("(a) PoW: equal difficulty, power-proportional frequency",
                    difficulty, probability, frequency, args);
  }

  // --- (b) PBFT: round-robin leadership ------------------------------------
  {
    sim::PbftScenario scenario;
    scenario.n_nodes = kNodes;
    scenario.pbft.batch_size = 64;
    scenario.pbft.verify_delay = SimTime::micros(100);
    scenario.pbft.exec_delay_per_tx = SimTime::micros(10);
    scenario.duration = SimTime::seconds(600);
    scenario.max_blocks = args.quick ? 40 : 160;
    const auto result = sim::run_pbft(scenario);
    const auto counts = metrics::producer_counts(result.producers, kNodes);
    std::vector<double> difficulty(kNodes, 0.0);  // no puzzle at all
    std::vector<double> probability(kNodes, 0.0); // one-hot each round
    probability[0] = 1.0;                         // the known next leader
    std::vector<double> frequency;
    for (std::size_t i = 0; i < kNodes; ++i) {
      frequency.push_back(static_cast<double>(counts[i]) /
                          static_cast<double>(result.producers.size()));
    }
    print_algorithm(
        "(b) PBFT: no puzzle, deterministic leader (probability one-hot)",
        difficulty, probability, frequency, args);
  }

  // --- (c) Themis: per-node difficulty matches power -----------------------
  {
    sim::PoxConfig cfg;
    cfg.algorithm = core::Algorithm::kThemis;
    cfg.n_nodes = kNodes;
    cfg.hash_rates = power;
    cfg.beta = 16;  // larger delta: less q_i/delta noise at this tiny n
    cfg.expected_interval_s = interval;
    cfg.txs_per_block = 0;
    cfg.seed = args.seed;
    sim::PoxExperiment exp(cfg);
    exp.run_to_height(epochs * exp.delta());

    // Difficulty and probability in the last full epoch.
    const auto chain = exp.reference().main_chain();
    const std::uint64_t last_boundary =
        ((chain.size() - 1) / exp.delta()) * exp.delta();
    core::AdaptiveConfig adaptive;
    adaptive.n_nodes = kNodes;
    adaptive.delta = exp.delta();
    adaptive.expected_interval_s = interval;
    adaptive.h0 = cfg.h0;
    adaptive.initial_base_difficulty = interval * total;
    core::AdaptiveDifficulty observer(adaptive);
    const auto& table =
        observer.table_for(exp.reference().tree(), chain[last_boundary]);

    std::vector<double> difficulty, probability, frequency;
    std::vector<double> effective(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      effective[i] = power[i] / table.multiples[i];
    }
    const double eff_total =
        std::accumulate(effective.begin(), effective.end(), 0.0);
    // Frequency over the converged regime (the last 5 full epochs), matching
    // how Fig. 1c depicts the steady state.
    auto producers = exp.main_chain_producers();
    const std::size_t window =
        std::min<std::size_t>(producers.size(), 5 * exp.delta());
    const std::vector<ledger::NodeId> tail_producers(
        producers.end() - static_cast<std::ptrdiff_t>(window), producers.end());
    const auto counts = metrics::producer_counts(tail_producers, kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      difficulty.push_back(table.multiples[i] * table.base_difficulty);
      probability.push_back(effective[i] / eff_total);
      frequency.push_back(static_cast<double>(counts[i]) /
                          static_cast<double>(window));
    }
    print_algorithm(
        "(c) Themis: difficulty matches power, probability/frequency equalize",
        difficulty, probability, frequency, args);
  }

  std::cout << "\nReading: in (a) probability spreads with power; in (b) the "
               "probability column is one-hot (fully predictable); in (c) "
               "difficulty absorbs the power spread so probability ~ 1/n.\n";
  return 0;
}
