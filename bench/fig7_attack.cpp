// Fig. 7 — Attack scenarios (higher is better): TPS against the proportion of
// vulnerable nodes R_vul in [0, 32%], n = 100 for every algorithm.
//
// A vulnerable node keeps participating but the single-point attack keeps
// every block it produces out of the network.  PoX algorithms lose only the
// suppressed share of mining power (slightly longer rounds); PBFT pays a full
// view-change timeout whenever a vulnerable replica is the leader.
//
// With --trials N every (ratio, algorithm) point runs N independent seeds in
// parallel; cells report mean ± 95% CI across trials.
#include <iostream>

#include "bench_util.h"
#include "sim/experiment.h"
#include "sim/trial_runner.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const bench::WallTimer timer;
  bench::banner("Fig. 7 — Attack scenarios: TPS vs vulnerable-node ratio",
                "Jia et al., ICDCS 2022, Fig. 7 / §VII-D");

  const std::size_t n = args.quick ? 40 : 100;  // paper: 100 for all algorithms
  const std::vector<double> ratios{0.0, 0.08, 0.16, 0.24, 0.32};
  const std::vector<core::Algorithm> algorithms = {
      core::Algorithm::kPowH, core::Algorithm::kThemisLite,
      core::Algorithm::kThemis};
  const std::uint32_t batch = 4096;
  const std::uint64_t epochs = args.quick ? 4 : 6;

  std::vector<sim::PoxTrialSpec> points;
  for (const double ratio : ratios) {
    for (const auto algorithm : algorithms) {
      sim::PoxTrialSpec spec;
      spec.config.algorithm = algorithm;
      spec.config.n_nodes = n;
      spec.config.beta = 4;  // short epochs: the retarget absorbs the
                             // suppressed power within a couple of epochs
                             // (§VII-D: "other nodes can still continue the
                             // consensus on schedule")
      spec.config.txs_per_block = batch;
      spec.config.vulnerable_ratio = ratio;
      spec.config.seed = args.seed;
      const std::uint64_t delta = sim::PoxExperiment::delta_for(spec.config);
      spec.target_height = epochs * delta;
      spec.max_sim_time = SimTime::seconds(30000.0);
      // Converged-regime TPS: the last two epochs.
      spec.tail_from_height = (epochs - 2) * delta;
      spec.collect_variances = false;
      points.push_back(std::move(spec));
    }
  }
  const auto sweep = sim::run_pox_sweep(points, args.runner());

  std::vector<sim::PbftScenario> pbft_points;
  for (const double ratio : ratios) {
    sim::PbftScenario scenario;
    scenario.n_nodes = n;
    scenario.pbft.batch_size = batch;
    scenario.vulnerable_ratio = ratio;
    scenario.duration = SimTime::seconds(args.quick ? 150.0 : 300.0);
    scenario.seed = args.seed;
    pbft_points.push_back(scenario);
  }
  const auto pbft_sweep = sim::run_pbft_sweep(pbft_points, args.runner());

  const auto tail_tps = [](const std::vector<sim::PoxTrialResult>& trials) {
    return metrics::summarize_over(
        trials, [](const sim::PoxTrialResult& r) { return r.tail_tps; });
  };

  metrics::Table t(
      {"R_vul %", "PoW-H", "Themis-Lite", "Themis", "PBFT", "PBFT view-changes"});
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const auto pbft_tps = metrics::summarize_over(
        pbft_sweep[i],
        [](const sim::PbftTrialResult& r) { return r.result.tps; });
    const auto pbft_vc = metrics::summarize_over(
        pbft_sweep[i], [](const sim::PbftTrialResult& r) {
          return static_cast<double>(r.result.view_changes);
        });
    t.add_row({metrics::Table::num(100.0 * ratios[i], 0),
               bench::cell(tail_tps(sweep[3 * i + 0]), 1),
               bench::cell(tail_tps(sweep[3 * i + 1]), 1),
               bench::cell(tail_tps(sweep[3 * i + 2]), 1),
               bench::cell(pbft_tps, 1), bench::cell(pbft_vc, 0)});
  }
  emit(t, args);

  std::cout << "\nReading: the three PoX algorithms hold a near-stable TPS "
               "(other miners continue the round); PBFT's TPS falls steeply "
               "as timeouts pile up.\n";
  bench::print_run_footer(args, timer);
  return 0;
}
