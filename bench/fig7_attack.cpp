// Fig. 7 — Attack scenarios (higher is better): TPS against the proportion of
// vulnerable nodes R_vul in [0, 32%], n = 100 for every algorithm.
//
// A vulnerable node keeps participating but the single-point attack keeps
// every block it produces out of the network.  PoX algorithms lose only the
// suppressed share of mining power (slightly longer rounds); PBFT pays a full
// view-change timeout whenever a vulnerable replica is the leader.
#include <iostream>

#include "bench_util.h"
#include "sim/experiment.h"

int main(int argc, char** argv) {
  using namespace themis;
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Fig. 7 — Attack scenarios: TPS vs vulnerable-node ratio",
                "Jia et al., ICDCS 2022, Fig. 7 / §VII-D");

  const std::size_t n = args.quick ? 40 : 100;  // paper: 100 for all algorithms
  const std::vector<double> ratios{0.0, 0.08, 0.16, 0.24, 0.32};
  const std::uint32_t batch = 4096;

  metrics::Table t(
      {"R_vul %", "PoW-H", "Themis-Lite", "Themis", "PBFT", "PBFT view-changes"});

  for (const double ratio : ratios) {
    std::vector<double> pox_tps;
    for (const auto algorithm :
         {core::Algorithm::kPowH, core::Algorithm::kThemisLite,
          core::Algorithm::kThemis}) {
      sim::PoxConfig cfg;
      cfg.algorithm = algorithm;
      cfg.n_nodes = n;
      cfg.beta = 4;  // short epochs: the retarget absorbs the suppressed
                     // power within a couple of epochs (§VII-D: "other nodes
                     // can still continue the consensus on schedule")
      cfg.txs_per_block = batch;
      cfg.vulnerable_ratio = ratio;
      cfg.seed = args.seed;
      sim::PoxExperiment exp(cfg);
      const std::uint64_t epochs = args.quick ? 4 : 6;
      exp.run_to_height(epochs * exp.delta(), SimTime::seconds(30000.0));
      // Converged-regime TPS: the last two epochs.
      pox_tps.push_back(exp.tps_since((epochs - 2) * exp.delta()));
    }

    sim::PbftScenario scenario;
    scenario.n_nodes = n;
    scenario.pbft.batch_size = batch;
    scenario.vulnerable_ratio = ratio;
    scenario.duration = SimTime::seconds(args.quick ? 150.0 : 300.0);
    scenario.seed = args.seed;
    const auto pbft = sim::run_pbft(scenario);

    t.add_row({metrics::Table::num(100.0 * ratio, 0),
               metrics::Table::num(pox_tps[0], 1),
               metrics::Table::num(pox_tps[1], 1),
               metrics::Table::num(pox_tps[2], 1),
               metrics::Table::num(pbft.tps, 1),
               metrics::Table::num(pbft.view_changes)});
  }
  emit(t, args);

  std::cout << "\nReading: the three PoX algorithms hold a near-stable TPS "
               "(other miners continue the round); PBFT's TPS falls steeply "
               "as timeouts pile up.\n";
  return 0;
}
