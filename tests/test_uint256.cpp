#include "common/uint256.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace themis {
namespace {

TEST(UInt256, DefaultIsZero) {
  EXPECT_TRUE(UInt256().is_zero());
  EXPECT_EQ(UInt256().bit_length(), -1);
}

TEST(UInt256, FromU64) {
  const UInt256 v(42);
  EXPECT_EQ(v.limb(0), 42u);
  EXPECT_EQ(v.limb(1), 0u);
  EXPECT_EQ(v.bit_length(), 5);
}

TEST(UInt256, HexRoundTrip) {
  const std::string hex =
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
  EXPECT_EQ(UInt256::from_hex(hex).to_hex(), hex);
}

TEST(UInt256, HexShortLiteral) {
  EXPECT_EQ(UInt256::from_hex("ff"), UInt256(255));
}

TEST(UInt256, HexRejectsBadInput) {
  EXPECT_THROW(UInt256::from_hex(""), PreconditionError);
  EXPECT_THROW(UInt256::from_hex(std::string(65, 'a')), PreconditionError);
}

TEST(UInt256, BeBytesRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const UInt256 v(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    EXPECT_EQ(UInt256::from_be_bytes(v.to_be_bytes()), v);
  }
}

TEST(UInt256, BeBytesLayout) {
  // 1 must land in the last byte of the big-endian encoding.
  const Hash32 bytes = UInt256(1).to_be_bytes();
  EXPECT_EQ(bytes[31], 1);
  EXPECT_EQ(bytes[0], 0);
}

TEST(UInt256, AdditionCarries) {
  const UInt256 max_limb(~0ull);
  const UInt256 sum = max_limb + UInt256(1);
  EXPECT_EQ(sum.limb(0), 0u);
  EXPECT_EQ(sum.limb(1), 1u);
}

TEST(UInt256, AdditionWrapsAtMax) {
  EXPECT_EQ(UInt256::max() + UInt256(1), UInt256::zero());
}

TEST(UInt256, AddOverflowFlag) {
  UInt256 out;
  EXPECT_TRUE(UInt256::max().add_overflow(UInt256(1), out));
  EXPECT_FALSE(UInt256(1).add_overflow(UInt256(1), out));
}

TEST(UInt256, SubtractionBorrows) {
  const UInt256 v(0, 1, 0, 0);  // 2^64
  const UInt256 diff = v - UInt256(1);
  EXPECT_EQ(diff.limb(0), ~0ull);
  EXPECT_EQ(diff.limb(1), 0u);
}

TEST(UInt256, SubBorrowFlag) {
  UInt256 out;
  EXPECT_TRUE(UInt256(1).sub_borrow(UInt256(2), out));
  EXPECT_FALSE(UInt256(2).sub_borrow(UInt256(1), out));
}

TEST(UInt256, AddSubInverse) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const UInt256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    const UInt256 b(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    EXPECT_EQ(a + b - b, a);
  }
}

TEST(UInt256, MultiplySmallValues) {
  EXPECT_EQ(UInt256(6) * UInt256(7), UInt256(42));
}

TEST(UInt256, MulWideKnown) {
  // (2^128) * (2^128) = 2^256: low half zero, high half 1.
  const UInt256 x(0, 0, 1, 0);  // 2^128
  UInt256 hi, lo;
  UInt256::mul_wide(x, x, hi, lo);
  EXPECT_TRUE(lo.is_zero());
  EXPECT_EQ(hi, UInt256(1));
}

TEST(UInt256, ShiftLeftRightInverse) {
  Rng rng(13);
  for (int shift : {1, 7, 63, 64, 65, 128, 200, 255}) {
    // Keep v below 2^(256-shift) so no bits fall off the top.
    const UInt256 v =
        UInt256(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()) >>
        shift;
    EXPECT_EQ((v << shift) >> shift, v) << "shift=" << shift;
  }
}

TEST(UInt256, ShiftOutOfRangeThrows) {
  EXPECT_THROW(UInt256(1) << 256, PreconditionError);
  EXPECT_THROW(UInt256(1) >> 256, PreconditionError);
}

TEST(UInt256, CompareOrdering) {
  EXPECT_LT(UInt256(1), UInt256(2));
  EXPECT_LT(UInt256(~0ull), UInt256(0, 1, 0, 0));
  EXPECT_GT(UInt256::max(), UInt256(0, 0, 0, ~0ull >> 1));
}

TEST(UInt256, DivSmallKnown) {
  std::uint64_t rem = 0;
  EXPECT_EQ(UInt256(100).div_small(7, rem), UInt256(14));
  EXPECT_EQ(rem, 2u);
}

TEST(UInt256, DivideByZeroThrows) {
  std::uint64_t rem;
  EXPECT_THROW(UInt256(1).div_small(0, rem), PreconditionError);
  EXPECT_THROW(UInt256(1).divmod(UInt256::zero()), PreconditionError);
}

TEST(UInt256, DivmodSmallerDividend) {
  const auto r = UInt256(5).divmod(UInt256(7));
  EXPECT_TRUE(r.quotient.is_zero());
  EXPECT_EQ(r.remainder, UInt256(5));
}

class UInt256DivmodProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UInt256DivmodProperty, ReconstructsDividend) {
  Rng rng(GetParam());
  for (int i = 0; i < 25; ++i) {
    const UInt256 a(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
    UInt256 b(rng.next_u64(), rng.next_u64(), i % 2 ? rng.next_u64() : 0, 0);
    if (b.is_zero()) b = UInt256(1);
    const auto r = a.divmod(b);
    EXPECT_LT(r.remainder, b);
    // a == q*b + r (the product must not overflow since q*b <= a).
    EXPECT_EQ(r.quotient * b + r.remainder, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UInt256DivmodProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(UInt256, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(UInt256(1000).to_double(), 1000.0);
  EXPECT_NEAR(UInt256::max().to_double(), std::ldexp(1.0, 256), 1e63);
}

TEST(Target, DifficultyOneIsMax) {
  EXPECT_EQ(target_for_difficulty(1.0), UInt256::max());
}

TEST(Target, HigherDifficultyLowerTarget) {
  EXPECT_LT(target_for_difficulty(2.0), target_for_difficulty(1.5));
  EXPECT_LT(target_for_difficulty(1e6), target_for_difficulty(1e3));
}

TEST(Target, RejectsOutOfRange) {
  EXPECT_THROW(target_for_difficulty(0.5), PreconditionError);
  EXPECT_THROW(target_for_difficulty(-1.0), PreconditionError);
  EXPECT_THROW(target_for_difficulty(std::ldexp(1.0, 201)), PreconditionError);
}

class TargetRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TargetRoundTrip, DifficultyRecovered) {
  const double d = GetParam();
  const UInt256 target = target_for_difficulty(d);
  EXPECT_NEAR(difficulty_for_target(target) / d, 1.0, 1e-6) << "d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Difficulties, TargetRoundTrip,
                         ::testing::Values(1.0, 2.0, 10.0, 1000.0, 12345.678,
                                           1e6, 1e9, 1e12, 1e15, 3.7e18));

TEST(Target, HalvingDifficultyDoublesTarget) {
  const UInt256 t1 = target_for_difficulty(1000.0);
  const UInt256 t2 = target_for_difficulty(2000.0);
  const double ratio = t1.to_double() / t2.to_double();
  EXPECT_NEAR(ratio, 2.0, 1e-6);
}

}  // namespace
}  // namespace themis
