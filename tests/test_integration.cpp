// End-to-end experiments over the full stack: consensus nodes on the
// simulated gossip network, driven exactly as the benches drive them.
#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "metrics/equality.h"

namespace themis::sim {
namespace {

PoxConfig small_config(core::Algorithm algorithm, std::uint64_t seed = 3) {
  PoxConfig cfg;
  cfg.algorithm = algorithm;
  cfg.n_nodes = 24;  // > 19 named pools, keeps runtime small
  cfg.beta = 8;
  cfg.expected_interval_s = 4.0;
  cfg.txs_per_block = 512;
  cfg.seed = seed;
  return cfg;
}

TEST(Experiment, RunReachesRequestedHeight) {
  PoxExperiment exp(small_config(core::Algorithm::kThemis));
  exp.run_to_height(100);
  EXPECT_GE(exp.reference().head_height(), 100u);
  EXPECT_GT(exp.elapsed(), SimTime::zero());
}

TEST(Experiment, DeltaIsBetaTimesN) {
  PoxExperiment exp(small_config(core::Algorithm::kThemis));
  EXPECT_EQ(exp.delta(), 24u * 8u);
}

TEST(Experiment, DeterministicForSeed) {
  PoxExperiment a(small_config(core::Algorithm::kThemis, 5));
  PoxExperiment b(small_config(core::Algorithm::kThemis, 5));
  a.run_to_height(60);
  b.run_to_height(60);
  EXPECT_EQ(a.reference().head(), b.reference().head());
  EXPECT_EQ(a.elapsed(), b.elapsed());
  EXPECT_EQ(a.main_chain_producers(), b.main_chain_producers());
}

TEST(Experiment, DifferentSeedsDiverge) {
  PoxExperiment a(small_config(core::Algorithm::kThemis, 5));
  PoxExperiment b(small_config(core::Algorithm::kThemis, 6));
  a.run_to_height(30);
  b.run_to_height(30);
  EXPECT_NE(a.reference().head(), b.reference().head());
}

// Proposition 1 (the convergence of history): after the network quiesces,
// every node agrees on every block except possibly the unsettled tip region.
class ConvergenceOfHistory : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(ConvergenceOfHistory, AllNodesShareTheChainPrefix) {
  PoxConfig cfg = small_config(GetParam());
  PoxExperiment exp(cfg);
  exp.run_to_height(150);
  // Let in-flight gossip drain (no new mining past the target matters; the
  // bounded delay from the security assumption is well under 5 s here).
  const auto reference_chain = exp.reference().main_chain();
  for (std::size_t i = 1; i < exp.size(); ++i) {
    const auto chain = exp.node(i).main_chain();
    const std::size_t shared = std::min(chain.size(), reference_chain.size());
    ASSERT_GT(shared, 10u);
    // All but the last few (propagation-window) blocks must agree.
    for (std::size_t h = 0; h + 4 < shared; ++h) {
      ASSERT_EQ(chain[h], reference_chain[h])
          << "node " << i << " diverges at height " << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ConvergenceOfHistory,
                         ::testing::Values(core::Algorithm::kThemis,
                                           core::Algorithm::kThemisLite,
                                           core::Algorithm::kPowH));

TEST(Experiment, ThemisImprovesEqualityOverPowH) {
  PoxConfig themis_cfg = small_config(core::Algorithm::kThemis);
  PoxConfig powh_cfg = small_config(core::Algorithm::kPowH);
  PoxExperiment themis(themis_cfg);
  PoxExperiment powh(powh_cfg);
  const std::uint64_t target = 5 * themis.delta();
  themis.run_to_height(target);
  powh.run_to_height(target);

  const auto tv = themis.per_epoch_frequency_variance();
  const auto pv = powh.per_epoch_frequency_variance();
  ASSERT_GE(tv.size(), 4u);
  ASSERT_GE(pv.size(), 4u);
  // After convergence (last two epochs) Themis' sigma_f^2 is far below PoW-H.
  const double themis_tail = (tv[tv.size() - 1] + tv[tv.size() - 2]) / 2;
  const double powh_tail = (pv[pv.size() - 1] + pv[pv.size() - 2]) / 2;
  EXPECT_LT(themis_tail, 0.5 * powh_tail);
}

TEST(Experiment, ThemisImprovesUnpredictabilityOverPowH) {
  PoxExperiment themis(small_config(core::Algorithm::kThemis));
  themis.run_to_height(5 * themis.delta());
  const auto pv = themis.per_epoch_probability_variance();
  ASSERT_GE(pv.size(), 4u);
  // PoW-H's sigma_p^2 equals the epoch-0 value (raw power distribution);
  // Themis drives it down as the multiples converge (Fig. 5).
  EXPECT_LT(pv.back(), 0.4 * pv.front());
  // And it keeps decreasing monotonically in the early epochs.
  EXPECT_LT(pv[1], pv[0]);
}

TEST(Experiment, PowHProbabilityVarianceIsFlat) {
  PoxExperiment powh(small_config(core::Algorithm::kPowH));
  powh.run_to_height(2 * powh.delta());
  const auto pv = powh.per_epoch_probability_variance();
  ASSERT_GE(pv.size(), 2u);
  EXPECT_DOUBLE_EQ(pv[0], pv[1]);
}

TEST(Experiment, ForkStatsAreModest) {
  PoxExperiment exp(small_config(core::Algorithm::kThemis));
  exp.run_to_height(300);
  const auto stats = exp.fork_stats();
  EXPECT_LT(stats.stale_rate, 0.25);
  EXPECT_LT(stats.longest_fork_duration, 20u);
}

TEST(Experiment, TpsInExpectedBallpark) {
  PoxExperiment exp(small_config(core::Algorithm::kPowH));
  exp.run_to_height(200);
  // 512 txs / ~4 s interval, minus fork losses.
  EXPECT_GT(exp.tps(), 60.0);
  EXPECT_LT(exp.tps(), 160.0);
}

TEST(Experiment, VulnerableNodesAreSuppressed) {
  PoxConfig cfg = small_config(core::Algorithm::kThemis);
  cfg.vulnerable_ratio = 0.25;
  PoxExperiment exp(cfg);
  std::size_t suppressed = 0;
  for (std::size_t i = 0; i < exp.size(); ++i) {
    if (exp.node(i).producer_suppressed()) ++suppressed;
  }
  EXPECT_EQ(suppressed, 6u);  // 25 % of 24
  exp.run_to_height(100);
  // Suppressed producers never appear in the main chain.
  for (const ledger::NodeId p : exp.main_chain_producers()) {
    EXPECT_FALSE(exp.node(p).producer_suppressed());
  }
}

TEST(Experiment, RejectsInvalidConfigs) {
  PoxConfig cfg = small_config(core::Algorithm::kPbft);
  EXPECT_THROW(PoxExperiment{cfg}, PreconditionError);
  cfg = small_config(core::Algorithm::kThemis);
  cfg.vulnerable_ratio = 1.5;
  EXPECT_THROW(PoxExperiment{cfg}, PreconditionError);
  cfg = small_config(core::Algorithm::kThemis);
  cfg.hash_rates = {1.0, 2.0};  // wrong length
  EXPECT_THROW(PoxExperiment{cfg}, PreconditionError);
}

TEST(PbftExperiment, CommitsAndReportsTps) {
  PbftScenario scenario;
  scenario.n_nodes = 4;
  scenario.pbft.batch_size = 256;
  scenario.pbft.verify_delay = SimTime::micros(100);
  scenario.pbft.exec_delay_per_tx = SimTime::micros(100);
  scenario.duration = SimTime::seconds(120);
  const PbftResult result = run_pbft(scenario);
  EXPECT_GT(result.committed_blocks, 10u);
  EXPECT_GT(result.tps, 0.0);
  EXPECT_EQ(result.committed_txs, result.committed_blocks * 256);
  EXPECT_EQ(result.producers.size(), result.committed_blocks);
}

TEST(PbftExperiment, MaxBlocksStopsEarly) {
  PbftScenario scenario;
  scenario.n_nodes = 4;
  scenario.pbft.batch_size = 64;
  scenario.pbft.verify_delay = SimTime::micros(100);
  scenario.pbft.exec_delay_per_tx = SimTime::micros(10);
  scenario.duration = SimTime::seconds(600);
  scenario.max_blocks = 5;
  const PbftResult result = run_pbft(scenario);
  EXPECT_GE(result.committed_blocks, 5u);
  EXPECT_LT(result.elapsed, SimTime::seconds(600));
}

TEST(PbftExperiment, VulnerableLeadersCauseViewChanges) {
  PbftScenario scenario;
  scenario.n_nodes = 8;
  scenario.pbft.batch_size = 64;
  scenario.pbft.base_timeout = SimTime::seconds(2.0);
  scenario.pbft.verify_delay = SimTime::micros(100);
  scenario.pbft.exec_delay_per_tx = SimTime::micros(10);
  scenario.duration = SimTime::seconds(200);
  scenario.vulnerable_ratio = 0.25;
  const PbftResult result = run_pbft(scenario);
  EXPECT_GT(result.view_changes, 0u);
  EXPECT_GT(result.committed_blocks, 0u);

  scenario.vulnerable_ratio = 0.0;
  const PbftResult healthy = run_pbft(scenario);
  EXPECT_GT(healthy.tps, result.tps);
}

}  // namespace
}  // namespace themis::sim
