#include "ledger/blocktree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "tree_builder.h"

namespace themis::ledger {
namespace {

using test::TreeBuilder;

BlockPtr make_block(const BlockPtr& parent, NodeId producer, std::uint64_t nonce) {
  BlockHeader h;
  h.height = parent->height() + 1;
  h.prev = parent->id();
  h.producer = producer;
  h.nonce = nonce;
  return std::make_shared<const Block>(h, crypto::Signature{},
                                       std::vector<Transaction>{});
}

TEST(BlockTree, StartsWithGenesis) {
  BlockTree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.contains(tree.genesis_hash()));
  EXPECT_EQ(tree.height(tree.genesis_hash()), 0u);
  EXPECT_EQ(tree.max_height(), 0u);
}

TEST(BlockTree, InsertChild) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto child = make_block(genesis, 1, 1);
  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::inserted);
  EXPECT_TRUE(tree.contains(child->id()));
  EXPECT_EQ(tree.height(child->id()), 1u);
  EXPECT_EQ(tree.max_height(), 1u);
  EXPECT_EQ(tree.parent(child->id()), tree.genesis_hash());
}

TEST(BlockTree, DuplicateInsertDetected) {
  BlockTree tree;
  const auto child = make_block(tree.block(tree.genesis_hash()), 1, 1);
  tree.insert(child);
  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::duplicate);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BlockTree, OrphanBufferedUntilParentArrives) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto parent = make_block(genesis, 1, 1);
  const auto child = make_block(parent, 2, 2);

  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::orphaned);
  EXPECT_FALSE(tree.contains(child->id()));
  EXPECT_EQ(tree.orphan_count(), 1u);

  EXPECT_EQ(tree.insert(parent), BlockTree::InsertResult::inserted);
  EXPECT_TRUE(tree.contains(child->id()));
  EXPECT_EQ(tree.orphan_count(), 0u);
  EXPECT_EQ(tree.max_height(), 2u);
}

TEST(BlockTree, OrphanChainAttachesRecursively) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto a = make_block(genesis, 1, 1);
  const auto b = make_block(a, 1, 2);
  const auto c = make_block(b, 1, 3);
  tree.insert(c);
  tree.insert(b);
  EXPECT_EQ(tree.orphan_count(), 2u);
  tree.insert(a);
  EXPECT_TRUE(tree.contains(c->id()));
  EXPECT_EQ(tree.size(), 4u);
}

TEST(BlockTree, ChildrenInReceiptOrder) {
  TreeBuilder builder;
  builder.add("b", "g", 2);
  builder.add("a", "g", 1);
  const auto& kids = builder.tree().children(builder.tree().genesis_hash());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], builder.hash("b"));
  EXPECT_EQ(kids[1], builder.hash("a"));
  EXPECT_LT(builder.tree().receipt_seq(builder.hash("b")),
            builder.tree().receipt_seq(builder.hash("a")));
}

TEST(BlockTree, SubtreeSize) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a2", "a", 2);
  builder.add("a11", "a1", 1);
  builder.add("b", "g", 3);
  const auto& tree = builder.tree();
  EXPECT_EQ(tree.subtree_size(builder.hash("a")), 4u);
  EXPECT_EQ(tree.subtree_size(builder.hash("b")), 1u);
  EXPECT_EQ(tree.subtree_size(tree.genesis_hash()), 6u);
}

TEST(BlockTree, SubtreeProducerCounts) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a2", "a", 1);
  builder.add("a3", "a", 2);
  const auto counts =
      builder.tree().subtree_producer_counts(builder.hash("a"), 4);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2, 1, 0}));
}

TEST(BlockTree, SubtreeProducerCountsSkipsGenesisSentinel) {
  BlockTree tree;
  const auto counts = tree.subtree_producer_counts(tree.genesis_hash(), 3);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(BlockTree, ChainToWalksFromGenesis) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("c", "b", 2);
  const auto chain = builder.tree().chain_to(builder.hash("c"));
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], builder.tree().genesis_hash());
  EXPECT_EQ(chain[3], builder.hash("c"));
}

TEST(BlockTree, IsAncestor) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("x", "g", 2);
  const auto& tree = builder.tree();
  EXPECT_TRUE(tree.is_ancestor(builder.hash("a"), builder.hash("b")));
  EXPECT_TRUE(tree.is_ancestor(tree.genesis_hash(), builder.hash("b")));
  EXPECT_TRUE(tree.is_ancestor(builder.hash("b"), builder.hash("b")));
  EXPECT_FALSE(tree.is_ancestor(builder.hash("b"), builder.hash("a")));
  EXPECT_FALSE(tree.is_ancestor(builder.hash("x"), builder.hash("b")));
}

TEST(BlockTree, TipsAreLeaves) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("x", "g", 2);
  auto tips = builder.tree().tips();
  std::sort(tips.begin(), tips.end());
  std::vector<BlockHash> expected{builder.hash("b"), builder.hash("x")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(tips, expected);
}

TEST(BlockTree, QueriesOnUnknownBlockThrow) {
  BlockTree tree;
  BlockHash unknown{};
  unknown[0] = 0xff;
  EXPECT_THROW(tree.height(unknown), PreconditionError);
  EXPECT_THROW(tree.children(unknown), PreconditionError);
  EXPECT_EQ(tree.block(unknown), nullptr);
}

TEST(BlockTree, RejectsNonGenesisRoot) {
  const auto genesis = std::make_shared<const Block>(Block::genesis());
  const auto child = make_block(genesis, 1, 1);
  EXPECT_THROW(BlockTree{child}, PreconditionError);
}

TEST(BlockTree, DuplicateOrphanNotDoubleBuffered) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto parent = make_block(genesis, 1, 1);
  const auto child = make_block(parent, 2, 2);
  tree.insert(child);
  tree.insert(child);
  EXPECT_EQ(tree.orphan_count(), 1u);
}

}  // namespace
}  // namespace themis::ledger
