#include "ledger/blocktree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"
#include "tree_builder.h"

namespace themis::ledger {
namespace {

using test::TreeBuilder;

BlockPtr make_block(const BlockPtr& parent, NodeId producer, std::uint64_t nonce) {
  BlockHeader h;
  h.height = parent->height() + 1;
  h.prev = parent->id();
  h.producer = producer;
  h.nonce = nonce;
  return std::make_shared<const Block>(h, crypto::Signature{},
                                       std::vector<Transaction>{});
}

TEST(BlockTree, StartsWithGenesis) {
  BlockTree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.contains(tree.genesis_hash()));
  EXPECT_EQ(tree.height(tree.genesis_hash()), 0u);
  EXPECT_EQ(tree.max_height(), 0u);
}

TEST(BlockTree, InsertChild) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto child = make_block(genesis, 1, 1);
  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::inserted);
  EXPECT_TRUE(tree.contains(child->id()));
  EXPECT_EQ(tree.height(child->id()), 1u);
  EXPECT_EQ(tree.max_height(), 1u);
  EXPECT_EQ(tree.parent(child->id()), tree.genesis_hash());
}

TEST(BlockTree, DuplicateInsertDetected) {
  BlockTree tree;
  const auto child = make_block(tree.block(tree.genesis_hash()), 1, 1);
  tree.insert(child);
  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::duplicate);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BlockTree, OrphanBufferedUntilParentArrives) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto parent = make_block(genesis, 1, 1);
  const auto child = make_block(parent, 2, 2);

  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::orphaned);
  EXPECT_FALSE(tree.contains(child->id()));
  EXPECT_EQ(tree.orphan_count(), 1u);

  EXPECT_EQ(tree.insert(parent), BlockTree::InsertResult::inserted);
  EXPECT_TRUE(tree.contains(child->id()));
  EXPECT_EQ(tree.orphan_count(), 0u);
  EXPECT_EQ(tree.max_height(), 2u);
}

TEST(BlockTree, OrphanChainAttachesRecursively) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto a = make_block(genesis, 1, 1);
  const auto b = make_block(a, 1, 2);
  const auto c = make_block(b, 1, 3);
  tree.insert(c);
  tree.insert(b);
  EXPECT_EQ(tree.orphan_count(), 2u);
  tree.insert(a);
  EXPECT_TRUE(tree.contains(c->id()));
  EXPECT_EQ(tree.size(), 4u);
}

TEST(BlockTree, ChildrenInReceiptOrder) {
  TreeBuilder builder;
  builder.add("b", "g", 2);
  builder.add("a", "g", 1);
  const auto& kids = builder.tree().children(builder.tree().genesis_hash());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], builder.hash("b"));
  EXPECT_EQ(kids[1], builder.hash("a"));
  EXPECT_LT(builder.tree().receipt_seq(builder.hash("b")),
            builder.tree().receipt_seq(builder.hash("a")));
}

TEST(BlockTree, SubtreeSize) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a2", "a", 2);
  builder.add("a11", "a1", 1);
  builder.add("b", "g", 3);
  const auto& tree = builder.tree();
  EXPECT_EQ(tree.subtree_size(builder.hash("a")), 4u);
  EXPECT_EQ(tree.subtree_size(builder.hash("b")), 1u);
  EXPECT_EQ(tree.subtree_size(tree.genesis_hash()), 6u);
}

TEST(BlockTree, SubtreeProducerCounts) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a2", "a", 1);
  builder.add("a3", "a", 2);
  const auto counts =
      builder.tree().subtree_producer_counts(builder.hash("a"), 4);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2, 1, 0}));
}

TEST(BlockTree, SubtreeProducerCountsSkipsGenesisSentinel) {
  BlockTree tree;
  const auto counts = tree.subtree_producer_counts(tree.genesis_hash(), 3);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(BlockTree, ChainToWalksFromGenesis) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("c", "b", 2);
  const auto chain = builder.tree().chain_to(builder.hash("c"));
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], builder.tree().genesis_hash());
  EXPECT_EQ(chain[3], builder.hash("c"));
}

TEST(BlockTree, IsAncestor) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("x", "g", 2);
  const auto& tree = builder.tree();
  EXPECT_TRUE(tree.is_ancestor(builder.hash("a"), builder.hash("b")));
  EXPECT_TRUE(tree.is_ancestor(tree.genesis_hash(), builder.hash("b")));
  EXPECT_TRUE(tree.is_ancestor(builder.hash("b"), builder.hash("b")));
  EXPECT_FALSE(tree.is_ancestor(builder.hash("b"), builder.hash("a")));
  EXPECT_FALSE(tree.is_ancestor(builder.hash("x"), builder.hash("b")));
}

TEST(BlockTree, TipsAreLeaves) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("x", "g", 2);
  auto tips = builder.tree().tips();
  std::sort(tips.begin(), tips.end());
  std::vector<BlockHash> expected{builder.hash("b"), builder.hash("x")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(tips, expected);
}

TEST(BlockTree, QueriesOnUnknownBlockThrow) {
  BlockTree tree;
  BlockHash unknown{};
  unknown[0] = 0xff;
  EXPECT_THROW(tree.height(unknown), PreconditionError);
  EXPECT_THROW(tree.children(unknown), PreconditionError);
  EXPECT_EQ(tree.block(unknown), nullptr);
}

TEST(BlockTree, AcceptsNonGenesisRoot) {
  // Snapshot restore re-roots the tree at the snapshot block: heights keep
  // their absolute chain values and children attach exactly as before.
  const auto genesis = std::make_shared<const Block>(Block::genesis());
  const auto root = make_block(genesis, 1, 1);
  BlockTree tree{root};
  EXPECT_EQ(tree.genesis_hash(), root->id());
  EXPECT_EQ(tree.height(root->id()), 1u);
  EXPECT_EQ(tree.max_height(), 1u);
  const auto child = make_block(root, 2, 2);
  EXPECT_EQ(tree.insert(child), BlockTree::InsertResult::inserted);
  EXPECT_EQ(tree.height(child->id()), 2u);
  EXPECT_EQ(tree.max_height(), 2u);
}

TEST(BlockTree, DuplicateOrphanNotDoubleBuffered) {
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto parent = make_block(genesis, 1, 1);
  const auto child = make_block(parent, 2, 2);
  tree.insert(child);
  tree.insert(child);
  EXPECT_EQ(tree.orphan_count(), 1u);
}

TEST(BlockTree, LowestCommonAncestor) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a2", "a", 2);
  builder.add("a11", "a1", 1);
  builder.add("b", "g", 3);
  const auto& tree = builder.tree();
  EXPECT_EQ(tree.lowest_common_ancestor(builder.hash("a11"), builder.hash("a2")),
            builder.hash("a"));
  EXPECT_EQ(tree.lowest_common_ancestor(builder.hash("a11"), builder.hash("b")),
            tree.genesis_hash());
  // One argument an ancestor of the other, and the degenerate self case.
  EXPECT_EQ(tree.lowest_common_ancestor(builder.hash("a"), builder.hash("a11")),
            builder.hash("a"));
  EXPECT_EQ(tree.lowest_common_ancestor(builder.hash("a2"), builder.hash("a2")),
            builder.hash("a2"));
}

TEST(BlockTree, SubtreeMaxHeight) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a11", "a1", 1);
  builder.add("b", "g", 3);
  const auto& tree = builder.tree();
  EXPECT_EQ(tree.subtree_max_height(tree.genesis_hash()), 3u);
  EXPECT_EQ(tree.subtree_max_height(builder.hash("a")), 3u);
  EXPECT_EQ(tree.subtree_max_height(builder.hash("b")), 1u);
}

TEST(BlockTree, ProducerCountsOutParamMatchesAllocatingOverload) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  builder.add("a2", "a", 1);
  const auto& tree = builder.tree();
  std::vector<std::uint64_t> reused{99, 99};  // stale contents must be reset
  tree.subtree_producer_counts(builder.hash("a"), 4, reused);
  EXPECT_EQ(reused, tree.subtree_producer_counts(builder.hash("a"), 4));
}

TEST(BlockTree, OrphanAdoptionUpdatesAggregates) {
  // c and b arrive before their parent a; the batch insert of a must leave
  // every ancestor's aggregates as if arrival had been in order.
  BlockTree tree;
  const auto genesis = tree.block(tree.genesis_hash());
  const auto a = make_block(genesis, 1, 1);
  const auto b = make_block(a, 2, 2);
  const auto c = make_block(b, 1, 3);
  tree.insert(c);
  tree.insert(b);
  EXPECT_EQ(tree.subtree_size(tree.genesis_hash()), 1u);
  tree.insert(a);
  EXPECT_EQ(tree.subtree_size(tree.genesis_hash()), 4u);
  EXPECT_EQ(tree.subtree_size(a->id()), 3u);
  EXPECT_EQ(tree.subtree_max_height(tree.genesis_hash()), 3u);
  EXPECT_EQ(tree.subtree_producer_counts(tree.genesis_hash(), 3),
            (std::vector<std::uint64_t>{0, 2, 1}));
}

TEST(BlockTree, EqualityVarianceSurvivesNodeCountSwitch) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("a1", "a", 1);
  const auto& tree = builder.tree();
  const auto root = tree.genesis_hash();
  const double v4 = tree.subtree_equality_variance(root, 4);
  // Switching n_nodes flushes the cached statistics; switching back must
  // reproduce the original value exactly.
  const double v8 = tree.subtree_equality_variance(root, 8);
  EXPECT_NE(v4, v8);
  EXPECT_EQ(tree.subtree_equality_variance(root, 4), v4);
  // Cache stays correct across further inserts after the flush.
  builder.add("a2", "a", 1);
  const std::vector<std::uint64_t> counts =
      tree.subtree_producer_counts(root, 4);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(tree.subtree_equality_variance(root, 4),
            frequency_variance(counts, static_cast<double>(total)));
}

TEST(BlockTree, AggregateFloorIsMonotone) {
  BlockTree tree;
  EXPECT_EQ(tree.aggregate_floor(), 0u);
  tree.set_aggregate_floor(5);
  tree.set_aggregate_floor(3);  // ignored: the floor never moves down
  EXPECT_EQ(tree.aggregate_floor(), 5u);
  tree.set_aggregate_floor(9);
  EXPECT_EQ(tree.aggregate_floor(), 9u);
}

TEST(BlockTree, QueriesBelowFloorStayExact) {
  TreeBuilder builder;
  builder.add("a", "g", 0);
  builder.add("b", "a", 1);
  builder.add("c", "b", 2);
  builder.add("d", "c", 0);
  builder.add("b2", "a", 1);  // fork below the future floor
  auto& tree = builder.tree();
  tree.set_aggregate_floor(3);
  // Inserts after the floor no longer maintain sub-floor entries...
  builder.add("e", "d", 1);
  builder.add("c2", "b", 2);  // attaches BELOW the floor
  // ...but queries anywhere must still see the true subtree.
  EXPECT_EQ(tree.subtree_size(tree.genesis_hash()), 8u);
  EXPECT_EQ(tree.subtree_size(builder.hash("a")), 7u);
  EXPECT_EQ(tree.subtree_size(builder.hash("b")), 5u);
  EXPECT_EQ(tree.subtree_max_height(builder.hash("b")), 5u);
  EXPECT_EQ(tree.subtree_max_height(builder.hash("b2")), 2u);
  // At/above the floor the hot path answers, also exactly.
  EXPECT_EQ(tree.subtree_size(builder.hash("c")), 3u);
  EXPECT_EQ(tree.subtree_max_height(builder.hash("c")), 5u);
  // Producer counts and Eq. 1 variance agree across the floor boundary.
  const auto counts = tree.subtree_producer_counts(builder.hash("a"), 3);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{2, 3, 2}));
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(tree.subtree_equality_variance(builder.hash("a"), 3),
            frequency_variance(counts, static_cast<double>(total)));
}

}  // namespace
}  // namespace themis::ledger
