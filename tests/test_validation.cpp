#include "ledger/validation.h"

#include <gtest/gtest.h>

#include "common/uint256.h"
#include "consensus/miner.h"
#include "crypto/merkle.h"

namespace themis::ledger {
namespace {

// A fully honest block: low difficulty, really mined, really signed.
struct Fixture {
  Fixture() {
    keypair.emplace(crypto::Keypair::from_node_id(7));
    header.height = 1;
    header.prev = Block::genesis().id();
    header.producer = 7;
    header.difficulty = 4.0;
    txs = {Transaction(1, 1, 0, bytes_of("a")), Transaction(2, 2, 0, bytes_of("b"))};
    header.tx_count = 2;
    std::vector<Hash32> leaves{txs[0].id(), txs[1].id()};
    header.merkle_root = crypto::merkle_root(leaves);
    const auto mined = consensus::RealMiner::mine(header, 0, 1'000'000);
    header = mined.value();
    const crypto::Signature sig = keypair->sign(header.hash());
    block = std::make_shared<const Block>(header, sig, txs);
  }

  ValidationContext context() const {
    ValidationContext ctx;
    ctx.public_key = [this](NodeId id) -> std::optional<crypto::PublicKey> {
      if (id == 7) return keypair->public_key();
      return std::nullopt;
    };
    ctx.expected_difficulty = [](NodeId, const BlockHash&) {
      return std::optional<double>(4.0);
    };
    ctx.parent_height = [](const BlockHash& prev) -> std::optional<std::uint64_t> {
      if (prev == Block::genesis().id()) return 0;
      return std::nullopt;
    };
    return ctx;
  }

  std::optional<crypto::Keypair> keypair;
  BlockHeader header;
  std::vector<Transaction> txs;
  BlockPtr block;
};

TEST(Validation, HonestBlockPasses) {
  Fixture f;
  EXPECT_EQ(validate_block(*f.block, f.context()), BlockCheck::ok);
}

TEST(Validation, UnknownProducerRejected) {
  Fixture f;
  BlockHeader h = f.header;
  h.producer = 8;  // not in the registry
  const Block bad(h, f.block->signature(), f.txs);
  EXPECT_EQ(validate_block(bad, f.context()), BlockCheck::unknown_producer);
}

TEST(Validation, BadSignatureRejected) {
  Fixture f;
  crypto::Signature sig = f.block->signature();
  sig.s[10] ^= 1;
  const Block bad(f.header, sig, f.txs);
  EXPECT_EQ(validate_block(bad, f.context()), BlockCheck::bad_signature);
}

TEST(Validation, SignatureFromWrongKeyRejected) {
  Fixture f;
  const auto other = crypto::Keypair::from_node_id(8);
  const Block bad(f.header, other.sign(f.header.hash()), f.txs);
  EXPECT_EQ(validate_block(bad, f.context()), BlockCheck::bad_signature);
}

TEST(Validation, WrongDifficultyRejected) {
  Fixture f;
  auto ctx = f.context();
  ctx.expected_difficulty = [](NodeId, const BlockHash&) {
    return std::optional<double>(8.0);  // table disagrees with the claim
  };
  EXPECT_EQ(validate_block(*f.block, ctx), BlockCheck::wrong_difficulty);
}

TEST(Validation, UnknownDifficultyRejected) {
  Fixture f;
  auto ctx = f.context();
  ctx.expected_difficulty = [](NodeId, const BlockHash&) {
    return std::optional<double>();
  };
  EXPECT_EQ(validate_block(*f.block, ctx), BlockCheck::wrong_difficulty);
}

TEST(Validation, PowNotSatisfiedRejected) {
  Fixture f;
  BlockHeader h = f.header;
  h.difficulty = 1e15;  // target far below any found hash
  const auto ctx = [&] {
    auto c = f.context();
    c.expected_difficulty = [](NodeId, const BlockHash&) {
      return std::optional<double>(1e15);
    };
    c.check_signature = false;
    return c;
  }();
  const Block bad(h, crypto::Signature{}, f.txs);
  EXPECT_EQ(validate_block(bad, ctx), BlockCheck::pow_not_satisfied);
}

TEST(Validation, SubUnityDifficultyRejected) {
  Fixture f;
  BlockHeader h = f.header;
  h.difficulty = 0.5;
  auto ctx = f.context();
  ctx.check_signature = false;
  ctx.expected_difficulty = [](NodeId, const BlockHash&) {
    return std::optional<double>(0.5);
  };
  const Block bad(h, crypto::Signature{}, f.txs);
  EXPECT_EQ(validate_block(bad, ctx), BlockCheck::wrong_difficulty);
}

TEST(Validation, BadHeightRejected) {
  Fixture f;
  BlockHeader h = f.header;
  h.height = 3;  // parent is at height 0
  auto ctx = f.context();
  ctx.check_signature = false;
  ctx.check_pow = false;
  const Block bad(h, crypto::Signature{}, f.txs);
  EXPECT_EQ(validate_block(bad, ctx), BlockCheck::bad_height);
}

TEST(Validation, BadMerkleRootRejected) {
  Fixture f;
  BlockHeader h = f.header;
  h.merkle_root[0] ^= 1;
  auto ctx = f.context();
  ctx.check_signature = false;
  ctx.check_pow = false;
  const Block bad(h, crypto::Signature{}, f.txs);
  EXPECT_EQ(validate_block(bad, ctx), BlockCheck::bad_merkle_root);
}

TEST(Validation, TxCountMismatchRejected) {
  Fixture f;
  BlockHeader h = f.header;
  h.tx_count = 5;
  auto ctx = f.context();
  ctx.check_signature = false;
  ctx.check_pow = false;
  const Block bad(h, crypto::Signature{}, f.txs);
  EXPECT_EQ(validate_block(bad, ctx), BlockCheck::bad_transaction);
}

TEST(Validation, DuplicateTransactionRejected) {
  Fixture f;
  auto txs = f.txs;
  txs[1] = txs[0];
  BlockHeader h = f.header;
  std::vector<Hash32> leaves{txs[0].id(), txs[1].id()};
  h.merkle_root = crypto::merkle_root(leaves);
  auto ctx = f.context();
  ctx.check_signature = false;
  ctx.check_pow = false;
  const Block bad(h, crypto::Signature{}, txs);
  EXPECT_EQ(validate_block(bad, ctx), BlockCheck::bad_transaction);
}

TEST(Validation, BodyChecksSkippableForMetadataBlocks) {
  Fixture f;
  BlockHeader h = f.header;
  h.tx_count = 4096;  // declared-size-only block, no body attached
  auto ctx = f.context();
  ctx.check_signature = false;
  ctx.check_pow = false;
  ctx.check_body = false;
  const Block metadata_only(h, crypto::Signature{}, {});
  EXPECT_EQ(validate_block(metadata_only, ctx), BlockCheck::ok);
}

TEST(Validation, ChecksCanBeDisabledIndividually) {
  Fixture f;
  ValidationContext ctx;  // no callbacks, no checks
  ctx.check_signature = false;
  ctx.check_pow = false;
  ctx.check_body = false;
  EXPECT_EQ(validate_block(*f.block, ctx), BlockCheck::ok);
}

TEST(Validation, ToStringCoversAllChecks) {
  EXPECT_EQ(to_string(BlockCheck::ok), "ok");
  EXPECT_EQ(to_string(BlockCheck::bad_signature), "bad_signature");
  EXPECT_EQ(to_string(BlockCheck::pow_not_satisfied), "pow_not_satisfied");
}

TEST(Validation, TransactionSanity) {
  EXPECT_TRUE(validate_transaction(Transaction(0, 0, 0, {})));
}

}  // namespace
}  // namespace themis::ledger
