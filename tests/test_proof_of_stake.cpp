// §VI-E: the Proof-of-Stake instantiation of the Themis election mechanism.
#include "core/proof_of_stake.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "consensus/node.h"
#include "core/geost.h"
#include "metrics/equality.h"
#include "net/gossip.h"
#include "tree_builder.h"

namespace themis::core {
namespace {

TEST(StakeDifficulty, DifficultyInverselyProportionalToStake) {
  test::TreeBuilder b;
  StakeDifficulty pos({100, 50, 25, 25}, 1000.0);
  const double d0 =
      pos.difficulty_for(b.tree(), b.tree().genesis_hash(), 0);
  const double d1 =
      pos.difficulty_for(b.tree(), b.tree().genesis_hash(), 1);
  EXPECT_DOUBLE_EQ(d0 * 2.0, d1);  // twice the stake, half the difficulty
}

TEST(StakeDifficulty, ProbabilitiesAreStakeShares) {
  StakeDifficulty pos({60, 30, 10}, 1000.0);
  const auto p = pos.probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.6);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
  EXPECT_DOUBLE_EQ(p[2], 0.1);
}

TEST(StakeDifficulty, UnpredictabilityAsBadAsStakeConcentration) {
  // Plain PoS inherits the concentration problem the paper describes.
  StakeDifficulty concentrated({1000, 1, 1, 1}, 1000.0);
  StakeDifficulty equal({1, 1, 1, 1}, 1000.0);
  EXPECT_GT(metrics::probability_variance(concentrated.probabilities()),
            metrics::probability_variance(equal.probabilities()));
  EXPECT_DOUBLE_EQ(metrics::probability_variance(equal.probabilities()), 0.0);
}

TEST(StakeDifficulty, RejectsBadInputs) {
  EXPECT_THROW(StakeDifficulty({}, 100.0), PreconditionError);
  EXPECT_THROW(StakeDifficulty({1, -1}, 100.0), PreconditionError);
  EXPECT_THROW(StakeDifficulty({1, 1}, 0.5), PreconditionError);
  test::TreeBuilder b;
  StakeDifficulty pos({1, 1}, 100.0);
  EXPECT_THROW(pos.difficulty_for(b.tree(), b.tree().genesis_hash(), 2),
               PreconditionError);
}

TEST(StakeDifficulty, DifficultyFloorsAtOne) {
  StakeDifficulty pos({1000000, 1}, 2.0);
  test::TreeBuilder b;
  EXPECT_GE(pos.difficulty_for(b.tree(), b.tree().genesis_hash(), 0), 1.0);
}

AdaptiveConfig pos_config() {
  AdaptiveConfig cfg;
  cfg.n_nodes = 4;
  cfg.delta = 8;
  cfg.expected_interval_s = 2.0;
  cfg.h0 = 1.0;
  cfg.enable_retarget = false;
  return cfg;
}

TEST(ThemisStake, EpochZeroBehavesLikePlainPos) {
  test::TreeBuilder b;
  ThemisStakeDifficulty pos({80, 10, 5, 5}, pos_config());
  // At epoch 0 every multiple is 1, so the election rate (uniform kernel
  // scanning divided by difficulty) is proportional to stake — the plain-PoS
  // starting point that the multiples then renormalize.
  const auto g = b.tree().genesis_hash();
  const double r0 = 1.0 / pos.difficulty_for(b.tree(), g, 0);
  const double r1 = 1.0 / pos.difficulty_for(b.tree(), g, 1);
  EXPECT_NEAR(r0 / r1, 8.0, 1e-9);  // 80 vs 10 stake
}

TEST(ThemisStake, ProbabilitiesEqualizeAtGenesis) {
  test::TreeBuilder b;
  ThemisStakeDifficulty pos({80, 10, 5, 5}, pos_config());
  // rate_i ∝ stake_i / m_i with m = 1 -> probabilities are stake shares at
  // the *mechanism* level, but difficulty_for cancels them; probabilities()
  // reports the residual election bias, which is the raw stake at epoch 0...
  const auto p = pos.probabilities(b.tree(), b.tree().genesis_hash());
  EXPECT_DOUBLE_EQ(p[0], 0.8);
}

TEST(ThemisStake, MultiplesRenormalizeAWinningStaker) {
  test::TreeBuilder b;
  ThemisStakeDifficulty pos({80, 10, 5, 5}, pos_config());
  // Node 0 wins every block of epoch 0 (as its stake edge would predict
  // before the difficulty cancels it).
  std::string parent = "g";
  for (int i = 0; i < 8; ++i) {
    const std::string name = "s" + std::to_string(i);
    b.add(name, parent, 0);
    parent = name;
  }
  // Epoch 1: node 0's multiple is 4x, so its effective probability drops.
  const auto p = pos.probabilities(b.tree(), b.hash(parent));
  EXPECT_LT(p[0], 0.8);
  const auto d_epoch1 = pos.difficulty_for(b.tree(), b.hash(parent), 0);
  const auto d_epoch0 = pos.difficulty_for(b.tree(), b.tree().genesis_hash(), 0);
  EXPECT_GT(d_epoch1, d_epoch0);
}

TEST(ThemisStake, StakeVectorMustMatchNodeCount) {
  EXPECT_THROW(ThemisStakeDifficulty({1, 1}, pos_config()), PreconditionError);
}

TEST(ThemisStake, RunsARealNetworkAndEqualizesFrequency) {
  // End to end: 4 nodes with a 16:1 stake spread mine under ThemisStake;
  // block frequencies equalize the way Fig. 4 shows for computing power.
  net::Simulation sim;
  net::GossipNetwork network(
      sim, net::LinkConfig{20e6, SimTime::millis(100)}, 4, 2, 77);
  const std::vector<double> stakes{160, 20, 10, 10};

  AdaptiveConfig cfg = pos_config();
  cfg.enable_retarget = true;
  std::vector<std::unique_ptr<consensus::PowNode>> nodes;
  for (ledger::NodeId i = 0; i < 4; ++i) {
    consensus::NodeConfig nc;
    nc.id = i;
    nc.n_nodes = 4;
    // Stake scanning is uniform: every node checks one kernel per second;
    // the stake advantage lives entirely in the difficulty policy's target.
    nc.hash_rate = 1.0;
    nc.rng_seed = 7000 + i;
    nodes.push_back(std::make_unique<consensus::PowNode>(
        sim, network, nc, std::make_shared<GeostRule>(4),
        std::make_shared<ThemisStakeDifficulty>(stakes, cfg)));
  }
  for (auto& n : nodes) n->start();
  sim.run_until(SimTime::seconds(3000.0));

  const auto chain = nodes[0]->main_chain();
  ASSERT_GT(chain.size(), 64u);
  // Frequencies over the last half of the chain.
  std::vector<ledger::NodeId> producers;
  for (std::size_t i = chain.size() / 2; i < chain.size(); ++i) {
    producers.push_back(nodes[0]->tree().block(chain[i])->producer());
  }
  const auto counts = metrics::producer_counts(producers, 4);
  // The richest staker must NOT dominate: every node lands blocks.
  for (int i = 0; i < 4; ++i) EXPECT_GT(counts[i], 0u) << "node " << i;
  const double share0 = static_cast<double>(counts[0]) /
                        static_cast<double>(producers.size());
  EXPECT_LT(share0, 0.55);  // far below its 80 % stake share
}

}  // namespace
}  // namespace themis::core
