#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace themis::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      to_hex(hmac_sha256(bytes_of("Jefe"),
                         bytes_of("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  Bytes key;
  for (std::uint8_t b = 0x01; b <= 0x19; ++b) key.push_back(b);
  const Bytes data(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes msg = bytes_of("m");
  EXPECT_NE(hmac_sha256(bytes_of("k1"), msg), hmac_sha256(bytes_of("k2"), msg));
}

TEST(Hmac, EmptyKeyAndMessageDefined) {
  EXPECT_EQ(to_hex(hmac_sha256(Bytes{}, Bytes{})),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

TEST(HmacExpand, ProducesRequestedLength) {
  const Bytes out = hmac_expand(bytes_of("key"), bytes_of("info"), 3);
  EXPECT_EQ(out.size(), 96u);
}

TEST(HmacExpand, BlocksAreDistinct) {
  const Bytes out = hmac_expand(bytes_of("key"), bytes_of("info"), 2);
  const Bytes first(out.begin(), out.begin() + 32);
  const Bytes second(out.begin() + 32, out.end());
  EXPECT_NE(first, second);
}

TEST(HmacExpand, DeterministicAndInfoSensitive) {
  EXPECT_EQ(hmac_expand(bytes_of("k"), bytes_of("a"), 2),
            hmac_expand(bytes_of("k"), bytes_of("a"), 2));
  EXPECT_NE(hmac_expand(bytes_of("k"), bytes_of("a"), 1),
            hmac_expand(bytes_of("k"), bytes_of("b"), 1));
}

}  // namespace
}  // namespace themis::crypto
