// PBFT protocol corner cases beyond the happy path.
#include <gtest/gtest.h>

#include "pbft/cluster.h"

namespace themis::pbft {
namespace {

net::LinkConfig paper_link() {
  return net::LinkConfig{.bandwidth_bps = 20e6, .min_delay = SimTime::millis(100)};
}

PbftConfig fast_config(std::size_t n) {
  PbftConfig c;
  c.n_nodes = n;
  c.batch_size = 50;
  c.base_timeout = SimTime::seconds(3.0);
  c.verify_delay = SimTime::micros(100);
  c.exec_delay_per_tx = SimTime::micros(20);
  return c;
}

struct Env {
  Env(std::size_t n, PbftConfig cfg)
      : network(sim, paper_link(), n, 2, 13), cluster(sim, network, cfg) {}
  explicit Env(std::size_t n) : Env(n, fast_config(n)) {}

  net::Simulation sim;
  net::GossipNetwork network;
  PbftCluster cluster;
};

TEST(PbftExtra, LaggardCatchesUpViaCommitCertificates) {
  Env env(4);
  // Replica 3 receives nothing for a while (all traffic *to* it dropped),
  // then the partition heals.
  bool partitioned = true;
  env.network.set_drop_filter(
      [&partitioned](net::PeerId, net::PeerId to, const net::Message&) {
        return partitioned && to == 3;
      });
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(60.0));
  EXPECT_EQ(env.cluster.replica(3).committed_seq(), 0u);
  const auto others = env.cluster.max_committed_seq();
  EXPECT_GT(others, 3u);  // quorum 3 of 4 progressed without it

  partitioned = false;
  env.sim.run_until(SimTime::seconds(130.0));
  // Healed: the laggard adopts decided sequences from commit certificates.
  EXPECT_GT(env.cluster.replica(3).committed_seq(), others);
}

TEST(PbftExtra, ConsecutiveSuppressedLeadersEscalateViews) {
  // Suppressing replicas 1..3 makes several successive leaders fail for one
  // sequence; the view number must climb past all of them and then commit.
  Env env(7);
  env.cluster.replica(1).set_suppressed(true);
  env.cluster.replica(2).set_suppressed(true);
  env.cluster.replica(3).set_suppressed(true);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(250.0));
  EXPECT_GT(env.cluster.max_committed_seq(), 0u);
  EXPECT_GT(env.cluster.total_view_changes(), 0u);
  // The first committed sequence was proposed by a healthy leader.
  const auto& producers = env.cluster.replica(0).committed_producers();
  ASSERT_FALSE(producers.empty());
  const auto first_producer = producers.begin()->second;
  EXPECT_TRUE(first_producer == 0 || first_producer > 3);
}

TEST(PbftExtra, RotationContinuesAcrossViews) {
  Env env(5);
  env.cluster.replica(1).set_suppressed(true);  // leader of seq 1 in view 0
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(200.0));
  const auto& producers = env.cluster.replica(0).committed_producers();
  ASSERT_GT(producers.size(), 5u);
  // The suppressed replica never produces; others all do eventually.
  std::set<ledger::NodeId> seen;
  for (const auto& [seq, producer] : producers) {
    EXPECT_NE(producer, 1u);
    seen.insert(producer);
  }
  EXPECT_GE(seen.size(), 4u);
}

TEST(PbftExtra, QuorumScalesWithN) {
  for (const std::size_t n : {4u, 7u, 10u, 13u, 100u}) {
    Env env(n);
    const auto f = env.cluster.replica(0).fault_bound();
    const auto q = env.cluster.replica(0).quorum();
    EXPECT_EQ(f, (n - 1) / 3);
    EXPECT_EQ(q, 2 * f + 1);
    // Two quorums always intersect in at least one honest replica.
    EXPECT_GT(2 * q, n + f);
  }
}

TEST(PbftExtra, NoProgressWithoutQuorumOfSenders) {
  // Drop everything from f+1 replicas: prepares can't reach 2f+1.
  Env env(7);  // f = 2, quorum 5
  env.network.set_drop_filter(
      [](net::PeerId from, net::PeerId, const net::Message&) {
        return from >= 4;  // 3 silent replicas > f
      });
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(150.0));
  EXPECT_EQ(env.cluster.max_committed_seq(), 0u);
}

TEST(PbftExtra, ThroughputScalesWithBatchSize) {
  PbftConfig small = fast_config(4);
  small.batch_size = 10;
  Env a(4, small);
  a.cluster.start();
  a.sim.run_until(SimTime::seconds(60.0));

  PbftConfig big = fast_config(4);
  big.batch_size = 1000;
  Env b(4, big);
  b.cluster.start();
  b.sim.run_until(SimTime::seconds(60.0));

  EXPECT_GT(b.cluster.max_committed_txs(), a.cluster.max_committed_txs());
}

TEST(PbftExtra, ViewChangesRecordedPerReplica) {
  Env env(4);
  env.cluster.replica(1).set_suppressed(true);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(100.0));
  // Every replica observed the same view transitions (within one).
  const auto v0 = env.cluster.replica(0).view();
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(env.cluster.replica(i).view()),
                static_cast<double>(v0), 1.0);
  }
}

}  // namespace
}  // namespace themis::pbft
