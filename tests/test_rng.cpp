#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/stats.h"

namespace themis {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(6);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextRangeEmptyThrows) {
  Rng rng(11);
  EXPECT_THROW(rng.next_range(3, 2), PreconditionError);
}

class RngExponential : public ::testing::TestWithParam<double> {};

TEST_P(RngExponential, MeanMatchesRate) {
  const double rate = GetParam();
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_exponential(rate));
  EXPECT_NEAR(stats.mean() * rate, 1.0, 0.02) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, RngExponential,
                         ::testing::Values(0.1, 1.0, 4.0, 250.0));

TEST(Rng, ExponentialRejectsBadRate) {
  Rng rng(13);
  EXPECT_THROW(rng.next_exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.next_exponential(-1.0), PreconditionError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(15);
  EXPECT_FALSE(rng.next_bernoulli(0.0));
  EXPECT_TRUE(rng.next_bernoulli(1.0));
  EXPECT_THROW(rng.next_bernoulli(1.5), PreconditionError);
}

TEST(Rng, GaussianMoments) {
  Rng rng(16);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleChangesOrder) {
  Rng rng(18);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(19);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(19);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Splitmix, KnownSequenceDeterminism) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace themis
