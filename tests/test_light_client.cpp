#include "ledger/light_client.h"

#include <gtest/gtest.h>

#include "consensus/miner.h"
#include "crypto/merkle.h"

namespace themis::ledger {
namespace {

/// Really mine a header at low difficulty so the light client's PoW check is
/// exercised genuinely.
BlockHeader mined_header(const BlockHash& prev, std::uint64_t height,
                         double difficulty, const Hash32& merkle_root = {},
                         std::uint64_t salt = 0) {
  BlockHeader h;
  h.height = height;
  h.prev = prev;
  h.producer = static_cast<NodeId>(height % 5);
  h.difficulty = difficulty;
  h.merkle_root = merkle_root;
  h.timestamp_nanos = static_cast<std::int64_t>(height * 1000 + salt);
  return consensus::RealMiner::mine(h, 0, 1u << 22).value();
}

TEST(HeaderChain, StartsAtGenesis) {
  HeaderChain chain;
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain.best_height(), 0u);
  EXPECT_EQ(chain.best_tip(), Block::genesis().id());
}

TEST(HeaderChain, AcceptsMinedHeaders) {
  HeaderChain chain;
  const auto h1 = mined_header(Block::genesis().id(), 1, 4.0);
  EXPECT_EQ(chain.submit(h1), HeaderChain::AcceptResult::accepted);
  EXPECT_EQ(chain.best_height(), 1u);
  const auto h2 = mined_header(h1.hash(), 2, 4.0);
  EXPECT_EQ(chain.submit(h2), HeaderChain::AcceptResult::accepted);
  EXPECT_EQ(chain.best_height(), 2u);
  EXPECT_EQ(chain.best_chain().size(), 3u);
}

TEST(HeaderChain, RejectsDuplicates) {
  HeaderChain chain;
  const auto h1 = mined_header(Block::genesis().id(), 1, 2.0);
  chain.submit(h1);
  EXPECT_EQ(chain.submit(h1), HeaderChain::AcceptResult::duplicate);
}

TEST(HeaderChain, RejectsUnknownParent) {
  HeaderChain chain;
  BlockHash unknown{};
  unknown[5] = 9;
  EXPECT_EQ(chain.submit(mined_header(unknown, 1, 2.0)),
            HeaderChain::AcceptResult::unknown_parent);
}

TEST(HeaderChain, RejectsBadHeight) {
  HeaderChain chain;
  EXPECT_EQ(chain.submit(mined_header(Block::genesis().id(), 5, 2.0)),
            HeaderChain::AcceptResult::bad_height);
}

TEST(HeaderChain, RejectsFakePow) {
  HeaderChain chain;
  BlockHeader forged;
  forged.height = 1;
  forged.prev = Block::genesis().id();
  forged.difficulty = 1e12;  // claims enormous work it did not do
  forged.nonce = 12345;
  EXPECT_EQ(chain.submit(forged), HeaderChain::AcceptResult::bad_pow);
}

TEST(HeaderChain, DifficultyFloorRejectsSpam) {
  HeaderChain chain;
  chain.set_difficulty_floor(100.0);
  // Difficulty 2 mines instantly but sits below the floor.
  EXPECT_EQ(chain.submit(mined_header(Block::genesis().id(), 1, 2.0)),
            HeaderChain::AcceptResult::bad_pow);
}

TEST(HeaderChain, FollowsMostWorkNotMostBlocks) {
  HeaderChain chain;
  // Branch A: two light headers (work 2+2).  Branch B: one heavy header
  // (work 32): most-work wins despite being shorter.
  const auto a1 = mined_header(Block::genesis().id(), 1, 2.0, {}, 1);
  const auto a2 = mined_header(a1.hash(), 2, 2.0, {}, 2);
  const auto b1 = mined_header(Block::genesis().id(), 1, 32.0, {}, 3);
  chain.submit(a1);
  chain.submit(a2);
  EXPECT_EQ(chain.best_tip(), a2.hash());
  chain.submit(b1);
  EXPECT_EQ(chain.best_tip(), b1.hash());
  EXPECT_DOUBLE_EQ(chain.best_total_work(), 32.0);
}

TEST(HeaderChain, HeaderLookup) {
  HeaderChain chain;
  const auto h1 = mined_header(Block::genesis().id(), 1, 2.0);
  chain.submit(h1);
  const auto fetched = chain.header(h1.hash());
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, h1);
  EXPECT_FALSE(chain.header(BlockHash{}).has_value());
}

TEST(HeaderChain, SpvInclusionProof) {
  // A block with four transactions; the light client holds only the header.
  std::vector<Transaction> txs;
  std::vector<Hash32> leaves;
  for (std::uint64_t i = 0; i < 4; ++i) {
    txs.emplace_back(1, i + 1, 0, bytes_of("tx" + std::to_string(i)));
    leaves.push_back(txs.back().id());
  }
  const Hash32 root = crypto::merkle_root(leaves);
  const auto header = mined_header(Block::genesis().id(), 1, 2.0, root);

  HeaderChain chain;
  ASSERT_EQ(chain.submit(header), HeaderChain::AcceptResult::accepted);

  const auto proof = crypto::merkle_prove(leaves, 2);
  EXPECT_TRUE(chain.verify_inclusion(header.hash(), txs[2].id(), proof));
  // Wrong transaction, wrong proof and unknown block all fail.
  EXPECT_FALSE(chain.verify_inclusion(header.hash(), txs[0].id(), proof));
  auto tampered = proof;
  tampered[0].sibling[0] ^= 1;
  EXPECT_FALSE(chain.verify_inclusion(header.hash(), txs[2].id(), tampered));
  EXPECT_FALSE(chain.verify_inclusion(BlockHash{}, txs[2].id(), proof));
}

TEST(HeaderChain, SyncsFromAFullNodeChain) {
  // End to end: mine a short real chain, feed only the headers.
  HeaderChain light;
  BlockHash prev = Block::genesis().id();
  for (std::uint64_t h = 1; h <= 10; ++h) {
    const auto header = mined_header(prev, h, 4.0);
    ASSERT_EQ(light.submit(header), HeaderChain::AcceptResult::accepted);
    prev = header.hash();
  }
  EXPECT_EQ(light.best_height(), 10u);
  EXPECT_DOUBLE_EQ(light.best_total_work(), 40.0);
  EXPECT_EQ(light.best_chain().front(), Block::genesis().id());
  EXPECT_EQ(light.best_chain().back(), prev);
}

}  // namespace
}  // namespace themis::ledger
