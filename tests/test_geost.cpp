#include "core/geost.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "consensus/forkchoice.h"
#include "tree_builder.h"

namespace themis::core {
namespace {

using test::TreeBuilder;

TEST(SubtreeEquality, SingleBlockVariance) {
  TreeBuilder b;
  b.add("a", "g", 2);
  // Counts over 4 nodes: {0, 0, 1, 0}/1 -> variance of {0,0,1,0}.
  const double expected = variance(std::vector<double>{0, 0, 1, 0});
  EXPECT_DOUBLE_EQ(subtree_equality_variance(b.tree(), b.hash("a"), 4), expected);
}

TEST(SubtreeEquality, PerfectlyEqualSubtreeIsZero) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  b.add("c", "b", 2);
  EXPECT_DOUBLE_EQ(subtree_equality_variance(b.tree(), b.hash("a"), 3), 0.0);
}

TEST(SubtreeEquality, ConcentratedProducerHasHigherVariance) {
  TreeBuilder one_producer;
  one_producer.add("a", "g", 0);
  one_producer.add("b", "a", 0);
  one_producer.add("c", "b", 0);

  TreeBuilder spread;
  spread.add("a", "g", 0);
  spread.add("b", "a", 1);
  spread.add("c", "b", 2);

  EXPECT_GT(subtree_equality_variance(one_producer.tree(),
                                      one_producer.hash("a"), 6),
            subtree_equality_variance(spread.tree(), spread.hash("a"), 6));
}

TEST(SubtreeEquality, GenesisOnlyIsZero) {
  TreeBuilder b;
  EXPECT_DOUBLE_EQ(
      subtree_equality_variance(b.tree(), b.tree().genesis_hash(), 4), 0.0);
}

TEST(GeostPriority, OrderingRules) {
  GeostRule::Priority heavy{.weight = 3, .equality_variance = 0.5, .receipt_seq = 9};
  GeostRule::Priority light{.weight = 2, .equality_variance = 0.0, .receipt_seq = 1};
  EXPECT_TRUE(heavy.preferred_over(light));   // weight dominates
  EXPECT_FALSE(light.preferred_over(heavy));

  GeostRule::Priority equal_w_low_var{.weight = 3, .equality_variance = 0.1,
                                      .receipt_seq = 9};
  GeostRule::Priority equal_w_high_var{.weight = 3, .equality_variance = 0.4,
                                       .receipt_seq = 1};
  EXPECT_TRUE(equal_w_low_var.preferred_over(equal_w_high_var));

  GeostRule::Priority early{.weight = 3, .equality_variance = 0.1, .receipt_seq = 1};
  GeostRule::Priority late{.weight = 3, .equality_variance = 0.1, .receipt_seq = 2};
  EXPECT_TRUE(early.preferred_over(late));
  EXPECT_FALSE(late.preferred_over(early));
}

TEST(Geost, FollowsSingleChain) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  GeostRule rule(4);
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("b"));
}

TEST(Geost, HeavierSubtreeStillDominates) {
  TreeBuilder b;
  b.add("h", "g", 0);
  b.add("h1", "h", 1);
  b.add("l", "g", 2);
  GeostRule rule(4);
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("h1"));
}

TEST(Geost, WeightTieBrokenByEquality) {
  TreeBuilder b;
  // Both subtrees weigh 2; "mono" is produced by one node, "duo" by two.
  b.add("mono", "g", 0);
  b.add("mono1", "mono", 0);
  b.add("duo", "g", 1);
  b.add("duo1", "duo", 2);
  GeostRule rule(4);
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("duo1"));
}

TEST(Geost, FullTieBrokenByFirstReceived) {
  TreeBuilder b;
  // Same weight and mirrored producers -> same variance; receipt decides.
  b.add("first", "g", 0);
  b.add("second", "g", 1);
  GeostRule rule(4);
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("first"));
}

// The paper's Fig. 2: a block tree where the longest chain, GHOST's chain and
// GEOST's chain all differ, and only the longest-chain rule is displaced by a
// selfish-mining attacker.
struct Fig2 {
  Fig2() : geost(6) {
    // Honest main structure: block 1, then a three-way fork (2A, 2B, 2C).
    b.add("1", "g", 0);
    b.add("2A", "1", 1);
    b.add("2B", "1", 2);
    b.add("2C", "1", 3);
    // 2B's subtree: produced by {1, 1, 2} (concentrated -> higher variance).
    b.add("3B", "2B", 1);
    b.add("4B", "3B", 1);
    // 2C's subtree: produced by {3, 4, 0} (spread -> lower variance).
    b.add("3C", "2C", 4);
    b.add("4C", "3C", 0);
    // Attacker (node 5): a private chain from genesis, one deeper than the
    // honest chain, revealed last.
    b.add("a1", "g", 5);
    b.add("a2", "a1", 5);
    b.add("a3", "a2", 5);
    b.add("a4", "a3", 5);
    b.add("a5", "a4", 5);
  }

  TreeBuilder b;
  GeostRule geost;
  consensus::GhostRule ghost;
  consensus::LongestChainRule longest;
};

TEST(Fig2Scenario, LongestChainFallsToTheAttacker) {
  Fig2 f;
  EXPECT_EQ(f.longest.choose_head(f.b.tree(), f.b.tree().genesis_hash()),
            f.b.hash("a5"));
}

TEST(Fig2Scenario, GhostResistsAttackerButKeepsFirstReceivedBranch) {
  Fig2 f;
  const auto head = f.ghost.choose_head(f.b.tree(), f.b.tree().genesis_hash());
  // Honest subtree outweighs the attacker (8 > 5); 2B vs 2C tie on weight and
  // GHOST keeps the first-received branch.
  EXPECT_EQ(head, f.b.hash("4B"));
}

TEST(Fig2Scenario, GeostPicksTheMostEqualSubtree) {
  Fig2 f;
  // Same weights as GHOST sees, but 2C's subtree has the lower variance of
  // block-producing frequency, so GEOST finalizes 4C (the paper's outcome).
  EXPECT_EQ(f.geost.choose_head(f.b.tree(), f.b.tree().genesis_hash()),
            f.b.hash("4C"));
}

TEST(Fig2Scenario, VarianceOrderingMatchesIntuition) {
  Fig2 f;
  EXPECT_LT(subtree_equality_variance(f.b.tree(), f.b.hash("2C"), 6),
            subtree_equality_variance(f.b.tree(), f.b.hash("2B"), 6));
}

TEST(Fig2Scenario, PriorityOfExposesTheDecision) {
  Fig2 f;
  const auto pb = f.geost.priority_of(f.b.tree(), f.b.hash("2B"));
  const auto pc = f.geost.priority_of(f.b.tree(), f.b.hash("2C"));
  EXPECT_EQ(pb.weight, 3u);
  EXPECT_EQ(pc.weight, 3u);
  EXPECT_TRUE(pc.preferred_over(pb));
}

TEST(Geost, NameIsStable) { EXPECT_EQ(GeostRule(4).name(), "geost"); }

TEST(Geost, MoreEqualBranchWinsEvenWhenReceivedLater) {
  TreeBuilder b;
  // The concentrated branch arrives first; equality still beats receipt.
  b.add("late_is_equal", "g", 0);
  b.add("x1", "late_is_equal", 0);  // same producer twice
  b.add("y", "g", 1);
  b.add("y1", "y", 2);  // two distinct producers
  GeostRule rule(4);
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("y1"));
}

}  // namespace
}  // namespace themis::core
