// Randomized oracle tests: the production fork-choice rules must agree with
// naive reference implementations on arbitrary block trees.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "consensus/forkchoice.h"
#include "consensus/head_tracker.h"
#include "core/geost.h"
#include "ledger/naive_aggregates.h"
#include "tree_builder.h"

namespace themis {
namespace {

using consensus::GhostRule;
using consensus::LongestChainRule;
using core::GeostRule;
using ledger::BlockHash;
using ledger::BlockTree;

constexpr std::size_t kNodes = 6;

/// Grow a random tree: each new block extends a uniformly random existing
/// block, so deep chains and bushy forks both occur.
struct RandomTree {
  RandomTree(std::uint64_t seed, int n_blocks) {
    Rng rng(seed);
    std::vector<std::string> names{"g"};
    for (int i = 0; i < n_blocks; ++i) {
      const std::string parent =
          names[rng.next_below(names.size())];
      const std::string name = "b" + std::to_string(i);
      builder.add(name, parent,
                  static_cast<ledger::NodeId>(rng.next_below(kNodes)));
      names.push_back(name);
    }
  }
  test::TreeBuilder builder;
};

// --- reference implementations (deliberately naive) -------------------------

std::uint64_t ref_subtree_size(const BlockTree& tree, const BlockHash& root) {
  std::uint64_t n = 1;
  for (const auto& child : tree.children(root)) {
    n += ref_subtree_size(tree, child);
  }
  return n;
}

std::uint64_t ref_max_depth(const BlockTree& tree, const BlockHash& root) {
  std::uint64_t best = tree.height(root);
  for (const auto& child : tree.children(root)) {
    best = std::max(best, ref_max_depth(tree, child));
  }
  return best;
}

void ref_collect_counts(const BlockTree& tree, const BlockHash& root,
                        std::map<ledger::NodeId, std::uint64_t>& counts) {
  const auto producer = tree.block(root)->producer();
  if (producer != ledger::kNoNode) ++counts[producer];
  for (const auto& child : tree.children(root)) {
    ref_collect_counts(tree, child, counts);
  }
}

double ref_equality_variance(const BlockTree& tree, const BlockHash& root) {
  std::map<ledger::NodeId, std::uint64_t> counts;
  ref_collect_counts(tree, root, counts);
  std::uint64_t total = 0;
  for (const auto& [id, c] : counts) total += c;
  if (total == 0) return 0.0;
  std::vector<double> freqs(kNodes, 0.0);
  for (const auto& [id, c] : counts) {
    freqs[id] = static_cast<double>(c) / static_cast<double>(total);
  }
  return variance(freqs);
}

BlockHash ref_ghost(const BlockTree& tree, const BlockHash& start) {
  BlockHash cur = start;
  for (;;) {
    const auto& kids = tree.children(cur);
    if (kids.empty()) return cur;
    BlockHash best = kids[0];
    for (const auto& k : kids) {
      const auto wk = ref_subtree_size(tree, k);
      const auto wb = ref_subtree_size(tree, best);
      if (wk > wb || (wk == wb && tree.receipt_seq(k) < tree.receipt_seq(best))) {
        best = k;
      }
    }
    cur = best;
  }
}

BlockHash ref_longest(const BlockTree& tree, const BlockHash& start) {
  BlockHash cur = start;
  for (;;) {
    const auto& kids = tree.children(cur);
    if (kids.empty()) return cur;
    BlockHash best = kids[0];
    for (const auto& k : kids) {
      const auto dk = ref_max_depth(tree, k);
      const auto db = ref_max_depth(tree, best);
      if (dk > db || (dk == db && tree.receipt_seq(k) < tree.receipt_seq(best))) {
        best = k;
      }
    }
    cur = best;
  }
}

BlockHash ref_geost(const BlockTree& tree, const BlockHash& start) {
  BlockHash cur = start;
  for (;;) {
    const auto& kids = tree.children(cur);
    if (kids.empty()) return cur;
    BlockHash best = kids[0];
    for (const auto& k : kids) {
      const auto wk = ref_subtree_size(tree, k);
      const auto wb = ref_subtree_size(tree, best);
      if (wk != wb) {
        if (wk > wb) best = k;
        continue;
      }
      const double vk = ref_equality_variance(tree, k);
      const double vb = ref_equality_variance(tree, best);
      if (vk != vb) {
        if (vk < vb) best = k;
        continue;
      }
      if (tree.receipt_seq(k) < tree.receipt_seq(best)) best = k;
    }
    cur = best;
  }
}

class ForkChoiceOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkChoiceOracle, GhostMatchesReference) {
  RandomTree t(GetParam(), 60);
  const auto& tree = t.builder.tree();
  EXPECT_EQ(GhostRule().choose_head(tree, tree.genesis_hash()),
            ref_ghost(tree, tree.genesis_hash()));
}

TEST_P(ForkChoiceOracle, LongestMatchesReference) {
  RandomTree t(GetParam(), 60);
  const auto& tree = t.builder.tree();
  EXPECT_EQ(LongestChainRule().choose_head(tree, tree.genesis_hash()),
            ref_longest(tree, tree.genesis_hash()));
}

TEST_P(ForkChoiceOracle, GeostMatchesReference) {
  RandomTree t(GetParam(), 60);
  const auto& tree = t.builder.tree();
  EXPECT_EQ(GeostRule(kNodes).choose_head(tree, tree.genesis_hash()),
            ref_geost(tree, tree.genesis_hash()));
}

TEST_P(ForkChoiceOracle, SubtreeStatisticsMatchReference) {
  RandomTree t(GetParam() + 1000, 40);
  const auto& tree = t.builder.tree();
  // Check every block in the tree.
  std::vector<BlockHash> stack{tree.genesis_hash()};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    EXPECT_EQ(tree.subtree_size(cur), ref_subtree_size(tree, cur));
    EXPECT_DOUBLE_EQ(core::subtree_equality_variance(tree, cur, kNodes),
                     ref_equality_variance(tree, cur));
    EXPECT_EQ(consensus::subtree_max_height(tree, cur),
              ref_max_depth(tree, cur));
    for (const auto& child : tree.children(cur)) stack.push_back(child);
  }
}

TEST_P(ForkChoiceOracle, HeadsAreLeaves) {
  RandomTree t(GetParam() + 2000, 80);
  const auto& tree = t.builder.tree();
  for (const BlockHash head :
       {GhostRule().choose_head(tree, tree.genesis_hash()),
        LongestChainRule().choose_head(tree, tree.genesis_hash()),
        GeostRule(kNodes).choose_head(tree, tree.genesis_hash())}) {
    EXPECT_TRUE(tree.children(head).empty());
  }
}

TEST_P(ForkChoiceOracle, WalkFromMidChainIsConsistent) {
  // Choosing from an ancestor of the GHOST head must yield the same head.
  RandomTree t(GetParam() + 3000, 60);
  const auto& tree = t.builder.tree();
  GhostRule ghost;
  const BlockHash head = ghost.choose_head(tree, tree.genesis_hash());
  const auto chain = tree.chain_to(head);
  for (std::size_t i = 0; i < chain.size(); i += 7) {
    EXPECT_EQ(ghost.choose_head(tree, chain[i]), head) << "start " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkChoiceOracle,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- incremental-aggregate differential tests -------------------------------
//
// The cached aggregates (ledger/blocktree.h) must be indistinguishable from
// the retained DFS oracle (ledger/naive_aggregates.h) after EVERY insert, for
// in-order, out-of-order (orphan-adopted), and forked arrival sequences.

using ledger::NaiveTreeAggregates;

/// Assert every entry's cached aggregates against the DFS oracle.
void expect_aggregates_match(const BlockTree& tree, std::size_t n_nodes) {
  std::vector<BlockHash> stack{tree.genesis_hash()};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    ASSERT_EQ(tree.subtree_size(cur),
              NaiveTreeAggregates::subtree_size(tree, cur));
    ASSERT_EQ(tree.subtree_max_height(cur),
              NaiveTreeAggregates::subtree_max_height(tree, cur));
    // Bit-identical, not just approximately equal: the fast path must never
    // change a GEOST comparison.
    const double cached = tree.subtree_equality_variance(cur, n_nodes);
    const double oracle =
        NaiveTreeAggregates::subtree_equality_variance(tree, cur, n_nodes);
    ASSERT_EQ(cached, oracle);
    ASSERT_EQ(tree.subtree_producer_counts(cur, n_nodes),
              NaiveTreeAggregates::subtree_producer_counts(tree, cur, n_nodes));
    for (const auto& child : tree.children(cur)) stack.push_back(child);
  }
}

class IncrementalAggregates : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalAggregates, MatchOracleAfterEveryInOrderInsert) {
  Rng rng(GetParam());
  test::TreeBuilder builder;
  std::vector<std::string> names{"g"};
  for (int i = 0; i < 40; ++i) {
    const std::string name = "b" + std::to_string(i);
    builder.add(name, names[rng.next_below(names.size())],
                static_cast<ledger::NodeId>(rng.next_below(kNodes)));
    names.push_back(name);
    expect_aggregates_match(builder.tree(), kNodes);
  }
}

TEST_P(IncrementalAggregates, MatchOracleUnderOrphanAdoption) {
  // Build a random tree's blocks first, then deliver them in a shuffled
  // order: most arrive before their parent and sit in the orphan buffer
  // until a whole chain attaches at once.
  Rng rng(GetParam() + 500);
  test::TreeBuilder builder;
  std::vector<std::string> names{"g"};
  std::vector<std::string> pending;
  for (int i = 0; i < 40; ++i) {
    const std::string name = "o" + std::to_string(i);
    builder.make(name, names[rng.next_below(names.size())],
                 static_cast<ledger::NodeId>(rng.next_below(kNodes)));
    names.push_back(name);
    pending.push_back(name);
  }
  // Fisher-Yates with the test rng (deterministic per seed).
  for (std::size_t i = pending.size(); i > 1; --i) {
    std::swap(pending[i - 1], pending[rng.next_below(i)]);
  }
  std::size_t inserted = 0;
  for (const std::string& name : pending) {
    const auto result = builder.insert(name);
    ASSERT_NE(result, ledger::BlockTree::InsertResult::duplicate);
    if (result == ledger::BlockTree::InsertResult::inserted) ++inserted;
    expect_aggregates_match(builder.tree(), kNodes);
  }
  // Every orphan chain must eventually have been adopted.
  EXPECT_EQ(builder.tree().size(), 41u);
  EXPECT_EQ(builder.tree().orphan_count(), 0u);
  EXPECT_LE(inserted, pending.size());
}

TEST_P(IncrementalAggregates, ColdQueriesBelowAggregateFloorStayExact) {
  // The floor freezes incremental maintenance below it; queries there must
  // still agree with the oracle (and with the pre-floor hot values).
  Rng rng(GetParam() + 900);
  test::TreeBuilder builder;
  std::vector<std::string> names{"g"};
  auto grow = [&](int count, const std::string& prefix) {
    for (int i = 0; i < count; ++i) {
      const std::string name = prefix + std::to_string(i);
      builder.add(name, names[rng.next_below(names.size())],
                  static_cast<ledger::NodeId>(rng.next_below(kNodes)));
      names.push_back(name);
    }
  };
  grow(30, "c");
  auto& tree = builder.tree();
  const std::uint64_t floor = tree.max_height() / 2;
  tree.set_aggregate_floor(floor);
  expect_aggregates_match(tree, kNodes);
  // Keep growing after the floor froze the prefix, checking as we go.
  grow(20, "d");
  expect_aggregates_match(tree, kNodes);
  // The floor is monotone: lowering attempts are ignored.
  tree.set_aggregate_floor(0);
  EXPECT_EQ(tree.aggregate_floor(), floor);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalAggregates,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- HeadTracker differential tests -----------------------------------------
//
// The tracker's head/anchor/reorg sequence must be bit-identical to the
// seed's recompute-from-anchor loop (choose_head from the anchor after every
// batch, reorg = head change that does not extend the old head, anchor
// walked down from the head by finality_depth).

struct SeedReplay {
  explicit SeedReplay(const BlockTree& tree, std::uint64_t depth)
      : finality_depth(depth),
        head(tree.genesis_hash()),
        anchor(tree.genesis_hash()) {}

  void on_tree_changed(const BlockTree& tree,
                       const consensus::ForkChoiceRule& rule) {
    const BlockHash new_head = rule.choose_head(tree, anchor);
    if (new_head == head) return;
    if (!tree.is_ancestor(head, new_head)) ++reorgs;
    head = new_head;
    const std::uint64_t head_height = tree.height(head);
    if (head_height <= finality_depth) return;
    const std::uint64_t target = head_height - finality_depth;
    if (tree.height(anchor) >= target) return;
    BlockHash cur = head;
    while (tree.height(cur) > target) cur = *tree.parent(cur);
    anchor = cur;
  }

  std::uint64_t finality_depth;
  BlockHash head;
  BlockHash anchor;
  std::uint64_t reorgs = 0;
};

class HeadTrackerDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

template <typename Rule>
void run_head_tracker_differential(std::uint64_t seed, const Rule& rule,
                                   std::uint64_t finality_depth,
                                   bool shuffled) {
  Rng rng(seed);
  test::TreeBuilder builder;
  std::vector<std::string> names{"g"};
  std::vector<std::string> arrivals;
  for (int i = 0; i < 80; ++i) {
    const std::string name = "h" + std::to_string(i);
    // Mostly chain-extending (realistic), sometimes a random fork point.
    const std::string parent = (rng.next_below(4) == 0)
                                   ? names[rng.next_below(names.size())]
                                   : names.back();
    builder.make(name, parent,
                 static_cast<ledger::NodeId>(rng.next_below(kNodes)));
    names.push_back(name);
    arrivals.push_back(name);
  }
  if (shuffled) {
    // Shuffle within a sliding window so orphan adoption occurs without the
    // whole tree arriving as one giant batch.
    for (std::size_t i = 0; i + 4 < arrivals.size(); ++i) {
      std::swap(arrivals[i], arrivals[i + rng.next_below(4)]);
    }
  }

  auto& tree = builder.tree();
  consensus::HeadTracker tracker;
  tracker.reset(tree, rule, tree.genesis_hash(), finality_depth);
  SeedReplay replay(tree, finality_depth);
  std::uint64_t tracker_reorgs = 0;
  for (const std::string& name : arrivals) {
    const auto result = builder.insert(name);
    ASSERT_NE(result, ledger::BlockTree::InsertResult::duplicate);
    if (result == ledger::BlockTree::InsertResult::orphaned) continue;
    const auto update =
        tracker.on_insert(tree, rule, builder.hash(name));
    if (update.reorg) ++tracker_reorgs;
    replay.on_tree_changed(tree, rule);
    ASSERT_EQ(tracker.head(), replay.head) << "after " << name;
    ASSERT_EQ(tracker.anchor(), replay.anchor) << "after " << name;
    ASSERT_EQ(tracker.anchor_height(), tree.height(replay.anchor));
    ASSERT_EQ(tracker.head_height(), tree.height(replay.head));
    ASSERT_EQ(tracker_reorgs, replay.reorgs) << "after " << name;
  }
  EXPECT_EQ(tree.orphan_count(), 0u);
}

TEST_P(HeadTrackerDifferential, GhostInOrder) {
  run_head_tracker_differential(GetParam(), GhostRule(), 8, false);
}

TEST_P(HeadTrackerDifferential, GhostShuffled) {
  run_head_tracker_differential(GetParam() + 100, GhostRule(), 8, true);
}

TEST_P(HeadTrackerDifferential, LongestInOrder) {
  run_head_tracker_differential(GetParam() + 200, LongestChainRule(), 8,
                                false);
}

TEST_P(HeadTrackerDifferential, GeostInOrder) {
  run_head_tracker_differential(GetParam() + 300, GeostRule(kNodes), 8,
                                false);
}

TEST_P(HeadTrackerDifferential, GeostShuffled) {
  run_head_tracker_differential(GetParam() + 400, GeostRule(kNodes), 8, true);
}

TEST_P(HeadTrackerDifferential, GeostShallowFinality) {
  // A tiny finality depth exercises the "fork below the anchor" no-op path.
  run_head_tracker_differential(GetParam() + 500, GeostRule(kNodes), 2, false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeadTrackerDifferential,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace themis
