// Randomized oracle tests: the production fork-choice rules must agree with
// naive reference implementations on arbitrary block trees.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/stats.h"
#include "consensus/forkchoice.h"
#include "core/geost.h"
#include "tree_builder.h"

namespace themis {
namespace {

using consensus::GhostRule;
using consensus::LongestChainRule;
using core::GeostRule;
using ledger::BlockHash;
using ledger::BlockTree;

constexpr std::size_t kNodes = 6;

/// Grow a random tree: each new block extends a uniformly random existing
/// block, so deep chains and bushy forks both occur.
struct RandomTree {
  RandomTree(std::uint64_t seed, int n_blocks) {
    Rng rng(seed);
    std::vector<std::string> names{"g"};
    for (int i = 0; i < n_blocks; ++i) {
      const std::string parent =
          names[rng.next_below(names.size())];
      const std::string name = "b" + std::to_string(i);
      builder.add(name, parent,
                  static_cast<ledger::NodeId>(rng.next_below(kNodes)));
      names.push_back(name);
    }
  }
  test::TreeBuilder builder;
};

// --- reference implementations (deliberately naive) -------------------------

std::uint64_t ref_subtree_size(const BlockTree& tree, const BlockHash& root) {
  std::uint64_t n = 1;
  for (const auto& child : tree.children(root)) {
    n += ref_subtree_size(tree, child);
  }
  return n;
}

std::uint64_t ref_max_depth(const BlockTree& tree, const BlockHash& root) {
  std::uint64_t best = tree.height(root);
  for (const auto& child : tree.children(root)) {
    best = std::max(best, ref_max_depth(tree, child));
  }
  return best;
}

void ref_collect_counts(const BlockTree& tree, const BlockHash& root,
                        std::map<ledger::NodeId, std::uint64_t>& counts) {
  const auto producer = tree.block(root)->producer();
  if (producer != ledger::kNoNode) ++counts[producer];
  for (const auto& child : tree.children(root)) {
    ref_collect_counts(tree, child, counts);
  }
}

double ref_equality_variance(const BlockTree& tree, const BlockHash& root) {
  std::map<ledger::NodeId, std::uint64_t> counts;
  ref_collect_counts(tree, root, counts);
  std::uint64_t total = 0;
  for (const auto& [id, c] : counts) total += c;
  if (total == 0) return 0.0;
  std::vector<double> freqs(kNodes, 0.0);
  for (const auto& [id, c] : counts) {
    freqs[id] = static_cast<double>(c) / static_cast<double>(total);
  }
  return variance(freqs);
}

BlockHash ref_ghost(const BlockTree& tree, const BlockHash& start) {
  BlockHash cur = start;
  for (;;) {
    const auto& kids = tree.children(cur);
    if (kids.empty()) return cur;
    BlockHash best = kids[0];
    for (const auto& k : kids) {
      const auto wk = ref_subtree_size(tree, k);
      const auto wb = ref_subtree_size(tree, best);
      if (wk > wb || (wk == wb && tree.receipt_seq(k) < tree.receipt_seq(best))) {
        best = k;
      }
    }
    cur = best;
  }
}

BlockHash ref_longest(const BlockTree& tree, const BlockHash& start) {
  BlockHash cur = start;
  for (;;) {
    const auto& kids = tree.children(cur);
    if (kids.empty()) return cur;
    BlockHash best = kids[0];
    for (const auto& k : kids) {
      const auto dk = ref_max_depth(tree, k);
      const auto db = ref_max_depth(tree, best);
      if (dk > db || (dk == db && tree.receipt_seq(k) < tree.receipt_seq(best))) {
        best = k;
      }
    }
    cur = best;
  }
}

BlockHash ref_geost(const BlockTree& tree, const BlockHash& start) {
  BlockHash cur = start;
  for (;;) {
    const auto& kids = tree.children(cur);
    if (kids.empty()) return cur;
    BlockHash best = kids[0];
    for (const auto& k : kids) {
      const auto wk = ref_subtree_size(tree, k);
      const auto wb = ref_subtree_size(tree, best);
      if (wk != wb) {
        if (wk > wb) best = k;
        continue;
      }
      const double vk = ref_equality_variance(tree, k);
      const double vb = ref_equality_variance(tree, best);
      if (vk != vb) {
        if (vk < vb) best = k;
        continue;
      }
      if (tree.receipt_seq(k) < tree.receipt_seq(best)) best = k;
    }
    cur = best;
  }
}

class ForkChoiceOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkChoiceOracle, GhostMatchesReference) {
  RandomTree t(GetParam(), 60);
  const auto& tree = t.builder.tree();
  EXPECT_EQ(GhostRule().choose_head(tree, tree.genesis_hash()),
            ref_ghost(tree, tree.genesis_hash()));
}

TEST_P(ForkChoiceOracle, LongestMatchesReference) {
  RandomTree t(GetParam(), 60);
  const auto& tree = t.builder.tree();
  EXPECT_EQ(LongestChainRule().choose_head(tree, tree.genesis_hash()),
            ref_longest(tree, tree.genesis_hash()));
}

TEST_P(ForkChoiceOracle, GeostMatchesReference) {
  RandomTree t(GetParam(), 60);
  const auto& tree = t.builder.tree();
  EXPECT_EQ(GeostRule(kNodes).choose_head(tree, tree.genesis_hash()),
            ref_geost(tree, tree.genesis_hash()));
}

TEST_P(ForkChoiceOracle, SubtreeStatisticsMatchReference) {
  RandomTree t(GetParam() + 1000, 40);
  const auto& tree = t.builder.tree();
  // Check every block in the tree.
  std::vector<BlockHash> stack{tree.genesis_hash()};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    EXPECT_EQ(tree.subtree_size(cur), ref_subtree_size(tree, cur));
    EXPECT_DOUBLE_EQ(core::subtree_equality_variance(tree, cur, kNodes),
                     ref_equality_variance(tree, cur));
    EXPECT_EQ(consensus::subtree_max_height(tree, cur),
              ref_max_depth(tree, cur));
    for (const auto& child : tree.children(cur)) stack.push_back(child);
  }
}

TEST_P(ForkChoiceOracle, HeadsAreLeaves) {
  RandomTree t(GetParam() + 2000, 80);
  const auto& tree = t.builder.tree();
  for (const BlockHash head :
       {GhostRule().choose_head(tree, tree.genesis_hash()),
        LongestChainRule().choose_head(tree, tree.genesis_hash()),
        GeostRule(kNodes).choose_head(tree, tree.genesis_hash())}) {
    EXPECT_TRUE(tree.children(head).empty());
  }
}

TEST_P(ForkChoiceOracle, WalkFromMidChainIsConsistent) {
  // Choosing from an ancestor of the GHOST head must yield the same head.
  RandomTree t(GetParam() + 3000, 60);
  const auto& tree = t.builder.tree();
  GhostRule ghost;
  const BlockHash head = ghost.choose_head(tree, tree.genesis_hash());
  const auto chain = tree.chain_to(head);
  for (std::size_t i = 0; i < chain.size(); i += 7) {
    EXPECT_EQ(ghost.choose_head(tree, chain[i]), head) << "start " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkChoiceOracle,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace themis
