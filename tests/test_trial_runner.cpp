// The trial runner's determinism contract: per-trial results are a pure
// function of (base seed, trial index) — never of thread count or schedule.
#include "sim/trial_runner.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace themis::sim {
namespace {

PoxTrialSpec small_pox_spec(std::uint64_t seed = 42) {
  PoxTrialSpec spec;
  spec.config.algorithm = core::Algorithm::kThemis;
  spec.config.n_nodes = 10;
  spec.config.beta = 2;  // delta = 20
  // Explicit heterogeneous rates: the Fig. 3 default needs n > 19 pools.
  spec.config.hash_rates = {1800, 1440, 1410, 1310, 1050,
                            1000, 490,  250,  200,  180};
  spec.config.txs_per_block = 256;
  spec.config.seed = seed;
  const std::uint64_t delta = PoxExperiment::delta_for(spec.config);
  spec.target_height = 2 * delta;
  spec.tail_from_height = delta;
  return spec;
}

TEST(TrialSeed, TrialZeroIsTheBaseSeed) {
  EXPECT_EQ(trial_seed(1, 0), 1u);
  EXPECT_EQ(trial_seed(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(TrialSeed, DerivedSeedsAreDeterministicAndDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 64; ++t) {
    const std::uint64_t s = trial_seed(7, t);
    EXPECT_EQ(s, trial_seed(7, t));  // pure function
    EXPECT_TRUE(seen.insert(s).second) << "collision at trial " << t;
  }
  // Different base seeds give different streams.
  EXPECT_NE(trial_seed(7, 3), trial_seed(8, 3));
}

TEST(TrialRunnerOptions, ResolvesHardwareThreads) {
  TrialRunnerOptions options;
  options.threads = 0;
  EXPECT_GE(options.resolved_threads(), 1u);
  options.threads = 3;
  EXPECT_EQ(options.resolved_threads(), 3u);
}

void expect_identical(const PoxTrialResult& a, const PoxTrialResult& b) {
  EXPECT_EQ(a.point, b.point);
  EXPECT_EQ(a.trial, b.trial);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.delta, b.delta);
  // Bit-identical, not approximately equal: the whole point of the seeding
  // contract is that thread count cannot perturb a single bit.
  EXPECT_EQ(a.frequency_variance, b.frequency_variance);
  EXPECT_EQ(a.probability_variance, b.probability_variance);
  EXPECT_EQ(a.tps, b.tps);
  EXPECT_EQ(a.tail_tps, b.tail_tps);
  EXPECT_EQ(a.elapsed_sim_s, b.elapsed_sim_s);
  EXPECT_EQ(a.forks.total_blocks, b.forks.total_blocks);
  EXPECT_EQ(a.forks.stale_blocks, b.forks.stale_blocks);
  EXPECT_EQ(a.forks.stale_rate, b.forks.stale_rate);
  EXPECT_EQ(a.tail_forks.longest_fork_duration,
            b.tail_forks.longest_fork_duration);
}

TEST(TrialRunner, PoxResultsAreThreadCountInvariant) {
  const PoxTrialSpec spec = small_pox_spec();
  TrialRunnerOptions serial;
  serial.trials = 3;
  serial.threads = 1;
  TrialRunnerOptions wide = serial;
  wide.threads = 8;

  const auto a = run_pox_trials(spec, serial);
  const auto b = run_pox_trials(spec, wide);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t t = 0; t < a.size(); ++t) expect_identical(a[t], b[t]);

  // Trials with different seeds must actually differ (no accidental reuse).
  EXPECT_NE(a[0].seed, a[1].seed);
  EXPECT_NE(a[0].tps, a[1].tps);
}

TEST(TrialRunner, TrialZeroReproducesADirectSingleSeedRun) {
  const PoxTrialSpec spec = small_pox_spec(/*seed=*/123);
  TrialRunnerOptions options;
  options.trials = 1;
  options.threads = 4;
  const auto trials = run_pox_trials(spec, options);
  ASSERT_EQ(trials.size(), 1u);
  EXPECT_EQ(trials[0].seed, 123u);

  PoxExperiment exp(spec.config);  // config.seed == 123 untouched
  exp.run_to_height(spec.target_height, spec.max_sim_time);
  EXPECT_EQ(trials[0].tps, exp.tps());
  EXPECT_EQ(trials[0].frequency_variance, exp.per_epoch_frequency_variance());
  EXPECT_EQ(trials[0].elapsed_sim_s, exp.elapsed().to_seconds());
}

TEST(TrialRunner, SweepIndexesResultsByPointAndTrial) {
  const std::vector<PoxTrialSpec> points = {small_pox_spec(1),
                                            small_pox_spec(2)};
  TrialRunnerOptions options;
  options.trials = 2;
  options.threads = 4;
  const auto sweep = run_pox_sweep(points, options);
  ASSERT_EQ(sweep.size(), 2u);
  for (std::size_t p = 0; p < sweep.size(); ++p) {
    ASSERT_EQ(sweep[p].size(), 2u);
    for (std::size_t t = 0; t < sweep[p].size(); ++t) {
      EXPECT_EQ(sweep[p][t].point, p);
      EXPECT_EQ(sweep[p][t].trial, t);
      EXPECT_EQ(sweep[p][t].seed, trial_seed(points[p].config.seed, t));
    }
  }
}

TEST(TrialRunner, PbftResultsAreThreadCountInvariant) {
  PbftScenario scenario;
  scenario.n_nodes = 4;
  scenario.pbft.batch_size = 16;
  scenario.duration = SimTime::seconds(20.0);
  scenario.seed = 9;

  TrialRunnerOptions serial;
  serial.trials = 2;
  serial.threads = 1;
  TrialRunnerOptions wide = serial;
  wide.threads = 8;

  const auto a = run_pbft_trials(scenario, serial);
  const auto b = run_pbft_trials(scenario, wide);
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].seed, b[t].seed);
    EXPECT_EQ(a[t].result.tps, b[t].result.tps);
    EXPECT_EQ(a[t].result.committed_blocks, b[t].result.committed_blocks);
    EXPECT_EQ(a[t].result.view_changes, b[t].result.view_changes);
    EXPECT_EQ(a[t].result.producers, b[t].result.producers);
  }
}

TEST(TrialRunner, GenericRunTrialsReturnsResultsInTrialOrder) {
  TrialRunnerOptions options;
  options.trials = 16;
  options.threads = 8;
  const auto results = run_trials(
      5, options, [](std::size_t trial, std::uint64_t seed) {
        return std::pair<std::size_t, std::uint64_t>{trial, seed};
      });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t t = 0; t < results.size(); ++t) {
    EXPECT_EQ(results[t].first, t);
    EXPECT_EQ(results[t].second, trial_seed(5, t));
  }
}

TEST(TrialRunner, RejectsZeroTrialsAndMissingHeight) {
  TrialRunnerOptions no_trials;
  no_trials.trials = 0;
  EXPECT_THROW(run_pox_trials(small_pox_spec(), no_trials), PreconditionError);

  PoxTrialSpec no_height = small_pox_spec();
  no_height.target_height = 0;
  TrialRunnerOptions options;
  EXPECT_THROW(run_pox_trials(no_height, options), PreconditionError);
}

}  // namespace
}  // namespace themis::sim
