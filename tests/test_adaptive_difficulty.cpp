#include "core/adaptive_difficulty.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "tree_builder.h"

namespace themis::core {
namespace {

using test::TreeBuilder;

AdaptiveConfig small_config() {
  AdaptiveConfig cfg;
  cfg.n_nodes = 4;
  cfg.delta = 8;  // beta = 2
  cfg.expected_interval_s = 4.0;
  cfg.h0 = 10.0;
  return cfg;
}

/// Extend the builder with `count` blocks by the given producers (cycled),
/// 1 block per second, returning the tip name.
std::string extend(TreeBuilder& b, const std::string& from,
                   const std::vector<ledger::NodeId>& producers,
                   std::uint64_t count, const std::string& prefix) {
  std::string parent = from;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = prefix + std::to_string(i);
    b.add(name, parent, producers[i % producers.size()]);
    parent = name;
  }
  return parent;
}

TEST(AdaptiveDifficulty, InitialBaseDifficultyFollowsEq7) {
  AdaptiveDifficulty policy(small_config());
  // Eq. 7 with T_0 = T_max: D_base^0 = I_0 * n * H_0 = 4 * 4 * 10.
  EXPECT_DOUBLE_EQ(policy.initial_base_difficulty(), 160.0);
}

TEST(AdaptiveDifficulty, InitialBaseDifficultyOverride) {
  AdaptiveConfig cfg = small_config();
  cfg.initial_base_difficulty = 123.0;
  EXPECT_DOUBLE_EQ(AdaptiveDifficulty(cfg).initial_base_difficulty(), 123.0);
}

TEST(AdaptiveDifficulty, EpochZeroMultiplesAreOne) {
  TreeBuilder b;
  AdaptiveDifficulty policy(small_config());
  const auto& table = policy.table_for(b.tree(), b.tree().genesis_hash());
  EXPECT_EQ(table.epoch, 0u);
  for (const double m : table.multiples) EXPECT_DOUBLE_EQ(m, 1.0);
  // D_i^0 = m_i * D_base^0 for every producer.
  EXPECT_DOUBLE_EQ(
      policy.difficulty_for(b.tree(), b.tree().genesis_hash(), 2), 160.0);
}

TEST(AdaptiveDifficulty, EpochOfParentHeight) {
  TreeBuilder b;
  AdaptiveDifficulty policy(small_config());
  std::string tip = extend(b, "g", {0, 1, 2, 3}, 9, "c");
  // Parent heights 0..7 -> epoch 0; parent height 8 -> epoch 1.
  EXPECT_EQ(policy.epoch_for(b.tree(), b.tree().genesis_hash()), 0u);
  EXPECT_EQ(policy.epoch_for(b.tree(), b.hash("c6")), 0u);  // height 7
  EXPECT_EQ(policy.epoch_for(b.tree(), b.hash("c7")), 1u);  // height 8
  EXPECT_EQ(policy.epoch_for(b.tree(), b.hash("c8")), 1u);  // height 9
}

TEST(AdaptiveDifficulty, Eq6UpdateFromCounts) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();
  cfg.enable_retarget = false;  // isolate the multiple update
  AdaptiveDifficulty policy(cfg);
  // Epoch 0 (8 blocks): node 0 makes 4, node 1 makes 4, nodes 2-3 none.
  extend(b, "g", {0, 1}, 8, "e");
  const auto& table = policy.table_for(b.tree(), b.hash("e7"));
  EXPECT_EQ(table.epoch, 1u);
  // Eq. 6: m = max(n*q/delta * m_prev, 1) = max(4*4/8, 1) = 2 for nodes 0-1,
  // floor 1 for idle nodes.
  EXPECT_DOUBLE_EQ(table.multiples[0], 2.0);
  EXPECT_DOUBLE_EQ(table.multiples[1], 2.0);
  EXPECT_DOUBLE_EQ(table.multiples[2], 1.0);
  EXPECT_DOUBLE_EQ(table.multiples[3], 1.0);
}

TEST(AdaptiveDifficulty, MultiplesCompoundAcrossEpochs) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();
  cfg.enable_retarget = false;
  AdaptiveDifficulty policy(cfg);
  // Two epochs where node 0 produces everything.
  std::string tip = extend(b, "g", {0}, 16, "e");
  const auto& table = policy.table_for(b.tree(), b.hash(tip));
  EXPECT_EQ(table.epoch, 2u);
  // Epoch 1: m0 = 8*4/8 = 4.  Epoch 2: m0 = 4 * 4 = 16.
  EXPECT_DOUBLE_EQ(table.multiples[0], 16.0);
  EXPECT_DOUBLE_EQ(table.multiples[1], 1.0);
}

TEST(AdaptiveDifficulty, FloorKeepsIdleNodesAtBase) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();
  cfg.enable_retarget = false;
  AdaptiveDifficulty policy(cfg);
  extend(b, "g", {0}, 8, "e");
  // Node 3 produced nothing; its difficulty stays at exactly D_base (the
  // §IV-B security floor).
  EXPECT_DOUBLE_EQ(policy.difficulty_for(b.tree(), b.hash("e7"), 3), 160.0);
}

TEST(AdaptiveDifficulty, FloorAblationLetsMultiplesShrink) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();
  cfg.enable_retarget = false;
  cfg.enforce_multiple_floor = false;
  AdaptiveDifficulty policy(cfg);
  // Node 0: 6 of 8 blocks; node 1: 2 of 8.
  extend(b, "g", {0, 0, 0, 1}, 8, "e");
  const auto& table = policy.table_for(b.tree(), b.hash("e7"));
  EXPECT_DOUBLE_EQ(table.multiples[0], 3.0);   // 4*6/8
  EXPECT_DOUBLE_EQ(table.multiples[1], 1.0);   // 4*2/8
  EXPECT_GT(table.multiples[2], 0.0);          // idle but still positive
  EXPECT_LT(table.multiples[2], 1.0e-300);     // collapses without the floor
}

TEST(AdaptiveDifficulty, DifficultyIsAPureFunctionOfTheParentChain) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();
  cfg.enable_retarget = false;
  // Two competing branches across the epoch boundary with different counts.
  extend(b, "g", {0}, 8, "x");    // branch X: all by node 0
  extend(b, "g", {1}, 8, "y");    // branch Y: all by node 1
  AdaptiveDifficulty policy(cfg);
  // Verifiers get different tables depending on which boundary the parent is
  // on — and the same table for the same parent, regardless of query order.
  const double d0_on_x = policy.difficulty_for(b.tree(), b.hash("x7"), 0);
  const double d0_on_y = policy.difficulty_for(b.tree(), b.hash("y7"), 0);
  EXPECT_DOUBLE_EQ(d0_on_x, 4.0 * 160.0);
  EXPECT_DOUBLE_EQ(d0_on_y, 160.0);
  // A second policy instance (another node) agrees exactly.
  AdaptiveDifficulty other(cfg);
  EXPECT_DOUBLE_EQ(other.difficulty_for(b.tree(), b.hash("x7"), 0), d0_on_x);
  EXPECT_DOUBLE_EQ(other.difficulty_for(b.tree(), b.hash("y7"), 0), d0_on_y);
}

TEST(AdaptiveDifficulty, RetargetSpeedsUpSlowChain) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();  // I_0 = 4 s
  AdaptiveDifficulty policy(cfg);
  // Blocks arrive every 8 s (timestamps set by hand): twice too slow.
  std::string parent = "g";
  for (int i = 0; i < 8; ++i) {
    const std::string name = "s" + std::to_string(i);
    b.add(name, parent, 0, 1.0, static_cast<std::int64_t>((i + 1) * 8e9));
    parent = name;
  }
  const auto& table = policy.table_for(b.tree(), b.hash("s7"));
  // Observed interval 8 s vs expected 4 s -> halve the base difficulty.
  EXPECT_DOUBLE_EQ(table.base_difficulty, 80.0);
}

TEST(AdaptiveDifficulty, RetargetClampBoundsTheJump) {
  TreeBuilder b;
  AdaptiveConfig cfg = small_config();
  cfg.retarget_clamp = 4.0;
  AdaptiveDifficulty policy(cfg);
  // Blocks every 0.1 s: 40x too fast, but the clamp caps the factor at 4.
  std::string parent = "g";
  for (int i = 0; i < 8; ++i) {
    const std::string name = "f" + std::to_string(i);
    b.add(name, parent, 0, 1.0, static_cast<std::int64_t>((i + 1) * 1e8));
    parent = name;
  }
  const auto& table = policy.table_for(b.tree(), b.hash("f7"));
  EXPECT_DOUBLE_EQ(table.base_difficulty, 640.0);  // 160 * 4
}

TEST(AdaptiveDifficulty, TableIsCachedPerBoundary) {
  TreeBuilder b;
  AdaptiveDifficulty policy(small_config());
  extend(b, "g", {0, 1, 2, 3}, 10, "c");
  const auto& t1 = policy.table_for(b.tree(), b.hash("c8"));
  const auto& t2 = policy.table_for(b.tree(), b.hash("c9"));
  EXPECT_EQ(&t1, &t2);  // same boundary -> same cached table
}

TEST(AdaptiveDifficulty, StorageOverheadMatchesPaper) {
  // §VI-C: one float (m) + one int (q) per node per epoch = 8n bytes.
  AdaptiveDifficulty policy(small_config());
  EXPECT_EQ(policy.storage_overhead_bytes_per_epoch(), 8u * 4u);
}

TEST(AdaptiveDifficulty, RejectsBadConfig) {
  AdaptiveConfig cfg = small_config();
  cfg.n_nodes = 1;
  EXPECT_THROW(AdaptiveDifficulty{cfg}, PreconditionError);
  cfg = small_config();
  cfg.delta = 0;
  EXPECT_THROW(AdaptiveDifficulty{cfg}, PreconditionError);
  cfg = small_config();
  cfg.expected_interval_s = 0;
  EXPECT_THROW(AdaptiveDifficulty{cfg}, PreconditionError);
  cfg = small_config();
  cfg.retarget_clamp = 0.5;
  EXPECT_THROW(AdaptiveDifficulty{cfg}, PreconditionError);
}

TEST(AdaptiveDifficulty, ProducerOutOfRangeThrows) {
  TreeBuilder b;
  AdaptiveDifficulty policy(small_config());
  EXPECT_THROW(policy.difficulty_for(b.tree(), b.tree().genesis_hash(), 4),
               PreconditionError);
}

// Eq. 5: the per-epoch frequency is an unbiased estimator of the
// block-producing probability.  Simulate multinomial epochs and check the
// empirical mean of q_i/delta against p_i.
class MleUnbiasedness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MleUnbiasedness, FrequencyEstimatesProbability) {
  Rng rng(GetParam());
  const std::vector<double> p{0.4, 0.3, 0.2, 0.1};
  const std::uint64_t delta = 64;
  const int epochs = 400;
  std::vector<double> mean_freq(4, 0.0);
  for (int e = 0; e < epochs; ++e) {
    std::vector<std::uint64_t> q(4, 0);
    for (std::uint64_t blk = 0; blk < delta; ++blk) {
      double u = rng.next_double();
      for (std::size_t i = 0; i < 4; ++i) {
        if (u < p[i] || i == 3) {
          ++q[i];
          break;
        }
        u -= p[i];
      }
    }
    for (std::size_t i = 0; i < 4; ++i) {
      mean_freq[i] += static_cast<double>(q[i]) / static_cast<double>(delta);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(mean_freq[i] / epochs, p[i], 0.02) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MleUnbiasedness, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace themis::core
