// Differential tests: CalendarQueue against the NaiveEventQueue oracle (the
// pre-calendar binary-heap implementation, kept verbatim), plus the calendar's
// own arena/cancellation invariants.  The two implementations share one
// contract — events fire in (time, schedule-order) order, cancel removes
// exactly the named pending event — so any random interleaving of pushes,
// cancels and pops must produce identical observable behaviour.
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "net/event_queue.h"

namespace themis::net {
namespace {

TEST(EventQueueDifferential, RandomWorkloadMatchesOracle) {
  Rng rng(123);
  for (int round = 0; round < 10; ++round) {
    CalendarQueue cal;
    NaiveEventQueue naive;
    std::vector<int> cal_fired;
    std::vector<int> naive_fired;
    // Parallel (calendar id, oracle id) pairs; entries may already have fired
    // or been cancelled — cancel must then agree (false) on both sides.
    std::vector<std::pair<EventId, EventId>> ids;
    int marker = 0;
    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t r = rng.next_below(100);
      if (r < 55 || ids.empty()) {
        // Dense near times (with ties) plus an occasional far-future timer,
        // the simulator's bimodal shape — exercises ring and far tiers.
        std::int64_t t;
        if (rng.next_below(10) == 0) {
          t = static_cast<std::int64_t>(1 + rng.next_below(100)) *
              1'000'000'000;
        } else {
          t = static_cast<std::int64_t>(rng.next_below(2000));
        }
        const int m = marker++;
        const EventId c = cal.push(SimTime::nanos(t),
                                   [m, &cal_fired] { cal_fired.push_back(m); });
        const EventId n = naive.push(
            SimTime::nanos(t), [m, &naive_fired] { naive_fired.push_back(m); });
        ids.emplace_back(c, n);
      } else if (r < 75) {
        const std::size_t k =
            static_cast<std::size_t>(rng.next_below(ids.size()));
        ASSERT_EQ(cal.cancel(ids[k].first), naive.cancel(ids[k].second));
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(k));
      } else if (!cal.empty()) {
        ASSERT_FALSE(naive.empty());
        ASSERT_EQ(cal.peek_time(), naive.peek_time());
        CalendarQueue::Fired cf = cal.pop();
        NaiveEventQueue::Fired nf = naive.pop();
        ASSERT_EQ(cf.time, nf.time);
        cf.fn();
        nf.fn();
        ASSERT_EQ(cal_fired.back(), naive_fired.back());
      }
      ASSERT_EQ(cal.size(), naive.size());
      ASSERT_EQ(cal.empty(), naive.empty());
    }
    while (!cal.empty()) {
      ASSERT_FALSE(naive.empty());
      CalendarQueue::Fired cf = cal.pop();
      NaiveEventQueue::Fired nf = naive.pop();
      ASSERT_EQ(cf.time, nf.time);
      cf.fn();
      nf.fn();
    }
    EXPECT_TRUE(naive.empty());
    EXPECT_EQ(cal_fired, naive_fired);
  }
}

TEST(EventQueueDifferential, EqualTimestampsFireInScheduleOrder) {
  CalendarQueue cal;
  NaiveEventQueue naive;
  std::vector<int> cal_fired;
  std::vector<int> naive_fired;
  for (int i = 0; i < 100; ++i) {
    cal.push(SimTime::nanos(42), [i, &cal_fired] { cal_fired.push_back(i); });
    naive.push(SimTime::nanos(42),
               [i, &naive_fired] { naive_fired.push_back(i); });
  }
  while (!cal.empty()) {
    cal.pop().fn();
    naive.pop().fn();
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cal_fired[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(cal_fired, naive_fired);
}

TEST(EventQueue, StaleIdAfterSlotReuseCannotCancelNewOccupant) {
  CalendarQueue q;
  const EventId a = q.push(SimTime::nanos(100), [] {});
  ASSERT_TRUE(q.cancel(a));
  // The freed slot is recycled by the next push with a bumped generation.
  bool b_fired = false;
  const EventId b = q.push(SimTime::nanos(200), [&b_fired] { b_fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.cancel(a));  // stale id: same slot, old generation
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(b_fired);
  EXPECT_FALSE(q.cancel(a));
  EXPECT_FALSE(q.cancel(b));  // fired ids are no longer cancellable either
}

TEST(EventQueue, CancelledFarFutureEventNeverFires) {
  CalendarQueue q;
  bool near_fired = false;
  bool far_fired = false;
  q.push(SimTime::nanos(10), [&near_fired] { near_fired = true; });
  // Far beyond the initial ring span: parks in the far heap.
  const EventId far = q.push(SimTime::seconds(500), [&far_fired] {
    far_fired = true;
  });
  ASSERT_TRUE(q.cancel(far));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(far_fired);
}

TEST(EventQueue, LargeCaptureFallsBackToHeapAndStillRuns) {
  // > EventFn::kInlineCapacity forces the heap path; the callback must still
  // carry its captures intact through slab moves.
  std::array<std::uint64_t, 12> payload{};
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 31 + 7;
  static_assert(sizeof(payload) > EventFn::kInlineCapacity);
  CalendarQueue q;
  std::uint64_t seen = 0;
  q.push(SimTime::nanos(1), [payload, &seen] {
    for (const std::uint64_t v : payload) seen += v;
  });
  q.pop().fn();
  std::uint64_t expect = 0;
  for (const std::uint64_t v : payload) expect += v;
  EXPECT_EQ(seen, expect);
}

// Satellite regression: a million cancelled events must not grow the arena —
// cancellation reclaims slots eagerly (no lazy-deletion garbage), so memory
// stays bounded by the peak *live* population, not by churn volume.
TEST(EventQueue, MillionCancelsKeepArenaBounded) {
  CalendarQueue q;
  for (int i = 0; i < 1'000'000; ++i) {
    // Alternate ring-near and far-future targets so both tiers reclaim.
    const SimTime t = (i & 1) == 0 ? SimTime::nanos(1000 + i)
                                   : SimTime::seconds(100.0 + i);
    const EventId id = q.push(t, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  const CalendarQueue::Stats s = q.stats();
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.cancelled, 1'000'000u);
  EXPECT_EQ(s.far_live, 0u);
  // One live event at a time: the arena never needs more than a handful of
  // slots (slack for the far heap's bounded lazy-deletion residue).
  EXPECT_LE(s.arena_slots, 64u);
}

// Regression: a width learned from a sparse population (mining timers,
// milliseconds apart) must be re-learned when a dense interleaved wave
// arrives, or the whole wave shares one bucket and every pop re-sorts it —
// O(n log n) per event.  The oversize-re-sort detector has to trip a
// re-sampling rebuild within a few pops of the degeneration starting.
TEST(EventQueue, WidthRetunesWhenDenseWaveSharesOneBucket) {
  CalendarQueue q;
  Rng rng(5);
  std::size_t scheduled = 0;
  // Sparse phase: teach the calendar a wide width (4 ms gaps).
  for (int i = 0; i < 5000; ++i) {
    q.push(SimTime::nanos(10'000'000 + static_cast<std::int64_t>(i) *
                                           4'000'000),
           [] {});
    ++scheduled;
  }
  // Dense phase: a gossip-wave shape in front of the timers — microsecond
  // spacing, and every pop schedules a near-future replacement that lands in
  // the same (still too-wide) bucket and re-dirties it.
  for (int i = 0; i < 1000; ++i) {
    q.push(SimTime::nanos(static_cast<std::int64_t>(rng.next_below(1'000'000))),
           [] {});
    ++scheduled;
  }
  const std::uint64_t rebuilds_before = q.stats().rebuilds;
  std::size_t fired = 0;
  for (int i = 0; i < 2000; ++i) {
    CalendarQueue::Fired f = q.pop();
    f.fn();
    ++fired;
    q.push(f.time + SimTime::nanos(static_cast<std::int64_t>(
                        1 + rng.next_below(1'000))),
           [] {});
    ++scheduled;
  }
  EXPECT_GT(q.stats().oversize_sorts, 0u);
  EXPECT_GT(q.stats().rebuilds, rebuilds_before)
      << "dense-wave degeneration never triggered a width re-sample";
  while (!q.empty()) {
    q.pop().fn();
    ++fired;
  }
  EXPECT_EQ(fired, scheduled);
}

TEST(EventQueue, OccupancyCountersTrackLifecycle) {
  CalendarQueue q;
  EXPECT_EQ(q.stats().live, 0u);
  const EventId a = q.push(SimTime::nanos(5), [] {});
  q.push(SimTime::nanos(6), [] {});
  CalendarQueue::Stats s = q.stats();
  EXPECT_EQ(s.live, 2u);
  EXPECT_EQ(s.peak_live, 2u);
  EXPECT_EQ(s.arena_slots, 2u);
  ASSERT_TRUE(q.cancel(a));
  s = q.stats();
  EXPECT_EQ(s.live, 1u);
  EXPECT_EQ(s.peak_live, 2u);
  EXPECT_EQ(s.free_slots, 1u);
  EXPECT_EQ(s.cancelled, 1u);
  q.pop().fn();
  s = q.stats();
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.free_slots, 2u);
}

}  // namespace
}  // namespace themis::net
