#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "crypto/sha256.h"

namespace themis::crypto {
namespace {

std::vector<Hash32> make_leaves(std::size_t n) {
  std::vector<Hash32> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(sha256(Bytes{static_cast<std::uint8_t>(i),
                                  static_cast<std::uint8_t>(i >> 8)}));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  EXPECT_EQ(merkle_root({}), Hash32{});
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(Merkle, TwoLeavesCombine) {
  const auto leaves = make_leaves(2);
  const Hash32 root = merkle_root(leaves);
  EXPECT_NE(root, leaves[0]);
  EXPECT_NE(root, leaves[1]);
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  const Hash32 root = merkle_root(leaves);
  std::swap(leaves[0], leaves[1]);
  EXPECT_NE(merkle_root(leaves), root);
}

TEST(Merkle, OddCountDuplicatesLast) {
  // A 3-leaf tree equals a 4-leaf tree whose 4th leaf repeats the 3rd.
  auto three = make_leaves(3);
  auto four = three;
  four.push_back(three.back());
  EXPECT_EQ(merkle_root(three), merkle_root(four));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash32 base = merkle_root(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 1;
    EXPECT_NE(merkle_root(mutated), base) << "leaf " << i;
  }
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, EveryLeafProves) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const Hash32 root = merkle_root(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const MerkleProof proof = merkle_prove(leaves, i);
    EXPECT_TRUE(merkle_verify(leaves[i], proof, root)) << "leaf " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33));

TEST(MerkleProof, WrongLeafFails) {
  const auto leaves = make_leaves(8);
  const Hash32 root = merkle_root(leaves);
  const MerkleProof proof = merkle_prove(leaves, 3);
  EXPECT_FALSE(merkle_verify(leaves[4], proof, root));
}

TEST(MerkleProof, TamperedSiblingFails) {
  const auto leaves = make_leaves(8);
  const Hash32 root = merkle_root(leaves);
  MerkleProof proof = merkle_prove(leaves, 0);
  proof[1].sibling[0] ^= 1;
  EXPECT_FALSE(merkle_verify(leaves[0], proof, root));
}

TEST(MerkleProof, WrongRootFails) {
  const auto leaves = make_leaves(4);
  Hash32 root = merkle_root(leaves);
  const MerkleProof proof = merkle_prove(leaves, 2);
  root[5] ^= 1;
  EXPECT_FALSE(merkle_verify(leaves[2], proof, root));
}

TEST(MerkleProof, OutOfRangeIndexThrows) {
  const auto leaves = make_leaves(4);
  EXPECT_THROW(merkle_prove(leaves, 4), PreconditionError);
}

TEST(MerkleProof, DepthIsLogarithmic) {
  const auto leaves = make_leaves(16);
  EXPECT_EQ(merkle_prove(leaves, 0).size(), 4u);
  EXPECT_EQ(merkle_prove(make_leaves(2), 0).size(), 1u);
}

TEST(MerkleProof, SingleLeafEmptyProofVerifies) {
  const auto leaves = make_leaves(1);
  const MerkleProof proof = merkle_prove(leaves, 0);
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(merkle_verify(leaves[0], proof, leaves[0]));
  // The empty proof asserts leaf == root, nothing else.
  EXPECT_FALSE(merkle_verify(make_leaves(2)[1], proof, leaves[0]));
}

TEST(MerkleProof, FlippedDirectionBitFails) {
  const auto leaves = make_leaves(8);
  const Hash32 root = merkle_root(leaves);
  MerkleProof proof = merkle_prove(leaves, 2);
  proof[0].sibling_on_left = !proof[0].sibling_on_left;
  EXPECT_FALSE(merkle_verify(leaves[2], proof, root));
}

TEST(MerkleProof, TruncatedOrExtendedProofFails) {
  const auto leaves = make_leaves(8);
  const Hash32 root = merkle_root(leaves);
  MerkleProof proof = merkle_prove(leaves, 5);
  MerkleProof truncated(proof.begin(), proof.end() - 1);
  EXPECT_FALSE(merkle_verify(leaves[5], truncated, root));
  MerkleProof extended = proof;
  extended.push_back(proof[0]);
  EXPECT_FALSE(merkle_verify(leaves[5], extended, root));
}

TEST(MerkleProof, WrongIndexProofFails) {
  // A proof built for one index must not authenticate a different leaf, for
  // every (proof index, claimed leaf) pair in a small tree.
  const auto leaves = make_leaves(7);
  const Hash32 root = merkle_root(leaves);
  for (std::size_t at = 0; at < leaves.size(); ++at) {
    const MerkleProof proof = merkle_prove(leaves, at);
    for (std::size_t claimed = 0; claimed < leaves.size(); ++claimed) {
      EXPECT_EQ(merkle_verify(leaves[claimed], proof, root), claimed == at)
          << "proof " << at << " leaf " << claimed;
    }
  }
}

TEST(MerkleProof, OddTailLeafProvesViaDuplication) {
  // Bitcoin-style odd duplication: the last leaf of an odd level pairs with
  // itself, and its proof still verifies.
  for (const std::size_t n : {3u, 5u, 9u, 33u}) {
    const auto leaves = make_leaves(n);
    const Hash32 root = merkle_root(leaves);
    const MerkleProof proof = merkle_prove(leaves, n - 1);
    EXPECT_TRUE(merkle_verify(leaves[n - 1], proof, root)) << n;
  }
}

TEST(MerkleProof, NothingVerifiesAgainstEmptyRoot) {
  const auto leaves = make_leaves(2);
  EXPECT_FALSE(merkle_verify(leaves[0], {}, Hash32{}));
  EXPECT_FALSE(merkle_verify(leaves[0], merkle_prove(leaves, 0), Hash32{}));
}

}  // namespace
}  // namespace themis::crypto
