#include "net/link.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace themis::net {
namespace {

LinkConfig paper_link() {
  return LinkConfig{.bandwidth_bps = 20e6, .min_delay = SimTime::millis(100)};
}

TEST(Link, TransmissionTimeMatchesBandwidth) {
  AccessLinkModel links(2, paper_link());
  // 20 Mbps = 2.5 MB/s: 2.5 MB takes exactly 1 s.
  EXPECT_EQ(links.transmission_time(2'500'000), SimTime::seconds(1.0));
  EXPECT_EQ(links.transmission_time(0), SimTime::zero());
}

TEST(Link, SingleSendArrivalTime) {
  AccessLinkModel links(2, paper_link());
  const SimTime arrival = links.enqueue_send(0, SimTime::zero(), 2'500'000);
  EXPECT_EQ(arrival, SimTime::seconds(1.0) + SimTime::millis(100));
}

TEST(Link, UplinkSerializesConcurrentSends) {
  AccessLinkModel links(2, paper_link());
  const SimTime first = links.enqueue_send(0, SimTime::zero(), 2'500'000);
  const SimTime second = links.enqueue_send(0, SimTime::zero(), 2'500'000);
  // The second transfer waits for the first to leave the uplink.
  EXPECT_EQ(second - first, SimTime::seconds(1.0));
}

TEST(Link, DifferentSendersDoNotContend) {
  AccessLinkModel links(2, paper_link());
  const SimTime a = links.enqueue_send(0, SimTime::zero(), 2'500'000);
  const SimTime b = links.enqueue_send(1, SimTime::zero(), 2'500'000);
  EXPECT_EQ(a, b);
}

TEST(Link, IdleUplinkStartsAtNow) {
  AccessLinkModel links(1, paper_link());
  links.enqueue_send(0, SimTime::zero(), 2'500'000);
  // Uplink frees at t=1s; a send at t=5s starts immediately.
  const SimTime arrival = links.enqueue_send(0, SimTime::seconds(5.0), 2'500'000);
  EXPECT_EQ(arrival, SimTime::seconds(6.0) + SimTime::millis(100));
}

TEST(Link, UplinkFreeAtTracksHorizon) {
  AccessLinkModel links(1, paper_link());
  EXPECT_EQ(links.uplink_free_at(0), SimTime::zero());
  links.enqueue_send(0, SimTime::zero(), 2'500'000);
  EXPECT_EQ(links.uplink_free_at(0), SimTime::seconds(1.0));
}

TEST(Link, CountsTraffic) {
  AccessLinkModel links(2, paper_link());
  links.enqueue_send(0, SimTime::zero(), 100);
  links.enqueue_send(1, SimTime::zero(), 200);
  EXPECT_EQ(links.total_bytes_sent(), 300u);
  EXPECT_EQ(links.total_transfers(), 2u);
}

TEST(Link, ResetClearsState) {
  AccessLinkModel links(1, paper_link());
  links.enqueue_send(0, SimTime::zero(), 1'000'000);
  links.reset();
  EXPECT_EQ(links.uplink_free_at(0), SimTime::zero());
  EXPECT_EQ(links.total_bytes_sent(), 0u);
}

TEST(Link, InvalidConfigThrows) {
  EXPECT_THROW(AccessLinkModel(1, LinkConfig{.bandwidth_bps = 0}),
               PreconditionError);
  EXPECT_THROW(AccessLinkModel(
                   1, LinkConfig{.bandwidth_bps = 1, .min_delay = SimTime::nanos(-1)}),
               PreconditionError);
}

TEST(Link, SenderOutOfRangeThrows) {
  AccessLinkModel links(2, paper_link());
  EXPECT_THROW(links.enqueue_send(2, SimTime::zero(), 1), PreconditionError);
  EXPECT_THROW(links.uplink_free_at(5), PreconditionError);
}

}  // namespace
}  // namespace themis::net
