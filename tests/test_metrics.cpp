#include <gtest/gtest.h>

#include <sstream>

#include "metrics/equality.h"
#include "metrics/fork_stats.h"
#include "metrics/table.h"
#include "tree_builder.h"

namespace themis::metrics {
namespace {

using test::TreeBuilder;

TEST(Equality, ProducerCounts) {
  const std::vector<ledger::NodeId> producers{0, 1, 1, 2, 99};
  const auto counts = producer_counts(producers, 3);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2, 1}));  // 99 ignored
}

TEST(Equality, PerEpochVarianceUniformIsZero) {
  const std::vector<ledger::NodeId> producers{0, 1, 2, 3, 0, 1, 2, 3};
  const auto v = per_epoch_frequency_variance(producers, 4, 4);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(Equality, PerEpochVarianceKnownValue) {
  // One epoch of 4 blocks, all by node 0, over 2 nodes: f = {1, 0}, var 0.25.
  const std::vector<ledger::NodeId> producers{0, 0, 0, 0};
  const auto v = per_epoch_frequency_variance(producers, 4, 2);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
}

TEST(Equality, PartialTrailingEpochDropped) {
  const std::vector<ledger::NodeId> producers{0, 1, 0, 1, 0};
  EXPECT_EQ(per_epoch_frequency_variance(producers, 2, 2).size(), 2u);
}

TEST(Equality, WholeSequenceVariance) {
  const std::vector<ledger::NodeId> producers{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(frequency_variance_of(producers, 2), 0.0);
  EXPECT_EQ(frequency_variance_of({}, 2), 0.0);
}

TEST(Unpredictability, ProbabilityVarianceFromPower) {
  // Equal power -> zero variance.
  EXPECT_DOUBLE_EQ(probability_variance_from_power(std::vector<double>{5, 5, 5}),
                   0.0);
  // p = {0.75, 0.25}: var = 0.0625.
  EXPECT_DOUBLE_EQ(probability_variance_from_power(std::vector<double>{3, 1}),
                   0.0625);
}

TEST(Unpredictability, PbftOneHotFormula) {
  // n=4: ((3/4)^2 + 3*(1/4)^2)/4 = 3/16.
  EXPECT_DOUBLE_EQ(pbft_probability_variance(4), 3.0 / 16.0);
  // Matches the generic variance of an explicit one-hot vector.
  EXPECT_DOUBLE_EQ(pbft_probability_variance(10),
                   probability_variance(std::vector<double>{1, 0, 0, 0, 0, 0, 0,
                                                            0, 0, 0}));
}

TEST(Unpredictability, PbftVarianceShrinksWithN) {
  EXPECT_GT(pbft_probability_variance(10), pbft_probability_variance(100));
}

TEST(ForkStats, LinearChainHasNoForks) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  b.add("c", "b", 2);
  const ForkStats s = analyze_forks(b.tree(), b.hash("c"));
  EXPECT_EQ(s.total_blocks, 3u);
  EXPECT_EQ(s.main_chain_blocks, 3u);
  EXPECT_EQ(s.stale_blocks, 0u);
  EXPECT_EQ(s.fork_count, 0u);
  EXPECT_EQ(s.longest_fork_duration, 0u);
  EXPECT_DOUBLE_EQ(s.stale_rate, 0.0);
}

TEST(ForkStats, SingleForkCounted) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("a2", "g", 1);  // stale sibling
  b.add("b", "a", 2);
  const ForkStats s = analyze_forks(b.tree(), b.hash("b"));
  EXPECT_EQ(s.total_blocks, 3u);
  EXPECT_EQ(s.main_chain_blocks, 2u);
  EXPECT_EQ(s.stale_blocks, 1u);
  EXPECT_EQ(s.fork_count, 1u);
  EXPECT_EQ(s.longest_fork_duration, 1u);
  EXPECT_DOUBLE_EQ(s.stale_rate, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.forked_height_fraction, 0.5);
}

TEST(ForkStats, MultiHeightForkRun) {
  TreeBuilder b;
  // Fork lasting heights 1-2 on both branches, resolving at height 3.
  b.add("a1", "g", 0);
  b.add("b1", "g", 1);
  b.add("a2", "a1", 0);
  b.add("b2", "b1", 1);
  b.add("a3", "a2", 2);
  const ForkStats s = analyze_forks(b.tree(), b.hash("a3"));
  EXPECT_EQ(s.fork_count, 1u);
  EXPECT_EQ(s.longest_fork_duration, 2u);
  EXPECT_EQ(s.stale_blocks, 2u);
  EXPECT_DOUBLE_EQ(s.mean_fork_duration, 2.0);
}

TEST(ForkStats, SeparateForkRunsCounted) {
  TreeBuilder b;
  b.add("a1", "g", 0);
  b.add("x1", "g", 1);  // fork at height 1
  b.add("a2", "a1", 0);
  b.add("a3", "a2", 0);
  b.add("x3", "a2", 1);  // fork at height 3
  b.add("a4", "a3", 0);
  const ForkStats s = analyze_forks(b.tree(), b.hash("a4"));
  EXPECT_EQ(s.fork_count, 2u);
  EXPECT_EQ(s.longest_fork_duration, 1u);
  EXPECT_DOUBLE_EQ(s.mean_fork_duration, 1.0);
}

TEST(ForkStats, GenesisOnlyTree) {
  TreeBuilder b;
  const ForkStats s = analyze_forks(b.tree(), b.tree().genesis_hash());
  EXPECT_EQ(s.total_blocks, 0u);
  EXPECT_EQ(s.stale_rate, 0.0);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(1.5, 2), "1.50");
  // Tiny values switch to scientific notation.
  EXPECT_NE(Table::num(3.2e-7).find('e'), std::string::npos);
  EXPECT_EQ(Table::num(0.0, 2), "0.00");
}

}  // namespace
}  // namespace themis::metrics
