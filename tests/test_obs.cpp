// Observability subsystem: tracer format, counter/histogram registry,
// profiling scopes, report rendering — and the determinism contract that a
// traced run produces exactly the chain an untraced run does.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/counters.h"
#include "obs/observability.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/experiment.h"

namespace themis::obs {
namespace {

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  EventTracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.emit(SimTime::seconds(1.0), "block_mined", {Field::u64("node", 3)});
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsTracer, RendersAllFieldTypes) {
  EventTracer tracer;
  tracer.enable(true);
  tracer.emit(SimTime::nanos(1500), "kitchen_sink",
              {Field::u64("u", 42), Field::i64("i", -7),
               Field::f64("f", 0.25), Field::boolean("b", true),
               Field::str("s", "a\"b\\c")});
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.lines()[0],
            "{\"t_ns\":1500,\"ev\":\"kitchen_sink\",\"u\":42,\"i\":-7,"
            "\"f\":0.25,\"b\":true,\"s\":\"a\\\"b\\\\c\"}");
}

TEST(ObsTracer, WriteJsonlEmitsOneLinePerEvent) {
  EventTracer tracer;
  tracer.enable(true);
  tracer.emit(SimTime::zero(), "a", {});
  tracer.emit(SimTime::nanos(5), "b", {Field::u64("x", 1)});
  std::ostringstream out;
  tracer.write_jsonl(out);
  EXPECT_EQ(out.str(), "{\"t_ns\":0,\"ev\":\"a\"}\n"
                       "{\"t_ns\":5,\"ev\":\"b\",\"x\":1}\n");
}

TEST(ObsTracer, DoubleFormattingRoundTrips) {
  std::string out;
  append_double(out, 0.1);
  EXPECT_EQ(std::stod(out), 0.1);
  out.clear();
  append_double(out, 1.0 / 3.0);
  EXPECT_EQ(std::stod(out), 1.0 / 3.0);
}

TEST(ObsCounters, HistogramPercentilesNearestRank) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.percentile(50), 50.0);
  EXPECT_EQ(h.percentile(90), 90.0);
  EXPECT_EQ(h.percentile(99), 99.0);
  EXPECT_EQ(h.percentile(100), 100.0);
}

TEST(ObsCounters, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(ObsCounters, RegistryReferencesAreStable) {
  Counters counters;
  std::uint64_t& a = counters.counter("a");
  a = 5;
  for (int i = 0; i < 100; ++i) counters.counter("pad" + std::to_string(i));
  EXPECT_EQ(&counters.counter("a"), &a);
  EXPECT_EQ(counters.counter("a"), 5u);
}

TEST(ObsCounters, LinkStatsAccumulatePerDirectedEdge) {
  Counters counters;
  counters.link(1, 2).messages += 1;
  counters.link(1, 2).bytes += 100;
  counters.link(2, 1).messages += 1;
  EXPECT_EQ(counters.links().size(), 2u);
  EXPECT_EQ(counters.links().at({1, 2}).bytes, 100u);
  EXPECT_EQ(counters.links().at({2, 1}).messages, 1u);
}

TEST(ObsProfiler, ScopeAccumulatesCalls) {
  Profiler profiler;
  ScopeStat& stat = profiler.scope("hot");
  for (int i = 0; i < 3; ++i) ProfileScope scope(&stat);
  EXPECT_EQ(stat.calls, 3u);
}

TEST(ObsProfiler, NullScopeIsNoop) {
  ProfileScope scope(static_cast<ScopeStat*>(nullptr));  // must not crash
  ProfileScope named(static_cast<Profiler*>(nullptr), "x");
}

TEST(ObsReport, RendersDeterministicSections) {
  Observability obs;
  obs.counters.counter("gossip.deliveries") = 7;
  obs.counters.histogram("chain.block_interval_s").record(4.0);
  obs.counters.series("difficulty.base_per_epoch") = {1.0, 2.0};
  obs.counters.link(0, 1).messages = 3;
  obs.counters.link(0, 1).bytes = 300;
  std::ostringstream out;
  write_report(out, obs);
  const std::string text = out.str();
  EXPECT_NE(text.find("gossip.deliveries"), std::string::npos);
  EXPECT_NE(text.find("chain.block_interval_s"), std::string::npos);
  EXPECT_NE(text.find("difficulty.base_per_epoch"), std::string::npos);
  std::ostringstream again;
  write_report(again, obs);
  EXPECT_EQ(text, again.str());
}

// The acceptance criterion for the whole subsystem: attaching a bundle with
// tracing enabled must not perturb the simulation.  Same config, same seed,
// with and without observation -> bit-identical main chains.
TEST(ObsDeterminism, TracedRunProducesIdenticalMainChain) {
  sim::PoxConfig config;
  config.algorithm = core::Algorithm::kThemis;
  config.n_nodes = 20;
  config.beta = 2.0;
  config.seed = 91;
  config.fanout = 3;

  sim::PoxExperiment plain(config);
  const std::uint64_t delta = plain.delta();
  const std::uint64_t target = 2 * delta + 5;
  plain.run_to_height(target);

  Observability obs;
  obs.tracer.enable(true);
  sim::PoxConfig traced_config = config;
  traced_config.obs = &obs;
  sim::PoxExperiment traced(traced_config);
  traced.run_to_height(target);
  traced.emit_trace_summary();

  EXPECT_EQ(plain.reference().head(), traced.reference().head());
  EXPECT_EQ(plain.main_chain_producers(), traced.main_chain_producers());
  EXPECT_EQ(plain.elapsed(), traced.elapsed());
  EXPECT_EQ(plain.per_epoch_frequency_variance(),
            traced.per_epoch_frequency_variance());
  EXPECT_GT(obs.tracer.size(), 0u);
  EXPECT_GT(obs.counters.counters().at("gossip.deliveries"), 0u);
}

TEST(ObsDeterminism, ProfilingScopesRecordHotPaths) {
  Observability obs;
  sim::PoxConfig config;
  config.algorithm = core::Algorithm::kThemis;
  config.n_nodes = 20;
  config.beta = 2.0;
  config.seed = 5;
  config.obs = &obs;
  sim::PoxExperiment exp(config);
  exp.run_to_height(exp.delta());
  const auto& scopes = obs.profiler.scopes();
  ASSERT_TRUE(scopes.contains("consensus.mine_block"));
  ASSERT_TRUE(scopes.contains("consensus.update_head"));
  EXPECT_GT(scopes.at("consensus.mine_block").calls, 0u);
  EXPECT_GT(scopes.at("consensus.update_head").calls, 0u);
}

}  // namespace
}  // namespace themis::obs
