#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace themis {
namespace {

TEST(Bytes, HexEncodeEmpty) { EXPECT_EQ(to_hex(Bytes{}), ""); }

TEST(Bytes, HexEncodeKnown) {
  EXPECT_EQ(to_hex(Bytes{0x00, 0x01, 0xab, 0xff}), "0001abff");
}

TEST(Bytes, HexDecodeKnown) {
  EXPECT_EQ(from_hex("0001abff"), (Bytes{0x00, 0x01, 0xab, 0xff}));
}

TEST(Bytes, HexDecodeUppercase) {
  EXPECT_EQ(from_hex("ABFF"), (Bytes{0xab, 0xff}));
}

TEST(Bytes, HexRoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(Bytes, HexDecodeOddLengthThrows) {
  EXPECT_THROW(from_hex("abc"), PreconditionError);
}

TEST(Bytes, HexDecodeBadCharThrows) {
  EXPECT_THROW(from_hex("zz"), PreconditionError);
  EXPECT_THROW(from_hex("0g"), PreconditionError);
}

TEST(Bytes, Hash32FromHex) {
  const std::string hex(64, 'a');
  const Hash32 h = hash_from_hex(hex);
  EXPECT_EQ(to_hex(h), hex);
}

TEST(Bytes, Hash32FromHexWrongLengthThrows) {
  EXPECT_THROW(hash_from_hex("abcd"), PreconditionError);
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  EXPECT_TRUE(equal_ct(a, b));
  EXPECT_FALSE(equal_ct(a, c));
}

TEST(Bytes, ConstantTimeEqualSizeMismatch) {
  EXPECT_FALSE(equal_ct(Bytes{1}, Bytes{1, 2}));
}

TEST(Bytes, BytesOf) {
  EXPECT_EQ(bytes_of("ab"), (Bytes{'a', 'b'}));
  EXPECT_TRUE(bytes_of("").empty());
}

TEST(Bytes, HasherDeterministic) {
  Hash32 h{};
  h[0] = 0x12;
  h[7] = 0x34;
  Hash32Hasher hasher;
  EXPECT_EQ(hasher(h), hasher(h));
  Hash32 other = h;
  other[0] = 0x13;
  EXPECT_NE(hasher(h), hasher(other));
}

}  // namespace
}  // namespace themis
