// Test helper: build block trees by hand (no mining, no signatures) so
// fork-choice and difficulty tests can express scenarios like the paper's
// Fig. 2 directly.
#pragma once

#include <map>
#include <string>

#include "common/check.h"
#include "ledger/blocktree.h"

namespace themis::test {

class TreeBuilder {
 public:
  TreeBuilder() {
    names_["g"] = std::make_shared<const ledger::Block>(ledger::Block::genesis());
  }

  /// Add a block named `name` extending `parent_name` (insertion order is the
  /// local receipt order).  Timestamps default to 1 second per height.
  ledger::BlockPtr add(const std::string& name, const std::string& parent_name,
                       ledger::NodeId producer, double difficulty = 1.0,
                       std::int64_t timestamp_nanos = -1,
                       std::vector<ledger::Transaction> txs = {}) {
    auto block = make(name, parent_name, producer, difficulty, timestamp_nanos,
                      std::move(txs));
    const auto result = tree_.insert(block);
    expects(result == ledger::BlockTree::InsertResult::inserted,
            "test block failed to insert");
    return block;
  }

  /// Build a block named `name` WITHOUT inserting it, so tests can replay
  /// arbitrary (out-of-order, orphaning) arrival sequences via insert().
  /// The parent only needs to be built, not inserted.
  ledger::BlockPtr make(const std::string& name, const std::string& parent_name,
                        ledger::NodeId producer, double difficulty = 1.0,
                        std::int64_t timestamp_nanos = -1,
                        std::vector<ledger::Transaction> txs = {}) {
    const ledger::BlockPtr parent = get(parent_name);
    ledger::BlockHeader h;
    h.height = parent->height() + 1;
    h.prev = parent->id();
    h.producer = producer;
    h.difficulty = difficulty;
    h.nonce = next_nonce_++;
    h.timestamp_nanos = timestamp_nanos >= 0
                            ? timestamp_nanos
                            : static_cast<std::int64_t>(h.height) * 1'000'000'000;
    h.tx_count = static_cast<std::uint32_t>(txs.size());
    auto block = std::make_shared<const ledger::Block>(h, crypto::Signature{},
                                                       std::move(txs));
    expects(!names_.contains(name), "duplicate block name");
    names_[name] = block;
    return block;
  }

  /// Insert a previously make()-built block (receipt order = insertion
  /// order; the tree may buffer it as an orphan).
  ledger::BlockTree::InsertResult insert(const std::string& name) {
    return tree_.insert(get(name));
  }

  ledger::BlockPtr get(const std::string& name) const {
    const auto it = names_.find(name);
    expects(it != names_.end(), "unknown block name");
    return it->second;
  }

  ledger::BlockHash hash(const std::string& name) const { return get(name)->id(); }

  ledger::BlockTree& tree() { return tree_; }
  const ledger::BlockTree& tree() const { return tree_; }

 private:
  ledger::BlockTree tree_;
  std::map<std::string, ledger::BlockPtr> names_;
  std::uint64_t next_nonce_ = 1;
};

}  // namespace themis::test
