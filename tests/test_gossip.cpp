#include "net/gossip.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/check.h"
#include "obs/observability.h"

namespace themis::net {
namespace {

LinkConfig fast_link() {
  return LinkConfig{.bandwidth_bps = 20e6, .min_delay = SimTime::millis(100)};
}

struct Harness {
  explicit Harness(std::size_t n, std::size_t fanout = 3)
      : network(sim, fast_link(), n, fanout, /*topology_seed=*/42),
        deliveries(n, 0) {
    for (PeerId i = 0; i < n; ++i) {
      network.set_handler(i, [this](PeerId self, const Message& msg) {
        ++deliveries[self];
        last_type = msg.type;
        last_payload = msg.payload;
      });
    }
  }

  Simulation sim;
  GossipNetwork network;
  std::vector<int> deliveries;
  std::uint32_t last_type = 0;
  std::any last_payload;
};

TEST(Gossip, BroadcastReachesEveryNode) {
  Harness h(20);
  h.network.broadcast(0, /*type=*/7, /*size=*/100, std::string("hi"));
  h.sim.run();
  for (PeerId i = 1; i < 20; ++i) {
    EXPECT_EQ(h.deliveries[i], 1) << "node " << i;
  }
  // The origin does not deliver to itself.
  EXPECT_EQ(h.deliveries[0], 0);
  EXPECT_EQ(h.last_type, 7u);
}

TEST(Gossip, HandlerFiresOncePerMessageDespiteDuplicates) {
  Harness h(10, /*fanout=*/5);
  h.network.broadcast(3, 1, 50, 0);
  h.sim.run();
  for (PeerId i = 0; i < 10; ++i) {
    EXPECT_LE(h.deliveries[i], 1) << "node " << i;
  }
}

TEST(Gossip, PayloadTravelsIntact) {
  Harness h(4);
  h.network.broadcast(0, 1, 10, std::string("payload!"));
  h.sim.run();
  EXPECT_EQ(std::any_cast<std::string>(h.last_payload), "payload!");
}

TEST(Gossip, TwoBroadcastsAreIndependent) {
  Harness h(10);
  h.network.broadcast(0, 1, 10, 0);
  h.network.broadcast(5, 1, 10, 0);
  h.sim.run();
  for (PeerId i = 0; i < 10; ++i) {
    const int expected = (i == 0 || i == 5) ? 1 : 2;
    EXPECT_EQ(h.deliveries[i], expected) << "node " << i;
  }
}

TEST(Gossip, UnicastDeliversOnlyToTarget) {
  Harness h(6);
  h.network.send(0, 4, 9, 64, std::string("direct"));
  h.sim.run();
  for (PeerId i = 0; i < 6; ++i) {
    EXPECT_EQ(h.deliveries[i], i == 4 ? 1 : 0) << "node " << i;
  }
}

TEST(Gossip, UnicastRespectsPropagationDelay) {
  Harness h(2);
  SimTime arrival;
  h.network.set_handler(1, [&](PeerId, const Message&) { arrival = h.sim.now(); });
  h.network.send(0, 1, 1, 2'500'000, 0);  // 1 s transmission
  h.sim.run();
  EXPECT_EQ(arrival, SimTime::seconds(1.0) + SimTime::millis(100));
}

TEST(Gossip, DropFilterSuppressesDelivery) {
  Harness h(8);
  // Drop everything originating from node 2's links.
  h.network.set_drop_filter(
      [](PeerId from, PeerId, const Message&) { return from == 2; });
  h.network.broadcast(2, 1, 10, 0);
  h.sim.run();
  for (PeerId i = 0; i < 8; ++i) EXPECT_EQ(h.deliveries[i], 0);
}

TEST(Gossip, DropFilterCanTargetSpecificEdges) {
  Harness h(2);
  h.network.set_drop_filter(
      [](PeerId, PeerId to, const Message&) { return to == 1; });
  h.network.send(0, 1, 1, 10, 0);
  h.sim.run();
  EXPECT_EQ(h.deliveries[1], 0);
}

TEST(Gossip, TopologyIsConnectedAndSymmetric) {
  Harness h(50, 4);
  for (PeerId i = 0; i < 50; ++i) {
    for (const PeerId peer : h.network.peers(i)) {
      const auto& back = h.network.peers(peer);
      EXPECT_TRUE(std::find(back.begin(), back.end(), i) != back.end())
          << i << "<->" << peer;
    }
    EXPECT_GE(h.network.peers(i).size(), 2u);
  }
}

TEST(Gossip, LargerFanoutSpreadsFaster) {
  auto propagation_time = [](std::size_t fanout) {
    Harness h(64, fanout);
    SimTime last;
    for (PeerId i = 0; i < 64; ++i) {
      h.network.set_handler(i, [&, i](PeerId, const Message&) {
        last = std::max(last, h.sim.now());
      });
    }
    h.network.broadcast(0, 1, 1000, 0);
    h.sim.run();
    return last;
  };
  EXPECT_LE(propagation_time(8), propagation_time(2));
}

TEST(Gossip, MessageCountersAdvance) {
  Harness h(5);
  EXPECT_EQ(h.network.messages_delivered(), 0u);
  h.network.broadcast(0, 1, 10, 0);
  h.sim.run();
  EXPECT_GE(h.network.messages_delivered(), 4u);
  EXPECT_GT(h.network.links().total_bytes_sent(), 0u);
}

// Delivery accounting on a hand-computable topology: fanout=1 with n=4
// yields the pure ring 0-1-2-3-0 (the i -> i+1 connectivity floor only).  A
// broadcast from node 0 floods both ways around the ring:
//   0->1, 0->3  (origin pushes to both neighbours)
//   1->2        (first receipt at 1, relayed away from 0)
//   3->2        (first receipt at 3, relayed away from 0)
//   2->3        (2 hears 1's copy first, relays to its other neighbour)
// = 5 deliveries, of which 3->2 and 2->3 find a node that has already seen
// the message: 2 duplicate drops, redundant-push ratio 2/5.
TEST(Gossip, AccountingMatchesHandComputedRing) {
  Harness h(4, /*fanout=*/1);
  for (PeerId i = 0; i < 4; ++i) {
    ASSERT_EQ(h.network.peers(i).size(), 2u) << "ring degree, node " << i;
  }
  obs::Observability obs;
  h.sim.set_obs(&obs);

  h.network.broadcast(0, /*type=*/1, /*size=*/100, 0);
  h.sim.run();

  EXPECT_EQ(h.network.messages_delivered(), 5u);
  EXPECT_EQ(h.network.duplicates_dropped(), 2u);
  EXPECT_DOUBLE_EQ(h.network.redundant_push_ratio(), 2.0 / 5.0);
  for (PeerId i = 1; i < 4; ++i) EXPECT_EQ(h.deliveries[i], 1) << i;

  // Per-link byte counters: exactly the five directed sends, 100 bytes each.
  const auto& links = obs.counters.links();
  ASSERT_EQ(links.size(), 5u);
  const std::pair<PeerId, PeerId> expected_links[] = {
      {0, 1}, {0, 3}, {1, 2}, {3, 2}, {2, 3}};
  for (const auto& [from, to] : expected_links) {
    const auto it = links.find({from, to});
    ASSERT_NE(it, links.end()) << from << "->" << to;
    EXPECT_EQ(it->second.messages, 1u) << from << "->" << to;
    EXPECT_EQ(it->second.bytes, 100u) << from << "->" << to;
  }
}

TEST(Gossip, RedundantPushRatioIsZeroBeforeTraffic) {
  Harness h(4, 1);
  EXPECT_EQ(h.network.redundant_push_ratio(), 0.0);
  EXPECT_EQ(h.network.duplicates_dropped(), 0u);
}

TEST(Gossip, RejectsInvalidConstruction) {
  Simulation sim;
  EXPECT_THROW(GossipNetwork(sim, fast_link(), 1, 2, 1), PreconditionError);
  EXPECT_THROW(GossipNetwork(sim, fast_link(), 4, 0, 1), PreconditionError);
}

TEST(Gossip, InvalidNodeIdsThrow) {
  Harness h(3);
  EXPECT_THROW(h.network.broadcast(3, 1, 1, 0), PreconditionError);
  EXPECT_THROW(h.network.send(0, 9, 1, 1, 0), PreconditionError);
  EXPECT_THROW(h.network.peers(7), PreconditionError);
}

}  // namespace
}  // namespace themis::net
