// Selfish mining (Eyal-Sirer) against the three fork-choice rules (§V-B).
#include "sim/selfish_miner.h"

#include <gtest/gtest.h>

#include "core/geost.h"
#include "metrics/equality.h"

namespace themis::sim {
namespace {

using consensus::GhostRule;
using consensus::LongestChainRule;
using consensus::PowNode;
using core::GeostRule;

struct Scenario {
  /// `q` is the attacker's share of total power; honest power is uniform.
  Scenario(std::shared_ptr<consensus::ForkChoiceRule> rule, double q,
           std::uint64_t seed = 21, std::size_t n_honest = 9)
      : n_total(n_honest + 1),
        network(sim, net::LinkConfig{20e6, SimTime::millis(100)}, n_total, 3,
                seed) {
    const double honest_power = 1.0;
    const double attacker_power =
        q / (1.0 - q) * honest_power * static_cast<double>(n_honest);
    const double total = honest_power * static_cast<double>(n_honest) +
                         attacker_power;
    const double difficulty = 4.0 * total;  // I_0 = 4 s
    auto policy = std::make_shared<consensus::FixedDifficulty>(difficulty);

    for (ledger::NodeId i = 0; i < n_honest; ++i) {
      consensus::NodeConfig nc;
      nc.id = i;
      nc.n_nodes = n_total;
      nc.hash_rate = honest_power;
      nc.rng_seed = seed * 100 + i;
      honest.push_back(std::make_unique<PowNode>(sim, network, nc, rule, policy));
    }
    SelfishMinerConfig ac;
    ac.id = static_cast<ledger::NodeId>(n_honest);
    ac.n_nodes = n_total;
    ac.hash_rate = attacker_power;
    ac.rng_seed = seed * 31 + 5;
    attacker = std::make_unique<SelfishMiner>(sim, network, ac, rule, policy);

    for (auto& node : honest) node->start();
    attacker->start();
  }

  /// Attacker's share of the honest view's main chain.
  double revenue_share() {
    const auto chain = honest[0]->main_chain();
    std::vector<ledger::NodeId> producers;
    for (std::size_t i = 1; i < chain.size(); ++i) {
      producers.push_back(honest[0]->tree().block(chain[i])->producer());
    }
    const auto counts = metrics::producer_counts(producers, n_total);
    return static_cast<double>(counts[n_total - 1]) /
           static_cast<double>(producers.size());
  }

  std::size_t n_total;
  net::Simulation sim;
  net::GossipNetwork network;
  std::vector<std::unique_ptr<PowNode>> honest;
  std::unique_ptr<SelfishMiner> attacker;
};

TEST(SelfishMiner, MinesAndWithholds) {
  Scenario s(std::make_shared<LongestChainRule>(), 0.35);
  s.sim.run_until(SimTime::seconds(600.0));
  EXPECT_GT(s.attacker->blocks_mined(), 0u);
  EXPECT_GT(s.attacker->blocks_revealed() + s.attacker->blocks_discarded() +
                s.attacker->withheld(),
            0u);
}

TEST(SelfishMiner, HonestChainStillGrows) {
  Scenario s(std::make_shared<GhostRule>(), 0.3);
  s.sim.run_until(SimTime::seconds(800.0));
  EXPECT_GT(s.honest[0]->head_height(), 100u);
}

TEST(SelfishMiner, ProfitsAboveFairShareUnderLongestChain) {
  // The classic result: with q = 0.40 > 1/3, SM1 beats honest mining under
  // the longest-chain rule (revenue share > q even at gamma ~ 0).
  Scenario s(std::make_shared<LongestChainRule>(), 0.40, /*seed=*/5);
  s.sim.run_until(SimTime::seconds(6000.0));
  EXPECT_GT(s.revenue_share(), 0.40);
}

TEST(SelfishMiner, MinorityAttackerCannotTakeOverGeost) {
  Scenario s(std::make_shared<GeostRule>(10), 0.25, /*seed=*/6);
  s.sim.run_until(SimTime::seconds(3000.0));
  // The attacker cannot push its share anywhere near majority.
  EXPECT_LT(s.revenue_share(), 0.40);
}

class SelfishRuleComparison : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelfishRuleComparison, WeightRulesBluntTheAttackVsLongest) {
  const std::uint64_t seed = GetParam();
  Scenario longest(std::make_shared<LongestChainRule>(), 0.33, seed);
  Scenario geost(std::make_shared<GeostRule>(10), 0.33, seed);
  longest.sim.run_until(SimTime::seconds(3000.0));
  geost.sim.run_until(SimTime::seconds(3000.0));
  // §V-B / Fig. 2: GHOST-family rules alleviate selfish mining; the attacker
  // never does better under GEOST than under longest-chain (a small slack
  // absorbs sampling noise).
  EXPECT_LE(geost.revenue_share(), longest.revenue_share() + 0.05)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfishRuleComparison, ::testing::Values(1, 2, 3));

TEST(SelfishMiner, RevealedBlocksValidateOnHonestNodes) {
  Scenario s(std::make_shared<GhostRule>(), 0.3, 9);
  s.sim.run_until(SimTime::seconds(1500.0));
  // Honest nodes rejected nothing: the attacker's blocks carry correct
  // difficulties for the chain they extend.
  for (const auto& node : s.honest) {
    EXPECT_EQ(node->blocks_rejected(), 0u);
  }
  // And some attacker blocks actually landed in the shared history.
  EXPECT_GT(s.revenue_share(), 0.0);
}

}  // namespace
}  // namespace themis::sim
