// Edge-case coverage for the epoll-reactor HttpServer: partial writes under
// a full socket buffer, client half-close mid-request and mid-keep-alive,
// pipelined requests, hostile request heads/bodies, and a concurrent client
// storm (the TSan target for the reactor/worker/completion handoff).
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "p2p/socket.h"
#include "rpc/http_client.h"
#include "rpc/http_server.h"

namespace themis::rpc {
namespace {

using namespace std::chrono_literals;

ByteSpan as_bytes(const std::string& s) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

/// Echo server: responds with the request body (or a canned body for GET).
class HttpReactorTest : public ::testing::Test {
 protected:
  void start_server(HttpServerConfig config) {
    server_ = std::make_unique<HttpServer>(
        config, [this](const HttpRequest& request) {
          handled_.fetch_add(1);
          HttpResponse response;
          response.body = request.body.empty() ? std::string("{\"ok\":true}")
                                               : request.body;
          return response;
        });
    ASSERT_TRUE(server_->start());
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  p2p::TcpSocket connect_raw() {
    p2p::TcpSocket s =
        p2p::TcpSocket::connect("127.0.0.1", server_->port(), 2000);
    EXPECT_TRUE(s.valid());
    s.set_timeouts(2000, 2000);
    return s;
  }

  static std::string post_request(const std::string& body,
                                  bool keep_alive = true) {
    std::string out = "POST / HTTP/1.1\r\nHost: test\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n";
    if (!keep_alive) out += "Connection: close\r\n";
    out += "\r\n";
    out += body;
    return out;
  }

  /// Read until the connection closes or `deadline` passes.
  static std::string read_until_closed(p2p::TcpSocket& s) {
    std::string reply;
    std::uint8_t buf[4096];
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      const int n = s.recv_some(buf, sizeof(buf));
      if (n > 0) {
        reply.append(reinterpret_cast<const char*>(buf),
                     static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0 || n == -2) break;  // closed / hard error
    }
    return reply;
  }

  /// Read exactly one response (headers + Content-Length body).
  static std::string read_one_response(p2p::TcpSocket& s, std::string& carry) {
    std::uint8_t buf[4096];
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      const std::size_t head_end = carry.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::string head = carry.substr(0, head_end);
        std::size_t body_len = 0;
        const std::size_t cl = head.find("Content-Length: ");
        if (cl != std::string::npos) {
          body_len = static_cast<std::size_t>(
              std::stoul(head.substr(cl + std::strlen("Content-Length: "))));
        }
        if (carry.size() >= head_end + 4 + body_len) {
          std::string response = carry.substr(0, head_end + 4 + body_len);
          carry.erase(0, head_end + 4 + body_len);
          return response;
        }
      }
      const int n = s.recv_some(buf, sizeof(buf));
      if (n > 0) {
        carry.append(reinterpret_cast<const char*>(buf),
                     static_cast<std::size_t>(n));
      } else if (n == 0 || n == -2) {
        break;
      }
    }
    return {};
  }

  std::unique_ptr<HttpServer> server_;
  std::atomic<int> handled_{0};
};

// A response far larger than the kernel's combined socket buffering forces
// the reactor through its partial-write path (send_some -1 → EPOLLOUT →
// resume): while the client sits on the bytes the server MUST hit a full
// buffer mid-response, and the whole body must still arrive intact.
// (Deliberately does not shrink SO_RCVBUF post-connect — that triggers TCP
// zero-window persist-timer stalls, a kernel pathology, not a server one.)
TEST_F(HttpReactorTest, PartialWritesSurviveFullSocketBuffer) {
  HttpServerConfig config;
  config.max_body_bytes = 32 << 20;
  start_server(config);

  const std::string big(24 << 20, 'q');  // 24 MiB round trip
  p2p::TcpSocket s = connect_raw();
  ASSERT_TRUE(s.send_all(as_bytes(post_request(big, /*keep_alive=*/false))));

  std::this_thread::sleep_for(200ms);  // let the server hit a full buffer
  const std::string reply = read_until_closed(s);
  ASSERT_TRUE(reply.starts_with("HTTP/1.1 200")) << reply.substr(0, 64);
  const std::size_t body_at = reply.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(reply.substr(body_at + 4), big);
}

TEST_F(HttpReactorTest, HalfCloseMidRequestDropsTheConnection) {
  start_server(HttpServerConfig{});

  // Half-close with only a partial head on the wire: there is nothing the
  // server can answer, so the connection should just go away.
  p2p::TcpSocket s = connect_raw();
  const std::string partial = "POST / HTTP/1.1\r\nContent-Le";
  ASSERT_TRUE(s.send_all(as_bytes(partial)));
  ::shutdown(s.fd(), SHUT_WR);
  EXPECT_EQ(read_until_closed(s), "");

  // Same with a complete head but a truncated body.
  p2p::TcpSocket t = connect_raw();
  const std::string truncated =
      "POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-part";
  ASSERT_TRUE(t.send_all(as_bytes(truncated)));
  ::shutdown(t.fd(), SHUT_WR);
  EXPECT_EQ(read_until_closed(t), "");
  EXPECT_EQ(handled_.load(), 0);
}

TEST_F(HttpReactorTest, HalfCloseAfterCompleteRequestStillGetsItsResponse) {
  start_server(HttpServerConfig{});

  p2p::TcpSocket s = connect_raw();
  ASSERT_TRUE(s.send_all(as_bytes(post_request("{\"n\":1}"))));
  ::shutdown(s.fd(), SHUT_WR);  // FIN after a complete request
  const std::string reply = read_until_closed(s);
  EXPECT_TRUE(reply.starts_with("HTTP/1.1 200")) << reply.substr(0, 64);
  EXPECT_NE(reply.find("{\"n\":1}"), std::string::npos);
  EXPECT_EQ(handled_.load(), 1);
}

// Two requests in a single write: the server must answer both, in order, on
// the same connection (the second waits buffered while the first is in
// flight).
TEST_F(HttpReactorTest, PipelinedKeepAliveRequestsAreAnsweredInOrder) {
  start_server(HttpServerConfig{});

  p2p::TcpSocket s = connect_raw();
  const std::string wire = post_request("{\"seq\":1}") +
                           post_request("{\"seq\":2}") +
                           post_request("{\"seq\":3}");
  ASSERT_TRUE(s.send_all(as_bytes(wire)));

  std::string carry;
  for (int seq = 1; seq <= 3; ++seq) {
    const std::string response = read_one_response(s, carry);
    ASSERT_TRUE(response.starts_with("HTTP/1.1 200")) << "seq " << seq;
    EXPECT_NE(response.find("{\"seq\":" + std::to_string(seq) + "}"),
              std::string::npos)
        << response;
  }
  EXPECT_EQ(handled_.load(), 3);
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_EQ(server_->stats().requests, 3u);
}

// The hostile-input cases test_rpc exercises through the gateway, replayed
// against the raw server: each must produce the right status and close.
TEST_F(HttpReactorTest, HostileHeadsAndBodiesGet400And413) {
  HttpServerConfig config;
  config.max_head_bytes = 1024;
  config.max_body_bytes = 2048;
  start_server(config);

  struct Case {
    std::string wire;
    std::string expect_status;
  };
  const Case cases[] = {
      {"???\r\n\r\n", "HTTP/1.1 400"},
      {"GET\r\n\r\n", "HTTP/1.1 400"},
      {"GET / HTTP/9.9\r\n\r\n", "HTTP/1.1 400"},
      {"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", "HTTP/1.1 400"},
      {"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", "HTTP/1.1 400"},
      {"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", "HTTP/1.1 413"},
      // Head larger than max_head_bytes, no terminator in sight.
      {"GET / HTTP/1.1\r\nX-Pad: " + std::string(2000, 'a'),
       "HTTP/1.1 400"},
  };
  for (const Case& c : cases) {
    p2p::TcpSocket s = connect_raw();
    ASSERT_TRUE(s.send_all(as_bytes(c.wire)));
    const std::string reply = read_until_closed(s);
    EXPECT_TRUE(reply.starts_with(c.expect_status))
        << "wire " << c.wire.substr(0, 40) << " got " << reply.substr(0, 40);
  }
  EXPECT_EQ(handled_.load(), 0);
  EXPECT_GE(server_->stats().bad_requests, 6u);
  EXPECT_GE(server_->stats().oversized_bodies, 1u);
}

TEST_F(HttpReactorTest, ConnectionCapSheds503) {
  HttpServerConfig config;
  config.max_connections = 2;
  start_server(config);

  // Fill the cap with two idle keep-alive connections.
  p2p::TcpSocket a = connect_raw();
  p2p::TcpSocket b = connect_raw();
  ASSERT_TRUE(a.send_all(as_bytes(post_request("{}"))));
  std::string carry_a;
  ASSERT_FALSE(read_one_response(a, carry_a).empty());

  p2p::TcpSocket c = connect_raw();
  const std::string reply = read_until_closed(c);
  EXPECT_TRUE(reply.starts_with("HTTP/1.1 503")) << reply.substr(0, 64);
  EXPECT_GE(server_->stats().rejected_busy, 1u);
}

// A connection that trickles its request slower than recv_timeout_ms must be
// swept; an idle keep-alive connection must NOT be.
TEST_F(HttpReactorTest, SlowlorisIsDroppedIdleKeepAliveIsNot) {
  HttpServerConfig config;
  config.recv_timeout_ms = 300;
  start_server(config);

  // Idle keep-alive: complete one request, then sit silent past the budget.
  p2p::TcpSocket idle = connect_raw();
  ASSERT_TRUE(idle.send_all(as_bytes(post_request("{}"))));
  std::string carry;
  ASSERT_FALSE(read_one_response(idle, carry).empty());

  // Slowloris: half a request head, then stall.
  p2p::TcpSocket slow = connect_raw();
  ASSERT_TRUE(slow.send_all(as_bytes(std::string("POST / HT"))));

  std::this_thread::sleep_for(700ms);

  // The stalled connection is gone...
  std::uint8_t buf[64];
  EXPECT_EQ(slow.recv_some(buf, sizeof(buf)), 0);
  // ...while the idle keep-alive one still answers.
  ASSERT_TRUE(idle.send_all(as_bytes(post_request("{\"again\":true}"))));
  const std::string second = read_one_response(idle, carry);
  EXPECT_TRUE(second.starts_with("HTTP/1.1 200")) << second.substr(0, 64);
}

// Many clients hammering keep-alive connections concurrently: the TSan
// workout for reactor <-> worker-pool <-> completion-queue handoffs.
TEST_F(HttpReactorTest, ConcurrentKeepAliveStorm) {
  HttpServerConfig config;
  config.workers = 4;
  start_server(config);

  constexpr int kClients = 8;
  constexpr int kRequests = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kRequests; ++i) {
        const std::string body =
            "{\"client\":" + std::to_string(c) +
            ",\"i\":" + std::to_string(i) + "}";
        const auto result = client.post("/", body);
        if (result && result->status == 200 && result->body == body) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(server_->stats().requests,
            static_cast<std::uint64_t>(kClients * kRequests));
}

}  // namespace
}  // namespace themis::rpc
