// End-to-end transaction-pipeline acceptance: submit -> pool -> relay ->
// block -> state, over real sockets and real PoW.
//
// The headline scenario is the issue's acceptance criterion: four nodes with
// RPC enabled form a loopback network; client threads submit a thousand
// transfers to ONE node over HTTP; the transactions relay to every node, get
// mined, and all four converge on heads whose ledger state matches a
// sequential oracle replay of the main chain.  One node is killed mid-run
// and must catch up (blocks AND confirmed transactions) after restarting
// from its datadir.  Timeouts are generous for TSan (~10x slowdown).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "obs/live/stage_tracker.h"
#include "p2p/node.h"
#include "rpc/gateway.h"
#include "rpc/http_client.h"
#include "rpc/http_server.h"
#include "rpc/json.h"
#include "state/ledger_state.h"

namespace themis::rpc {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr double kTestDifficulty = 6000.0;
constexpr std::size_t kNodes = 4;    // running consensus nodes
constexpr std::size_t kClients = 4;  // client threads = extra accounts
constexpr std::size_t kMembers = kNodes + kClients;  // consortium size
constexpr std::uint64_t kPerClient = 250;  // 4 x 250 = 1000 transfers

class TxPipeIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("themis_txpipe_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_);
    nodes_.resize(kNodes);
    gateways_.resize(kNodes);
    servers_.resize(kNodes);
  }

  void TearDown() override {
    for (std::size_t i = 0; i < servers_.size(); ++i) stop_node(i);
    fs::remove_all(root_);
  }

  /// Start node `id` (consensus + RPC), dialing every live node.
  p2p::P2pNode* start_node(std::size_t id, bool mine = true) {
    p2p::P2pNodeConfig config;
    config.id = static_cast<ledger::NodeId>(id);
    config.n_nodes = kMembers;
    config.listen_port = 0;
    config.datadir = root_ / ("node" + std::to_string(id));
    config.difficulty = kTestDifficulty;
    config.mine = mine;
    config.rng_seed = 2000 + id;
    config.ping_interval_ms = 500;
    config.backoff_initial_ms = 50;
    config.backoff_max_ms = 500;
    for (const auto& node : nodes_) {
      if (node) {
        config.peers.push_back("127.0.0.1:" +
                               std::to_string(node->listen_port()));
      }
    }
    nodes_[id] = std::make_unique<p2p::P2pNode>(std::move(config));
    EXPECT_TRUE(nodes_[id]->start());

    gateways_[id] = std::make_unique<Gateway>(*nodes_[id]);
    HttpServerConfig http;
    http.port = 0;
    Gateway* gateway = gateways_[id].get();
    servers_[id] = std::make_unique<HttpServer>(
        http, [gateway](const HttpRequest& r) { return gateway->handle(r); });
    EXPECT_TRUE(servers_[id]->start());
    return nodes_[id].get();
  }

  void stop_node(std::size_t id) {
    if (servers_[id]) servers_[id]->stop();
    servers_[id].reset();
    gateways_[id].reset();
    if (nodes_[id]) nodes_[id]->stop();
    nodes_[id].reset();
  }

  std::vector<p2p::P2pNode*> live_nodes() {
    std::vector<p2p::P2pNode*> out;
    for (auto& node : nodes_) {
      if (node) out.push_back(node.get());
    }
    return out;
  }

  static bool wait_until(std::function<bool()> pred,
                         std::chrono::seconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(20ms);
    }
    return pred();
  }

  static bool heads_equal(const std::vector<p2p::P2pNode*>& nodes) {
    for (const p2p::P2pNode* node : nodes) {
      if (node->head() != nodes.front()->head()) return false;
    }
    return true;
  }

  /// Pause mining and wait for heads to settle; resume briefly on ties
  /// (same strategy as the p2p integration suite).  `settled` adds an extra
  /// condition the paused network must satisfy before convergence counts —
  /// e.g. "every transfer is confirmed on the common chain".  Without it, a
  /// reorg racing the pause can freeze the network with reorg-returned
  /// transactions stranded in the pools.
  static bool converge(const std::vector<p2p::P2pNode*>& nodes,
                       std::chrono::seconds timeout,
                       const std::function<bool()>& settled = {}) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      for (p2p::P2pNode* node : nodes) node->set_mining(false);
      if (wait_until(
              [&] { return heads_equal(nodes) && (!settled || settled()); },
              5s)) {
        return true;
      }
      for (p2p::P2pNode* node : nodes) node->set_mining(true);
      std::this_thread::sleep_for(100ms);
    }
    return false;
  }

  /// One JSON-RPC call; empty optional on transport failure.
  static std::optional<Json> call(HttpClient& client,
                                  const std::string& method, Json params) {
    Json request;
    request.set("jsonrpc", "2.0");
    request.set("id", 1);
    request.set("method", method);
    request.set("params", std::move(params));
    const auto result = client.post("/", request.dump());
    if (!result.has_value()) return std::nullopt;
    return Json::parse(result->body);
  }

  fs::path root_;
  std::vector<std::unique_ptr<p2p::P2pNode>> nodes_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  std::vector<std::unique_ptr<HttpServer>> servers_;
};

TEST_F(TxPipeIntegrationTest, SubmittedTxRelaysConfirmsEverywhere) {
  // Two-node smoke: a transfer submitted to node 0 must confirm and be
  // visible (state + status) on node 1, which never saw the RPC call.
  for (std::size_t i = 0; i < 2; ++i) start_node(i);
  auto nodes = std::vector<p2p::P2pNode*>{nodes_[0].get(), nodes_[1].get()};
  ASSERT_TRUE(wait_until([&] { return nodes[0]->ready_peer_count() == 1; },
                         30s));

  HttpClient client("127.0.0.1", servers_[0]->port());
  Json params;
  params.set("sender", std::uint64_t{kNodes});  // a client account
  params.set("to", std::uint64_t{1});
  params.set("amount", std::uint64_t{123});
  const auto response = call(client, "submit_tx", std::move(params));
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->has("result")) << (*response).dump();
  const ledger::TxId id =
      hash_from_hex((*response)["result"]["id"].as_string());

  ASSERT_TRUE(wait_until(
      [&] {
        for (p2p::P2pNode* node : nodes) {
          if (node->tx_status(id).state !=
              p2p::P2pNode::TxStatusInfo::State::confirmed) {
            return false;
          }
        }
        return true;
      },
      240s))
      << "transfer must confirm on both nodes";

  // Node 1 answers balance queries reflecting the transfer.
  HttpClient other("127.0.0.1", servers_[1]->port());
  ASSERT_TRUE(wait_until(
      [&] {
        return nodes[1]->account_info(1).balance ==
               nodes[1]->config().genesis_fund + 123;
      },
      60s));
  Json account;
  account.set("account", std::uint64_t{kNodes});
  const auto balance = call(other, "get_balance", std::move(account));
  ASSERT_TRUE(balance.has_value());
  EXPECT_EQ((*balance)["result"]["balance"].as_string(),
            std::to_string(nodes[1]->config().genesis_fund - 123));
}

TEST_F(TxPipeIntegrationTest, StageStampsAreMonotoneAcrossTwoNodes) {
  // Lifecycle tracing: a confirmed transfer must carry stage timestamps
  // (submitted -> verified -> pooled -> included -> confirmed) that never go
  // backwards, on the node that admitted it AND on the node that only saw it
  // relayed (which may legitimately skip early stages).
  if (!obs::live::kTelemetryEnabled) {
    GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  }
  for (std::size_t i = 0; i < 2; ++i) start_node(i);
  auto nodes = std::vector<p2p::P2pNode*>{nodes_[0].get(), nodes_[1].get()};
  ASSERT_TRUE(wait_until([&] { return nodes[0]->ready_peer_count() == 1; },
                         30s));

  HttpClient client("127.0.0.1", servers_[0]->port());
  Json params;
  params.set("sender", std::uint64_t{kNodes});
  params.set("to", std::uint64_t{2});
  params.set("amount", std::uint64_t{5});
  const auto response = call(client, "submit_tx", std::move(params));
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->has("result")) << (*response).dump();
  const std::string id_hex = (*response)["result"]["id"].as_string();
  const ledger::TxId id = hash_from_hex(id_hex);

  ASSERT_TRUE(wait_until(
      [&] {
        for (p2p::P2pNode* node : nodes) {
          if (node->tx_status(id).state !=
              p2p::P2pNode::TxStatusInfo::State::confirmed) {
            return false;
          }
        }
        return true;
      },
      240s))
      << "transfer must confirm on both nodes";

  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const auto stamps = nodes[n]->stage_tracker().stamps(id);
    ASSERT_TRUE(stamps.has_value()) << "node " << n << " lost the stamps";
    // The confirmed stage must be stamped everywhere; earlier stages only
    // where the node actually crossed them.
    EXPECT_NE((*stamps)[static_cast<std::size_t>(
                  obs::live::TxStage::confirmed)],
              0u)
        << "node " << n;
    std::uint64_t last = 0;
    for (std::size_t s = 0; s < obs::live::kTxStageCount; ++s) {
      if ((*stamps)[s] == 0) continue;
      EXPECT_GE((*stamps)[s], last)
          << "node " << n << ": stage " << s << " stamped before stage "
          << s - 1;
      last = (*stamps)[s];
    }
  }
  // The admitting node crossed every stage in person.
  const auto full = nodes[0]->stage_tracker().stamps(id);
  for (std::size_t s = 0; s < obs::live::kTxStageCount; ++s) {
    EXPECT_NE((*full)[s], 0u) << "stage " << s << " missing on the admitter";
  }

  // The RPC surface exposes the same stamps per transaction.
  Json query;
  query.set("id", id_hex);
  const auto status = call(client, "get_tx", std::move(query));
  ASSERT_TRUE(status.has_value());
  const Json& stages = (*status)["result"]["stages"];
  ASSERT_TRUE(stages.is_object()) << (*status).dump();
  std::uint64_t last = 0;
  for (const char* name :
       {"submitted", "verified", "pooled", "included", "confirmed"}) {
    ASSERT_TRUE(stages[name].is_number()) << name;
    EXPECT_GE(stages[name].as_u64(), last) << name;
    last = stages[name].as_u64();
  }
}

TEST_F(TxPipeIntegrationTest, ThousandTransfersKillOneNodeOracleBalances) {
  for (std::size_t i = 0; i < kNodes; ++i) start_node(i);
  ASSERT_TRUE(wait_until(
      [&] {
        for (p2p::P2pNode* node : live_nodes()) {
          if (node->ready_peer_count() < kNodes - 1) return false;
        }
        return true;
      },
      60s));

  // Client threads: account (kNodes + c) sends kPerClient transfers of 1 to
  // node c, all through node 0's RPC endpoint.  Distinct senders keep nonce
  // sequences independent; submitting in nonce order keeps every admission
  // inside the window.
  const std::uint16_t rpc_port = servers_[0]->port();
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<bool> submit_failed{false};
  std::vector<ledger::TxId> ids(kClients * kPerClient);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client("127.0.0.1", rpc_port);
      for (std::uint64_t n = 1; n <= kPerClient; ++n) {
        Json params;
        params.set("sender", static_cast<std::uint64_t>(kNodes + c));
        params.set("to", static_cast<std::uint64_t>(c));
        params.set("amount", std::uint64_t{1});
        params.set("nonce", n);
        const auto response = call(client, "submit_tx", std::move(params));
        if (!response.has_value() || !response->has("result")) {
          submit_failed.store(true);
          return;
        }
        ids[c * kPerClient + (n - 1)] =
            hash_from_hex((*response)["result"]["id"].as_string());
        accepted.fetch_add(1);
      }
    });
  }

  // Kill node 3 mid-run: it must later recover the chain — and the
  // transactions it missed — from its datadir plus range sync.
  ASSERT_TRUE(wait_until(
      [&] { return accepted.load() >= kClients * kPerClient / 3; }, 120s));
  stop_node(3);

  for (auto& t : clients) t.join();
  ASSERT_FALSE(submit_failed.load());
  ASSERT_EQ(accepted.load(), kClients * kPerClient);

  // Every transfer confirms on the submitting node.
  ASSERT_TRUE(wait_until(
      [&] {
        for (const ledger::TxId& id : ids) {
          if (nodes_[0]->tx_status(id).state !=
              p2p::P2pNode::TxStatusInfo::State::confirmed) {
            return false;
          }
        }
        return true;
      },
      300s))
      << "all 1000 transfers must confirm";

  // Restart node 3; it replays its store and syncs the blocks it missed.
  p2p::P2pNode* revived = start_node(3, /*mine=*/false);
  EXPECT_GE(revived->chain_stats().store_replayed, 1u);

  // Converge on a chain that carries EVERY transfer.  The confirmation
  // snapshot above is transient — a reorg right after it returns transactions
  // to the pools, and pausing mining at that moment would freeze a chain
  // missing them — so keep mining until the settled chain confirms all 1000
  // on every node.
  const auto all_confirmed = [&] {
    for (p2p::P2pNode* node : live_nodes()) {
      for (const ledger::TxId& id : ids) {
        if (node->tx_status(id).state !=
            p2p::P2pNode::TxStatusInfo::State::confirmed) {
          return false;
        }
      }
    }
    return true;
  };
  ASSERT_TRUE(converge(live_nodes(), 300s, all_confirmed))
      << "final convergence";
  const auto nodes = live_nodes();
  ASSERT_EQ(nodes.size(), kNodes);

  // The revived node carries the confirmed transactions too.
  for (const ledger::TxId& id : ids) {
    EXPECT_EQ(revived->tx_status(id).state,
              p2p::P2pNode::TxStatusInfo::State::confirmed)
        << "revived node missing a confirmed tx";
  }

  // Sequential oracle: replay node 0's main chain over the genesis
  // allocation and require every node's RPC balances to match it exactly.
  const std::uint64_t fund = nodes_[0]->config().genesis_fund;
  state::LedgerState oracle;
  for (std::size_t i = 0; i < kMembers; ++i) {
    oracle.fund(static_cast<ledger::NodeId>(i), fund);
  }
  for (std::uint64_t h = 1; h <= nodes_[0]->head_height(); ++h) {
    const auto info = nodes_[0]->block_info_at(h);
    ASSERT_TRUE(info.has_value());
    oracle.apply_block(*info->block);
  }
  // The oracle must show every transfer applied exactly once.
  for (std::size_t c = 0; c < kClients; ++c) {
    const auto sender = static_cast<ledger::NodeId>(kNodes + c);
    EXPECT_EQ(oracle.account(sender).balance, fund - kPerClient);
    EXPECT_EQ(oracle.account(sender).next_nonce, kPerClient + 1);
    EXPECT_EQ(oracle.balance(static_cast<ledger::NodeId>(c)),
              fund + kPerClient);
  }

  for (std::size_t i = 0; i < kNodes; ++i) {
    HttpClient client("127.0.0.1", servers_[i]->port());
    for (std::size_t a = 0; a < kMembers; ++a) {
      Json params;
      params.set("account", static_cast<std::uint64_t>(a));
      const auto response = call(client, "get_balance", std::move(params));
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ((*response)["result"]["balance"].as_string(),
                oracle.balance(static_cast<ledger::NodeId>(a)).to_decimal())
          << "node " << i << " account " << a;
      EXPECT_EQ((*response)["result"]["next_nonce"].as_u64(),
                oracle.account(static_cast<ledger::NodeId>(a)).next_nonce)
          << "node " << i << " account " << a;
    }
  }

  // Pipeline bookkeeping: no node may have lost or double-applied anything.
  for (p2p::P2pNode* node : nodes) {
    const auto stats = node->chain_stats();
    EXPECT_EQ(stats.txs_purged, 0u) << "no conflicting nonces were submitted";
  }
}

}  // namespace
}  // namespace themis::rpc
