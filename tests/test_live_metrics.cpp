// Tests for the live-node telemetry layer (obs/live): lock-free registry
// primitives, Prometheus text exposition, structured logging and the
// tx-lifecycle stage tracker.
//
// The concurrency storm tests are the reason this file exists: they run the
// exact hot-path pattern the daemon uses (many bumping threads, one scraping
// thread) and are expected to pass under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "obs/live/log.h"
#include "obs/live/prometheus.h"
#include "obs/live/registry.h"
#include "obs/live/stage_tracker.h"

namespace live = themis::obs::live;
using themis::Hash32;

namespace {

Hash32 make_id(std::uint8_t first, std::uint8_t second = 0) {
  Hash32 id{};
  id[0] = first;
  id[1] = second;
  return id;
}

/// Restore the global logger to its quiet default when a test exits.
struct LoggerGuard {
  ~LoggerGuard() {
    live::Logger& logger = live::Logger::global();
    logger.set_level(live::LogLevel::off);
    logger.set_json(false);
    logger.set_sink(nullptr);
  }
};

}  // namespace

// --- counters and gauges ----------------------------------------------------

TEST(LiveCounter, IncrementsAndReads) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.get(), 42u);
}

TEST(LiveGauge, SetAndAdd) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.get(), 7);
}

// --- histogram --------------------------------------------------------------

TEST(LiveHistogram, BucketIndexBoundaries) {
  // Bucket i covers (1024 << (i-1), 1024 << i] nanoseconds.
  EXPECT_EQ(live::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(live::Histogram::bucket_index(1), 0u);
  EXPECT_EQ(live::Histogram::bucket_index(1024), 0u);
  EXPECT_EQ(live::Histogram::bucket_index(1025), 1u);
  EXPECT_EQ(live::Histogram::bucket_index(2048), 1u);
  EXPECT_EQ(live::Histogram::bucket_index(2049), 2u);
  EXPECT_EQ(live::Histogram::bucket_index(live::Histogram::bound_ns(7)), 7u);
  EXPECT_EQ(live::Histogram::bucket_index(live::Histogram::bound_ns(7) + 1),
            8u);
  // Far beyond the last finite bound: clamps into the overflow bucket.
  EXPECT_EQ(live::Histogram::bucket_index(~std::uint64_t{0} / 2),
            live::Histogram::kBuckets - 1);
}

TEST(LiveHistogram, SnapshotCountsAndMean) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Histogram h;
  h.record_ns(1000);    // bucket 0
  h.record_ns(2000);    // bucket 1
  h.record_ns(300000);  // bucket 9 (262144 < 300000 <= 524288)
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.sum_ns, 303000u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[9], 1u);
  EXPECT_DOUBLE_EQ(snap.mean_ns(), 101000.0);
}

TEST(LiveHistogram, QuantileInterpolatesInsideBucket) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Histogram h;
  for (int i = 0; i < 100; ++i) h.record_ns(1500);  // all in bucket 1
  const auto snap = h.snapshot();
  const double p50 = snap.quantile_ns(0.50);
  // The estimate must land inside bucket 1's range (1024, 2048].
  EXPECT_GT(p50, 1024.0);
  EXPECT_LE(p50, 2048.0);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.quantile_ns(0.50), snap.quantile_ns(0.99));
}

TEST(LiveHistogram, QuantileEmptyIsZero) {
  live::Histogram h;
  EXPECT_EQ(h.snapshot().quantile_ns(0.99), 0.0);
}

// --- registry ---------------------------------------------------------------

TEST(LiveRegistry, FindOrCreateReturnsStableReference) {
  live::Registry r;
  live::Counter& a = r.counter("test_total", "help text");
  live::Counter& b = r.counter("test_total", "ignored on re-register");
  EXPECT_EQ(&a, &b);
  live::Histogram& h1 = r.histogram("test_seconds", "");
  live::Histogram& h2 = r.histogram("test_seconds", "");
  EXPECT_EQ(&h1, &h2);
}

TEST(LiveRegistry, SamplesInRegistrationOrder) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  r.counter("first_total", "").inc(1);
  r.counter("second_total", "").inc(2);
  const auto samples = r.counter_samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "first_total");
  EXPECT_EQ(samples[0].value, 1u);
  EXPECT_EQ(samples[1].name, "second_total");
  EXPECT_EQ(samples[1].value, 2u);
}

TEST(LiveRegistry, GaugeFnEvaluatedAtScrape) {
  live::Registry r;
  std::atomic<int> depth{5};
  r.gauge_fn("depth", "", [&depth] { return static_cast<double>(depth.load()); });
  EXPECT_EQ(r.gauge_samples().back().value, 5.0);
  depth = 9;
  EXPECT_EQ(r.gauge_samples().back().value, 9.0);
}

TEST(LiveRegistry, FamilyOfStripsLabels) {
  EXPECT_EQ(live::family_of("plain_total"), "plain_total");
  EXPECT_EQ(live::family_of("rpc_total{method=\"submit_tx\"}"), "rpc_total");
}

// --- Prometheus exposition --------------------------------------------------

TEST(Prometheus, GoldenCounterAndGauge) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  r.counter("themis_txs_total", "Transactions seen.").inc(42);
  r.gauge("themis_pool_depth", "Pending transactions.").set(7);
  const std::string text = live::render_prometheus(r);
  EXPECT_EQ(text,
            "# HELP themis_txs_total Transactions seen.\n"
            "# TYPE themis_txs_total counter\n"
            "themis_txs_total 42\n"
            "# HELP themis_pool_depth Pending transactions.\n"
            "# TYPE themis_pool_depth gauge\n"
            "themis_pool_depth 7\n");
}

TEST(Prometheus, LabeledSamplesShareOneFamilyHeader) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  r.counter("rpc_total{method=\"a\"}", "Requests.").inc(1);
  r.counter("rpc_total{method=\"b\"}", "Requests.").inc(2);
  const std::string text = live::render_prometheus(r);
  // HELP/TYPE once, then both labeled samples.
  EXPECT_EQ(text.find("# TYPE rpc_total counter"),
            text.rfind("# TYPE rpc_total counter"));
  EXPECT_NE(text.find("rpc_total{method=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_total{method=\"b\"} 2\n"), std::string::npos);
}

TEST(Prometheus, HistogramExposition) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::Histogram& h = r.histogram("lat_seconds", "Latency.");
  h.record_ns(1000);  // bucket 0, bound 1024ns = 1.024e-06 s
  const std::string text = live::render_prometheus(r);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1.024e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 1e-06\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1\n"), std::string::npos);
  // Cumulative buckets: every bucket line carries the full count by the end.
  std::size_t bucket_lines = 0;
  for (std::size_t pos = text.find("lat_seconds_bucket");
       pos != std::string::npos;
       pos = text.find("lat_seconds_bucket", pos + 1)) {
    ++bucket_lines;
  }
  EXPECT_EQ(bucket_lines, live::Histogram::kBuckets);
}

// --- structured logging -----------------------------------------------------

TEST(LiveLog, LevelGateSuppressesBelowThreshold) {
  LoggerGuard guard;
  std::ostringstream sink;
  live::Logger& logger = live::Logger::global();
  logger.set_sink(&sink);
  logger.set_level(live::LogLevel::warn);
  live::log_info("test", "should not appear");
  live::log_warn("test", "should appear");
  const std::string text = sink.str();
  EXPECT_EQ(text.find("should not appear"), std::string::npos);
  EXPECT_NE(text.find("should appear"), std::string::npos);
}

TEST(LiveLog, JsonRecordShape) {
  LoggerGuard guard;
  std::ostringstream sink;
  live::Logger& logger = live::Logger::global();
  logger.set_sink(&sink);
  logger.set_level(live::LogLevel::info);
  logger.set_json(true);
  live::log_info("p2p", "peer ready",
                 {{"node", std::uint64_t{3}}, {"ok", true}, {"name", "a\"b"}});
  const std::string line = sink.str();
  EXPECT_EQ(line.find("{\"ts\":\""), 0u);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"p2p\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"peer ready\""), std::string::npos);
  EXPECT_NE(line.find("\"node\":3"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  // Quote inside a value is escaped, keeping the line valid JSON.
  EXPECT_NE(line.find("\"name\":\"a\\\"b\""), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(LiveLog, HumanRecordShape) {
  LoggerGuard guard;
  std::ostringstream sink;
  live::Logger& logger = live::Logger::global();
  logger.set_sink(&sink);
  logger.set_level(live::LogLevel::debug);
  live::log_error("miner", "boom", {{"height", std::uint64_t{9}}});
  const std::string line = sink.str();
  EXPECT_NE(line.find("ERROR [miner] boom height=9"), std::string::npos);
}

TEST(LiveLog, ParseLevelNames) {
  EXPECT_EQ(live::log_level_from("debug"), live::LogLevel::debug);
  EXPECT_EQ(live::log_level_from("warn"), live::LogLevel::warn);
  EXPECT_EQ(live::log_level_from("error"), live::LogLevel::error);
  EXPECT_EQ(live::log_level_from("off"), live::LogLevel::off);
  EXPECT_EQ(live::log_level_from("bogus"), live::LogLevel::info);
}

// --- stage tracker ----------------------------------------------------------

TEST(StageTracker, StampsAreMonotoneAndFeedTransitions) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::StageTracker tracker(r);
  const Hash32 id = make_id(1);
  tracker.stamp(id, live::TxStage::submitted);
  tracker.stamp(id, live::TxStage::verified);
  tracker.stamp(id, live::TxStage::pooled);
  tracker.stamp(id, live::TxStage::included);
  tracker.stamp(id, live::TxStage::confirmed);

  const auto stamps = tracker.stamps(id);
  ASSERT_TRUE(stamps.has_value());
  for (std::size_t s = 0; s < live::kTxStageCount; ++s) {
    ASSERT_NE((*stamps)[s], 0u) << "stage " << s << " never stamped";
    if (s > 0) {
      EXPECT_LE((*stamps)[s - 1], (*stamps)[s])
          << "stage " << s << " stamped before its predecessor";
    }
  }

  // One sample per transition histogram, plus the end-to-end one.
  for (const auto& h : r.histogram_samples()) {
    EXPECT_EQ(h.snap.total, 1u) << h.name;
  }
}

TEST(StageTracker, FirstArrivalWins) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::StageTracker tracker(r);
  const Hash32 id = make_id(2);
  tracker.stamp(id, live::TxStage::submitted);
  const auto first = tracker.stamps(id);
  tracker.stamp(id, live::TxStage::submitted);  // re-stamp: ignored
  const auto second = tracker.stamps(id);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*first)[0], (*second)[0]);
}

TEST(StageTracker, SkippedStageMeasuresFromLatestEarlier) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::StageTracker tracker(r);
  const Hash32 id = make_id(3);
  // A relayed block can include a tx this node never verified or pooled.
  tracker.stamp(id, live::TxStage::submitted);
  tracker.stamp(id, live::TxStage::included);
  for (const auto& h : r.histogram_samples()) {
    if (h.name == "themis_tx_stage_inclusion_seconds") {
      EXPECT_EQ(h.snap.total, 1u);  // measured submitted -> included
    } else if (h.name == "themis_tx_stage_verify_seconds" ||
               h.name == "themis_tx_stage_pool_seconds") {
      EXPECT_EQ(h.snap.total, 0u);  // stages never reached
    }
  }
}

TEST(StageTracker, StampWithNoPredecessorRecordsNoLatency) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::StageTracker tracker(r);
  // e.g. a block arrives carrying a tx the node has never seen at all.
  tracker.stamp(make_id(4), live::TxStage::included);
  for (const auto& h : r.histogram_samples()) {
    EXPECT_EQ(h.snap.total, 0u) << h.name;
  }
}

TEST(StageTracker, EvictsOldestWhenFull) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::StageTracker tracker(r, /*capacity=*/16);  // 1 entry per shard
  const Hash32 older = make_id(5, 1);
  const Hash32 newer = make_id(5, 2);  // same first byte -> same shard
  tracker.stamp(older, live::TxStage::submitted);
  tracker.stamp(newer, live::TxStage::submitted);
  EXPECT_FALSE(tracker.stamps(older).has_value());
  EXPECT_TRUE(tracker.stamps(newer).has_value());
}

// --- concurrency storms (ThreadSanitizer targets) ---------------------------

TEST(LiveRegistryStorm, ConcurrentBumpsWithConcurrentScrapes) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::Counter& counter = r.counter("storm_total", "");
  live::Gauge& gauge = r.gauge("storm_gauge", "");
  live::Histogram& histogram = r.histogram("storm_seconds", "");

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    // Scrape continuously while writers hammer: must be race-free and the
    // totals must only grow.
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      live::render_prometheus(r);
      const auto samples = r.counter_samples();
      ASSERT_FALSE(samples.empty());
      EXPECT_GE(samples[0].value, last);
      last = samples[0].value;
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.inc();
        gauge.set(i);
        histogram.record_ns(static_cast<std::uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter.get(), std::uint64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(histogram.snapshot().total, std::uint64_t{kThreads} * kOpsPerThread);
}

TEST(StageTrackerStorm, ConcurrentStampsAcrossShards) {
  if (!live::kTelemetryEnabled) GTEST_SKIP() << "THEMIS_MIN_TELEMETRY build";
  live::Registry r;
  live::StageTracker tracker(r);
  constexpr int kThreads = 8;
  constexpr int kTxPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxPerThread; ++i) {
        Hash32 id = make_id(static_cast<std::uint8_t>(i & 0xff),
                            static_cast<std::uint8_t>(t));
        id[2] = static_cast<std::uint8_t>(i >> 8);
        tracker.stamp(id, live::TxStage::submitted);
        tracker.stamp(id, live::TxStage::verified);
        tracker.stamp(id, live::TxStage::pooled);
        tracker.stamp(id, live::TxStage::included);
        tracker.stamp(id, live::TxStage::confirmed);
      }
    });
  }
  for (auto& w : workers) w.join();
  constexpr std::uint64_t kTotal =
      std::uint64_t{kThreads} * kTxPerThread;
  EXPECT_EQ(tracker.stamped(), kTotal * live::kTxStageCount);
  for (const auto& h : r.histogram_samples()) {
    EXPECT_EQ(h.snap.total, kTotal) << h.name;
  }
}
