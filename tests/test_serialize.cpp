#include "common/serialize.h"

#include <gtest/gtest.h>

#include <limits>

namespace themis {
namespace {

TEST(Serialize, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.buffer(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Serialize, DoubleRoundTrip) {
  for (double v : {0.0, 1.5, -3.25, 1e300, -1e-300,
                   std::numeric_limits<double>::infinity()}) {
    Writer w;
    w.f64(v);
    Reader r(w.buffer());
    EXPECT_EQ(r.f64(), v);
  }
}

TEST(Serialize, VarintSmall) {
  Writer w;
  w.varint(0);
  w.varint(1);
  w.varint(127);
  Reader r(w.buffer());
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 1u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(w.buffer().size(), 3u);  // each fits one byte
}

TEST(Serialize, VarintBoundaries) {
  const std::uint64_t cases[] = {127, 128, 16383, 16384,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.buffer());
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(Serialize, VarintMaxUsesTenBytes) {
  Writer w;
  w.varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w.size(), 10u);
}

TEST(Serialize, BytesAndStringsRoundTrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.str("");
  Reader r(w.buffer());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, HashRoundTrip) {
  Hash32 h{};
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = static_cast<std::uint8_t>(i);
  Writer w;
  w.hash(h);
  Reader r(w.buffer());
  EXPECT_EQ(r.hash(), h);
}

TEST(Serialize, ReadPastEndThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW(r.u16(), DecodeError);
}

TEST(Serialize, TruncatedLengthPrefixThrows) {
  Writer w;
  w.varint(100);  // claims 100 bytes follow
  w.raw(Bytes{1, 2});
  Reader r(w.buffer());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Serialize, ExpectDoneCatchesTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serialize, UnterminatedVarintThrows) {
  const Bytes bad(11, 0x80);  // continuation bit never clears
  Reader r(bad);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Serialize, RemainingTracksPosition) {
  Writer w;
  w.u32(1);
  Reader r(w.buffer());
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Serialize, TakeMovesBuffer) {
  Writer w;
  w.u8(9);
  const Bytes b = w.take();
  EXPECT_EQ(b, Bytes{9});
}

}  // namespace
}  // namespace themis
