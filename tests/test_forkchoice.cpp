#include "consensus/forkchoice.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tree_builder.h"

namespace themis::consensus {
namespace {

using test::TreeBuilder;

TEST(ForkChoice, SingleChainFollowedToLeaf) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  b.add("c", "b", 2);
  LongestChainRule longest;
  GhostRule ghost;
  EXPECT_EQ(longest.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("c"));
  EXPECT_EQ(ghost.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("c"));
}

TEST(ForkChoice, StartMustBeInTree) {
  TreeBuilder b;
  LongestChainRule rule;
  ledger::BlockHash bogus{};
  bogus[0] = 0x99;
  EXPECT_THROW(rule.choose_head(b.tree(), bogus), PreconditionError);
}

TEST(ForkChoice, WalkCanStartMidChain) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  LongestChainRule rule;
  EXPECT_EQ(rule.choose_head(b.tree(), b.hash("a")), b.hash("b"));
  EXPECT_EQ(rule.choose_head(b.tree(), b.hash("b")), b.hash("b"));
}

TEST(SubtreeMaxHeight, Computed) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("a1", "a", 1);
  b.add("a2", "a1", 2);
  b.add("x", "g", 3);
  EXPECT_EQ(subtree_max_height(b.tree(), b.hash("a")), 3u);
  EXPECT_EQ(subtree_max_height(b.tree(), b.hash("x")), 1u);
}

TEST(LongestChain, PrefersDeeperSubtree) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("a1", "a", 1);
  b.add("x", "g", 2);
  b.add("x1", "x", 3);
  b.add("x2", "x1", 4);
  LongestChainRule rule;
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("x2"));
}

TEST(LongestChain, TieBreaksByFirstReceived) {
  TreeBuilder b;
  b.add("first", "g", 0);
  b.add("second", "g", 1);
  LongestChainRule rule;
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("first"));
}

TEST(LongestChain, IgnoresWeightWhenDepthsDiffer) {
  TreeBuilder b;
  // Heavy bushy branch of depth 2 vs light chain of depth 3.
  b.add("h", "g", 0);
  b.add("h1", "h", 1);
  b.add("h2", "h", 2);
  b.add("h3", "h", 3);
  b.add("l", "g", 4);
  b.add("l1", "l", 5);
  b.add("l2", "l1", 6);
  LongestChainRule rule;
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("l2"));
}

TEST(Ghost, PrefersHeavierSubtree) {
  TreeBuilder b;
  b.add("h", "g", 0);
  b.add("h1", "h", 1);
  b.add("h2", "h", 2);
  b.add("h3", "h", 3);
  b.add("l", "g", 4);
  b.add("l1", "l", 5);
  b.add("l2", "l1", 6);
  GhostRule rule;
  const auto head = rule.choose_head(b.tree(), b.tree().genesis_hash());
  // GHOST descends into the heavy subtree and ends at one of its leaves.
  EXPECT_TRUE(b.tree().is_ancestor(b.hash("h"), head));
}

TEST(Ghost, TieBreaksByFirstReceived) {
  TreeBuilder b;
  b.add("first", "g", 0);
  b.add("second", "g", 1);
  b.add("f1", "first", 2);
  b.add("s1", "second", 3);
  GhostRule rule;
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("f1"));
}

TEST(Ghost, RecoversAfterWeightShift) {
  TreeBuilder b;
  b.add("a", "g", 0);
  b.add("x", "g", 1);
  GhostRule rule;
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("a"));
  // Two blocks land on x's subtree: it becomes heavier.
  b.add("x1", "x", 2);
  b.add("x2", "x1", 3);
  EXPECT_EQ(rule.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("x2"));
}

TEST(Ghost, SelfishMinedLongChainDoesNotOutweighBushyHonest) {
  TreeBuilder b;
  // Honest: bushy subtree with 5 blocks (depth 3).  Attacker: private chain
  // of 4 blocks (depth 4).  Longest chain flips to the attacker; GHOST holds.
  b.add("h1", "g", 0);
  b.add("h2a", "h1", 1);
  b.add("h2b", "h1", 2);
  b.add("h3a", "h2a", 3);
  b.add("h3b", "h2a", 4);
  b.add("att1", "g", 9);
  b.add("att2", "att1", 9);
  b.add("att3", "att2", 9);
  b.add("att4", "att3", 9);
  GhostRule ghost;
  LongestChainRule longest;
  EXPECT_TRUE(b.tree().is_ancestor(
      b.hash("h1"), ghost.choose_head(b.tree(), b.tree().genesis_hash())));
  EXPECT_EQ(longest.choose_head(b.tree(), b.tree().genesis_hash()),
            b.hash("att4"));
}

TEST(ForkChoice, NamesAreStable) {
  EXPECT_EQ(LongestChainRule().name(), "longest-chain");
  EXPECT_EQ(GhostRule().name(), "ghost");
}

}  // namespace
}  // namespace themis::consensus
