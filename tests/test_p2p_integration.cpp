// Loopback network integration: real sockets, real PoW, durable stores.
//
// The headline scenario mirrors the issue's acceptance criterion: four
// in-process nodes on ephemeral ports mine at low difficulty until they
// converge on one head; one node is killed; the survivors mine past its
// head; the node restarts from its datadir, replays its store, re-syncs
// past the head it missed and resumes mining.
//
// Convergence strategy: fork-choice ties (equal-weight subtrees) are broken
// by *local* receipt order, so two nodes can legitimately disagree while
// mining is paused on a tie.  The helper therefore pauses mining, waits for
// announcements to settle, and briefly resumes mining when heads still
// differ — the next block breaks the tie.  Timeouts are generous because CI
// runs this under TSan (~10x slowdown).
#include "p2p/node.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "finality/aggregation.h"
#include "state/authstate/merkle_state.h"
#include "state/transfer.h"

namespace themis::p2p {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr double kTestDifficulty = 6000.0;  // ~instant native, ok under TSan

class P2pIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("themis_p2p_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_);
  }
  void TearDown() override {
    for (auto& node : nodes_) {
      if (node) node->stop();
    }
    nodes_.clear();
    fs::remove_all(root_);
  }

  P2pNodeConfig base_config(std::size_t id, std::size_t n_nodes) {
    P2pNodeConfig config;
    config.id = static_cast<ledger::NodeId>(id);
    config.n_nodes = n_nodes;
    config.listen_port = 0;  // ephemeral
    config.datadir = root_ / ("node" + std::to_string(id));
    config.difficulty = kTestDifficulty;
    config.rng_seed = 1000 + id;
    config.ping_interval_ms = 500;
    config.backoff_initial_ms = 50;
    config.backoff_max_ms = 500;
    config.checkpoint_interval = ckpt_interval_;
    config.finality_backend = finality_backend_;
    return config;
  }

  /// Start a node dialing every node already started.
  P2pNode* start_node(std::size_t id, std::size_t n_nodes, bool mine = true) {
    P2pNodeConfig config = base_config(id, n_nodes);
    config.mine = mine;
    for (const auto& node : nodes_) {
      if (!node) continue;
      config.peers.push_back("127.0.0.1:" +
                             std::to_string(node->listen_port()));
    }
    auto node = std::make_unique<P2pNode>(std::move(config));
    if (nodes_.size() <= id) nodes_.resize(id + 1);
    nodes_[id] = std::move(node);
    EXPECT_TRUE(nodes_[id]->start());
    return nodes_[id].get();
  }

  std::vector<P2pNode*> live_nodes() {
    std::vector<P2pNode*> out;
    for (auto& node : nodes_) {
      if (node) out.push_back(node.get());
    }
    return out;
  }

  static bool wait_until(std::function<bool()> pred,
                         std::chrono::seconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(20ms);
    }
    return pred();
  }

  static bool heads_equal(const std::vector<P2pNode*>& nodes) {
    for (const P2pNode* node : nodes) {
      if (node->head() != nodes.front()->head()) return false;
    }
    return true;
  }

  /// Drive the network until every node reports the same head at height >=
  /// min_height.  Leaves mining PAUSED on success so the converged state is
  /// stable for assertions.
  static bool converge(const std::vector<P2pNode*>& nodes,
                       std::uint64_t min_height,
                       std::chrono::seconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      const bool tall_enough = [&] {
        for (const P2pNode* node : nodes) {
          if (node->head_height() < min_height) return false;
        }
        return true;
      }();
      if (!tall_enough) {
        std::this_thread::sleep_for(50ms);
        continue;
      }
      for (P2pNode* node : nodes) node->set_mining(false);
      // Mining is off: once in-flight announcements drain, heads are final.
      if (wait_until([&] { return heads_equal(nodes); }, 5s)) return true;
      // A genuine fork-choice tie: resume mining, the next block breaks it.
      for (P2pNode* node : nodes) node->set_mining(true);
      std::this_thread::sleep_for(100ms);
    }
    return false;
  }

  fs::path root_;
  std::vector<std::unique_ptr<P2pNode>> nodes_;
  /// Checkpoint-finality knobs picked up by base_config (the default 16 is
  /// taller than most tests mine, so the overlay stays out of their way).
  std::uint64_t ckpt_interval_ = 16;
  std::string finality_backend_ = "concat";
};

TEST_F(P2pIntegrationTest, TwoNodesConnectAndExchangeLiveBlocks) {
  P2pNode* a = start_node(0, 2);
  P2pNode* b = start_node(1, 2);

  ASSERT_TRUE(wait_until(
      [&] { return a->ready_peer_count() == 1 && b->ready_peer_count() == 1; },
      30s));
  ASSERT_TRUE(converge({a, b}, 3, 120s));

  EXPECT_EQ(a->head(), b->head());
  EXPECT_GE(a->head_height(), 3u);
  // Both mined and both persisted: blocks flowed in each direction.
  EXPECT_GT(a->store_blocks() + b->store_blocks(), 0u);
  const auto stats_a = a->chain_stats();
  const auto stats_b = b->chain_stats();
  EXPECT_GT(stats_a.blocks_produced + stats_b.blocks_produced, 0u);
  EXPECT_GT(stats_a.blocks_received + stats_b.blocks_received, 0u);
}

TEST_F(P2pIntegrationTest, LateJoinerCatchesUpViaRangeSync) {
  // Node 0 mines alone to height >= 6, then a non-mining node appears and
  // must catch up purely through the locator/getblocks protocol.
  P2pNode* a = start_node(0, 2);
  ASSERT_TRUE(wait_until([&] { return a->head_height() >= 6; }, 120s));
  a->set_mining(false);

  // Compare against a's live head: a block solved just as mining was paused
  // may still land after this point, so a static snapshot could go stale.
  P2pNode* b = start_node(1, 2, /*mine=*/false);
  ASSERT_TRUE(wait_until([&] { return b->head() == a->head(); }, 60s));
  EXPECT_EQ(b->head_height(), a->head_height());
  EXPECT_GE(b->head_height(), 6u);

  const auto stats = b->chain_stats();
  EXPECT_GE(stats.sync_rounds, 1u);
  EXPECT_EQ(stats.blocks_produced, 0u);
  // Everything it received is persisted for the next restart.
  EXPECT_EQ(b->store_blocks(), b->tree_blocks() - 1);  // store has no genesis
}

TEST_F(P2pIntegrationTest, FourNodesConvergeKillOneRestartAndRecover) {
  constexpr std::size_t kNodes = 4;
  for (std::size_t i = 0; i < kNodes; ++i) start_node(i, kNodes);

  // Full mesh: every node ends up with 3 ready peers.
  ASSERT_TRUE(wait_until(
      [&] {
        for (P2pNode* node : live_nodes()) {
          if (node->ready_peer_count() < kNodes - 1) return false;
        }
        return true;
      },
      60s));

  ASSERT_TRUE(converge(live_nodes(), 3, 240s)) << "initial convergence";
  const std::uint64_t killed_height = nodes_[3]->head_height();
  const auto killed_head = nodes_[3]->head();

  // Kill node 3 (clean stop; the store survives in its datadir).
  nodes_[3]->stop();
  nodes_[3].reset();

  // Survivors mine past the dead node's head.
  for (P2pNode* node : live_nodes()) node->set_mining(true);
  ASSERT_TRUE(converge(live_nodes(), killed_height + 3, 240s))
      << "survivors advancing past the killed node";
  const auto survivor_height = nodes_[0]->head_height();
  ASSERT_GT(survivor_height, killed_height);

  // Restart node 3 from its datadir, dialing the three survivors.
  P2pNode* revived = start_node(3, kNodes, /*mine=*/false);
  const auto revived_stats = revived->chain_stats();
  EXPECT_GE(revived_stats.store_replayed, killed_height)
      << "store replay must rebuild the pre-kill chain";
  EXPECT_GE(revived->head_height(), killed_height)
      << "replayed chain must reach the pre-kill head";
  EXPECT_TRUE(revived->contains(killed_head));

  // It must re-sync past the head it missed.  Converge on live heads rather
  // than waiting for a snapshot: a block solved just as the previous
  // converge() paused mining may land after the snapshot and move the
  // survivors' head (and an in-flight sibling pair can even leave them
  // tied), so only the converge helper's pause/settle/resume loop is a
  // reliable target.
  ASSERT_TRUE(converge(live_nodes(), survivor_height, 240s))
      << "revived node must catch up to the survivors";
  EXPECT_GE(revived->head_height(), survivor_height);

  // ...and rejoin mining: with everyone else paused, the next blocks are its.
  revived->set_mining(true);
  ASSERT_TRUE(wait_until(
      [&] { return revived->chain_stats().blocks_produced > 0; }, 120s))
      << "revived node must mine again";
  revived->set_mining(false);  // freeze so propagation is a stable target
  ASSERT_TRUE(wait_until(
      [&] {
        return nodes_[0]->head_height() > survivor_height &&
               heads_equal(live_nodes());
      },
      120s))
      << "revived node's blocks must propagate back to the survivors";

  // Redundant-announce accounting is live on every node.
  for (P2pNode* node : live_nodes()) {
    const double ratio = node->redundant_announce_ratio();
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
}

// Concurrent submitters share the combining-leader admission path: every
// valid transaction must come back `accepted` exactly once, a forged
// signature mixed into a batch must fail alone (per-item fallback after the
// batched check), and duplicates must be flagged.  TSan (ctest regex
// 'P2pIntegration') proves the queue/lock choreography.
TEST_F(P2pIntegrationTest, BatchAdmissionSettlesConcurrentSubmitters) {
  P2pNodeConfig config = base_config(0, 16);
  config.mine = false;
  P2pNode node(std::move(config));
  ASSERT_TRUE(node.start());

  constexpr int kSenders = 8;
  constexpr std::uint64_t kEach = 25;
  std::atomic<int> accepted{0};
  std::atomic<int> bad_sig{0};
  std::vector<std::thread> clients;
  for (int s = 0; s < kSenders; ++s) {
    clients.emplace_back([&, s] {
      for (std::uint64_t n = 1; n <= kEach; ++n) {
        auto stx = ledger::sign_transaction(
            ledger::Transaction(static_cast<ledger::NodeId>(s), n, 0, {}));
        if (s == 0 && n == kEach) {
          // One forged signature rides a batch full of valid ones.
          stx.signature.s[0] ^= 0x01;
          if (node.submit_transaction(stx) == TxAdmit::bad_signature) {
            bad_sig.fetch_add(1);
          }
        } else if (node.submit_transaction(stx) == TxAdmit::accepted) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(accepted.load(), kSenders * kEach - 1);
  EXPECT_EQ(bad_sig.load(), 1);

  // Re-submitting a pooled transaction reports `duplicate`.
  const auto dup = ledger::sign_transaction(ledger::Transaction(2, 1, 0, {}));
  EXPECT_EQ(node.submit_transaction(dup), TxAdmit::duplicate);

  const auto stats = node.chain_stats();
  EXPECT_EQ(stats.txs_accepted, static_cast<std::uint64_t>(kSenders) * kEach - 1);
  EXPECT_GE(stats.txs_rejected, 1u);   // the forgery
  EXPECT_GE(stats.txs_duplicate, 1u);  // the re-submission
  node.stop();
}

TEST_F(P2pIntegrationTest, StateRootsAgreeAcrossNodes) {
  // Deterministic state commitment: two nodes that converge on the same head
  // must report bit-identical Merkle state roots, and either node's balance
  // proof must verify against that common root.
  P2pNode* a = start_node(0, 2);
  P2pNode* b = start_node(1, 2);
  ASSERT_TRUE(wait_until(
      [&] { return a->ready_peer_count() == 1 && b->ready_peer_count() == 1; },
      30s));

  // Some transfers so the state is not just the genesis allocation.
  for (std::uint64_t n = 1; n <= 3; ++n) {
    const auto stx = ledger::sign_transaction(state::make_transfer_tx(
        0, n, static_cast<std::int64_t>(n), state::Transfer{1, 10 * n, {}}));
    ASSERT_EQ(a->submit_transaction(stx), TxAdmit::accepted);
  }
  ASSERT_TRUE(wait_until(
      [&] { return b->account_info(1).balance ==
                   UInt128(b->config().genesis_fund + 60); },
      120s))
      << "transfers must confirm on the remote node";
  ASSERT_TRUE(converge({a, b}, 3, 240s));

  ASSERT_EQ(a->head(), b->head());
  const Hash32 root_a = a->head_state_root();
  const Hash32 root_b = b->head_state_root();
  EXPECT_EQ(root_a, root_b);
  EXPECT_NE(root_a, Hash32{});

  // A proof served by either node verifies against the shared root.
  for (P2pNode* node : {a, b}) {
    const auto bp = node->balance_proof(1);
    ASSERT_TRUE(bp.available);
    EXPECT_EQ(bp.state_root, root_a);
    EXPECT_EQ(bp.account.balance, UInt128(node->config().genesis_fund + 60));
    EXPECT_TRUE(state::authstate::verify_account_proof(root_a, 1, bp.account,
                                                       bp.proof));
  }
}

TEST_F(P2pIntegrationTest, SnapshotPruneRestartServesVerifiedProofs) {
  // A snapshotting+pruning node must: write snapshots as the anchor
  // advances, prune its store below them, restart from the snapshot instead
  // of genesis replay, and keep serving balance proofs that verify.
  P2pNodeConfig config = base_config(0, 2);
  config.mine = true;
  config.finality_depth = 4;
  config.snapshot_interval = 2;
  config.prune = true;
  nodes_.resize(1);
  nodes_[0] = std::make_unique<P2pNode>(std::move(config));
  P2pNode* node = nodes_[0].get();
  ASSERT_TRUE(node->start());

  for (std::uint64_t n = 1; n <= 3; ++n) {
    const auto stx = ledger::sign_transaction(state::make_transfer_tx(
        0, n, static_cast<std::int64_t>(n), state::Transfer{1, 100, {}}));
    ASSERT_EQ(node->submit_transaction(stx), TxAdmit::accepted);
  }
  ASSERT_TRUE(wait_until(
      [&] {
        const auto stats = node->chain_stats();
        return node->head_height() >= 10 && stats.snapshots_written >= 1 &&
               stats.txs_confirmed >= 3;
      },
      240s))
      << "snapshot must be written once the anchor advances";
  node->set_mining(false);
  const auto pre = node->chain_stats();
  EXPECT_GE(pre.snapshot_height, 2u);
  EXPECT_GT(pre.blocks_pruned, 0u);
  const UInt128 expected_balance(node->config().genesis_fund + 300);
  ASSERT_TRUE(wait_until(
      [&] { return node->account_info(1).balance == expected_balance; }, 60s));

  node->stop();
  nodes_[0].reset();

  // Restart from the same datadir: the snapshot re-roots the tree, so the
  // store's pruned prefix is never needed.
  P2pNodeConfig restarted = base_config(0, 2);
  restarted.mine = false;
  restarted.finality_depth = 4;
  restarted.snapshot_interval = 2;
  restarted.prune = true;
  nodes_[0] = std::make_unique<P2pNode>(std::move(restarted));
  node = nodes_[0].get();
  ASSERT_TRUE(node->start());

  const auto stats = node->chain_stats();
  EXPECT_TRUE(stats.restored_from_snapshot);
  EXPECT_EQ(stats.snapshot_height, pre.snapshot_height);
  EXPECT_GE(node->head_height(), pre.snapshot_height);
  // Only the suffix above the snapshot was replayed.
  EXPECT_LT(stats.store_replayed, node->head_height());
  EXPECT_EQ(node->account_info(1).balance, expected_balance);

  const auto bp = node->balance_proof(1);
  ASSERT_TRUE(bp.available);
  EXPECT_EQ(bp.account.balance, expected_balance);
  EXPECT_TRUE(state::authstate::verify_account_proof(bp.state_root, 1,
                                                     bp.account, bp.proof));
}

// --- checkpoint finality over real sockets -----------------------------------

TEST_F(P2pIntegrationTest, FourNodesHardFinalizeCheckpointsEveryInterval) {
  constexpr std::size_t kNodes = 4;
  constexpr std::uint64_t kInterval = 4;
  ckpt_interval_ = kInterval;
  finality_backend_ = "half";  // exercise half-aggregation over the wire
  for (std::size_t i = 0; i < kNodes; ++i) start_node(i, kNodes);
  ASSERT_TRUE(wait_until(
      [&] {
        for (P2pNode* node : live_nodes()) {
          if (node->ready_peer_count() < kNodes - 1) return false;
        }
        return true;
      },
      60s));

  // Mine until every node has formed at least two quorum certificates and
  // hard-finalized past the second checkpoint height.  (Two certificates,
  // not just finalized >= 2k: fast mining can race the head past several
  // checkpoint boundaries before the first votes land, so the first quorum
  // ever formed may already sit above height 2k.)
  ASSERT_TRUE(wait_until(
      [&] {
        for (P2pNode* node : live_nodes()) {
          if (node->finality_info().finalized_height < 2 * kInterval ||
              node->chain_stats().ckpt_certs_formed < 2) {
            return false;
          }
        }
        return true;
      },
      240s))
      << "every node must hard-finalize checkpoints as the chain grows";
  for (P2pNode* node : live_nodes()) node->set_mining(false);

  const finality::ValidatorSet validators =
      finality::ValidatorSet::deterministic(kNodes);
  std::map<std::uint64_t, ledger::BlockHash> certified;  // height -> block
  std::uint64_t total_votes_sent = 0;
  for (P2pNode* node : live_nodes()) {
    const auto info = node->finality_info();
    EXPECT_TRUE(info.enabled);
    EXPECT_EQ(info.interval, kInterval);
    EXPECT_EQ(info.finalized_height % kInterval, 0u);
    EXPECT_EQ(info.head_height - info.finalized_height, info.lag);

    // The certificate the node finalized on (a late-syncing node may have
    // skipped straight past the first checkpoint, so ask for its own
    // finalized height): carries quorum, verifies offline against the
    // deterministic consortium keys — exactly what `themis-cli checkpoint`
    // does — and any two nodes certifying the same height name the same
    // block.
    const auto cert = node->checkpoint_certificate(info.finalized_height);
    ASSERT_TRUE(cert.has_value());
    EXPECT_EQ(cert->height, info.finalized_height);
    EXPECT_EQ(cert->backend, finality::HalfAggregation::kId);
    EXPECT_GE(cert->voters.size(), 3u);
    EXPECT_TRUE(
        finality::make_backend(cert->backend)->verify(*cert, validators));
    const auto it = certified.emplace(cert->height, cert->block).first;
    EXPECT_EQ(it->second, cert->block);
    EXPECT_TRUE(node->contains(cert->block));

    const auto stats = node->chain_stats();
    // >= rather than ==: in-flight votes may finalize a further checkpoint
    // between the finality_info() and chain_stats() snapshots.
    EXPECT_GE(stats.finalized_height, info.finalized_height);
    EXPECT_EQ(stats.finalized_height % kInterval, 0u);
    EXPECT_GE(stats.ckpt_certs_formed, 2u);
    EXPECT_GE(stats.ckpt_votes_accepted, 2u);
    total_votes_sent += stats.ckpt_votes_sent;
  }
  // Quorum is 3-of-4, so one perpetually-lagging node may never vote (every
  // checkpoint it reaches is already finalized, hence stale) — but across
  // the consortium at least a quorum's worth of votes must have been sent.
  EXPECT_GE(total_votes_sent, 3u);
}

TEST_F(P2pIntegrationTest, PartitionedMinorityCannotFinalize) {
  // Two nodes of a registered four-member consortium: their votes carry 2/4
  // of the weight, never strictly more than 2/3 — no checkpoint may
  // finalize, no matter how long their partition mines.
  ckpt_interval_ = 2;
  P2pNode* a = start_node(0, 4);
  P2pNode* b = start_node(1, 4);
  ASSERT_TRUE(wait_until(
      [&] { return a->ready_peer_count() == 1 && b->ready_peer_count() == 1; },
      30s));
  ASSERT_TRUE(converge({a, b}, 5, 240s));  // well past two checkpoint heights

  for (P2pNode* node : {a, b}) {
    const auto info = node->finality_info();
    EXPECT_TRUE(info.enabled);
    EXPECT_EQ(info.finalized_height, 0u) << "minority must not finalize";
    const auto stats = node->chain_stats();
    EXPECT_EQ(stats.ckpt_certs_formed, 0u);
    EXPECT_GE(stats.ckpt_votes_sent, 1u);      // they do vote...
    EXPECT_GE(stats.ckpt_votes_accepted, 1u);  // ...and count each other
  }
}

TEST_F(P2pIntegrationTest, ReorgBelowFinalizedRefusedOnEveryNode) {
  constexpr std::size_t kNodes = 4;
  constexpr std::uint64_t kInterval = 4;
  ckpt_interval_ = kInterval;

  // Phase 1: node 3 mines a private branch from genesis, alone.  Its solo
  // votes never reach quorum (1/4 of the weight).
  start_node(3, kNodes);
  ASSERT_TRUE(wait_until([&] { return nodes_[3]->head_height() >= 9; }, 240s));
  nodes_[3]->set_mining(false);
  const auto solo_head = nodes_[3]->head();
  EXPECT_EQ(nodes_[3]->finality_info().finalized_height, 0u);
  nodes_[3]->stop();
  nodes_[3].reset();

  // Phase 2: the majority (3 of 4) mines its own branch and hard-finalizes
  // the first checkpoint.
  for (std::size_t i = 0; i < 3; ++i) start_node(i, kNodes);
  ASSERT_TRUE(wait_until(
      [&] {
        for (P2pNode* node : live_nodes()) {
          if (node->ready_peer_count() < 2) return false;
        }
        return true;
      },
      60s));
  ASSERT_TRUE(wait_until(
      [&] {
        for (P2pNode* node : live_nodes()) {
          if (node->finality_info().finalized_height < kInterval) return false;
        }
        return true;
      },
      240s))
      << "majority must finalize its branch";
  ASSERT_TRUE(converge(live_nodes(), kInterval, 240s));

  // Phase 3: node 3 returns carrying its private branch (replayed from its
  // datadir), which diverges at genesis — below the finalized checkpoint.
  P2pNode* revived = start_node(3, kNodes, /*mine=*/false);

  // Every majority node receives the solo branch and refuses the reorg: the
  // branch diverges below hard finality, so fork choice never sees it.
  // (A block mined in-flight at converge()'s pause can still land and move
  // every majority head in lockstep, so assert branch identity — the head
  // never lands on the solo branch — rather than an exact head snapshot.)
  ASSERT_TRUE(wait_until(
      [&] {
        for (std::size_t i = 0; i < 3; ++i) {
          if (nodes_[i]->chain_stats().reorgs_refused_finality == 0) {
            return false;
          }
        }
        return true;
      },
      240s))
      << "every majority node must count the refused reorg";
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(nodes_[i]->finality_info().finalized_height, kInterval);
    EXPECT_NE(nodes_[i]->head(), solo_head)
        << "node " << i << " must keep the finalized branch";
  }

  // The returning node is pulled onto the certified branch by the retained
  // votes (quorum re-forms locally, the certificate force-switches the head
  // off its private branch — hard finality outranks its local fork choice)
  // and ends up agreeing with the majority.
  ASSERT_TRUE(wait_until(
      [&] {
        return revived->finality_info().finalized_height >= kInterval &&
               revived->head() != solo_head && heads_equal(live_nodes());
      },
      240s))
      << "returning node must force-switch onto the certified chain";
  EXPECT_TRUE(revived->contains(solo_head));  // branch kept, just dethroned
}

TEST_F(P2pIntegrationTest, ObservabilityCountersAreFilled) {
  obs::Observability obs;
  P2pNodeConfig config = base_config(0, 1);
  config.mine = true;
  P2pNode node(std::move(config));
  node.set_observability(&obs);
  ASSERT_TRUE(node.start());
  ASSERT_TRUE(wait_until([&] { return node.head_height() >= 2; }, 120s));
  node.stop();
  node.fill_observability();

  EXPECT_GE(obs.counters.counter("chain.height"), 2u);
  EXPECT_GE(obs.counters.counter("consensus.blocks_produced"), 2u);
  EXPECT_GE(obs.counters.counter("chain.store_blocks"), 2u);
}

}  // namespace
}  // namespace themis::p2p
