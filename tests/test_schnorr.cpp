#include "crypto/schnorr.h"

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::crypto {
namespace {

Hash32 msg_of(std::string_view s) { return sha256(bytes_of(s)); }

TEST(Schnorr, SignVerifyRoundTrip) {
  const Keypair kp = Keypair::from_node_id(1);
  const Hash32 m = msg_of("block header");
  EXPECT_TRUE(verify(kp.public_key(), m, kp.sign(m)));
}

TEST(Schnorr, TamperedMessageRejected) {
  const Keypair kp = Keypair::from_node_id(2);
  const Hash32 m = msg_of("original");
  const Signature sig = kp.sign(m);
  Hash32 tampered = m;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), tampered, sig));
}

TEST(Schnorr, TamperedSignatureRejected) {
  const Keypair kp = Keypair::from_node_id(3);
  const Hash32 m = msg_of("m");
  Signature sig = kp.sign(m);
  sig.s[31] ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), m, sig));
  sig = kp.sign(m);
  sig.r[0] ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), m, sig));
}

TEST(Schnorr, WrongKeyRejected) {
  const Keypair a = Keypair::from_node_id(4);
  const Keypair b = Keypair::from_node_id(5);
  const Hash32 m = msg_of("m");
  EXPECT_FALSE(verify(b.public_key(), m, a.sign(m)));
}

TEST(Schnorr, DeterministicSignatures) {
  const Keypair kp = Keypair::from_node_id(6);
  const Hash32 m = msg_of("m");
  EXPECT_EQ(kp.sign(m), kp.sign(m));
}

TEST(Schnorr, DistinctMessagesDistinctSignatures) {
  const Keypair kp = Keypair::from_node_id(7);
  EXPECT_NE(kp.sign(msg_of("a")), kp.sign(msg_of("b")));
}

TEST(Schnorr, SeedDeterminesKeypair) {
  const Hash32 seed = msg_of("seed");
  EXPECT_EQ(Keypair::from_seed(seed).public_key(),
            Keypair::from_seed(seed).public_key());
}

TEST(Schnorr, DistinctNodeIdsDistinctKeys) {
  EXPECT_NE(Keypair::from_node_id(1).public_key(),
            Keypair::from_node_id(2).public_key());
}

TEST(Schnorr, SignatureBytesRoundTrip) {
  const Keypair kp = Keypair::from_node_id(8);
  const Signature sig = kp.sign(msg_of("m"));
  const Bytes raw = sig.to_bytes();
  EXPECT_EQ(raw.size(), kSignatureSize);
  const auto decoded = Signature::from_bytes(raw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
}

TEST(Schnorr, SignatureFromBadLengthFails) {
  EXPECT_FALSE(Signature::from_bytes(Bytes(63, 0)).has_value());
  EXPECT_FALSE(Signature::from_bytes(Bytes(65, 0)).has_value());
}

TEST(Schnorr, GarbagePublicKeyRejected) {
  // A public key x-coordinate that is not on the curve.
  PublicKey bogus = UInt256(5).to_be_bytes();
  const Keypair kp = Keypair::from_node_id(9);
  const Hash32 m = msg_of("m");
  EXPECT_FALSE(verify(bogus, m, kp.sign(m)));
}

TEST(Schnorr, OversizedScalarInSignatureRejected) {
  const Keypair kp = Keypair::from_node_id(10);
  const Hash32 m = msg_of("m");
  Signature sig = kp.sign(m);
  sig.s = UInt256::max().to_be_bytes();  // >= group order
  EXPECT_FALSE(verify(kp.public_key(), m, sig));
}

TEST(SchnorrBatch, EmptyAndSingletonBatches) {
  EXPECT_TRUE(verify_batch({}));
  const Keypair kp = Keypair::from_node_id(20);
  const Hash32 m = msg_of("solo");
  EXPECT_TRUE(verify_batch({{kp.public_key(), m, kp.sign(m)}}));
  Signature bad = kp.sign(m);
  bad.s[31] ^= 1;
  EXPECT_FALSE(verify_batch({{kp.public_key(), m, bad}}));
}

TEST(SchnorrBatch, AcceptsAllValid) {
  std::vector<BatchVerifyItem> items;
  for (std::uint64_t i = 0; i < 12; ++i) {
    // Repeat signers so the lift-dedup path is exercised.
    const Keypair kp = Keypair::from_node_id(30 + (i % 3));
    Writer w;
    w.str("batch tx");
    w.u64(i);
    const Hash32 m = sha256(w.buffer());
    items.push_back({kp.public_key(), m, kp.sign(m)});
  }
  EXPECT_TRUE(verify_batch(items));
  EXPECT_TRUE(verify_batch(items, 4));  // parallel split, same verdict
}

TEST(SchnorrBatch, OneForgeryPoisonsTheBatch) {
  std::vector<BatchVerifyItem> items;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Keypair kp = Keypair::from_node_id(40 + i);
    Writer w;
    w.str("batch tx");
    w.u64(i);
    const Hash32 m = sha256(w.buffer());
    items.push_back({kp.public_key(), m, kp.sign(m)});
  }
  for (std::size_t victim : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    auto tampered = items;
    tampered[victim].sig.s[31] ^= 1;
    EXPECT_FALSE(verify_batch(tampered)) << "victim " << victim;
    EXPECT_FALSE(verify_batch(tampered, 4)) << "victim " << victim;
  }
  // A message swap (valid signature, wrong digest) must also fail.
  auto swapped = items;
  std::swap(swapped[1].msg, swapped[2].msg);
  EXPECT_FALSE(verify_batch(swapped));
}

TEST(SchnorrBatch, MalformedItemsRejected) {
  std::vector<BatchVerifyItem> items;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const Keypair kp = Keypair::from_node_id(50 + i);
    const Hash32 m = msg_of("x");
    items.push_back({kp.public_key(), m, kp.sign(m)});
  }
  auto bad_key = items;
  bad_key[2].pub = UInt256(5).to_be_bytes();  // x not on the curve
  EXPECT_FALSE(verify_batch(bad_key));
  auto bad_s = items;
  bad_s[1].sig.s = UInt256::max().to_be_bytes();  // >= group order
  EXPECT_FALSE(verify_batch(bad_s));
}

class SchnorrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchnorrSweep, ManyNodeIdentities) {
  const Keypair kp = Keypair::from_node_id(GetParam());
  const Hash32 m = msg_of("consortium block");
  const Signature sig = kp.sign(m);
  EXPECT_TRUE(verify(kp.public_key(), m, sig));
  // Cross-check: the signature must not verify under a shifted key.
  const Keypair other = Keypair::from_node_id(GetParam() + 1000);
  EXPECT_FALSE(verify(other.public_key(), m, sig));
}

INSTANTIATE_TEST_SUITE_P(NodeIds, SchnorrSweep,
                         ::testing::Values(0, 1, 2, 3, 10, 50, 99, 255, 1024));

}  // namespace
}  // namespace themis::crypto
