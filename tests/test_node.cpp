#include "consensus/node.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/themis_node.h"

namespace themis::consensus {
namespace {

net::LinkConfig paper_link() {
  return net::LinkConfig{.bandwidth_bps = 20e6, .min_delay = SimTime::millis(100)};
}

struct TwoNodeNet {
  TwoNodeNet() : network(sim, paper_link(), 2, 1, 11) {}

  NodeConfig config_for(ledger::NodeId id, double hash_rate) const {
    NodeConfig c;
    c.id = id;
    c.n_nodes = 2;
    c.hash_rate = hash_rate;
    c.rng_seed = 100 + id;
    return c;
  }

  net::Simulation sim;
  net::GossipNetwork network;
};

TEST(PowNode, RejectsBadConfig) {
  TwoNodeNet env;
  auto rule = std::make_shared<GhostRule>();
  auto policy = std::make_shared<FixedDifficulty>(10.0);
  NodeConfig c = env.config_for(2, 1.0);  // id out of range
  EXPECT_THROW(PowNode(env.sim, env.network, c, rule, policy), PreconditionError);
  c = env.config_for(0, 1.0);
  c.use_signatures = true;  // without a registry
  EXPECT_THROW(PowNode(env.sim, env.network, c, rule, policy), PreconditionError);
  EXPECT_THROW(PowNode(env.sim, env.network, env.config_for(0, 1.0), nullptr,
                       policy),
               PreconditionError);
}

TEST(PowNode, MinesAndConvergesToCommonChain) {
  TwoNodeNet env;
  auto rule = std::make_shared<GhostRule>();
  // Two nodes at 1 hash/s, difficulty 10 -> ~5 s interval overall.
  PowNode a(env.sim, env.network, env.config_for(0, 1.0), rule,
            std::make_shared<FixedDifficulty>(10.0));
  PowNode b(env.sim, env.network, env.config_for(1, 1.0), rule,
            std::make_shared<FixedDifficulty>(10.0));
  a.start();
  b.start();
  env.sim.run_until(SimTime::seconds(400.0));

  EXPECT_GT(a.head_height(), 10u);
  // Heads agree up to propagation slack: each node's chain is a prefix of the
  // other's or they share all but the tip.
  const auto chain_a = a.main_chain();
  const auto chain_b = b.main_chain();
  const std::size_t common = std::min(chain_a.size(), chain_b.size()) - 1;
  for (std::size_t i = 0; i + 1 < common; ++i) {
    EXPECT_EQ(chain_a[i], chain_b[i]) << "height " << i;
  }
  EXPECT_GT(a.blocks_produced() + b.blocks_produced(), 10u);
}

TEST(PowNode, ProductionShareTracksHashRate) {
  TwoNodeNet env;
  auto rule = std::make_shared<GhostRule>();
  // Node 0 has 3x the power of node 1 under equal difficulty (PoW-H).
  PowNode a(env.sim, env.network, env.config_for(0, 3.0), rule,
            std::make_shared<FixedDifficulty>(8.0));
  PowNode b(env.sim, env.network, env.config_for(1, 1.0), rule,
            std::make_shared<FixedDifficulty>(8.0));
  a.start();
  b.start();
  env.sim.run_until(SimTime::seconds(2000.0));

  const auto producers = [&] {
    std::vector<ledger::NodeId> out;
    const auto chain = a.main_chain();
    for (std::size_t i = 1; i < chain.size(); ++i) {
      out.push_back(a.tree().block(chain[i])->producer());
    }
    return out;
  }();
  ASSERT_GT(producers.size(), 100u);
  const double share0 =
      static_cast<double>(std::count(producers.begin(), producers.end(), 0u)) /
      static_cast<double>(producers.size());
  EXPECT_NEAR(share0, 0.75, 0.08);
}

TEST(PowNode, SuppressedProducerNeverLandsBlocks) {
  TwoNodeNet env;
  auto rule = std::make_shared<GhostRule>();
  PowNode a(env.sim, env.network, env.config_for(0, 1.0), rule,
            std::make_shared<FixedDifficulty>(10.0));
  PowNode b(env.sim, env.network, env.config_for(1, 1.0), rule,
            std::make_shared<FixedDifficulty>(10.0));
  b.set_producer_suppressed(true);
  a.start();
  b.start();
  env.sim.run_until(SimTime::seconds(500.0));

  EXPECT_GT(b.blocks_suppressed(), 0u);
  const auto chain = a.main_chain();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(a.tree().block(chain[i])->producer(), 0u) << "height " << i;
  }
  // The suppressed node still follows the chain built by the honest node.
  EXPECT_GT(b.head_height(), 5u);
}

TEST(PowNode, SignaturePathVerifies) {
  TwoNodeNet env;
  auto registry = std::make_shared<KeyRegistry>();
  registry->add(0, crypto::Keypair::from_node_id(0).public_key());
  registry->add(1, crypto::Keypair::from_node_id(1).public_key());
  auto rule = std::make_shared<GhostRule>();
  NodeConfig ca = env.config_for(0, 1.0);
  NodeConfig cb = env.config_for(1, 1.0);
  ca.use_signatures = cb.use_signatures = true;
  PowNode a(env.sim, env.network, ca, rule,
            std::make_shared<FixedDifficulty>(5.0), registry);
  PowNode b(env.sim, env.network, cb, rule,
            std::make_shared<FixedDifficulty>(5.0), registry);
  a.start();
  b.start();
  env.sim.run_until(SimTime::seconds(100.0));
  EXPECT_GT(a.head_height(), 3u);
  EXPECT_EQ(a.blocks_rejected(), 0u);
  EXPECT_EQ(b.blocks_rejected(), 0u);
}

TEST(PowNode, ForgedProducerIdRejected) {
  TwoNodeNet env;
  auto registry = std::make_shared<KeyRegistry>();
  registry->add(0, crypto::Keypair::from_node_id(0).public_key());
  // Node 1's key is deliberately *wrong* in the registry: its blocks must be
  // rejected by node 0.
  registry->add(1, crypto::Keypair::from_node_id(99).public_key());
  auto rule = std::make_shared<GhostRule>();
  NodeConfig ca = env.config_for(0, 1.0);
  NodeConfig cb = env.config_for(1, 5.0);  // node 1 mines a lot
  ca.use_signatures = cb.use_signatures = true;
  PowNode a(env.sim, env.network, ca, rule,
            std::make_shared<FixedDifficulty>(5.0), registry);
  PowNode b(env.sim, env.network, cb, rule,
            std::make_shared<FixedDifficulty>(5.0), registry);
  a.start();
  b.start();
  env.sim.run_until(SimTime::seconds(200.0));
  EXPECT_GT(a.blocks_rejected(), 0u);
  // Node 0's main chain contains only its own blocks.
  const auto chain = a.main_chain();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(a.tree().block(chain[i])->producer(), 0u);
  }
}

TEST(PowNode, StartTwiceThrows) {
  TwoNodeNet env;
  PowNode a(env.sim, env.network, env.config_for(0, 1.0),
            std::make_shared<GhostRule>(), std::make_shared<FixedDifficulty>(5.0));
  a.start();
  EXPECT_THROW(a.start(), PreconditionError);
}

TEST(PowNode, StopCancelsMining) {
  TwoNodeNet env;
  PowNode a(env.sim, env.network, env.config_for(0, 1.0),
            std::make_shared<GhostRule>(), std::make_shared<FixedDifficulty>(5.0));
  PowNode b(env.sim, env.network, env.config_for(1, 1.0),
            std::make_shared<GhostRule>(), std::make_shared<FixedDifficulty>(5.0));
  a.start();
  b.start();
  a.stop();
  b.stop();
  env.sim.run_until(SimTime::seconds(100.0));
  EXPECT_EQ(a.blocks_produced() + b.blocks_produced(), 0u);
}

TEST(PowNode, HeadListenerFires) {
  TwoNodeNet env;
  PowNode a(env.sim, env.network, env.config_for(0, 1.0),
            std::make_shared<GhostRule>(), std::make_shared<FixedDifficulty>(5.0));
  PowNode b(env.sim, env.network, env.config_for(1, 1.0),
            std::make_shared<GhostRule>(), std::make_shared<FixedDifficulty>(5.0));
  std::uint64_t calls = 0;
  a.set_head_listener([&](const PowNode& node) {
    ++calls;
    EXPECT_EQ(&node, &a);
  });
  a.start();
  b.start();
  env.sim.run_until(SimTime::seconds(100.0));
  // At least one listener call per main-chain extension (reorgs add more).
  EXPECT_GE(calls, a.head_height());
  EXPECT_GT(calls, 0u);
}

TEST(ThemisFactories, ProduceWorkingNodes) {
  net::Simulation sim;
  net::GossipNetwork network(sim, paper_link(), 4, 2, 5);
  core::AdaptiveConfig adaptive;
  adaptive.n_nodes = 4;
  adaptive.delta = 8;
  adaptive.expected_interval_s = 2.0;
  adaptive.h0 = 1.0;
  adaptive.initial_base_difficulty = 2.0 * 4.0;  // I0 * total power

  std::vector<std::unique_ptr<PowNode>> nodes;
  for (ledger::NodeId i = 0; i < 4; ++i) {
    NodeConfig c;
    c.id = i;
    c.n_nodes = 4;
    c.hash_rate = 1.0;
    c.rng_seed = 50 + i;
    switch (i % 3) {
      case 0:
        nodes.push_back(core::make_themis_node(sim, network, c, adaptive));
        break;
      case 1:
        nodes.push_back(core::make_themis_lite_node(sim, network, c, adaptive));
        break;
      default: {
        core::AdaptiveConfig powh = adaptive;
        powh.initial_base_difficulty = 8.0;
        nodes.push_back(core::make_powh_node(sim, network, c, powh));
      }
    }
  }
  for (auto& n : nodes) n->start();
  sim.run_until(SimTime::seconds(300.0));
  for (auto& n : nodes) EXPECT_GT(n->head_height(), 10u);
}

TEST(Algorithm, NamesAreStable) {
  EXPECT_EQ(core::to_string(core::Algorithm::kThemis), "Themis");
  EXPECT_EQ(core::to_string(core::Algorithm::kThemisLite), "Themis-Lite");
  EXPECT_EQ(core::to_string(core::Algorithm::kPowH), "PoW-H");
  EXPECT_EQ(core::to_string(core::Algorithm::kPbft), "PBFT");
}

}  // namespace
}  // namespace themis::consensus
