// Extended experiment-harness coverage: converged-regime metrics, the
// bootstrap regime DESIGN.md documents, PoW-H's Bitcoin-style retarget, and
// windowed fork statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "metrics/equality.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"

namespace themis::sim {
namespace {

PoxConfig base_config(core::Algorithm algorithm, std::uint64_t seed = 17) {
  PoxConfig cfg;
  cfg.algorithm = algorithm;
  cfg.n_nodes = 24;
  cfg.beta = 4;
  cfg.expected_interval_s = 4.0;
  cfg.txs_per_block = 256;
  cfg.seed = seed;
  return cfg;
}

TEST(ExperimentExtra, TpsSinceMeasuresTheSuffixOnly) {
  PoxExperiment exp(base_config(core::Algorithm::kPowH));
  exp.run_to_height(4 * exp.delta());
  const double whole = exp.tps();
  const double tail = exp.tps_since(2 * exp.delta());
  EXPECT_GT(tail, 0.0);
  // Both are near the calibrated 256 txs / 4 s = 64 TPS.
  EXPECT_NEAR(whole, 64.0, 25.0);
  EXPECT_NEAR(tail, 64.0, 25.0);
}

TEST(ExperimentExtra, TpsSincePastHeadIsZero) {
  PoxExperiment exp(base_config(core::Algorithm::kPowH));
  exp.run_to_height(20);
  EXPECT_EQ(exp.tps_since(exp.reference().head_height() + 5), 0.0);
}

TEST(ExperimentExtra, WindowedForkStatsConsistent) {
  PoxExperiment exp(base_config(core::Algorithm::kThemis));
  exp.run_to_height(200);
  const auto whole = exp.fork_stats();
  const auto tail = exp.fork_stats(100);
  EXPECT_LE(tail.total_blocks, whole.total_blocks);
  EXPECT_LE(tail.forked_heights, whole.forked_heights);
  EXPECT_LE(tail.main_chain_blocks, whole.main_chain_blocks);
  // Windows beyond the head are empty.
  const auto empty = exp.fork_stats(exp.reference().head_height() + 1);
  EXPECT_EQ(empty.total_blocks, 0u);
}

TEST(ExperimentExtra, ThemisIntervalConvergesToI0) {
  // DESIGN.md: the multiples migrate total effective power toward n*H0 and
  // the retarget chases it; after a few epochs the realized interval is I_0.
  PoxConfig cfg = base_config(core::Algorithm::kThemis);
  cfg.beta = 4;
  PoxExperiment exp(cfg);
  const std::uint64_t epochs = 8;
  exp.run_to_height(epochs * exp.delta());
  const auto chain = exp.reference().main_chain();
  const auto& tree = exp.reference().tree();
  const auto t_at = [&](std::uint64_t h) {
    return static_cast<double>(tree.block(chain[h])->header().timestamp_nanos) /
           1e9;
  };
  const double last_epochs_interval =
      (t_at(epochs * exp.delta()) - t_at((epochs - 2) * exp.delta())) /
      static_cast<double>(2 * exp.delta());
  EXPECT_NEAR(last_epochs_interval, 4.0, 1.5);
}

TEST(ExperimentExtra, PowHRetargetRestoresIntervalAfterSuppression) {
  // 25% of the power is suppressed from t=0; Bitcoin-style retargeting must
  // bring PoW-H's realized interval back to ~I_0 within a few epochs.
  PoxConfig cfg = base_config(core::Algorithm::kPowH);
  cfg.vulnerable_ratio = 0.25;
  PoxExperiment exp(cfg);
  const std::uint64_t epochs = 6;
  exp.run_to_height(epochs * exp.delta(), SimTime::seconds(1e6));
  const double tail_tps = exp.tps_since((epochs - 2) * exp.delta());
  // Without the retarget this would sit near 0.75 * 64 = 48.
  EXPECT_GT(tail_tps, 52.0);
}

TEST(ExperimentExtra, UncalibratedBootstrapIsUnstable) {
  // The regime DESIGN.md's substitution table documents: Eq. 7's launch
  // difficulty against the raw Fig. 3 power makes epoch-0 blocks arrive far
  // faster than propagation, inflating the stale rate dramatically.
  PoxConfig calibrated = base_config(core::Algorithm::kThemis, 23);
  PoxConfig raw = calibrated;
  raw.calibrated_start = false;

  PoxExperiment good(calibrated);
  PoxExperiment bad(raw);
  good.run_to_height(150, SimTime::seconds(1e6));
  bad.run_to_height(150, SimTime::seconds(1e6));

  EXPECT_GT(bad.fork_stats().stale_rate, 3.0 * good.fork_stats().stale_rate);
}

TEST(ExperimentExtra, CustomHashRatesRespected) {
  PoxConfig cfg = base_config(core::Algorithm::kPowH);
  cfg.hash_rates = uniform_power(cfg.n_nodes, 500.0);
  PoxExperiment exp(cfg);
  EXPECT_EQ(exp.hash_rates()[0], 500.0);
  exp.run_to_height(3 * exp.delta());
  // Uniform power under a fixed shared difficulty: frequencies equalize.
  const auto fv = exp.per_epoch_frequency_variance();
  ASSERT_FALSE(fv.empty());
  EXPECT_LT(fv.back(), 5e-3);
}

TEST(ExperimentExtra, SuppressedShareMatchesConfig) {
  for (const double ratio : {0.0, 0.125, 0.5}) {
    PoxConfig cfg = base_config(core::Algorithm::kThemisLite);
    cfg.vulnerable_ratio = ratio;
    PoxExperiment exp(cfg);
    std::size_t suppressed = 0;
    for (std::size_t i = 0; i < exp.size(); ++i) {
      if (exp.node(i).producer_suppressed()) ++suppressed;
    }
    EXPECT_EQ(suppressed,
              static_cast<std::size_t>(std::llround(ratio * 24.0)));
  }
}

TEST(ExperimentExtra, PbftVulnerableSetIsSpreadAcrossIds) {
  // A contiguous suppressed prefix would make consecutive leaders fail and
  // escalate the backoff unrealistically; the harness must spread the set.
  PbftScenario scenario;
  scenario.n_nodes = 20;
  scenario.pbft.batch_size = 32;
  scenario.pbft.verify_delay = SimTime::micros(100);
  scenario.pbft.exec_delay_per_tx = SimTime::micros(10);
  scenario.vulnerable_ratio = 0.25;
  scenario.duration = SimTime::seconds(120);
  scenario.seed = 40;
  const auto result = run_pbft(scenario);
  // Liveness holds: blocks commit despite 5 vulnerable replicas.
  EXPECT_GT(result.committed_blocks, 5u);
}

TEST(ExperimentExtra, ProbabilityVarianceEpochCountTracksChain) {
  PoxExperiment exp(base_config(core::Algorithm::kThemis));
  exp.run_to_height(3 * exp.delta());
  const auto fv = exp.per_epoch_frequency_variance();
  const auto pv = exp.per_epoch_probability_variance();
  EXPECT_EQ(fv.size(), pv.size());
  EXPECT_GE(fv.size(), 3u);
}

TEST(ExperimentExtra, RunToHeightIsIdempotentPastTarget) {
  PoxExperiment exp(base_config(core::Algorithm::kPowH));
  exp.run_to_height(50);
  const auto height = exp.reference().head_height();
  exp.run_to_height(10);  // already past: no-op
  EXPECT_EQ(exp.reference().head_height(), height);
  exp.run_to_height(height + 20);  // extends the same run
  EXPECT_GE(exp.reference().head_height(), height + 20);
}

}  // namespace
}  // namespace themis::sim
