// Checkpoint finality overlay: vote/certificate codecs, the tracker's vote
// discipline under adversarial inputs, the >2/3 quorum boundary, both
// aggregation backends, and HeadTracker's hard-finality guarantees.
#include <gtest/gtest.h>

#include "common/serialize.h"
#include "consensus/head_tracker.h"
#include "core/geost.h"
#include "finality/aggregation.h"
#include "finality/checkpoint.h"
#include "finality/tracker.h"
#include "tree_builder.h"

namespace themis::finality {
namespace {

using consensus::HeadTracker;
using test::TreeBuilder;

ledger::BlockHash block_hash(std::uint8_t tag) {
  ledger::BlockHash h{};
  h[0] = tag;
  return h;
}

CheckpointVote signed_vote(std::uint64_t height, const ledger::BlockHash& block,
                           std::uint64_t interval, ledger::NodeId voter) {
  CheckpointVote vote;
  vote.height = height;
  vote.block = block;
  vote.epoch = height / interval;
  vote.voter = voter;
  vote.signature =
      crypto::Keypair::from_node_id(voter).sign(vote.digest());
  return vote;
}

CheckpointTracker make_tracker(std::size_t n, std::uint64_t interval = 16,
                               std::uint8_t backend = ConcatAggregation::kId,
                               bool verify = true) {
  TrackerConfig config;
  config.interval = interval;
  config.verify_signatures = verify;
  return CheckpointTracker(config, ValidatorSet::deterministic(n),
                           make_backend(backend));
}

// ---------------------------------------------------------------- codecs --

TEST(CheckpointCodec, VoteRoundTrip) {
  const CheckpointVote vote = signed_vote(32, block_hash(7), 16, 2);
  const Bytes raw = vote.encode();
  EXPECT_EQ(CheckpointVote::decode(raw), vote);
}

TEST(CheckpointCodec, VoteRejectsTruncatedAndTrailing) {
  const Bytes raw = signed_vote(16, block_hash(1), 16, 0).encode();
  for (std::size_t len = 0; len < raw.size(); ++len) {
    EXPECT_THROW(CheckpointVote::decode(ByteSpan(raw.data(), len)),
                 DecodeError)
        << "accepted a " << len << "-byte prefix";
  }
  Bytes trailing = raw;
  trailing.push_back(0);
  EXPECT_THROW(CheckpointVote::decode(trailing), DecodeError);
}

TEST(CheckpointCodec, VoterOutsideDigestButInsideVoteId) {
  const CheckpointVote a = signed_vote(16, block_hash(1), 16, 0);
  const CheckpointVote b = signed_vote(16, block_hash(1), 16, 1);
  EXPECT_EQ(a.digest(), b.digest());      // backends combine over one digest
  EXPECT_NE(a.vote_id(), b.vote_id());    // gossip dedups per voter
}

TEST(CheckpointCodec, CertificateRoundTrip) {
  CheckpointCertificate cert;
  cert.height = 48;
  cert.block = block_hash(9);
  cert.epoch = 3;
  cert.backend = HalfAggregation::kId;
  cert.voters = {0, 2, 3};
  cert.aggregate = Bytes{1, 2, 3, 4};
  const Bytes raw = cert.encode();
  EXPECT_EQ(CheckpointCertificate::decode(raw), cert);
}

TEST(CheckpointCodec, CertificateRejectsUnsortedVoters) {
  CheckpointCertificate cert;
  cert.height = 16;
  cert.block = block_hash(1);
  cert.epoch = 1;
  cert.voters = {2, 1};
  const Bytes raw = cert.encode();
  EXPECT_THROW(CheckpointCertificate::decode(raw), DecodeError);
  cert.voters = {1, 1};
  EXPECT_THROW(CheckpointCertificate::decode(cert.encode()), DecodeError);
}

// --------------------------------------------------- tracker discipline --

TEST(CheckpointTracker, QuorumFormsCertificate) {
  CheckpointTracker tracker = make_tracker(4);
  const ledger::BlockHash block = block_hash(1);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 0)),
            VoteOutcome::accepted);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 1)),
            VoteOutcome::accepted);
  EXPECT_EQ(tracker.finalized_height(), 0u);
  // Third vote carries weight 3 of 4: 3*3 > 2*4 — quorum.
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 2)),
            VoteOutcome::quorum);
  EXPECT_EQ(tracker.finalized_height(), 16u);
  ASSERT_TRUE(tracker.finalized_block().has_value());
  EXPECT_EQ(*tracker.finalized_block(), block);
  const CheckpointCertificate* cert = tracker.certificate(16);
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->voters, (std::vector<ledger::NodeId>{0, 1, 2}));
  EXPECT_TRUE(tracker.backend().verify(*cert, tracker.validators()));
  EXPECT_EQ(tracker.stats().certificates_formed, 1u);
}

TEST(CheckpointTracker, ExactlyTwoThirdsIsNotQuorum) {
  // n = 3: two votes are exactly 2/3 — the strict rule demands MORE.
  CheckpointTracker tracker = make_tracker(3);
  const ledger::BlockHash block = block_hash(1);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 0)),
            VoteOutcome::accepted);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 1)),
            VoteOutcome::accepted);
  EXPECT_EQ(tracker.finalized_height(), 0u);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 2)),
            VoteOutcome::quorum);
}

TEST(CheckpointTracker, DuplicateVoteDoesNotDoubleCount) {
  CheckpointTracker tracker = make_tracker(4);
  const CheckpointVote vote = signed_vote(16, block_hash(1), 16, 0);
  EXPECT_EQ(tracker.add_vote(vote), VoteOutcome::accepted);
  EXPECT_EQ(tracker.add_vote(vote), VoteOutcome::duplicate);
  EXPECT_EQ(tracker.add_vote(vote), VoteOutcome::duplicate);
  EXPECT_EQ(tracker.votes_for(16, block_hash(1)), 1u);
  EXPECT_EQ(tracker.stats().votes_duplicate, 2u);
}

TEST(CheckpointTracker, EquivocationRejectedFirstVoteStands) {
  CheckpointTracker tracker = make_tracker(4);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block_hash(1), 16, 0)),
            VoteOutcome::accepted);
  // Same voter, same height, different block: rejected, not counted.
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block_hash(2), 16, 0)),
            VoteOutcome::equivocation);
  EXPECT_EQ(tracker.votes_for(16, block_hash(1)), 1u);
  EXPECT_EQ(tracker.votes_for(16, block_hash(2)), 0u);
  EXPECT_EQ(tracker.stats().votes_equivocation, 1u);
}

TEST(CheckpointTracker, UnknownVoterRejected) {
  CheckpointTracker tracker = make_tracker(4);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block_hash(1), 16, 9)),
            VoteOutcome::unknown_voter);
  EXPECT_EQ(tracker.votes_for(16, block_hash(1)), 0u);
}

TEST(CheckpointTracker, BadSignatureRejected) {
  CheckpointTracker tracker = make_tracker(4);
  CheckpointVote vote = signed_vote(16, block_hash(1), 16, 0);
  vote.signature.s[0] ^= 1;
  EXPECT_EQ(tracker.add_vote(vote), VoteOutcome::bad_signature);
  // A signature by the wrong key is just as dead.
  CheckpointVote wrong_key = signed_vote(16, block_hash(1), 16, 1);
  wrong_key.voter = 2;
  EXPECT_EQ(tracker.add_vote(wrong_key), VoteOutcome::bad_signature);
  EXPECT_EQ(tracker.votes_for(16, block_hash(1)), 0u);
}

TEST(CheckpointTracker, BadHeightAndEpochRejected) {
  CheckpointTracker tracker = make_tracker(4);
  // Not a multiple of the interval.
  EXPECT_EQ(tracker.add_vote(signed_vote(17, block_hash(1), 17, 0)),
            VoteOutcome::bad_height);
  // Height 0 is never a checkpoint.
  EXPECT_EQ(tracker.add_vote(signed_vote(0, block_hash(1), 16, 0)),
            VoteOutcome::bad_height);
  // Right height, wrong epoch tag.
  CheckpointVote vote;
  vote.height = 16;
  vote.block = block_hash(1);
  vote.epoch = 2;  // should be 1
  vote.voter = 0;
  vote.signature = crypto::Keypair::from_node_id(0).sign(vote.digest());
  EXPECT_EQ(tracker.add_vote(vote), VoteOutcome::bad_height);
}

TEST(CheckpointTracker, StaleBelowFinalized) {
  CheckpointTracker tracker = make_tracker(4);
  const ledger::BlockHash b32 = block_hash(2);
  for (ledger::NodeId voter = 0; voter < 3; ++voter) {
    tracker.add_vote(signed_vote(32, b32, 16, voter));
  }
  ASSERT_EQ(tracker.finalized_height(), 32u);
  // A vote for the already-finalized checkpoint (or below) is stale.
  EXPECT_EQ(tracker.add_vote(signed_vote(32, b32, 16, 3)),
            VoteOutcome::stale);
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block_hash(1), 16, 3)),
            VoteOutcome::stale);
  // Higher checkpoints still count.
  EXPECT_EQ(tracker.add_vote(signed_vote(48, block_hash(3), 16, 3)),
            VoteOutcome::accepted);
}

TEST(CheckpointTracker, FinalizationIsMonotone) {
  CheckpointTracker tracker = make_tracker(4);
  const ledger::BlockHash b32 = block_hash(2);
  const ledger::BlockHash b16 = block_hash(1);
  // Finalize height 32 first (gossip delivers checkpoints out of order).
  for (ledger::NodeId voter = 0; voter < 3; ++voter) {
    tracker.add_vote(signed_vote(32, b32, 16, voter));
  }
  EXPECT_EQ(tracker.finalized_height(), 32u);
  // A late quorum at 16 must not roll the finalized height back.
  EXPECT_EQ(tracker.add_vote(signed_vote(16, b16, 16, 3)),
            VoteOutcome::stale);
  EXPECT_EQ(tracker.finalized_height(), 32u);
}

TEST(CheckpointTracker, RetainedVotesCoverLatestCheckpoint) {
  CheckpointTracker tracker = make_tracker(4);
  const ledger::BlockHash b16 = block_hash(1);
  for (ledger::NodeId voter = 0; voter < 3; ++voter) {
    tracker.add_vote(signed_vote(16, b16, 16, voter));
  }
  // The finalized checkpoint's votes are retained so a freshly connected
  // peer can be brought to quorum by inventory offer alone.
  const std::vector<CheckpointVote> votes = tracker.retained_votes();
  EXPECT_EQ(votes.size(), 3u);
  CheckpointTracker peer = make_tracker(4);
  VoteOutcome last = VoteOutcome::accepted;
  for (const CheckpointVote& vote : votes) last = peer.add_vote(vote);
  EXPECT_EQ(last, VoteOutcome::quorum);
  EXPECT_EQ(peer.finalized_height(), 16u);
}

TEST(CheckpointTracker, MakeVoteSignsVerifiably) {
  CheckpointTracker tracker = make_tracker(4);
  const crypto::Keypair keypair = crypto::Keypair::from_node_id(1);
  const CheckpointVote vote =
      tracker.make_vote(16, block_hash(1), keypair, 1);
  EXPECT_EQ(tracker.add_vote(vote), VoteOutcome::accepted);
}

// --------------------------------------------------------------- backends --

class BackendTest : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(BackendTest, AggregateVerifies) {
  const std::size_t n = 5;  // quorum at 4: 3*4 > 2*5
  CheckpointTracker tracker = make_tracker(n, 16, GetParam());
  const ledger::BlockHash block = block_hash(1);
  for (ledger::NodeId voter = 0; voter < 3; ++voter) {
    EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, voter)),
              VoteOutcome::accepted);
  }
  EXPECT_EQ(tracker.add_vote(signed_vote(16, block, 16, 3)),
            VoteOutcome::quorum);
  const CheckpointCertificate* cert = tracker.certificate(16);
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->backend, GetParam());
  const ValidatorSet validators = ValidatorSet::deterministic(n);
  EXPECT_TRUE(make_backend(GetParam())->verify(*cert, validators));
  // Survives a wire round trip.
  EXPECT_TRUE(make_backend(GetParam())->verify(
      CheckpointCertificate::decode(cert->encode()), validators));
}

TEST_P(BackendTest, TamperedCertificateFailsVerify) {
  const std::size_t n = 4;
  CheckpointTracker tracker = make_tracker(n, 16, GetParam());
  const ledger::BlockHash block = block_hash(1);
  for (ledger::NodeId voter = 0; voter < 3; ++voter) {
    tracker.add_vote(signed_vote(16, block, 16, voter));
  }
  const CheckpointCertificate* cert = tracker.certificate(16);
  ASSERT_NE(cert, nullptr);
  const ValidatorSet validators = ValidatorSet::deterministic(n);
  const auto backend = make_backend(GetParam());

  CheckpointCertificate bad = *cert;
  bad.aggregate[0] ^= 1;  // flipped signature byte
  EXPECT_FALSE(backend->verify(bad, validators));

  bad = *cert;
  bad.block = block_hash(2);  // certificate claims a different block
  EXPECT_FALSE(backend->verify(bad, validators));

  bad = *cert;
  bad.voters = {0, 1};  // sub-quorum voter set, aggregate untouched
  EXPECT_FALSE(backend->verify(bad, validators));

  bad = *cert;
  bad.voters.push_back(9);  // non-member voter
  EXPECT_FALSE(backend->verify(bad, validators));

  bad = *cert;
  bad.backend = GetParam() == ConcatAggregation::kId ? HalfAggregation::kId
                                                     : ConcatAggregation::kId;
  EXPECT_FALSE(backend->verify(bad, validators));  // wrong backend id
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(ConcatAggregation::kId,
                                           HalfAggregation::kId),
                         [](const auto& info) {
                           return info.param == ConcatAggregation::kId
                                      ? std::string("Concat")
                                      : std::string("Half");
                         });

TEST(Backends, HalfAggregationHalvesTheSize) {
  const std::size_t n = 7;  // quorum at 5
  CheckpointTracker concat = make_tracker(n, 16, ConcatAggregation::kId);
  CheckpointTracker half = make_tracker(n, 16, HalfAggregation::kId);
  const ledger::BlockHash block = block_hash(1);
  for (ledger::NodeId voter = 0; voter < 5; ++voter) {
    concat.add_vote(signed_vote(16, block, 16, voter));
    half.add_vote(signed_vote(16, block, 16, voter));
  }
  ASSERT_NE(concat.certificate(16), nullptr);
  ASSERT_NE(half.certificate(16), nullptr);
  EXPECT_EQ(concat.certificate(16)->aggregate.size(), 64u * 5);
  EXPECT_EQ(half.certificate(16)->aggregate.size(), 32u * (5 + 1));
}

TEST(Backends, MakeBackendByNameAndId) {
  EXPECT_EQ(make_backend("concat")->id(), ConcatAggregation::kId);
  EXPECT_EQ(make_backend("half")->id(), HalfAggregation::kId);
  EXPECT_EQ(make_backend("nope"), nullptr);
  EXPECT_EQ(make_backend(std::uint8_t{0xff}), nullptr);
}

// ----------------------------------------------------- HeadTracker floor --

TEST(HeadTrackerFinality, ReorgBelowFinalizedRefused) {
  TreeBuilder b;
  b.add("a1", "g", 0);
  b.add("a2", "a1", 1);
  b.add("a3", "a2", 2);
  const consensus::LongestChainRule rule;
  HeadTracker tracker;
  tracker.reset(b.tree(), rule, b.tree().genesis_hash(), 64);
  ASSERT_EQ(tracker.head(), b.hash("a3"));

  EXPECT_FALSE(tracker.set_finalized(b.tree(), rule, b.hash("a2")));
  EXPECT_EQ(tracker.finalized_height(), 2u);

  // A longer branch diverging at height 1 — below the finalized height —
  // must be refused no matter its weight.
  b.add("b2", "a1", 3);
  b.add("b3", "b2", 3);
  b.add("b4", "b3", 3);
  b.add("b5", "b4", 3);
  const auto update = tracker.on_insert(b.tree(), rule, b.hash("b2"));
  EXPECT_FALSE(update.head_changed);
  EXPECT_TRUE(update.below_finalized);
  EXPECT_EQ(tracker.head(), b.hash("a3"));

  // Extending the finalized branch still works.
  b.add("a4", "a3", 0);
  EXPECT_TRUE(tracker.on_insert(b.tree(), rule, b.hash("a4")).head_changed);
  EXPECT_EQ(tracker.head(), b.hash("a4"));
}

TEST(HeadTrackerFinality, CertifiedOffPathBranchForcesSwitch) {
  TreeBuilder b;
  b.add("a1", "g", 0);
  b.add("a2", "a1", 1);
  b.add("a3", "a2", 2);
  b.add("b1", "g", 3);
  b.add("b2", "b1", 3);
  const consensus::LongestChainRule rule;
  HeadTracker tracker;
  tracker.reset(b.tree(), rule, b.tree().genesis_hash(), 64);
  ASSERT_EQ(tracker.head(), b.hash("a3"));  // a-branch is longer

  // The consortium certified b2: hard finality outranks local fork choice.
  EXPECT_TRUE(tracker.set_finalized(b.tree(), rule, b.hash("b2")));
  EXPECT_EQ(tracker.head(), b.hash("b2"));
  EXPECT_EQ(tracker.finalized_height(), 2u);

  // The abandoned (heavier) a-branch now diverges below the finalized
  // height and can never win again.
  b.add("a4", "a3", 0);
  const auto update = tracker.on_insert(b.tree(), rule, b.hash("a4"));
  EXPECT_FALSE(update.head_changed);
  EXPECT_TRUE(update.below_finalized);

  // set_finalized is monotone: re-finalizing at or below is a no-op.
  EXPECT_FALSE(tracker.set_finalized(b.tree(), rule, b.hash("a2")));
  EXPECT_EQ(tracker.head(), b.hash("b2"));
}

TEST(HeadTrackerFinality, AnchorNeverTrailsBelowFinalized) {
  TreeBuilder b;
  std::string prev = "g";
  for (int i = 1; i <= 6; ++i) {
    const std::string name = "a" + std::to_string(i);
    b.add(name, prev, 0);
    prev = name;
  }
  const consensus::LongestChainRule rule;
  HeadTracker tracker;
  // finality_depth 64 would keep the anchor at genesis forever…
  tracker.reset(b.tree(), rule, b.tree().genesis_hash(), 64);
  EXPECT_EQ(tracker.anchor_height(), 0u);
  // …but hard finality drags it up to the certified height.
  tracker.set_finalized(b.tree(), rule, b.hash("a4"));
  EXPECT_EQ(tracker.anchor_height(), 4u);
  EXPECT_EQ(tracker.anchor(), b.hash("a4"));
  ASSERT_NE(tracker.path_block_at(5), nullptr);
  EXPECT_EQ(*tracker.path_block_at(5), b.hash("a5"));
  EXPECT_EQ(tracker.path_block_at(3), nullptr);  // below the anchor
}

}  // namespace
}  // namespace themis::finality
