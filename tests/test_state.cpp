#include <gtest/gtest.h>

#include "state/double_spend.h"
#include "state/ledger_state.h"
#include "state/transfer.h"
#include "tree_builder.h"

namespace themis::state {
namespace {

using ledger::Transaction;

Transaction transfer_tx(ledger::NodeId from, std::uint64_t nonce,
                        ledger::NodeId to, std::uint64_t amount) {
  return make_transfer_tx(from, nonce, 0, Transfer{to, amount, {}});
}

TEST(Transfer, EncodeDecodeRoundTrip) {
  const Transfer t{3, 1000, bytes_of("invoice #7")};
  const auto decoded = Transfer::decode(t.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, t);
}

TEST(Transfer, ArbitraryPayloadIsNotATransfer) {
  EXPECT_FALSE(Transfer::decode(bytes_of("just some data")).has_value());
  EXPECT_FALSE(Transfer::decode(Bytes{}).has_value());
}

TEST(Transfer, TruncatedTransferRejected) {
  Bytes raw = Transfer{1, 5, {}}.encode();
  raw.pop_back();
  EXPECT_FALSE(Transfer::decode(raw).has_value());
}

TEST(Transfer, TrailingGarbageRejected) {
  Bytes raw = Transfer{1, 5, {}}.encode();
  raw.push_back(0);
  EXPECT_FALSE(Transfer::decode(raw).has_value());
}

TEST(Transfer, TxHelperRoundTrip) {
  const Transaction tx = transfer_tx(1, 1, 2, 500);
  const auto t = transfer_of(tx);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->to, 2u);
  EXPECT_EQ(t->amount, 500u);
}

TEST(LedgerState, FundingAndBalances) {
  LedgerState state;
  state.fund(0, 1000);
  state.fund(1, 500);
  state.fund(0, 50);
  EXPECT_EQ(state.balance(0), 1050u);
  EXPECT_EQ(state.balance(1), 500u);
  EXPECT_EQ(state.balance(7), 0u);  // untouched accounts read as empty
  EXPECT_EQ(state.total_supply(), 1550u);
}

TEST(LedgerState, TransferMovesValue) {
  LedgerState state;
  state.fund(0, 1000);
  EXPECT_EQ(state.apply(transfer_tx(0, 1, 1, 300)), TxOutcome::applied);
  EXPECT_EQ(state.balance(0), 700u);
  EXPECT_EQ(state.balance(1), 300u);
  EXPECT_EQ(state.total_supply(), 1000u);  // conservation
}

TEST(LedgerState, NonceDisciplineEnforced) {
  LedgerState state;
  state.fund(0, 1000);
  EXPECT_EQ(state.apply(transfer_tx(0, 1, 1, 10)), TxOutcome::applied);
  // Replay (same nonce) and gaps both rejected.
  EXPECT_EQ(state.apply(transfer_tx(0, 1, 1, 10)), TxOutcome::bad_nonce);
  EXPECT_EQ(state.apply(transfer_tx(0, 5, 1, 10)), TxOutcome::bad_nonce);
  EXPECT_EQ(state.apply(transfer_tx(0, 2, 1, 10)), TxOutcome::applied);
  EXPECT_EQ(state.balance(1), 20u);
}

TEST(LedgerState, InsufficientFundsRejectedWithoutSideEffects) {
  LedgerState state;
  state.fund(0, 100);
  const auto before = state.account(0);
  EXPECT_EQ(state.apply(transfer_tx(0, 1, 1, 500)), TxOutcome::insufficient_funds);
  EXPECT_EQ(state.account(0), before);  // nonce did not advance either
  EXPECT_EQ(state.apply(transfer_tx(0, 1, 1, 50)), TxOutcome::applied);
}

TEST(LedgerState, UnknownRecipientRejected) {
  LedgerState state;
  state.fund(0, 100);
  EXPECT_EQ(state.apply(make_transfer_tx(0, 1, 0, Transfer{ledger::kNoNode, 1, {}})),
            TxOutcome::unknown_recipient);
}

TEST(LedgerState, DataOnlyTransactionAdvancesNonce) {
  LedgerState state;
  EXPECT_EQ(state.apply(Transaction(0, 1, 0, bytes_of("audit log entry"))),
            TxOutcome::data_only);
  EXPECT_EQ(state.account(0).next_nonce, 2u);
}

TEST(LedgerState, ApplyBlockCountsSuccesses) {
  LedgerState state;
  state.fund(0, 100);
  std::vector<Transaction> txs{
      transfer_tx(0, 1, 1, 40),
      transfer_tx(0, 2, 1, 1000),  // fails: insufficient
      Transaction(2, 1, 0, bytes_of("note")),
  };
  ledger::BlockHeader h;
  h.tx_count = static_cast<std::uint32_t>(txs.size());
  const ledger::Block block(h, crypto::Signature{}, txs);
  EXPECT_EQ(state.apply_block(block), 2u);
  EXPECT_EQ(state.balance(1), 40u);
}

TEST(LedgerState, OutcomeNames) {
  EXPECT_EQ(to_string(TxOutcome::applied), "applied");
  EXPECT_EQ(to_string(TxOutcome::bad_nonce), "bad_nonce");
}

TEST(StateManager, ReplaysMainChain) {
  test::TreeBuilder b;
  // Build blocks carrying real transfers by hand.
  auto make_block = [&](const ledger::BlockPtr& parent,
                        std::vector<Transaction> txs) {
    ledger::BlockHeader h;
    h.height = parent->height() + 1;
    h.prev = parent->id();
    h.producer = 0;
    h.nonce = 1000 + b.tree().size();
    h.tx_count = static_cast<std::uint32_t>(txs.size());
    auto block = std::make_shared<const ledger::Block>(h, crypto::Signature{},
                                                       std::move(txs));
    b.tree().insert(block);
    return block;
  };
  const auto b1 = make_block(b.get("g"), {transfer_tx(0, 1, 1, 100)});
  const auto b2 = make_block(b1, {transfer_tx(1, 1, 2, 60)});

  StateManager manager(std::map<ledger::NodeId, UInt128>{{0, 1000}});
  const LedgerState& at_b1 = manager.state_at(b.tree(), b1->id());
  EXPECT_EQ(at_b1.balance(1), 100u);
  const LedgerState& at_b2 = manager.state_at(b.tree(), b2->id());
  EXPECT_EQ(at_b2.balance(1), 40u);
  EXPECT_EQ(at_b2.balance(2), 60u);
  // The earlier snapshot is unchanged (per-block immutability).
  EXPECT_EQ(manager.state_at(b.tree(), b1->id()).balance(1), 100u);
}

TEST(StateManager, ForkGetsItsOwnState) {
  test::TreeBuilder b;
  auto tx_block = [&](const std::string& parent, std::uint64_t nonce,
                      ledger::NodeId to) {
    const auto p = b.get(parent);
    ledger::BlockHeader h;
    h.height = p->height() + 1;
    h.prev = p->id();
    h.producer = 0;
    h.nonce = 500 + nonce * 7 + to;
    std::vector<Transaction> txs{transfer_tx(0, nonce, to, 10)};
    h.tx_count = 1;
    auto block = std::make_shared<const ledger::Block>(h, crypto::Signature{},
                                                       std::move(txs));
    b.tree().insert(block);
    return block;
  };
  const auto left = tx_block("g", 1, 1);   // pays node 1
  const auto right = tx_block("g", 1, 2);  // conflicting: pays node 2

  StateManager manager(std::map<ledger::NodeId, UInt128>{{0, 100}});
  EXPECT_EQ(manager.state_at(b.tree(), left->id()).balance(1), 10u);
  EXPECT_EQ(manager.state_at(b.tree(), left->id()).balance(2), 0u);
  EXPECT_EQ(manager.state_at(b.tree(), right->id()).balance(2), 10u);
  EXPECT_EQ(manager.state_at(b.tree(), right->id()).balance(1), 0u);
}

// Regression: a snapshot anchor pinned below the hard-finalized floor would
// let the snapshot cursor regress onto a prefix the checkpoint overlay
// already committed.
TEST(StateManager, PinAnchorBelowFinalizedFloorRejected) {
  test::TreeBuilder b;
  b.add("a1", "g", 0);
  b.add("a2", "a1", 0);
  b.add("a3", "a2", 0);
  StateManager manager(std::map<ledger::NodeId, UInt128>{{0, 100}});
  manager.pin_anchor(b.tree(), b.hash("a1"));  // no floor yet: fine

  manager.set_finalized_floor(2);
  EXPECT_THROW(manager.pin_anchor(b.tree(), b.hash("a1")), PreconditionError);
  manager.pin_anchor(b.tree(), b.hash("a2"));  // exactly at the floor: ok
  manager.pin_anchor(b.tree(), b.hash("a3"));

  // The floor is monotone; a stale lower certificate cannot drop it.
  manager.set_finalized_floor(1);
  EXPECT_EQ(manager.finalized_floor(), 2u);
  EXPECT_THROW(manager.pin_anchor(b.tree(), b.hash("a1")), PreconditionError);
}

TEST(StateManager, GenesisState) {
  test::TreeBuilder b;
  StateManager manager(std::map<ledger::NodeId, UInt128>{{0, 42}});
  EXPECT_EQ(manager.state_at(b.tree(), b.tree().genesis_hash()).balance(0), 42u);
}

// The overlay must implement exactly the transition rules of
// LedgerState::apply — same outcomes, same post-state — across every outcome
// class, including the failure paths that touch but do not change accounts.
TEST(ScratchState, DifferentialAgainstDirectApply) {
  LedgerState base;
  base.fund(0, 100);
  base.fund(1, 50);
  const std::vector<Transaction> txs{
      transfer_tx(0, 1, 1, 40),                                   // applied
      transfer_tx(0, 2, 1, 1000),                                 // insufficient
      transfer_tx(0, 3, 1, 10),                                   // bad nonce (gap)
      Transaction(1, 1, 0, bytes_of("note")),                     // data only
      make_transfer_tx(2, 1, 0, Transfer{ledger::kNoNode, 1, {}}),  // unknown to
      transfer_tx(1, 2, 0, 25),                                   // applied
  };

  LedgerState direct = base;
  ScratchState scratch(base);
  for (const Transaction& tx : txs) {
    EXPECT_EQ(scratch.apply(tx), direct.apply(tx));
  }
  LedgerState materialized = base;
  materialized.apply_delta(scratch.take_delta());
  EXPECT_EQ(materialized, direct);
}

TEST(ScratchState, ReadsThroughToBase) {
  LedgerState base;
  base.fund(0, 100);
  ScratchState scratch(base);
  EXPECT_EQ(scratch.account(0).balance, 100u);
  EXPECT_EQ(scratch.apply(transfer_tx(0, 1, 1, 30)), TxOutcome::applied);
  EXPECT_EQ(scratch.account(0).balance, 70u);
  EXPECT_EQ(scratch.account(1).balance, 30u);
  // The base snapshot is untouched — the whole point of the overlay.
  EXPECT_EQ(base.balance(0), 100u);
  EXPECT_EQ(base.balance(1), 0u);
  EXPECT_EQ(scratch.applied(), 1u);
}

TEST(StateManager, DeltaShortCircuitsBodyReplay) {
  test::TreeBuilder b;
  auto make_block = [&](const ledger::BlockPtr& parent,
                        std::vector<Transaction> txs) {
    ledger::BlockHeader h;
    h.height = parent->height() + 1;
    h.prev = parent->id();
    h.producer = 0;
    h.nonce = 2000 + b.tree().size();
    h.tx_count = static_cast<std::uint32_t>(txs.size());
    auto block = std::make_shared<const ledger::Block>(h, crypto::Signature{},
                                                       std::move(txs));
    b.tree().insert(block);
    return block;
  };
  const auto b1 = make_block(b.get("g"), {transfer_tx(0, 1, 1, 100)});

  // Validation-style pass: replay on an overlay of the parent, record delta.
  StateManager manager(std::map<ledger::NodeId, UInt128>{{0, 1000}});
  ScratchState scratch(manager.state_at(b.tree(), b.tree().genesis_hash()));
  for (const Transaction& tx : b1->transactions()) {
    EXPECT_EQ(scratch.apply(tx), TxOutcome::applied);
  }
  manager.record_delta(b1->id(), scratch.take_delta());
  EXPECT_TRUE(manager.has_delta(b1->id()));
  EXPECT_EQ(manager.cached_deltas(), 1u);

  // Materialization through the delta must equal a full body replay.
  StateManager replayed(std::map<ledger::NodeId, UInt128>{{0, 1000}});
  EXPECT_EQ(manager.state_at(b.tree(), b1->id()),
            replayed.state_at(b.tree(), b1->id()));
  EXPECT_EQ(manager.state_at(b.tree(), b1->id()).balance(1), 100u);
}

TEST(DoubleSpend, ValidProofRequiresEquivocation) {
  const auto a = transfer_tx(0, 1, 1, 10);
  const auto c = transfer_tx(0, 1, 2, 10);  // same nonce, different payee
  EXPECT_TRUE((DoubleSpendProof{a, c}.valid()));
  EXPECT_FALSE((DoubleSpendProof{a, a}.valid()));  // identical tx
  const auto other_sender = transfer_tx(1, 1, 2, 10);
  EXPECT_FALSE((DoubleSpendProof{a, other_sender}.valid()));
  const auto other_nonce = transfer_tx(0, 2, 2, 10);
  EXPECT_FALSE((DoubleSpendProof{a, other_nonce}.valid()));
}

TEST(DoubleSpend, FoundAcrossTwoBlocks) {
  const auto a = transfer_tx(0, 1, 1, 10);
  const auto c = transfer_tx(0, 1, 2, 10);
  const auto proof = find_double_spend({transfer_tx(3, 1, 1, 5), a}, {c});
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(proof->valid());
  EXPECT_EQ(proof->first.sender(), 0u);
}

TEST(DoubleSpend, SameTxInBothBlocksIsNotEquivocation) {
  const auto a = transfer_tx(0, 1, 1, 10);
  EXPECT_FALSE(find_double_spend({a}, {a}).has_value());
}

TEST(DoubleSpend, FoundWithinOneBlock) {
  const auto a = transfer_tx(0, 3, 1, 10);
  const auto c = transfer_tx(0, 3, 2, 99);
  ASSERT_TRUE(find_double_spend({a, c}).has_value());
  EXPECT_FALSE(find_double_spend({a}).has_value());
}

TEST(DoubleSpend, ProofSerializationRoundTrip) {
  const DoubleSpendProof proof{transfer_tx(0, 1, 1, 10), transfer_tx(0, 1, 2, 10)};
  const auto decoded = DoubleSpendProof::decode(proof.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->valid());
  EXPECT_EQ(decoded->first, proof.first);
  EXPECT_EQ(decoded->second, proof.second);
}

TEST(DoubleSpend, DecodeRejectsInvalidOrMalformed) {
  EXPECT_FALSE(DoubleSpendProof::decode(Bytes(100, 0)).has_value());
  // A structurally valid encoding of a non-equivocation must also fail.
  const auto a = transfer_tx(0, 1, 1, 10);
  const DoubleSpendProof bogus{a, a};
  EXPECT_FALSE(DoubleSpendProof::decode(bogus.encode()).has_value());
}

TEST(DoubleSpend, DescribeNamesTheOffender) {
  const DoubleSpendProof proof{transfer_tx(7, 1, 1, 10), transfer_tx(7, 1, 2, 10)};
  EXPECT_NE(proof.describe().find("node 7"), std::string::npos);
}

}  // namespace
}  // namespace themis::state
