// RPC surface tests: the JSON codec against hostile input, and a live
// HttpServer + Gateway over a non-mining P2pNode driven through real sockets
// (malformed requests, oversized bodies, rejected transactions, concurrent
// submit storms).
#include "rpc/gateway.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "ledger/transaction.h"
#include "p2p/node.h"
#include "p2p/socket.h"
#include "rpc/http_client.h"
#include "rpc/http_server.h"
#include "rpc/json.h"
#include "state/authstate/merkle_state.h"
#include "state/transfer.h"

namespace themis::rpc {
namespace {

// --- Json codec --------------------------------------------------------------

TEST(RpcJson, U64RoundTripsExactly) {
  const Json v = Json::parse("18446744073709551615");
  ASSERT_TRUE(v.is_u64());
  EXPECT_EQ(v.as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v.dump(), "18446744073709551615");
  // One past uint64 max no longer fits: falls back to double, not garbage.
  EXPECT_TRUE(Json::parse("18446744073709551616").is_double());
}

TEST(RpcJson, NegativeIntegersAreI64) {
  const Json v = Json::parse("-9223372036854775808");
  ASSERT_TRUE(v.is_i64());
  EXPECT_EQ(v.as_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.dump(), "-9223372036854775808");
}

TEST(RpcJson, CrossSignedAccessors) {
  const Json small = Json::parse("7");  // integral literal -> u64 or i64
  EXPECT_EQ(small.as_u64(), 7u);
  EXPECT_EQ(small.as_i64(), 7);
  EXPECT_THROW(Json::parse("-1").as_u64(), JsonError);
  EXPECT_THROW(Json::parse("\"x\"").as_u64(), JsonError);
}

TEST(RpcJson, ParseDumpRoundTripIsDeterministic) {
  const std::string text =
      R"({"a":[1,2.5,true,null],"b":{"nested":"x"},"z":-3})";
  const Json v = Json::parse(text);
  EXPECT_EQ(Json::parse(v.dump()), v);
  EXPECT_EQ(v.dump(), v.dump());
  EXPECT_EQ(v["b"]["nested"].as_string(), "x");
  EXPECT_TRUE(v["missing"].is_null());
}

TEST(RpcJson, DepthCapRejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(Json::parse(deep), JsonError);
  EXPECT_NO_THROW(Json::parse(deep, 128));
}

TEST(RpcJson, TrailingGarbageRejected) {
  EXPECT_THROW(Json::parse("{} x"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("truefalse"), JsonError);
}

TEST(RpcJson, StringEscapesAndSurrogates) {
  const Json v = Json::parse(R"("a\n\t\"\\\u0041\ud83d\ude00")");
  EXPECT_EQ(v.as_string(), "a\n\t\"\\A\xF0\x9F\x98\x80");
  // Control characters are re-escaped on dump.
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(RpcJson, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01", "+1", "1.",
        "\"unterminated", "\"bad\\q\"", "[1,]", "{,}", "nan",
        "\"\\ud83d\""}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << bad;
  }
}

// --- live gateway ------------------------------------------------------------

class RpcGatewayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    p2p::P2pNodeConfig config;
    config.id = 0;
    config.n_nodes = 16;
    config.mine = false;  // deterministic: chain stays at genesis
    config.listen_port = 0;
    node_ = std::make_unique<p2p::P2pNode>(config);
    ASSERT_TRUE(node_->start());

    gateway_ = std::make_unique<Gateway>(*node_);
    HttpServerConfig http;
    http.port = 0;
    http.max_body_bytes = 64 * 1024;
    server_ = std::make_unique<HttpServer>(
        http, [this](const HttpRequest& r) { return gateway_->handle(r); });
    ASSERT_TRUE(server_->start());
    client_ = std::make_unique<HttpClient>("127.0.0.1", server_->port());
  }

  void TearDown() override {
    server_->stop();
    node_->stop();
  }

  /// One JSON-RPC call through the real HTTP stack.
  Json call(const std::string& method, Json params) {
    Json request;
    request.set("jsonrpc", "2.0");
    request.set("id", 1);
    request.set("method", method);
    request.set("params", std::move(params));
    const auto result = client_->post("/", request.dump());
    EXPECT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 200);
    return Json::parse(result->body);
  }

  static std::int64_t error_code(const Json& response) {
    EXPECT_TRUE(response.has("error"));
    return response["error"]["code"].as_i64();
  }

  std::unique_ptr<p2p::P2pNode> node_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<HttpClient> client_;
};

TEST_F(RpcGatewayTest, MalformedJsonIsParseError) {
  const auto result = client_->post("/", "{this is not json");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 200);  // JSON-RPC errors ride HTTP 200
  EXPECT_EQ(Json::parse(result->body)["error"]["code"].as_i64(), -32700);
}

TEST_F(RpcGatewayTest, NonObjectRequestIsInvalid) {
  for (const char* body : {"[1,2,3]", "42", "\"hi\"", "{\"params\":{}}"}) {
    const auto result = client_->post("/", body);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(Json::parse(result->body)["error"]["code"].as_i64(), -32600)
        << body;
  }
}

TEST_F(RpcGatewayTest, UnknownMethodIsMethodNotFound) {
  EXPECT_EQ(error_code(call("no_such_method", Json())), -32601);
}

TEST_F(RpcGatewayTest, MissingParamsAreInvalidParams) {
  EXPECT_EQ(error_code(call("get_tx", Json())), -32602);
  Json bad_type;
  bad_type.set("account", "not a number");
  EXPECT_EQ(error_code(call("get_balance", std::move(bad_type))), -32602);
}

TEST_F(RpcGatewayTest, OversizedBodyIs413) {
  const std::string big(128 * 1024, 'x');  // server caps at 64 KiB
  const auto result = client_->post("/", big);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, 413);
  EXPECT_GE(server_->stats().oversized_bodies, 1u);
}

TEST_F(RpcGatewayTest, RawGarbageRequestIs400) {
  p2p::TcpSocket s =
      p2p::TcpSocket::connect("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(s.valid());
  s.set_timeouts(2000, 2000);
  const std::string garbage = "???\r\n\r\n";
  ASSERT_TRUE(s.send_all(ByteSpan(
      reinterpret_cast<const std::uint8_t*>(garbage.data()), garbage.size())));
  std::string reply;
  std::uint8_t buf[1024];
  for (;;) {
    const int n = s.recv_some(buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(reinterpret_cast<const char*>(buf),
                 static_cast<std::size_t>(n));
    if (reply.find("\r\n\r\n") != std::string::npos) break;
  }
  EXPECT_TRUE(reply.starts_with("HTTP/1.1 400")) << reply;
  EXPECT_GE(server_->stats().bad_requests, 1u);
}

TEST_F(RpcGatewayTest, SubmitAcceptsStructuredTransfer) {
  Json params;
  params.set("sender", 1);
  params.set("to", 2);
  params.set("amount", 25);
  const Json response = call("submit_tx", std::move(params));
  ASSERT_TRUE(response.has("result")) << response.dump();
  EXPECT_EQ(response["result"]["status"].as_string(), "accepted");
  EXPECT_EQ(response["result"]["nonce"].as_u64(), 1u);  // auto-nonce hint
  EXPECT_EQ(node_->pool_depth(), 1u);

  // Status query sees it pending.
  Json query;
  query.set("id", response["result"]["id"].as_string());
  const Json status = call("get_tx", std::move(query));
  EXPECT_EQ(status["result"]["state"].as_string(), "pending");
}

TEST_F(RpcGatewayTest, SubmitAcceptsDecimalStringAmount) {
  // 128-bit amounts travel as exact decimal strings.  The pool will reject
  // the transfer for insufficient funds later; admission and the canonical
  // v2 encoding must survive the round trip losslessly.
  Json params;
  params.set("sender", 1);
  params.set("to", 2);
  params.set("amount", std::string("36893488147419103232"));  // 2^65
  const Json response = call("submit_tx", std::move(params));
  ASSERT_TRUE(response.has("result")) << response.dump();
  Json query;
  query.set("id", response["result"]["id"].as_string());
  const Json status = call("get_tx", std::move(query));
  EXPECT_EQ(status["result"]["tx"]["amount"].as_string(),
            "36893488147419103232");
}

TEST_F(RpcGatewayTest, HostileAmountStringsRejected) {
  for (const char* hostile :
       {"", "-1", "+1", " 1", "1 ", "1.5", "1e9", "0x10", "abc",
        "340282366920938463463374607431768211456",  // 2^128
        "99999999999999999999999999999999999999999999"}) {
    Json params;
    params.set("sender", 1);
    params.set("to", 2);
    params.set("amount", std::string(hostile));
    EXPECT_EQ(error_code(call("submit_tx", std::move(params))), -32602)
        << "amount '" << hostile << "' must be rejected";
  }
  EXPECT_EQ(node_->pool_depth(), 0u);
}

TEST_F(RpcGatewayTest, BalanceProofVerifiesAgainstHeadRoot) {
  Json params;
  params.set("account", 1);
  params.set("prove", true);
  const Json response = call("get_balance", std::move(params));
  ASSERT_TRUE(response.has("result")) << response.dump();
  const Json& result = response["result"];
  EXPECT_EQ(result["balance"].as_string(),
            std::to_string(node_->config().genesis_fund));
  const Hash32 root = hash_from_hex(result["state_root"].as_string());
  EXPECT_EQ(root, node_->head_state_root());

  // Reconstruct the proof from the wire form and verify it locally, exactly
  // as themis-cli balance --prove does.
  const Json& pj = result["proof"];
  ASSERT_TRUE(pj["available"].as_bool());
  state::authstate::AccountProof proof;
  proof.page = static_cast<std::uint32_t>(pj["page"].as_u64());
  proof.page_count = static_cast<std::uint32_t>(pj["page_count"].as_u64());
  proof.page_bytes = from_hex(pj["page_bytes"].as_string());
  for (const Json& step : pj["steps"].as_array()) {
    proof.steps.push_back(crypto::MerkleStep{
        hash_from_hex(step["sibling"].as_string()),
        step["left"].as_bool()});
  }
  state::Account claimed;
  claimed.balance = *UInt128::from_decimal(result["balance"].as_string());
  claimed.next_nonce = result["next_nonce"].as_u64();
  EXPECT_TRUE(state::authstate::verify_account_proof(root, 1, claimed, proof));
  // A different balance must not verify with the same proof.
  claimed.balance += 1u;
  EXPECT_FALSE(
      state::authstate::verify_account_proof(root, 1, claimed, proof));
}

TEST_F(RpcGatewayTest, StatusCarriesStateRootAndSupply) {
  const Json response = call("status", Json());
  ASSERT_TRUE(response.has("result")) << response.dump();
  const Json& result = response["result"];
  EXPECT_EQ(result["state_root"].as_string(),
            to_hex(node_->head_state_root()));
  EXPECT_EQ(result["total_supply"].as_string(),
            node_->total_supply().to_decimal());
  EXPECT_FALSE(result["restored_from_snapshot"].as_bool());
}

TEST_F(RpcGatewayTest, SubmitAcceptsRawHex) {
  const ledger::SignedTransaction stx = ledger::sign_transaction(
      state::make_transfer_tx(3, 1, 0, state::Transfer{4, 7, {}}));
  Json params;
  params.set("raw", to_hex(stx.encode()));
  const Json response = call("submit_tx", std::move(params));
  ASSERT_TRUE(response.has("result")) << response.dump();
  EXPECT_EQ(response["result"]["id"].as_string(), to_hex(stx.tx.id()));
}

TEST_F(RpcGatewayTest, DuplicateSubmitReportsDuplicate) {
  // Raw submission: the exact same bytes twice.  (The structured path stamps
  // a fresh timestamp per call, so two identical-looking transfers are
  // distinct transactions by design.)
  const ledger::SignedTransaction stx = ledger::sign_transaction(
      state::make_transfer_tx(1, 1, 0, state::Transfer{2, 5, {}}));
  Json params;
  params.set("raw", to_hex(stx.encode()));
  EXPECT_EQ(call("submit_tx", params)["result"]["status"].as_string(),
            "accepted");
  EXPECT_EQ(call("submit_tx", params)["result"]["status"].as_string(),
            "duplicate");
  EXPECT_EQ(node_->pool_depth(), 1u);
}

TEST_F(RpcGatewayTest, BatchSubmitSettlesEveryTransferInOrder) {
  Json::Array specs;
  for (int nonce = 1; nonce <= 5; ++nonce) {
    Json spec;
    spec.set("sender", 1);
    spec.set("to", 2);
    spec.set("amount", 10 + nonce);
    spec.set("nonce", nonce);
    specs.push_back(std::move(spec));
  }
  Json params;
  params.set("txs", Json(std::move(specs)));
  const Json response = call("submit_txs", std::move(params));
  ASSERT_TRUE(response.has("result")) << response.dump();
  const Json::Array& results = response["result"]["results"].as_array();
  ASSERT_EQ(results.size(), 5u);
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i]["status"].as_string(), "accepted") << i;
    EXPECT_EQ(results[i]["nonce"].as_u64(), i + 1);
    ids.push_back(results[i]["id"].as_string());
  }
  EXPECT_EQ(node_->pool_depth(), 5u);

  // Batched status: one sweep covers all five plus an unknown id, and the
  // reply aligns with request order.
  Json::Array query_ids;
  for (const std::string& id : ids) query_ids.push_back(Json(id));
  query_ids.push_back(Json(std::string(64, 'e')));  // never submitted
  Json query;
  query.set("ids", Json(std::move(query_ids)));
  const Json status = call("get_txs", std::move(query));
  const Json::Array& states = status["result"]["states"].as_array();
  ASSERT_EQ(states.size(), 6u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(states[i].as_string(), "pending") << i;
  }
  EXPECT_EQ(states[5].as_string(), "unknown");
}

TEST_F(RpcGatewayTest, BatchSubmitReportsPerItemVerdicts) {
  // One good transfer, the same raw bytes twice (intra-batch duplicate), and
  // a nonce far ahead of the head state: the call succeeds and each entry
  // carries its own admission verdict.
  const ledger::SignedTransaction raw = ledger::sign_transaction(
      state::make_transfer_tx(3, 1, 0, state::Transfer{4, 7, {}}));
  Json::Array specs;
  Json raw_spec;
  raw_spec.set("raw", to_hex(raw.encode()));
  specs.push_back(raw_spec);
  specs.push_back(raw_spec);
  Json gapped;
  gapped.set("sender", 5);
  gapped.set("to", 6);
  gapped.set("amount", 1);
  gapped.set("nonce", 5000);  // beyond max_nonce_gap (1024)
  specs.push_back(std::move(gapped));
  Json params;
  params.set("txs", Json(std::move(specs)));
  const Json response = call("submit_txs", std::move(params));
  ASSERT_TRUE(response.has("result")) << response.dump();
  const Json::Array& results = response["result"]["results"].as_array();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0]["status"].as_string(), "accepted");
  EXPECT_EQ(results[1]["status"].as_string(), "duplicate");
  EXPECT_EQ(results[2]["status"].as_string(), "nonce_gap");
  EXPECT_EQ(node_->pool_depth(), 1u);
}

TEST_F(RpcGatewayTest, BatchEndpointsValidateTheirParams) {
  Json no_array;
  no_array.set("txs", 7);
  EXPECT_EQ(error_code(call("submit_txs", std::move(no_array))), -32602);

  Json::Array too_many;
  for (int i = 0; i < 513; ++i) {
    Json spec;
    spec.set("sender", 1);
    spec.set("to", 2);
    spec.set("amount", 1);
    too_many.push_back(std::move(spec));
  }
  Json oversized;
  oversized.set("txs", Json(std::move(too_many)));
  EXPECT_EQ(error_code(call("submit_txs", std::move(oversized))), -32602);

  Json bad_ids;
  bad_ids.set("ids", "not-an-array");
  EXPECT_EQ(error_code(call("get_txs", std::move(bad_ids))), -32602);

  Json::Array bad_hex;
  bad_hex.push_back(Json(std::string("zz")));
  Json bad_id_params;
  bad_id_params.set("ids", Json(std::move(bad_hex)));
  EXPECT_EQ(error_code(call("get_txs", std::move(bad_id_params))), -32602);
}

TEST_F(RpcGatewayTest, RejectionsCarryTheAdmissionVerdict) {
  const auto submit = [this](std::uint64_t sender, std::uint64_t nonce) {
    Json params;
    params.set("sender", sender);
    params.set("to", std::uint64_t{2});
    params.set("amount", std::uint64_t{1});
    params.set("nonce", nonce);
    return call("submit_tx", std::move(params));
  };
  Json stale = submit(1, 0);  // accounts start at next_nonce 1
  EXPECT_EQ(error_code(stale), -32000);
  EXPECT_EQ(stale["error"]["message"].as_string(), "stale_nonce");

  Json gap = submit(1, 5000);  // far past the admission window
  EXPECT_EQ(gap["error"]["message"].as_string(), "nonce_gap");

  Json unknown = submit(999, 1);  // outside the 16-member consortium
  EXPECT_EQ(unknown["error"]["message"].as_string(), "unknown_sender");
  EXPECT_EQ(node_->pool_depth(), 0u);
}

TEST_F(RpcGatewayTest, BadSignatureIsRejected) {
  ledger::SignedTransaction stx = ledger::sign_transaction(
      state::make_transfer_tx(1, 1, 0, state::Transfer{2, 1, {}}));
  stx.signature.s[0] ^= 0x01;
  Json params;
  params.set("raw", to_hex(stx.encode()));
  const Json response = call("submit_tx", std::move(params));
  EXPECT_EQ(error_code(response), -32000);
  EXPECT_EQ(response["error"]["message"].as_string(), "bad_signature");
  EXPECT_EQ(node_->pool_depth(), 0u);
}

TEST_F(RpcGatewayTest, BalanceHeadAndBlockQueries) {
  Json account;
  account.set("account", 1);
  const Json balance = call("get_balance", std::move(account));
  // Balances are exact decimal strings (128-bit range).
  EXPECT_EQ(balance["result"]["balance"].as_string(),
            std::to_string(node_->config().genesis_fund));
  EXPECT_EQ(balance["result"]["next_nonce"].as_u64(), 1u);

  const Json head = call("get_head", Json());
  EXPECT_EQ(head["result"]["height"].as_u64(), 0u);
  const std::string genesis_hex = head["result"]["hash"].as_string();

  Json by_hash;
  by_hash.set("hash", genesis_hex);
  EXPECT_EQ(call("get_block", std::move(by_hash))["result"]["height"].as_u64(),
            0u);
  Json by_height;
  by_height.set("height", 0);
  EXPECT_EQ(
      call("get_block", std::move(by_height))["result"]["hash"].as_string(),
      genesis_hex);
  Json missing;
  missing.set("height", 999);
  EXPECT_EQ(error_code(call("get_block", std::move(missing))), -32000);
}

TEST_F(RpcGatewayTest, StatusAndMetricsOverGet) {
  const auto status = client_->get("/status");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->status, 200);
  EXPECT_TRUE(Json::parse(status->body).has("head"));

  const auto metrics = client_->get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_TRUE(Json::parse(metrics->body).has("tx"));

  const auto missing = client_->get("/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(RpcGatewayTest, MetricsJsonCarriesStagesAndHealth) {
  const auto metrics = client_->get("/metrics");
  ASSERT_TRUE(metrics.has_value());
  const Json body = Json::parse(metrics->body);
  EXPECT_TRUE(body["stages"].is_object());
  EXPECT_TRUE(body["health"].is_object());
  EXPECT_TRUE(body["health"]["ready"].as_bool());
  EXPECT_TRUE(body["rpc"]["methods"].is_object());
}

TEST_F(RpcGatewayTest, PrometheusExpositionOverGet) {
  // Generate at least one request so rpc counters are nonzero.
  call("get_head", Json());
  const auto prom = client_->get("/metrics.prom");
  ASSERT_TRUE(prom.has_value());
  EXPECT_EQ(prom->status, 200);
  const std::string& text = prom->body;
  EXPECT_NE(text.find("# TYPE themis_pool_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE themis_tx_e2e_seconds histogram"),
            std::string::npos);
  if (obs::live::kTelemetryEnabled) {
    EXPECT_NE(text.find("themis_rpc_requests_total{method=\"get_head\"}"),
              std::string::npos);
  }
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(RpcGatewayTest, HealthReportsReadyStandalone) {
  // A node with no configured peers is trivially ready: 200 immediately.
  const auto health = client_->get("/health");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  const Json body = Json::parse(health->body);
  EXPECT_EQ(body["status"].as_string(), "ok");
  EXPECT_GE(body["uptime_seconds"].as_double(), 0.0);
}

TEST(RpcHealthTransition, UnreadyUntilPeerAppears) {
  // Reserve an ephemeral port, then release it: the probed node dials it
  // while nothing listens there (503), until a peer actually binds it (200).
  std::uint16_t peer_port = 0;
  {
    p2p::TcpListener probe;
    ASSERT_TRUE(probe.listen(0));
    peer_port = probe.port();
  }

  p2p::P2pNodeConfig config;
  config.id = 0;
  config.n_nodes = 16;
  config.mine = false;
  config.listen_port = 0;
  config.peers = {"127.0.0.1:" + std::to_string(peer_port)};
  config.backoff_initial_ms = 50;
  config.backoff_max_ms = 200;
  p2p::P2pNode node(config);
  ASSERT_TRUE(node.start());
  Gateway gateway(node);

  HttpRequest health;
  health.method = "GET";
  health.target = "/health";
  EXPECT_EQ(gateway.handle(health).status, 503);
  EXPECT_EQ(Json::parse(gateway.handle(health).body)["status"].as_string(),
            "unavailable");

  // The awaited peer comes up on the reserved port; the prober's reconnect
  // backoff finds it and readiness flips.
  p2p::P2pNodeConfig peer_config;
  peer_config.id = 1;
  peer_config.n_nodes = 16;
  peer_config.mine = false;
  peer_config.listen_port = peer_port;
  p2p::P2pNode peer(peer_config);
  ASSERT_TRUE(peer.start());

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (gateway.handle(health).status != 200 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(gateway.handle(health).status, 200);

  node.stop();
  peer.stop();
}

// Many clients hammering submit_tx at once: every admission must succeed
// exactly once and the pool must account for all of them (run under TSan via
// the ctest 'Rpc' regex).
TEST_F(RpcGatewayTest, ConcurrentSubmitStorm) {
  constexpr std::uint64_t kClients = 8;
  constexpr std::uint64_t kPerClient = 25;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> accepted{0};
  for (std::uint64_t c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &accepted] {
      HttpClient client("127.0.0.1", server_->port());
      for (std::uint64_t n = 1; n <= kPerClient; ++n) {
        Json request;
        request.set("jsonrpc", "2.0");
        request.set("id", n);
        request.set("method", "submit_tx");
        Json params;
        params.set("sender", c + 1);  // distinct senders: no nonce races
        params.set("to", std::uint64_t{0});
        params.set("amount", std::uint64_t{1});
        params.set("nonce", n);
        request.set("params", std::move(params));
        const auto result = client.post("/", request.dump());
        ASSERT_TRUE(result.has_value());
        const Json response = Json::parse(result->body);
        ASSERT_TRUE(response.has("result")) << response.dump();
        if (response["result"]["status"].as_string() == "accepted") {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(accepted.load(), kClients * kPerClient);
  EXPECT_EQ(node_->pool_depth(), kClients * kPerClient);
  EXPECT_EQ(node_->chain_stats().txs_accepted, kClients * kPerClient);
  EXPECT_EQ(gateway_->stats().errors, 0u);
}

}  // namespace
}  // namespace themis::rpc
