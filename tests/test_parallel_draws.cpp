// Determinism contract of the parallel mining-draw pipeline: a DrawStream is
// a buffered façade over one Rng stream — whoever refills it, and however far
// ahead, consumers see the exact bit sequence the unbuffered Rng would have
// produced — and therefore a PoxExperiment run is bit-identical for every
// draw_threads setting.  (TSan runs this suite: the 4-thread experiment
// exercises the TaskPool refill fan-out.)
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/experiment.h"
#include "sim/power_dist.h"

namespace themis {
namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

TEST(ParallelDraws, DrawStreamMatchesRngBitExact) {
  Rng direct(987654321);
  DrawStream stream(987654321, /*capacity=*/64);
  // Interleave the two consumer kinds with varying rates; refill at irregular
  // points mid-sequence — none of it may change a single bit.
  for (int i = 0; i < 1000; ++i) {
    if (i % 7 == 3) stream.refill();
    if (i % 3 == 0) {
      EXPECT_EQ(stream.next_u64(), direct.next_u64()) << "draw " << i;
    } else {
      const double rate = 0.25 + static_cast<double>(i % 13);
      EXPECT_EQ(bits(stream.next_exponential(rate)),
                bits(direct.next_exponential(rate)))
          << "draw " << i;
    }
  }
}

TEST(ParallelDraws, RefillNeverProducesBeyondCapacity) {
  DrawStream stream(42, /*capacity=*/32);
  stream.refill();
  EXPECT_EQ(stream.available(), 32u);
  EXPECT_FALSE(stream.low());
  for (int i = 0; i < 25; ++i) stream.next_u64();
  EXPECT_EQ(stream.available(), 7u);
  EXPECT_TRUE(stream.low());
  stream.refill();
  EXPECT_EQ(stream.available(), 32u);
}

sim::PoxConfig small_config(std::size_t draw_threads) {
  sim::PoxConfig c;
  c.algorithm = core::Algorithm::kThemis;
  c.n_nodes = 10;
  c.hash_rates = sim::uniform_power(10, c.h0);
  c.beta = 8;
  c.expected_interval_s = 4.0;
  c.txs_per_block = 4096;
  c.seed = 1;
  c.draw_threads = draw_threads;
  return c;
}

TEST(ParallelDraws, ExperimentBitIdenticalAcrossDrawThreads) {
  sim::PoxExperiment one(small_config(1));
  sim::PoxExperiment four(small_config(4));
  one.run_to_height(60, SimTime::seconds(2000));
  four.run_to_height(60, SimTime::seconds(2000));
  EXPECT_EQ(one.elapsed(), four.elapsed());
  EXPECT_EQ(one.simulation().events_processed(),
            four.simulation().events_processed());
  EXPECT_EQ(bits(one.tps()), bits(four.tps()));
  EXPECT_EQ(one.main_chain_producers(), four.main_chain_producers());
}

// Golden digest: pins the exact run (event order, RNG consumption, fork
// resolution) of a known configuration.  Any change to simulator internals
// that alters this digest is a determinism break, not a refactor.
TEST(ParallelDraws, GoldenRunDigestUnchanged) {
  sim::PoxExperiment exp(small_config(1));
  exp.run_to_height(150, SimTime::seconds(2000));

  EXPECT_EQ(bits(exp.tps()), bits(1012.6860817944706));
  EXPECT_EQ(bits(exp.elapsed().to_seconds()), bits(606.70331215700003));
  EXPECT_EQ(exp.simulation().events_processed(), 13122u);

  const std::vector<ledger::NodeId> producers = exp.main_chain_producers();
  ASSERT_EQ(producers.size(), 150u);
  const std::vector<ledger::NodeId> head(producers.begin(),
                                         producers.begin() + 10);
  const std::vector<ledger::NodeId> expected_head{0, 7, 5, 0, 0, 5, 0, 4, 3, 4};
  EXPECT_EQ(head, expected_head);

  std::uint64_t fnv = 14695981039346656037ull;
  for (const ledger::NodeId p : producers) {
    fnv = (fnv ^ p) * 1099511628211ull;
  }
  EXPECT_EQ(fnv, 719638680289947302ull);
}

}  // namespace
}  // namespace themis
