#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.h"

namespace themis {
namespace {

TEST(TaskPool, RunsEveryTaskBeforeShutdown) {
  std::atomic<int> counter{0};
  {
    TaskPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor is a graceful shutdown: all 200 must run.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(TaskPool, SingleThreadedPoolRunsTasksInSubmissionOrder) {
  std::vector<int> order;
  TaskPool pool(1);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();  // synchronizes-with the worker: `order` is safe to read
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(TaskPool, WaitIdleRethrowsFirstTaskException) {
  TaskPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed; the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  TaskPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(TaskPool, BoundedQueueAppliesBackpressureWithoutLosingTasks) {
  // Capacity far below the submission count: submit() must block instead of
  // growing the queue, and every task must still run exactly once.
  std::atomic<int> counter{0};
  {
    TaskPool pool(2, /*queue_capacity=*/4);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(TaskPool, RejectsEmptyTask) {
  TaskPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), PreconditionError);
}

TEST(TaskPool, ClampsThreadCountToAtLeastOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_index(8, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForIndex, SingleThreadRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for_index(1, 20, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(20);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelForIndex, ZeroItemsIsANoop) {
  parallel_for_index(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForIndex, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallel_for_index(4, 100,
                         [](std::size_t i) {
                           if (i == 7) throw std::runtime_error("item 7");
                         }),
      std::runtime_error);
}

TEST(ParallelForIndex, StopsSchedulingNewItemsAfterAFailure) {
  // After the throw, remaining unstarted items are skipped — the count of
  // executed items must stay well below the total.
  std::atomic<int> executed{0};
  try {
    parallel_for_index(2, 1'000'000, [&](std::size_t) {
      if (executed.fetch_add(1) == 10) throw std::runtime_error("stop");
      std::this_thread::sleep_for(std::chrono::microseconds(1));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(executed.load(), 1'000'000);
}

TEST(ParallelForEach, MutatesEveryItem) {
  std::vector<int> items(257, 1);
  parallel_for_each(4, items, [](int& x) { x += 1; });
  for (const int x : items) EXPECT_EQ(x, 2);
}

TEST(HardwareThreadCount, IsAtLeastOne) {
  EXPECT_GE(hardware_thread_count(), 1u);
}

}  // namespace
}  // namespace themis
