// Chain-sync protocol logic: locator construction and range serving are pure
// functions over BlockTree, so every catch-up scenario (fresh node, restart,
// healed fork) is testable without sockets.
#include "p2p/sync.h"

#include <gtest/gtest.h>

#include <string>

#include "tree_builder.h"

namespace themis::p2p {
namespace {

using test::TreeBuilder;

/// Linear chain g -> c1 -> ... -> cN on one builder.
void extend_chain(TreeBuilder& builder, std::size_t from, std::size_t to) {
  for (std::size_t i = from; i <= to; ++i) {
    builder.add("c" + std::to_string(i),
                i == 1 ? "g" : "c" + std::to_string(i - 1),
                static_cast<ledger::NodeId>(i % 4));
  }
}

TEST(BuildLocator, DenseNearHeadSparseTowardGenesis) {
  TreeBuilder builder;
  extend_chain(builder, 1, 64);
  const auto locator = build_locator(builder.tree(), builder.hash("c64"));

  ASSERT_FALSE(locator.empty());
  EXPECT_EQ(locator.front(), builder.hash("c64"));
  EXPECT_EQ(locator.back(), builder.tree().genesis_hash());

  // Heights strictly decrease, the first kLocatorDenseSpan+1 consecutively.
  std::uint64_t prev = builder.tree().height(locator[0]);
  for (std::size_t i = 1; i < locator.size(); ++i) {
    const std::uint64_t h = builder.tree().height(locator[i]);
    EXPECT_LT(h, prev);
    if (i <= kLocatorDenseSpan) EXPECT_EQ(h, prev - 1);
    prev = h;
  }
  // O(log height): far smaller than the chain itself.
  EXPECT_LT(locator.size(), 24u);
}

TEST(BuildLocator, ShortChainListsEveryBlock) {
  TreeBuilder builder;
  extend_chain(builder, 1, 3);
  const auto locator = build_locator(builder.tree(), builder.hash("c3"));
  ASSERT_EQ(locator.size(), 4u);  // c3 c2 c1 g
  EXPECT_EQ(locator.front(), builder.hash("c3"));
  EXPECT_EQ(locator.back(), builder.tree().genesis_hash());
}

TEST(BuildLocator, GenesisOnlyLocatorIsJustGenesis) {
  TreeBuilder builder;
  const auto locator =
      build_locator(builder.tree(), builder.tree().genesis_hash());
  ASSERT_EQ(locator.size(), 1u);
  EXPECT_EQ(locator[0], builder.tree().genesis_hash());
}

TEST(ServeRange, ServesExactlyTheMissingSuffix) {
  TreeBuilder responder;
  extend_chain(responder, 1, 20);

  // Requester shares the first 12 blocks.
  ledger::BlockTree requester;
  for (std::size_t i = 1; i <= 12; ++i) {
    requester.insert(responder.get("c" + std::to_string(i)));
  }
  const auto locator = build_locator(requester, responder.hash("c12"));

  const auto served = serve_range(responder.tree(), responder.hash("c20"),
                                  locator, 512, 1u << 30);
  ASSERT_EQ(served.size(), 8u);
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i]->id(), responder.hash("c" + std::to_string(13 + i)));
  }
}

TEST(ServeRange, ForkedRequesterIsServedFromTheForkPoint) {
  TreeBuilder responder;
  extend_chain(responder, 1, 10);
  // The requester followed a losing branch off c5 that the responder has
  // never seen (built but not inserted on the responder side).
  ledger::BlockTree requester;
  for (std::size_t i = 1; i <= 5; ++i) {
    requester.insert(responder.get("c" + std::to_string(i)));
  }
  const auto s1 = responder.make("s1", "c5", 3);
  const auto s2 = responder.make("s2", "s1", 3);
  requester.insert(s1);
  requester.insert(s2);

  const auto locator = build_locator(requester, s2->id());
  const auto served = serve_range(responder.tree(), responder.hash("c10"),
                                  locator, 512, 1u << 30);
  // s2/s1 are unknown to the responder, so the fork point is c5: everything
  // after it on the responder's main chain is served.
  ASSERT_EQ(served.size(), 5u);
  EXPECT_EQ(served.front()->id(), responder.hash("c6"));
  EXPECT_EQ(served.back()->id(), responder.hash("c10"));
}

TEST(ServeRange, HonorsMaxBlocks) {
  TreeBuilder responder;
  extend_chain(responder, 1, 30);
  ledger::BlockTree requester;  // fresh node: genesis-only locator
  const auto locator = build_locator(requester, requester.genesis_hash());
  const auto served = serve_range(responder.tree(), responder.hash("c30"),
                                  locator, 10, 1u << 30);
  ASSERT_EQ(served.size(), 10u);
  EXPECT_EQ(served.front()->id(), responder.hash("c1"));
  EXPECT_EQ(served.back()->id(), responder.hash("c10"));
}

TEST(ServeRange, HonorsByteBudget) {
  TreeBuilder responder;
  extend_chain(responder, 1, 30);
  ledger::BlockTree requester;
  const auto locator = build_locator(requester, requester.genesis_hash());
  const std::size_t one_block = responder.get("c1")->size_bytes();
  const auto served = serve_range(responder.tree(), responder.hash("c30"),
                                  locator, 512, one_block * 3);
  // Stops once the budget is met; may overshoot by at most one block.
  EXPECT_GE(served.size(), 3u);
  EXPECT_LE(served.size(), 4u);
}

TEST(ServeRange, CaughtUpRequesterGetsNothing) {
  TreeBuilder responder;
  extend_chain(responder, 1, 6);
  const auto locator = build_locator(responder.tree(), responder.hash("c6"));
  EXPECT_TRUE(serve_range(responder.tree(), responder.hash("c6"), locator, 512,
                          1u << 30)
                  .empty());
}

TEST(ServeRange, SideBranchLocatorEntriesAreSkipped) {
  // The responder KNOWS the requester's branch blocks but they are not on
  // the responder's main chain; they must not be chosen as the fork point.
  TreeBuilder responder;
  extend_chain(responder, 1, 10);
  responder.add("s1", "c5", 3);  // side branch the responder has seen

  ledger::BlockTree requester;
  for (std::size_t i = 1; i <= 5; ++i) {
    requester.insert(responder.get("c" + std::to_string(i)));
  }
  requester.insert(responder.get("s1"));

  const auto locator = build_locator(requester, responder.hash("s1"));
  const auto served = serve_range(responder.tree(), responder.hash("c10"),
                                  locator, 512, 1u << 30);
  ASSERT_EQ(served.size(), 5u);
  EXPECT_EQ(served.front()->id(), responder.hash("c6"));
}

}  // namespace
}  // namespace themis::p2p
