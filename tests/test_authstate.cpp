#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>

#include "common/serialize.h"
#include "crypto/sha256.h"
#include "state/authstate/merkle_state.h"
#include "state/authstate/snapshot.h"

namespace themis::state::authstate {
namespace {

namespace fs = std::filesystem;

LedgerState small_state() {
  LedgerState state;
  state.fund(0, 1000u);
  state.fund(1, UInt128(2, 5));  // a balance past 2^64
  state.fund(63, 7u);            // last slot of page 0
  state.fund(64, 9u);            // first slot of page 1
  state.fund(200, 11u);          // page 3
  return state;
}

TEST(MerkleState, EmptyStateCommitsToZeroRoot) {
  LedgerState state;
  EXPECT_EQ(page_count_of(state), 0u);
  EXPECT_EQ(state_root_of(state), Hash32{});
}

TEST(MerkleState, PageOfPartitionsIdSpace) {
  EXPECT_EQ(page_of(0), 0u);
  EXPECT_EQ(page_of(63), 0u);
  EXPECT_EQ(page_of(64), 1u);
  EXPECT_EQ(page_of(200), 3u);
}

TEST(MerkleState, PageCountCoversHighestLiveAccount) {
  EXPECT_EQ(page_count_of(small_state()), 4u);
  LedgerState one;
  one.fund(0, 1u);
  EXPECT_EQ(page_count_of(one), 1u);
}

TEST(MerkleState, DefaultAccountsDoNotAffectTheRoot) {
  LedgerState a = small_state();
  LedgerState b = small_state();
  // Materialize default entries in one copy only (e.g. via failed lookups
  // that insert) — the commitment must not see them.
  b.put(5, Account{});
  b.put(199, Account{});
  EXPECT_EQ(state_root_of(a), state_root_of(b));
}

TEST(MerkleState, RootIsDeterministicAcrossInsertionOrder) {
  LedgerState a;
  a.fund(3, 10u);
  a.fund(100, 20u);
  LedgerState b;
  b.fund(100, 20u);
  b.fund(3, 10u);
  EXPECT_EQ(state_root_of(a), state_root_of(b));
}

TEST(MerkleState, RootChangesWithAnyBalance) {
  LedgerState state = small_state();
  const Hash32 before = state_root_of(state);
  state.fund(0, 1u);
  EXPECT_NE(state_root_of(state), before);
}

TEST(MerkleState, ProveAndVerifyPresentAccount) {
  const LedgerState state = small_state();
  const Hash32 root = state_root_of(state);
  for (const ledger::NodeId id : {0u, 1u, 63u, 64u, 200u}) {
    const auto proof = prove_account(state, id);
    ASSERT_TRUE(proof.has_value()) << id;
    EXPECT_TRUE(verify_account_proof(root, id, state.account(id), *proof))
        << id;
  }
}

TEST(MerkleState, ProvesAbsenceWithinCommittedRange) {
  const LedgerState state = small_state();
  const Hash32 root = state_root_of(state);
  // Account 42 lives in page 0's range but has no entry; 150 sits in the
  // committed-but-empty page 2.
  for (const ledger::NodeId id : {42u, 150u}) {
    const auto proof = prove_account(state, id);
    ASSERT_TRUE(proof.has_value()) << id;
    EXPECT_TRUE(verify_account_proof(root, id, Account{}, *proof)) << id;
    // And the same proof rejects a fabricated balance.
    Account fake;
    fake.balance = 1u;
    EXPECT_FALSE(verify_account_proof(root, id, fake, *proof)) << id;
  }
}

TEST(MerkleState, NoProofPastCommittedRange) {
  const LedgerState state = small_state();
  EXPECT_FALSE(prove_account(state, 256).has_value());
  EXPECT_FALSE(prove_account(LedgerState{}, 0).has_value());
}

TEST(MerkleState, VerifyRejectsWrongClaim) {
  const LedgerState state = small_state();
  const Hash32 root = state_root_of(state);
  const auto proof = prove_account(state, 0);
  ASSERT_TRUE(proof.has_value());
  Account wrong = state.account(0);
  wrong.balance += 1u;
  EXPECT_FALSE(verify_account_proof(root, 0, wrong, *proof));
  wrong = state.account(0);
  wrong.next_nonce += 1;
  EXPECT_FALSE(verify_account_proof(root, 0, wrong, *proof));
}

TEST(MerkleState, VerifyRejectsTamperedProof) {
  const LedgerState state = small_state();
  const Hash32 root = state_root_of(state);
  const auto good = prove_account(state, 64);
  ASSERT_TRUE(good.has_value());
  const Account claimed = state.account(64);

  // Flipped sibling hash.
  auto tampered = *good;
  ASSERT_FALSE(tampered.steps.empty());
  tampered.steps[0].sibling[0] ^= 1;
  EXPECT_FALSE(verify_account_proof(root, 64, claimed, tampered));

  // Flipped direction bit.
  tampered = *good;
  tampered.steps[0].sibling_on_left = !tampered.steps[0].sibling_on_left;
  EXPECT_FALSE(verify_account_proof(root, 64, claimed, tampered));

  // Truncated and extended paths (depth must match the page span).
  tampered = *good;
  tampered.steps.pop_back();
  EXPECT_FALSE(verify_account_proof(root, 64, claimed, tampered));
  tampered = *good;
  tampered.steps.push_back(tampered.steps[0]);
  EXPECT_FALSE(verify_account_proof(root, 64, claimed, tampered));

  // Tampered page bytes.
  tampered = *good;
  ASSERT_FALSE(tampered.page_bytes.empty());
  tampered.page_bytes.back() ^= 1;
  EXPECT_FALSE(verify_account_proof(root, 64, claimed, tampered));

  // Proof presented for an id in a different page.
  EXPECT_FALSE(verify_account_proof(root, 0, state.account(0), *good));
}

TEST(MerkleState, VerifyRejectsCrossPageReplay) {
  // Two committed-but-empty pages encode identically; the page index baked
  // into the leaf hash must keep their proofs from being swapped.
  LedgerState state;
  state.fund(0, 1u);
  state.fund(300, 1u);  // commits empty pages 1..3
  const Hash32 root = state_root_of(state);
  const auto p1 = prove_account(state, 1 * kAccountsPerPage);
  ASSERT_TRUE(p1.has_value());
  EXPECT_TRUE(verify_account_proof(root, 1 * kAccountsPerPage, Account{}, *p1));
  // Relabel page 1's proof as a page-2 proof for a page-2 id.
  auto replay = *p1;
  replay.page = 2;
  EXPECT_FALSE(
      verify_account_proof(root, 2 * kAccountsPerPage, Account{}, replay));
}

TEST(MerkleState, VerifyRejectsNonCanonicalPageEncodings) {
  const LedgerState state = small_state();
  const Hash32 root = state_root_of(state);
  const auto good = prove_account(state, 0);
  ASSERT_TRUE(good.has_value());

  // Descending entries.
  auto bad = *good;
  Writer w;
  w.varint(2);
  w.u32(1);
  w.u64(state.account(1).balance.lo());
  w.u64(state.account(1).balance.hi());
  w.u64(state.account(1).next_nonce);
  w.u32(0);
  w.u64(state.account(0).balance.lo());
  w.u64(state.account(0).balance.hi());
  w.u64(state.account(0).next_nonce);
  bad.page_bytes = w.take();
  EXPECT_FALSE(verify_account_proof(root, 0, state.account(0), bad));

  // Default-valued entry smuggled in.
  bad = *good;
  Writer w2;
  w2.varint(1);
  w2.u32(0);
  w2.u64(0);
  w2.u64(0);
  w2.u64(1);  // == Account{}
  bad.page_bytes = w2.take();
  EXPECT_FALSE(verify_account_proof(root, 0, Account{}, bad));

  // Trailing garbage.
  bad = *good;
  bad.page_bytes.push_back(0);
  EXPECT_FALSE(verify_account_proof(root, 0, state.account(0), bad));

  // Entry from a different page's id range.
  bad = *good;
  Writer w3;
  w3.varint(1);
  w3.u32(64);  // not in page 0
  w3.u64(1);
  w3.u64(0);
  w3.u64(1);
  bad.page_bytes = w3.take();
  EXPECT_FALSE(verify_account_proof(root, 0, Account{}, bad));
}

TEST(RootCacheTest, RebuildMatchesStateRoot) {
  const LedgerState state = small_state();
  RootCache cache;
  cache.rebuild(state);
  EXPECT_EQ(cache.root(), state_root_of(state));
  EXPECT_EQ(cache.page_count(), page_count_of(state));
}

TEST(RootCacheTest, IncrementalUpdateMatchesRebuild) {
  LedgerState state = small_state();
  RootCache cache;
  cache.rebuild(state);

  // Touch an existing account and add one in a brand-new page far away
  // (commits empty pages in between).
  state.fund(0, 5u);
  state.fund(1000, 13u);
  cache.update(state, {0, 1000});
  EXPECT_EQ(cache.root(), state_root_of(state));
  EXPECT_EQ(cache.page_count(), page_count_of(state));

  // A long randomized walk: apply touches, compare against full recompute.
  std::mt19937 rng(77);
  std::vector<ledger::NodeId> touched;
  for (int step = 0; step < 50; ++step) {
    touched.clear();
    for (int k = 0; k < 5; ++k) {
      const ledger::NodeId id = rng() % 2048;
      Account account = state.account(id);
      account.balance += (rng() % 100) + 1;
      account.next_nonce += 1;
      state.put(id, account);
      touched.push_back(id);
    }
    cache.update(state, touched);
    ASSERT_EQ(cache.root(), state_root_of(state)) << "step " << step;
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("themis_snap_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = dir_ / "state.snap";
  }
  void TearDown() override { fs::remove_all(dir_); }

  Snapshot sample() {
    Snapshot snap;
    snap.height = 42;
    snap.block[0] = 0xab;
    snap.state = small_state();
    return snap;
  }

  fs::path dir_;
  fs::path path_;
};

TEST_F(SnapshotTest, WriteReadRoundTrip) {
  const Snapshot snap = sample();
  ASSERT_TRUE(write_snapshot(path_, snap));
  const auto back = read_snapshot(path_);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->height, 42u);
  EXPECT_EQ(back->block, snap.block);
  EXPECT_EQ(back->state, snap.state);
  EXPECT_EQ(back->state_root, state_root_of(snap.state));
  // No .tmp litter after a successful rename.
  EXPECT_FALSE(fs::exists(path_.string() + ".tmp"));
}

TEST_F(SnapshotTest, MissingFileIsAbsent) {
  EXPECT_FALSE(read_snapshot(path_).has_value());
  EXPECT_FALSE(read_snapshot(dir_).has_value());  // directory, not a file
}

TEST_F(SnapshotTest, ChecksumCatchesBitRot) {
  ASSERT_TRUE(write_snapshot(path_, sample()));
  Bytes data;
  {
    std::ifstream in(path_, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (const std::size_t at : {std::size_t{0}, data.size() / 2,
                               data.size() - 1}) {
    Bytes corrupt = data;
    corrupt[at] ^= 0x40;
    EXPECT_FALSE(decode_snapshot(corrupt).has_value()) << "byte " << at;
  }
  // Truncations at every boundary.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{31},
                                 data.size() / 2, data.size() - 1}) {
    const Bytes truncated(data.begin(),
                          data.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(decode_snapshot(truncated).has_value()) << "keep " << keep;
  }
}

TEST_F(SnapshotTest, RootMismatchRejectedEvenWithValidChecksum) {
  // Corrupt one balance byte *and* refresh the trailing checksum: the decode
  // must still fail, because the embedded root no longer matches the state.
  Bytes data = encode_snapshot(sample());
  data[data.size() - 32 - 9] ^= 0x01;  // inside the last account record
  const ByteSpan payload(data.data(), data.size() - 32);
  const Hash32 checksum = crypto::sha256d(payload);
  std::copy(checksum.begin(), checksum.end(), data.end() - 32);
  EXPECT_FALSE(decode_snapshot(data).has_value());
}

TEST_F(SnapshotTest, BadVersionRejected) {
  Bytes data = encode_snapshot(sample());
  data[4] = 0x7f;  // version field
  const ByteSpan payload(data.data(), data.size() - 32);
  const Hash32 checksum = crypto::sha256d(payload);
  std::copy(checksum.begin(), checksum.end(), data.end() - 32);
  EXPECT_FALSE(decode_snapshot(data).has_value());
}

TEST_F(SnapshotTest, OverwriteIsAtomic) {
  ASSERT_TRUE(write_snapshot(path_, sample()));
  Snapshot next = sample();
  next.height = 99;
  next.state.fund(500, 1u);
  ASSERT_TRUE(write_snapshot(path_, next));
  const auto back = read_snapshot(path_);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->height, 99u);
  EXPECT_EQ(back->state, next.state);
}

}  // namespace
}  // namespace themis::state::authstate
