#include "common/uint128.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>

#include "common/check.h"

namespace themis {
namespace {

TEST(UInt128, DefaultIsZero) {
  UInt128 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.lo(), 0u);
  EXPECT_EQ(v.hi(), 0u);
  EXPECT_EQ(v, UInt128::zero());
}

TEST(UInt128, ImplicitFromU64) {
  const UInt128 v = 42u;
  EXPECT_EQ(v.lo(), 42u);
  EXPECT_EQ(v.hi(), 0u);
  EXPECT_TRUE(v.fits_u64());
}

TEST(UInt128, TwoLimbConstruction) {
  const UInt128 v(7, 9);
  EXPECT_EQ(v.hi(), 7u);
  EXPECT_EQ(v.lo(), 9u);
  EXPECT_FALSE(v.fits_u64());
}

TEST(UInt128, AddCarriesAcrossLimb) {
  const UInt128 a(0, ~0ull);
  UInt128 out;
  EXPECT_FALSE(a.add_overflow(1u, out));
  EXPECT_EQ(out, UInt128(1, 0));
}

TEST(UInt128, AddOverflowDetected) {
  UInt128 out;
  EXPECT_TRUE(UInt128::max().add_overflow(1u, out));
  EXPECT_TRUE(UInt128::max().add_overflow(UInt128::max(), out));
  EXPECT_FALSE(UInt128::max().add_overflow(0u, out));
  EXPECT_EQ(out, UInt128::max());
}

TEST(UInt128, AddAliasingOutIsSafe) {
  UInt128 a(1, 2);
  EXPECT_FALSE(a.add_overflow(UInt128(3, 4), a));
  EXPECT_EQ(a, UInt128(4, 6));
}

TEST(UInt128, SubBorrowsAcrossLimb) {
  const UInt128 a(1, 0);
  UInt128 out;
  EXPECT_FALSE(a.sub_borrow(1u, out));
  EXPECT_EQ(out, UInt128(0, ~0ull));
}

TEST(UInt128, SubBorrowDetected) {
  UInt128 out;
  EXPECT_TRUE(UInt128(0u).sub_borrow(1u, out));
  EXPECT_TRUE(UInt128(1, 0).sub_borrow(UInt128(1, 1), out));
  EXPECT_FALSE(UInt128(1, 1).sub_borrow(UInt128(1, 1), out));
  EXPECT_TRUE(out.is_zero());
}

TEST(UInt128, MulOverflow) {
  UInt128 out;
  EXPECT_FALSE(UInt128(0, ~0ull).mul_overflow(2, out));
  EXPECT_EQ(out, UInt128(1, ~0ull - 1));
  EXPECT_TRUE(UInt128::max().mul_overflow(2, out));
  EXPECT_FALSE(UInt128::max().mul_overflow(1, out));
  EXPECT_EQ(out, UInt128::max());
  EXPECT_FALSE(UInt128::max().mul_overflow(0, out));
  EXPECT_TRUE(out.is_zero());
}

TEST(UInt128, WrappingOperators) {
  EXPECT_EQ(UInt128::max() + 1u, UInt128::zero());
  EXPECT_EQ(UInt128::zero() - 1u, UInt128::max());
  UInt128 v = 5u;
  v += UInt128(1, 0);
  EXPECT_EQ(v, UInt128(1, 5));
  v -= 5u;
  EXPECT_EQ(v, UInt128(1, 0));
}

TEST(UInt128, DivSmall) {
  std::uint64_t rem = 99;
  EXPECT_EQ(UInt128(100u).div_small(7, rem), UInt128(14u));
  EXPECT_EQ(rem, 2u);
  // 2^64 / 10 = 1844674407370955161 rem 6
  EXPECT_EQ(UInt128(1, 0).div_small(10, rem), UInt128(1844674407370955161ull));
  EXPECT_EQ(rem, 6u);
  EXPECT_THROW(UInt128(1u).div_small(0, rem), PreconditionError);
}

TEST(UInt128, ToDecimalKnownValues) {
  EXPECT_EQ(UInt128::zero().to_decimal(), "0");
  EXPECT_EQ(UInt128(7u).to_decimal(), "7");
  EXPECT_EQ(UInt128(~0ull).to_decimal(), "18446744073709551615");
  EXPECT_EQ(UInt128(1, 0).to_decimal(), "18446744073709551616");
  EXPECT_EQ(UInt128::max().to_decimal(),
            "340282366920938463463374607431768211455");
}

TEST(UInt128, FromDecimalKnownValues) {
  EXPECT_EQ(UInt128::from_decimal("0"), UInt128::zero());
  EXPECT_EQ(UInt128::from_decimal("18446744073709551616"), UInt128(1, 0));
  EXPECT_EQ(UInt128::from_decimal("340282366920938463463374607431768211455"),
            UInt128::max());
  // Leading zeros are forgiven.
  EXPECT_EQ(UInt128::from_decimal("007"), UInt128(7u));
}

TEST(UInt128, FromDecimalRejectsHostileInput) {
  EXPECT_FALSE(UInt128::from_decimal("").has_value());
  EXPECT_FALSE(UInt128::from_decimal("-1").has_value());
  EXPECT_FALSE(UInt128::from_decimal("+1").has_value());
  EXPECT_FALSE(UInt128::from_decimal(" 1").has_value());
  EXPECT_FALSE(UInt128::from_decimal("1 ").has_value());
  EXPECT_FALSE(UInt128::from_decimal("1.0").has_value());
  EXPECT_FALSE(UInt128::from_decimal("1e3").has_value());
  EXPECT_FALSE(UInt128::from_decimal("0x10").has_value());
  EXPECT_FALSE(UInt128::from_decimal("abc").has_value());
  // 2^128 exactly, and beyond.
  EXPECT_FALSE(
      UInt128::from_decimal("340282366920938463463374607431768211456")
          .has_value());
  EXPECT_FALSE(
      UInt128::from_decimal("999999999999999999999999999999999999999999")
          .has_value());
}

TEST(UInt128, DecimalRoundTripRandomized) {
  std::mt19937_64 rng(0x128u);
  for (int i = 0; i < 2000; ++i) {
    const UInt128 v(rng(), rng());
    const auto back = UInt128::from_decimal(v.to_decimal());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(UInt128, ArithmeticMatchesNativeU128Randomized) {
  std::mt19937_64 rng(0x129u);
  using u128 = unsigned __int128;
  for (int i = 0; i < 5000; ++i) {
    const UInt128 a(rng(), rng());
    const UInt128 b(rng(), rng());
    const u128 na = (u128(a.hi()) << 64) | a.lo();
    const u128 nb = (u128(b.hi()) << 64) | b.lo();
    UInt128 sum;
    EXPECT_EQ(a.add_overflow(b, sum), na + nb < na);
    EXPECT_EQ(sum.lo(), static_cast<std::uint64_t>(na + nb));
    EXPECT_EQ(sum.hi(), static_cast<std::uint64_t>((na + nb) >> 64));
    UInt128 diff;
    EXPECT_EQ(a.sub_borrow(b, diff), na < nb);
    EXPECT_EQ(diff.lo(), static_cast<std::uint64_t>(na - nb));
    EXPECT_EQ(diff.hi(), static_cast<std::uint64_t>((na - nb) >> 64));
    EXPECT_EQ(a < b, na < nb);
    EXPECT_EQ(a == b, na == nb);
  }
}

TEST(UInt128, Ordering) {
  EXPECT_LT(UInt128(0, ~0ull), UInt128(1, 0));
  EXPECT_LT(UInt128(1, 0), UInt128(1, 1));
  EXPECT_GT(UInt128::max(), UInt128(~0ull));
}

TEST(UInt128, ToDouble) {
  EXPECT_DOUBLE_EQ(UInt128(1000u).to_double(), 1000.0);
  EXPECT_NEAR(UInt128(1, 0).to_double(), 1.8446744073709552e19, 1e5);
}

TEST(UInt128, StreamOperatorPrintsDecimal) {
  std::ostringstream os;
  os << UInt128(1, 0);
  EXPECT_EQ(os.str(), "18446744073709551616");
}

}  // namespace
}  // namespace themis
