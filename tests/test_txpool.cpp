#include "ledger/txpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/check.h"

namespace themis::ledger {
namespace {

Transaction tx(std::uint64_t nonce) {
  return Transaction(0, nonce, 0, {});
}

Transaction tx_from(NodeId sender, std::uint64_t nonce) {
  return Transaction(sender, nonce, 0, {});
}

TEST(TxPool, AddAndContains) {
  TxPool pool;
  const Transaction t = tx(1);
  EXPECT_TRUE(pool.add(t));
  EXPECT_TRUE(pool.contains(t.id()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, RejectsDuplicates) {
  TxPool pool;
  EXPECT_TRUE(pool.add(tx(1)));
  EXPECT_FALSE(pool.add(tx(1)));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, SelectPreservesFifoOrder) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 5; ++i) pool.add(tx(i));
  const auto selected = pool.select(3);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].nonce(), 0u);
  EXPECT_EQ(selected[1].nonce(), 1u);
  EXPECT_EQ(selected[2].nonce(), 2u);
}

TEST(TxPool, SelectDoesNotRemove) {
  TxPool pool;
  pool.add(tx(1));
  pool.select(1);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, SelectMoreThanAvailable) {
  TxPool pool;
  pool.add(tx(1));
  EXPECT_EQ(pool.select(10).size(), 1u);
}

TEST(TxPool, RemoveConfirmed) {
  TxPool pool;
  const Transaction a = tx(1), b = tx(2);
  pool.add(a);
  pool.add(b);
  pool.remove({a.id()});
  EXPECT_FALSE(pool.contains(a.id()));
  EXPECT_TRUE(pool.contains(b.id()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, CapacityEvictsOldest) {
  TxPool pool(3);
  for (std::uint64_t i = 0; i < 5; ++i) pool.add(tx(i));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_FALSE(pool.contains(tx(0).id()));
  EXPECT_FALSE(pool.contains(tx(1).id()));
  EXPECT_TRUE(pool.contains(tx(4).id()));
}

TEST(TxPool, ZeroCapacityThrows) {
  EXPECT_THROW(TxPool(0), PreconditionError);
}

TEST(TxPool, Clear) {
  TxPool pool;
  pool.add(tx(1));
  pool.clear();
  EXPECT_TRUE(pool.empty());
  EXPECT_FALSE(pool.contains(tx(1).id()));
}

TEST(TxPool, SelectPredicateSkipsRejected) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 6; ++i) pool.add(tx(i));
  // The admit predicate filters mid-queue, so the result is not a FIFO
  // prefix: only even nonces survive.
  const auto selected =
      pool.select(10, [](const Transaction& t) { return t.nonce() % 2 == 0; });
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].nonce(), 0u);
  EXPECT_EQ(selected[1].nonce(), 2u);
  EXPECT_EQ(selected[2].nonce(), 4u);
  EXPECT_EQ(pool.size(), 6u);  // select never removes
}

TEST(TxPool, SelectPredicateRespectsMaxCount) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 6; ++i) pool.add(tx(i));
  const auto selected =
      pool.select(2, [](const Transaction& t) { return t.nonce() % 2 == 0; });
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].nonce(), 0u);
  EXPECT_EQ(selected[1].nonce(), 2u);
}

TEST(TxPool, PurgeDropsMatching) {
  TxPool pool;
  for (std::uint64_t i = 1; i <= 5; ++i) pool.add(tx(i));
  const std::size_t dropped =
      pool.purge([](const Transaction& t) { return t.nonce() <= 2; });
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_FALSE(pool.contains(tx(1).id()));
  EXPECT_FALSE(pool.contains(tx(2).id()));
  EXPECT_TRUE(pool.contains(tx(3).id()));
  // Order of survivors is preserved.
  const auto remaining = pool.select(10);
  ASSERT_EQ(remaining.size(), 3u);
  EXPECT_EQ(remaining[0].nonce(), 3u);
}

TEST(TxPool, IdsFifoOrderAndCap) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 5; ++i) pool.add(tx(i));
  const auto all = pool.ids(100);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0], tx(0).id());
  EXPECT_EQ(all[4], tx(4).id());
  EXPECT_EQ(pool.ids(2).size(), 2u);
  EXPECT_EQ(pool.ids(2)[0], tx(0).id());
}

TEST(TxPool, GetReturnsSignedTransaction) {
  TxPool pool;
  const SignedTransaction stx = sign_transaction(tx_from(1, 7));
  EXPECT_TRUE(pool.add(stx));
  const auto got = pool.get(stx.tx.id());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, stx);
  EXPECT_FALSE(pool.get(tx(99).id()).has_value());
}

TEST(TxPool, NextNonceHintSkipsPending) {
  TxPool pool;
  pool.add(tx_from(3, 5));
  pool.add(tx_from(3, 6));
  // state says next is 5, but 5 and 6 are already pending -> hint 7.
  EXPECT_EQ(pool.next_nonce_hint(3, 5), 7u);
}

TEST(TxPool, NextNonceHintFillsGap) {
  TxPool pool;
  pool.add(tx_from(3, 5));
  pool.add(tx_from(3, 7));
  // 6 is free: the hint fills the gap rather than jumping past 7.
  EXPECT_EQ(pool.next_nonce_hint(3, 5), 6u);
}

TEST(TxPool, NextNonceHintIgnoresOtherSenders) {
  TxPool pool;
  pool.add(tx_from(9, 5));
  EXPECT_EQ(pool.next_nonce_hint(3, 5), 5u);
}

TEST(TxPool, ShardCountIsConfigurable) {
  EXPECT_EQ(TxPool().shard_count(), 16u);
  EXPECT_EQ(TxPool(8, 4).shard_count(), 4u);
  EXPECT_EQ(TxPool(8, 0).shard_count(), 1u);  // clamped to at least one shard
}

// Selection must surface each sender's transactions in nonce order even when
// they arrived out of order — the only order the strict-nonce ledger can
// apply — while different senders interleave by arrival.
TEST(TxPool, SelectOrdersEachSenderByNonce) {
  TxPool pool;
  pool.add(tx_from(1, 2));
  pool.add(tx_from(1, 0));
  pool.add(tx_from(1, 1));
  const auto selected = pool.select(10);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].nonce(), 0u);
  EXPECT_EQ(selected[1].nonce(), 1u);
  EXPECT_EQ(selected[2].nonce(), 2u);
}

TEST(TxPool, SelectMergesSendersAcrossShards) {
  TxPool pool;
  constexpr int kSenders = 8;
  constexpr std::uint64_t kEach = 4;
  for (std::uint64_t n = 0; n < kEach; ++n) {
    for (int s = 0; s < kSenders; ++s) {
      pool.add(tx_from(static_cast<NodeId>(s), n));
    }
  }
  const auto selected = pool.select(kSenders * kEach);
  ASSERT_EQ(selected.size(), kSenders * kEach);
  // Every sender's subsequence must be nonce-ordered.
  std::map<NodeId, std::uint64_t> expected_next;
  for (const auto& tx : selected) {
    EXPECT_EQ(tx.nonce(), expected_next[tx.sender()]);
    ++expected_next[tx.sender()];
  }
  for (int s = 0; s < kSenders; ++s) {
    EXPECT_EQ(expected_next[static_cast<NodeId>(s)], kEach);
  }
}

TEST(TxPool, EvictionIsGlobalAcrossShards) {
  TxPool pool(4);
  // Senders 0..7 land on different shards; eviction must still drop the
  // globally oldest arrival, not a per-shard oldest.
  for (int s = 0; s < 8; ++s) pool.add(tx_from(static_cast<NodeId>(s), 1));
  EXPECT_EQ(pool.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_FALSE(pool.contains(tx_from(static_cast<NodeId>(s), 1).id()));
  }
  for (int s = 4; s < 8; ++s) {
    EXPECT_TRUE(pool.contains(tx_from(static_cast<NodeId>(s), 1).id()));
  }
}

// Concurrent submit storm across shards: many senders hammer add() while a
// reader mixes in whole-pool scans; TSan (ctest regex 'TxPool') proves the
// per-shard locking composes with the lock-all paths.
TEST(TxPool, ConcurrentSubmitStormAcrossShards) {
  TxPool pool(1 << 16, 8);
  constexpr int kSenders = 16;
  constexpr std::uint64_t kPerSender = 100;
  std::atomic<bool> stop{false};

  std::vector<std::thread> submitters;
  for (int s = 0; s < kSenders; ++s) {
    submitters.emplace_back([&pool, s] {
      for (std::uint64_t i = 0; i < kPerSender; ++i) {
        pool.add(tx_from(static_cast<NodeId>(s), i));
      }
    });
  }
  std::thread scanner([&pool, &stop] {
    while (!stop.load()) {
      pool.select(64);
      pool.ids(64);
      pool.size();
      pool.next_nonce_hint(3, 0);
    }
  });

  for (auto& th : submitters) th.join();
  stop.store(true);
  scanner.join();

  EXPECT_EQ(pool.size(), kSenders * kPerSender);
  const auto all = pool.select(kSenders * kPerSender + 1);
  EXPECT_EQ(all.size(), kSenders * kPerSender);
}

// Hammer the pool from adder, selector, and remover threads at once; TSan
// (ctest regex 'TxPool') proves the internal locking, and the final state
// must account for every transaction exactly once.
TEST(TxPool, ConcurrentAddSelectRemove) {
  TxPool pool(1 << 16);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200;
  std::atomic<bool> stop{false};

  std::vector<std::thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&pool, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        pool.add(tx_from(static_cast<NodeId>(t), i));
      }
    });
  }
  std::thread selector([&pool, &stop] {
    while (!stop.load()) {
      pool.select(32, [](const Transaction& t) { return t.nonce() % 2 == 0; });
      pool.ids(64);
      pool.next_nonce_hint(0, 0);
    }
  });
  std::thread remover([&pool, &stop] {
    while (!stop.load()) {
      pool.remove({tx_from(0, 0).id()});
      pool.purge([](const Transaction& t) {
        return t.sender() == 1 && t.nonce() < 8;
      });
    }
  });

  for (auto& th : adders) th.join();
  stop.store(true);
  selector.join();
  remover.join();

  // Thread 0 nonce 0 and thread 1 nonces < 8 may or may not have been
  // removed depending on timing; everything else must still be present.
  std::size_t expected_min = kThreads * kPerThread - 9;
  EXPECT_GE(pool.size(), expected_min);
  EXPECT_LE(pool.size(), kThreads * kPerThread);
  EXPECT_TRUE(pool.contains(tx_from(2, 100).id()));
}

}  // namespace
}  // namespace themis::ledger
