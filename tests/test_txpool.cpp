#include "ledger/txpool.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace themis::ledger {
namespace {

Transaction tx(std::uint64_t nonce) {
  return Transaction(0, nonce, 0, {});
}

TEST(TxPool, AddAndContains) {
  TxPool pool;
  const Transaction t = tx(1);
  EXPECT_TRUE(pool.add(t));
  EXPECT_TRUE(pool.contains(t.id()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, RejectsDuplicates) {
  TxPool pool;
  EXPECT_TRUE(pool.add(tx(1)));
  EXPECT_FALSE(pool.add(tx(1)));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, SelectPreservesFifoOrder) {
  TxPool pool;
  for (std::uint64_t i = 0; i < 5; ++i) pool.add(tx(i));
  const auto selected = pool.select(3);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].nonce(), 0u);
  EXPECT_EQ(selected[1].nonce(), 1u);
  EXPECT_EQ(selected[2].nonce(), 2u);
}

TEST(TxPool, SelectDoesNotRemove) {
  TxPool pool;
  pool.add(tx(1));
  pool.select(1);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, SelectMoreThanAvailable) {
  TxPool pool;
  pool.add(tx(1));
  EXPECT_EQ(pool.select(10).size(), 1u);
}

TEST(TxPool, RemoveConfirmed) {
  TxPool pool;
  const Transaction a = tx(1), b = tx(2);
  pool.add(a);
  pool.add(b);
  pool.remove({a.id()});
  EXPECT_FALSE(pool.contains(a.id()));
  EXPECT_TRUE(pool.contains(b.id()));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(TxPool, CapacityEvictsOldest) {
  TxPool pool(3);
  for (std::uint64_t i = 0; i < 5; ++i) pool.add(tx(i));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_FALSE(pool.contains(tx(0).id()));
  EXPECT_FALSE(pool.contains(tx(1).id()));
  EXPECT_TRUE(pool.contains(tx(4).id()));
}

TEST(TxPool, ZeroCapacityThrows) {
  EXPECT_THROW(TxPool(0), PreconditionError);
}

TEST(TxPool, Clear) {
  TxPool pool;
  pool.add(tx(1));
  pool.clear();
  EXPECT_TRUE(pool.empty());
  EXPECT_FALSE(pool.contains(tx(1).id()));
}

}  // namespace
}  // namespace themis::ledger
