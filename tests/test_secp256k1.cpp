#include "crypto/secp256k1.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace themis::crypto {
namespace {

FieldElement fe(std::uint64_t v) { return FieldElement::from_u64(v); }
Scalar sc(std::uint64_t v) { return Scalar::from_u64(v); }

UInt256 random_u256(Rng& rng) {
  return UInt256(rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64());
}

TEST(Field, PrimeHasExpectedValue) {
  EXPECT_EQ(field_prime().to_hex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
}

TEST(Scalar, OrderHasExpectedValue) {
  EXPECT_EQ(group_order().to_hex(),
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
}

TEST(Field, ConstructorReduces) {
  EXPECT_TRUE(FieldElement(field_prime()).is_zero());
  EXPECT_EQ(FieldElement(field_prime() + UInt256(5)), fe(5));
}

TEST(Field, AdditionWrapsModP) {
  const FieldElement pm1(field_prime() - UInt256(1));
  EXPECT_TRUE((pm1 + fe(1)).is_zero());
  EXPECT_EQ(pm1 + fe(3), fe(2));
}

TEST(Field, SubtractionWraps) {
  EXPECT_EQ(fe(2) - fe(5), FieldElement(field_prime() - UInt256(3)));
}

TEST(Field, NegateIsAdditiveInverse) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const FieldElement x(random_u256(rng));
    EXPECT_TRUE((x + x.negate()).is_zero());
  }
  EXPECT_TRUE(fe(0).negate().is_zero());
}

TEST(Field, MultiplicationCommutesAndDistributes) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const FieldElement a(random_u256(rng));
    const FieldElement b(random_u256(rng));
    const FieldElement c(random_u256(rng));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(Field, InverseProperty) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    FieldElement x(random_u256(rng));
    if (x.is_zero()) x = fe(1);
    EXPECT_EQ(x * x.inverse(), fe(1));
  }
}

TEST(Field, InverseOfZeroThrows) {
  EXPECT_THROW(fe(0).inverse(), PreconditionError);
}

TEST(Field, PowMatchesRepeatedMultiplication) {
  const FieldElement x = fe(7);
  FieldElement expected = fe(1);
  for (int i = 0; i < 13; ++i) expected = expected * x;
  EXPECT_EQ(x.pow(UInt256(13)), expected);
}

TEST(Field, FermatLittleTheorem) {
  const FieldElement x = fe(123456789);
  EXPECT_EQ(x.pow(field_prime() - UInt256(1)), fe(1));
}

TEST(Field, SqrtOfSquareRecovers) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const FieldElement x(random_u256(rng));
    const FieldElement sq = x.square();
    const auto root = sq.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == x || *root == x.negate());
  }
}

TEST(Field, SqrtOfNonResidueFails) {
  // -1 is a non-residue mod p (p = 3 mod 4).
  EXPECT_FALSE(fe(1).negate().sqrt().has_value());
}

TEST(Scalar, ArithmeticModOrder) {
  const Scalar nm1(group_order() - UInt256(1));
  EXPECT_TRUE((nm1 + sc(1)).is_zero());
  EXPECT_EQ(sc(2) - sc(5), Scalar(group_order() - UInt256(3)));
}

TEST(Scalar, MultiplicationReduces) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Scalar a(random_u256(rng));
    const Scalar b(random_u256(rng));
    EXPECT_LT((a * b).value(), group_order());
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(Scalar, InverseProperty) {
  Rng rng(6);
  for (int i = 0; i < 5; ++i) {
    Scalar x(random_u256(rng));
    if (x.is_zero()) x = sc(1);
    EXPECT_EQ(x * x.inverse(), sc(1));
  }
}

TEST(Scalar, BytesRoundTrip) {
  const Scalar x(UInt256(0x1234567890abcdefull));
  EXPECT_EQ(Scalar::from_bytes(x.to_bytes()), x);
}

TEST(Point, GeneratorOnCurve) {
  EXPECT_TRUE(Point::generator().on_curve());
}

TEST(Point, GeneratorHasKnownCoordinates) {
  const auto affine = Point::generator().to_affine();
  EXPECT_EQ(affine.x.value().to_hex(),
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  EXPECT_EQ(affine.y.value().to_hex(),
            "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
}

TEST(Point, IdentityProperties) {
  const Point inf;
  EXPECT_TRUE(inf.is_infinity());
  EXPECT_TRUE(inf.on_curve());
  EXPECT_TRUE((inf + Point::generator()).equals(Point::generator()));
  EXPECT_TRUE((Point::generator() + inf).equals(Point::generator()));
  EXPECT_THROW(inf.to_affine(), PreconditionError);
}

TEST(Point, OrderTimesGeneratorIsIdentity) {
  const Scalar nm1(group_order() - UInt256(1));
  const Point p = Point::generator().mul(nm1) + Point::generator();
  EXPECT_TRUE(p.is_infinity());
}

TEST(Point, DoubleMatchesAdd) {
  const Point g = Point::generator();
  EXPECT_TRUE(g.doubled().equals(g + g));
}

TEST(Point, AddInverseIsIdentity) {
  const Point g = Point::generator();
  EXPECT_TRUE((g + g.negate()).is_infinity());
}

TEST(Point, KnownMultiples) {
  // 2G from the standard secp256k1 tables.
  const auto two_g = Point::generator().mul(sc(2)).to_affine();
  EXPECT_EQ(two_g.x.value().to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  // 3G x-coordinate.
  const auto three_g = Point::generator().mul(sc(3)).to_affine();
  EXPECT_EQ(three_g.x.value().to_hex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
}

class ScalarMulLinearity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarMulLinearity, DistributesOverAddition) {
  const std::uint64_t k = GetParam();
  const Point g = Point::generator();
  // (k+1)G == kG + G
  EXPECT_TRUE(g.mul(sc(k + 1)).equals(g.mul(sc(k)) + g));
}

INSTANTIATE_TEST_SUITE_P(Ks, ScalarMulLinearity,
                         ::testing::Values(1, 2, 3, 7, 16, 255, 65537));

TEST(Point, MulZeroIsIdentity) {
  EXPECT_TRUE(Point::generator().mul(sc(0)).is_infinity());
}

TEST(Point, MulResultsOnCurve) {
  Rng rng(8);
  for (int i = 0; i < 3; ++i) {
    const Scalar k(random_u256(rng));
    EXPECT_TRUE(Point::generator().mul(k).on_curve());
  }
}

TEST(Point, LiftXRecoversEvenY) {
  const auto g2 = Point::generator().mul(sc(2)).to_affine();
  const auto lifted = Point::lift_x(g2.x.value());
  ASSERT_TRUE(lifted.has_value());
  const auto affine = lifted->to_affine();
  EXPECT_EQ(affine.x, g2.x);
  EXPECT_FALSE(affine.y.is_odd());
  EXPECT_TRUE(lifted->on_curve());
}

TEST(Point, LiftXRejectsNonCurveX) {
  // x = 5 is not on the curve (5^3+7 = 132 is a non-residue mod p).
  EXPECT_FALSE(Point::lift_x(UInt256(5)).has_value());
}

TEST(Point, LiftXRejectsOversizedX) {
  EXPECT_FALSE(Point::lift_x(field_prime()).has_value());
}

TEST(Point, AddAffineMatchesGeneralAdd) {
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    const Point a = Point::generator().mul(Scalar(random_u256(rng)));
    const Point b = Point::generator().mul(Scalar(random_u256(rng)));
    EXPECT_TRUE(a.add_affine(b.to_affine()).equals(a + b));
  }
  // Identity + affine, doubling (same point), and inverse (P + -P) corners.
  const Point g = Point::generator();
  EXPECT_TRUE(Point().add_affine(g.to_affine()).equals(g));
  EXPECT_TRUE(g.add_affine(g.to_affine()).equals(g.doubled()));
  EXPECT_TRUE(g.add_affine(g.negate().to_affine()).is_infinity());
}

TEST(Point, BatchNormalizeMatchesToAffine) {
  Rng rng(10);
  std::vector<Point> pts;
  for (int i = 0; i < 7; ++i) {
    pts.push_back(Point::generator().mul(Scalar(random_u256(rng))));
  }
  const auto affine = Point::batch_normalize(pts);
  ASSERT_EQ(affine.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const auto direct = pts[i].to_affine();
    EXPECT_EQ(affine[i].x, direct.x);
    EXPECT_EQ(affine[i].y, direct.y);
  }
  EXPECT_TRUE(Point::batch_normalize({}).empty());
}

// The fast multiplication paths must agree with the reference double-and-add
// ladder on random scalars and on the boundary scalars that stress the
// signed-digit recodings (all-ones nibbles, near-order values).
TEST(Point, FastMulPathsMatchReference) {
  Rng rng(11);
  std::vector<UInt256> cases = {
      UInt256(0), UInt256(1), UInt256(2), UInt256(15), UInt256(16),
      UInt256(0xFFFFFFFFFFFFFFFFull),
      group_order() - UInt256(1),
      group_order() - UInt256(2),
  };
  for (int i = 0; i < 8; ++i) cases.push_back(random_u256(rng));
  const Point p = Point::generator().mul(sc(0xABCDEF));
  for (const UInt256& raw : cases) {
    const Scalar k(raw);
    const Point expected = Point::generator().mul(k);
    EXPECT_TRUE(Point::mul_gen(k).equals(expected)) << raw.to_hex();
    EXPECT_TRUE(Point::generator().mul_wnaf(k).equals(expected)) << raw.to_hex();
    EXPECT_TRUE(p.mul_wnaf(k).equals(p.mul(k))) << raw.to_hex();
  }
}

TEST(Point, MultiScalarMulMatchesSumOfParts) {
  Rng rng(12);
  std::vector<Scalar> ks;
  std::vector<Point> ps;
  Point expected;
  for (int i = 0; i < 6; ++i) {
    const Scalar k(random_u256(rng));
    const Point p = Point::generator().mul(Scalar(random_u256(rng)));
    expected = expected + p.mul(k);
    ks.push_back(k);
    ps.push_back(p);
  }
  // Zero scalars and identity points must contribute nothing.
  ks.push_back(sc(0));
  ps.push_back(Point::generator());
  ks.push_back(sc(7));
  ps.push_back(Point());
  EXPECT_TRUE(multi_scalar_mul(ks, ps).equals(expected));
  EXPECT_TRUE(multi_scalar_mul({}, {}).is_infinity());
  EXPECT_THROW(multi_scalar_mul({sc(1)}, {}), PreconditionError);
}

}  // namespace
}  // namespace themis::crypto
