#include "sim/power_dist.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"

namespace themis::sim {
namespace {

TEST(PowerDist, RankingMatchesPaperAggregates) {
  const auto& ranking = btc_pool_ranking_jan2022();
  std::uint64_t total = 0;
  std::uint64_t unknown = 0;
  for (const PoolShare& p : ranking) {
    total += p.blocks;
    if (p.name == "unknown") unknown = p.blocks;
  }
  // One week of Bitcoin blocks.
  EXPECT_EQ(total, 1008u);
  // §VII-A / footnote 2: top-4 pools ~59.17 %, unknown ~1.68 %.
  const std::uint64_t top4 = ranking[0].blocks + ranking[1].blocks +
                             ranking[2].blocks + ranking[3].blocks;
  EXPECT_NEAR(static_cast<double>(top4) / total, 0.5917, 0.005);
  EXPECT_NEAR(static_cast<double>(unknown) / total, 0.0168, 0.002);
}

TEST(PowerDist, RankingIsSortedDescendingByBlocks) {
  const auto& ranking = btc_pool_ranking_jan2022();
  for (std::size_t i = 1; i + 1 < ranking.size(); ++i) {  // "unknown" is last
    EXPECT_GE(ranking[i - 1].blocks, ranking[i].blocks) << ranking[i].name;
  }
}

TEST(PowerDist, BtcPowerVectorShape) {
  const double h0 = 1000.0;
  const auto power = btc_jan2022_power(100, h0);
  ASSERT_EQ(power.size(), 100u);
  // Pool nodes: blocks * h0 (Fig. 3); biggest is FoundryUSA at 180 blocks.
  EXPECT_DOUBLE_EQ(power[0], 180.0 * h0);
  // Independent nodes at exactly h0.
  EXPECT_DOUBLE_EQ(power[50], h0);
  EXPECT_DOUBLE_EQ(power[99], h0);
}

TEST(PowerDist, BtcPowerNeedsEnoughNodes) {
  EXPECT_THROW(btc_jan2022_power(5, 1.0), PreconditionError);
  EXPECT_NO_THROW(btc_jan2022_power(20, 1.0));
}

TEST(PowerDist, BtcPowerTotalScalesWithH0) {
  const auto p1 = btc_jan2022_power(50, 1.0);
  const auto p2 = btc_jan2022_power(50, 2.0);
  const double t1 = std::accumulate(p1.begin(), p1.end(), 0.0);
  const double t2 = std::accumulate(p2.begin(), p2.end(), 0.0);
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
}

TEST(PowerDist, UniformPower) {
  const auto power = uniform_power(10, 3.5);
  ASSERT_EQ(power.size(), 10u);
  for (const double h : power) EXPECT_DOUBLE_EQ(h, 3.5);
  EXPECT_THROW(uniform_power(10, 0.0), PreconditionError);
}

TEST(PowerDist, ParetoHeavyTail) {
  const auto power = pareto_power(10000, 1.0, 1.2, 42);
  ASSERT_EQ(power.size(), 10000u);
  double max_v = 0, total = 0;
  for (const double h : power) {
    EXPECT_GE(h, 1.0);  // scale is the minimum
    max_v = std::max(max_v, h);
    total += h;
  }
  // Heavy tail: the single largest node holds a noticeable share.
  EXPECT_GT(max_v / total, 0.005);
}

TEST(PowerDist, ParetoDeterministicPerSeed) {
  EXPECT_EQ(pareto_power(10, 1.0, 2.0, 7), pareto_power(10, 1.0, 2.0, 7));
  EXPECT_NE(pareto_power(10, 1.0, 2.0, 7), pareto_power(10, 1.0, 2.0, 8));
}

TEST(PowerDist, ParetoRejectsBadShape) {
  EXPECT_THROW(pareto_power(10, 1.0, 0.0, 1), PreconditionError);
}

}  // namespace
}  // namespace themis::sim
