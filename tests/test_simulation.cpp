#include "net/simulation.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace themis::net {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::seconds(1.0), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
}

TEST(Simulation, EqualTimestampsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime fired;
  sim.schedule_after(SimTime::seconds(1.0), [&] {
    sim.schedule_after(SimTime::seconds(2.0), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime::seconds(3.0));
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(SimTime::seconds(5.0), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(SimTime::seconds(1.0), [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_after(SimTime::seconds(-1.0), [] {}),
               PreconditionError);
}

TEST(Simulation, NullCallbackThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_after(SimTime::zero(), nullptr), PreconditionError);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule_after(SimTime::seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelUnknownIdIsNoop) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(12345));
}

// Regression: cancelling an id that already fired used to return true and
// permanently skew pending() (the fired id sat in the cancelled set forever).
TEST(Simulation, CancelAlreadyFiredIdReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_after(SimTime::seconds(1.0), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
  // pending() must stay consistent for later scheduling.
  sim.schedule_after(SimTime::seconds(1.0), [] {});
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, CancelTwiceSecondReturnsFalse) {
  Simulation sim;
  const EventId id = sim.schedule_after(SimTime::seconds(1.0), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, PendingExcludesCancelledEvents) {
  Simulation sim;
  const EventId a = sim.schedule_after(SimTime::seconds(1.0), [] {});
  sim.schedule_after(SimTime::seconds(2.0), [] {});
  sim.schedule_after(SimTime::seconds(3.0), [] {});
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulation, CancelledEventsNotCounted) {
  Simulation sim;
  const EventId id = sim.schedule_after(SimTime::seconds(1.0), [] {});
  sim.schedule_after(SimTime::seconds(2.0), [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(5.0), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(2.0));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunUntilAdvancesClockWithNoEvents) {
  Simulation sim;
  sim.run_until(SimTime::seconds(10.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(10.0));
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(SimTime::zero(), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, RunRespectsEventCap) {
  Simulation sim;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    sim.schedule_after(SimTime::seconds(1.0), tick);
  };
  sim.schedule_after(SimTime::zero(), tick);
  sim.run(/*max_events=*/10);
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(SimTime, ArithmeticAndConversions) {
  EXPECT_EQ(SimTime::millis(1500), SimTime::seconds(1.5));
  EXPECT_EQ(SimTime::seconds(1.0) + SimTime::millis(500), SimTime::millis(1500));
  EXPECT_EQ((SimTime::seconds(2.0) - SimTime::seconds(0.5)).to_seconds(), 1.5);
  EXPECT_EQ(SimTime::micros(3) * 2, SimTime::micros(6));
  EXPECT_LT(SimTime::zero(), SimTime::nanos(1));
  EXPECT_GT(SimTime::infinity(), SimTime::seconds(1e9));
}

}  // namespace
}  // namespace themis::net
