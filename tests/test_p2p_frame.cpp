// Wire-frame robustness: the FrameDecoder and message codecs must survive
// arbitrary input splits, truncation, corruption and hostile length prefixes
// by throwing (-> connection close), never by crashing or over-allocating.
// The socket-level tests at the bottom drive a live PeerManager with garbage
// and mismatched handshakes and assert the connection dies cleanly.
#include "p2p/frame.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "common/serialize.h"
#include "consensus/wire.h"
#include "crypto/schnorr.h"
#include "finality/checkpoint.h"
#include "ledger/block.h"
#include "ledger/transaction.h"
#include "p2p/messages.h"
#include "p2p/node.h"
#include "p2p/peer_manager.h"
#include "p2p/socket.h"
#include "state/transfer.h"

namespace themis::p2p {
namespace {

Bytes bytes_of(std::initializer_list<int> values) {
  Bytes out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

Bytes pattern_payload(std::size_t n) {
  Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return payload;
}

// --- framing ---------------------------------------------------------------

TEST(FrameCodec, RoundTripsEmptyAndLargePayloads) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{1000},
                              std::size_t{100000}}) {
    const Bytes payload = pattern_payload(n);
    const Bytes wire = encode_frame(42, payload);
    EXPECT_EQ(wire.size(), n + kFrameOverhead);

    FrameDecoder decoder;
    decoder.feed(wire);
    const auto frame = decoder.poll();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, 42u);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_FALSE(decoder.poll().has_value());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameCodec, DecodesAcrossArbitrarySplits) {
  const Bytes payload = pattern_payload(301);
  const Bytes wire = encode_frame(7, payload);

  // Byte-at-a-time: a frame must appear exactly once, at the last byte.
  FrameDecoder decoder;
  std::size_t frames = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    decoder.feed(ByteSpan(&wire[i], 1));
    while (decoder.poll().has_value()) ++frames;
    if (i + 1 < wire.size()) EXPECT_EQ(frames, 0u);
  }
  EXPECT_EQ(frames, 1u);
}

TEST(FrameCodec, DecodesBackToBackFramesFromOneFeed) {
  Bytes wire = encode_frame(1, pattern_payload(10));
  const Bytes second = encode_frame(2, pattern_payload(20));
  wire.insert(wire.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(wire);
  const auto a = decoder.poll();
  const auto b = decoder.poll();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->type, 1u);
  EXPECT_EQ(b->type, 2u);
  EXPECT_FALSE(decoder.poll().has_value());
}

TEST(FrameCodec, TruncatedFrameStaysPending) {
  const Bytes wire = encode_frame(9, pattern_payload(64));
  FrameDecoder decoder;
  decoder.feed(ByteSpan(wire.data(), wire.size() - 1));
  EXPECT_FALSE(decoder.poll().has_value());  // not an error: just incomplete
  EXPECT_EQ(decoder.buffered(), wire.size() - 1);
}

TEST(FrameCodec, BadMagicThrowsAndPoisons) {
  Bytes wire = encode_frame(9, pattern_payload(8));
  wire[0] ^= 0xff;
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW(decoder.poll(), FrameError);
  // Poisoned: even fresh valid bytes must keep throwing.
  decoder.feed(encode_frame(1, {}));
  EXPECT_THROW(decoder.poll(), FrameError);
}

TEST(FrameCodec, CorruptedChecksumThrows) {
  Bytes wire = encode_frame(9, pattern_payload(32));
  wire.back() ^= 0x01;
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW(decoder.poll(), FrameError);
}

TEST(FrameCodec, CorruptedPayloadFailsChecksum) {
  Bytes wire = encode_frame(9, pattern_payload(32));
  wire[12 + 5] ^= 0x40;  // flip a payload bit, leave the checksum alone
  FrameDecoder decoder;
  decoder.feed(wire);
  EXPECT_THROW(decoder.poll(), FrameError);
}

TEST(FrameCodec, OversizedLengthPrefixRejectedBeforeBuffering) {
  // Hand-build a header claiming a payload just over the cap.  The decoder
  // must throw from the 12 header bytes alone — it never waits for (or
  // allocates) the claimed 4 MiB + 1.
  Writer w;
  w.u32(kFrameMagic);
  w.u32(1);
  w.u32(kMaxFramePayload + 1);
  FrameDecoder decoder;
  decoder.feed(w.buffer());
  EXPECT_THROW(decoder.poll(), FrameError);
}

TEST(FrameCodec, MaxSizePayloadIsAccepted) {
  const Bytes payload = pattern_payload(kMaxFramePayload);
  FrameDecoder decoder;
  decoder.feed(encode_frame(3, payload));
  const auto frame = decoder.poll();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), kMaxFramePayload);
}

// --- message payloads ------------------------------------------------------

TEST(Messages, HandshakeRoundTrips) {
  HandshakeMsg m;
  m.genesis.fill(0xab);
  m.node_id = 7;
  m.listen_port = 9101;
  m.head_height = 42;
  m.agent = "themis-noded/test";
  EXPECT_EQ(HandshakeMsg::decode(m.encode()), m);
}

TEST(Messages, HandshakeRejectsTruncationAndTrailingGarbage) {
  const Bytes wire = HandshakeMsg{}.encode();
  EXPECT_THROW(
      HandshakeMsg::decode(ByteSpan(wire.data(), wire.size() - 1)),
      DecodeError);
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_THROW(HandshakeMsg::decode(padded), DecodeError);
}

TEST(Messages, CheckHandshakeDistinguishesMismatches) {
  HandshakeMsg m;
  m.genesis.fill(3);
  ledger::BlockHash genesis{};
  genesis.fill(3);
  EXPECT_EQ(check_handshake(m, kNetworkMagic, kProtocolVersion, genesis),
            HandshakeReject::ok);
  m.network ^= 1;
  EXPECT_EQ(check_handshake(m, kNetworkMagic, kProtocolVersion, genesis),
            HandshakeReject::wrong_network);
  m.network = kNetworkMagic;
  m.version += 1;
  EXPECT_EQ(check_handshake(m, kNetworkMagic, kProtocolVersion, genesis),
            HandshakeReject::wrong_version);
  m.version = kProtocolVersion;
  m.genesis.fill(4);
  EXPECT_EQ(check_handshake(m, kNetworkMagic, kProtocolVersion, genesis),
            HandshakeReject::wrong_genesis);
}

TEST(Messages, InvRoundTripsAndBoundsCount) {
  InvMsg m;
  for (int i = 0; i < 5; ++i) {
    ledger::BlockHash h{};
    h.fill(static_cast<std::uint8_t>(i));
    m.hashes.push_back(h);
  }
  EXPECT_EQ(InvMsg::decode(m.encode()).hashes, m.hashes);

  // A hostile count well past kMaxInvHashes must throw before any reads.
  Writer w;
  w.varint(std::uint64_t{1} << 40);
  EXPECT_THROW(InvMsg::decode(w.buffer()), DecodeError);
}

TEST(Messages, GetBlocksAndBlocksRoundTrip) {
  GetBlocksMsg req;
  ledger::BlockHash h{};
  h.fill(9);
  req.locator = {h};
  req.max_blocks = 77;
  const GetBlocksMsg back = GetBlocksMsg::decode(req.encode());
  EXPECT_EQ(back.locator, req.locator);
  EXPECT_EQ(back.max_blocks, 77u);

  BlocksMsg blocks;
  blocks.blocks.push_back(bytes_of({1, 2, 3}));
  blocks.blocks.push_back(bytes_of({}));
  EXPECT_EQ(BlocksMsg::decode(blocks.encode()).blocks, blocks.blocks);

  Writer hostile;
  hostile.varint(kMaxSyncBlocks + 1);
  EXPECT_THROW(BlocksMsg::decode(hostile.buffer()), DecodeError);
}

TEST(Messages, CkptVoteRoundTripsAndRejectsTruncation) {
  finality::CheckpointVote vote;
  vote.height = 32;
  vote.block.fill(0x5c);
  vote.epoch = 2;
  vote.voter = 1;
  vote.signature = crypto::Keypair::from_node_id(1).sign(vote.digest());
  const CkptVoteMsg msg{vote};
  const Bytes wire = msg.encode();
  EXPECT_EQ(CkptVoteMsg::decode(wire).vote, vote);

  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW(CkptVoteMsg::decode(truncated), DecodeError);
  Bytes trailing = wire;
  trailing.push_back(0x00);
  EXPECT_THROW(CkptVoteMsg::decode(trailing), DecodeError);
}

// --- live-socket robustness ------------------------------------------------

class LivePeerManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PeerManagerConfig config;
    config.listen_port = 0;
    config.handshake.genesis.fill(0x11);
    config.handshake.node_id = 0;
    manager_ = std::make_unique<PeerManager>(std::move(config));
    manager_->set_frame_handler([](Peer&, std::uint32_t, ByteSpan) {});
    ASSERT_TRUE(manager_->start());
  }
  void TearDown() override { manager_->stop(); }

  TcpSocket dial() {
    TcpSocket s = TcpSocket::connect("127.0.0.1", manager_->listen_port(), 2000);
    EXPECT_TRUE(s.valid());
    s.set_timeouts(2000, 2000);
    return s;
  }

  /// Drain until orderly close (0) or hard error; false on timeout.
  bool closed_by_remote(TcpSocket& s) {
    std::uint8_t buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const int n = s.recv_some(buf, sizeof(buf));
      if (n == 0 || n == -2) return true;
    }
    return false;
  }

  std::unique_ptr<PeerManager> manager_;
};

TEST_F(LivePeerManagerTest, GarbageBytesCloseTheConnection) {
  TcpSocket s = dial();
  Bytes garbage(512);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 1);
  }
  ASSERT_TRUE(s.send_all(garbage));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_GE(manager_->stats().protocol_errors, 1u);
  EXPECT_EQ(manager_->ready_peer_count(), 0u);
}

TEST_F(LivePeerManagerTest, OversizedLengthPrefixClosesTheConnection) {
  TcpSocket s = dial();
  Writer w;
  w.u32(kFrameMagic);
  w.u32(consensus::kP2pPing);
  w.u32(kMaxFramePayload + 1);
  ASSERT_TRUE(s.send_all(w.buffer()));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_GE(manager_->stats().protocol_errors, 1u);
}

TEST_F(LivePeerManagerTest, WrongGenesisHandshakeIsRejected) {
  TcpSocket s = dial();
  HandshakeMsg hello;
  hello.genesis.fill(0x22);  // manager expects 0x11
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pHandshake, hello.encode())));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_GE(manager_->stats().handshakes_rejected, 1u);
  EXPECT_EQ(manager_->ready_peer_count(), 0u);
}

TEST_F(LivePeerManagerTest, WrongVersionHandshakeIsRejected) {
  TcpSocket s = dial();
  HandshakeMsg hello;
  hello.genesis.fill(0x11);
  hello.version = kProtocolVersion + 1;
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pHandshake, hello.encode())));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_GE(manager_->stats().handshakes_rejected, 1u);
}

TEST_F(LivePeerManagerTest, NonHandshakeFirstFrameIsAProtocolError) {
  TcpSocket s = dial();
  ASSERT_TRUE(
      s.send_all(encode_frame(consensus::kP2pPing, PingMsg{7}.encode())));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_GE(manager_->stats().protocol_errors, 1u);
}

TEST_F(LivePeerManagerTest, ValidHandshakeThenPingGetsPong) {
  TcpSocket s = dial();
  HandshakeMsg hello;
  hello.genesis.fill(0x11);
  hello.node_id = 5;
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pHandshake, hello.encode())));
  ASSERT_TRUE(
      s.send_all(encode_frame(consensus::kP2pPing, PingMsg{99}.encode())));

  // Expect the manager's own handshake followed by our pong.
  FrameDecoder decoder;
  std::uint8_t buf[4096];
  bool got_handshake = false;
  bool got_pong = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!got_pong && std::chrono::steady_clock::now() < deadline) {
    const int n = s.recv_some(buf, sizeof(buf));
    if (n == 0 || n == -2) break;
    if (n < 0) continue;
    decoder.feed(ByteSpan(buf, static_cast<std::size_t>(n)));
    while (const auto frame = decoder.poll()) {
      if (frame->type == consensus::kP2pHandshake) {
        const auto theirs = HandshakeMsg::decode(frame->payload);
        EXPECT_EQ(theirs.genesis, hello.genesis);
        got_handshake = true;
      } else if (frame->type == consensus::kP2pPong) {
        EXPECT_EQ(PingMsg::decode(frame->payload).nonce, 99u);
        got_pong = true;
      }
    }
  }
  EXPECT_TRUE(got_handshake);
  EXPECT_TRUE(got_pong);
  EXPECT_EQ(manager_->ready_peer_count(), 1u);
}

// --- transaction-message robustness against a live node ----------------------
//
// Same hostile-client drill as above, but against a full P2pNode so the tx
// handlers (kP2pTx / kP2pTxInv / kP2pGetTxData) are on the receiving end.

class LiveNodeTxWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P2pNodeConfig config;
    config.id = 0;
    config.n_nodes = 4;
    config.mine = false;  // keep the chain at genesis: deterministic nonces
    config.listen_port = 0;
    node_ = std::make_unique<P2pNode>(config);
    ASSERT_TRUE(node_->start());
  }
  void TearDown() override { node_->stop(); }

  /// Dial the node and complete a valid handshake (a real P2pNode checks the
  /// real genesis id, unlike the bare PeerManager fixture above).
  TcpSocket dial_and_handshake() {
    TcpSocket s = TcpSocket::connect("127.0.0.1", node_->listen_port(), 2000);
    EXPECT_TRUE(s.valid());
    s.set_timeouts(2000, 2000);
    HandshakeMsg hello;
    hello.genesis = ledger::Block::genesis().id();
    hello.node_id = 3;
    EXPECT_TRUE(
        s.send_all(encode_frame(consensus::kP2pHandshake, hello.encode())));
    return s;
  }

  bool closed_by_remote(TcpSocket& s) {
    std::uint8_t buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const int n = s.recv_some(buf, sizeof(buf));
      if (n == 0 || n == -2) return true;
    }
    return false;
  }

  bool wait_until(const std::function<bool()>& done, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return done();
  }

  static ledger::SignedTransaction signed_transfer(ledger::NodeId from,
                                                   std::uint64_t nonce) {
    return ledger::sign_transaction(
        state::make_transfer_tx(from, nonce, 0, state::Transfer{2, 1, {}}));
  }

  std::unique_ptr<P2pNode> node_;
};

TEST_F(LiveNodeTxWireTest, TruncatedTxFrameClosesConnectionNodeSurvives) {
  TcpSocket s = dial_and_handshake();
  // A kP2pTx payload must be exactly kSignedTxSize bytes; feed it half.
  ASSERT_TRUE(s.send_all(encode_frame(
      consensus::kP2pTx, Bytes(ledger::kSignedTxSize / 2, 0xab))));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_EQ(node_->pool_depth(), 0u);

  // The node shrugged it off: a fresh well-behaved connection still works.
  TcpSocket again = dial_and_handshake();
  ASSERT_TRUE(again.send_all(
      encode_frame(consensus::kP2pTx, signed_transfer(1, 1).encode())));
  EXPECT_TRUE(wait_until([this] { return node_->pool_depth() == 1; }));
}

TEST_F(LiveNodeTxWireTest, CorruptSignatureTxIsRejectedNotPooled) {
  TcpSocket s = dial_and_handshake();
  Bytes raw = signed_transfer(1, 1).encode();
  raw.back() ^= 0x01;  // flip one signature bit; decode still succeeds
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pTx, raw)));
  // Rejection is silent (no close: the frame was well-formed); wait for the
  // admission path to count it.
  EXPECT_TRUE(wait_until(
      [this] { return node_->chain_stats().txs_rejected >= 1; }));
  EXPECT_EQ(node_->pool_depth(), 0u);
}

TEST_F(LiveNodeTxWireTest, ValidTxOverWireEntersPool) {
  TcpSocket s = dial_and_handshake();
  const ledger::SignedTransaction stx = signed_transfer(1, 1);
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pTx, stx.encode())));
  ASSERT_TRUE(wait_until([this] { return node_->pool_depth() == 1; }));
  const auto status = node_->tx_status(stx.tx.id());
  EXPECT_EQ(status.state, P2pNode::TxStatusInfo::State::pending);
}

TEST_F(LiveNodeTxWireTest, TxInvTriggersGetTxData) {
  TcpSocket s = dial_and_handshake();
  const ledger::SignedTransaction stx = signed_transfer(1, 1);
  InvMsg inv;
  inv.hashes.push_back(stx.tx.id());
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pTxInv, inv.encode())));

  // The node wants the unknown tx: expect a kP2pGetTxData for its id.
  FrameDecoder decoder;
  std::uint8_t buf[4096];
  bool got_request = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!got_request && std::chrono::steady_clock::now() < deadline) {
    const int n = s.recv_some(buf, sizeof(buf));
    if (n == 0 || n == -2) break;
    if (n < 0) continue;
    decoder.feed(ByteSpan(buf, static_cast<std::size_t>(n)));
    while (const auto frame = decoder.poll()) {
      if (frame->type == consensus::kP2pGetTxData) {
        const InvMsg want = InvMsg::decode(frame->payload);
        ASSERT_EQ(want.hashes.size(), 1u);
        EXPECT_EQ(want.hashes[0], stx.tx.id());
        got_request = true;
      }
    }
  }
  EXPECT_TRUE(got_request);

  // Answer it; the tx must land in the pool.
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pTx, stx.encode())));
  EXPECT_TRUE(wait_until([this] { return node_->pool_depth() == 1; }));
}

TEST_F(LiveNodeTxWireTest, OversizedTxInvClosesConnection) {
  TcpSocket s = dial_and_handshake();
  InvMsg inv;
  inv.hashes.resize(kMaxInvHashes + 1);
  ASSERT_TRUE(s.send_all(encode_frame(consensus::kP2pTxInv, inv.encode())));
  EXPECT_TRUE(closed_by_remote(s));
  EXPECT_EQ(node_->pool_depth(), 0u);
}

TEST_F(LiveNodeTxWireTest, TruncatedCkptVoteFrameClosesConnectionNodeSurvives) {
  TcpSocket s = dial_and_handshake();
  // Ten garbage bytes cannot decode as a CheckpointVote: protocol error.
  ASSERT_TRUE(
      s.send_all(encode_frame(consensus::kP2pCkptVote, Bytes(10, 0xab))));
  EXPECT_TRUE(closed_by_remote(s));

  // The node shrugged it off: a fresh connection still moves traffic.
  TcpSocket again = dial_and_handshake();
  ASSERT_TRUE(again.send_all(
      encode_frame(consensus::kP2pTx, signed_transfer(1, 1).encode())));
  EXPECT_TRUE(wait_until([this] { return node_->pool_depth() == 1; }));
}

TEST_F(LiveNodeTxWireTest, BadSignatureCkptVoteRejectedWithoutClose) {
  TcpSocket s = dial_and_handshake();
  finality::CheckpointVote vote;
  vote.height = 16;  // default checkpoint interval: a legal checkpoint height
  vote.block.fill(0x77);
  vote.epoch = 1;
  vote.voter = 2;
  vote.signature = crypto::Keypair::from_node_id(2).sign(vote.digest());
  vote.signature.s[0] ^= 0x01;  // well-formed frame, invalid signature
  ASSERT_TRUE(s.send_all(
      encode_frame(consensus::kP2pCkptVote, CkptVoteMsg{vote}.encode())));
  EXPECT_TRUE(wait_until(
      [this] { return node_->chain_stats().ckpt_votes_rejected >= 1; }));
  EXPECT_EQ(node_->chain_stats().ckpt_votes_accepted, 0u);

  // Rejection is silent — the same connection still delivers a valid tx.
  ASSERT_TRUE(s.send_all(
      encode_frame(consensus::kP2pTx, signed_transfer(1, 1).encode())));
  EXPECT_TRUE(wait_until([this] { return node_->pool_depth() == 1; }));
}

}  // namespace
}  // namespace themis::p2p
