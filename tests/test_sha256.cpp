#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace themis::crypto {
namespace {

// FIPS 180-4 / NIST CAVS reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      to_hex(sha256(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: padding spills into a second block.
  EXPECT_EQ(to_hex(sha256(Bytes(64, 'a'))),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

class Sha256Streaming : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Streaming, ChunkedMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  const Hash32 expected = sha256(data);

  const std::size_t chunk = GetParam();
  Sha256 ctx;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t len = std::min(chunk, data.size() - off);
    ctx.update(ByteSpan(data.data() + off, len));
  }
  EXPECT_EQ(ctx.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, Sha256Streaming,
                         ::testing::Values(1, 3, 31, 32, 63, 64, 65, 127, 128,
                                           299));

TEST(Sha256, ResetReusesContext) {
  Sha256 ctx;
  ctx.update(bytes_of("abc"));
  ctx.finish();
  ctx.reset();
  ctx.update(bytes_of("abc"));
  EXPECT_EQ(to_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DoubleFinishThrows) {
  Sha256 ctx;
  ctx.finish();
  EXPECT_THROW(ctx.finish(), PreconditionError);
  EXPECT_THROW(ctx.update(bytes_of("x")), PreconditionError);
}

TEST(Sha256d, IsDoubleHash) {
  const Hash32 once = sha256(bytes_of("hello"));
  EXPECT_EQ(sha256d(bytes_of("hello")),
            sha256(ByteSpan(once.data(), once.size())));
}

TEST(Sha256d, KnownBitcoinStyleVector) {
  // sha256d("hello") is a well-known reference value.
  EXPECT_EQ(to_hex(sha256d(bytes_of("hello"))),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50");
}

TEST(TaggedHash, DomainSeparation) {
  const Bytes msg = bytes_of("same message");
  EXPECT_NE(tagged_hash("tag-a", msg), tagged_hash("tag-b", msg));
}

TEST(TaggedHash, Deterministic) {
  const Bytes msg = bytes_of("m");
  EXPECT_EQ(tagged_hash("t", msg), tagged_hash("t", msg));
}

TEST(TaggedHash, DiffersFromPlainHash) {
  const Bytes msg = bytes_of("m");
  EXPECT_NE(tagged_hash("t", msg), sha256(msg));
}

}  // namespace
}  // namespace themis::crypto
