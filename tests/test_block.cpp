#include "ledger/block.h"

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace themis::ledger {
namespace {

BlockHeader sample_header() {
  BlockHeader h;
  h.height = 5;
  h.prev = crypto::sha256(bytes_of("parent"));
  h.producer = 3;
  h.epoch = 1;
  h.difficulty = 1234.5;
  h.timestamp_nanos = 42;
  h.nonce = 777;
  h.tx_count = 2;
  return h;
}

TEST(BlockHeader, EncodeDecodeRoundTrip) {
  const BlockHeader h = sample_header();
  EXPECT_EQ(BlockHeader::decode_unsigned(h.encode_unsigned()), h);
}

TEST(BlockHeader, HashDependsOnEveryField) {
  const BlockHeader base = sample_header();
  const BlockHash base_hash = base.hash();

  auto mutate = [&](auto&& fn) {
    BlockHeader h = base;
    fn(h);
    EXPECT_NE(h.hash(), base_hash);
  };
  mutate([](BlockHeader& h) { h.height += 1; });
  mutate([](BlockHeader& h) { h.prev[0] ^= 1; });
  mutate([](BlockHeader& h) { h.merkle_root[1] ^= 1; });
  mutate([](BlockHeader& h) { h.producer += 1; });
  mutate([](BlockHeader& h) { h.epoch += 1; });
  mutate([](BlockHeader& h) { h.difficulty += 1; });
  mutate([](BlockHeader& h) { h.timestamp_nanos += 1; });
  mutate([](BlockHeader& h) { h.nonce += 1; });
  mutate([](BlockHeader& h) { h.tx_count += 1; });
}

TEST(Block, GenesisIsStable) {
  EXPECT_EQ(Block::genesis().id(), Block::genesis().id());
  EXPECT_EQ(Block::genesis().height(), 0u);
  EXPECT_EQ(Block::genesis().producer(), kNoNode);
  EXPECT_TRUE(Block::genesis().transactions().empty());
}

TEST(Block, IdMatchesHeaderHash) {
  const Block b(sample_header(), crypto::Signature{}, {});
  EXPECT_EQ(b.id(), sample_header().hash());
}

TEST(Block, MerkleRootOverTransactions) {
  const std::vector<Transaction> txs{Transaction(0, 1, 0, {}),
                                     Transaction(0, 2, 0, {})};
  BlockHeader h = sample_header();
  Block b(h, crypto::Signature{}, txs);
  std::vector<Hash32> leaves{txs[0].id(), txs[1].id()};
  EXPECT_EQ(b.compute_merkle_root(), crypto::merkle_root(leaves));
}

TEST(Block, SizeBytesCountsDeclaredTxs) {
  BlockHeader h = sample_header();
  h.tx_count = 100;
  const Block metadata_only(h, crypto::Signature{}, {});
  const Block empty(BlockHeader{}, crypto::Signature{}, {});
  EXPECT_EQ(metadata_only.size_bytes() - empty.size_bytes(),
            100 * kCanonicalTxSize);
}

TEST(Block, EncodeDecodeRoundTripWithBodies) {
  const std::vector<Transaction> txs{Transaction(1, 1, 0, bytes_of("a")),
                                     Transaction(2, 2, 0, bytes_of("b"))};
  BlockHeader h = sample_header();
  h.tx_count = 2;
  const Block b(h, crypto::Signature{}, txs);
  const Block decoded = Block::decode(b.encode());
  EXPECT_EQ(decoded.header(), b.header());
  EXPECT_EQ(decoded.transactions().size(), 2u);
  EXPECT_EQ(decoded.transactions()[0], txs[0]);
  EXPECT_EQ(decoded.id(), b.id());
}

TEST(Block, DecodeRejectsTrailingGarbage) {
  const Block b(sample_header(), crypto::Signature{}, {});
  Bytes raw = b.encode();
  raw.push_back(0);
  EXPECT_THROW(Block::decode(raw), DecodeError);
}

TEST(Block, DecodeRejectsTruncation) {
  const Block b(sample_header(), crypto::Signature{}, {});
  Bytes raw = b.encode();
  raw.pop_back();
  EXPECT_THROW(Block::decode(raw), DecodeError);
}

TEST(SatisfiesTarget, BoundaryComparisons) {
  const UInt256 target = UInt256::from_hex("0fff") << 240;
  Hash32 below = (UInt256::from_hex("0ffe") << 240).to_be_bytes();
  Hash32 equal = target.to_be_bytes();
  Hash32 above = (UInt256::from_hex("1000") << 240).to_be_bytes();
  EXPECT_TRUE(satisfies_target(below, target));
  EXPECT_FALSE(satisfies_target(equal, target));  // strictly less
  EXPECT_FALSE(satisfies_target(above, target));
}

}  // namespace
}  // namespace themis::ledger
