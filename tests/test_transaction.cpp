#include "ledger/transaction.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/serialize.h"

namespace themis::ledger {
namespace {

TEST(Transaction, EncodesToCanonicalSize) {
  const Transaction tx(3, 7, 1000, bytes_of("payload"));
  EXPECT_EQ(tx.encode().size(), kCanonicalTxSize);
}

TEST(Transaction, EmptyPayloadStillCanonical) {
  const Transaction tx(0, 0, 0, {});
  EXPECT_EQ(tx.encode().size(), kCanonicalTxSize);
}

TEST(Transaction, MaxPayloadFits) {
  const Transaction tx(1, 1, 1, Bytes(max_tx_payload(), 0x5a));
  EXPECT_EQ(tx.encode().size(), kCanonicalTxSize);
}

TEST(Transaction, OversizedPayloadThrows) {
  EXPECT_THROW(Transaction(1, 1, 1, Bytes(max_tx_payload() + 1, 0)),
               PreconditionError);
}

TEST(Transaction, DecodeRoundTrip) {
  const Transaction tx(42, 123456789, -5, bytes_of("hello world"));
  const Transaction decoded = Transaction::decode(tx.encode());
  EXPECT_EQ(decoded, tx);
  EXPECT_EQ(decoded.sender(), 42u);
  EXPECT_EQ(decoded.nonce(), 123456789u);
  EXPECT_EQ(decoded.timestamp_nanos(), -5);
}

TEST(Transaction, DecodeRejectsWrongSize) {
  EXPECT_THROW(Transaction::decode(Bytes(511, 0)), DecodeError);
  EXPECT_THROW(Transaction::decode(Bytes(513, 0)), DecodeError);
}

TEST(Transaction, DecodeRejectsOversizedLengthField) {
  Bytes raw = Transaction(1, 1, 1, {}).encode();
  // Corrupt the payload-length field (offset 20) to exceed capacity.
  raw[20] = 0xff;
  raw[21] = 0xff;
  EXPECT_THROW(Transaction::decode(raw), DecodeError);
}

TEST(Transaction, DecodeRejectsNonZeroPadding) {
  Bytes raw = Transaction(1, 1, 1, bytes_of("x")).encode();
  raw.back() = 0x01;
  EXPECT_THROW(Transaction::decode(raw), DecodeError);
}

TEST(Transaction, IdIsStable) {
  const Transaction tx(9, 9, 9, bytes_of("p"));
  EXPECT_EQ(tx.id(), tx.id());
  EXPECT_EQ(tx.id(), Transaction(9, 9, 9, bytes_of("p")).id());
}

TEST(Transaction, IdDependsOnEveryField) {
  const Transaction base(1, 2, 3, bytes_of("p"));
  EXPECT_NE(Transaction(2, 2, 3, bytes_of("p")).id(), base.id());
  EXPECT_NE(Transaction(1, 3, 3, bytes_of("p")).id(), base.id());
  EXPECT_NE(Transaction(1, 2, 4, bytes_of("p")).id(), base.id());
  EXPECT_NE(Transaction(1, 2, 3, bytes_of("q")).id(), base.id());
}

}  // namespace
}  // namespace themis::ledger
