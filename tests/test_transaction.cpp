#include "ledger/transaction.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/serialize.h"

namespace themis::ledger {
namespace {

TEST(Transaction, EncodesToCanonicalSize) {
  const Transaction tx(3, 7, 1000, bytes_of("payload"));
  EXPECT_EQ(tx.encode().size(), kCanonicalTxSize);
}

TEST(Transaction, EmptyPayloadStillCanonical) {
  const Transaction tx(0, 0, 0, {});
  EXPECT_EQ(tx.encode().size(), kCanonicalTxSize);
}

TEST(Transaction, MaxPayloadFits) {
  const Transaction tx(1, 1, 1, Bytes(max_tx_payload(), 0x5a));
  EXPECT_EQ(tx.encode().size(), kCanonicalTxSize);
}

TEST(Transaction, OversizedPayloadThrows) {
  EXPECT_THROW(Transaction(1, 1, 1, Bytes(max_tx_payload() + 1, 0)),
               PreconditionError);
}

TEST(Transaction, DecodeRoundTrip) {
  const Transaction tx(42, 123456789, -5, bytes_of("hello world"));
  const Transaction decoded = Transaction::decode(tx.encode());
  EXPECT_EQ(decoded, tx);
  EXPECT_EQ(decoded.sender(), 42u);
  EXPECT_EQ(decoded.nonce(), 123456789u);
  EXPECT_EQ(decoded.timestamp_nanos(), -5);
}

TEST(Transaction, DecodeRejectsWrongSize) {
  EXPECT_THROW(Transaction::decode(Bytes(511, 0)), DecodeError);
  EXPECT_THROW(Transaction::decode(Bytes(513, 0)), DecodeError);
}

TEST(Transaction, DecodeRejectsOversizedLengthField) {
  Bytes raw = Transaction(1, 1, 1, {}).encode();
  // Corrupt the payload-length field (offset 20) to exceed capacity.
  raw[20] = 0xff;
  raw[21] = 0xff;
  EXPECT_THROW(Transaction::decode(raw), DecodeError);
}

TEST(Transaction, DecodeRejectsNonZeroPadding) {
  Bytes raw = Transaction(1, 1, 1, bytes_of("x")).encode();
  raw.back() = 0x01;
  EXPECT_THROW(Transaction::decode(raw), DecodeError);
}

TEST(Transaction, IdIsStable) {
  const Transaction tx(9, 9, 9, bytes_of("p"));
  EXPECT_EQ(tx.id(), tx.id());
  EXPECT_EQ(tx.id(), Transaction(9, 9, 9, bytes_of("p")).id());
}

TEST(Transaction, IdDependsOnEveryField) {
  const Transaction base(1, 2, 3, bytes_of("p"));
  EXPECT_NE(Transaction(2, 2, 3, bytes_of("p")).id(), base.id());
  EXPECT_NE(Transaction(1, 3, 3, bytes_of("p")).id(), base.id());
  EXPECT_NE(Transaction(1, 2, 4, bytes_of("p")).id(), base.id());
  EXPECT_NE(Transaction(1, 2, 3, bytes_of("q")).id(), base.id());
}

TEST(SignedTransaction, EncodeDecodeRoundTrip) {
  const SignedTransaction stx =
      sign_transaction(Transaction(2, 5, 77, bytes_of("signed payload")));
  const Bytes raw = stx.encode();
  EXPECT_EQ(raw.size(), kSignedTxSize);
  const SignedTransaction decoded = SignedTransaction::decode(raw);
  EXPECT_EQ(decoded, stx);
  EXPECT_EQ(decoded.tx.id(), stx.tx.id());
}

TEST(SignedTransaction, DecodeRejectsWrongSize) {
  const Bytes raw = sign_transaction(Transaction(1, 1, 1, {})).encode();
  EXPECT_THROW(SignedTransaction::decode(ByteSpan(raw.data(), raw.size() - 1)),
               DecodeError);
  Bytes longer = raw;
  longer.push_back(0);
  EXPECT_THROW(SignedTransaction::decode(longer), DecodeError);
  EXPECT_THROW(SignedTransaction::decode(Bytes{}), DecodeError);
}

TEST(SignedTransaction, VerifiesUnderSenderKey) {
  const SignedTransaction stx =
      sign_transaction(Transaction(4, 1, 0, bytes_of("x")));
  EXPECT_TRUE(stx.verify(crypto::Keypair::from_node_id(4).public_key()));
  EXPECT_FALSE(stx.verify(crypto::Keypair::from_node_id(5).public_key()));
}

TEST(SignedTransaction, TamperedSignatureFails) {
  SignedTransaction stx = sign_transaction(Transaction(4, 2, 0, bytes_of("x")));
  stx.signature.s[0] ^= 0x01;
  EXPECT_FALSE(stx.verify(crypto::Keypair::from_node_id(4).public_key()));
}

TEST(SignedTransaction, SigningIsDeterministic) {
  // Deterministic consortium keys + deterministic BIP-340 nonces: re-signing
  // the same transaction (e.g. when a reorg returns it to the pool) must
  // reproduce the identical credential.
  const Transaction tx(7, 11, 42, bytes_of("replay me"));
  const SignedTransaction a = sign_transaction(tx);
  const SignedTransaction b = sign_transaction(tx);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace themis::ledger
