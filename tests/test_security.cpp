// Security properties from §VI: resilience to 51 % effective-computing-power
// attacks (Proposition 2) and selfish-mining behaviour under the three fork
// choice rules.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "consensus/forkchoice.h"
#include "consensus/wire.h"
#include "core/geost.h"
#include "sim/experiment.h"
#include "tree_builder.h"

namespace themis {
namespace {

using consensus::GhostRule;
using consensus::LongestChainRule;
using core::GeostRule;
using test::TreeBuilder;

// Proposition 2, deterministic skeleton: once a block is buried under an
// honest subtree growing faster than the attacker's chain, the weight gap
// only widens and the block stays on the main chain under GHOST and GEOST.
TEST(Resilience, BuriedBlockSurvivesSlowerAttacker) {
  TreeBuilder b;
  // Honest chain: 10 blocks by rotating producers.
  std::string parent = "g";
  for (int i = 0; i < 10; ++i) {
    const std::string name = "h" + std::to_string(i);
    b.add(name, parent, static_cast<ledger::NodeId>(i % 5));
    parent = name;
  }
  // Attacker (q < 1): only 7 blocks in the same wall-clock span.
  parent = "g";
  for (int i = 0; i < 7; ++i) {
    const std::string name = "a" + std::to_string(i);
    b.add(name, parent, 9);
    parent = name;
  }
  GeostRule geost(10);
  GhostRule ghost;
  EXPECT_EQ(geost.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("h9"));
  EXPECT_EQ(ghost.choose_head(b.tree(), b.tree().genesis_hash()), b.hash("h9"));
  EXPECT_TRUE(b.tree().is_ancestor(b.hash("h0"), b.hash("h9")));
}

// Proposition 2, probabilistic: simulate honest rate lambda and attacker rate
// q*lambda; the probability that the attacker ever catches up from k blocks
// behind is (q)^k -> displacement probability decays with burial depth.
class CatchUpProbability : public ::testing::TestWithParam<double> {};

TEST_P(CatchUpProbability, DecaysWithBurialDepth) {
  const double q = GetParam();
  Rng rng(1234);
  const int trials = 2000;
  auto catch_up_rate = [&](int deficit) {
    int caught = 0;
    for (int t = 0; t < trials; ++t) {
      int gap = deficit;
      // Random walk: attacker closes the gap with probability q/(1+q).
      for (int step = 0; step < 400 && gap > 0 && gap < 60; ++step) {
        gap += rng.next_bernoulli(q / (1.0 + q)) ? -1 : 1;
      }
      if (gap <= 0) ++caught;
    }
    return static_cast<double>(caught) / trials;
  };
  const double shallow = catch_up_rate(2);
  const double deep = catch_up_rate(8);
  EXPECT_LT(deep, shallow);
  EXPECT_NEAR(shallow, std::pow(q, 2), 0.08);
  EXPECT_LT(deep, std::pow(q, 8) + 0.03);
}

INSTANTIATE_TEST_SUITE_P(AttackerShares, CatchUpProbability,
                         ::testing::Values(0.3, 0.5, 0.7));

// End-to-end 51%-style attack: an attacker with under half the effective
// power mines a private chain from a mid-run fork point and reveals it; the
// honest GEOST network must not reorg the buried prefix.
TEST(Resilience, PrivateChainRevealDoesNotDisplaceBuriedBlocks) {
  sim::PoxConfig cfg;
  cfg.algorithm = core::Algorithm::kThemis;
  cfg.n_nodes = 24;
  cfg.beta = 8;
  cfg.txs_per_block = 0;
  cfg.seed = 11;
  sim::PoxExperiment exp(cfg);
  exp.run_to_height(60);

  auto& reference = exp.node(0);
  const auto chain = reference.main_chain();
  ASSERT_GT(chain.size(), 41u);
  const auto fork_point = chain[chain.size() - 21];  // 20 blocks deep
  const auto buried = chain[chain.size() - 20];

  // Forge an attacker chain of 12 blocks from the fork point (fewer than the
  // 20 honest blocks on top).  It must carry plausible difficulties to pass
  // validation, so mark producer 23 and reuse the expected difficulty.
  core::AdaptiveConfig adaptive;
  adaptive.n_nodes = cfg.n_nodes;
  adaptive.delta = exp.delta();
  adaptive.expected_interval_s = cfg.expected_interval_s;
  adaptive.h0 = cfg.h0;
  adaptive.initial_base_difficulty =
      cfg.expected_interval_s *
      std::accumulate(exp.hash_rates().begin(), exp.hash_rates().end(), 0.0);
  core::AdaptiveDifficulty forger(adaptive);

  ledger::BlockHash parent = fork_point;
  for (int i = 0; i < 12; ++i) {
    ledger::BlockHeader h;
    h.height = reference.tree().height(parent) + 1;
    h.prev = parent;
    h.producer = 23;
    h.epoch = forger.epoch_for(reference.tree(), parent);
    h.difficulty = forger.difficulty_for(reference.tree(), parent, 23);
    h.timestamp_nanos = exp.elapsed().count_nanos();
    h.nonce = static_cast<std::uint64_t>(i) + 777;
    auto block = std::make_shared<const ledger::Block>(
        h, crypto::Signature{}, std::vector<ledger::Transaction>{});
    exp.network().broadcast(23, consensus::kBlockAnnounce, block->size_bytes(),
                            ledger::BlockPtr(block));
    exp.simulation().run_until(exp.elapsed() + SimTime::seconds(1.0));
    parent = block->id();
  }
  exp.simulation().run_until(exp.elapsed() + SimTime::seconds(10.0));

  // The buried block is still on every node's main chain.
  for (std::size_t i = 0; i < exp.size(); ++i) {
    EXPECT_TRUE(exp.node(i).tree().is_ancestor(buried, exp.node(i).head()))
        << "node " << i << " was reorged";
  }
}

// Selfish mining (Fig. 2 discussion): a withheld longer chain displaces the
// honest chain under longest-chain but not under GHOST/GEOST once the honest
// subtree is heavier.
TEST(SelfishMining, WeightBeatsLength) {
  TreeBuilder b;
  b.add("h1", "g", 0);
  b.add("h2a", "h1", 1);
  b.add("h2b", "h1", 2);  // honest fork adds weight
  b.add("h3", "h2a", 3);
  // Attacker withholds a 4-deep chain and reveals.
  b.add("s1", "g", 9);
  b.add("s2", "s1", 9);
  b.add("s3", "s2", 9);
  b.add("s4", "s3", 9);

  EXPECT_EQ(LongestChainRule().choose_head(b.tree(), b.tree().genesis_hash()),
            b.hash("s4"));
  EXPECT_EQ(GhostRule().choose_head(b.tree(), b.tree().genesis_hash()),
            b.hash("h3"));
  EXPECT_EQ(GeostRule(10).choose_head(b.tree(), b.tree().genesis_hash()),
            b.hash("h3"));
}

// GEOST's extra tie-break confirms forks faster than GHOST: with equal
// weights, GHOST stays with first-received while GEOST already commits to the
// more equal subtree — so a single additional block settles GEOST's choice
// network-wide even when receipt orders differ between nodes.
TEST(SelfishMining, GeostBreaksWeightSymmetry) {
  TreeBuilder b;
  b.add("x", "g", 0);
  b.add("x1", "x", 0);  // concentrated branch, weight 2
  b.add("y", "g", 1);
  b.add("y1", "y", 2);  // equal branch, weight 2
  // GHOST cannot separate them except by local receipt order...
  EXPECT_EQ(GhostRule().choose_head(b.tree(), b.tree().genesis_hash()),
            b.hash("x1"));
  // ...GEOST picks the equal subtree on *every* node regardless of receipt.
  EXPECT_EQ(GeostRule(4).choose_head(b.tree(), b.tree().genesis_hash()),
            b.hash("y1"));
}

// §IV-B: idle nodes cannot grind difficulty down — the multiple floor keeps
// every difficulty at or above the basic difficulty.
TEST(DifficultyFloor, HoldsUnderLongIdleness) {
  TreeBuilder b;
  core::AdaptiveConfig cfg;
  cfg.n_nodes = 4;
  cfg.delta = 4;
  cfg.expected_interval_s = 1.0;
  cfg.h0 = 1.0;
  cfg.enable_retarget = false;
  core::AdaptiveDifficulty policy(cfg);
  // Node 3 idles for 5 full epochs.
  std::string parent = "g";
  for (int i = 0; i < 20; ++i) {
    const std::string name = "c" + std::to_string(i);
    b.add(name, parent, static_cast<ledger::NodeId>(i % 3));
    parent = name;
  }
  const double base = policy.initial_base_difficulty();
  for (int epoch_tip : {3, 7, 11, 15, 19}) {
    const std::string tip = "c" + std::to_string(epoch_tip);
    EXPECT_GE(policy.difficulty_for(b.tree(), b.hash(tip), 3), base);
  }
}

}  // namespace
}  // namespace themis
