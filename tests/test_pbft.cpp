#include "pbft/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace themis::pbft {
namespace {

net::LinkConfig paper_link() {
  return net::LinkConfig{.bandwidth_bps = 20e6, .min_delay = SimTime::millis(100)};
}

PbftConfig fast_config(std::size_t n) {
  PbftConfig c;
  c.n_nodes = n;
  c.batch_size = 100;
  c.base_timeout = SimTime::seconds(5.0);
  c.verify_delay = SimTime::micros(100);
  c.exec_delay_per_tx = SimTime::micros(100);
  return c;
}

struct Env {
  explicit Env(std::size_t n, PbftConfig cfg)
      : network(sim, paper_link(), n, 2, 9), cluster(sim, network, cfg) {}
  Env(std::size_t n) : Env(n, fast_config(n)) {}

  net::Simulation sim;
  net::GossipNetwork network;
  PbftCluster cluster;
};

TEST(Pbft, RejectsTooFewReplicas) {
  net::Simulation sim;
  net::GossipNetwork network(sim, paper_link(), 3, 2, 9);
  EXPECT_THROW(PbftReplica(sim, network, fast_config(3), 0), PreconditionError);
}

TEST(Pbft, QuorumArithmetic) {
  Env env(4);
  EXPECT_EQ(env.cluster.replica(0).fault_bound(), 1u);
  EXPECT_EQ(env.cluster.replica(0).quorum(), 3u);
  Env env7(7);
  EXPECT_EQ(env7.cluster.replica(0).fault_bound(), 2u);
  EXPECT_EQ(env7.cluster.replica(0).quorum(), 5u);
}

TEST(Pbft, LeaderRotatesRoundRobin) {
  EXPECT_EQ(PbftReplica::leader_of(1, 0, 4), 1u);
  EXPECT_EQ(PbftReplica::leader_of(2, 0, 4), 2u);
  EXPECT_EQ(PbftReplica::leader_of(4, 0, 4), 0u);
  EXPECT_EQ(PbftReplica::leader_of(1, 1, 4), 2u);  // view shifts the rotation
}

TEST(Pbft, CommitsSequencesInNormalOperation) {
  Env env(4);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(60.0));
  EXPECT_GE(env.cluster.max_committed_seq(), 10u);
  EXPECT_EQ(env.cluster.total_view_changes(), 0u);
  // Every replica commits the same prefix.
  const std::uint64_t min_committed = [&] {
    std::uint64_t m = UINT64_MAX;
    for (std::size_t i = 0; i < 4; ++i) {
      m = std::min(m, env.cluster.replica(i).committed_seq());
    }
    return m;
  }();
  EXPECT_GE(min_committed + 2, env.cluster.max_committed_seq());
}

TEST(Pbft, ProducersRotatePerfectlyEqually) {
  Env env(4);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(120.0));
  const auto& producers = env.cluster.replica(0).committed_producers();
  ASSERT_GE(producers.size(), 8u);
  std::vector<std::uint64_t> counts(4, 0);
  for (const auto& [seq, producer] : producers) {
    ASSERT_LT(producer, 4u);
    ++counts[producer];
    EXPECT_EQ(producer, PbftReplica::leader_of(seq, 0, 4));
  }
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*max_it - *min_it, 1u);  // Fig. 1b: perfect round-robin equality
}

TEST(Pbft, CommittedTxsMatchBatchSize) {
  Env env(4);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(30.0));
  EXPECT_EQ(env.cluster.max_committed_txs(),
            env.cluster.max_committed_seq() * 100);
}

TEST(Pbft, SuppressedLeaderTriggersViewChangeButLivenessHolds) {
  Env env(4);
  env.cluster.replica(1).set_suppressed(true);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(120.0));
  EXPECT_GT(env.cluster.total_view_changes(), 0u);
  EXPECT_GE(env.cluster.max_committed_seq(), 4u);
}

TEST(Pbft, SuppressionCostsThroughput) {
  Env healthy(4);
  healthy.cluster.start();
  healthy.sim.run_until(SimTime::seconds(200.0));

  Env attacked(4);
  attacked.cluster.suppress_producers(1);
  attacked.cluster.start();
  attacked.sim.run_until(SimTime::seconds(200.0));

  EXPECT_LT(attacked.cluster.max_committed_seq(),
            healthy.cluster.max_committed_seq());
}

TEST(Pbft, ToleratesFCrashedFollowers) {
  // f = 1: one silent (non-leader-only suppression isn't a crash, so emulate
  // a crash by dropping all of replica 3's outbound traffic).
  Env env(4);
  env.network.set_drop_filter(
      [](net::PeerId from, net::PeerId, const net::Message&) {
        return from == 3;
      });
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(120.0));
  // Progress continues: quorum 3 is met by replicas 0-2 (plus view changes
  // whenever 3 is the leader).
  EXPECT_GE(env.cluster.max_committed_seq(), 3u);
}

TEST(Pbft, StallsWithMoreThanFFailures) {
  Env env(4);
  env.network.set_drop_filter(
      [](net::PeerId from, net::PeerId, const net::Message&) {
        return from == 2 || from == 3;  // 2 > f = 1 silent replicas
      });
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(120.0));
  EXPECT_EQ(env.cluster.max_committed_seq(), 0u);
}

TEST(Pbft, TpsHelperConsistency) {
  Env env(4);
  env.cluster.start();
  env.sim.run_until(SimTime::seconds(60.0));
  const double tps = env.cluster.tps(SimTime::seconds(60.0));
  EXPECT_NEAR(tps,
              static_cast<double>(env.cluster.max_committed_txs()) / 60.0,
              1e-9);
  EXPECT_EQ(env.cluster.tps(SimTime::zero()), 0.0);
}

TEST(Pbft, LargerClusterCommitsSlower) {
  Env small(4);
  small.cluster.start();
  small.sim.run_until(SimTime::seconds(60.0));

  Env big(16);
  big.cluster.start();
  big.sim.run_until(SimTime::seconds(60.0));

  EXPECT_GE(small.cluster.max_committed_seq(), big.cluster.max_committed_seq());
}

TEST(Pbft, SuppressCountBounds) {
  Env env(4);
  EXPECT_THROW(env.cluster.suppress_producers(5), PreconditionError);
  EXPECT_NO_THROW(env.cluster.suppress_producers(2));
}

}  // namespace
}  // namespace themis::pbft
