// PoolReconciler: pool <-> main-chain consistency across head changes.
//
// The reorg scenarios here are the heart of the transaction pipeline's
// correctness claim: across any head move no transaction is lost (abandoned
// txs re-enter the pool with a valid re-signed credential) and none is
// double-applied (txs whose nonce the new chain consumed are purged).
#include "state/pool_reconciler.h"

#include <gtest/gtest.h>

#include "crypto/schnorr.h"
#include "ledger/txpool.h"
#include "state/transfer.h"
#include "tree_builder.h"

namespace themis::state {
namespace {

using test::TreeBuilder;

ledger::Transaction transfer(ledger::NodeId from, std::uint64_t nonce,
                             ledger::NodeId to, std::uint64_t amount) {
  return make_transfer_tx(from, nonce, 0, Transfer{to, amount, {}});
}

/// Ledger state after replaying the main chain ending at `head` over a fixed
/// two-account genesis allocation (the sequential oracle for these tests).
LedgerState state_at(const ledger::BlockTree& tree,
                     const ledger::BlockHash& head) {
  LedgerState st;
  st.fund(0, 1000);
  st.fund(1, 1000);
  for (const ledger::BlockHash& hash : tree.chain_to(head)) {
    st.apply_block(*tree.block(hash));
  }
  return st;
}

TEST(PoolReconciler, ConfirmRemovesFromPool) {
  TreeBuilder b;
  ledger::TxPool pool;
  PoolReconciler rec;

  const ledger::Transaction t1 = transfer(0, 1, 1, 10);
  pool.add(ledger::sign_transaction(t1));

  b.add("a1", "g", 0, 1.0, -1, {t1});
  const auto stats = rec.on_head_change(b.tree(), b.hash("g"), b.hash("a1"),
                                        pool, state_at(b.tree(), b.hash("a1")));
  EXPECT_EQ(stats.confirmed, 1u);
  EXPECT_EQ(stats.returned, 0u);
  EXPECT_EQ(stats.purged, 0u);
  EXPECT_FALSE(pool.contains(t1.id()));
  EXPECT_EQ(rec.block_of(t1.id()), b.hash("a1"));
}

TEST(PoolReconciler, ReorgReturnsUnconfirmedTxSigned) {
  TreeBuilder b;
  ledger::TxPool pool;
  PoolReconciler rec;

  const ledger::Transaction t1 = transfer(0, 1, 1, 10);
  const ledger::Transaction t2 = transfer(0, 2, 1, 20);
  pool.add(ledger::sign_transaction(t1));
  pool.add(ledger::sign_transaction(t2));

  // a-branch confirms T1 then T2.
  b.add("a1", "g", 0, 1.0, -1, {t1});
  b.add("a2", "a1", 1, 1.0, -1, {t2});
  rec.on_head_change(b.tree(), b.hash("g"), b.hash("a1"), pool,
                     state_at(b.tree(), b.hash("a1")));
  rec.on_head_change(b.tree(), b.hash("a1"), b.hash("a2"), pool,
                     state_at(b.tree(), b.hash("a2")));
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(rec.indexed(), 2u);

  // A heavier b-branch re-confirms only T1: T2 must return to the pool with
  // a verifiable (deterministically re-signed) admission credential.
  b.add("b1", "g", 2, 1.0, -1, {t1});
  b.add("b2", "b1", 2);
  b.add("b3", "b2", 2);
  const auto stats = rec.on_head_change(b.tree(), b.hash("a2"), b.hash("b3"),
                                        pool, state_at(b.tree(), b.hash("b3")));
  EXPECT_EQ(stats.returned, 1u);
  EXPECT_EQ(stats.purged, 0u);
  EXPECT_TRUE(pool.contains(t2.id()));
  EXPECT_FALSE(pool.contains(t1.id()));
  EXPECT_EQ(rec.block_of(t1.id()), b.hash("b1"));
  EXPECT_EQ(rec.block_of(t2.id()), std::nullopt);
  EXPECT_EQ(pool.size(), 1u);  // exactly once: not lost, not duplicated

  const auto returned = pool.get(t2.id());
  ASSERT_TRUE(returned.has_value());
  EXPECT_TRUE(returned->verify(crypto::Keypair::from_node_id(0).public_key()));
}

TEST(PoolReconciler, ReorgPurgesConsumedNonce) {
  TreeBuilder b;
  ledger::TxPool pool;
  PoolReconciler rec;

  const ledger::Transaction t1 = transfer(0, 1, 1, 10);
  const ledger::Transaction t2 = transfer(0, 2, 1, 20);
  // A conflicting spend of nonce 2 confirmed on the winning branch (small
  // enough to apply: sender 0 starts with 1000 and already sent 10).
  const ledger::Transaction t2_alt = transfer(0, 2, 1, 50);

  b.add("a1", "g", 0, 1.0, -1, {t1, t2});
  rec.on_head_change(b.tree(), b.hash("g"), b.hash("a1"), pool,
                     state_at(b.tree(), b.hash("a1")));

  b.add("b1", "g", 1, 1.0, -1, {t1, t2_alt});
  b.add("b2", "b1", 1);
  const auto stats = rec.on_head_change(b.tree(), b.hash("a1"), b.hash("b2"),
                                        pool, state_at(b.tree(), b.hash("b2")));
  // T2's nonce was consumed by T2_alt on the new chain: it must NOT return
  // (returning it would stage a double-spend of nonce 2).
  EXPECT_EQ(stats.purged, 1u);
  EXPECT_EQ(stats.returned, 0u);
  EXPECT_FALSE(pool.contains(t2.id()));
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(rec.block_of(t2_alt.id()), b.hash("b1"));
}

TEST(PoolReconciler, PurgesStalePendingOnAdvance) {
  TreeBuilder b;
  ledger::TxPool pool;
  PoolReconciler rec;

  const ledger::Transaction t1 = transfer(0, 1, 1, 10);
  // A competing pending spend of the same nonce (never mined).
  const ledger::Transaction t1_alt = transfer(0, 1, 1, 777);
  pool.add(ledger::sign_transaction(t1_alt));

  b.add("a1", "g", 0, 1.0, -1, {t1});
  const auto stats = rec.on_head_change(b.tree(), b.hash("g"), b.hash("a1"),
                                        pool, state_at(b.tree(), b.hash("a1")));
  // Nonce 1 is consumed on the main chain; the pending rival is dead weight.
  EXPECT_EQ(stats.purged, 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(PoolReconciler, RebuildIndexesWholeChain) {
  TreeBuilder b;
  PoolReconciler rec;

  const ledger::Transaction t1 = transfer(0, 1, 1, 10);
  const ledger::Transaction t2 = transfer(1, 1, 0, 5);
  b.add("a1", "g", 0, 1.0, -1, {t1});
  b.add("a2", "a1", 1, 1.0, -1, {t2});

  rec.rebuild(b.tree(), b.hash("a2"));
  EXPECT_EQ(rec.indexed(), 2u);
  EXPECT_EQ(rec.block_of(t1.id()), b.hash("a1"));
  EXPECT_EQ(rec.block_of(t2.id()), b.hash("a2"));
  EXPECT_EQ(rec.block_of(transfer(0, 9, 1, 1).id()), std::nullopt);
}

TEST(PoolReconciler, TotalsAccumulateAcrossCalls) {
  TreeBuilder b;
  ledger::TxPool pool;
  PoolReconciler rec;

  const ledger::Transaction t1 = transfer(0, 1, 1, 10);
  const ledger::Transaction t2 = transfer(0, 2, 1, 20);
  pool.add(ledger::sign_transaction(t1));
  pool.add(ledger::sign_transaction(t2));

  b.add("a1", "g", 0, 1.0, -1, {t1});
  b.add("a2", "a1", 0, 1.0, -1, {t2});
  rec.on_head_change(b.tree(), b.hash("g"), b.hash("a1"), pool,
                     state_at(b.tree(), b.hash("a1")));
  rec.on_head_change(b.tree(), b.hash("a1"), b.hash("a2"), pool,
                     state_at(b.tree(), b.hash("a2")));
  EXPECT_EQ(rec.totals().confirmed, 2u);

  b.add("b1", "g", 1);
  b.add("b2", "b1", 1);
  b.add("b3", "b2", 1);
  rec.on_head_change(b.tree(), b.hash("a2"), b.hash("b3"), pool,
                     state_at(b.tree(), b.hash("b3")));
  // Both transactions fell off the chain and returned to the pool.
  EXPECT_EQ(rec.totals().returned, 2u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(rec.indexed(), 0u);
}

}  // namespace
}  // namespace themis::state
