#include "nodeset/contract.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace themis::nodeset {
namespace {

NodeIdentity identity(ledger::NodeId id) {
  NodeIdentity n;
  n.id = id;
  n.public_key = crypto::Keypair::from_node_id(id).public_key();
  n.address = "node-" + std::to_string(id);
  return n;
}

std::vector<NodeIdentity> members(std::size_t n) {
  std::vector<NodeIdentity> out;
  for (ledger::NodeId i = 0; i < n; ++i) out.push_back(identity(i));
  return out;
}

TEST(NodeSet, InitialMembership) {
  NodeSetContract contract(members(4));
  EXPECT_EQ(contract.member_count(), 4u);
  EXPECT_TRUE(contract.is_member(0));
  EXPECT_FALSE(contract.is_member(9));
  EXPECT_TRUE(contract.key_of(2).has_value());
  EXPECT_FALSE(contract.key_of(9).has_value());
  EXPECT_EQ(contract.members().size(), 4u);
}

TEST(NodeSet, RejectsEmptyOrDuplicateInit) {
  EXPECT_THROW(NodeSetContract({}), PreconditionError);
  auto dup = members(2);
  dup.push_back(identity(1));
  EXPECT_THROW(NodeSetContract{dup}, PreconditionError);
}

TEST(NodeSet, ProposerVotesImplicitly) {
  NodeSetContract contract(members(5));
  const auto id = contract.propose_add(0, identity(10));
  EXPECT_EQ(contract.proposal(id).supporters.size(), 1u);
  EXPECT_EQ(contract.proposal(id).status, ProposalStatus::open);
}

TEST(NodeSet, MajorityPassesAddProposal) {
  NodeSetContract contract(members(5));
  const auto id = contract.propose_add(0, identity(10));
  contract.vote(id, 1, true);
  EXPECT_EQ(contract.proposal(id).status, ProposalStatus::open);  // 2 of 5
  EXPECT_EQ(contract.vote(id, 2, true), ProposalStatus::passed);  // 3 of 5
}

TEST(NodeSet, ActivationAppliesAddAndRescalesDifficulty) {
  NodeSetContract contract(members(4));
  const auto id = contract.propose_add(0, identity(4));
  contract.vote(id, 1, true);
  contract.vote(id, 2, true);  // 3 of 4 -> passed
  const auto activation = contract.activate_pending();
  ASSERT_EQ(activation.added.size(), 1u);
  EXPECT_EQ(activation.added[0].id, 4u);
  EXPECT_TRUE(contract.is_member(4));
  // §IV-C: D_base scales by n_new / n_old = 5/4.
  EXPECT_DOUBLE_EQ(activation.base_difficulty_scale, 1.25);
  EXPECT_EQ(contract.proposal(id).status, ProposalStatus::applied);
}

TEST(NodeSet, RemoveRequiresEvidence) {
  NodeSetContract contract(members(4));
  EXPECT_THROW(contract.propose_remove(0, 1, ""), PreconditionError);
  EXPECT_NO_THROW(contract.propose_remove(0, 1, "packed invalid transactions"));
}

TEST(NodeSet, RemoveProposalLifecycle) {
  NodeSetContract contract(members(5));
  const auto id = contract.propose_remove(0, 4, "double-spend attempt");
  contract.vote(id, 1, true);
  contract.vote(id, 2, true);
  const auto activation = contract.activate_pending();
  ASSERT_EQ(activation.removed.size(), 1u);
  EXPECT_EQ(activation.removed[0], 4u);
  EXPECT_FALSE(contract.is_member(4));
  EXPECT_DOUBLE_EQ(activation.base_difficulty_scale, 0.8);
}

TEST(NodeSet, OppositionMajorityRejects) {
  NodeSetContract contract(members(5));
  const auto id = contract.propose_add(0, identity(10));
  contract.vote(id, 1, false);
  contract.vote(id, 2, false);
  EXPECT_EQ(contract.vote(id, 3, false), ProposalStatus::rejected);
  const auto activation = contract.activate_pending();
  EXPECT_TRUE(activation.added.empty());
  EXPECT_FALSE(contract.is_member(10));
}

TEST(NodeSet, RevoteReplacesPreviousVote) {
  NodeSetContract contract(members(5));
  const auto id = contract.propose_add(0, identity(10));
  contract.vote(id, 1, false);
  contract.vote(id, 1, true);  // changed their mind
  EXPECT_EQ(contract.proposal(id).supporters.size(), 2u);
  EXPECT_EQ(contract.proposal(id).opponents.size(), 0u);
}

TEST(NodeSet, OnlyMembersParticipate) {
  NodeSetContract contract(members(3));
  EXPECT_THROW(contract.propose_add(9, identity(10)), PreconditionError);
  const auto id = contract.propose_add(0, identity(10));
  EXPECT_THROW(contract.vote(id, 9, true), PreconditionError);
}

TEST(NodeSet, CannotAddExistingOrRemoveUnknown) {
  NodeSetContract contract(members(3));
  EXPECT_THROW(contract.propose_add(0, identity(1)), PreconditionError);
  EXPECT_THROW(contract.propose_remove(0, 9, "evidence"), PreconditionError);
}

TEST(NodeSet, VotingOnClosedProposalThrows) {
  NodeSetContract contract(members(4));
  const auto id = contract.propose_add(0, identity(10));
  contract.vote(id, 1, true);
  contract.vote(id, 2, true);  // passed
  EXPECT_THROW(contract.vote(id, 3, true), PreconditionError);
}

TEST(NodeSet, UnknownProposalThrows) {
  NodeSetContract contract(members(3));
  EXPECT_THROW(contract.vote(42, 0, true), PreconditionError);
  EXPECT_THROW(contract.proposal(42), PreconditionError);
}

TEST(NodeSet, OpenProposalsListed) {
  NodeSetContract contract(members(5));
  const auto a = contract.propose_add(0, identity(10));
  const auto b = contract.propose_remove(1, 3, "invalid blocks");
  EXPECT_EQ(contract.open_proposals().size(), 2u);
  contract.vote(a, 1, true);
  contract.vote(a, 2, true);  // passed -> no longer open
  const auto open = contract.open_proposals();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0], b);
}

TEST(NodeSet, ActivationWithNothingPendingIsNeutral) {
  NodeSetContract contract(members(3));
  const auto activation = contract.activate_pending();
  EXPECT_TRUE(activation.added.empty());
  EXPECT_TRUE(activation.removed.empty());
  EXPECT_DOUBLE_EQ(activation.base_difficulty_scale, 1.0);
}

TEST(NodeSet, SimultaneousAddAndRemove) {
  NodeSetContract contract(members(4));
  const auto add = contract.propose_add(0, identity(7));
  const auto remove = contract.propose_remove(1, 3, "withheld blocks");
  contract.vote(add, 1, true);
  contract.vote(add, 2, true);
  contract.vote(remove, 0, true);
  contract.vote(remove, 2, true);
  const auto activation = contract.activate_pending();
  EXPECT_EQ(activation.added.size(), 1u);
  EXPECT_EQ(activation.removed.size(), 1u);
  EXPECT_DOUBLE_EQ(activation.base_difficulty_scale, 1.0);  // 4 -> 4
  EXPECT_EQ(contract.member_count(), 4u);
}

}  // namespace
}  // namespace themis::nodeset
