#include "consensus/miner.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/stats.h"
#include "common/uint256.h"

namespace themis::consensus {
namespace {

ledger::BlockHeader header_at_difficulty(double d) {
  ledger::BlockHeader h;
  h.height = 1;
  h.prev = ledger::Block::genesis().id();
  h.producer = 0;
  h.difficulty = d;
  return h;
}

TEST(RealMiner, FindsValidNonceAtLowDifficulty) {
  const auto mined = RealMiner::mine(header_at_difficulty(8.0), 0, 10'000);
  ASSERT_TRUE(mined.has_value());
  const UInt256 target = target_for_difficulty(8.0);
  EXPECT_TRUE(ledger::satisfies_target(mined->hash(), target));
}

TEST(RealMiner, DifficultyOneSucceedsImmediately) {
  const auto mined = RealMiner::mine(header_at_difficulty(1.0), 0, 1);
  ASSERT_TRUE(mined.has_value());
  EXPECT_EQ(mined->nonce, 0u);
}

TEST(RealMiner, GivesUpAfterMaxAttempts) {
  // Difficulty so high that success within one attempt is impossible in
  // practice (probability 2^-40).
  const auto mined = RealMiner::mine(header_at_difficulty(1e12), 0, 1);
  EXPECT_FALSE(mined.has_value());
}

TEST(RealMiner, StartNonceRespected) {
  const auto mined = RealMiner::mine(header_at_difficulty(2.0), 1000, 10'000);
  ASSERT_TRUE(mined.has_value());
  EXPECT_GE(mined->nonce, 1000u);
}

TEST(RealMiner, MinedHeaderPreservesFields) {
  ledger::BlockHeader h = header_at_difficulty(4.0);
  h.producer = 9;
  h.timestamp_nanos = 777;
  const auto mined = RealMiner::mine(h, 0, 100'000);
  ASSERT_TRUE(mined.has_value());
  EXPECT_EQ(mined->producer, 9u);
  EXPECT_EQ(mined->timestamp_nanos, 777);
  EXPECT_EQ(mined->difficulty, 4.0);
}

TEST(RealMiner, ZeroAttemptsAlwaysExhausts) {
  EXPECT_FALSE(RealMiner::mine(header_at_difficulty(1.0), 0, 0).has_value());
  EXPECT_FALSE(
      RealMiner::mine(header_at_difficulty(1.0), UINT64_MAX, 0).has_value());
}

TEST(RealMiner, SearchStopsAtTheEndOfTheNonceSpace) {
  // Regression: the loop used to wrap past 2^64-1 back to nonce 0 and
  // re-search low nonces outside the documented
  // [start_nonce, start_nonce + max_attempts) window.  At this difficulty a
  // low nonce solves the puzzle, so the old wrapping search "succeeded" from
  // a start near the top of the nonce space — the clamped search must
  // exhaust instead.
  const ledger::BlockHeader h = header_at_difficulty(5000.0);
  const auto low = RealMiner::mine(h, 0, 1'000'000);
  ASSERT_TRUE(low.has_value());
  ASSERT_LT(low->nonce, 1'000'000u - 4u);

  // The four top-of-space nonces do not solve (checked explicitly, so the
  // assertion below really exercises the wraparound path).
  ASSERT_FALSE(RealMiner::mine(h, UINT64_MAX - 3, 4).has_value());

  const auto wrapped = RealMiner::mine(h, UINT64_MAX - 3, 1'000'000);
  EXPECT_FALSE(wrapped.has_value());
}

TEST(RealMiner, ExhaustingTheTailTerminatesEvenWithHugeMaxAttempts) {
  // With max_attempts ~ 2^64 the unclamped loop would grind forever; the
  // clamp bounds it to the 10 nonces that actually remain above the start.
  const auto mined = RealMiner::mine(header_at_difficulty(1e12),
                                     UINT64_MAX - 9, UINT64_MAX);
  EXPECT_FALSE(mined.has_value());
}

TEST(RealMiner, SolutionInsideTheTailWindowIsStillFound) {
  // Difficulty 1: every nonce satisfies the target, including near the top
  // of the nonce space.
  const auto mined = RealMiner::mine(header_at_difficulty(1.0),
                                     UINT64_MAX - 1, 1'000);
  ASSERT_TRUE(mined.has_value());
  EXPECT_EQ(mined->nonce, UINT64_MAX - 1);
}

TEST(SimMiner, BlockRateIsPowerOverDifficulty) {
  EXPECT_DOUBLE_EQ(SimMiner::block_rate(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(SimMiner::block_rate(1.0, 1.0), 1.0);
}

TEST(SimMiner, RejectsBadInputs) {
  EXPECT_THROW(SimMiner::block_rate(0.0, 1.0), PreconditionError);
  EXPECT_THROW(SimMiner::block_rate(1.0, 0.5), PreconditionError);
  Rng rng(1);
  EXPECT_THROW(SimMiner::sample_block_time(rng, -1.0, 1.0), PreconditionError);
}

class SimMinerDistribution
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SimMinerDistribution, MeanMatchesExpectedInterval) {
  const auto [hash_rate, difficulty] = GetParam();
  Rng rng(77);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(SimMiner::sample_block_time(rng, hash_rate, difficulty).to_seconds());
  }
  const double expected_interval = difficulty / hash_rate;
  EXPECT_NEAR(stats.mean() / expected_interval, 1.0, 0.03);
  // Exponential: stddev == mean.
  EXPECT_NEAR(stats.stddev() / stats.mean(), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimMinerDistribution,
    ::testing::Values(std::pair{1000.0, 4000.0},   // I = 4 s
                      std::pair{100.0, 100.0},     // I = 1 s
                      std::pair{5.0, 1000.0}));    // I = 200 s

TEST(SimMiner, RealAndSimulatedAgreeOnExpectedAttempts) {
  // The real miner's expected attempts at difficulty D is D; check the
  // empirical attempt count over repeated mining runs is in that ballpark.
  const double difficulty = 64.0;
  RunningStats attempts;
  for (std::uint64_t run = 0; run < 200; ++run) {
    ledger::BlockHeader h = header_at_difficulty(difficulty);
    h.nonce = 0;
    h.timestamp_nanos = static_cast<std::int64_t>(run);  // vary the preimage
    const auto mined = RealMiner::mine(h, 0, 1'000'000);
    ASSERT_TRUE(mined.has_value());
    attempts.add(static_cast<double>(mined->nonce) + 1.0);
  }
  EXPECT_NEAR(attempts.mean() / difficulty, 1.0, 0.25);
}

}  // namespace
}  // namespace themis::consensus
