#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace themis {
namespace {

TEST(Stats, MeanEmpty) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanKnown) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, VarianceSingleElementIsZero) {
  const std::vector<double> xs{5.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(Stats, VarianceKnownPopulation) {
  // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 4.
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceConstantVectorIsZero) {
  const std::vector<double> xs(100, 3.14);
  EXPECT_NEAR(variance(xs), 0.0, 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 7, 2};
  EXPECT_EQ(min_of(xs), -1.0);
  EXPECT_EQ(max_of(xs), 7.0);
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats running;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 5 + 2;
    xs.push_back(x);
    running.add(x);
  }
  EXPECT_NEAR(running.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(running.variance(), variance(xs), 1e-9);
  EXPECT_EQ(running.count(), xs.size());
}

TEST(Stats, RunningMinMax) {
  RunningStats s;
  s.add(5);
  s.add(-2);
  s.add(9);
  EXPECT_EQ(s.min(), -2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, RunningEmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, FrequencyVarianceUniformCountsIsZero) {
  const std::vector<std::uint64_t> counts{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(frequency_variance(counts, 40.0), 0.0);
}

TEST(Stats, FrequencyVarianceKnown) {
  // f = {1, 0}: mean 0.5, variance 0.25.
  const std::vector<std::uint64_t> counts{10, 0};
  EXPECT_DOUBLE_EQ(frequency_variance(counts, 10.0), 0.25);
}

TEST(Stats, FrequencyVarianceEmptyInputs) {
  EXPECT_EQ(frequency_variance({}, 10.0), 0.0);
  const std::vector<std::uint64_t> counts{1, 2};
  EXPECT_EQ(frequency_variance(counts, 0.0), 0.0);
}

// The no-allocation variant backs the blocktree's incremental GEOST cache; a
// single ULP of drift there would let the cached fork choice diverge from the
// oracle, so equality below is exact (EXPECT_EQ on doubles), not EXPECT_NEAR.
TEST(Stats, FrequencyVarianceNoallocBitIdenticalOnRandomCounts) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(64);
    std::vector<std::uint64_t> counts(n);
    std::uint64_t total = 0;
    for (auto& c : counts) {
      c = rng.next_below(1000);
      total += c;
    }
    const double t = static_cast<double>(total);
    EXPECT_EQ(frequency_variance_noalloc(counts, t),
              frequency_variance(counts, t));
  }
}

TEST(Stats, FrequencyVarianceNoallocEdgeCases) {
  EXPECT_EQ(frequency_variance_noalloc({}, 10.0), 0.0);
  const std::vector<std::uint64_t> single{7};
  EXPECT_EQ(frequency_variance_noalloc(single, 7.0),
            frequency_variance(single, 7.0));
  const std::vector<std::uint64_t> zeros(16, 0);
  EXPECT_EQ(frequency_variance_noalloc(zeros, 0.0),
            frequency_variance(zeros, 0.0));
  const std::vector<std::uint64_t> skewed{1000000, 0, 0, 1};
  EXPECT_EQ(frequency_variance_noalloc(skewed, 1000001.0),
            frequency_variance(skewed, 1000001.0));
}

}  // namespace
}  // namespace themis
