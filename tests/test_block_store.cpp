#include "ledger/block_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "tree_builder.h"

namespace themis::ledger {
namespace {

namespace fs = std::filesystem;

class BlockStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("themis_store_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    path_ = dir_ / "blocks.dat";
  }
  void TearDown() override { fs::remove_all(dir_); }

  Block sample_block(std::uint64_t height, const BlockHash& prev,
                     std::uint32_t n_txs = 2) {
    std::vector<Transaction> txs;
    for (std::uint32_t i = 0; i < n_txs; ++i) {
      txs.emplace_back(i, height * 10 + i, 0,
                       bytes_of("payload " + std::to_string(height)));
    }
    BlockHeader h;
    h.height = height;
    h.prev = prev;
    h.producer = static_cast<NodeId>(height % 4);
    h.tx_count = n_txs;
    h.nonce = height * 31;
    return Block(h, crypto::Signature{}, std::move(txs));
  }

  fs::path dir_;
  fs::path path_;
};

TEST_F(BlockStoreTest, StartsEmpty) {
  BlockStore store(path_);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.valid_bytes(), 0u);
  EXPECT_FALSE(store.recovered_from_torn_tail());
}

TEST_F(BlockStoreTest, AppendAndReadBack) {
  BlockStore store(path_);
  const Block b = sample_block(1, Block::genesis().id());
  store.append(b);
  ASSERT_EQ(store.size(), 1u);
  const Block loaded = store.read(0);
  EXPECT_EQ(loaded.id(), b.id());
  EXPECT_EQ(loaded.transactions().size(), 2u);
}

TEST_F(BlockStoreTest, PersistsAcrossReopen) {
  BlockHash prev = Block::genesis().id();
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 5; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      store.append(b);
    }
  }
  BlockStore reopened(path_);
  ASSERT_EQ(reopened.size(), 5u);
  EXPECT_EQ(reopened.read(4).id(), prev);
  EXPECT_FALSE(reopened.recovered_from_torn_tail());
}

TEST_F(BlockStoreTest, AppendContinuesAfterReopen) {
  BlockHash prev = Block::genesis().id();
  {
    BlockStore store(path_);
    const Block b = sample_block(1, prev);
    prev = b.id();
    store.append(b);
  }
  {
    BlockStore store(path_);
    store.append(sample_block(2, prev));
    EXPECT_EQ(store.size(), 2u);
  }
  BlockStore final_store(path_);
  EXPECT_EQ(final_store.size(), 2u);
  EXPECT_EQ(final_store.read(1).height(), 2u);
}

TEST_F(BlockStoreTest, TornTailDroppedOnRecovery) {
  BlockHash prev = Block::genesis().id();
  std::uint64_t good_bytes = 0;
  {
    BlockStore store(path_);
    const Block b1 = sample_block(1, prev);
    store.append(b1);
    good_bytes = store.valid_bytes();
    store.append(sample_block(2, b1.id()));
  }
  // Simulate a crash mid-write: truncate into the second record.
  fs::resize_file(path_, good_bytes + 10);

  BlockStore recovered(path_);
  EXPECT_TRUE(recovered.recovered_from_torn_tail());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.valid_bytes(), good_bytes);
  // The store keeps working after recovery (torn tail is overwritten).
  recovered.append(sample_block(2, recovered.read(0).id()));
  EXPECT_EQ(recovered.size(), 2u);
  BlockStore reopened(path_);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_FALSE(reopened.recovered_from_torn_tail());
}

TEST_F(BlockStoreTest, CorruptPayloadDetectedByChecksum) {
  {
    BlockStore store(path_);
    store.append(sample_block(1, Block::genesis().id()));
  }
  // Flip one payload byte on disk.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(20);
  char byte;
  f.seekg(20);
  f.get(byte);
  f.seekp(20);
  f.put(static_cast<char>(byte ^ 0x01));
  f.close();

  BlockStore store(path_);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.recovered_from_torn_tail());
}

TEST_F(BlockStoreTest, ReplayRebuildsTree) {
  test::TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  b.add("x", "g", 2);  // a fork is persisted too
  {
    BlockStore store(path_);
    for (const std::string name : {"a", "b", "x"}) {
      store.append(*b.get(name));
    }
  }
  BlockStore store(path_);
  BlockTree restored;
  EXPECT_EQ(store.replay_into(restored), 3u);
  EXPECT_TRUE(restored.contains(b.hash("b")));
  EXPECT_TRUE(restored.contains(b.hash("x")));
  EXPECT_EQ(restored.max_height(), 2u);
}

TEST_F(BlockStoreTest, ReplayBuffersOrphans) {
  test::TreeBuilder b;
  b.add("a", "g", 0);
  b.add("b", "a", 1);
  {
    BlockStore store(path_);
    store.append(*b.get("b"));  // child persisted without its parent
  }
  BlockStore store(path_);
  BlockTree restored;
  EXPECT_EQ(store.replay_into(restored), 0u);
  EXPECT_EQ(restored.orphan_count(), 1u);
}

TEST_F(BlockStoreTest, ReadOutOfRangeThrows) {
  BlockStore store(path_);
  EXPECT_THROW(store.read(0), PreconditionError);
}

TEST_F(BlockStoreTest, DirectoryPathRejected) {
  EXPECT_THROW(BlockStore{dir_}, PreconditionError);
}

TEST_F(BlockStoreTest, ManyBlocksRoundTrip) {
  BlockHash prev = Block::genesis().id();
  std::vector<BlockHash> ids;
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 64; ++h) {
      const Block b = sample_block(h, prev, h % 3);
      prev = b.id();
      ids.push_back(prev);
      store.append(b);
    }
  }
  BlockStore store(path_);
  const auto all = store.read_all();
  ASSERT_EQ(all.size(), 64u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id(), ids[i]) << "block " << i;
  }
}

TEST_F(BlockStoreTest, CursorStreamsEveryRecordInOrder) {
  BlockStore store(path_);
  std::vector<BlockHash> ids;
  BlockHash prev{};
  for (std::uint64_t h = 1; h <= 20; ++h) {
    const Block b = sample_block(h, prev, h % 3);
    prev = b.id();
    ids.push_back(prev);
    store.append(b);
  }

  auto cursor = store.stream();
  EXPECT_EQ(cursor.remaining(), 20u);
  std::size_t i = 0;
  while (auto block = cursor.next()) {
    ASSERT_LT(i, ids.size());
    EXPECT_EQ(block->id(), ids[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, 20u);
  EXPECT_EQ(cursor.remaining(), 0u);
  EXPECT_FALSE(cursor.next().has_value());  // stays exhausted
}

TEST_F(BlockStoreTest, CursorWindowSelectsARange) {
  BlockStore store(path_);
  std::vector<BlockHash> ids;
  BlockHash prev{};
  for (std::uint64_t h = 1; h <= 10; ++h) {
    const Block b = sample_block(h, prev);
    prev = b.id();
    ids.push_back(prev);
    store.append(b);
  }

  auto cursor = store.stream(3, 4);  // records 3,4,5,6
  EXPECT_EQ(cursor.index(), 3u);
  EXPECT_EQ(cursor.remaining(), 4u);
  for (std::size_t i = 3; i < 7; ++i) {
    const auto block = cursor.next();
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->id(), ids[i]);
  }
  EXPECT_FALSE(cursor.next().has_value());

  // Window past the end clamps; an empty window yields nothing.
  EXPECT_EQ(store.stream(8, 100).remaining(), 2u);
  EXPECT_FALSE(store.stream(10).next().has_value());
}

TEST_F(BlockStoreTest, CursorOnEmptyStoreIsExhausted) {
  BlockStore store(path_);
  auto cursor = store.stream();
  EXPECT_EQ(cursor.remaining(), 0u);
  EXPECT_FALSE(cursor.next().has_value());
}

TEST_F(BlockStoreTest, CursorSnapshotsTheRecordCountAtCreation) {
  BlockStore store(path_);
  store.append(sample_block(1, BlockHash{}));
  auto cursor = store.stream();
  store.append(sample_block(2, BlockHash{}));
  EXPECT_EQ(cursor.remaining(), 1u);  // the later append is not visited
  EXPECT_TRUE(cursor.next().has_value());
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_EQ(store.stream().remaining(), 2u);  // a fresh cursor sees both
}

TEST_F(BlockStoreTest, CursorIgnoresTornTail) {
  BlockHash prev{};
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 5; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      store.append(b);
    }
  }
  // Truncate mid-record: the reopened store drops the tail, and the cursor
  // must stream exactly the surviving records.
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size - 7);
  BlockStore store(path_);
  EXPECT_TRUE(store.recovered_from_torn_tail());
  ASSERT_EQ(store.size(), 4u);
  auto cursor = store.stream();
  std::size_t streamed = 0;
  while (cursor.next().has_value()) ++streamed;
  EXPECT_EQ(streamed, 4u);
}

TEST_F(BlockStoreTest, IndexWrittenAndUsedOnReopen) {
  BlockHash prev = Block::genesis().id();
  std::vector<BlockHash> ids;
  {
    BlockStore store(path_);
    EXPECT_FALSE(store.opened_from_index());  // fresh store, nothing to load
    for (std::uint64_t h = 1; h <= 6; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      ids.push_back(b.id());
      store.append(b);
    }
    EXPECT_TRUE(fs::exists(store.index_path()));
  }
  BlockStore store(path_);
  EXPECT_TRUE(store.opened_from_index());
  EXPECT_FALSE(store.recovered_from_torn_tail());
  ASSERT_EQ(store.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(store.height_at(i), i + 1);
    EXPECT_EQ(store.id_at(i), ids[i]);
    EXPECT_EQ(store.find(ids[i]), i);
    const auto block = store.read_by_id(ids[i]);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(block->id(), ids[i]);
  }
  EXPECT_EQ(store.min_height(), 1u);
  EXPECT_EQ(store.max_height(), 6u);
  BlockHash unknown{};
  unknown[0] = 0xee;
  EXPECT_FALSE(store.find(unknown).has_value());
  EXPECT_FALSE(store.read_by_id(unknown).has_value());
}

TEST_F(BlockStoreTest, MissingIndexRebuiltByScan) {
  BlockHash prev = Block::genesis().id();
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 4; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      store.append(b);
    }
  }
  fs::remove(path_.string() + ".idx");
  BlockStore store(path_);
  EXPECT_FALSE(store.opened_from_index());
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(fs::exists(store.index_path()));  // rewritten by the scan
  // And the rebuilt index serves the next open.
  BlockStore again(path_);
  EXPECT_TRUE(again.opened_from_index());
  EXPECT_EQ(again.size(), 4u);
}

TEST_F(BlockStoreTest, CorruptIndexFallsBackToScan) {
  BlockHash prev = Block::genesis().id();
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 4; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      store.append(b);
    }
  }
  // Flip a byte in every region of the index: header, mid-entry, last entry.
  const fs::path idx = path_.string() + ".idx";
  const auto idx_size = fs::file_size(idx);
  for (const std::uintmax_t at :
       {std::uintmax_t{0}, idx_size / 2, idx_size - 1}) {
    Bytes raw;
    {
      std::ifstream in(idx, std::ios::binary);
      raw.assign(std::istreambuf_iterator<char>(in), {});
    }
    raw[static_cast<std::size_t>(at)] ^= 0x20;
    {
      std::ofstream out(idx, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(raw.data()),
                static_cast<std::streamsize>(raw.size()));
    }
    BlockStore store(path_);
    EXPECT_EQ(store.size(), 4u) << "byte " << at;
    EXPECT_EQ(store.max_height(), 4u) << "byte " << at;
  }
}

TEST_F(BlockStoreTest, StaleIndexTailScansOnlyTheSuffix) {
  // Records appended after the index was last durably written must still be
  // found: simulate by truncating the index to fewer entries than the data.
  BlockHash prev = Block::genesis().id();
  std::vector<BlockHash> ids;
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 5; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      ids.push_back(b.id());
      store.append(b);
    }
  }
  const fs::path idx = path_.string() + ".idx";
  fs::resize_file(idx, 8 + 56 * 3);  // header + 3 of 5 entries
  BlockStore store(path_);
  ASSERT_EQ(store.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(store.id_at(i), ids[i]);
}

TEST_F(BlockStoreTest, PruneBelowDropsPrefixAndSurvivesReopen) {
  BlockHash prev = Block::genesis().id();
  std::vector<BlockHash> ids;
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 10; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      ids.push_back(b.id());
      store.append(b);
    }
    const auto bytes_before = store.valid_bytes();
    EXPECT_EQ(store.prune_below(7), 6u);
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.min_height(), 7u);
    EXPECT_EQ(store.max_height(), 10u);
    EXPECT_LT(store.valid_bytes(), bytes_before);
    // Pruned records are gone, surviving ones keep their lookups.
    EXPECT_FALSE(store.read_by_id(ids[0]).has_value());
    EXPECT_TRUE(store.read_by_id(ids[9]).has_value());
    // Appending after a prune keeps working.
    const Block b11 = sample_block(11, prev);
    store.append(b11);
    EXPECT_EQ(store.size(), 5u);
    // Idempotent: nothing left below the floor.
    EXPECT_EQ(store.prune_below(7), 0u);
  }
  BlockStore store(path_);
  EXPECT_TRUE(store.opened_from_index());
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.min_height(), 7u);
  EXPECT_EQ(store.max_height(), 11u);
}

TEST_F(BlockStoreTest, ReplayWithFloorSkipsPrunedPrefix) {
  BlockHash prev = Block::genesis().id();
  std::vector<BlockPtr> blocks;
  {
    BlockStore store(path_);
    for (std::uint64_t h = 1; h <= 8; ++h) {
      const Block b = sample_block(h, prev);
      prev = b.id();
      blocks.push_back(std::make_shared<const Block>(b));
      store.append(b);
    }
  }
  BlockStore store(path_);
  // Re-root the tree at height 5 (the snapshot-restore shape) and replay
  // only the suffix above it.
  BlockTree tree(blocks[4]);  // height 5
  EXPECT_EQ(store.replay_into(tree, 6), 3u);
  EXPECT_EQ(tree.max_height(), 8u);
  EXPECT_TRUE(tree.contains(blocks[7]->id()));
  EXPECT_FALSE(tree.contains(blocks[0]->id()));
}

}  // namespace
}  // namespace themis::ledger
