// Trace reader + analysis: JSONL parsing round-trips the tracer's output,
// hand-built traces produce the expected summaries, and a real experiment's
// trace yields per-epoch sigma_f^2 that matches the harness *exactly* (both
// feed the same metrics code).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/observability.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "obs/trace_reader.h"
#include "sim/experiment.h"

namespace themis::obs {
namespace {

TEST(TraceReader, ParsesAllScalarKinds) {
  const auto event = parse_trace_line(
      R"({"t_ns":1500,"ev":"x","u":42,"i":-7,"f":0.25,"b":true,"s":"a\"b\\c"})");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->t_ns, 1500);
  EXPECT_EQ(event->ev, "x");
  EXPECT_EQ(event->int_or("u", 0), 42);
  EXPECT_EQ(event->int_or("i", 0), -7);
  EXPECT_EQ(event->num_or("f", 0.0), 0.25);
  EXPECT_TRUE(event->bool_or("b", false));
  EXPECT_EQ(event->str_or("s", ""), "a\"b\\c");
  EXPECT_EQ(event->int_or("missing", -1), -1);
}

TEST(TraceReader, RejectsMalformedLines) {
  EXPECT_FALSE(parse_trace_line("").has_value());
  EXPECT_FALSE(parse_trace_line("not json").has_value());
  EXPECT_FALSE(parse_trace_line(R"({"t_ns":1)").has_value());
  EXPECT_FALSE(parse_trace_line(R"({"t_ns":1,"x":2})").has_value());  // no ev
}

TEST(TraceReader, RoundTripsTracerOutput) {
  EventTracer tracer;
  tracer.enable(true);
  tracer.emit(SimTime::nanos(12), "block_mined",
              {Field::u64("node", 3), Field::str("hash", "ab\"cd"),
               Field::f64("diff", 1.0 / 3.0), Field::boolean("ok", false)});
  std::stringstream buf;
  tracer.write_jsonl(buf);

  const ReadResult result = read_trace(buf);
  EXPECT_EQ(result.malformed_lines, 0u);
  ASSERT_EQ(result.events.size(), 1u);
  const TraceEvent& event = result.events[0];
  EXPECT_EQ(event.t_ns, 12);
  EXPECT_EQ(event.ev, "block_mined");
  EXPECT_EQ(event.int_or("node", 0), 3);
  EXPECT_EQ(event.str_or("hash", ""), "ab\"cd");
  EXPECT_EQ(event.num_or("diff", 0.0), 1.0 / 3.0);  // exact round-trip
  EXPECT_FALSE(event.bool_or("ok", true));
}

TEST(TraceReader, CountsMalformedAndSkipsBlank) {
  std::stringstream buf;
  buf << R"({"t_ns":1,"ev":"a"})" << "\n\n"
      << "garbage\n"
      << R"({"t_ns":2,"ev":"b"})" << "\n";
  const ReadResult result = read_trace(buf);
  EXPECT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.malformed_lines, 1u);
}

TEST(TraceAnalysis, SummarizesHandBuiltTrace) {
  std::stringstream buf;
  buf << R"({"t_ns":0,"ev":"run_meta","algorithm":"themis","n_nodes":4,"delta":2,"seed":9})"
      << "\n"
      << R"({"t_ns":1000000000,"ev":"block_mined","node":0,"hash":"aa","height":1})"
      << "\n"
      << R"({"t_ns":3000000000,"ev":"block_received","node":1,"hash":"aa","height":1})"
      << "\n"
      << R"({"t_ns":5000000000,"ev":"block_received","node":2,"hash":"aa","height":1})"
      << "\n"
      << R"({"t_ns":5000000000,"ev":"reorg","node":2,"depth":3})"
      << "\n"
      << R"({"t_ns":6000000000,"ev":"reorg","node":1,"depth":1})"
      << "\n"
      << R"({"t_ns":1,"ev":"gossip_send","from":0,"to":1,"bytes":100})"
      << "\n"
      << R"({"t_ns":2,"ev":"gossip_dup","from":1,"to":0})"
      << "\n"
      << R"({"t_ns":7000000000,"ev":"chain_block","height":1,"producer":0})"
      << "\n"
      << R"({"t_ns":7000000000,"ev":"chain_block","height":2,"producer":1})"
      << "\n";
  const ReadResult result = read_trace(buf);
  ASSERT_EQ(result.malformed_lines, 0u);
  const TraceSummary summary = analyze_trace(result.events);

  EXPECT_EQ(summary.algorithm, "themis");
  EXPECT_EQ(summary.n_nodes, 4u);
  EXPECT_EQ(summary.delta, 2u);

  // Node 0 mined one block; nodes 1 and 2 received it 2s and 4s later.
  EXPECT_EQ(summary.nodes.at(0).mined, 1u);
  EXPECT_EQ(summary.nodes.at(1).received, 1u);
  EXPECT_EQ(summary.propagation.samples, 2u);
  EXPECT_EQ(summary.propagation.p50_s, 2.0);
  EXPECT_EQ(summary.propagation.max_s, 4.0);

  EXPECT_EQ(summary.reorgs.count, 2u);
  EXPECT_EQ(summary.reorgs.max_depth, 3u);
  EXPECT_EQ(summary.reorgs.mean_depth, 2.0);

  EXPECT_EQ(summary.gossip_sends, 1u);
  EXPECT_EQ(summary.gossip_bytes, 100u);
  EXPECT_EQ(summary.gossip_dup_drops, 1u);

  ASSERT_EQ(summary.chain_producers.size(), 2u);
  EXPECT_EQ(summary.chain_producers[0], 0u);
  EXPECT_EQ(summary.chain_producers[1], 1u);
  // One full epoch of delta=2 blocks: producers {0,1} over n=4 nodes.
  ASSERT_EQ(summary.per_epoch_sigma_f2.size(), 1u);
}

// Acceptance criterion: themis-trace's sigma_f^2 equals
// PoxExperiment::per_epoch_frequency_variance() bit for bit, because the
// analysis feeds the traced chain into the same metrics function.
TEST(TraceAnalysis, SigmaF2MatchesExperimentExactly) {
  Observability obs;
  obs.tracer.enable(true);
  sim::PoxConfig config;
  config.algorithm = core::Algorithm::kThemis;
  config.n_nodes = 20;
  config.beta = 2.0;
  config.seed = 91;
  config.obs = &obs;
  sim::PoxExperiment exp(config);
  exp.run_to_height(3 * exp.delta() + 2);
  exp.emit_trace_summary();

  std::stringstream buf;
  obs.tracer.write_jsonl(buf);
  const ReadResult result = read_trace(buf);
  ASSERT_EQ(result.malformed_lines, 0u);
  const TraceSummary summary = analyze_trace(result.events);

  EXPECT_EQ(summary.chain_producers, exp.main_chain_producers());
  const std::vector<double> expected = exp.per_epoch_frequency_variance();
  ASSERT_EQ(summary.per_epoch_sigma_f2.size(), expected.size());
  for (std::size_t e = 0; e < expected.size(); ++e) {
    EXPECT_EQ(summary.per_epoch_sigma_f2[e], expected[e]) << "epoch " << e;
  }
}

TEST(TraceAnalysis, PrintSummaryMentionsEverySection) {
  std::stringstream buf;
  buf << R"({"t_ns":0,"ev":"run_meta","algorithm":"themis","n_nodes":2,"delta":1,"seed":1})"
      << "\n"
      << R"({"t_ns":5,"ev":"block_mined","node":0,"hash":"aa","height":1})"
      << "\n";
  const ReadResult result = read_trace(buf);
  const TraceSummary summary = analyze_trace(result.events);
  std::ostringstream out;
  print_summary(out, summary);
  const std::string text = out.str();
  EXPECT_NE(text.find("trace summary"), std::string::npos);
  EXPECT_NE(text.find("per-node timeline"), std::string::npos);
  EXPECT_NE(text.find("reorgs"), std::string::npos);
}

}  // namespace
}  // namespace themis::obs
