#include "finality/aggregation.h"

#include <algorithm>

#include "common/check.h"
#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::finality {

using crypto::Point;
using crypto::Scalar;

namespace {

/// Shared pre-verification: backend id, non-empty sorted member voters,
/// quorum weight, and aggregate sized for `per_voter` bytes per voter plus
/// `fixed` trailing bytes.  Decode already enforced sortedness/uniqueness
/// for wire certificates; re-check here so locally built ones get the same
/// scrutiny.
bool check_shape(const CheckpointCertificate& cert,
                 const ValidatorSet& validators, std::uint8_t backend_id,
                 std::size_t per_voter, std::size_t fixed) {
  if (cert.backend != backend_id) return false;
  if (cert.voters.empty()) return false;
  if (!std::is_sorted(cert.voters.begin(), cert.voters.end())) return false;
  if (std::adjacent_find(cert.voters.begin(), cert.voters.end()) !=
      cert.voters.end()) {
    return false;
  }
  for (const ledger::NodeId id : cert.voters) {
    if (!validators.is_member(id)) return false;
  }
  if (!validators.quorum(validators.weight_of(cert.voters))) return false;
  return cert.aggregate.size() == per_voter * cert.voters.size() + fixed;
}

/// Deterministic half-aggregation coefficients: z_0 = 1, z_i derived from the
/// certificate transcript (digest, voters, every R).  The verifier can
/// recompute them from the certificate alone, and a forger must pick R values
/// that satisfy an equation whose coefficients depend on those very values.
std::vector<Scalar> half_agg_coefficients(const Hash32& digest,
                                          const std::vector<ledger::NodeId>& voters,
                                          const std::uint8_t* r_bytes,
                                          std::size_t n) {
  Writer t(32 + 40 * n);
  t.hash(digest);
  for (std::size_t i = 0; i < n; ++i) {
    t.u64(voters[i]);
    t.raw(ByteSpan(r_bytes + 32 * i, 32));
  }
  const Hash32 seed = crypto::tagged_hash("Themis/halfagg-seed", t.buffer());

  std::vector<Scalar> z(n);
  z[0] = Scalar::from_u64(1);
  for (std::size_t i = 1; i < n; ++i) {
    Writer w(40);
    w.hash(seed);
    w.u64(static_cast<std::uint64_t>(i));
    const Hash32 d = crypto::tagged_hash("Themis/halfagg-z", w.buffer());
    UInt256 trimmed = UInt256::from_be_bytes(d);
    trimmed.set_limb(2, 0);
    trimmed.set_limb(3, 0);  // 128-bit coefficients, as in verify_batch
    z[i] = trimmed.is_zero() ? Scalar::from_u64(1) : Scalar(trimmed);
  }
  return z;
}

}  // namespace

// ---------------------------------------------------------------------------
// ValidatorSet
// ---------------------------------------------------------------------------

ValidatorSet::ValidatorSet(std::vector<Validator> members)
    : members_(std::move(members)) {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const Validator& v = members_[i];
    expects(v.weight > 0, "validator weight must be positive");
    const auto [it, fresh] = index_.emplace(v.id, i);
    expects(fresh, "duplicate validator id");
    total_weight_ += v.weight;
  }
}

ValidatorSet ValidatorSet::deterministic(std::size_t n_nodes) {
  std::vector<Validator> members;
  members.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Validator v;
    v.id = static_cast<ledger::NodeId>(i);
    v.key = crypto::Keypair::from_node_id(i).public_key();
    members.push_back(v);
  }
  return ValidatorSet(std::move(members));
}

const Validator* ValidatorSet::find(ledger::NodeId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &members_[it->second];
}

std::uint64_t ValidatorSet::weight_of(
    const std::vector<ledger::NodeId>& ids) const {
  std::uint64_t sum = 0;
  for (const ledger::NodeId id : ids) {
    if (const Validator* v = find(id)) sum += v->weight;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// ConcatAggregation
// ---------------------------------------------------------------------------

Bytes ConcatAggregation::aggregate(
    const std::vector<CheckpointVote>& votes) const {
  Bytes out;
  out.reserve(crypto::kSignatureSize * votes.size());
  for (const CheckpointVote& v : votes) {
    out.insert(out.end(), v.signature.r.begin(), v.signature.r.end());
    out.insert(out.end(), v.signature.s.begin(), v.signature.s.end());
  }
  return out;
}

bool ConcatAggregation::verify(const CheckpointCertificate& cert,
                               const ValidatorSet& validators) const {
  if (!check_shape(cert, validators, kId, crypto::kSignatureSize, 0)) {
    return false;
  }
  const Hash32 digest = checkpoint_digest(cert.height, cert.block, cert.epoch);
  std::vector<crypto::BatchVerifyItem> items;
  items.reserve(cert.voters.size());
  for (std::size_t i = 0; i < cert.voters.size(); ++i) {
    crypto::BatchVerifyItem item;
    item.pub = validators.find(cert.voters[i])->key;
    item.msg = digest;
    const auto sig = crypto::Signature::from_bytes(
        ByteSpan(cert.aggregate.data() + crypto::kSignatureSize * i,
                 crypto::kSignatureSize));
    item.sig = *sig;  // size checked by check_shape
    items.push_back(item);
  }
  // Serial batch: certificate checks run under consensus locks or in CLI
  // one-shots, where spawning a verification thread pool is pure overhead.
  return crypto::verify_batch(items, /*n_threads=*/1);
}

// ---------------------------------------------------------------------------
// HalfAggregation
// ---------------------------------------------------------------------------

Bytes HalfAggregation::aggregate(const std::vector<CheckpointVote>& votes) const {
  expects(!votes.empty(), "cannot aggregate zero votes");
  const std::size_t n = votes.size();
  Bytes r_bytes;
  r_bytes.reserve(32 * n);
  for (const CheckpointVote& v : votes) {
    r_bytes.insert(r_bytes.end(), v.signature.r.begin(), v.signature.r.end());
  }
  std::vector<ledger::NodeId> voters;
  voters.reserve(n);
  for (const CheckpointVote& v : votes) voters.push_back(v.voter);

  const std::vector<Scalar> z =
      half_agg_coefficients(votes[0].digest(), voters, r_bytes.data(), n);
  Scalar s_star;
  for (std::size_t i = 0; i < n; ++i) {
    s_star = s_star + z[i] * Scalar::from_bytes(votes[i].signature.s);
  }

  Bytes out = std::move(r_bytes);
  const Hash32 s_out = s_star.to_bytes();
  out.insert(out.end(), s_out.begin(), s_out.end());
  return out;
}

bool HalfAggregation::verify(const CheckpointCertificate& cert,
                             const ValidatorSet& validators) const {
  if (!check_shape(cert, validators, kId, 32, 32)) return false;
  const std::size_t n = cert.voters.size();
  const Hash32 digest = checkpoint_digest(cert.height, cert.block, cert.epoch);
  const std::uint8_t* r_bytes = cert.aggregate.data();

  // s*·G == Σ zᵢ·Rᵢ + Σ (zᵢ·eᵢ)·Pᵢ over the certificate's coefficients.
  const std::vector<Scalar> z =
      half_agg_coefficients(digest, cert.voters, r_bytes, n);
  std::vector<Scalar> coeffs;
  std::vector<Point> points;
  coeffs.reserve(2 * n);
  points.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    Hash32 rx;
    std::copy(r_bytes + 32 * i, r_bytes + 32 * (i + 1), rx.begin());
    const UInt256 rx_raw = UInt256::from_be_bytes(rx);
    if (rx_raw >= crypto::field_prime()) return false;
    const std::optional<Point> r = Point::lift_x(rx_raw);
    if (!r.has_value()) return false;
    const crypto::PublicKey& pub = validators.find(cert.voters[i])->key;
    const std::optional<Point> p =
        Point::lift_x(UInt256::from_be_bytes(pub));
    if (!p.has_value()) return false;

    coeffs.push_back(z[i]);
    points.push_back(*r);
    coeffs.push_back(z[i] * crypto::schnorr_challenge(rx, pub, digest));
    points.push_back(*p);
  }
  Hash32 s_bytes;
  std::copy(r_bytes + 32 * n, r_bytes + 32 * (n + 1), s_bytes.begin());
  const UInt256 s_raw = UInt256::from_be_bytes(s_bytes);
  if (s_raw >= crypto::group_order()) return false;
  return Point::mul_gen(Scalar(s_raw))
      .equals(crypto::multi_scalar_mul(coeffs, points));
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::unique_ptr<AggregationBackend> make_backend(std::uint8_t id) {
  switch (id) {
    case ConcatAggregation::kId: return std::make_unique<ConcatAggregation>();
    case HalfAggregation::kId: return std::make_unique<HalfAggregation>();
    default: return nullptr;
  }
}

std::unique_ptr<AggregationBackend> make_backend(std::string_view name) {
  if (name == "concat") return std::make_unique<ConcatAggregation>();
  if (name == "half") return std::make_unique<HalfAggregation>();
  return nullptr;
}

}  // namespace themis::finality
