// Per-checkpoint vote accumulation and the >2/3 hard-finality rule.
//
// The tracker is transport-agnostic: the p2p node feeds it votes from the
// wire (and its own), the simulator's FinalityOverlay feeds it modeled
// votes, and both ask the same questions — did this vote reach quorum, what
// is the finalized height, what certificate proves it.
//
// Vote discipline (the adversarial cases tests exercise):
//   * one vote per (height, voter): a second identical vote is a duplicate,
//     a second vote for a DIFFERENT block at the same height is an
//     equivocation — rejected and counted, the first vote stands;
//   * voters outside the registered set are rejected;
//   * signatures are checked against the registry (can be disabled for
//     large-n simulation models where crypto is not the measured quantity);
//   * votes at or below the finalized height are stale.
//
// Votes for blocks the local tree has not seen yet are accepted — quorum can
// complete before the block arrives (gossip reorders freely); the CALLER
// decides when a formed certificate may be acted on.  Finalization is
// monotone: finalize() only advances.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "finality/aggregation.h"
#include "finality/checkpoint.h"

namespace themis::finality {

enum class VoteOutcome {
  accepted,       ///< new vote, counted toward its checkpoint
  quorum,         ///< accepted AND completed a certificate
  duplicate,      ///< already held this exact vote
  equivocation,   ///< same (height, voter), different block — rejected
  unknown_voter,  ///< voter not in the registered consortium
  bad_signature,  ///< Schnorr verification failed
  bad_height,     ///< height not a checkpoint multiple, or epoch mismatch
  stale,          ///< at or below the finalized height
};

std::string_view to_string(VoteOutcome outcome);

struct TrackerConfig {
  /// Checkpoint interval k: votes are cast at heights k, 2k, 3k, …
  std::uint64_t interval = 16;
  /// Large-n simulation models skip per-vote Schnorr verification (the
  /// overlay measures propagation, not crypto).  Real nodes keep it on.
  bool verify_signatures = true;
  /// Votes for checkpoints this far below the finalized height are dropped
  /// and their state pruned; the last finalized checkpoint's votes are kept
  /// so freshly connected peers can be brought to quorum.
  std::uint64_t retain_below = 1;
};

class CheckpointTracker {
 public:
  struct Stats {
    std::uint64_t votes_accepted = 0;
    std::uint64_t votes_duplicate = 0;
    std::uint64_t votes_equivocation = 0;
    std::uint64_t votes_unknown_voter = 0;
    std::uint64_t votes_bad_signature = 0;
    std::uint64_t votes_bad_height = 0;
    std::uint64_t votes_stale = 0;
    std::uint64_t certificates_formed = 0;
  };

  CheckpointTracker(TrackerConfig config, ValidatorSet validators,
                    std::unique_ptr<AggregationBackend> backend);

  std::uint64_t interval() const { return config_.interval; }
  bool is_checkpoint_height(std::uint64_t height) const {
    return height > 0 && height % config_.interval == 0;
  }
  /// The expected epoch tag for a checkpoint height (its sequence number).
  std::uint64_t epoch_of(std::uint64_t height) const {
    return height / config_.interval;
  }

  /// Validate and accumulate one vote.  On quorum the certificate is built,
  /// recorded, and the finalized height advanced (monotonically).
  VoteOutcome add_vote(const CheckpointVote& vote);

  /// Sign and accumulate our own vote (convenience for real nodes).
  CheckpointVote make_vote(std::uint64_t height, const ledger::BlockHash& block,
                           const crypto::Keypair& keypair,
                           ledger::NodeId voter) const;

  std::uint64_t finalized_height() const { return finalized_height_; }
  const std::optional<ledger::BlockHash>& finalized_block() const {
    return finalized_block_;
  }

  /// The certificate formed at `height`, or nullptr.
  const CheckpointCertificate* certificate(std::uint64_t height) const;
  /// The certificate at the highest finalized height, or nullptr.
  const CheckpointCertificate* latest_certificate() const {
    return certificate(finalized_height_);
  }

  /// Every retained vote (newest checkpoints included), for offering to a
  /// freshly connected peer the way the tx pool is offered.
  std::vector<CheckpointVote> retained_votes() const;

  /// Votes accumulated so far for (height, block) — the per-checkpoint vote
  /// count metrics read this.
  std::size_t votes_for(std::uint64_t height,
                        const ledger::BlockHash& block) const;

  const ValidatorSet& validators() const { return validators_; }
  const AggregationBackend& backend() const { return *backend_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Candidate {
    std::vector<CheckpointVote> votes;  ///< sorted by voter
    std::uint64_t weight = 0;           ///< sum of the voters' weights
  };
  struct Tally {
    std::map<ledger::BlockHash, Candidate> by_block;
    /// First block each voter committed to (equivocation detection).
    std::unordered_map<ledger::NodeId, ledger::BlockHash> voted;
  };

  /// Drop per-height vote state below the retention floor.
  void prune_below(std::uint64_t height);

  TrackerConfig config_;
  ValidatorSet validators_;
  std::unique_ptr<AggregationBackend> backend_;

  std::map<std::uint64_t, Tally> tallies_;  ///< by checkpoint height
  std::map<std::uint64_t, CheckpointCertificate> certificates_;
  std::uint64_t finalized_height_ = 0;
  std::optional<ledger::BlockHash> finalized_block_;
  Stats stats_;
};

}  // namespace themis::finality
