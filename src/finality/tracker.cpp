#include "finality/tracker.h"

#include <algorithm>

#include "common/check.h"

namespace themis::finality {

std::string_view to_string(VoteOutcome outcome) {
  switch (outcome) {
    case VoteOutcome::accepted: return "accepted";
    case VoteOutcome::quorum: return "quorum";
    case VoteOutcome::duplicate: return "duplicate";
    case VoteOutcome::equivocation: return "equivocation";
    case VoteOutcome::unknown_voter: return "unknown_voter";
    case VoteOutcome::bad_signature: return "bad_signature";
    case VoteOutcome::bad_height: return "bad_height";
    case VoteOutcome::stale: return "stale";
  }
  return "unknown";
}

CheckpointTracker::CheckpointTracker(TrackerConfig config,
                                     ValidatorSet validators,
                                     std::unique_ptr<AggregationBackend> backend)
    : config_(config),
      validators_(std::move(validators)),
      backend_(std::move(backend)) {
  expects(config_.interval > 0, "checkpoint interval must be positive");
  expects(backend_ != nullptr, "aggregation backend required");
  expects(validators_.size() > 0, "validator set must be non-empty");
}

VoteOutcome CheckpointTracker::add_vote(const CheckpointVote& vote) {
  if (!is_checkpoint_height(vote.height) ||
      vote.epoch != epoch_of(vote.height)) {
    ++stats_.votes_bad_height;
    return VoteOutcome::bad_height;
  }
  if (vote.height <= finalized_height_) {
    ++stats_.votes_stale;
    return VoteOutcome::stale;
  }
  const Validator* validator = validators_.find(vote.voter);
  if (validator == nullptr) {
    ++stats_.votes_unknown_voter;
    return VoteOutcome::unknown_voter;
  }

  Tally& tally = tallies_[vote.height];
  if (const auto it = tally.voted.find(vote.voter); it != tally.voted.end()) {
    if (it->second == vote.block) {
      ++stats_.votes_duplicate;
      return VoteOutcome::duplicate;
    }
    // Same voter, same height, different block: the first commitment stands
    // and the contradiction is counted (it is slashable evidence upstream).
    ++stats_.votes_equivocation;
    return VoteOutcome::equivocation;
  }

  // Signature check last: it is the expensive step, and a duplicate or
  // equivocating vote should be classified as such even if also unsigned.
  if (config_.verify_signatures &&
      !crypto::verify(validator->key, vote.digest(), vote.signature)) {
    ++stats_.votes_bad_signature;
    return VoteOutcome::bad_signature;
  }

  tally.voted.emplace(vote.voter, vote.block);
  Candidate& candidate = tally.by_block[vote.block];
  const auto pos = std::lower_bound(
      candidate.votes.begin(), candidate.votes.end(), vote.voter,
      [](const CheckpointVote& v, ledger::NodeId id) { return v.voter < id; });
  candidate.votes.insert(pos, vote);
  candidate.weight += validator->weight;
  ++stats_.votes_accepted;

  if (!validators_.quorum(candidate.weight)) return VoteOutcome::accepted;

  // Quorum: build the certificate and advance the finalized prefix.  Only
  // one candidate per height can ever reach >2/3 (each voter counts once),
  // and heights at or below the finalized one are rejected as stale above,
  // so this fires at most once per checkpoint.
  CheckpointCertificate cert;
  cert.height = vote.height;
  cert.block = vote.block;
  cert.epoch = vote.epoch;
  cert.backend = backend_->id();
  cert.voters.reserve(candidate.votes.size());
  for (const CheckpointVote& v : candidate.votes) cert.voters.push_back(v.voter);
  cert.aggregate = backend_->aggregate(candidate.votes);
  certificates_[cert.height] = std::move(cert);
  ++stats_.certificates_formed;

  if (vote.height > finalized_height_) {
    finalized_height_ = vote.height;
    finalized_block_ = vote.block;
    prune_below(finalized_height_);
  }
  return VoteOutcome::quorum;
}

CheckpointVote CheckpointTracker::make_vote(std::uint64_t height,
                                            const ledger::BlockHash& block,
                                            const crypto::Keypair& keypair,
                                            ledger::NodeId voter) const {
  CheckpointVote vote;
  vote.height = height;
  vote.block = block;
  vote.epoch = epoch_of(height);
  vote.voter = voter;
  vote.signature = keypair.sign(vote.digest());
  return vote;
}

const CheckpointCertificate* CheckpointTracker::certificate(
    std::uint64_t height) const {
  const auto it = certificates_.find(height);
  return it == certificates_.end() ? nullptr : &it->second;
}

std::vector<CheckpointVote> CheckpointTracker::retained_votes() const {
  std::vector<CheckpointVote> out;
  for (const auto& [height, tally] : tallies_) {
    for (const auto& [block, candidate] : tally.by_block) {
      out.insert(out.end(), candidate.votes.begin(), candidate.votes.end());
    }
  }
  return out;
}

std::size_t CheckpointTracker::votes_for(std::uint64_t height,
                                         const ledger::BlockHash& block) const {
  const auto it = tallies_.find(height);
  if (it == tallies_.end()) return 0;
  const auto cand = it->second.by_block.find(block);
  return cand == it->second.by_block.end() ? 0 : cand->second.votes.size();
}

void CheckpointTracker::prune_below(std::uint64_t height) {
  // Keep the last `retain_below` finalized checkpoints' votes (fresh peers
  // are brought to quorum from them); drop everything older.
  const std::uint64_t keep = config_.retain_below * config_.interval;
  const std::uint64_t floor = height > keep ? height - keep : 0;
  tallies_.erase(tallies_.begin(), tallies_.lower_bound(floor + 1));
}

}  // namespace themis::finality
