#include "finality/checkpoint.h"

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::finality {

namespace {

constexpr std::string_view kVoteTag = "Themis/ckpt-vote";
constexpr std::string_view kVoteIdTag = "Themis/ckpt-vote-id";

/// Voter lists in certificates are bounded by the consortium size; this is a
/// decode-time sanity ceiling, far above any realistic membership.
constexpr std::size_t kMaxCertVoters = 1 << 16;

}  // namespace

Hash32 checkpoint_digest(std::uint64_t height, const ledger::BlockHash& block,
                         std::uint64_t epoch) {
  Writer w(48);
  w.u64(height);
  w.hash(block);
  w.u64(epoch);
  return crypto::tagged_hash(kVoteTag, w.buffer());
}

Hash32 CheckpointVote::digest() const {
  return checkpoint_digest(height, block, epoch);
}

Hash32 CheckpointVote::vote_id() const {
  Writer w(40);
  w.hash(digest());
  w.u64(voter);
  return crypto::tagged_hash(kVoteIdTag, w.buffer());
}

Bytes CheckpointVote::encode() const {
  Writer w(32 + 64 + 24);
  w.u64(height);
  w.hash(block);
  w.u64(epoch);
  w.u64(voter);
  w.hash(signature.r);
  w.hash(signature.s);
  return w.take();
}

CheckpointVote CheckpointVote::decode(ByteSpan raw) {
  Reader r(raw);
  CheckpointVote v;
  v.height = r.u64();
  v.block = r.hash();
  v.epoch = r.u64();
  v.voter = r.u64();
  v.signature.r = r.hash();
  v.signature.s = r.hash();
  r.expect_done();
  return v;
}

Bytes CheckpointCertificate::encode() const {
  Writer w(64 + 8 * voters.size() + aggregate.size());
  w.u64(height);
  w.hash(block);
  w.u64(epoch);
  w.u8(backend);
  w.varint(voters.size());
  for (const ledger::NodeId id : voters) w.u64(id);
  w.bytes(aggregate);
  return w.take();
}

CheckpointCertificate CheckpointCertificate::decode(ByteSpan raw) {
  Reader r(raw);
  CheckpointCertificate c;
  c.height = r.u64();
  c.block = r.hash();
  c.epoch = r.u64();
  c.backend = r.u8();
  const std::uint64_t count = r.varint();
  if (count > kMaxCertVoters) {
    throw DecodeError("certificate voter list exceeds maximum");
  }
  c.voters.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ledger::NodeId id = r.u64();
    if (!c.voters.empty() && id <= c.voters.back()) {
      throw DecodeError("certificate voters must be sorted and unique");
    }
    c.voters.push_back(id);
  }
  c.aggregate = r.bytes();
  r.expect_done();
  return c;
}

}  // namespace themis::finality
