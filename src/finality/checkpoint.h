// Checkpoint finality overlay: votes and certificates.
//
// Themis's fork choice gives only probabilistic finality — the anchor trails
// the head by a statistically chosen depth, and nothing prevents a
// sufficiently heavy late branch from reorging below it.  Following Gosig
// (PAPERS.md), this layer adds BFT-style hard finality on top of the
// equal/unpredictable block production: every k heights ("the checkpoint
// interval") each consortium member signs a *checkpoint vote* over
// (height, block id, epoch) with its existing secp256k1 Schnorr key and
// gossips it; a checkpoint that accumulates votes carrying more than 2/3 of
// the registered consortium weight hard-finalizes the chain prefix up to and
// including the checkpoint block.
//
// The vote digest is domain-separated from block-header and transaction
// signatures ("Themis/ckpt-vote"), so a checkpoint signature can never be
// replayed as either, and vice versa.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/schnorr.h"
#include "ledger/types.h"

namespace themis::finality {

/// One member's signature over a checkpoint (height, block, epoch).
struct CheckpointVote {
  std::uint64_t height = 0;        ///< checkpoint height (multiple of k)
  ledger::BlockHash block{};       ///< the block this voter saw at `height`
  std::uint64_t epoch = 0;         ///< checkpoint sequence number, height / k
  ledger::NodeId voter = 0;        ///< consortium member id
  crypto::Signature signature{};   ///< Schnorr over digest()

  /// The signed message: tagged hash over (height, block, epoch).  The voter
  /// id is *outside* the digest — the signature itself binds the key — so
  /// aggregation backends can combine signatures over the same digest.
  Hash32 digest() const;
  /// Gossip inventory id: hash of (digest, voter), used for per-peer
  /// known-set duplicate suppression exactly like block and tx ids.
  Hash32 vote_id() const;

  Bytes encode() const;
  /// Throws DecodeError on truncated/trailing/malformed input.
  static CheckpointVote decode(ByteSpan raw);

  bool operator==(const CheckpointVote&) const = default;
};

/// Digest for a (height, block, epoch) triple without building a vote.
Hash32 checkpoint_digest(std::uint64_t height, const ledger::BlockHash& block,
                         std::uint64_t epoch);

/// A checkpoint that reached quorum: the voter set plus the combined
/// signature bytes produced by an AggregationBackend.  `voters` is sorted
/// ascending and duplicate-free; the aggregate encodes in voter order.
struct CheckpointCertificate {
  std::uint64_t height = 0;
  ledger::BlockHash block{};
  std::uint64_t epoch = 0;
  std::uint8_t backend = 0;            ///< AggregationBackend::id()
  std::vector<ledger::NodeId> voters;  ///< sorted ascending
  Bytes aggregate;                     ///< backend-specific combined signature

  Bytes encode() const;
  /// Throws DecodeError on malformed input (including unsorted voters).
  static CheckpointCertificate decode(ByteSpan raw);

  bool operator==(const CheckpointCertificate&) const = default;
};

}  // namespace themis::finality
