// Pluggable signature aggregation for checkpoint certificates.
//
// Two backends behind one interface:
//
//   * ConcatAggregation (id 0) — the baseline: the aggregate is simply every
//     voter's 64-byte Schnorr signature concatenated in voter order.
//     Size O(64·n); verification is a standard batch verify.
//
//   * HalfAggregation (id 1) — Schnorr half-aggregation: keep every vote's
//     R component but collapse the s components into ONE scalar
//     s* = Σ zᵢ·sᵢ, with deterministic per-certificate coefficients
//     zᵢ = H(transcript ‖ i) (z₀ = 1).  Verification checks the single
//     equation s*·G == Σ zᵢ·Rᵢ + Σ (zᵢ·eᵢ)·Pᵢ — exactly the random-linear-
//     combination equation crypto::verify_batch uses, which is why halving
//     is sound: a forger must solve an equation whose coefficients are
//     derived from the very signatures being forged.  Size 32·(n+1) bytes,
//     half the concatenation, and verification is one multi-scalar
//     multiplication instead of n ladder walks.
//
// Both backends verify against the registered consortium weight: the voter
// set must be known members and carry strictly more than 2/3 of the total
// weight, so a syntactically valid certificate below quorum never verifies.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "finality/checkpoint.h"

namespace themis::finality {

/// One registered consortium member eligible to vote on checkpoints.
struct Validator {
  ledger::NodeId id = 0;
  crypto::PublicKey key{};
  std::uint64_t weight = 1;
};

/// The registered consortium: membership, per-member weight, and the quorum
/// rule.  Immutable after construction (membership churn re-registers).
class ValidatorSet {
 public:
  ValidatorSet() = default;
  explicit ValidatorSet(std::vector<Validator> members);

  /// The deterministic consortium this repo uses everywhere: members 0..n-1
  /// with Keypair::from_node_id keys and weight 1 each (one-node-one-vote,
  /// the NodeSetContract convention).
  static ValidatorSet deterministic(std::size_t n_nodes);

  const Validator* find(ledger::NodeId id) const;
  bool is_member(ledger::NodeId id) const { return find(id) != nullptr; }
  std::size_t size() const { return members_.size(); }
  std::uint64_t total_weight() const { return total_weight_; }
  const std::vector<Validator>& members() const { return members_; }

  /// Sum of the named members' weights (unknown ids contribute 0).
  std::uint64_t weight_of(const std::vector<ledger::NodeId>& ids) const;
  /// The >2/3 rule: strictly more than two thirds of the total weight.
  bool quorum(std::uint64_t weight) const { return 3 * weight > 2 * total_weight_; }

 private:
  std::vector<Validator> members_;
  std::unordered_map<ledger::NodeId, std::size_t> index_;
  std::uint64_t total_weight_ = 0;
};

class AggregationBackend {
 public:
  virtual ~AggregationBackend() = default;

  virtual std::string_view name() const = 0;
  /// Wire discriminator stored in CheckpointCertificate::backend.
  virtual std::uint8_t id() const = 0;

  /// Combine the votes (all over the same digest, sorted by voter, each
  /// individually verified by the tracker) into the certificate aggregate.
  virtual Bytes aggregate(const std::vector<CheckpointVote>& votes) const = 0;

  /// Full certificate check: backend id, membership, quorum weight, and the
  /// combined signature against the checkpoint digest.
  virtual bool verify(const CheckpointCertificate& cert,
                      const ValidatorSet& validators) const = 0;
};

class ConcatAggregation final : public AggregationBackend {
 public:
  static constexpr std::uint8_t kId = 0;
  std::string_view name() const override { return "concat"; }
  std::uint8_t id() const override { return kId; }
  Bytes aggregate(const std::vector<CheckpointVote>& votes) const override;
  bool verify(const CheckpointCertificate& cert,
              const ValidatorSet& validators) const override;
};

class HalfAggregation final : public AggregationBackend {
 public:
  static constexpr std::uint8_t kId = 1;
  std::string_view name() const override { return "half"; }
  std::uint8_t id() const override { return kId; }
  Bytes aggregate(const std::vector<CheckpointVote>& votes) const override;
  bool verify(const CheckpointCertificate& cert,
              const ValidatorSet& validators) const override;
};

/// Backend by wire id (nullptr for unknown ids).
std::unique_ptr<AggregationBackend> make_backend(std::uint8_t id);
/// Backend by configuration name ("concat" / "half"); nullptr when unknown.
std::unique_ptr<AggregationBackend> make_backend(std::string_view name);

}  // namespace themis::finality
