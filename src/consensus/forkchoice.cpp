#include "consensus/forkchoice.h"

#include "common/check.h"

namespace themis::consensus {

using ledger::BlockHash;
using ledger::BlockTree;

BlockHash ForkChoiceRule::choose_head(const BlockTree& tree,
                                      const BlockHash& start) const {
  expects(tree.contains(start), "start block must be in the tree");
  BlockHash cur = start;
  for (;;) {
    const std::vector<BlockHash>& kids = tree.children(cur);
    if (kids.empty()) return cur;
    cur = (kids.size() == 1) ? kids[0] : pick_child(tree, kids);
  }
}

BlockHash ForkChoiceRule::preferred_child(const BlockTree& tree,
                                          const BlockHash& id) const {
  return preferred_child(tree, tree.children(id));
}

BlockHash ForkChoiceRule::preferred_child(
    const BlockTree& tree, const std::vector<BlockHash>& kids) const {
  expects(!kids.empty(), "preferred_child needs a non-leaf block");
  return (kids.size() == 1) ? kids[0] : pick_child(tree, kids);
}

std::uint64_t subtree_max_height(const BlockTree& tree, const BlockHash& id) {
  return tree.subtree_max_height(id);
}

BlockHash LongestChainRule::pick_child(
    const BlockTree& tree, const std::vector<BlockHash>& children) const {
  BlockHash best = children[0];
  std::uint64_t best_depth = subtree_max_height(tree, best);
  for (std::size_t i = 1; i < children.size(); ++i) {
    const std::uint64_t depth = subtree_max_height(tree, children[i]);
    const bool deeper = depth > best_depth;
    const bool earlier_tie =
        depth == best_depth && tree.receipt_seq(children[i]) < tree.receipt_seq(best);
    if (deeper || earlier_tie) {
      best = children[i];
      best_depth = depth;
    }
  }
  return best;
}

BlockHash GhostRule::pick_child(const BlockTree& tree,
                                const std::vector<BlockHash>& children) const {
  BlockHash best = children[0];
  std::uint64_t best_weight = tree.subtree_size(best);
  for (std::size_t i = 1; i < children.size(); ++i) {
    const std::uint64_t weight = tree.subtree_size(children[i]);
    const bool heavier = weight > best_weight;
    const bool earlier_tie =
        weight == best_weight && tree.receipt_seq(children[i]) < tree.receipt_seq(best);
    if (heavier || earlier_tie) {
      best = children[i];
      best_weight = weight;
    }
  }
  return best;
}

}  // namespace themis::consensus
