// A proof-of-X consensus node on the simulated network.
//
// This is the §III round structure: sample a block-finding time from the
// node's current difficulty (node election), broadcast found blocks, validate
// and insert received blocks, and re-run the fork-choice rule (main chain
// consensus) whenever the tree changes.  The node is generic over both knobs
// the paper varies:
//
//   * DifficultyPolicy — FixedDifficulty gives the PoW-H baseline;
//     core::AdaptiveDifficulty gives Themis / Themis-Lite (Eq. 3-7).
//   * ForkChoiceRule — GhostRule gives PoW-H / Themis-Lite;
//     core::GeostRule gives Themis (Algorithm 1).
//
// Mining restarts are statistically sound because exponential waiting times
// are memoryless: cancelling and resampling on a head change is equivalent to
// letting the old draw continue.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "consensus/difficulty.h"
#include "consensus/forkchoice.h"
#include "consensus/head_tracker.h"
#include "consensus/miner.h"
#include "crypto/schnorr.h"
#include "ledger/blocktree.h"
#include "ledger/txpool.h"
#include "ledger/validation.h"
#include "net/gossip.h"
#include "obs/observability.h"

namespace themis::consensus {

/// Maps node ids to their public keys when header signatures are enabled.
class KeyRegistry {
 public:
  void add(ledger::NodeId id, crypto::PublicKey key) { keys_[id] = key; }
  std::optional<crypto::PublicKey> lookup(ledger::NodeId id) const {
    const auto it = keys_.find(id);
    if (it == keys_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::unordered_map<ledger::NodeId, crypto::PublicKey> keys_;
};

struct NodeConfig {
  ledger::NodeId id = 0;
  std::size_t n_nodes = 0;
  double hash_rate = 1.0;          ///< h_i (hashes/second)
  std::uint32_t txs_per_block = 0; ///< declared tx count of produced blocks
  /// Sign produced headers and verify received ones.  Costs a few point
  /// multiplications per block; large sweeps turn it off (§VI-C shows the
  /// signature adds only ~constant bytes/CPU per block either way).
  bool use_signatures = false;
  /// Verify real proof-of-work on received blocks.  Only meaningful when
  /// blocks are ground with RealMiner; simulation-mined blocks sample the
  /// waiting time instead of grinding nonces.
  bool check_pow = false;
  /// The fork-choice walk starts this many blocks behind the head (blocks
  /// buried deeper are final for this node).  Must comfortably exceed the
  /// observed fork duration (2-3 blocks in the paper, §VII-D).
  std::uint64_t finality_depth = 64;
  /// When >= 0, block announcements are relayed compactly (ordering over
  /// pre-disseminated transactions, Bitcoin compact-block style) at
  /// ~header + this-many bytes per transaction; when < 0 the full block body
  /// travels on every relay hop.
  double announce_bytes_per_tx = -1.0;
  std::uint64_t rng_seed = 1;
};

class PowNode {
 public:
  PowNode(net::Simulation& sim, net::GossipNetwork& network, NodeConfig config,
          std::shared_ptr<ForkChoiceRule> rule,
          std::shared_ptr<DifficultyPolicy> policy,
          std::shared_ptr<const KeyRegistry> registry = nullptr);

  /// Install the gossip handler and schedule the first mining attempt.
  void start();
  /// Cancel any pending mining attempt.
  void stop();

  // --- attack hooks (§VII-A) -----------------------------------------------
  /// A "vulnerable" node: it keeps mining, but every block it finds is
  /// suppressed before broadcast (single-point attack on the elected
  /// producer).
  void set_producer_suppressed(bool suppressed) { suppressed_ = suppressed; }
  bool producer_suppressed() const { return suppressed_; }

  // --- observers ------------------------------------------------------------
  const ledger::BlockTree& tree() const { return tree_; }
  const ledger::BlockHash& head() const { return tracker_.head(); }
  /// Fork-choice start: trails the head by at most finality_depth.
  const ledger::BlockHash& anchor() const { return tracker_.anchor(); }
  std::vector<ledger::BlockHash> main_chain() const { return tree_.chain_to(head()); }
  std::uint64_t head_height() const { return tree_.height(head()); }
  const NodeConfig& config() const { return config_; }
  ledger::TxPool& tx_pool() { return pool_; }

  std::uint64_t blocks_produced() const { return blocks_produced_; }
  std::uint64_t blocks_suppressed() const { return blocks_suppressed_; }
  std::uint64_t blocks_rejected() const { return blocks_rejected_; }
  std::uint64_t reorgs() const { return reorgs_; }

  /// Invoked after every head change with the new head (metrics hook).
  void set_head_listener(std::function<void(const PowNode&)> fn) {
    head_listener_ = std::move(fn);
  }

  /// The keypair (present iff signatures are enabled).
  const std::optional<crypto::Keypair>& keypair() const { return keypair_; }

  /// The node's buffered mining-draw stream.  Exposed so the experiment
  /// harness can refill many nodes' streams in parallel between events (the
  /// values consumed are identical either way; see DrawStream).
  DrawStream& draws() { return rng_; }

 private:
  std::size_t announce_size(const ledger::Block& block) const;
  void on_message(const net::Message& msg);
  void on_block_found(std::uint64_t generation);
  void accept_block(ledger::BlockPtr block);
  void handle_block(ledger::BlockPtr block);
  bool validate(const ledger::Block& block) const;
  void restart_mining();

  net::Simulation& sim_;
  net::GossipNetwork& network_;
  NodeConfig config_;
  std::shared_ptr<ForkChoiceRule> rule_;
  std::shared_ptr<DifficultyPolicy> policy_;
  std::shared_ptr<const KeyRegistry> registry_;
  std::optional<crypto::Keypair> keypair_;

  /// Mining randomness: exponential waiting times and nonces, drawn through
  /// a buffered stream so draws can be precomputed off the event loop.
  DrawStream rng_;
  ledger::BlockTree tree_;
  ledger::TxPool pool_;
  /// Maintains head + anchor incrementally (cached preferred path); replaces
  /// the seed's full choose_head-from-anchor walk on every block arrival.
  HeadTracker tracker_;

  // Blocks whose parent we have not validated yet, keyed by the parent id.
  std::unordered_map<ledger::BlockHash, std::vector<ledger::BlockPtr>, Hash32Hasher>
      pending_;

  std::uint64_t mining_generation_ = 0;
  net::EventId mining_event_ = 0;
  bool started_ = false;
  bool suppressed_ = false;

  std::uint64_t blocks_produced_ = 0;
  std::uint64_t blocks_suppressed_ = 0;
  std::uint64_t blocks_rejected_ = 0;
  std::uint64_t reorgs_ = 0;
  std::function<void(const PowNode&)> head_listener_;

  // Observability (null when the simulation has no bundle attached — the
  // default — so every hook below is one predictable branch).  The profiling
  // stats and histogram are resolved once here; hot paths never do the
  // string-keyed registry lookup.
  obs::Observability* obs_ = nullptr;
  obs::ScopeStat* prof_mine_ = nullptr;         ///< on_block_found
  obs::ScopeStat* prof_accept_ = nullptr;       ///< accept_block (insert batch)
  obs::ScopeStat* prof_update_head_ = nullptr;  ///< HeadTracker::on_insert
  obs::Histogram* reorg_depths_ = nullptr;
};

}  // namespace themis::consensus
