// Mining backends.
//
// RealMiner grinds nonces with actual double-SHA-256 against the target
// (t_i = T_0 / D_i, §IV-B) — used by examples and tests at low difficulty to
// exercise the genuine puzzle path.
//
// SimMiner samples the *time to find a block* instead: a miner computing h
// hashes/second against difficulty D succeeds per hash with probability 1/D
// (T_0 = T_max convention), so block discovery is a Poisson process with rate
// h/D per second and the waiting time is Exp(h/D).  This is exactly the
// distribution real PoW induces, at none of the CPU cost — it is what makes
// the paper's multi-thousand-block experiments tractable.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "common/sim_time.h"
#include "ledger/block.h"

namespace themis::consensus {

class RealMiner {
 public:
  /// Grind `header.nonce` until sha256d(header) < target_for_difficulty(
  /// header.difficulty), trying at most `max_attempts` nonces starting from
  /// `start_nonce`.  The search never wraps past the end of the nonce
  /// space: it stops after `max_attempts` nonces or at nonce 2^64-1,
  /// whichever comes first.  Returns the solved header, or nullopt on
  /// exhaustion.
  static std::optional<ledger::BlockHeader> mine(ledger::BlockHeader header,
                                                 std::uint64_t start_nonce,
                                                 std::uint64_t max_attempts);
};

class SimMiner {
 public:
  /// Sample the waiting time until a miner with `hash_rate` hashes/second
  /// finds a block at `difficulty` (Exp(hash_rate / difficulty) seconds).
  static SimTime sample_block_time(Rng& rng, double hash_rate, double difficulty);

  /// Same draw from a buffered per-node stream (bit-identical to the Rng
  /// overload for the same underlying seed and consumption order).
  static SimTime sample_block_time(DrawStream& draws, double hash_rate,
                                   double difficulty);

  /// The Poisson rate (blocks/second) underlying sample_block_time.
  static double block_rate(double hash_rate, double difficulty);
};

}  // namespace themis::consensus
