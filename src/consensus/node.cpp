#include "consensus/node.h"

#include "common/check.h"
#include "consensus/wire.h"
#include "crypto/merkle.h"

namespace themis::consensus {

using ledger::Block;
using ledger::BlockHash;
using ledger::BlockPtr;

PowNode::PowNode(net::Simulation& sim, net::GossipNetwork& network,
                 NodeConfig config, std::shared_ptr<ForkChoiceRule> rule,
                 std::shared_ptr<DifficultyPolicy> policy,
                 std::shared_ptr<const KeyRegistry> registry)
    : sim_(sim),
      network_(network),
      config_(config),
      rule_(std::move(rule)),
      policy_(std::move(policy)),
      registry_(std::move(registry)),
      rng_(config.rng_seed) {
  expects(config_.n_nodes >= 2, "consensus needs at least two nodes");
  expects(config_.id < config_.n_nodes, "node id out of range");
  expects(rule_ != nullptr && policy_ != nullptr, "rule and policy required");
  expects(!config_.use_signatures || registry_ != nullptr,
          "signatures require a key registry");
  if (config_.use_signatures) {
    keypair_ = crypto::Keypair::from_node_id(config_.id);
  }
  tracker_.reset(tree_, *rule_, tree_.genesis_hash(), config_.finality_depth);

  obs_ = sim_.obs();
  if (obs_ != nullptr) {
    prof_mine_ = &obs_->profiler.scope("consensus.mine_block");
    prof_accept_ = &obs_->profiler.scope("consensus.accept_block");
    prof_update_head_ = &obs_->profiler.scope("consensus.update_head");
    reorg_depths_ = &obs_->counters.histogram("consensus.reorg_depth");
  }
}

/// Dedup key for trace records: the first 8 bytes of the block id in hex —
/// short enough to keep traces compact, long enough to be unique within any
/// plausible run.
static std::string short_hex(const ledger::BlockHash& id) {
  return to_hex(ByteSpan(id.data(), 8));
}

void PowNode::start() {
  expects(!started_, "node already started");
  started_ = true;
  network_.set_handler(config_.id,
                       [this](net::PeerId, const net::Message& msg) { on_message(msg); });
  restart_mining();
}

void PowNode::stop() {
  if (mining_event_ != 0) {
    sim_.cancel(mining_event_);
    mining_event_ = 0;
  }
  ++mining_generation_;
}

void PowNode::restart_mining() {
  if (!started_) return;
  if (mining_event_ != 0) sim_.cancel(mining_event_);
  const std::uint64_t generation = ++mining_generation_;
  const double difficulty = policy_->difficulty_for(tree_, head(), config_.id);
  const SimTime wait =
      SimMiner::sample_block_time(rng_, config_.hash_rate, difficulty);
  mining_event_ = sim_.schedule_after(
      wait, [this, generation] { on_block_found(generation); });
}

void PowNode::on_block_found(std::uint64_t generation) {
  if (generation != mining_generation_) return;  // stale draw
  mining_event_ = 0;
  obs::ProfileScope profile(prof_mine_);

  ledger::BlockHeader header;
  header.height = tree_.height(head()) + 1;
  header.prev = head();
  header.producer = config_.id;
  header.epoch = policy_->epoch_for(tree_, head());
  header.difficulty = policy_->difficulty_for(tree_, head(), config_.id);
  header.timestamp_nanos = sim_.now().count_nanos();
  header.nonce = rng_.next_u64();
  header.tx_count = config_.txs_per_block;

  // Real transaction bodies are attached only when the pool has entries;
  // large sweeps run with declared-size-only blocks (see BlockHeader::tx_count).
  std::vector<ledger::Transaction> txs;
  if (!pool_.empty()) {
    txs = pool_.select(config_.txs_per_block);
    header.tx_count = static_cast<std::uint32_t>(txs.size());
  }
  if (!txs.empty() || config_.check_pow) {
    std::vector<Hash32> leaves;
    leaves.reserve(txs.size());
    for (const auto& tx : txs) leaves.push_back(tx.id());
    header.merkle_root = crypto::merkle_root(leaves);
  }

  crypto::Signature signature{};
  if (keypair_.has_value()) signature = keypair_->sign(header.hash());

  auto block = std::make_shared<const Block>(header, signature, std::move(txs));
  ++blocks_produced_;

  if (obs_ != nullptr && obs_->tracer.enabled()) {
    obs_->tracer.emit(
        sim_.now(), "block_mined",
        {obs::Field::u64("node", config_.id),
         obs::Field::str("hash", short_hex(block->id())),
         obs::Field::u64("height", header.height),
         obs::Field::u64("epoch", header.epoch),
         obs::Field::f64("diff", header.difficulty),
         obs::Field::boolean("suppressed", suppressed_)});
  }

  if (suppressed_) {
    // §VII-A vulnerable node: elected producer, but the attack keeps its
    // block out of the network.  The node loses this round's work and keeps
    // mining on the unchanged head.
    ++blocks_suppressed_;
    restart_mining();
    return;
  }

  accept_block(block);
  network_.broadcast(config_.id, kBlockAnnounce, announce_size(*block), block);
  // accept_block() already restarted mining via the head change; if our own
  // block somehow lost the fork choice, make sure mining still continues.
  if (mining_event_ == 0) restart_mining();
}

std::size_t PowNode::announce_size(const ledger::Block& block) const {
  if (config_.announce_bytes_per_tx < 0) return block.size_bytes();
  const double compact =
      192.0 + config_.announce_bytes_per_tx * block.header().tx_count;
  return static_cast<std::size_t>(compact);
}

void PowNode::on_message(const net::Message& msg) {
  if (msg.type != kBlockAnnounce) return;
  const auto* block = std::any_cast<BlockPtr>(&msg.payload);
  if (block == nullptr || *block == nullptr) return;
  handle_block(*block);
}

void PowNode::handle_block(BlockPtr block) {
  const BlockHash id = block->id();
  if (tree_.contains(id)) return;

  if (obs_ != nullptr && obs_->tracer.enabled()) {
    obs_->tracer.emit(sim_.now(), "block_received",
                      {obs::Field::u64("node", config_.id),
                       obs::Field::str("hash", short_hex(id)),
                       obs::Field::u64("height", block->header().height),
                       obs::Field::u64("producer", block->header().producer)});
  }

  if (!tree_.contains(block->header().prev)) {
    // Parent unknown: buffer; validation happens once the parent arrives so
    // the difficulty check can see the full parent chain.
    auto& waiting = pending_[block->header().prev];
    for (const BlockPtr& w : waiting) {
      if (w->id() == id) return;
    }
    waiting.push_back(std::move(block));
    return;
  }

  if (!validate(*block)) {
    ++blocks_rejected_;
    return;
  }
  accept_block(std::move(block));
}

void PowNode::accept_block(BlockPtr block) {
  obs::ProfileScope profile(prof_accept_);
  // Everything inserted below descends from this first block, so the whole
  // batch forms one subtree — exactly what HeadTracker::on_insert needs.
  const BlockHash batch_root = block->id();
  const BlockHash batch_parent = block->header().prev;
  std::size_t batch_size = 0;
  std::vector<BlockPtr> ready{std::move(block)};
  while (!ready.empty()) {
    BlockPtr cur = std::move(ready.back());
    ready.pop_back();
    const BlockHash id = cur->id();
    tree_.insert(std::move(cur));
    ++batch_size;
    const auto it = pending_.find(id);
    if (it != pending_.end()) {
      std::vector<BlockPtr> waiting = std::move(it->second);
      pending_.erase(it);
      for (BlockPtr& w : waiting) {
        if (tree_.contains(w->id())) continue;
        if (!validate(*w)) {
          ++blocks_rejected_;
          continue;
        }
        ready.push_back(std::move(w));
      }
    }
  }
  HeadTracker::Update update;
  {
    obs::ProfileScope update_profile(prof_update_head_);
    update = tracker_.on_insert(tree_, *rule_, batch_root, batch_parent,
                                /*batch_is_leaf=*/batch_size == 1);
  }
  if (update.reorg) {
    ++reorgs_;
    if (obs_ != nullptr) {
      reorg_depths_->record(static_cast<double>(update.reorg_depth));
      if (obs_->tracer.enabled()) {
        obs_->tracer.emit(sim_.now(), "reorg",
                          {obs::Field::u64("node", config_.id),
                           obs::Field::u64("depth", update.reorg_depth),
                           obs::Field::str("new_head", short_hex(head())),
                           obs::Field::u64("height", tracker_.head_height())});
      }
    }
  }
  if (update.head_changed) {
    if (obs_ != nullptr && obs_->tracer.enabled()) {
      obs_->tracer.emit(sim_.now(), "block_adopted",
                        {obs::Field::u64("node", config_.id),
                         obs::Field::str("hash", short_hex(head())),
                         obs::Field::u64("height", tracker_.head_height()),
                         obs::Field::boolean("reorg", update.reorg)});
    }
    // Fork-choice walks start at the anchor, so aggregate maintenance below
    // it is wasted work — let the tree freeze that prefix.
    tree_.set_aggregate_floor(tracker_.anchor_height());
    restart_mining();
    if (head_listener_) head_listener_(*this);
  }
}

bool PowNode::validate(const Block& block) const {
  ledger::ValidationContext ctx;
  ctx.check_signature = config_.use_signatures;
  ctx.check_pow = config_.check_pow;
  ctx.check_body = config_.check_pow;  // bodies are real only on the real path
  if (registry_ != nullptr) {
    ctx.public_key = [this](ledger::NodeId id) { return registry_->lookup(id); };
  }
  ctx.expected_difficulty = [this](ledger::NodeId producer,
                                   const BlockHash& parent) -> std::optional<double> {
    if (!tree_.contains(parent)) return std::nullopt;
    return policy_->difficulty_for(tree_, parent, producer);
  };
  ctx.parent_height = [this](const BlockHash& parent) -> std::optional<std::uint64_t> {
    if (!tree_.contains(parent)) return std::nullopt;
    return tree_.height(parent);
  };
  return ledger::validate_block(block, ctx) == ledger::BlockCheck::ok;
}

}  // namespace themis::consensus
