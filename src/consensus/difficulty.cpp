#include "consensus/difficulty.h"

#include <cmath>

#include "common/check.h"

namespace themis::consensus {

FixedDifficulty::FixedDifficulty(double difficulty) : difficulty_(difficulty) {
  expects(std::isfinite(difficulty) && difficulty >= 1.0,
          "difficulty must be finite and >= 1");
}

}  // namespace themis::consensus
