#include "consensus/head_tracker.h"

#include <algorithm>

#include "common/check.h"

namespace themis::consensus {

using ledger::BlockHash;
using ledger::BlockTree;

void HeadTracker::reset(const BlockTree& tree, const ForkChoiceRule& rule,
                        const BlockHash& anchor,
                        std::uint64_t finality_depth) {
  expects(tree.contains(anchor), "anchor must be in the tree");
  finality_depth_ = finality_depth;
  finalized_height_ = 0;
  path_.clear();
  path_.push_back(anchor);
  anchor_height_ = tree.height(anchor);
  extend_from_back(tree, rule);
  advance_anchor();
}

HeadTracker::Update HeadTracker::on_insert(const BlockTree& tree,
                                           const ForkChoiceRule& rule,
                                           const BlockHash& batch_root) {
  const std::optional<BlockHash> batch_parent = tree.parent(batch_root);
  expects(batch_parent.has_value(), "batch root must be a non-genesis block");
  return on_insert(tree, rule, batch_root, *batch_parent, false);
}

HeadTracker::Update HeadTracker::on_insert(const BlockTree& tree,
                                           const ForkChoiceRule& rule,
                                           const BlockHash& batch_root,
                                           const BlockHash& batch_parent,
                                           bool batch_is_leaf) {
  expects(!path_.empty(), "reset() must run before on_insert()");
  Update update;
  const BlockHash old_head = path_.back();

  if (batch_parent == old_head) {
    // The hot case: the batch hangs directly off the head.  The old head was
    // a leaf before this batch, so the batch root is its only child and the
    // path extends through it; fork points higher up only saw their winning
    // child reinforced (weight and depth are monotone, and GEOST's variance
    // tie-break is only consulted on weight ties, impossible after the
    // winner's weight strictly grew).
    path_.push_back(batch_root);
    if (!batch_is_leaf) extend_from_back(tree, rule);
    update.head_changed = true;
    advance_anchor();
    return update;
  }
  // A single leaf whose parent is not the old head cannot contain the old
  // head (a leaf) on its ancestor path; larger batches (orphan adoption) may
  // still attach deeper inside the head's subtree.
  if (!batch_is_leaf && tree.is_ancestor(old_head, batch_root)) {
    update.head_changed = true;
    extend_from_back(tree, rule);
    advance_anchor();
    return update;
  }

  const BlockHash divergence =
      tree.lowest_common_ancestor(batch_root, old_head);
  const std::uint64_t div_height = tree.height(divergence);
  if (div_height < anchor_height_) {
    // The batch forked off below the anchor; a walk from the anchor never
    // sees it.  When the divergence also sits below a hard-finalized
    // checkpoint, flag it — this is the reorg attempt the finality overlay
    // exists to refuse, and callers count those.
    update.below_finalized =
        finalized_height_ > 0 && div_height < finalized_height_;
    return update;
  }

  // `divergence` lies on the cached path (it is an ancestor of the head at
  // or above the anchor); heights along the path are contiguous.
  const std::size_t idx = static_cast<std::size_t>(div_height - anchor_height_);
  ensures(path_[idx] == divergence, "cached path must contain the LCA");
  ensures(idx + 1 < path_.size(),
          "head-extending batches are handled by the fast path");
  const BlockHash on_path_child = path_[idx + 1];
  if (rule.preferred_child(tree, divergence) == on_path_child) {
    // The only decision the batch could flip did not flip; every decision
    // further down the path has unchanged inputs.
    return update;
  }

  // Reorg: the preferred subtree at the divergence point changed.  Rebuild
  // the path from there.
  update.reorg_depth = path_.size() - (idx + 1);
  path_.erase(path_.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
              path_.end());
  extend_from_back(tree, rule);
  update.head_changed = true;
  update.reorg = true;
  advance_anchor();
  return update;
}

bool HeadTracker::set_finalized(const BlockTree& tree,
                                const ForkChoiceRule& rule,
                                const BlockHash& block) {
  expects(!path_.empty(), "reset() must run before set_finalized()");
  expects(tree.contains(block), "finalized block must be in the tree");
  const std::uint64_t h = tree.height(block);
  if (h <= finalized_height_) return false;  // monotone

  bool on_path;
  if (h < anchor_height_) {
    on_path = tree.is_ancestor(block, path_.front());
  } else {
    const std::size_t idx = static_cast<std::size_t>(h - anchor_height_);
    on_path = idx < path_.size() && path_[idx] == block;
  }
  bool head_changed = false;
  if (!on_path) {
    // The certified checkpoint is off our preferred path: the network
    // hard-committed a branch that is (locally) losing the weight race.
    // Finality outranks fork choice — rebuild the path through the
    // certificate and greedily extend within its subtree.
    const BlockHash old_head = path_.back();
    path_.clear();
    path_.push_back(block);
    anchor_height_ = h;
    extend_from_back(tree, rule);
    head_changed = path_.back() != old_head;
  }
  finalized_height_ = h;
  advance_anchor();
  return head_changed;
}

void HeadTracker::extend_from_back(const BlockTree& tree,
                                   const ForkChoiceRule& rule) {
  BlockHash cur = path_.back();
  for (;;) {
    const std::vector<BlockHash>& kids = tree.children(cur);
    if (kids.empty()) break;
    cur = rule.preferred_child(tree, kids);
    path_.push_back(cur);
  }
}

void HeadTracker::advance_anchor() {
  const std::uint64_t head_height = anchor_height_ + path_.size() - 1;
  std::uint64_t target =
      head_height > finality_depth_ ? head_height - finality_depth_ : 0;
  // The hard floor outranks the probabilistic trail: once the overlay has
  // certified a checkpoint, the anchor (and with it the aggregate floor and
  // the snapshot/pruning cursor) never sits below it.
  target = std::max(target, std::min(finalized_height_, head_height));
  while (anchor_height_ < target) {
    path_.pop_front();
    ++anchor_height_;
  }
}

}  // namespace themis::consensus
