// Message type discriminators shared by the consensus and PBFT layers.
#pragma once

#include <cstdint>

namespace themis::consensus {

enum MessageType : std::uint32_t {
  kBlockAnnounce = 1,   // gossip flood of a freshly mined block
  kPbftRequest = 10,    // client request batch to the current leader
  kPbftPrePrepare = 11,
  kPbftPrepare = 12,
  kPbftCommit = 13,
  kPbftViewChange = 14,
  kPbftNewView = 15,
};

}  // namespace themis::consensus
