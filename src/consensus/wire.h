// Message type discriminators shared by the consensus and PBFT layers.
#pragma once

#include <cstdint>

namespace themis::consensus {

enum MessageType : std::uint32_t {
  kBlockAnnounce = 1,   // gossip flood of a freshly mined block
  kCkptVote = 2,        // simulated checkpoint finality vote (FinalityOverlay)
  kPbftRequest = 10,    // client request batch to the current leader
  kPbftPrePrepare = 11,
  kPbftPrepare = 12,
  kPbftCommit = 13,
  kPbftViewChange = 14,
  kPbftNewView = 15,

  // Real-network p2p frame types (src/p2p).  Kept in the same enum so the
  // simulated and socket transports can never collide on a discriminator.
  kP2pHandshake = 100,  // version + genesis exchange; must be the first frame
  kP2pPing = 101,       // liveness probe (nonce echoed by kP2pPong)
  kP2pPong = 102,
  kP2pInv = 103,        // block-hash inventory announcement
  kP2pGetData = 104,    // request full blocks for inventory hashes
  kP2pBlock = 105,      // one full canonical block encoding
  kP2pGetBlocks = 106,  // chain sync: locator -> range request
  kP2pBlocks = 107,     // chain sync: batched range response
  kP2pTxInv = 108,      // transaction-id inventory announcement
  kP2pGetTxData = 109,  // request full transactions for inventory ids
  kP2pTx = 110,         // one signed canonical transaction
  kP2pTxBatch = 111,    // many signed transactions in one frame, so the
                        // receiver can batch-verify admission in one pass
  kP2pCkptVote = 112,   // one signed checkpoint finality vote (gossiped with
                        // the same per-peer known-inventory suppression)
};

}  // namespace themis::consensus
