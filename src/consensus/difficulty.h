// Difficulty policies.
//
// A policy answers one question for miners and verifiers alike: what is the
// block-producing difficulty of node N_i for a block extending `parent`?
// Making the difficulty a pure function of the parent chain (rather than the
// verifier's current head) is what lets every node "verify the validity of
// blocks without extra communication" (§IV-A): all nodes derive identical
// difficulty tables from identical chain prefixes.
//
// The fixed policy here backs the PoW-H baseline; the paper's self-adaptive
// policy (Eq. 3-7) lives in src/core/adaptive_difficulty.h.
#pragma once

#include <cstdint>

#include "ledger/blocktree.h"
#include "ledger/types.h"

namespace themis::consensus {

class DifficultyPolicy {
 public:
  virtual ~DifficultyPolicy() = default;

  /// Difficulty D for a block by `producer` extending `parent` (in `tree`).
  virtual double difficulty_for(const ledger::BlockTree& tree,
                                const ledger::BlockHash& parent,
                                ledger::NodeId producer) = 0;

  /// Difficulty-adjustment epoch of a block extending `parent` (e in the
  /// paper; 0 for policies without epochs).
  virtual std::uint32_t epoch_for(const ledger::BlockTree& tree,
                                  const ledger::BlockHash& parent) = 0;
};

/// PoW-H baseline: one network-wide difficulty, identical for all producers
/// (Fig. 1a: "each node has the same difficulty").  Calibrated by the caller
/// so that the expected block interval is I_0 given the total hash rate:
/// D = I_0 * sum(h_i)  (with the T_0 = T_max convention of Eq. 7).
class FixedDifficulty final : public DifficultyPolicy {
 public:
  explicit FixedDifficulty(double difficulty);

  double difficulty_for(const ledger::BlockTree&, const ledger::BlockHash&,
                        ledger::NodeId) override {
    return difficulty_;
  }
  std::uint32_t epoch_for(const ledger::BlockTree&,
                          const ledger::BlockHash&) override {
    return 0;
  }

  double value() const { return difficulty_; }

 private:
  double difficulty_;
};

}  // namespace themis::consensus
