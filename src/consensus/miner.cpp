#include "consensus/miner.h"

#include <cmath>

#include "common/check.h"
#include "common/uint256.h"

namespace themis::consensus {

std::optional<ledger::BlockHeader> RealMiner::mine(ledger::BlockHeader header,
                                                   std::uint64_t start_nonce,
                                                   std::uint64_t max_attempts) {
  if (max_attempts == 0) return std::nullopt;
  const UInt256 target = target_for_difficulty(header.difficulty);
  // Clamp the attempt window to the end of the nonce space: incrementing
  // past 2^64-1 would wrap to 0 and silently re-search nonces outside the
  // documented [start_nonce, start_nonce + max_attempts) window.
  const std::uint64_t available = UINT64_MAX - start_nonce;  // after start
  const std::uint64_t attempts =
      max_attempts - 1 <= available ? max_attempts : available + 1;
  header.nonce = start_nonce;
  for (std::uint64_t i = 0; i < attempts; ++i) {
    if (ledger::satisfies_target(header.hash(), target)) return header;
    ++header.nonce;
  }
  return std::nullopt;
}

double SimMiner::block_rate(double hash_rate, double difficulty) {
  expects(hash_rate > 0.0, "hash rate must be positive");
  expects(std::isfinite(difficulty) && difficulty >= 1.0,
          "difficulty must be finite and >= 1");
  return hash_rate / difficulty;
}

SimTime SimMiner::sample_block_time(Rng& rng, double hash_rate, double difficulty) {
  return SimTime::seconds(rng.next_exponential(block_rate(hash_rate, difficulty)));
}

SimTime SimMiner::sample_block_time(DrawStream& draws, double hash_rate,
                                    double difficulty) {
  return SimTime::seconds(
      draws.next_exponential(block_rate(hash_rate, difficulty)));
}

}  // namespace themis::consensus
