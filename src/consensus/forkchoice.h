// Fork-choice (main chain consensus) rules.
//
// All three rules the paper discusses share the same greedy walk over the
// block tree (Algorithm 1's loop structure): starting from a block known to
// be on the main chain, repeatedly descend into the preferred child until a
// leaf is reached.  They differ only in how a child is preferred:
//
//   * Longest chain [Nakamoto]:  deepest subtree, tie -> first received.
//   * GHOST [Sompolinsky-Zohar]: heaviest subtree (most blocks),
//                                tie -> first received.
//   * GEOST (this paper, §V):    heaviest subtree, tie -> lowest variance of
//                                block-producing frequency within the
//                                subtree, tie -> first received.
//
// GEOST itself lives in src/core (it is the paper's contribution); the
// baselines live here.
#pragma once

#include <string_view>
#include <vector>

#include "ledger/blocktree.h"

namespace themis::consensus {

class ForkChoiceRule {
 public:
  virtual ~ForkChoiceRule() = default;

  /// Greedy walk from `start` (must be on the main chain, e.g. the genesis
  /// block or a finalized anchor) to the preferred head.
  ledger::BlockHash choose_head(const ledger::BlockTree& tree,
                                const ledger::BlockHash& start) const;

  virtual std::string_view name() const = 0;

 protected:
  /// Pick the preferred child among `children` (size >= 2).
  virtual ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const = 0;
};

/// Nakamoto's longest-chain rule.
class LongestChainRule final : public ForkChoiceRule {
 public:
  std::string_view name() const override { return "longest-chain"; }

 protected:
  ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const override;
};

/// The Greedy Heaviest-Observed Sub-Tree rule.
class GhostRule final : public ForkChoiceRule {
 public:
  std::string_view name() const override { return "ghost"; }

 protected:
  ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const override;
};

/// Deepest leaf height reachable within the subtree rooted at `id`.
std::uint64_t subtree_max_height(const ledger::BlockTree& tree,
                                 const ledger::BlockHash& id);

}  // namespace themis::consensus
