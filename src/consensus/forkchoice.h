// Fork-choice (main chain consensus) rules.
//
// All three rules the paper discusses share the same greedy walk over the
// block tree (Algorithm 1's loop structure): starting from a block known to
// be on the main chain, repeatedly descend into the preferred child until a
// leaf is reached.  They differ only in how a child is preferred:
//
//   * Longest chain [Nakamoto]:  deepest subtree, tie -> first received.
//   * GHOST [Sompolinsky-Zohar]: heaviest subtree (most blocks),
//                                tie -> first received.
//   * GEOST (this paper, §V):    heaviest subtree, tie -> lowest variance of
//                                block-producing frequency within the
//                                subtree, tie -> first received.
//
// GEOST itself lives in src/core (it is the paper's contribution); the
// baselines live here.
#pragma once

#include <string_view>
#include <vector>

#include "ledger/blocktree.h"

namespace themis::consensus {

class ForkChoiceRule {
 public:
  virtual ~ForkChoiceRule() = default;

  /// Greedy walk from `start` (must be on the main chain, e.g. the genesis
  /// block or a finalized anchor) to the preferred head.
  ledger::BlockHash choose_head(const ledger::BlockTree& tree,
                                const ledger::BlockHash& start) const;

  /// One step of the greedy walk: the preferred child of `id`, which must
  /// have at least one child.  Exposed so incremental head maintenance
  /// (consensus/head_tracker.h) can re-evaluate a single fork point without
  /// re-running the whole walk.
  ledger::BlockHash preferred_child(const ledger::BlockTree& tree,
                                    const ledger::BlockHash& id) const;

  /// Same step when the caller already holds the (non-empty) child list —
  /// saves the hash-map lookup on the walk's hot path.
  ledger::BlockHash preferred_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const;

  virtual std::string_view name() const = 0;

 protected:
  /// Pick the preferred child among `children` (size >= 2).
  virtual ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const = 0;
};

/// Nakamoto's longest-chain rule.
class LongestChainRule final : public ForkChoiceRule {
 public:
  std::string_view name() const override { return "longest-chain"; }

 protected:
  ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const override;
};

/// The Greedy Heaviest-Observed Sub-Tree rule.
class GhostRule final : public ForkChoiceRule {
 public:
  std::string_view name() const override { return "ghost"; }

 protected:
  ledger::BlockHash pick_child(
      const ledger::BlockTree& tree,
      const std::vector<ledger::BlockHash>& children) const override;
};

/// Deepest leaf height reachable within the subtree rooted at `id`.  O(1):
/// forwards to the tree's incrementally maintained aggregate.
std::uint64_t subtree_max_height(const ledger::BlockTree& tree,
                                 const ledger::BlockHash& id);

}  // namespace themis::consensus
