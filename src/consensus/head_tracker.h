// Incremental fork-choice head maintenance.
//
// The seed re-ran the full greedy walk from the finalized anchor on every
// block arrival (PowNode::update_head), then walked the parent chain again to
// advance the anchor.  With the tree's aggregates now O(1) that walk is
// cheap, but still O(finality_depth) per arrival — and almost all of it is
// re-deriving decisions whose inputs did not change.
//
// HeadTracker caches the preferred path (anchor … head, inclusive) and uses
// the fact that an insert only changes the aggregates of the inserted batch's
// ancestors:
//
//   * Batch extends the current head's subtree: every fork point on the
//     cached path is an ancestor of both the old head and the batch, so its
//     previously winning child just gained weight/depth — for all three rules
//     (longest-chain, GHOST, GEOST) improving the winner keeps it winning
//     (weight and depth are monotone; GEOST's variance tie-break is only
//     consulted on weight ties, and a strict winner's weight grew).  The walk
//     therefore resumes from the old head: O(batch).
//
//   * Batch hangs off a side branch: let D = LCA(batch root, old head).  Fork
//     points strictly above D on the cached path again only saw their winner
//     reinforced; fork points below D saw no input change at all.  Only the
//     decision AT D can flip.  If D's preferred child is unchanged the head
//     stands (O(1) after the LCA walk); otherwise the path is truncated at D
//     and re-extended greedily — exactly a reorg.
//
//   * Batch forks below the anchor: invisible to a walk starting at the
//     anchor; the head stands.
//
// The anchor advance is memoized by the same path: instead of walking
// `finality_depth` parents down from the head, the tracker pops the front of
// the cached path until it reaches the finalization height.
//
// The tracker's head/anchor/reorg sequence is bit-identical to the seed's
// recompute-from-anchor loop; tests/test_forkchoice_oracle.cpp checks that
// differentially on randomized (including orphan-adopted) insert sequences.
#pragma once

#include <cstdint>
#include <deque>

#include "consensus/forkchoice.h"
#include "ledger/blocktree.h"

namespace themis::consensus {

class HeadTracker {
 public:
  struct Update {
    bool head_changed = false;
    bool reorg = false;  ///< head changed and does not extend the old head
    /// Blocks abandoned from the old preferred path (old head back to the
    /// divergence point, exclusive).  Non-zero only when reorg is true.
    std::uint64_t reorg_depth = 0;
    /// The batch diverged below the hard-finalized height, so the head stood
    /// regardless of the batch's weight (the finality overlay's guarantee).
    bool below_finalized = false;
  };

  /// (Re)start tracking: full greedy walk from `anchor`, then advance the
  /// anchor to trail the head by `finality_depth`.
  void reset(const ledger::BlockTree& tree, const ForkChoiceRule& rule,
             const ledger::BlockHash& anchor, std::uint64_t finality_depth);

  /// Incorporate a batch of newly inserted blocks forming a (sub)tree rooted
  /// at `batch_root` (a single block is a batch of one; orphan adoption
  /// yields larger batches, all descendants of the first attached block).
  Update on_insert(const ledger::BlockTree& tree, const ForkChoiceRule& rule,
                   const ledger::BlockHash& batch_root);

  /// Same, for callers that already know the batch root's parent and whether
  /// the batch is a single leaf block (the common gossip-arrival case): the
  /// head-extension fast path then needs no tree lookup at all.
  Update on_insert(const ledger::BlockTree& tree, const ForkChoiceRule& rule,
                   const ledger::BlockHash& batch_root,
                   const ledger::BlockHash& batch_parent, bool batch_is_leaf);

  /// Hard-finalize `block` (a certified checkpoint from the finality
  /// overlay, already in the tree).  From here on, no insert can reorg the
  /// path at or below its height, and the anchor never trails below it.  If
  /// the certified block is off the current preferred path — the certified
  /// branch lost the weight race locally — the path is force-switched
  /// through it: hard finality outranks fork choice.  Returns true when that
  /// switch changed the head.  Monotone: calls at or below the current
  /// finalized height are no-ops.
  bool set_finalized(const ledger::BlockTree& tree, const ForkChoiceRule& rule,
                     const ledger::BlockHash& block);

  std::uint64_t finalized_height() const { return finalized_height_; }

  const ledger::BlockHash& head() const { return path_.back(); }
  const ledger::BlockHash& anchor() const { return path_.front(); }
  /// Path heights are contiguous, so both are known without a tree query —
  /// callers feed anchor_height() straight into set_aggregate_floor.
  std::uint64_t anchor_height() const { return anchor_height_; }
  std::uint64_t head_height() const {
    return anchor_height_ + path_.size() - 1;
  }

  /// Block on the cached preferred path at `height`, or nullptr when the
  /// height falls outside [anchor, head].  O(1) — the checkpoint overlay
  /// reads the block to vote on here.
  const ledger::BlockHash* path_block_at(std::uint64_t height) const {
    if (height < anchor_height_ || height - anchor_height_ >= path_.size()) {
      return nullptr;
    }
    return &path_[static_cast<std::size_t>(height - anchor_height_)];
  }

 private:
  /// Greedily extend the cached path from its current tip to a leaf.
  void extend_from_back(const ledger::BlockTree& tree,
                        const ForkChoiceRule& rule);
  /// Pop finalized blocks off the front so the anchor trails the head by at
  /// most `finality_depth_` (the seed's advance_anchor semantics) — and, when
  /// the overlay has hard-finalized past that probabilistic trail, so the
  /// anchor never sits below the hard-finalized height.
  void advance_anchor();

  std::deque<ledger::BlockHash> path_;  ///< anchor … head, contiguous heights
  std::uint64_t anchor_height_ = 0;     ///< height of path_.front()
  std::uint64_t finality_depth_ = 64;
  /// Hard floor from the checkpoint overlay (0 = none): reorgs diverging at
  /// or below this height are refused, and the anchor stays at or above it.
  std::uint64_t finalized_height_ = 0;
};

}  // namespace themis::consensus
