#include "net/link.h"

#include <algorithm>

namespace themis::net {

AccessLinkModel::AccessLinkModel(std::size_t n_nodes, LinkConfig config)
    : config_(config), uplink_free_(n_nodes, SimTime::zero()) {
  expects(config.bandwidth_bps > 0, "bandwidth must be positive");
  expects(config.min_delay >= SimTime::zero(), "propagation delay must be >= 0");
}

SimTime AccessLinkModel::transmission_time(std::size_t bytes) const {
  const double seconds = static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return SimTime::seconds(seconds);
}

SimTime AccessLinkModel::enqueue_send(std::uint32_t sender, SimTime now,
                                      std::size_t bytes) {
  expects(sender < uplink_free_.size(), "sender id out of range");
  SimTime& free_at = uplink_free_[sender];
  const SimTime start = std::max(now, free_at);
  const SimTime departure = start + transmission_time(bytes);
  free_at = departure;
  total_bytes_sent_ += bytes;
  ++total_transfers_;
  return departure + config_.min_delay;
}

SimTime AccessLinkModel::uplink_free_at(std::uint32_t sender) const {
  expects(sender < uplink_free_.size(), "sender id out of range");
  return uplink_free_[sender];
}

void AccessLinkModel::reset() {
  std::fill(uplink_free_.begin(), uplink_free_.end(), SimTime::zero());
  total_bytes_sent_ = 0;
  total_transfers_ = 0;
}

}  // namespace themis::net
