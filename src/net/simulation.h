// Discrete-event simulation core.
//
// Every experiment in the paper runs on simulated time: mining is an
// exponential arrival process, message delivery is an event at
// `now + transmission + propagation`.  Events at equal timestamps execute in
// schedule order (a monotone sequence number breaks ties), which makes every
// run bit-reproducible for a fixed seed.
//
// The queue behind this API is a bucketed calendar with an arena-pooled
// event slab (see net/event_queue.h): O(1) amortized schedule/fire with no
// steady-state allocation, and eager reclamation on cancel so pending()
// never drifts and cancelled events hold no memory.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "net/event_queue.h"

namespace themis::obs {
struct Observability;
}

namespace themis::net {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(SimTime delay, EventFn fn);

  /// Cancel a pending event.  Cancelling an already-fired, already-cancelled
  /// or unknown id is a no-op (returns false).
  bool cancel(EventId id);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or simulated time would pass
  /// `deadline`; the clock is left at min(deadline, last event time).
  void run_until(SimTime deadline);

  /// Drain the whole queue (with a safety cap on event count).
  void run(std::uint64_t max_events = UINT64_MAX);

  std::uint64_t events_processed() const { return events_processed_; }
  /// Scheduled events that have neither fired nor been cancelled.
  std::size_t pending() const { return queue_.size(); }

  /// Queue occupancy / compaction counters (see CalendarQueue::Stats).
  CalendarQueue::Stats queue_stats() const { return queue_.stats(); }

  /// Attach (or detach, with nullptr) an observability bundle.  The
  /// simulation core itself records nothing; components built on this
  /// simulation discover the bundle through obs() and trace/count into it.
  /// Attach before constructing those components — they cache the pointer.
  void set_obs(obs::Observability* obs) { obs_ = obs; }
  obs::Observability* obs() const { return obs_; }

 private:
  SimTime now_;
  std::uint64_t events_processed_ = 0;
  CalendarQueue queue_;
  obs::Observability* obs_ = nullptr;
};

}  // namespace themis::net
