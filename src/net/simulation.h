// Discrete-event simulation core.
//
// Every experiment in the paper runs on simulated time: mining is an
// exponential arrival process, message delivery is an event at
// `now + transmission + propagation`.  Events at equal timestamps execute in
// schedule order (a monotone sequence number breaks ties), which makes every
// run bit-reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace themis::obs {
struct Observability;
}

namespace themis::net {

using EventId = std::uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after a non-negative delay.
  EventId schedule_after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event.  Cancelling an already-fired, already-cancelled
  /// or unknown id is a no-op (returns false).
  bool cancel(EventId id);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or simulated time would pass
  /// `deadline`; the clock is left at min(deadline, last event time).
  void run_until(SimTime deadline);

  /// Drain the whole queue (with a safety cap on event count).
  void run(std::uint64_t max_events = UINT64_MAX);

  std::uint64_t events_processed() const { return events_processed_; }
  /// Scheduled events that have neither fired nor been cancelled.
  std::size_t pending() const { return live_.size(); }

  /// Attach (or detach, with nullptr) an observability bundle.  The
  /// simulation core itself records nothing; components built on this
  /// simulation discover the bundle through obs() and trace/count into it.
  /// Attach before constructing those components — they cache the pointer.
  void set_obs(obs::Observability* obs) { obs_ = obs; }
  obs::Observability* obs() const { return obs_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  SimTime now_;
  EventId next_id_ = 1;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Ids still live in the queue.  cancel() removes from here (lazy deletion:
  /// the queue entry is skipped when popped); step() removes on fire.  An id
  /// absent from this set has fired or been cancelled, so cancelling it again
  /// is a detectable no-op and pending() never drifts.
  std::unordered_set<EventId> live_;
  obs::Observability* obs_ = nullptr;
};

}  // namespace themis::net
