// Push-gossip message dissemination (§VII-A: "data transmission between
// nodes adopts basic Gossip protocol").
//
// Broadcast floods over a random regular overlay: the origin pushes to its
// peers; every node relays a message the first time it sees it.  Messages
// carry an opaque shared payload plus an explicit wire size — serialization
// correctness is unit-tested separately, and carrying pointers keeps large
// simulations (hundreds of nodes, thousands of blocks) cheap.
//
// The fanout is zero-copy: one immutable Message is built per broadcast (or
// unicast) and every in-flight delivery shares it by shared_ptr, so the
// per-recipient cost is a refcount bump and a 32-byte inline event capture —
// no Message copy, no payload copy, no allocation.  Per-node duplicate
// suppression is a lazily-grown bitmap over the monotone message ids.
//
// Direct point-to-point send() shares the same link model; the PBFT baseline
// is built on it.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/link.h"
#include "net/simulation.h"

namespace themis::net {

using PeerId = std::uint32_t;

struct Message {
  std::uint64_t id = 0;      ///< broadcast dedup key (stable across relays)
  std::uint32_t type = 0;    ///< application-defined discriminator
  PeerId origin = 0;         ///< who created the message
  std::size_t size_bytes = 0;
  bool flood = false;        ///< true for gossip broadcasts, false for unicast
  std::any payload;
};

class GossipNetwork {
 public:
  /// `fanout` peers per node in a random overlay (undirected union, so the
  /// realized degree averages about twice the fanout).
  GossipNetwork(Simulation& sim, LinkConfig link_config, std::size_t n_nodes,
                std::size_t fanout, std::uint64_t topology_seed);

  using Handler = std::function<void(PeerId self, const Message& msg)>;

  /// Install the receive callback for a node (replaces any previous one).
  void set_handler(PeerId node, Handler handler);

  /// The currently installed handler for a node (empty if none) — overlays
  /// that interpose on delivery (sim/finality_overlay) chain through this.
  const Handler& handler(PeerId node) const { return handlers_[node]; }

  /// Flood a new message from `origin`.  Returns the assigned message id.
  std::uint64_t broadcast(PeerId origin, std::uint32_t type, std::size_t size_bytes,
                          std::any payload);

  /// Direct unicast (no relaying, no dedup) over the same links.
  void send(PeerId from, PeerId to, std::uint32_t type, std::size_t size_bytes,
            std::any payload);

  /// Optional drop rule evaluated per (from, to, message); return true to
  /// drop.  Used to model vulnerable/partitioned nodes (§VII-A attacks).
  void set_drop_filter(std::function<bool(PeerId from, PeerId to, const Message&)> f);

  const std::vector<PeerId>& peers(PeerId node) const;
  std::size_t n_nodes() const { return peers_.size(); }
  AccessLinkModel& links() { return links_; }
  const AccessLinkModel& links() const { return links_; }

  std::uint64_t messages_delivered() const { return messages_delivered_; }
  /// Flood deliveries whose message the receiver had already seen (the
  /// push-gossip redundancy cost).  Subset of messages_delivered().
  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  /// Redundant-push ratio: duplicate deliveries / all deliveries (0 before
  /// any delivery).  ~ (mean degree - 2) / mean degree for flood gossip on a
  /// static overlay.
  double redundant_push_ratio() const {
    return messages_delivered_ == 0
               ? 0.0
               : static_cast<double>(duplicates_dropped_) /
                     static_cast<double>(messages_delivered_);
  }

 private:
  void deliver(PeerId from, PeerId to, std::shared_ptr<const Message> msg);
  void arrive(PeerId from, PeerId to, const std::shared_ptr<const Message>& msg);
  void relay(PeerId node, const std::shared_ptr<const Message>& msg, PeerId skip);
  /// Mark `id` seen by `node`; returns true when it was new.
  bool first_sight(PeerId node, std::uint64_t id);

  Simulation& sim_;
  AccessLinkModel links_;
  std::vector<std::vector<PeerId>> peers_;
  std::vector<Handler> handlers_;
  /// Per-node dedup bitmaps indexed by message id (ids are monotone from 1,
  /// so the bitmap grows lazily to next_message_id_/8 bytes per node).
  std::vector<std::vector<std::uint64_t>> seen_;
  std::function<bool(PeerId, PeerId, const Message&)> drop_filter_;
  std::uint64_t next_message_id_ = 1;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t duplicates_dropped_ = 0;
};

}  // namespace themis::net
