#include "net/simulation.h"

namespace themis::net {

EventId Simulation::schedule_at(SimTime t, std::function<void()> fn) {
  expects(t >= now_, "cannot schedule into the past");
  expects(fn != nullptr, "event callback must not be null");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId Simulation::schedule_after(SimTime delay, std::function<void()> fn) {
  expects(delay >= SimTime::zero(), "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  // Lazy deletion: drop the id from the live set and skip the queue entry
  // when it surfaces.  Fired and already-cancelled ids are no longer live, so
  // re-cancelling them is a detectable no-op.
  return live_.erase(id) > 0;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (live_.erase(ev.id) == 0) continue;  // cancelled
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (!live_.contains(top.id)) {
      queue_.pop();
      continue;
    }
    if (top.time > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

void Simulation::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (executed < max_events && step()) ++executed;
}

}  // namespace themis::net
