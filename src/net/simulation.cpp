#include "net/simulation.h"

#include <algorithm>

namespace themis::net {

EventId Simulation::schedule_at(SimTime t, EventFn fn) {
  expects(t >= now_, "cannot schedule into the past");
  expects(static_cast<bool>(fn), "event callback must not be null");
  return queue_.push(t, std::move(fn));
}

EventId Simulation::schedule_after(SimTime delay, EventFn fn) {
  expects(delay >= SimTime::zero(), "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) { return queue_.cancel(id); }

bool Simulation::step() {
  if (queue_.empty()) return false;
  // The callback is moved out of the arena before it runs, so an event is
  // free to schedule, cancel, or grow the queue while firing.
  CalendarQueue::Fired fired = queue_.pop();
  now_ = fired.time;
  ++events_processed_;
  fired.fn();
  return true;
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.peek_time() <= deadline) step();
  now_ = std::max(now_, deadline);
}

void Simulation::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (executed < max_events && step()) ++executed;
}

}  // namespace themis::net
