// Event queues for the discrete-event simulator.
//
// The simulator fires events in (time, sequence) order: among equal
// timestamps, schedule order wins, which is what makes every run
// bit-reproducible for a fixed seed.  Two implementations share that
// contract:
//
//  * CalendarQueue — the production queue.  A bucketed calendar (R. Brown,
//    CACM 1988) with power-of-two bucket widths: an event at time t lives in
//    bucket (t >> width_shift) & (n_buckets - 1), buckets are kept sorted, and
//    a cursor sweeps the ring one bucket-width window at a time, so push and
//    pop are O(1) amortized at the event densities simulations produce
//    (vs O(log n) sift + hashing for the binary-heap version).  Simulation
//    timestamps are sharply bimodal — a dense wave of message deliveries
//    within the next propagation delay, plus sparse mining timers seconds
//    out — so events beyond the ring's span go to a small "far" binary heap
//    of plain (time, seq, slot) triples and migrate into the ring when the
//    cursor's window reaches them.  Event callbacks live in a slab arena
//    with a freelist — steady-state scheduling allocates nothing — and
//    cancellation reclaims the slot eagerly (O(bucket) in the ring, O(1) in
//    the far heap): no lazy-deletion garbage, pending() never drifts.
//  * NaiveEventQueue — the original std::priority_queue + lazy-deletion
//    live-set implementation, kept as the oracle for differential tests and
//    as the microbenchmark baseline.
//
// EventIds encode (generation << 32) | arena slot.  Generations start at 1
// and skip 0 on wrap, so no valid id is ever 0 (callers use 0 as a "no event"
// sentinel) and a stale id held across slot reuse can neither cancel the new
// occupant nor be reported as live.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace themis::net {

using EventId = std::uint64_t;

/// Move-only callable with 64 bytes of inline storage.  The simulator's hot
/// paths (gossip deliveries, mining timers) capture a handful of words, so
/// steady-state scheduling never touches the heap; larger captures fall back
/// to a single allocation, like std::function.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    // Null function pointers / empty std::functions stay "empty" so callers'
    // null-callback preconditions keep firing.
    if constexpr (requires { f == nullptr; }) {
      if (f == nullptr) return;
    }
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    expects(ops_ != nullptr, "invoking an empty EventFn");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into dst from src, then destroy src's residue.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { static_cast<Fn*>(s)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* s) { delete *static_cast<Fn**>(s); }};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// Bucketed calendar queue with an arena-pooled event slab.  Not a template:
/// the one payload the simulator needs is an EventFn keyed by SimTime.
class CalendarQueue {
 public:
  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  /// Insert; returns a non-zero id usable with cancel().
  EventId push(SimTime time, EventFn fn);

  /// Eagerly remove a pending event and reclaim its arena slot.  Returns
  /// false (and does nothing) for fired, already-cancelled or unknown ids —
  /// generation stamps make slot reuse safe.
  bool cancel(EventId id);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Timestamp of the next event (queue must be non-empty).  May advance the
  /// internal cursor, never changes the contents.
  SimTime peek_time();

  struct Fired {
    SimTime time;
    EventFn fn;
  };
  /// Remove and return the earliest (time, sequence) event (non-empty).
  Fired pop();

  /// Occupancy / compaction counters (cheap, always on).
  struct Stats {
    std::size_t live = 0;            ///< pending events
    std::size_t peak_live = 0;       ///< high-water mark of `live`
    std::size_t bucket_count = 0;    ///< current calendar size (power of two)
    int width_shift = 0;             ///< bucket width = 1 << width_shift ns
    std::size_t arena_slots = 0;     ///< slab capacity (== live + free_slots)
    std::size_t free_slots = 0;      ///< reclaimed slots awaiting reuse
    std::uint64_t rebuilds = 0;      ///< calendar resizes (density triggers)
    std::uint64_t cancelled = 0;     ///< eager cancellations reclaimed
    std::uint64_t direct_searches = 0;  ///< sparse-queue cursor resets
    std::size_t far_live = 0;        ///< events parked in the far heap
    std::uint64_t far_migrations = 0;   ///< far-heap events moved into the ring
    std::uint64_t oversize_sorts = 0;   ///< lazy sorts over oversized buckets
  };
  Stats stats() const;

 private:
  struct Entry {
    std::int64_t time;   // nanoseconds
    std::uint64_t seq;   // FIFO tie-break among equal times
    std::uint32_t slot;  // arena index
  };
  /// One calendar bucket: entries[head..] are pending, entries[..head] were
  /// fired (the prefix is reclaimed when the bucket drains — no per-pop
  /// erase).  Pushes append in O(1); the bucket is sorted lazily, once, when
  /// the cursor's window reaches it (`dirty`), so a burst landing in a single
  /// bucket costs O(m log m) instead of O(m²) sorted inserts.
  struct Bucket {
    std::vector<Entry> entries;
    std::uint32_t head = 0;
    bool dirty = false;

    bool drained() const { return head == entries.size(); }
    const Entry& front() const { return entries[head]; }
    void reset() {
      entries.clear();  // keeps capacity: steady state re-mallocs nothing
      head = 0;
      dirty = false;
    }
  };
  struct Slot {
    EventFn fn;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    /// Ring bucket index, kFarBucket for far-heap residents, kFreeBucket
    /// when the slot is free.
    std::uint32_t bucket = kFreeBucket;
    std::uint32_t next_free = kNoFree;
  };
  static constexpr std::uint32_t kFreeBucket = UINT32_MAX;
  static constexpr std::uint32_t kFarBucket = UINT32_MAX - 1;
  static constexpr std::uint32_t kNoFree = UINT32_MAX;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr int kMinWidthShift = 10;  // 1 us
  static constexpr int kMaxWidthShift = 36;  // ~69 s
  static constexpr int kInitialWidthShift = 21;  // ~2 ms
  /// Width sampling looks at the soonest this-many entries (see
  /// pick_width_shift); rebuild sorts only that prefix.
  static constexpr std::size_t kWidthSample = 4096;
  /// Slab chunk: 4096 slots.  Chunks are allocated once and never move, so
  /// growing the arena relocates no EventFn and invalidates no Slot pointer.
  static constexpr std::uint32_t kSlabShift = 12;
  static constexpr std::uint32_t kSlabChunk = 1u << kSlabShift;

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  std::size_t bucket_index(std::int64_t t) const {
    return (static_cast<std::uint64_t>(t) >> width_shift_) &
           (buckets_.size() - 1);
  }
  std::int64_t bucket_width() const {
    return std::int64_t{1} << width_shift_;
  }
  std::int64_t window_lower() const { return window_upper_ - bucket_width(); }
  /// One-lap horizon: events at or beyond this go to the far heap, so a ring
  /// bucket never mixes events from different laps.
  std::int64_t ring_limit() const;
  void set_cursor(std::int64_t t);

  std::uint32_t allocate_slot();
  void release_slot(std::uint32_t slot);
  /// Append to a bucket, marking it dirty only when the append breaks the
  /// existing (time, seq) order.
  static void bucket_push(Bucket& bucket, Entry e);
  /// Sort a dirty bucket's pending suffix; cheap no-op otherwise.  Counts
  /// oversized sorts — the signature of a too-wide bucket width (a whole
  /// delivery wave in one window, re-sorted every pop), which trips a
  /// re-sampling rebuild in pop().
  void ensure_sorted(Bucket& bucket);
  /// A lazy sort over more pending entries than this is "oversized": fine
  /// once (a same-window burst), degenerate when it happens every pop.
  static constexpr std::size_t kOversizeSort = 64;

  /// Min-heap order for the far tier: later (time, seq) sinks.
  static bool far_later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  /// Live far-heap population (excludes lazily-deleted residue).
  std::size_t far_live() const { return far_.size() - far_dead_; }
  std::size_t ring_live() const { return live_ - far_live(); }
  /// True when `e`'s slot no longer holds that far event (cancelled residue).
  bool far_stale(const Entry& e) const {
    const Slot& s = slot_ref(e.slot);
    return s.bucket != kFarBucket || s.seq != e.seq;
  }
  /// Earliest live far entry, skimming cancelled residue; null when none.
  const Entry* far_top();
  void far_pop_top();
  /// Drop cancelled residue once it outnumbers the live far population —
  /// keeps far memory at O(live) despite lazy deletion.
  void compact_far();
  /// Move far events whose time has entered the cursor's window into the
  /// ring.  Call before examining a window; keeps the cursor invariant
  /// (no live event before window_lower) across both tiers.
  void migrate_due();

  /// The earliest live entry; advances the cursor to its bucket (sorting it
  /// if dirty).  Requires live_ > 0.  The returned reference is the front of
  /// buckets_[cur_].
  const Entry& find_min();
  /// Scan every bucket (and the far heap) for the global minimum and park
  /// the cursor there.  O(bucket_count + dirty entries); the sparse-ring
  /// fallback.
  void direct_search();

  void maybe_grow();
  /// Gather both tiers, re-sample the bucket width from the soonest events,
  /// re-bucket everything within the new one-lap horizon into
  /// `new_bucket_count` buckets, rebuild the far heap from the remainder,
  /// and reset the cursor to the global minimum.
  void rebuild(std::size_t new_bucket_count);
  int pick_width_shift(const std::vector<Entry>& sorted_entries);

  Slot& slot_ref(std::uint32_t i) {
    return slab_[i >> kSlabShift][i & (kSlabChunk - 1)];
  }
  const Slot& slot_ref(std::uint32_t i) const {
    return slab_[i >> kSlabShift][i & (kSlabChunk - 1)];
  }

  std::vector<Bucket> buckets_;
  std::vector<std::unique_ptr<Slot[]>> slab_;
  std::uint32_t slot_count_ = 0;  ///< slots ever created (all chunks)
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t next_seq_ = 1;
  int width_shift_ = kInitialWidthShift;
  std::size_t cur_ = 0;               ///< bucket the cursor is parked on
  std::int64_t window_upper_ = 0;     ///< exclusive upper edge of cur_'s window
  std::vector<Entry> far_;            ///< min-heap of beyond-horizon events
  std::size_t far_dead_ = 0;          ///< cancelled residue still in far_
  std::uint64_t pops_since_rebuild_ = 0;
  std::uint64_t migrations_since_rebuild_ = 0;
  std::uint64_t oversize_sorts_since_rebuild_ = 0;
  std::uint64_t oversize_sorts_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t direct_searches_ = 0;
  std::uint64_t migrations_ = 0;
  std::vector<Entry> scratch_;        ///< rebuild workspace (kept allocated)
  std::vector<std::int64_t> gap_scratch_;  ///< width-sampling workspace
};

/// The pre-calendar implementation: binary heap plus lazy-deletion live set.
/// Kept verbatim as the differential-test oracle and benchmark baseline.
class NaiveEventQueue {
 public:
  EventId push(SimTime time, std::function<void()> fn) {
    const EventId id = next_id_++;
    queue_.push(Event{time, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  bool cancel(EventId id) { return live_.erase(id) > 0; }

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  SimTime peek_time() {
    skim();
    return queue_.top().time;
  }

  struct Fired {
    SimTime time;
    std::function<void()> fn;
  };
  Fired pop() {
    skim();
    // priority_queue::top() is const; moving out right before pop() is safe.
    Event& top = const_cast<Event&>(queue_.top());
    Fired fired{top.time, std::move(top.fn)};
    live_.erase(top.id);
    queue_.pop();
    return fired;
  }

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Drop cancelled entries sitting on top of the heap.
  void skim() {
    while (!queue_.empty() && !live_.contains(queue_.top().id)) queue_.pop();
  }

  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;
};

}  // namespace themis::net
