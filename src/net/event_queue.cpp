#include "net/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace themis::net {

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {
  window_upper_ = bucket_width();  // cursor parked on bucket 0's first window
}

std::int64_t CalendarQueue::ring_limit() const {
  const int span_bits =
      width_shift_ + std::countr_zero(buckets_.size());
  if (span_bits >= 62) return std::numeric_limits<std::int64_t>::max();
  const std::int64_t span = std::int64_t{1} << span_bits;
  const std::int64_t lower = window_lower();
  if (lower > std::numeric_limits<std::int64_t>::max() - span) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return lower + span;
}

void CalendarQueue::set_cursor(std::int64_t t) {
  cur_ = bucket_index(t);
  const std::uint64_t window = (static_cast<std::uint64_t>(t) >> width_shift_) + 1;
  window_upper_ = static_cast<std::int64_t>(window << width_shift_);
}

std::uint32_t CalendarQueue::allocate_slot() {
  if (free_head_ != kNoFree) {
    const std::uint32_t slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
    return slot;
  }
  if ((slot_count_ & (kSlabChunk - 1)) == 0) {
    slab_.push_back(std::make_unique<Slot[]>(kSlabChunk));
  }
  return slot_count_++;
}

void CalendarQueue::release_slot(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.bucket = kFreeBucket;
  if (++s.gen == 0) s.gen = 1;  // ids are never 0 (see header)
  s.next_free = free_head_;
  free_head_ = slot;
}

void CalendarQueue::bucket_push(Bucket& bucket, Entry e) {
  if (!bucket.dirty && bucket.head < bucket.entries.size()) {
    const Entry& back = bucket.entries.back();
    if (back.time > e.time || (back.time == e.time && back.seq > e.seq)) {
      bucket.dirty = true;
    }
  }
  // First use of a bucket: skip the 1/2/4-capacity doubling ramp (three
  // mallocs per bucket adds up across a large ring).
  if (bucket.entries.capacity() == 0) bucket.entries.reserve(8);
  bucket.entries.push_back(e);
}

void CalendarQueue::ensure_sorted(Bucket& bucket) {
  if (!bucket.dirty) return;
  const std::size_t pending = bucket.entries.size() - bucket.head;
  // Count only *re*-sorts (head > 0): a fresh bucket's first sort — however
  // big the burst — happens once and is the design's intended cost, while a
  // re-sort after consumption began means interleaved pushes keep re-dirtying
  // the cursor's bucket.  Weight by size, not count: one 10k-entry bucket
  // re-sorted on 5% of pops dominates the run even though 95% are clean.
  if (bucket.head > 0 && pending > kOversizeSort) {
    oversize_sorts_since_rebuild_ += pending;
    ++oversize_sorts_;
  }
  std::sort(bucket.entries.begin() + bucket.head, bucket.entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.seq < b.seq;
            });
  bucket.dirty = false;
}

EventId CalendarQueue::push(SimTime time, EventFn fn) {
  const std::int64_t t = time.count_nanos();
#if defined(__GNUC__)
  // A large ring makes the target bucket a near-guaranteed cache miss; start
  // that fetch now so it overlaps the slot write below.  (Harmless when the
  // event ends up in the far heap instead.)
  __builtin_prefetch(&buckets_[bucket_index(t)], 1);
#endif
  const std::uint32_t slot = allocate_slot();
  Slot& s = slot_ref(slot);
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  const EventId id = make_id(s.gen, slot);
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  // Cursor invariant: no live event — in either tier — may lie before the
  // cursor's current window, or the sweep would fire a later event first.
  // Pull the cursor back when an earlier event arrives (and park it outright
  // when the queue was empty, where the cursor position is stale).
  if (live_ == 1 || t < window_lower()) set_cursor(t);
  if (t >= ring_limit()) {
    // Beyond the ring's one-lap horizon (a far-future mining timer): park in
    // the far heap — plain POD sift, no callback motion, O(1) cancel.
    s.bucket = kFarBucket;
    far_.push_back(Entry{t, s.seq, slot});
    std::push_heap(far_.begin(), far_.end(), far_later);
  } else {
    const std::size_t b = bucket_index(t);
    s.bucket = static_cast<std::uint32_t>(b);
    bucket_push(buckets_[b], Entry{t, s.seq, slot});
    maybe_grow();
  }
  return id;
}

bool CalendarQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return false;
  Slot& s = slot_ref(slot);
  if (s.bucket == kFreeBucket || s.gen != gen) return false;
  if (s.bucket == kFarBucket) {
    // Far-heap cancel is O(1): the heap entry becomes residue that far_top()
    // skims and compact_far() bounds; the slot itself is reclaimed eagerly.
    ++far_dead_;
    s.fn = EventFn();
    release_slot(slot);
    --live_;
    ++cancelled_;
    if (far_dead_ * 2 > far_.size()) compact_far();
    return true;
  }
  Bucket& bucket = buckets_[s.bucket];
  for (auto it = bucket.entries.begin() + bucket.head;
       it != bucket.entries.end(); ++it) {
    if (it->slot == slot) {
      bucket.entries.erase(it);
      break;
    }
  }
  if (bucket.drained()) bucket.reset();
  s.fn = EventFn();  // destroy the callback (and its captures) eagerly
  release_slot(slot);
  --live_;
  ++cancelled_;
  return true;
}

const CalendarQueue::Entry* CalendarQueue::far_top() {
  while (!far_.empty()) {
    if (!far_stale(far_.front())) return &far_.front();
    far_pop_top();
    --far_dead_;
  }
  return nullptr;
}

void CalendarQueue::far_pop_top() {
  std::pop_heap(far_.begin(), far_.end(), far_later);
  far_.pop_back();
}

void CalendarQueue::compact_far() {
  std::erase_if(far_, [this](const Entry& e) { return far_stale(e); });
  std::make_heap(far_.begin(), far_.end(), far_later);
  far_dead_ = 0;
}

void CalendarQueue::migrate_due() {
  while (const Entry* top = far_top()) {
    if (top->time >= window_upper_) break;
    const Entry e = *top;
    far_pop_top();
    const std::size_t b = bucket_index(e.time);
    slot_ref(e.slot).bucket = static_cast<std::uint32_t>(b);
    bucket_push(buckets_[b], e);
    ++migrations_;
    ++migrations_since_rebuild_;
  }
}

const CalendarQueue::Entry& CalendarQueue::find_min() {
  if (ring_live() == 0) {
    // Ring is empty; jump straight to the far minimum instead of sweeping.
    set_cursor(far_top()->time);
  }
  std::size_t scanned = 0;
  for (;;) {
    if (!far_.empty()) migrate_due();
    Bucket& bucket = buckets_[cur_];
    if (!bucket.drained()) {
      ensure_sorted(bucket);
      if (bucket.front().time < window_upper_) return bucket.front();
    }
    cur_ = (cur_ + 1) & (buckets_.size() - 1);
    window_upper_ += bucket_width();
    if (++scanned > buckets_.size()) {
      // A full fruitless lap: the ring is sparse relative to the calendar
      // span.  Find the minimum directly and park the cursor there.
      direct_search();
      scanned = 0;
    }
  }
}

void CalendarQueue::direct_search() {
  ++direct_searches_;
  const Entry* best = nullptr;
  const auto consider = [&best](const Entry& e) {
    if (best == nullptr || e.time < best->time ||
        (e.time == best->time && e.seq < best->seq)) {
      best = &e;
    }
  };
  for (const Bucket& bucket : buckets_) {
    if (bucket.drained()) continue;
    if (!bucket.dirty) {
      consider(bucket.front());
      continue;
    }
    // Dirty buckets are unsorted; their minimum is anywhere in the suffix.
    for (std::size_t i = bucket.head; i < bucket.entries.size(); ++i) {
      consider(bucket.entries[i]);
    }
  }
  if (const Entry* f = far_top()) {
    if (best == nullptr || f->time < best->time ||
        (f->time == best->time && f->seq < best->seq)) {
      best = f;
    }
  }
  set_cursor(best->time);
}

SimTime CalendarQueue::peek_time() {
  expects(live_ > 0, "peek on an empty queue");
  return SimTime::nanos(find_min().time);
}

CalendarQueue::Fired CalendarQueue::pop() {
  expects(live_ > 0, "pop on an empty queue");
  // Migration pressure: when most pops had to pull their event over from the
  // far heap, the ring's one-lap horizon is shorter than the live event
  // spread — the calendar has degenerated into a binary heap.  Re-sample the
  // width from the full population and rebuild.  (Workloads that genuinely
  // are sparse far-future churn keep a low pop rate and never trip this.)
  ++pops_since_rebuild_;
  if (migrations_since_rebuild_ > 4096 &&
      migrations_since_rebuild_ > pops_since_rebuild_ / 2) {
    rebuild(std::max(kMinBuckets, std::bit_ceil(live_)));
  }
  // The opposite degeneration: the width is too *wide*, a whole event wave
  // shares one window, and interleaved pushes re-dirty the cursor's bucket so
  // pops keep re-sorting thousands of entries — O(n log n) per event, worse
  // than the heap this replaced.  The counter accumulates *entries sorted* in
  // oversized lazy sorts, so a one-off burst (sorted once, then consumed in
  // order) stays under the threshold while a re-dirtied giant bucket trips it
  // within a few pops.  (The width was sampled from whatever population the
  // last rebuild saw — often just the sparse mining timers — and this is how
  // the calendar re-learns the dense delivery-wave spacing.)
  if (oversize_sorts_since_rebuild_ > 4096 &&
      oversize_sorts_since_rebuild_ > pops_since_rebuild_ * 8) {
    rebuild(std::max(kMinBuckets, std::bit_ceil(live_)));
  }
  const Entry e = find_min();
  Bucket& bucket = buckets_[cur_];
  ++bucket.head;
  if (bucket.drained()) {
    bucket.reset();
  } else {
#if defined(__GNUC__)
    // The very next pop will move this slot's callback out; fetching it now
    // hides that miss behind the caller's handling of the current event.
    __builtin_prefetch(&slot_ref(bucket.front().slot), 1);
#endif
  }
  Slot& s = slot_ref(e.slot);
  Fired fired{SimTime::nanos(e.time), std::move(s.fn)};
  release_slot(e.slot);
  --live_;
  return fired;
}

// The calendar grows but never shrinks: an empty ring costs nothing (pop
// jumps the cursor straight to the far minimum) and a sparse one is capped
// by direct_search, while shrinking would re-sample the width from whatever
// sparse population remains — the far-future timer tail — and mis-tune the
// calendar for the next burst.  Memory stays bounded by the peak population.
void CalendarQueue::maybe_grow() {
  if (ring_live() <= buckets_.size() * 2) return;
  rebuild(std::max(kMinBuckets, std::bit_ceil(live_)));
}

int CalendarQueue::pick_width_shift(const std::vector<Entry>& sorted_entries) {
  if (sorted_entries.size() < 2) return width_shift_;
  // Sample the *median* gap among the soonest events — they set pop's scan
  // cost.  The median is what makes the width robust to the bimodal
  // population: the mean is blown up by the far-future timer tail (windows
  // of seconds, a whole gossip wave in one bucket) and the minimum collapses
  // under a same-instant burst (1 us windows, a ring covering almost
  // nothing).
  const std::size_t k = std::min(sorted_entries.size(), kWidthSample);
  const std::int64_t span = sorted_entries[k - 1].time - sorted_entries[0].time;
  if (span <= 0) return kMinWidthShift;
  gap_scratch_.clear();
  for (std::size_t i = 1; i < k; ++i) {
    gap_scratch_.push_back(sorted_entries[i].time - sorted_entries[i - 1].time);
  }
  const auto mid = gap_scratch_.begin() +
                   static_cast<std::ptrdiff_t>(gap_scratch_.size() / 2);
  std::nth_element(gap_scratch_.begin(), mid, gap_scratch_.end());
  // A median of 0 means ties dominate the sample; fall back to the mean.
  std::uint64_t gap = static_cast<std::uint64_t>(*mid);
  if (gap == 0) {
    gap = static_cast<std::uint64_t>(span) / static_cast<std::uint64_t>(k - 1);
  }
  // Aim for a few events per window so a pop scans a handful of entries.
  const std::uint64_t width = std::bit_ceil(std::max<std::uint64_t>(4 * gap, 2));
  const int shift = std::countr_zero(width);
  return std::clamp(shift, kMinWidthShift, kMaxWidthShift);
}

void CalendarQueue::rebuild(std::size_t new_bucket_count) {
  // Gather *both* tiers: the width must be sampled from the full live
  // population, or a ring that has degenerated (everything far) can never
  // re-learn a useful span.
  scratch_.clear();
  for (const Bucket& bucket : buckets_) {
    scratch_.insert(scratch_.end(), bucket.entries.begin() + bucket.head,
                    bucket.entries.end());
  }
  for (const Entry& e : far_) {
    if (!far_stale(e)) scratch_.push_back(e);
  }
  far_.clear();
  far_dead_ = 0;
  // Width sampling only reads the soonest kWidthSample entries in order, so
  // partition-and-sort that prefix — O(n + k log k) — instead of sorting the
  // whole live population.  The rest of scratch_ stays unsorted; bucket
  // appends below mark their buckets dirty and the cursor sweep sorts each
  // one lazily on first touch (n small sorts at bucket occupancy, far
  // cheaper than one O(n log n) pass, and only for buckets actually reached).
  const auto before = [](const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  };
  const std::size_t k = std::min(scratch_.size(), kWidthSample);
  if (k > 0) {
    if (scratch_.size() > k) {
      std::nth_element(scratch_.begin(),
                       scratch_.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       scratch_.end(), before);
    }
    std::sort(scratch_.begin(),
              scratch_.begin() + static_cast<std::ptrdiff_t>(k), before);
  }
  width_shift_ = pick_width_shift(scratch_);
  // Keep bucket capacity across rebuilds: reset() instead of assign() so a
  // steady-state repartition re-mallocs nothing.
  if (new_bucket_count != buckets_.size()) buckets_.resize(new_bucket_count);
  for (Bucket& bucket : buckets_) bucket.reset();
  ++rebuilds_;
  pops_since_rebuild_ = 0;
  migrations_since_rebuild_ = 0;
  oversize_sorts_since_rebuild_ = 0;
  if (scratch_.empty()) return;
  // Park the cursor at the global minimum *before* partitioning, so the new
  // one-lap horizon starts there.
  set_cursor(scratch_.front().time);
  const std::int64_t limit = ring_limit();
  // Anything past the new one-lap horizon returns to the far heap
  // (heapified once at the end).
  for (const Entry& e : scratch_) {
    if (e.time >= limit) {
      slot_ref(e.slot).bucket = kFarBucket;
      far_.push_back(e);
      continue;
    }
    const std::size_t b = bucket_index(e.time);
    slot_ref(e.slot).bucket = static_cast<std::uint32_t>(b);
    bucket_push(buckets_[b], e);
  }
  std::make_heap(far_.begin(), far_.end(), far_later);
}

CalendarQueue::Stats CalendarQueue::stats() const {
  Stats s;
  s.live = live_;
  s.peak_live = peak_live_;
  s.bucket_count = buckets_.size();
  s.width_shift = width_shift_;
  s.arena_slots = slot_count_;
  s.free_slots = slot_count_ - live_;
  s.rebuilds = rebuilds_;
  s.cancelled = cancelled_;
  s.direct_searches = direct_searches_;
  s.far_live = far_live();
  s.far_migrations = migrations_;
  s.oversize_sorts = oversize_sorts_;
  return s;
}

}  // namespace themis::net
