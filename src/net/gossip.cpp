#include "net/gossip.h"

#include <algorithm>

#include "obs/observability.h"

namespace themis::net {

GossipNetwork::GossipNetwork(Simulation& sim, LinkConfig link_config,
                             std::size_t n_nodes, std::size_t fanout,
                             std::uint64_t topology_seed)
    : sim_(sim),
      links_(n_nodes, link_config),
      peers_(n_nodes),
      handlers_(n_nodes),
      seen_(n_nodes) {
  expects(n_nodes >= 2, "network needs at least two nodes");
  expects(fanout >= 1, "fanout must be at least 1");

  // Random overlay: each node picks `fanout` distinct peers; edges are made
  // undirected so the graph is connected with overwhelming probability for
  // fanout >= 2 (and we additionally chain i -> i+1 as a connectivity floor).
  Rng rng(topology_seed);
  std::vector<std::unordered_set<PeerId>> adj(n_nodes);
  for (PeerId i = 0; i < n_nodes; ++i) {
    adj[i].insert(static_cast<PeerId>((i + 1) % n_nodes));
    adj[(i + 1) % n_nodes].insert(i);
    std::size_t picked = 0;
    std::size_t attempts = 0;
    while (picked + 1 < fanout && attempts < 16 * fanout) {
      ++attempts;
      const PeerId candidate = static_cast<PeerId>(rng.next_below(n_nodes));
      if (candidate == i || adj[i].contains(candidate)) continue;
      adj[i].insert(candidate);
      adj[candidate].insert(i);
      ++picked;
    }
  }
  for (PeerId i = 0; i < n_nodes; ++i) {
    peers_[i].assign(adj[i].begin(), adj[i].end());
    std::sort(peers_[i].begin(), peers_[i].end());  // deterministic order
  }
}

void GossipNetwork::set_handler(PeerId node, Handler handler) {
  expects(node < handlers_.size(), "node id out of range");
  handlers_[node] = std::move(handler);
}

void GossipNetwork::set_drop_filter(
    std::function<bool(PeerId, PeerId, const Message&)> f) {
  drop_filter_ = std::move(f);
}

const std::vector<PeerId>& GossipNetwork::peers(PeerId node) const {
  expects(node < peers_.size(), "node id out of range");
  return peers_[node];
}

std::uint64_t GossipNetwork::broadcast(PeerId origin, std::uint32_t type,
                                       std::size_t size_bytes, std::any payload) {
  expects(origin < peers_.size(), "origin id out of range");
  Message msg;
  msg.id = next_message_id_++;
  msg.type = type;
  msg.origin = origin;
  msg.size_bytes = size_bytes;
  msg.flood = true;
  msg.payload = std::move(payload);
  seen_[origin].insert(msg.id);
  relay(origin, msg, /*skip=*/origin);
  return msg.id;
}

void GossipNetwork::send(PeerId from, PeerId to, std::uint32_t type,
                         std::size_t size_bytes, std::any payload) {
  expects(from < peers_.size() && to < peers_.size(), "node id out of range");
  Message msg;
  msg.id = next_message_id_++;
  msg.type = type;
  msg.origin = from;
  msg.size_bytes = size_bytes;
  msg.payload = std::move(payload);
  deliver(from, to, std::move(msg));
}

void GossipNetwork::deliver(PeerId from, PeerId to, Message msg) {
  if (drop_filter_ && drop_filter_(from, to, msg)) return;
  const SimTime arrival = links_.enqueue_send(from, sim_.now(), msg.size_bytes);
  if (obs::Observability* o = sim_.obs()) {
    obs::LinkStat& link = o->counters.link(from, to);
    ++link.messages;
    link.bytes += msg.size_bytes;
    if (o->tracer.enabled()) {
      o->tracer.emit(sim_.now(), "gossip_send",
                     {obs::Field::u64("from", from), obs::Field::u64("to", to),
                      obs::Field::u64("msg", msg.id),
                      obs::Field::u64("type", msg.type),
                      obs::Field::u64("bytes", msg.size_bytes)});
    }
  }
  sim_.schedule_at(arrival, [this, from, to, msg = std::move(msg)]() {
    ++messages_delivered_;
    if (msg.flood) {
      // Flood semantics: first receipt triggers handler + relay.
      if (!seen_[to].insert(msg.id).second) {
        ++duplicates_dropped_;
        if (obs::Observability* o = sim_.obs(); o != nullptr &&
                                                o->tracer.enabled()) {
          o->tracer.emit(sim_.now(), "gossip_dup",
                         {obs::Field::u64("from", from),
                          obs::Field::u64("to", to),
                          obs::Field::u64("msg", msg.id)});
        }
        return;
      }
      if (handlers_[to]) handlers_[to](to, msg);
      relay(to, msg, from);
    } else {
      if (handlers_[to]) handlers_[to](to, msg);
    }
  });
}

void GossipNetwork::relay(PeerId node, const Message& msg, PeerId skip) {
  for (const PeerId peer : peers_[node]) {
    if (peer == skip) continue;
    deliver(node, peer, msg);
  }
}

}  // namespace themis::net
