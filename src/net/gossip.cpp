#include "net/gossip.h"

#include <algorithm>
#include <unordered_set>

#include "obs/observability.h"

namespace themis::net {

GossipNetwork::GossipNetwork(Simulation& sim, LinkConfig link_config,
                             std::size_t n_nodes, std::size_t fanout,
                             std::uint64_t topology_seed)
    : sim_(sim),
      links_(n_nodes, link_config),
      peers_(n_nodes),
      handlers_(n_nodes),
      seen_(n_nodes) {
  expects(n_nodes >= 2, "network needs at least two nodes");
  expects(fanout >= 1, "fanout must be at least 1");

  // Random overlay: each node picks `fanout` distinct peers; edges are made
  // undirected so the graph is connected with overwhelming probability for
  // fanout >= 2 (and we additionally chain i -> i+1 as a connectivity floor).
  Rng rng(topology_seed);
  std::vector<std::unordered_set<PeerId>> adj(n_nodes);
  for (PeerId i = 0; i < n_nodes; ++i) {
    adj[i].insert(static_cast<PeerId>((i + 1) % n_nodes));
    adj[(i + 1) % n_nodes].insert(i);
    std::size_t picked = 0;
    std::size_t attempts = 0;
    while (picked + 1 < fanout && attempts < 16 * fanout) {
      ++attempts;
      const PeerId candidate = static_cast<PeerId>(rng.next_below(n_nodes));
      if (candidate == i || adj[i].contains(candidate)) continue;
      adj[i].insert(candidate);
      adj[candidate].insert(i);
      ++picked;
    }
  }
  for (PeerId i = 0; i < n_nodes; ++i) {
    peers_[i].assign(adj[i].begin(), adj[i].end());
    std::sort(peers_[i].begin(), peers_[i].end());  // deterministic order
  }
}

void GossipNetwork::set_handler(PeerId node, Handler handler) {
  expects(node < handlers_.size(), "node id out of range");
  handlers_[node] = std::move(handler);
}

void GossipNetwork::set_drop_filter(
    std::function<bool(PeerId, PeerId, const Message&)> f) {
  drop_filter_ = std::move(f);
}

const std::vector<PeerId>& GossipNetwork::peers(PeerId node) const {
  expects(node < peers_.size(), "node id out of range");
  return peers_[node];
}

bool GossipNetwork::first_sight(PeerId node, std::uint64_t id) {
  std::vector<std::uint64_t>& bits = seen_[node];
  const std::size_t word = id >> 6;
  if (word >= bits.size()) bits.resize(word + 1, 0);
  const std::uint64_t mask = std::uint64_t{1} << (id & 63);
  if ((bits[word] & mask) != 0) return false;
  bits[word] |= mask;
  return true;
}

std::uint64_t GossipNetwork::broadcast(PeerId origin, std::uint32_t type,
                                       std::size_t size_bytes, std::any payload) {
  expects(origin < peers_.size(), "origin id out of range");
  auto msg = std::make_shared<Message>();
  msg->id = next_message_id_++;
  msg->type = type;
  msg->origin = origin;
  msg->size_bytes = size_bytes;
  msg->flood = true;
  msg->payload = std::move(payload);
  first_sight(origin, msg->id);
  const std::uint64_t id = msg->id;
  relay(origin, std::shared_ptr<const Message>(std::move(msg)),
        /*skip=*/origin);
  return id;
}

void GossipNetwork::send(PeerId from, PeerId to, std::uint32_t type,
                         std::size_t size_bytes, std::any payload) {
  expects(from < peers_.size() && to < peers_.size(), "node id out of range");
  auto msg = std::make_shared<Message>();
  msg->id = next_message_id_++;
  msg->type = type;
  msg->origin = from;
  msg->size_bytes = size_bytes;
  msg->payload = std::move(payload);
  deliver(from, to, std::move(msg));
}

void GossipNetwork::deliver(PeerId from, PeerId to,
                            std::shared_ptr<const Message> msg) {
  if (drop_filter_ && drop_filter_(from, to, *msg)) return;
  const SimTime arrival = links_.enqueue_send(from, sim_.now(), msg->size_bytes);
  if (obs::Observability* o = sim_.obs()) {
    obs::LinkStat& link = o->counters.link(from, to);
    ++link.messages;
    link.bytes += msg->size_bytes;
    if (o->tracer.enabled()) {
      o->tracer.emit(sim_.now(), "gossip_send",
                     {obs::Field::u64("from", from), obs::Field::u64("to", to),
                      obs::Field::u64("msg", msg->id),
                      obs::Field::u64("type", msg->type),
                      obs::Field::u64("bytes", msg->size_bytes)});
    }
  }
  // 32-byte capture (this, endpoints, shared message) — stays inline in the
  // event arena; the whole fanout shares one immutable Message.
  sim_.schedule_at(arrival, [this, from, to, msg = std::move(msg)] {
    arrive(from, to, msg);
  });
}

void GossipNetwork::arrive(PeerId from, PeerId to,
                           const std::shared_ptr<const Message>& msg) {
  ++messages_delivered_;
  if (msg->flood) {
    // Flood semantics: first receipt triggers handler + relay.
    if (!first_sight(to, msg->id)) {
      ++duplicates_dropped_;
      if (obs::Observability* o = sim_.obs();
          o != nullptr && o->tracer.enabled()) {
        o->tracer.emit(sim_.now(), "gossip_dup",
                       {obs::Field::u64("from", from),
                        obs::Field::u64("to", to),
                        obs::Field::u64("msg", msg->id)});
      }
      return;
    }
    if (handlers_[to]) handlers_[to](to, *msg);
    relay(to, msg, from);
  } else {
    if (handlers_[to]) handlers_[to](to, *msg);
  }
}

void GossipNetwork::relay(PeerId node, const std::shared_ptr<const Message>& msg,
                          PeerId skip) {
  for (const PeerId peer : peers_[node]) {
    if (peer == skip) continue;
    deliver(node, peer, msg);
  }
}

}  // namespace themis::net
