// Access-link model.
//
// §VII-A: "the bandwidth of all connections between nodes are set to 20 Mbps
// ... the minimum transmission delay between nodes is 100 ms.  The delay
// varies with the amount of transmitted data."  We model each node's uplink
// as a 20 Mbps serializing queue: concurrent sends from one node queue behind
// each other (this is what makes a PBFT leader's n-fold broadcast expensive),
// and every transfer additionally pays the fixed propagation delay.
// Receiver-side contention is not modeled; sender-side serialization already
// dominates in all the paper's scenarios (the leader bottleneck in PBFT and
// the per-hop relay cost in gossip).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace themis::net {

struct LinkConfig {
  double bandwidth_bps = 20e6;                    ///< 20 Mbps (paper default)
  SimTime min_delay = SimTime::millis(100);       ///< propagation floor
};

class AccessLinkModel {
 public:
  AccessLinkModel(std::size_t n_nodes, LinkConfig config);

  /// Pure transmission (serialization) time for a payload.
  SimTime transmission_time(std::size_t bytes) const;

  /// Reserve the sender's uplink starting no earlier than `now` and return
  /// the arrival time at the receiver.  Updates the uplink's busy horizon.
  SimTime enqueue_send(std::uint32_t sender, SimTime now, std::size_t bytes);

  /// When the sender's uplink becomes idle (>= now means busy until then).
  SimTime uplink_free_at(std::uint32_t sender) const;

  const LinkConfig& config() const { return config_; }
  std::uint64_t total_bytes_sent() const { return total_bytes_sent_; }
  std::uint64_t total_transfers() const { return total_transfers_; }

  /// Reset the busy horizons (fresh experiment on the same topology).
  void reset();

 private:
  LinkConfig config_;
  std::vector<SimTime> uplink_free_;
  std::uint64_t total_bytes_sent_ = 0;
  std::uint64_t total_transfers_ = 0;
};

}  // namespace themis::net
