#include "sim/power_dist.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace themis::sim {

const std::vector<PoolShare>& btc_pool_ranking_jan2022() {
  // 1008 blocks total; top-4 = 596/1008 = 59.13 % (paper: 59.17 %);
  // unknown = 17/1008 = 1.69 % (paper: 1.68 %).
  static const std::vector<PoolShare> ranking = {
      {"FoundryUSA", 180}, {"AntPool", 144},   {"F2Pool", 141},
      {"Poolin", 131},     {"BinancePool", 105}, {"ViaBTC", 100},
      {"SlushPool", 49},   {"BTC.com", 25},    {"EMCD", 20},
      {"SpiderPool", 18},  {"Terra", 17},      {"Titan", 15},
      {"SBICrypto", 11},   {"Luxor", 10},      {"MARAPool", 7},
      {"Ultimus", 6},      {"OKExPool", 5},    {"KuCoinPool", 4},
      {"SoloCK", 3},       {"unknown", 17},
  };
  return ranking;
}

std::vector<double> btc_jan2022_power(std::size_t n_nodes, double h0) {
  expects(h0 > 0, "H_0 must be positive");
  const auto& ranking = btc_pool_ranking_jan2022();
  const std::size_t n_pools = ranking.size() - 1;  // "unknown" is not a pool
  expects(n_nodes > n_pools, "need more nodes than named pools");

  std::vector<double> power;
  power.reserve(n_nodes);
  for (std::size_t i = 0; i < n_pools; ++i) {
    power.push_back(static_cast<double>(ranking[i].blocks) * h0);
  }
  // Independent nodes: the unknown blocks' producers, each at H_0 (§VII-A).
  while (power.size() < n_nodes) power.push_back(h0);
  return power;
}

std::vector<double> uniform_power(std::size_t n_nodes, double h0) {
  expects(h0 > 0, "H_0 must be positive");
  return std::vector<double>(n_nodes, h0);
}

std::vector<double> pareto_power(std::size_t n_nodes, double h0, double alpha,
                                 std::uint64_t seed) {
  expects(h0 > 0 && alpha > 0, "scale and shape must be positive");
  Rng rng(seed);
  std::vector<double> power;
  power.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    // Inverse-CDF sampling: h = h0 / U^(1/alpha).
    const double u = 1.0 - rng.next_double();  // (0, 1]
    power.push_back(h0 / std::pow(u, 1.0 / alpha));
  }
  return power;
}

}  // namespace themis::sim
