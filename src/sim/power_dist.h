// Initial computing-power distributions (§VII-A, Fig. 3).
//
// The paper initializes node computing power from BTC.com's mining-pool
// ranking of Jan 06-12 2022: a pool that mined b_i blocks that week gets
// h_i = b_i * H_0, and the "unknown" blocks are attributed to independent
// nodes with h_i = H_0 each.  The exact per-pool counts are not in the paper
// text; the vector below is a synthetic reconstruction that preserves the two
// aggregates the paper states — the top-4 pools hold ~59.17 % of all blocks
// and unknown/independent producers ~1.68 % — plus the heavy-tail shape of
// that week's public ranking.  (DESIGN.md, substitution table.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace themis::sim {

struct PoolShare {
  std::string name;
  std::uint64_t blocks;  ///< blocks mined in the reference week
};

/// The synthetic Jan 06-12 2022 pool ranking (sums to 1008 blocks, one
/// week at 144 blocks/day; 17 of them "unknown").
const std::vector<PoolShare>& btc_pool_ranking_jan2022();

/// Hash rates for `n_nodes` consensus nodes following Fig. 3: the first
/// nodes take the pool block counts (h = blocks * h0), the rest are
/// independent nodes at h0.  Requires n_nodes > number of pools.
std::vector<double> btc_jan2022_power(std::size_t n_nodes, double h0);

/// Every node at exactly h0 (the post-convergence ideal).
std::vector<double> uniform_power(std::size_t n_nodes, double h0);

/// Pareto-distributed power with shape `alpha` and scale h0 (synthetic
/// heavy-tail generator for sensitivity studies).
std::vector<double> pareto_power(std::size_t n_nodes, double h0, double alpha,
                                 std::uint64_t seed);

}  // namespace themis::sim
