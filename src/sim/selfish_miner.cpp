#include "sim/selfish_miner.h"

#include "common/check.h"
#include "consensus/wire.h"

namespace themis::sim {

using consensus::kBlockAnnounce;
using ledger::Block;
using ledger::BlockHash;
using ledger::BlockPtr;

SelfishMiner::SelfishMiner(net::Simulation& sim, net::GossipNetwork& network,
                           SelfishMinerConfig config,
                           std::shared_ptr<consensus::ForkChoiceRule> rule,
                           std::shared_ptr<consensus::DifficultyPolicy> policy)
    : sim_(sim),
      network_(network),
      config_(config),
      rule_(std::move(rule)),
      policy_(std::move(policy)),
      rng_(config.rng_seed) {
  expects(config_.id < config_.n_nodes, "attacker id out of range");
  expects(rule_ != nullptr && policy_ != nullptr, "rule and policy required");
  public_head_ = public_tree_.genesis_hash();
  private_tip_ = public_head_;
  anchor_ = public_head_;
}

void SelfishMiner::advance_anchor() {
  // Like PowNode: the fork-choice walk starts a fixed depth behind the head
  // so choose_head stays O(finality window) instead of O(chain), and the
  // trees stop maintaining aggregates below it.  The attacker's own branches
  // never reach this depth (it adopts or reveals long before).
  constexpr std::uint64_t kFinalityDepth = 64;
  const std::uint64_t head_height = public_tree_.height(public_head_);
  if (head_height <= kFinalityDepth) return;
  const std::uint64_t target = head_height - kFinalityDepth;
  if (public_tree_.height(anchor_) >= target) return;
  ledger::BlockHash cursor = public_head_;
  while (public_tree_.height(cursor) > target) {
    cursor = *public_tree_.parent(cursor);
  }
  anchor_ = cursor;
  public_tree_.set_aggregate_floor(target);
  full_tree_.set_aggregate_floor(target);
}

void SelfishMiner::start() {
  expects(!started_, "attacker already started");
  started_ = true;
  network_.set_handler(config_.id, [this](net::PeerId, const net::Message& msg) {
    on_message(msg);
  });
  restart_mining();
}

std::int64_t SelfishMiner::lead() const {
  return static_cast<std::int64_t>(full_tree_.height(private_tip_)) -
         static_cast<std::int64_t>(public_tree_.height(public_head_));
}

void SelfishMiner::restart_mining() {
  if (!started_) return;
  if (mining_event_ != 0) sim_.cancel(mining_event_);
  const std::uint64_t generation = ++mining_generation_;
  const double difficulty =
      policy_->difficulty_for(full_tree_, private_tip_, config_.id);
  const SimTime wait =
      consensus::SimMiner::sample_block_time(rng_, config_.hash_rate, difficulty);
  mining_event_ =
      sim_.schedule_after(wait, [this, generation] { on_block_found(generation); });
}

void SelfishMiner::on_block_found(std::uint64_t generation) {
  if (generation != mining_generation_) return;
  mining_event_ = 0;

  ledger::BlockHeader header;
  header.height = full_tree_.height(private_tip_) + 1;
  header.prev = private_tip_;
  header.producer = config_.id;
  header.epoch = policy_->epoch_for(full_tree_, private_tip_);
  header.difficulty = policy_->difficulty_for(full_tree_, private_tip_, config_.id);
  header.timestamp_nanos = sim_.now().count_nanos();
  header.nonce = rng_.next_u64();
  header.tx_count = config_.txs_per_block;

  auto block = std::make_shared<const Block>(header, crypto::Signature{},
                                             std::vector<ledger::Transaction>{});
  ++blocks_mined_;
  full_tree_.insert(block);
  private_tip_ = block->id();
  withheld_.push_back(std::move(block));

  // SM1 state 0' (a tied race is in progress): this block decides the race —
  // publish at once.
  if (racing_) {
    ++race_wins_;
    racing_ = false;
    reveal(withheld_.size());
  }
  restart_mining();
}

void SelfishMiner::on_message(const net::Message& msg) {
  if (msg.type != kBlockAnnounce) return;
  const auto* block = std::any_cast<BlockPtr>(&msg.payload);
  if (block == nullptr || *block == nullptr) return;
  if (public_tree_.contains((*block)->id())) return;
  public_tree_.insert(*block);
  full_tree_.insert(*block);

  const BlockHash new_head = rule_->choose_head(public_tree_, anchor_);
  if (new_head == public_head_) return;
  public_head_ = new_head;
  advance_anchor();
  on_public_head_changed();
}

void SelfishMiner::on_public_head_changed() {
  // SM1 decision table.  `lead()` is evaluated *after* the honest advance,
  // so the classic "lead was k" states appear here as k-1.
  const std::int64_t current_lead = lead();
  if (withheld_.empty()) {
    adopt_public_head();
    return;
  }
  if (current_lead < 0) {
    // The honest chain is strictly ahead: abandon the withheld branch.
    blocks_discarded_ += withheld_.size();
    withheld_.clear();
    adopt_public_head();
  } else if (current_lead == 0) {
    // Lead was 1: publish the tied branch and race (keep mining privately on
    // our own tip; winning the next block decides the race).
    ++races_entered_;
    racing_ = true;
    reveal(withheld_.size());
    restart_mining();
  } else if (current_lead == 1) {
    // Lead was 2: publishing everything overtakes the honest chain outright.
    ++overtakes_;
    racing_ = false;
    reveal(withheld_.size());
    restart_mining();
  } else {
    // Comfortable lead: publish just enough to match the public height and
    // keep the rest hidden.
    const std::uint64_t public_height = public_tree_.height(public_head_);
    std::size_t to_reveal = 0;
    for (const BlockPtr& b : withheld_) {
      if (b->height() <= public_height) ++to_reveal;
    }
    reveal(to_reveal);
  }
}

void SelfishMiner::reveal(std::size_t count) {
  count = std::min(count, withheld_.size());
  for (std::size_t i = 0; i < count; ++i) {
    BlockPtr block = withheld_[i];
    public_tree_.insert(block);
    const std::size_t announce =
        192 + static_cast<std::size_t>(config_.announce_bytes_per_tx *
                                       block->header().tx_count);
    network_.broadcast(config_.id, kBlockAnnounce, announce, std::move(block));
    ++blocks_revealed_;
  }
  withheld_.erase(withheld_.begin(),
                  withheld_.begin() + static_cast<std::ptrdiff_t>(count));
  public_head_ = rule_->choose_head(public_tree_, anchor_);
  advance_anchor();
}

void SelfishMiner::adopt_public_head() {
  private_tip_ = public_head_;
  racing_ = false;
  restart_mining();
}

}  // namespace themis::sim
