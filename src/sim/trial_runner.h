// Parallel multi-trial experiment runner — the fan-out layer every figure
// driver sits on.
//
// Deterministic-seeding contract
// ------------------------------
// Trial t of a sweep point whose config carries base seed S runs with seed
// trial_seed(S, t):
//
//   * trial_seed(S, 0) == S, so a single-trial run reproduces the historical
//     single-seed experiments bit for bit;
//   * for t > 0 the seed is splitmix64-mixed from (S, t), giving an
//     independent stream per trial.
//
// Each trial constructs its own PoxExperiment (its own net::Simulation,
// GossipNetwork and Rng streams — verified free of shared mutable state), so
// per-trial results are bit-identical regardless of thread count or
// scheduling order; --threads only changes wall-clock time.  Results are
// returned indexed by (point, trial), never by completion order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "metrics/fork_stats.h"
#include "sim/experiment.h"

namespace themis::sim {

/// Seed for trial `trial_index` of a sweep point with base seed `base_seed`
/// (see the contract above).
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index);

struct TrialRunnerOptions {
  std::size_t trials = 1;
  std::size_t threads = 1;  ///< 0 = one per hardware thread
  /// Non-owning observability bundle.  The first sweep call that sees an
  /// unclaimed bundle claims it and attaches it to exactly one run — point 0,
  /// trial 0, i.e. the base seed — so observation never races across worker
  /// threads and never perturbs any trial's results.  Later sweeps in the
  /// same driver leave a claimed bundle alone.
  obs::Observability* observability = nullptr;

  std::size_t resolved_threads() const {
    return threads == 0 ? hardware_thread_count() : threads;
  }
};

/// One sweep point: a config plus the run budget and which derived metrics
/// to collect.  `config.seed` is the point's base seed.
struct PoxTrialSpec {
  PoxConfig config;
  std::uint64_t target_height = 0;
  SimTime max_sim_time = SimTime::seconds(1e7);
  /// Measure tail_tps / tail_forks from this height (0 = whole run).
  std::uint64_t tail_from_height = 0;
  /// Collect per-epoch sigma_f^2 / sigma_p^2 series (skip for pure
  /// throughput sweeps: the sigma_p^2 reconstruction walks every epoch
  /// boundary's difficulty table).
  bool collect_variances = true;
};

struct PoxTrialResult {
  std::size_t point = 0;  ///< index into the sweep's spec vector
  std::size_t trial = 0;  ///< trial index within the point
  std::uint64_t seed = 0; ///< derived seed the trial actually ran with
  std::uint64_t delta = 0;
  std::vector<double> frequency_variance;    ///< per full epoch (Eq. 1)
  std::vector<double> probability_variance;  ///< per full epoch (Eq. 2)
  double tps = 0.0;
  double tail_tps = 0.0;           ///< tps_since(tail_from_height)
  metrics::ForkStats forks;        ///< whole run (from height 1)
  metrics::ForkStats tail_forks;   ///< from tail_from_height
  double elapsed_sim_s = 0.0;
};

/// Fan the full (point x trial) cross product over `options.threads`
/// threads.  result[p][t] is trial t of points[p].
std::vector<std::vector<PoxTrialResult>> run_pox_sweep(
    std::span<const PoxTrialSpec> points, const TrialRunnerOptions& options);

/// Single-point convenience: all trials of one spec.
std::vector<PoxTrialResult> run_pox_trials(const PoxTrialSpec& spec,
                                           const TrialRunnerOptions& options);

struct PbftTrialResult {
  std::size_t point = 0;
  std::size_t trial = 0;
  std::uint64_t seed = 0;
  PbftResult result;
};

/// PBFT analogue of run_pox_sweep; scenario.seed is the point's base seed.
std::vector<std::vector<PbftTrialResult>> run_pbft_sweep(
    std::span<const PbftScenario> points, const TrialRunnerOptions& options);

std::vector<PbftTrialResult> run_pbft_trials(const PbftScenario& scenario,
                                             const TrialRunnerOptions& options);

/// Generic runner for custom experiment shapes (e.g. the selfish-mining
/// ablation): runs fn(trial_index, derived_seed) for every trial and returns
/// the results in trial order.  Fn must be callable concurrently from
/// several threads (capture only state it owns or reads immutably).
template <typename Fn>
auto run_trials(std::uint64_t base_seed, const TrialRunnerOptions& options,
                Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}, std::uint64_t{}))> {
  using Result = decltype(fn(std::size_t{}, std::uint64_t{}));
  std::vector<Result> out(options.trials);
  parallel_for_index(options.resolved_threads(), options.trials,
                     [&](std::size_t t) {
                       out[t] = fn(t, trial_seed(base_seed, t));
                     });
  return out;
}

}  // namespace themis::sim
