// A selfish miner (Eyal-Sirer SM1) on the simulated network.
//
// §V-B / Fig. 2 argue that GHOST and GEOST blunt selfish mining relative to
// the longest-chain rule: a withheld chain wins on *length*, but an honest
// subtree keeps its *weight* even when honest blocks fork among themselves.
// This adversary implements the classic strategy so the claim can be
// measured (see bench/ablation_selfish):
//
//   * mine privately on a withheld branch;
//   * when the honest chain catches up to within one block, reveal and race;
//   * when two ahead after an honest block, reveal everything (overtake);
//   * when further ahead, reveal just enough to match the public height.
//
// The attacker occupies a normal consensus-node slot (its blocks must pass
// the §III validation of honest nodes), but never relays honest blocks and
// never mines on an honest tip while it holds a lead.
#pragma once

#include <memory>
#include <vector>

#include "consensus/node.h"

namespace themis::sim {

struct SelfishMinerConfig {
  ledger::NodeId id = 0;          ///< the attacker's consensus-node slot
  std::size_t n_nodes = 0;
  double hash_rate = 1.0;         ///< private mining power (q * honest total)
  std::uint32_t txs_per_block = 0;
  double announce_bytes_per_tx = 32.0;
  std::uint64_t rng_seed = 99;
};

class SelfishMiner {
 public:
  /// `rule` must match the honest nodes' fork choice (the attacker predicts
  /// their head with it); `policy` supplies difficulties for its own chain.
  SelfishMiner(net::Simulation& sim, net::GossipNetwork& network,
               SelfishMinerConfig config,
               std::shared_ptr<consensus::ForkChoiceRule> rule,
               std::shared_ptr<consensus::DifficultyPolicy> policy);

  void start();

  // --- observers ------------------------------------------------------------
  std::uint64_t blocks_mined() const { return blocks_mined_; }
  std::uint64_t races_entered() const { return races_entered_; }
  std::uint64_t race_wins() const { return race_wins_; }
  std::uint64_t overtakes() const { return overtakes_; }
  std::uint64_t blocks_revealed() const { return blocks_revealed_; }
  std::uint64_t blocks_discarded() const { return blocks_discarded_; }
  std::size_t withheld() const { return withheld_.size(); }
  const ledger::BlockTree& public_tree() const { return public_tree_; }

 private:
  void on_message(const net::Message& msg);
  void on_block_found(std::uint64_t generation);
  void on_public_head_changed();
  void reveal(std::size_t count);
  void advance_anchor();
  void adopt_public_head();
  void restart_mining();
  std::int64_t lead() const;

  net::Simulation& sim_;
  net::GossipNetwork& network_;
  SelfishMinerConfig config_;
  std::shared_ptr<consensus::ForkChoiceRule> rule_;
  std::shared_ptr<consensus::DifficultyPolicy> policy_;
  Rng rng_;

  ledger::BlockTree public_tree_;  ///< the network's view
  ledger::BlockTree full_tree_;    ///< network view + withheld branch
  ledger::BlockHash public_head_;
  ledger::BlockHash anchor_;       ///< fork-choice start (trails the head)
  ledger::BlockHash private_tip_;  ///< tip of the withheld branch
  std::vector<ledger::BlockPtr> withheld_;  // oldest first

  bool racing_ = false;  ///< SM1 state 0': a tied branch race is live
  std::uint64_t mining_generation_ = 0;
  net::EventId mining_event_ = 0;
  bool started_ = false;

  std::uint64_t blocks_mined_ = 0;
  std::uint64_t races_entered_ = 0;
  std::uint64_t race_wins_ = 0;
  std::uint64_t overtakes_ = 0;
  std::uint64_t blocks_revealed_ = 0;
  std::uint64_t blocks_discarded_ = 0;
};

}  // namespace themis::sim
