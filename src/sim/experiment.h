// Experiment harness (§VII).
//
// PoxExperiment wires n consensus nodes (Themis, Themis-Lite or PoW-H) onto
// one simulated gossip network, runs the consensus to a target main-chain
// height, and extracts exactly the quantities the paper's figures plot:
// per-epoch σ_f² (Fig. 4, Fig. 9), per-epoch σ_p² (Fig. 5), TPS (Fig. 6-7)
// and fork statistics (Fig. 8).  run_pbft() does the same for the PBFT
// baseline.
#pragma once

#include <memory>
#include <vector>

#include "common/parallel.h"
#include "consensus/node.h"
#include "core/themis_node.h"
#include "metrics/fork_stats.h"
#include "net/gossip.h"
#include "net/simulation.h"
#include "obs/observability.h"
#include "pbft/cluster.h"

namespace themis::sim {

struct PoxConfig {
  core::Algorithm algorithm = core::Algorithm::kThemis;
  std::size_t n_nodes = 100;
  /// Per-node hash rates h_i; empty means btc_jan2022_power(n, h0) (§VII-A).
  std::vector<double> hash_rates;
  double h0 = 1000.0;               ///< H_0, hashes/second
  double beta = 8.0;                ///< Δ = β·n (§VII-D recommends β in [7,11])
  double expected_interval_s = 4.0; ///< I_0
  std::uint32_t txs_per_block = 4096;
  std::size_t fanout = 8;
  net::LinkConfig link{};           ///< 20 Mbps / 100 ms defaults (§VII-A)
  /// Compact block relay (ordering over pre-disseminated transactions).
  double announce_bytes_per_tx = 32.0;
  std::uint64_t finality_depth = 64;
  /// Fraction of nodes whose produced blocks are suppressed (§VII-A attacks).
  double vulnerable_ratio = 0.0;
  std::uint64_t seed = 1;
  // Adaptive-mechanism ablation switches (Themis / Themis-Lite only).
  bool enable_retarget = true;
  bool enforce_multiple_floor = true;
  /// Calibrate D_base^0 to I_0 * (total initial hash rate) — a consortium
  /// launch-time calibration.  Eq. 7's I_0·n·H_0 targets the *converged*
  /// effective power; using it against the raw Fig. 3 distribution makes
  /// epoch 0 produce blocks far faster than the network can propagate them
  /// (see DESIGN.md).  Disable to study that bootstrap regime.
  bool calibrated_start = true;
  /// Worker threads refilling the per-node mining-draw streams (DrawStream)
  /// between events.  1 — the default — draws inline on the event loop;
  /// 0 means one worker per hardware thread.  The drawn values, and thus the
  /// whole run, are bit-identical for every setting (asserted in tests):
  /// threads only decide *when* the buffered draws are computed, the
  /// per-node seeds decide what they are.
  std::size_t draw_threads = 1;
  /// Non-owning observability bundle for this run (attached to the
  /// simulation before any component is built).  Null — the default — means
  /// no tracing, no counters, no profiling; the run is bit-identical either
  /// way.
  obs::Observability* obs = nullptr;
};

class PoxExperiment {
 public:
  explicit PoxExperiment(PoxConfig config);

  /// The epoch length Δ = round(β·n) this config will run with (what the
  /// constructor computes) — lets sweep drivers size height budgets without
  /// building the experiment first.
  static std::uint64_t delta_for(const PoxConfig& config);

  /// Run until the reference node's main chain reaches `height` (or the
  /// simulated-time cap is hit).  May be called repeatedly to extend a run.
  void run_to_height(std::uint64_t height,
                     SimTime max_sim_time = SimTime::seconds(1e7));

  const consensus::PowNode& node(std::size_t i) const { return *nodes_[i]; }
  consensus::PowNode& node(std::size_t i) { return *nodes_[i]; }
  /// Metrics are read from node 0's view of the chain.
  const consensus::PowNode& reference() const { return *nodes_[0]; }
  std::size_t size() const { return nodes_.size(); }

  const PoxConfig& config() const { return config_; }
  std::uint64_t delta() const { return delta_; }
  const std::vector<double>& hash_rates() const { return hash_rates_; }
  SimTime elapsed() const { return sim_.now(); }
  net::Simulation& simulation() { return sim_; }
  net::GossipNetwork& network() { return *network_; }

  /// Producer of every non-genesis main-chain block, in height order.
  std::vector<ledger::NodeId> main_chain_producers() const;

  /// σ_f² per full epoch (Eq. 1 / Fig. 4).
  std::vector<double> per_epoch_frequency_variance() const;

  /// σ_p² per full epoch (Eq. 2 / Fig. 5): probabilities derived from the
  /// true hash rates and the difficulty multiples in force that epoch.
  std::vector<double> per_epoch_probability_variance() const;

  /// Committed transactions per simulated second (txs_per_block * main-chain
  /// growth / elapsed).
  double tps() const;

  /// TPS over the main-chain suffix above `from_height` (block timestamps
  /// define the span) — the converged-regime throughput.
  double tps_since(std::uint64_t from_height) const;

  /// Fork statistics from `from_height` onward (1 = the whole run; pass a
  /// later height to measure only the converged regime).
  metrics::ForkStats fork_stats(std::uint64_t from_height = 1) const;

  /// Fold the run's end state into the attached Observability bundle (no-op
  /// without one): a `chain_block` trace record per final main-chain block, a
  /// `retarget` record per epoch boundary (old/new D_base and the multiple
  /// spread; Themis/Lite only), the block-interval histogram, per-epoch
  /// D_base series, fork-stat and gossip counters.  Call once, after the run.
  void emit_trace_summary();

 private:
  std::size_t resolved_draw_threads() const;
  /// Refill every node's DrawStream that has run low, fanning the refills
  /// across the draw pool.  Runs between events (the event loop is idle), so
  /// each stream is touched by exactly one thread and wait_idle() orders the
  /// refills before the next consumption.
  void prefill_draws();

  PoxConfig config_;
  std::uint64_t delta_;
  std::vector<double> hash_rates_;
  net::Simulation sim_;
  std::unique_ptr<net::GossipNetwork> network_;
  std::vector<std::unique_ptr<consensus::PowNode>> nodes_;
  /// Observer policy for reconstructing per-epoch multiples (Themis/Lite).
  std::unique_ptr<core::AdaptiveDifficulty> observer_policy_;
  /// Lazily-built worker pool for prefill_draws (draw_threads > 1 only).
  std::unique_ptr<TaskPool> draw_pool_;
  std::uint64_t draw_prefills_ = 0;
};

struct PbftScenario {
  std::size_t n_nodes = 100;
  pbft::PbftConfig pbft{};  ///< n_nodes is overwritten from this struct
  net::LinkConfig link{};
  double vulnerable_ratio = 0.0;
  /// Non-owning observability bundle (see PoxConfig::obs).
  obs::Observability* obs = nullptr;
  SimTime duration = SimTime::seconds(600);
  /// Stop early once this many blocks commit (0 = run the full duration, and
  /// TPS is measured over the full duration either way).
  std::uint64_t max_blocks = 0;
  std::uint64_t seed = 1;
};

struct PbftResult {
  double tps = 0.0;
  std::uint64_t committed_blocks = 0;
  std::uint64_t committed_txs = 0;
  std::uint64_t view_changes = 0;
  SimTime elapsed;
  /// Leaders of the committed sequences, in order (for equality metrics).
  std::vector<ledger::NodeId> producers;
};

PbftResult run_pbft(const PbftScenario& scenario);

}  // namespace themis::sim
