#include "sim/trial_runner.h"

#include "common/check.h"
#include "common/rng.h"

namespace themis::sim {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial_index) {
  if (trial_index == 0) return base_seed;
  // splitmix64 over a state derived from (base, index).  The golden-ratio
  // stride keeps neighbouring trial indices far apart in state space; the
  // mix makes the outputs independent streams for xoshiro seeding.
  std::uint64_t state = base_seed ^ (trial_index * 0x9e3779b97f4a7c15ull);
  return splitmix64(state);
}

namespace {

PoxTrialResult run_one_pox_trial(const PoxTrialSpec& spec, std::size_t point,
                                 std::size_t trial, obs::Observability* obs) {
  PoxTrialResult r;
  r.point = point;
  r.trial = trial;
  r.seed = trial_seed(spec.config.seed, trial);

  PoxConfig config = spec.config;
  config.seed = r.seed;
  config.obs = obs;
  PoxExperiment exp(config);
  exp.run_to_height(spec.target_height, spec.max_sim_time);
  if (obs != nullptr) exp.emit_trace_summary();

  r.delta = exp.delta();
  r.tps = exp.tps();
  r.elapsed_sim_s = exp.elapsed().to_seconds();
  r.forks = exp.fork_stats();
  if (spec.tail_from_height > 0) {
    r.tail_tps = exp.tps_since(spec.tail_from_height);
    r.tail_forks = exp.fork_stats(spec.tail_from_height);
  } else {
    r.tail_tps = r.tps;
    r.tail_forks = r.forks;
  }
  if (spec.collect_variances) {
    r.frequency_variance = exp.per_epoch_frequency_variance();
    r.probability_variance = exp.per_epoch_probability_variance();
  }
  return r;
}

}  // namespace

std::vector<std::vector<PoxTrialResult>> run_pox_sweep(
    std::span<const PoxTrialSpec> points, const TrialRunnerOptions& options) {
  expects(options.trials > 0, "need at least one trial");
  for (const PoxTrialSpec& spec : points) {
    expects(spec.target_height > 0, "every sweep point needs a target height");
  }
  std::vector<std::vector<PoxTrialResult>> results(points.size());
  for (auto& per_point : results) per_point.resize(options.trials);

  // Claim the observability bundle (if any) for the base-seed run before
  // fanning out; exactly one worker ever touches it.
  obs::Observability* traced = nullptr;
  if (options.observability != nullptr && !options.observability->claimed) {
    options.observability->claimed = true;
    traced = options.observability;
  }

  const std::size_t total = points.size() * options.trials;
  parallel_for_index(options.resolved_threads(), total, [&](std::size_t flat) {
    const std::size_t point = flat / options.trials;
    const std::size_t trial = flat % options.trials;
    results[point][trial] = run_one_pox_trial(
        points[point], point, trial, flat == 0 ? traced : nullptr);
  });
  return results;
}

std::vector<PoxTrialResult> run_pox_trials(const PoxTrialSpec& spec,
                                           const TrialRunnerOptions& options) {
  auto grouped = run_pox_sweep(std::span(&spec, 1), options);
  return std::move(grouped.front());
}

std::vector<std::vector<PbftTrialResult>> run_pbft_sweep(
    std::span<const PbftScenario> points, const TrialRunnerOptions& options) {
  expects(options.trials > 0, "need at least one trial");
  std::vector<std::vector<PbftTrialResult>> results(points.size());
  for (auto& per_point : results) per_point.resize(options.trials);

  obs::Observability* traced = nullptr;
  if (options.observability != nullptr && !options.observability->claimed) {
    options.observability->claimed = true;
    traced = options.observability;
  }

  const std::size_t total = points.size() * options.trials;
  parallel_for_index(options.resolved_threads(), total, [&](std::size_t flat) {
    const std::size_t point = flat / options.trials;
    const std::size_t trial = flat % options.trials;
    PbftTrialResult r;
    r.point = point;
    r.trial = trial;
    r.seed = trial_seed(points[point].seed, trial);
    PbftScenario scenario = points[point];
    scenario.seed = r.seed;
    scenario.obs = flat == 0 ? traced : nullptr;
    r.result = run_pbft(scenario);
    results[point][trial] = std::move(r);
  });
  return results;
}

std::vector<PbftTrialResult> run_pbft_trials(const PbftScenario& scenario,
                                             const TrialRunnerOptions& options) {
  auto grouped = run_pbft_sweep(std::span(&scenario, 1), options);
  return std::move(grouped.front());
}

}  // namespace themis::sim
