// Checkpoint finality overlay for the discrete-event simulator.
//
// Mirrors the p2p node's finality wiring (src/finality + P2pNode) inside the
// GossipNetwork model so finality latency can be measured at consortium
// sizes (n = 100..400+) no socket testbed reaches: each PowNode gets a
// CheckpointTracker; whenever a node's head crosses a checkpoint height it
// casts a vote (kCkptVote flood, same push-gossip as block announcements),
// and every node independently accumulates votes until the >2/3 quorum
// forms its certificate.
//
// Votes travel unsigned (TrackerConfig::verify_signatures = false): the
// overlay measures propagation and quorum dynamics, not Schnorr throughput —
// micro_crypto and the aggregation tests cover the cryptography.  The vote's
// modeled wire size matches the real encoding so bandwidth numbers carry
// over.
//
// Attach AFTER every PowNode::start(): the overlay interposes on each node's
// installed gossip handler (votes peel off, everything else chains through)
// and claims the PowNode head listener.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "consensus/node.h"
#include "finality/tracker.h"
#include "net/gossip.h"

namespace themis::sim {

struct FinalityOverlayConfig {
  /// Checkpoint interval k (votes at heights k, 2k, ...).
  std::uint64_t interval = 16;
  /// Modeled wire size of one vote: height + block + epoch + voter + sig.
  std::size_t vote_bytes = 120;
};

class FinalityOverlay {
 public:
  FinalityOverlay(net::Simulation& sim, net::GossipNetwork& network,
                  std::vector<consensus::PowNode*> nodes,
                  FinalityOverlayConfig config);

  /// Interpose on gossip handlers and head listeners.  Call after start().
  void attach();

  /// A muted node never casts votes (models a crashed/withholding minority;
  /// it still relays and accumulates other nodes' votes).
  void set_muted(net::PeerId node, bool muted);

  // --- observers -------------------------------------------------------------

  std::uint64_t finalized_height(net::PeerId node) const {
    return states_[node].tracker->finalized_height();
  }
  const finality::CheckpointTracker& tracker(net::PeerId node) const {
    return *states_[node].tracker;
  }

  struct Metrics {
    std::uint64_t votes_cast = 0;       ///< votes originated across all nodes
    std::uint64_t certificates = 0;     ///< certificates formed across all nodes
    std::uint64_t finalized_min = 0;    ///< min finalized height over nodes
    std::uint64_t finalized_max = 0;    ///< max finalized height over nodes
    /// Head-height-minus-checkpoint at the moment each certificate formed
    /// (blocks the head had advanced past the checkpoint by then).
    double mean_lag_blocks = 0.0;
    std::uint64_t max_lag_blocks = 0;
    /// Seconds from a node's head reaching a checkpoint height to that node
    /// forming the checkpoint's certificate.
    double mean_latency_s = 0.0;
    double max_latency_s = 0.0;
    std::uint64_t latency_samples = 0;
  };
  Metrics metrics() const;

 private:
  struct NodeState {
    std::unique_ptr<finality::CheckpointTracker> tracker;
    std::uint64_t last_voted = 0;
    bool muted = false;
    /// Sim time this node's head first reached each checkpoint height.
    std::unordered_map<std::uint64_t, SimTime> reached_at;
    std::vector<double> latencies_s;   ///< per-certificate, this node's view
    std::vector<std::uint64_t> lags;   ///< per-certificate lag in blocks
    std::uint64_t votes_cast = 0;
  };

  void on_head_change(net::PeerId id);
  void on_vote(net::PeerId id, const finality::CheckpointVote& vote);
  /// Shared post-add_vote accounting (quorum => latency/lag samples).
  void record_outcome(net::PeerId id, finality::VoteOutcome outcome,
                      std::uint64_t height);

  net::Simulation& sim_;
  net::GossipNetwork& network_;
  std::vector<consensus::PowNode*> nodes_;
  FinalityOverlayConfig config_;
  mutable std::vector<NodeState> states_;
};

}  // namespace themis::sim
