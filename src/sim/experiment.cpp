#include "sim/experiment.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bytes.h"
#include "common/check.h"
#include "metrics/equality.h"
#include "sim/power_dist.h"

namespace themis::sim {

using consensus::NodeConfig;
using consensus::PowNode;
using core::Algorithm;
using ledger::NodeId;

std::uint64_t PoxExperiment::delta_for(const PoxConfig& config) {
  expects(config.beta > 0, "beta must be positive");
  const auto delta = static_cast<std::uint64_t>(
      std::llround(config.beta * static_cast<double>(config.n_nodes)));
  return std::max<std::uint64_t>(delta, 1);
}

PoxExperiment::PoxExperiment(PoxConfig config) : config_(std::move(config)) {
  expects(config_.n_nodes >= 2, "need at least two nodes");
  expects(config_.algorithm != Algorithm::kPbft,
          "use run_pbft() for the PBFT baseline");
  expects(config_.beta > 0, "beta must be positive");
  expects(config_.vulnerable_ratio >= 0.0 && config_.vulnerable_ratio <= 1.0,
          "vulnerable ratio must lie in [0, 1]");

  delta_ = delta_for(config_);

  // Attach observability before any component exists: nodes and the network
  // cache the pointer at construction.
  if (config_.obs != nullptr) {
    sim_.set_obs(config_.obs);
    config_.obs->tracer.emit(
        sim_.now(), "run_meta",
        {obs::Field::str("algorithm", core::to_string(config_.algorithm)),
         obs::Field::u64("n_nodes", config_.n_nodes),
         obs::Field::u64("delta", delta_),
         obs::Field::u64("seed", config_.seed),
         obs::Field::u64("fanout", config_.fanout),
         obs::Field::f64("expected_interval_s", config_.expected_interval_s)});
  }

  hash_rates_ = config_.hash_rates.empty()
                    ? btc_jan2022_power(config_.n_nodes, config_.h0)
                    : config_.hash_rates;
  expects(hash_rates_.size() == config_.n_nodes,
          "hash rate vector must have one entry per node");

  network_ = std::make_unique<net::GossipNetwork>(
      sim_, config_.link, config_.n_nodes, config_.fanout,
      /*topology_seed=*/config_.seed * 0x9e37u + 1);

  const double total_power =
      std::accumulate(hash_rates_.begin(), hash_rates_.end(), 0.0);

  core::AdaptiveConfig adaptive;
  adaptive.n_nodes = config_.n_nodes;
  adaptive.delta = delta_;
  adaptive.expected_interval_s = config_.expected_interval_s;
  adaptive.h0 = config_.h0;
  adaptive.enable_retarget = config_.enable_retarget;
  adaptive.enforce_multiple_floor = config_.enforce_multiple_floor;
  if (config_.calibrated_start) {
    adaptive.initial_base_difficulty =
        config_.expected_interval_s * total_power;
  }

  nodes_.reserve(config_.n_nodes);
  Rng seeder(config_.seed);
  for (std::size_t i = 0; i < config_.n_nodes; ++i) {
    NodeConfig nc;
    nc.id = static_cast<NodeId>(i);
    nc.n_nodes = config_.n_nodes;
    nc.hash_rate = hash_rates_[i];
    nc.txs_per_block = config_.txs_per_block;
    nc.finality_depth = config_.finality_depth;
    nc.announce_bytes_per_tx = config_.announce_bytes_per_tx;
    nc.rng_seed = seeder.next_u64();

    switch (config_.algorithm) {
      case Algorithm::kThemis:
        nodes_.push_back(core::make_themis_node(sim_, *network_, nc, adaptive));
        break;
      case Algorithm::kThemisLite:
        nodes_.push_back(core::make_themis_lite_node(sim_, *network_, nc, adaptive));
        break;
      case Algorithm::kPowH: {
        // One network-wide difficulty (Fig. 1a: same difficulty, frequency
        // follows power), calibrated so the expected interval is I_0 and
        // retargeted per epoch like Bitcoin.
        core::AdaptiveConfig powh = adaptive;
        powh.initial_base_difficulty =
            config_.expected_interval_s * total_power;
        nodes_.push_back(core::make_powh_node(sim_, *network_, nc, powh));
        break;
      }
      case Algorithm::kPbft:
        break;  // unreachable (checked above)
    }
  }

  if (config_.algorithm != Algorithm::kPowH) {
    observer_policy_ = std::make_unique<core::AdaptiveDifficulty>(adaptive);
  }

  // §VII-A: vulnerable nodes are a fixed fraction of the consensus set whose
  // produced blocks never reach the main chain.  Pick them pseudo-randomly so
  // both pool-scale and independent nodes can be hit.
  const std::size_t n_vulnerable = static_cast<std::size_t>(
      std::llround(config_.vulnerable_ratio * static_cast<double>(config_.n_nodes)));
  std::vector<std::size_t> order(config_.n_nodes);
  std::iota(order.begin(), order.end(), 0);
  Rng shuffler(config_.seed ^ 0xabcdef12345ull);
  shuffler.shuffle(order);
  for (std::size_t i = 0; i < n_vulnerable; ++i) {
    nodes_[order[i]]->set_producer_suppressed(true);
  }

  // Big-bang draw prefill: with workers enabled, compute every node's first
  // buffer of mining draws in parallel before the event loop starts.  The
  // values are the ones the nodes would have drawn inline (see DrawStream),
  // so the run is bit-identical with or without this.
  if (resolved_draw_threads() > 1) prefill_draws();

  for (auto& node : nodes_) node->start();
}

std::size_t PoxExperiment::resolved_draw_threads() const {
  return config_.draw_threads == 0 ? hardware_thread_count()
                                   : config_.draw_threads;
}

void PoxExperiment::prefill_draws() {
  const std::size_t threads = resolved_draw_threads();
  if (draw_pool_ == nullptr) draw_pool_ = std::make_unique<TaskPool>(threads);
  ++draw_prefills_;
  const std::size_t chunk = (nodes_.size() + threads - 1) / threads;
  for (std::size_t begin = 0; begin < nodes_.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, nodes_.size());
    draw_pool_->submit([this, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        DrawStream& draws = nodes_[i]->draws();
        if (draws.low()) draws.refill();
      }
    });
  }
  draw_pool_->wait_idle();
}

void PoxExperiment::run_to_height(std::uint64_t height, SimTime max_sim_time) {
  if (resolved_draw_threads() <= 1) {
    while (reference().head_height() < height && sim_.now() < max_sim_time) {
      if (!sim_.step()) break;
    }
    return;
  }
  // With draw workers: same loop, plus a periodic parallel top-up of any
  // stream that has run low.  The interval is coarse — draws are consumed a
  // couple per node per block, so the streams drain over tens of blocks.
  constexpr std::uint64_t kRefillIntervalEvents = 16384;
  std::uint64_t next_refill = sim_.events_processed() + kRefillIntervalEvents;
  while (reference().head_height() < height && sim_.now() < max_sim_time) {
    if (!sim_.step()) break;
    if (sim_.events_processed() >= next_refill) {
      prefill_draws();
      next_refill = sim_.events_processed() + kRefillIntervalEvents;
    }
  }
}

std::vector<NodeId> PoxExperiment::main_chain_producers() const {
  const auto chain = reference().main_chain();
  std::vector<NodeId> producers;
  producers.reserve(chain.size());
  const ledger::BlockTree& tree = reference().tree();
  for (std::size_t i = 1; i < chain.size(); ++i) {  // skip genesis
    producers.push_back(tree.block(chain[i])->producer());
  }
  return producers;
}

std::vector<double> PoxExperiment::per_epoch_frequency_variance() const {
  const auto producers = main_chain_producers();
  return metrics::per_epoch_frequency_variance(producers, delta_,
                                               config_.n_nodes);
}

std::vector<double> PoxExperiment::per_epoch_probability_variance() const {
  const auto chain = reference().main_chain();
  const std::uint64_t full_epochs = (chain.size() - 1) / delta_;
  std::vector<double> out;
  out.reserve(full_epochs);

  if (config_.algorithm == Algorithm::kPowH) {
    // Fixed difficulty: p_i is the plain power share in every round (Eq. 3
    // with m_i = 1).
    const double v = metrics::probability_variance_from_power(hash_rates_);
    out.assign(full_epochs, v);
    return out;
  }

  // Themis / Themis-Lite: effective power in epoch e is h_i / m_i^e, with
  // the multiples reconstructed from the boundary block the epoch follows.
  const ledger::BlockTree& tree = reference().tree();
  for (std::uint64_t e = 0; e < full_epochs; ++e) {
    const ledger::BlockHash& boundary = chain[e * delta_];  // height e·Δ
    const auto& table = observer_policy_->table_for(tree, boundary);
    std::vector<double> effective(config_.n_nodes);
    for (std::size_t i = 0; i < config_.n_nodes; ++i) {
      effective[i] = hash_rates_[i] / table.multiples[i];
    }
    out.push_back(metrics::probability_variance_from_power(effective));
  }
  return out;
}

double PoxExperiment::tps() const {
  const double seconds = sim_.now().to_seconds();
  if (seconds <= 0) return 0.0;
  const double blocks =
      static_cast<double>(reference().head_height());  // non-genesis blocks
  return blocks * static_cast<double>(config_.txs_per_block) / seconds;
}

double PoxExperiment::tps_since(std::uint64_t from_height) const {
  const auto chain = reference().main_chain();
  if (from_height + 1 >= chain.size()) return 0.0;
  const ledger::BlockTree& tree = reference().tree();
  const double span_s =
      static_cast<double>(
          tree.block(chain.back())->header().timestamp_nanos -
          tree.block(chain[from_height])->header().timestamp_nanos) /
      1e9;
  if (span_s <= 0) return 0.0;
  const double blocks = static_cast<double>(chain.size() - 1 - from_height);
  return blocks * static_cast<double>(config_.txs_per_block) / span_s;
}

metrics::ForkStats PoxExperiment::fork_stats(std::uint64_t from_height) const {
  return metrics::analyze_forks(reference().tree(), reference().head(),
                                from_height);
}

void PoxExperiment::emit_trace_summary() {
  obs::Observability* o = config_.obs;
  if (o == nullptr) return;

  const auto chain = reference().main_chain();
  const ledger::BlockTree& tree = reference().tree();

  // Final main chain (node 0's view): one record per non-genesis block,
  // keyed by the block's own timestamp.  This snapshot is what lets
  // `themis-trace` recompute per-epoch sigma_f^2 exactly.
  obs::Histogram& intervals = o->counters.histogram("chain.block_interval_s");
  std::int64_t prev_ts = 0;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const ledger::Block& block = *tree.block(chain[i]);
    const std::int64_t ts = block.header().timestamp_nanos;
    if (o->tracer.enabled()) {
      o->tracer.emit(SimTime::nanos(ts), "chain_block",
                     {obs::Field::u64("height", block.header().height),
                      obs::Field::u64("producer", block.header().producer),
                      obs::Field::u64("epoch", block.header().epoch),
                      obs::Field::str("hash",
                                      to_hex(ByteSpan(chain[i].data(), 8)))});
    }
    if (i > 1) {
      intervals.record(static_cast<double>(ts - prev_ts) / 1e9);
    }
    prev_ts = ts;
  }

  // Per-epoch difficulty snapshots and retarget records (adaptive variants
  // only — PoW-H has no observer policy here).
  if (observer_policy_ != nullptr && !chain.empty()) {
    std::vector<double>& base_series =
        o->counters.series("difficulty.base_per_epoch");
    std::vector<double>& multiple_spread =
        o->counters.series("difficulty.max_multiple_per_epoch");
    const std::uint64_t full_epochs = (chain.size() - 1) / delta_;
    double prev_base = 0.0;
    for (std::uint64_t e = 0; e <= full_epochs; ++e) {
      const ledger::BlockHash& boundary = chain[e * delta_];
      const auto& table = observer_policy_->table_for(tree, boundary);
      double max_m = 1.0;
      double sum_m = 0.0;
      for (const double m : table.multiples) {
        max_m = std::max(max_m, m);
        sum_m += m;
      }
      const double mean_m =
          table.multiples.empty()
              ? 1.0
              : sum_m / static_cast<double>(table.multiples.size());
      base_series.push_back(table.base_difficulty);
      multiple_spread.push_back(max_m);
      if (e > 0 && o->tracer.enabled()) {
        o->tracer.emit(
            SimTime::nanos(tree.block(boundary)->header().timestamp_nanos),
            "retarget",
            {obs::Field::u64("epoch", e),
             obs::Field::f64("old_base", prev_base),
             obs::Field::f64("new_base", table.base_difficulty),
             obs::Field::f64("mean_multiple", mean_m),
             obs::Field::f64("max_multiple", max_m)});
      }
      prev_base = table.base_difficulty;
    }
  }

  // Run-wide counters: gossip traffic and fork statistics.
  o->counters.counter("gossip.deliveries") = network_->messages_delivered();
  o->counters.counter("gossip.dup_drops") = network_->duplicates_dropped();
  o->counters.counter("gossip.bytes_sent") =
      network_->links().total_bytes_sent();
  o->counters.counter("gossip.transfers") = network_->links().total_transfers();
  const metrics::ForkStats forks = fork_stats();
  o->counters.counter("forks.total_blocks") = forks.total_blocks;
  o->counters.counter("forks.main_chain_blocks") = forks.main_chain_blocks;
  o->counters.counter("forks.stale_blocks") = forks.stale_blocks;
  o->counters.counter("forks.fork_runs") = forks.fork_count;
  o->counters.counter("forks.longest_duration") = forks.longest_fork_duration;
  o->counters.counter("sim.events_processed") = sim_.events_processed();
  const net::CalendarQueue::Stats qs = sim_.queue_stats();
  o->counters.counter("sim.queue_peak_pending") = qs.peak_live;
  o->counters.counter("sim.queue_buckets") = qs.bucket_count;
  o->counters.counter("sim.queue_rebuilds") = qs.rebuilds;
  o->counters.counter("sim.queue_cancelled") = qs.cancelled;
  o->counters.counter("sim.queue_arena_slots") = qs.arena_slots;
  o->counters.counter("sim.queue_direct_searches") = qs.direct_searches;
  o->counters.counter("sim.draw_prefills") = draw_prefills_;
}

PbftResult run_pbft(const PbftScenario& scenario) {
  expects(scenario.n_nodes >= 4, "PBFT needs at least four replicas");
  net::Simulation sim;
  if (scenario.obs != nullptr) {
    sim.set_obs(scenario.obs);
    scenario.obs->tracer.emit(
        sim.now(), "run_meta",
        {obs::Field::str("algorithm", "pbft"),
         obs::Field::u64("n_nodes", scenario.n_nodes),
         obs::Field::u64("seed", scenario.seed)});
  }
  // PBFT uses direct point-to-point sends; the overlay fanout is irrelevant.
  net::GossipNetwork network(sim, scenario.link, scenario.n_nodes,
                             /*fanout=*/2, scenario.seed * 31 + 7);
  pbft::PbftConfig config = scenario.pbft;
  config.n_nodes = scenario.n_nodes;
  pbft::PbftCluster cluster(sim, network, config);

  // Vulnerable replicas are a random subset (§VII-A): a contiguous block of
  // suppressed leaders would escalate the view-change backoff unrealistically.
  const std::size_t n_vulnerable = static_cast<std::size_t>(std::llround(
      scenario.vulnerable_ratio * static_cast<double>(scenario.n_nodes)));
  std::vector<std::size_t> order(scenario.n_nodes);
  std::iota(order.begin(), order.end(), 0);
  Rng shuffler(scenario.seed ^ 0x5eed5eedull);
  shuffler.shuffle(order);
  for (std::size_t i = 0; i < n_vulnerable; ++i) {
    cluster.replica(order[i]).set_suppressed(true);
  }

  cluster.start();
  while (sim.now() < scenario.duration) {
    if (scenario.max_blocks > 0 &&
        cluster.max_committed_seq() >= scenario.max_blocks) {
      break;
    }
    if (!sim.step()) break;
  }

  if (scenario.obs != nullptr) {
    scenario.obs->counters.counter("gossip.deliveries") =
        network.messages_delivered();
    scenario.obs->counters.counter("gossip.dup_drops") =
        network.duplicates_dropped();
    scenario.obs->counters.counter("gossip.bytes_sent") =
        network.links().total_bytes_sent();
    scenario.obs->counters.counter("gossip.transfers") =
        network.links().total_transfers();
    scenario.obs->counters.counter("pbft.view_changes") =
        cluster.total_view_changes();
    scenario.obs->counters.counter("sim.events_processed") =
        sim.events_processed();
  }

  PbftResult result;
  result.elapsed = std::min(sim.now(), scenario.duration);
  result.committed_blocks = cluster.max_committed_seq();
  result.committed_txs = cluster.max_committed_txs();
  result.view_changes = cluster.total_view_changes();
  const double seconds = (scenario.max_blocks > 0 ? result.elapsed
                                                  : scenario.duration)
                             .to_seconds();
  result.tps = seconds > 0
                   ? static_cast<double>(result.committed_txs) / seconds
                   : 0.0;

  // Producer log from the replica that committed the most.
  std::size_t best = 0;
  for (std::size_t i = 1; i < cluster.size(); ++i) {
    if (cluster.replica(i).committed_seq() >
        cluster.replica(best).committed_seq()) {
      best = i;
    }
  }
  for (const auto& [seq, producer] :
       cluster.replica(best).committed_producers()) {
    result.producers.push_back(producer);
  }
  return result;
}

}  // namespace themis::sim
