#include "sim/finality_overlay.h"

#include <any>

#include "common/check.h"
#include "consensus/wire.h"

namespace themis::sim {

FinalityOverlay::FinalityOverlay(net::Simulation& sim,
                                 net::GossipNetwork& network,
                                 std::vector<consensus::PowNode*> nodes,
                                 FinalityOverlayConfig config)
    : sim_(sim),
      network_(network),
      nodes_(std::move(nodes)),
      config_(config) {
  expects(config_.interval > 0, "checkpoint interval must be positive");
  expects(nodes_.size() == network_.n_nodes(),
          "overlay must cover every network node");
  // One-node-one-vote with placeholder keys: signature verification is off
  // in the simulation model, so the 2n point multiplications real key
  // derivation would cost are skipped (membership and weight still apply).
  std::vector<finality::Validator> members;
  members.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    members.push_back(
        {static_cast<ledger::NodeId>(i), crypto::PublicKey{}, 1});
  }
  finality::TrackerConfig tc;
  tc.interval = config_.interval;
  tc.verify_signatures = false;
  states_.resize(nodes_.size());
  for (NodeState& st : states_) {
    st.tracker = std::make_unique<finality::CheckpointTracker>(
        tc, finality::ValidatorSet(members),
        finality::make_backend(finality::ConcatAggregation::kId));
  }
}

void FinalityOverlay::attach() {
  for (net::PeerId i = 0; i < nodes_.size(); ++i) {
    // Chain through the PowNode's installed handler: votes peel off here,
    // block announcements keep flowing to the node untouched.
    net::GossipNetwork::Handler prev = network_.handler(i);
    network_.set_handler(
        i, [this, prev = std::move(prev), i](net::PeerId self,
                                             const net::Message& msg) {
          if (msg.type == consensus::kCkptVote) {
            on_vote(i, std::any_cast<const finality::CheckpointVote&>(
                           msg.payload));
            return;
          }
          if (prev) prev(self, msg);
        });
    nodes_[i]->set_head_listener(
        [this, i](const consensus::PowNode&) { on_head_change(i); });
  }
}

void FinalityOverlay::set_muted(net::PeerId node, bool muted) {
  states_[node].muted = muted;
}

void FinalityOverlay::on_head_change(net::PeerId id) {
  consensus::PowNode& node = *nodes_[id];
  NodeState& st = states_[id];
  const std::uint64_t k = config_.interval;
  const std::uint64_t head_h = node.head_height();
  const std::uint64_t top = (head_h / k) * k;

  // Stamp first-reach times for the latency metric (newest first; stop at
  // the first height already stamped by an earlier head change).
  for (std::uint64_t h = top; h >= k; h -= k) {
    if (!st.reached_at.emplace(h, sim_.now()).second) break;
  }

  if (st.muted) return;
  for (std::uint64_t h = (st.last_voted / k + 1) * k; h <= top; h += k) {
    st.last_voted = h;  // at most one vote per height, ever
    if (h <= st.tracker->finalized_height()) continue;
    // The block at height h on this node's main chain.
    ledger::BlockHash block = node.head();
    for (std::uint64_t cur = head_h; cur > h; --cur) {
      const auto parent = node.tree().parent(block);
      if (!parent.has_value()) break;  // re-rooted tree: height unreachable
      block = *parent;
    }
    if (node.tree().height(block) != h) continue;

    finality::CheckpointVote vote;
    vote.height = h;
    vote.block = block;
    vote.epoch = h / k;
    vote.voter = static_cast<ledger::NodeId>(id);
    // Unsigned by design: verify_signatures is off in the model.
    const finality::VoteOutcome outcome = st.tracker->add_vote(vote);
    ++st.votes_cast;
    record_outcome(id, outcome, h);
    network_.broadcast(id, consensus::kCkptVote, config_.vote_bytes, vote);
  }
}

void FinalityOverlay::on_vote(net::PeerId id,
                              const finality::CheckpointVote& vote) {
  record_outcome(id, states_[id].tracker->add_vote(vote), vote.height);
}

void FinalityOverlay::record_outcome(net::PeerId id,
                                     finality::VoteOutcome outcome,
                                     std::uint64_t height) {
  if (outcome != finality::VoteOutcome::quorum) return;
  NodeState& st = states_[id];
  const std::uint64_t head_h = nodes_[id]->head_height();
  st.lags.push_back(head_h > height ? head_h - height : 0);
  const auto it = st.reached_at.find(height);
  if (it != st.reached_at.end()) {
    st.latencies_s.push_back((sim_.now() - it->second).to_seconds());
  }
}

FinalityOverlay::Metrics FinalityOverlay::metrics() const {
  Metrics m;
  m.finalized_min = UINT64_MAX;
  double lag_sum = 0.0;
  std::uint64_t lag_n = 0;
  double lat_sum = 0.0;
  for (const NodeState& st : states_) {
    m.votes_cast += st.votes_cast;
    m.certificates += st.tracker->stats().certificates_formed;
    m.finalized_min = std::min(m.finalized_min, st.tracker->finalized_height());
    m.finalized_max = std::max(m.finalized_max, st.tracker->finalized_height());
    for (const std::uint64_t lag : st.lags) {
      lag_sum += static_cast<double>(lag);
      m.max_lag_blocks = std::max(m.max_lag_blocks, lag);
      ++lag_n;
    }
    for (const double s : st.latencies_s) {
      lat_sum += s;
      m.max_latency_s = std::max(m.max_latency_s, s);
      ++m.latency_samples;
    }
  }
  if (m.finalized_min == UINT64_MAX) m.finalized_min = 0;
  if (lag_n > 0) m.mean_lag_blocks = lag_sum / static_cast<double>(lag_n);
  if (m.latency_samples > 0) {
    m.mean_latency_s = lat_sum / static_cast<double>(m.latency_samples);
  }
  return m;
}

}  // namespace themis::sim
