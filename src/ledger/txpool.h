// Transaction pool, sharded by sender.
//
// Nodes pick transactions "from the transaction pool upon its preferences"
// (§III) when building a candidate block.  This pool keeps a per-sender
// nonce-ordered chain inside each shard plus a global arrival sequence, so
// the default preference is: senders interleaved by arrival, each sender's
// transactions in nonce order (the only order in which they can apply under
// the strict-nonce ledger rules).  Entries are deduplicated by id and the
// globally oldest entry is dropped once a capacity limit is hit.
//
// Sharding: the sender id hashes to one of kShards shards, each with its own
// mutex.  The hot admission path (add) therefore only contends with other
// writers of the same shard, not with the whole pool; a batch of N
// transactions from N senders inserts on N independent locks.  Whole-pool
// operations (select, ids, eviction, clear) take every shard lock in index
// order — the same global-consistency guarantee the old single-mutex pool
// gave, paid only on the cold paths.
//
// Entries are SignedTransactions: the pool is the hand-off point between the
// client-facing admission path (RPC / p2p relay, which verified the
// signature) and the miner (which only needs the bare transactions), and the
// relay must be able to re-serve the admission credential to peers that
// request the transaction.
//
// Block selection is nonce-aware: select() walks each sender's chain in
// nonce order and merges senders by arrival priority.  "Priority" is arrival
// seq today; a fee market would plug in here by ordering the merge heap on
// fee-per-byte instead (transactions carry no fee field yet — see DESIGN.md
// §11).
//
// Thread-safety: every method locks the shard(s) it touches.  select()'s
// admission predicate runs under all shard locks, so it must not call back
// into the pool (the callers' predicates only touch a caller-owned
// ledger-state scratch view).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/transaction.h"
#include "obs/live/registry.h"  // header-only Counter; no obs link needed

namespace themis::ledger {

class TxPool {
 public:
  explicit TxPool(std::size_t capacity = 1 << 20, std::size_t shards = 16);

  /// Attach live counters bumped on every successful insert / capacity
  /// eviction (wait-free relaxed atomics; null = not tracked).  Install
  /// before concurrent use; the counters must outlive the pool.
  void set_live_counters(obs::live::Counter* added,
                         obs::live::Counter* evicted) {
    added_counter_ = added;
    evicted_counter_ = evicted;
  }

  /// Insert if not already known; returns false for duplicates.
  /// At capacity, the oldest pending transaction is evicted first.
  bool add(SignedTransaction stx);
  /// Convenience for simulation/test paths that never relay: admit a bare
  /// transaction with a zero signature.
  bool add(Transaction tx);

  bool contains(const TxId& id) const;
  std::optional<SignedTransaction> get(const TxId& id) const;
  std::size_t size() const;
  bool empty() const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Peek at up to `max_count` transactions without removing them (used to
  /// build a candidate block; removal happens on confirmation).  Candidates
  /// come out in per-sender nonce order, senders merged by arrival priority.
  /// `admit` filters each candidate — callers pass a predicate that replays
  /// the transaction against a scratch view of the current ledger state, so
  /// no-longer-valid transactions (spent nonces, drained balances) are
  /// skipped.  An empty predicate admits everything.
  std::vector<Transaction> select(
      std::size_t max_count,
      const std::function<bool(const Transaction&)>& admit = {}) const;

  /// Remove every listed id (transactions confirmed in a main-chain block).
  void remove(const std::vector<TxId>& ids);

  /// Drop every transaction matching `stale` (e.g. nonce already consumed on
  /// the new main chain after a head change); returns how many were dropped.
  std::size_t purge(const std::function<bool(const Transaction&)>& stale);

  /// Pending ids in arrival (FIFO) order, capped at `max_count` (pool
  /// announcement to a freshly connected peer).
  std::vector<TxId> ids(std::size_t max_count) const;

  /// Smallest nonce >= `state_next` not already pending from `sender`.
  /// O(sender's chain) — only that sender's shard is locked.
  std::uint64_t next_nonce_hint(NodeId sender, std::uint64_t state_next) const;

  void clear();

 private:
  struct Entry {
    SignedTransaction stx;
    std::uint64_t seq = 0;  // global arrival order
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<TxId, Entry, Hash32Hasher> by_id;
    // Per-sender pending chain in nonce order.  A multimap because two
    // distinct transactions may reuse a nonce (replacement / reorg returns);
    // selection tries each and the ledger predicate rejects the losers.
    std::unordered_map<NodeId, std::multimap<std::uint64_t, TxId>> by_sender;
    // Arrival index: seq -> id, for FIFO merges and oldest-first eviction.
    std::map<std::uint64_t, TxId> by_seq;
  };

  Shard& shard_for(NodeId sender);
  const Shard& shard_for(NodeId sender) const;
  /// Erase one entry from every shard index.  Caller holds the shard's lock.
  void erase_locked(Shard& shard, const TxId& id, const Entry& entry);
  /// Drop the globally oldest entry (locks all shards; caller holds none).
  /// Returns false when the pool is empty.
  bool evict_global_oldest();

  std::size_t capacity_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> size_{0};
  std::vector<Shard> shards_;
  obs::live::Counter* added_counter_ = nullptr;
  obs::live::Counter* evicted_counter_ = nullptr;
};

}  // namespace themis::ledger
