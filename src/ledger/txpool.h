// Transaction pool.
//
// Nodes pick transactions "from the transaction pool upon its preferences"
// (§III) when building a candidate block.  This pool keeps FIFO arrival order
// (the default preference), deduplicates by id, and drops the oldest entries
// once a capacity limit is hit.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ledger/transaction.h"

namespace themis::ledger {

class TxPool {
 public:
  explicit TxPool(std::size_t capacity = 1 << 20);

  /// Insert if not already known; returns false for duplicates.
  /// At capacity, the oldest pending transaction is evicted first.
  bool add(Transaction tx);

  bool contains(const TxId& id) const;
  std::size_t size() const { return order_.size(); }
  bool empty() const { return order_.empty(); }

  /// Peek at up to `max_count` oldest transactions without removing them
  /// (used to build a candidate block; removal happens on finalization).
  std::vector<Transaction> select(std::size_t max_count) const;

  /// Remove every listed id (transactions confirmed in a main-chain block).
  void remove(const std::vector<TxId>& ids);

  void clear();

 private:
  void evict_oldest();

  std::size_t capacity_;
  std::deque<TxId> order_;  // FIFO ordering of pending ids
  std::unordered_map<TxId, Transaction, Hash32Hasher> by_id_;
};

}  // namespace themis::ledger
