// Transaction pool.
//
// Nodes pick transactions "from the transaction pool upon its preferences"
// (§III) when building a candidate block.  This pool keeps FIFO arrival order
// (the default preference), deduplicates by id, and drops the oldest entries
// once a capacity limit is hit.
//
// Entries are SignedTransactions: the pool is the hand-off point between the
// client-facing admission path (RPC / p2p relay, which verified the
// signature) and the miner (which only needs the bare transactions), and the
// relay must be able to re-serve the admission credential to peers that
// request the transaction.
//
// Thread-safety: every method takes an internal mutex — RPC worker threads,
// p2p reader threads, the miner thread and head-change reconciliation all
// touch the pool concurrently.  select()'s admission predicate runs under the
// pool lock, so it must not call back into the pool (the callers' predicates
// only touch a caller-owned ledger-state scratch copy).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/transaction.h"

namespace themis::ledger {

class TxPool {
 public:
  explicit TxPool(std::size_t capacity = 1 << 20);

  /// Insert if not already known; returns false for duplicates.
  /// At capacity, the oldest pending transaction is evicted first.
  bool add(SignedTransaction stx);
  /// Convenience for simulation/test paths that never relay: admit a bare
  /// transaction with a zero signature.
  bool add(Transaction tx);

  bool contains(const TxId& id) const;
  std::optional<SignedTransaction> get(const TxId& id) const;
  std::size_t size() const;
  bool empty() const;

  /// Peek at up to `max_count` oldest transactions without removing them
  /// (used to build a candidate block; removal happens on confirmation).
  /// `admit` filters each candidate in FIFO order — callers pass a predicate
  /// that replays the transaction against a scratch copy of the current
  /// ledger state, so no-longer-valid transactions (spent nonces, drained
  /// balances) are skipped instead of blindly returning the FIFO prefix.
  /// An empty predicate admits everything (the historical behaviour).
  std::vector<Transaction> select(
      std::size_t max_count,
      const std::function<bool(const Transaction&)>& admit = {}) const;

  /// Remove every listed id (transactions confirmed in a main-chain block).
  void remove(const std::vector<TxId>& ids);

  /// Drop every transaction matching `stale` (e.g. nonce already consumed on
  /// the new main chain after a head change); returns how many were dropped.
  std::size_t purge(const std::function<bool(const Transaction&)>& stale);

  /// Pending ids in FIFO order, capped at `max_count` (pool announcement to
  /// a freshly connected peer).
  std::vector<TxId> ids(std::size_t max_count) const;

  /// Smallest nonce >= `state_next` not already pending from `sender` (RPC
  /// auto-nonce convenience; O(pool) scan, intended for interactive use).
  std::uint64_t next_nonce_hint(NodeId sender, std::uint64_t state_next) const;

  void clear();

 private:
  void evict_oldest_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<TxId> order_;  // FIFO ordering of pending ids
  std::unordered_map<TxId, SignedTransaction, Hash32Hasher> by_id_;
};

}  // namespace themis::ledger
