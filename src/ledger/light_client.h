// Light client: header-only chain sync with SPV-style inclusion proofs.
//
// Trend-1 of the paper (§I) is consortium chains opening up to outside
// users, who need to *query* data without running a consensus node.  A
// HeaderChain tracks block headers only, checks linkage and proof-of-work,
// follows the most-work chain among the tips it has seen, and verifies
// transaction inclusion against a header's merkle commitment.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/merkle.h"
#include "ledger/block.h"

namespace themis::ledger {

class HeaderChain {
 public:
  enum class AcceptResult {
    accepted,
    duplicate,
    unknown_parent,
    bad_height,
    bad_pow,
  };

  HeaderChain();

  /// Validate and store a header.  PoW is checked against the header's
  /// declared difficulty; a full node (or the difficulty table) vouches for
  /// the declared value itself — light clients accept the consortium's
  /// signed checkpoints in practice (see set_difficulty_floor).
  AcceptResult submit(const BlockHeader& header);

  /// Reject headers claiming less than this difficulty (anti-spam floor).
  void set_difficulty_floor(double floor) { difficulty_floor_ = floor; }

  bool contains(const BlockHash& id) const { return headers_.contains(id); }
  std::optional<BlockHeader> header(const BlockHash& id) const;
  std::size_t size() const { return headers_.size(); }

  /// Tip of the most-work chain (sum of difficulties; receipt order breaks
  /// ties deterministically).
  const BlockHash& best_tip() const { return best_tip_; }
  std::uint64_t best_height() const;
  double best_total_work() const { return entry_at(best_tip_).total_work; }

  /// Headers from genesis to the best tip (inclusive).
  std::vector<BlockHash> best_chain() const;

  /// SPV check: does `txid` live in block `id` according to `proof`?
  bool verify_inclusion(const BlockHash& id, const TxId& txid,
                        const crypto::MerkleProof& proof) const;

  /// Generic commitment check: does `leaf` live under `root` according to
  /// `proof`?  Used by the authenticated-state layer to verify account
  /// inclusion proofs against a head state root (the state root travels
  /// alongside the header, so light verifiers need no full node).
  static bool verify_commitment(const Hash32& leaf,
                                const crypto::MerkleProof& proof,
                                const Hash32& root);

 private:
  struct Entry {
    BlockHeader header;
    double total_work = 0;
  };

  const Entry& entry_at(const BlockHash& id) const;

  std::unordered_map<BlockHash, Entry, Hash32Hasher> headers_;
  BlockHash genesis_hash_{};
  BlockHash best_tip_{};
  double difficulty_floor_ = 1.0;
};

}  // namespace themis::ledger
