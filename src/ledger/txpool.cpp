#include "ledger/txpool.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace themis::ledger {

namespace {

/// Lock every shard mutex in index order (the pool-wide lock hierarchy).
template <typename Shards>
std::vector<std::unique_lock<std::mutex>> lock_all(Shards& shards) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards.size());
  for (auto& shard : shards) locks.emplace_back(shard.mu);
  return locks;
}

}  // namespace

TxPool::TxPool(std::size_t capacity, std::size_t shards)
    : capacity_(capacity), shards_(std::max<std::size_t>(shards, 1)) {
  expects(capacity > 0, "pool capacity must be positive");
}

TxPool::Shard& TxPool::shard_for(NodeId sender) {
  // Multiplicative hash: consortium node ids are sequential, so raw modulo
  // would stripe "neighbouring" senders onto the same shard under small
  // shard counts.
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(sender) * 0x9E3779B97F4A7C15ull;
  return shards_[mixed % shards_.size()];
}

const TxPool::Shard& TxPool::shard_for(NodeId sender) const {
  return const_cast<TxPool*>(this)->shard_for(sender);
}

bool TxPool::add(SignedTransaction stx) {
  const TxId id = stx.tx.id();
  const NodeId sender = stx.tx.sender();
  Shard& shard = shard_for(sender);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.by_id.contains(id)) return false;
  }
  // Evict before inserting so the pool never exceeds capacity.  Eviction
  // takes all shard locks, so it must run while we hold none.
  while (size_.load(std::memory_order_relaxed) >= capacity_) {
    if (!evict_global_oldest()) break;
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.by_id.contains(id)) return false;  // re-check after re-lock
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t nonce = stx.tx.nonce();
  shard.by_id.emplace(id, Entry{std::move(stx), seq});
  shard.by_sender[sender].emplace(nonce, id);
  shard.by_seq.emplace(seq, id);
  size_.fetch_add(1, std::memory_order_relaxed);
  if (added_counter_ != nullptr) added_counter_->inc();
  return true;
}

bool TxPool::add(Transaction tx) {
  SignedTransaction stx;
  stx.tx = std::move(tx);
  return add(std::move(stx));
}

bool TxPool::contains(const TxId& id) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.by_id.contains(id)) return true;
  }
  return false;
}

std::optional<SignedTransaction> TxPool::get(const TxId& id) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.by_id.find(id);
    if (it != shard.by_id.end()) return it->second.stx;
  }
  return std::nullopt;
}

std::size_t TxPool::size() const {
  return size_.load(std::memory_order_relaxed);
}

bool TxPool::empty() const { return size() == 0; }

std::vector<Transaction> TxPool::select(
    std::size_t max_count,
    const std::function<bool(const Transaction&)>& admit) const {
  const auto locks = lock_all(shards_);

  // One cursor per sender chain, heap-ordered by the arrival seq of the
  // chain's current head: senders interleave by arrival, but each sender's
  // transactions surface in nonce order so the ledger's strict-nonce rule can
  // actually admit them back-to-back.
  struct Cursor {
    std::multimap<std::uint64_t, TxId>::const_iterator it;
    std::multimap<std::uint64_t, TxId>::const_iterator end;
    const Shard* shard;
  };
  std::vector<Cursor> cursors;
  for (const Shard& shard : shards_) {
    for (const auto& [sender, chain] : shard.by_sender) {
      if (!chain.empty()) {
        cursors.push_back(Cursor{chain.begin(), chain.end(), &shard});
      }
    }
  }

  const auto seq_of = [](const Cursor& c) {
    return c.shard->by_id.at(c.it->second).seq;
  };
  // Min-heap of cursor indices by head seq ("priority"); a fee market would
  // replace seq_of with a fee-per-byte key.
  const auto heap_cmp = [&](std::size_t a, std::size_t b) {
    return seq_of(cursors[a]) > seq_of(cursors[b]);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(heap_cmp)>
      heap(heap_cmp);
  for (std::size_t i = 0; i < cursors.size(); ++i) heap.push(i);

  std::vector<Transaction> out;
  out.reserve(std::min(max_count, size()));
  while (!heap.empty() && out.size() < max_count) {
    const std::size_t idx = heap.top();
    heap.pop();
    Cursor& cur = cursors[idx];
    const Transaction& tx = cur.shard->by_id.at(cur.it->second).stx.tx;
    if (!admit || admit(tx)) out.push_back(tx);
    ++cur.it;
    if (cur.it != cur.end) heap.push(idx);
  }
  return out;
}

void TxPool::remove(const std::vector<TxId>& ids) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const TxId& id : ids) {
      const auto it = shard.by_id.find(id);
      if (it == shard.by_id.end()) continue;
      erase_locked(shard, id, it->second);
    }
  }
}

std::size_t TxPool::purge(
    const std::function<bool(const Transaction&)>& stale) {
  std::size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<TxId> doomed;
    for (const auto& [id, entry] : shard.by_id) {
      if (stale(entry.stx.tx)) doomed.push_back(id);
    }
    for (const TxId& id : doomed) {
      erase_locked(shard, id, shard.by_id.at(id));
      ++dropped;
    }
  }
  return dropped;
}

std::vector<TxId> TxPool::ids(std::size_t max_count) const {
  const auto locks = lock_all(shards_);
  // K-way merge of the per-shard arrival indexes.
  struct Cursor {
    std::map<std::uint64_t, TxId>::const_iterator it;
    std::map<std::uint64_t, TxId>::const_iterator end;
  };
  std::vector<Cursor> cursors;
  for (const Shard& shard : shards_) {
    if (!shard.by_seq.empty()) {
      cursors.push_back(Cursor{shard.by_seq.begin(), shard.by_seq.end()});
    }
  }
  std::vector<TxId> out;
  out.reserve(std::min(max_count, size()));
  while (out.size() < max_count) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.it == c.end) continue;
      if (best == nullptr || c.it->first < best->it->first) best = &c;
    }
    if (best == nullptr) break;
    out.push_back(best->it->second);
    ++best->it;
  }
  return out;
}

std::uint64_t TxPool::next_nonce_hint(NodeId sender,
                                      std::uint64_t state_next) const {
  const Shard& shard = shard_for(sender);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto chain_it = shard.by_sender.find(sender);
  std::uint64_t next = state_next;
  if (chain_it == shard.by_sender.end()) return next;
  // The chain is nonce-sorted: walk it from state_next, skipping pending
  // nonces until the first gap.
  for (auto it = chain_it->second.lower_bound(state_next);
       it != chain_it->second.end(); ++it) {
    if (it->first == next) {
      ++next;
    } else if (it->first > next) {
      break;  // gap found
    }
  }
  return next;
}

void TxPool::clear() {
  const auto locks = lock_all(shards_);
  for (Shard& shard : shards_) {
    shard.by_id.clear();
    shard.by_sender.clear();
    shard.by_seq.clear();
  }
  size_.store(0, std::memory_order_relaxed);
}

void TxPool::erase_locked(Shard& shard, const TxId& id, const Entry& entry) {
  const NodeId sender = entry.stx.tx.sender();
  const std::uint64_t nonce = entry.stx.tx.nonce();
  const std::uint64_t seq = entry.seq;
  const auto chain_it = shard.by_sender.find(sender);
  if (chain_it != shard.by_sender.end()) {
    auto [lo, hi] = chain_it->second.equal_range(nonce);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        chain_it->second.erase(it);
        break;
      }
    }
    if (chain_it->second.empty()) shard.by_sender.erase(chain_it);
  }
  shard.by_seq.erase(seq);
  shard.by_id.erase(id);
  size_.fetch_sub(1, std::memory_order_relaxed);
}

bool TxPool::evict_global_oldest() {
  const auto locks = lock_all(shards_);
  Shard* oldest_shard = nullptr;
  std::uint64_t oldest_seq = 0;
  for (Shard& shard : shards_) {
    if (shard.by_seq.empty()) continue;
    const std::uint64_t head = shard.by_seq.begin()->first;
    if (oldest_shard == nullptr || head < oldest_seq) {
      oldest_shard = &shard;
      oldest_seq = head;
    }
  }
  if (oldest_shard == nullptr) return false;
  const TxId id = oldest_shard->by_seq.begin()->second;
  erase_locked(*oldest_shard, id, oldest_shard->by_id.at(id));
  if (evicted_counter_ != nullptr) evicted_counter_->inc();
  return true;
}

}  // namespace themis::ledger
