#include "ledger/txpool.h"

#include <algorithm>

#include "common/check.h"

namespace themis::ledger {

TxPool::TxPool(std::size_t capacity) : capacity_(capacity) {
  expects(capacity > 0, "pool capacity must be positive");
}

bool TxPool::add(Transaction tx) {
  const TxId id = tx.id();
  if (by_id_.contains(id)) return false;
  while (order_.size() >= capacity_) evict_oldest();
  order_.push_back(id);
  by_id_.emplace(id, std::move(tx));
  return true;
}

bool TxPool::contains(const TxId& id) const { return by_id_.contains(id); }

std::vector<Transaction> TxPool::select(std::size_t max_count) const {
  std::vector<Transaction> out;
  out.reserve(std::min(max_count, order_.size()));
  for (const TxId& id : order_) {
    if (out.size() >= max_count) break;
    const auto it = by_id_.find(id);
    if (it != by_id_.end()) out.push_back(it->second);
  }
  return out;
}

void TxPool::remove(const std::vector<TxId>& ids) {
  for (const TxId& id : ids) by_id_.erase(id);
  // Lazily compact the FIFO index.
  std::erase_if(order_, [this](const TxId& id) { return !by_id_.contains(id); });
}

void TxPool::clear() {
  order_.clear();
  by_id_.clear();
}

void TxPool::evict_oldest() {
  if (order_.empty()) return;
  by_id_.erase(order_.front());
  order_.pop_front();
}

}  // namespace themis::ledger
