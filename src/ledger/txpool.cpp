#include "ledger/txpool.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace themis::ledger {

TxPool::TxPool(std::size_t capacity) : capacity_(capacity) {
  expects(capacity > 0, "pool capacity must be positive");
}

bool TxPool::add(SignedTransaction stx) {
  const TxId id = stx.tx.id();
  std::lock_guard<std::mutex> lock(mu_);
  if (by_id_.contains(id)) return false;
  while (order_.size() >= capacity_) evict_oldest_locked();
  order_.push_back(id);
  by_id_.emplace(id, std::move(stx));
  return true;
}

bool TxPool::add(Transaction tx) {
  SignedTransaction stx;
  stx.tx = std::move(tx);
  return add(std::move(stx));
}

bool TxPool::contains(const TxId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.contains(id);
}

std::optional<SignedTransaction> TxPool::get(const TxId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

std::size_t TxPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_.size();
}

bool TxPool::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_.empty();
}

std::vector<Transaction> TxPool::select(
    std::size_t max_count,
    const std::function<bool(const Transaction&)>& admit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Transaction> out;
  out.reserve(std::min(max_count, order_.size()));
  for (const TxId& id : order_) {
    if (out.size() >= max_count) break;
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;
    if (admit && !admit(it->second.tx)) continue;
    out.push_back(it->second.tx);
  }
  return out;
}

void TxPool::remove(const std::vector<TxId>& ids) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TxId& id : ids) by_id_.erase(id);
  // Lazily compact the FIFO index.
  std::erase_if(order_, [this](const TxId& id) { return !by_id_.contains(id); });
}

std::size_t TxPool::purge(
    const std::function<bool(const Transaction&)>& stale) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  for (auto it = by_id_.begin(); it != by_id_.end();) {
    if (stale(it->second.tx)) {
      it = by_id_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    std::erase_if(order_,
                  [this](const TxId& id) { return !by_id_.contains(id); });
  }
  return dropped;
}

std::vector<TxId> TxPool::ids(std::size_t max_count) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxId> out;
  out.reserve(std::min(max_count, order_.size()));
  for (const TxId& id : order_) {
    if (out.size() >= max_count) break;
    out.push_back(id);
  }
  return out;
}

std::uint64_t TxPool::next_nonce_hint(NodeId sender,
                                      std::uint64_t state_next) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<std::uint64_t> pending;
  for (const auto& [id, stx] : by_id_) {
    if (stx.tx.sender() == sender) pending.insert(stx.tx.nonce());
  }
  std::uint64_t next = state_next;
  while (pending.contains(next)) ++next;
  return next;
}

void TxPool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  by_id_.clear();
}

void TxPool::evict_oldest_locked() {
  if (order_.empty()) return;
  by_id_.erase(order_.front());
  order_.pop_front();
}

}  // namespace themis::ledger
