#include "ledger/validation.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace themis::ledger {

std::string_view to_string(BlockCheck check) {
  switch (check) {
    case BlockCheck::ok: return "ok";
    case BlockCheck::unknown_producer: return "unknown_producer";
    case BlockCheck::bad_signature: return "bad_signature";
    case BlockCheck::wrong_difficulty: return "wrong_difficulty";
    case BlockCheck::pow_not_satisfied: return "pow_not_satisfied";
    case BlockCheck::bad_merkle_root: return "bad_merkle_root";
    case BlockCheck::bad_transaction: return "bad_transaction";
    case BlockCheck::bad_height: return "bad_height";
  }
  return "unknown";
}

bool validate_transaction(const Transaction& tx) {
  return tx.payload().size() <= max_tx_payload();
}

BlockCheck validate_block(const Block& block, const ValidationContext& ctx) {
  const BlockHeader& header = block.header();

  // 1. Membership + signature (§III: "verifies whether the block header
  //    signature belongs to the node in the consensus node set").
  std::optional<crypto::PublicKey> pub;
  if (ctx.public_key) {
    pub = ctx.public_key(header.producer);
    if (!pub.has_value()) return BlockCheck::unknown_producer;
  }
  if (ctx.check_signature) {
    expects(pub.has_value(), "signature check requires a key registry");
    if (!crypto::verify(*pub, header.hash(), block.signature())) {
      return BlockCheck::bad_signature;
    }
  }

  // 2. Difficulty table agreement + proof of work (§III: "checks whether the
  //    difficulty and the hash value of the block header are correct
  //    according to the latest difficulty table in its local storage").
  if (ctx.expected_difficulty) {
    const std::optional<double> expected =
        ctx.expected_difficulty(header.producer, header.prev);
    // Difficulties are derived from identical integer block counts via the
    // same arithmetic on every node, so exact equality is the contract.
    if (!expected.has_value() || *expected != header.difficulty) {
      return BlockCheck::wrong_difficulty;
    }
  }
  if (ctx.check_pow) {
    if (!std::isfinite(header.difficulty) || header.difficulty < 1.0) {
      return BlockCheck::wrong_difficulty;
    }
    const UInt256 target = target_for_difficulty(header.difficulty);
    if (!satisfies_target(block.id(), target)) {
      return BlockCheck::pow_not_satisfied;
    }
  }

  // 3. Structural checks: height continuity and the transaction commitment.
  if (ctx.parent_height) {
    const std::optional<std::uint64_t> parent_h = ctx.parent_height(header.prev);
    if (parent_h.has_value() && header.height != *parent_h + 1) {
      return BlockCheck::bad_height;
    }
  }
  if (ctx.check_body) {
    if (header.tx_count != block.transactions().size()) {
      return BlockCheck::bad_transaction;
    }
    if (block.compute_merkle_root() != header.merkle_root) {
      return BlockCheck::bad_merkle_root;
    }

    // 4. Transaction validity (§III: "checks the validity of the transactions
    //    in the block"), including duplicate detection within the block.
    std::unordered_set<TxId, Hash32Hasher> seen;
    for (const Transaction& tx : block.transactions()) {
      if (!validate_transaction(tx)) return BlockCheck::bad_transaction;
      if (!seen.insert(tx.id()).second) return BlockCheck::bad_transaction;
    }
  }
  return BlockCheck::ok;
}

}  // namespace themis::ledger
