#include "ledger/transaction.h"

#include "common/check.h"
#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::ledger {

namespace {
// Fixed header: sender(4) + nonce(8) + timestamp(8) + payload length(4).
constexpr std::size_t kTxHeaderSize = 4 + 8 + 8 + 4;
}  // namespace

std::size_t max_tx_payload() { return kCanonicalTxSize - kTxHeaderSize; }

Transaction::Transaction(NodeId sender, std::uint64_t nonce,
                         std::int64_t timestamp_nanos, Bytes payload)
    : sender_(sender),
      nonce_(nonce),
      timestamp_nanos_(timestamp_nanos),
      payload_(std::move(payload)) {
  expects(payload_.size() <= max_tx_payload(),
          "transaction payload exceeds canonical capacity");
}

const TxId& Transaction::id() const {
  if (!id_cached_) {
    id_ = crypto::sha256d(encode());
    id_cached_ = true;
  }
  return id_;
}

Bytes Transaction::encode() const {
  Writer w(kCanonicalTxSize);
  w.u32(sender_);
  w.u64(nonce_);
  w.i64(timestamp_nanos_);
  w.u32(static_cast<std::uint32_t>(payload_.size()));
  w.raw(payload_);
  Bytes out = w.take();
  out.resize(kCanonicalTxSize, 0);  // zero-pad to the canonical size
  return out;
}

Bytes SignedTransaction::encode() const {
  Bytes out = tx.encode();
  const Bytes sig = signature.to_bytes();
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

SignedTransaction SignedTransaction::decode(ByteSpan raw) {
  if (raw.size() != kSignedTxSize) {
    throw DecodeError("signed transaction must be exactly 576 bytes");
  }
  SignedTransaction stx;
  stx.tx = Transaction::decode(raw.subspan(0, kCanonicalTxSize));
  const auto sig = crypto::Signature::from_bytes(raw.subspan(kCanonicalTxSize));
  if (!sig.has_value()) throw DecodeError("malformed transaction signature");
  stx.signature = *sig;
  return stx;
}

bool SignedTransaction::verify(const crypto::PublicKey& sender_key) const {
  return crypto::verify(sender_key, tx.id(), signature);
}

SignedTransaction sign_transaction(Transaction tx) {
  SignedTransaction stx;
  stx.signature = crypto::Keypair::from_node_id(tx.sender()).sign(tx.id());
  stx.tx = std::move(tx);
  return stx;
}

Transaction Transaction::decode(ByteSpan raw) {
  if (raw.size() != kCanonicalTxSize) {
    throw DecodeError("transaction must be exactly 512 bytes");
  }
  Reader r(raw);
  Transaction tx;
  tx.sender_ = r.u32();
  tx.nonce_ = r.u64();
  tx.timestamp_nanos_ = r.i64();
  const std::uint32_t payload_len = r.u32();
  if (payload_len > max_tx_payload()) {
    throw DecodeError("transaction payload length field out of range");
  }
  tx.payload_ = r.raw(payload_len);
  // The remainder must be zero padding.
  const Bytes padding = r.raw(r.remaining());
  for (std::uint8_t b : padding) {
    if (b != 0) throw DecodeError("non-zero transaction padding");
  }
  return tx;
}

}  // namespace themis::ledger
