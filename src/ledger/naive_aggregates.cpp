#include "ledger/naive_aggregates.h"

#include <algorithm>

#include "common/stats.h"

namespace themis::ledger {

std::uint64_t NaiveTreeAggregates::subtree_size(const BlockTree& tree,
                                                const BlockHash& id) {
  std::uint64_t count = 0;
  std::vector<BlockHash> stack{id};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    ++count;
    for (const BlockHash& child : tree.children(cur)) stack.push_back(child);
  }
  return count;
}

std::uint64_t NaiveTreeAggregates::subtree_max_height(const BlockTree& tree,
                                                      const BlockHash& id) {
  std::uint64_t best = tree.height(id);
  std::vector<BlockHash> stack{id};
  while (!stack.empty()) {
    const BlockHash cur = stack.back();
    stack.pop_back();
    best = std::max(best, tree.height(cur));
    for (const BlockHash& child : tree.children(cur)) stack.push_back(child);
  }
  return best;
}

std::vector<std::uint64_t> NaiveTreeAggregates::subtree_producer_counts(
    const BlockTree& tree, const BlockHash& id, std::size_t n_nodes) {
  std::vector<std::uint64_t> counts;
  std::vector<BlockHash> scratch;
  subtree_producer_counts(tree, id, n_nodes, counts, scratch);
  return counts;
}

void NaiveTreeAggregates::subtree_producer_counts(
    const BlockTree& tree, const BlockHash& id, std::size_t n_nodes,
    std::vector<std::uint64_t>& out, std::vector<BlockHash>& scratch) {
  out.assign(n_nodes, 0);
  scratch.clear();
  scratch.push_back(id);
  while (!scratch.empty()) {
    const BlockHash cur = scratch.back();
    scratch.pop_back();
    const NodeId producer = tree.block(cur)->producer();
    if (producer < n_nodes) ++out[producer];
    for (const BlockHash& child : tree.children(cur)) scratch.push_back(child);
  }
}

double NaiveTreeAggregates::subtree_equality_variance(const BlockTree& tree,
                                                      const BlockHash& id,
                                                      std::size_t n_nodes) {
  std::vector<std::uint64_t> counts;
  std::vector<BlockHash> scratch;
  return subtree_equality_variance(tree, id, n_nodes, counts, scratch);
}

double NaiveTreeAggregates::subtree_equality_variance(
    const BlockTree& tree, const BlockHash& id, std::size_t n_nodes,
    std::vector<std::uint64_t>& counts, std::vector<BlockHash>& scratch) {
  subtree_producer_counts(tree, id, n_nodes, counts, scratch);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  return frequency_variance_noalloc(counts, static_cast<double>(total));
}

}  // namespace themis::ledger
