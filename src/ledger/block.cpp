#include "ledger/block.h"

#include "common/check.h"
#include "common/serialize.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace themis::ledger {

Bytes BlockHeader::encode_unsigned() const {
  Writer w(128);
  w.u32(version);
  w.u64(height);
  w.hash(prev);
  w.hash(merkle_root);
  w.u32(producer);
  w.u32(epoch);
  w.f64(difficulty);
  w.i64(timestamp_nanos);
  w.u64(nonce);
  w.u32(tx_count);
  return w.take();
}

BlockHeader BlockHeader::decode_unsigned(ByteSpan raw) {
  Reader r(raw);
  BlockHeader h;
  h.version = r.u32();
  h.height = r.u64();
  h.prev = r.hash();
  h.merkle_root = r.hash();
  h.producer = r.u32();
  h.epoch = r.u32();
  h.difficulty = r.f64();
  h.timestamp_nanos = r.i64();
  h.nonce = r.u64();
  h.tx_count = r.u32();
  return h;
}

BlockHash BlockHeader::hash() const { return crypto::sha256d(encode_unsigned()); }

Block::Block(BlockHeader header, crypto::Signature signature,
             std::vector<Transaction> transactions)
    : header_(header),
      signature_(signature),
      transactions_(std::move(transactions)) {}

const Block& Block::genesis() {
  static const Block g = [] {
    BlockHeader h;
    h.version = 1;
    h.height = 0;
    h.producer = kNoNode;
    h.difficulty = 1.0;
    // A recognizable, shared constant committed in prev and merkle_root.
    h.prev = crypto::sha256(bytes_of("Themis consortium genesis"));
    h.merkle_root = crypto::merkle_root({});
    Block b(h, crypto::Signature{}, {});
    // Prime the lazy id cache while still inside the (thread-safe) static
    // initializer: genesis() is shared by every concurrently-running trial,
    // and a lazy first id() would race on the mutable cache fields.
    (void)b.id();
    return b;
  }();
  return g;
}

const BlockHash& Block::id() const {
  if (!id_cached_) {
    id_ = header_.hash();
    id_cached_ = true;
  }
  return id_;
}

Hash32 Block::compute_merkle_root() const {
  std::vector<Hash32> leaves;
  leaves.reserve(transactions_.size());
  for (const Transaction& tx : transactions_) leaves.push_back(tx.id());
  return crypto::merkle_root(leaves);
}

std::size_t Block::size_bytes() const {
  return header_.encode_unsigned().size() + crypto::kSignatureSize +
         4 /* tx count */ + header_.tx_count * kCanonicalTxSize;
}

Bytes Block::encode() const {
  Writer w(size_bytes());
  const Bytes header_bytes = header_.encode_unsigned();
  w.raw(header_bytes);
  w.raw(signature_.to_bytes());
  w.u32(static_cast<std::uint32_t>(transactions_.size()));
  for (const Transaction& tx : transactions_) w.raw(tx.encode());
  return w.take();
}

Block Block::decode(ByteSpan raw) {
  // The unsigned header is fixed-size: compute once from a default header.
  static const std::size_t kHeaderSize = BlockHeader().encode_unsigned().size();
  Reader r(raw);
  const Bytes header_bytes = r.raw(kHeaderSize);
  BlockHeader header = BlockHeader::decode_unsigned(header_bytes);
  const Bytes sig_bytes = r.raw(crypto::kSignatureSize);
  const auto signature = crypto::Signature::from_bytes(sig_bytes);
  if (!signature.has_value()) throw DecodeError("malformed signature");
  const std::uint32_t tx_count = r.u32();
  std::vector<Transaction> txs;
  txs.reserve(tx_count);
  for (std::uint32_t i = 0; i < tx_count; ++i) {
    txs.push_back(Transaction::decode(r.raw(kCanonicalTxSize)));
  }
  r.expect_done();
  return Block(header, *signature, std::move(txs));
}

bool satisfies_target(const BlockHash& pow_digest, const UInt256& target) {
  return UInt256::from_be_bytes(pow_digest) < target;
}

}  // namespace themis::ledger
