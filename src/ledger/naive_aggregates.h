// The seed's on-demand DFS subtree aggregates, retained as a differential-
// testing oracle.
//
// BlockTree now maintains subtree_size / subtree_max_height / GEOST equality
// statistics incrementally (see blocktree.h).  These functions recompute the
// same quantities from scratch through the public tree API only, so tests can
// assert that the cached aggregates never drift from first principles — for
// in-order, out-of-order (orphan-adopted), and forked insertion sequences
// alike.  They are deliberately simple, not fast; nothing on a hot path may
// call them.
//
// The buffer-taking overloads exist because the oracle also backs a few
// retained call sites (bench walkthroughs, property tests that sweep whole
// trees); reusing the caller's buffers keeps those sweeps free of per-call
// allocation churn.
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/blocktree.h"

namespace themis::ledger {

struct NaiveTreeAggregates {
  /// Number of blocks in the subtree rooted at `id` (inclusive), by DFS.
  static std::uint64_t subtree_size(const BlockTree& tree, const BlockHash& id);

  /// Deepest height reachable within the subtree rooted at `id`, by DFS.
  static std::uint64_t subtree_max_height(const BlockTree& tree,
                                          const BlockHash& id);

  /// Blocks produced by each of the `n_nodes` consensus nodes within the
  /// subtree rooted at `id`; producers outside [0, n_nodes) are not counted.
  static std::vector<std::uint64_t> subtree_producer_counts(
      const BlockTree& tree, const BlockHash& id, std::size_t n_nodes);
  /// As above, into caller-owned buffers: `out` receives the counts,
  /// `scratch` is the DFS stack.  Neither allocates once warm.
  static void subtree_producer_counts(const BlockTree& tree,
                                      const BlockHash& id, std::size_t n_nodes,
                                      std::vector<std::uint64_t>& out,
                                      std::vector<BlockHash>& scratch);

  /// Eq. 1 equality variance of the subtree rooted at `id`, computed exactly
  /// as the seed did: DFS producer counts, then frequency_variance.
  static double subtree_equality_variance(const BlockTree& tree,
                                          const BlockHash& id,
                                          std::size_t n_nodes);
  /// Allocation-free variant over caller-owned buffers.
  static double subtree_equality_variance(const BlockTree& tree,
                                          const BlockHash& id,
                                          std::size_t n_nodes,
                                          std::vector<std::uint64_t>& counts,
                                          std::vector<BlockHash>& scratch);
};

}  // namespace themis::ledger
