// Shared identifier types for the ledger layer.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace themis::ledger {

/// Index of a consensus node within the consortium node set (N_i in the
/// paper).  Dense indices keep per-node bookkeeping (difficulty multiples,
/// block counts) in flat vectors.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. the genesis block's producer).
inline constexpr NodeId kNoNode = UINT32_MAX;

using BlockHash = Hash32;
using TxId = Hash32;

}  // namespace themis::ledger
