// Durable block storage.
//
// Consensus nodes persist "the complete blockchain data" (§VI-C).  BlockStore
// is a crash-tolerant append-only file: each record is a length-prefixed,
// checksummed canonical block encoding.  On open, the store replays the file,
// verifies every checksum and drops a trailing torn write (the classic
// power-loss case), so a node can rebuild its BlockTree exactly as it was.
//
// A sidecar index (`<path>.idx`) maps every record to (height, id, offset,
// length).  With a valid index, open() skips the O(history) payload scan —
// it validates the index chain against the data file, spot-checks the final
// record's checksum, and scans only records appended after the index was
// last written.  Any inconsistency falls back to a full scan that rebuilds
// the index from scratch, so the index is an accelerator, never a trust
// root.  The in-memory id→record and height maps give O(1) lookup for sync
// range-serving and get_block instead of a linear scan.
//
// prune_below(height) drops every record below a snapshot height (atomic
// rewrite + rename of both files), bounding disk usage once a state snapshot
// covers the pruned prefix.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/block.h"
#include "ledger/blocktree.h"

namespace themis::ledger {

class BlockStore {
 public:
  /// Opens (or creates) the store file, loading the sidecar index when it is
  /// consistent and scanning (+ rebuilding the index) otherwise.
  /// Throws PreconditionError if the path is a directory.
  explicit BlockStore(std::filesystem::path path);

  /// Append a block; flushes both data and index to the OS on every call.
  void append(const Block& block);

  /// Number of valid records currently in the file.
  std::size_t size() const { return records_.size(); }

  /// Decode the i-th block (0-based, insertion order).
  Block read(std::size_t index) const;

  /// Decode every stored block, in insertion order.
  std::vector<Block> read_all() const;

  /// Record metadata from the index (no payload read).
  std::uint64_t height_at(std::size_t index) const;
  const BlockHash& id_at(std::size_t index) const;

  /// O(1) id lookup; nullopt when the block is not stored.
  std::optional<std::size_t> find(const BlockHash& id) const;
  std::optional<Block> read_by_id(const BlockHash& id) const;

  /// Lowest / highest record height (nullopt when empty).  After pruning,
  /// min_height() is the restart floor: nothing below it can be replayed.
  std::optional<std::uint64_t> min_height() const;
  std::optional<std::uint64_t> max_height() const;

  /// Streaming per-record reader.  Unlike read()/read_all(), a Cursor owns a
  /// dedicated file handle that it advances sequentially — one record in
  /// memory at a time, no per-record seek — so replay and sync range-serving
  /// stay O(1) in chain size.  The cursor snapshots the record count at
  /// creation; records appended afterwards are not visited.  Not valid past
  /// the lifetime of its BlockStore.
  class Cursor {
   public:
    /// Decode and return the next block, or nullopt past the last record.
    std::optional<Block> next();

    /// Index of the record next() would return, in insertion order.
    std::size_t index() const { return index_; }

    /// Records remaining (limit - index).
    std::size_t remaining() const { return limit_ - index_; }

   private:
    friend class BlockStore;
    Cursor(const BlockStore& store, std::size_t first, std::size_t limit);

    const BlockStore& store_;
    std::ifstream in_;
    std::size_t index_ = 0;
    std::size_t limit_ = 0;
  };

  /// Open a cursor over records [first, min(first + count, size())).
  Cursor stream(std::size_t first = 0,
                std::size_t count = static_cast<std::size_t>(-1)) const;

  /// Rebuild a BlockTree from the store, streaming one record at a time.
  /// Records below `min_height` are skipped via the index without touching
  /// their payloads (the snapshot-restart path replays only the suffix).
  /// Blocks whose parents are missing stay buffered in the tree's orphan pool
  /// (they count toward the return value only when attached).  Returns the
  /// number of attached blocks.
  std::size_t replay_into(BlockTree& tree, std::uint64_t min_height = 0) const;

  /// Drop every record with height < `height` (atomic rewrite of data and
  /// index, then reopen).  Returns the number of records removed.
  std::size_t prune_below(std::uint64_t height);

  /// Bytes of valid data (excluding any truncated tail that was dropped).
  std::uint64_t valid_bytes() const { return valid_bytes_; }

  /// True if open() found and ignored a torn/corrupt tail.
  bool recovered_from_torn_tail() const { return recovered_; }

  /// True when open() was served by the sidecar index (no full payload
  /// scan); false when the index was missing/stale and got rebuilt.
  bool opened_from_index() const { return opened_from_index_; }

  const std::filesystem::path& path() const { return path_; }
  std::filesystem::path index_path() const {
    return std::filesystem::path(path_.string() + ".idx");
  }

 private:
  struct Record {
    std::uint64_t offset = 0;  ///< payload offset (past the 8-byte header)
    std::uint32_t length = 0;
    std::uint64_t height = 0;
    BlockHash id{};
  };

  void open_files();
  void load_or_rebuild();
  /// Full payload scan from `start_offset`, appending records.  Returns the
  /// offset past the last valid record.
  std::uint64_t scan_from(std::uint64_t start_offset);
  bool try_load_index();
  void write_index_file() const;
  void append_index_entry(const Record& record);

  std::filesystem::path path_;
  mutable std::ifstream reader_;
  std::ofstream writer_;
  std::ofstream index_writer_;
  std::vector<Record> records_;
  std::unordered_map<BlockHash, std::size_t, Hash32Hasher> by_id_;
  std::uint64_t valid_bytes_ = 0;
  bool recovered_ = false;
  bool opened_from_index_ = false;
};

}  // namespace themis::ledger
