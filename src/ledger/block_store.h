// Durable block storage.
//
// Consensus nodes persist "the complete blockchain data" (§VI-C).  BlockStore
// is a crash-tolerant append-only file: each record is a length-prefixed,
// checksummed canonical block encoding.  On open, the store replays the file,
// verifies every checksum and drops a trailing torn write (the classic
// power-loss case), so a node can rebuild its BlockTree exactly as it was.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "ledger/block.h"
#include "ledger/blocktree.h"

namespace themis::ledger {

class BlockStore {
 public:
  /// Opens (or creates) the store file and scans existing records.
  /// Throws PreconditionError if the path is a directory.
  explicit BlockStore(std::filesystem::path path);

  /// Append a block; flushes to the OS on every call.
  void append(const Block& block);

  /// Number of valid records currently in the file.
  std::size_t size() const { return offsets_.size(); }

  /// Decode the i-th block (0-based, insertion order).
  Block read(std::size_t index) const;

  /// Decode every stored block, in insertion order.
  std::vector<Block> read_all() const;

  /// Streaming per-record reader.  Unlike read()/read_all(), a Cursor owns a
  /// dedicated file handle that it advances sequentially — one record in
  /// memory at a time, no per-record seek — so replay and sync range-serving
  /// stay O(1) in chain size.  The cursor snapshots the record count at
  /// creation; records appended afterwards are not visited.  Not valid past
  /// the lifetime of its BlockStore.
  class Cursor {
   public:
    /// Decode and return the next block, or nullopt past the last record.
    std::optional<Block> next();

    /// Index of the record next() would return, in insertion order.
    std::size_t index() const { return index_; }

    /// Records remaining (limit - index).
    std::size_t remaining() const { return limit_ - index_; }

   private:
    friend class BlockStore;
    Cursor(const BlockStore& store, std::size_t first, std::size_t limit);

    const BlockStore& store_;
    std::ifstream in_;
    std::size_t index_ = 0;
    std::size_t limit_ = 0;
  };

  /// Open a cursor over records [first, min(first + count, size())).
  Cursor stream(std::size_t first = 0,
                std::size_t count = static_cast<std::size_t>(-1)) const;

  /// Rebuild a BlockTree from the store, streaming one record at a time.
  /// Blocks whose parents are missing stay buffered in the tree's orphan pool
  /// (they count toward the return value only when attached).  Returns the
  /// number of attached blocks.
  std::size_t replay_into(BlockTree& tree) const;

  /// Bytes of valid data (excluding any truncated tail that was dropped).
  std::uint64_t valid_bytes() const { return valid_bytes_; }

  /// True if open() found and ignored a torn/corrupt tail.
  bool recovered_from_torn_tail() const { return recovered_; }

  const std::filesystem::path& path() const { return path_; }

 private:
  struct Record {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };

  void scan();

  std::filesystem::path path_;
  mutable std::ifstream reader_;
  std::ofstream writer_;
  std::vector<Record> offsets_;
  std::uint64_t valid_bytes_ = 0;
  bool recovered_ = false;
};

}  // namespace themis::ledger
