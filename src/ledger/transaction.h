// Transactions.
//
// The evaluation (§VII-A) fixes the transaction size at 512 bytes, so the
// canonical encoding pads the payload to make every transaction serialize to
// exactly kCanonicalTxSize bytes.  The id is the double-SHA-256 of the
// canonical encoding.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "crypto/schnorr.h"
#include "ledger/types.h"

namespace themis::ledger {

/// Canonical wire size of one transaction (paper §VII-A: 512 bytes).
inline constexpr std::size_t kCanonicalTxSize = 512;

class Transaction {
 public:
  Transaction() = default;
  /// Payload longer than the canonical capacity throws PreconditionError.
  Transaction(NodeId sender, std::uint64_t nonce, std::int64_t timestamp_nanos,
              Bytes payload);

  NodeId sender() const { return sender_; }
  std::uint64_t nonce() const { return nonce_; }
  std::int64_t timestamp_nanos() const { return timestamp_nanos_; }
  const Bytes& payload() const { return payload_; }

  /// Double-SHA-256 of the canonical encoding; cached.
  const TxId& id() const;

  /// Canonical 512-byte encoding.
  Bytes encode() const;
  /// Decode; throws DecodeError on malformed input.
  static Transaction decode(ByteSpan raw);

  bool operator==(const Transaction& rhs) const {
    return sender_ == rhs.sender_ && nonce_ == rhs.nonce_ &&
           timestamp_nanos_ == rhs.timestamp_nanos_ && payload_ == rhs.payload_;
  }

 private:
  NodeId sender_ = kNoNode;
  std::uint64_t nonce_ = 0;
  std::int64_t timestamp_nanos_ = 0;
  Bytes payload_;

  mutable bool id_cached_ = false;
  mutable TxId id_{};
};

/// Maximum payload bytes that fit in the canonical encoding.
std::size_t max_tx_payload();

/// A transaction plus its sender's Schnorr signature over the transaction id.
///
/// The signature is the *admission credential* for the client-facing pipeline:
/// the RPC gateway and the p2p tx relay verify it against the sender's
/// consortium key before a transaction may enter the pool.  It is NOT part of
/// the canonical 512-byte encoding — block bodies and merkle roots commit to
/// the bare transaction, exactly as before.  Consortium keys in this
/// reproduction are deterministic (Keypair::from_node_id) and BIP-340 nonces
/// are derived deterministically, so the signature of a given transaction is
/// a pure function of its contents and can be recomputed bit-identically,
/// e.g. when a reorg returns a block-sourced transaction to the pool.
struct SignedTransaction {
  Transaction tx;
  crypto::Signature signature{};

  /// Canonical tx encoding (512 B) followed by the 64-byte signature.
  Bytes encode() const;
  /// Decode; throws DecodeError on malformed input (wrong size, bad tx).
  static SignedTransaction decode(ByteSpan raw);

  /// Verify the signature over tx.id() under the sender's public key.
  bool verify(const crypto::PublicKey& sender_key) const;

  bool operator==(const SignedTransaction&) const = default;
};

/// Wire size of one signed transaction (canonical tx + signature).
inline constexpr std::size_t kSignedTxSize =
    kCanonicalTxSize + crypto::kSignatureSize;

/// Sign `tx` with the deterministic consortium keypair of its sender.
SignedTransaction sign_transaction(Transaction tx);

}  // namespace themis::ledger
