// The local block tree.
//
// Each consensus node keeps every valid block it has seen in a tree rooted at
// the genesis block (§III: "Valid blocks will be added to the local block
// tree").  Fork-choice rules (longest-chain, GHOST, GEOST) walk this tree and
// rank sibling subtrees by per-subtree aggregates:
//
//   * subtree_size        — block count (GHOST / GEOST weight),
//   * subtree_max_height  — deepest reachable height (longest-chain),
//   * per-producer counts — GEOST's Eq. 1 equality variance.
//
// These used to be recomputed by a full DFS on every query, which made every
// block arrival cost O(subtree × n_nodes) and the simulated consensus cost
// grow quadratically in chain length.  They are now maintained
// *incrementally*: `insert` (including orphan adoption) propagates
// `subtree_size` / `subtree_max_height` up the root path in O(depth), and the
// producer-count statistics GEOST needs are materialized lazily per fork
// candidate and then kept up to date by the same root-path walk, with the
// Eq. 1 variance cached per entry and recomputed (allocation-free and
// bit-identical to the original DFS arithmetic) only when the subtree
// changed.  Aggregate queries are O(1); the retained DFS versions live in
// ledger/naive_aggregates.h as the differential-testing oracle.
//
// On long chains even the O(depth) root-path walk dominates (every insert
// touches thousands of finalized ancestors nobody will ever query again), so
// consumers with a finality notion cap it with `set_aggregate_floor`: the
// walk stops once it drops below the floor, keeping per-insert work
// O(tip height − floor).  The floor is purely a performance hint — queries
// below it stay exact, they just recompute on demand against the
// exact-cached frontier at the floor instead of reading a cache.  PowNode
// advances the floor with its finalized anchor (fork-choice walks never
// start below it); trees that never set a floor keep every entry exact.
//
// Storage is split by access pattern: the root-path walk is pure pointer
// chasing, so the five fields it touches live in a contiguous `Hot` array
// indexed by insertion order (ancestors of a fresh block have nearby indices,
// so the walk stays within a few cache lines instead of hopping across
// node-based map allocations — at thousands of simulated nodes this is the
// difference between the walk being latency-bound and throughput-bound).
// Everything queried per-block (the block pointer, children, receipt order)
// lives in a parallel `Cold` deque whose references are stable across
// inserts, preserving the old map-backed reference-stability guarantees of
// `children()`.
//
// Blocks can arrive out of order over gossip; children that arrive before
// their parent wait in an orphan buffer and are attached recursively once the
// parent shows up.
//
// Thread-safety: the equality-statistics accessors cache through `mutable`
// members, so even `const` BlockTree methods are NOT safe for concurrent
// calls.  Trees are per-node, per-trial objects in the simulator; the
// parallel trial runner never shares one across threads.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/block.h"
#include "ledger/types.h"

namespace themis::ledger {

class BlockTree {
 public:
  /// A tree always starts from the shared genesis block.
  BlockTree();
  explicit BlockTree(BlockPtr genesis);

  /// All internal links are indices, so moves are cheap and safe; copying
  /// would be correct too but is expensive and never wanted.
  BlockTree(BlockTree&&) = default;
  BlockTree& operator=(BlockTree&&) = default;
  BlockTree(const BlockTree&) = delete;
  BlockTree& operator=(const BlockTree&) = delete;

  enum class InsertResult {
    inserted,   ///< attached to the tree (possibly pulling in orphans)
    duplicate,  ///< already present
    orphaned,   ///< parent unknown; buffered until it arrives
  };

  InsertResult insert(BlockPtr block);

  bool contains(const BlockHash& id) const { return index_.contains(id); }
  BlockPtr block(const BlockHash& id) const;
  const BlockHash& genesis_hash() const { return genesis_hash_; }

  /// Children of a block in local receipt order ("the first received
  /// sub-tree" tie-break in GEOST/GHOST depends on this order).
  const std::vector<BlockHash>& children(const BlockHash& id) const;
  std::optional<BlockHash> parent(const BlockHash& id) const;
  std::uint64_t height(const BlockHash& id) const;
  /// Monotone local arrival index (0 = genesis).
  std::uint64_t receipt_seq(const BlockHash& id) const;

  /// Number of blocks in the subtree rooted at `id` (inclusive).  O(1) at or
  /// above the aggregate floor; exact frontier-bounded recompute below it.
  std::uint64_t subtree_size(const BlockHash& id) const;

  /// Deepest height reachable within the subtree rooted at `id`.  O(1) at or
  /// above the aggregate floor; exact frontier-bounded recompute below it.
  std::uint64_t subtree_max_height(const BlockHash& id) const;

  /// Performance hint from consumers with a finality notion (monotone; never
  /// moves down).  Incremental aggregate maintenance stops below this
  /// height, so per-insert cost is O(tip height − floor) instead of
  /// O(depth).  Queries below the floor remain exact but recompute on
  /// demand.  Callers promise nothing — a fork-choice walk starting below
  /// the floor is still correct, just slower.  Raising the floor also
  /// retires equality statistics tracked for entries that sank below it,
  /// so long runs don't accumulate stats for settled forks.
  void set_aggregate_floor(std::uint64_t height);
  std::uint64_t aggregate_floor() const { return aggregate_floor_; }

  /// Variance of block-producing frequency within the subtree rooted at `id`
  /// (Eq. 1 applied to the subtree over `n_nodes` producers).  Amortized
  /// O(1): per-producer counts are materialized once per queried entry (one
  /// DFS), updated incrementally afterwards, and the variance double is
  /// cached until the subtree changes.  Bit-identical to the naive
  /// DFS + frequency_variance path.  Changing `n_nodes` between calls
  /// flushes the statistics (cheap only if not alternating).
  double subtree_equality_variance(const BlockHash& id,
                                   std::size_t n_nodes) const;

  /// Blocks produced by each of the `n_nodes` consensus nodes within the
  /// subtree rooted at `id` (inclusive).  Producers outside [0, n_nodes) —
  /// e.g. the genesis sentinel — are not counted.  O(subtree) DFS; the
  /// overload reuses the caller's buffer to avoid per-call allocation.
  std::vector<std::uint64_t> subtree_producer_counts(const BlockHash& id,
                                                     std::size_t n_nodes) const;
  void subtree_producer_counts(const BlockHash& id, std::size_t n_nodes,
                               std::vector<std::uint64_t>& out) const;

  /// Deepest height present in the tree.
  std::uint64_t max_height() const { return max_height_; }

  /// Chain of block hashes from genesis (inclusive) to `head` (inclusive).
  std::vector<BlockHash> chain_to(const BlockHash& head) const;

  /// True when `ancestor` lies on the path from genesis to `descendant`
  /// (a block is its own ancestor).  Walks parent indices from `descendant`
  /// down to `ancestor`'s height, so the cost is the height difference, not
  /// the full root path.
  bool is_ancestor(const BlockHash& ancestor, const BlockHash& descendant) const;

  /// Deepest block that is an ancestor of both `a` and `b` (possibly one of
  /// them).  O(height(a) + height(b) - 2·height(lca)) parent-index walk.
  BlockHash lowest_common_ancestor(const BlockHash& a, const BlockHash& b) const;

  /// All leaves (blocks without children).
  std::vector<BlockHash> tips() const;

  std::size_t size() const { return hot_.size(); }
  std::size_t orphan_count() const;

 private:
  static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

  /// GEOST's sufficient statistics for one tracked subtree: exact integer
  /// per-producer counts plus the cached Eq. 1 variance derived from them.
  /// Counts are SPARSE — (producer, count) pairs, unsorted.  A fork
  /// candidate's subtree holds far fewer distinct producers than the
  /// consensus set, and a dense vector costs 8·n_nodes bytes; tracking one
  /// dense vector per candidate per tree made simulator memory grow
  /// O(n² · forks).  The dense layout is materialized into a scratch buffer
  /// only when the variance must actually be recomputed (memo miss), which
  /// is already Θ(n) there.
  struct EqualityStats {
    std::vector<std::pair<NodeId, std::uint32_t>> counts;
    std::uint64_t total = 0;  ///< Σ counts
    double variance = 0.0;    ///< cached Eq. 1 value
    bool variance_valid = false;
    /// 128-bit additive fingerprint of the counts: each increment of
    /// producer p to value c adds hash(p, c) to both halves (different
    /// seeds).  Sums are order-independent, so any two count multisets
    /// reached by any increment interleaving agree iff they are equal (up
    /// to a 2^-128 collision).  Keys the cross-tree variance memo: in a
    /// simulation, thousands of per-node trees converge on identical
    /// subtree counts and would each pay the Θ(n) variance recompute
    /// without it.
    std::uint64_t fp_lo = 0;
    std::uint64_t fp_hi = 0;
    /// hot_ index this slot serves, kNoIndex when the slot is free (on the
    /// equality_free_ list).  Lets the floor advance release dead stats.
    std::uint32_t owner = kNoIndex;

    /// Increment producer `p`, returning its new count.
    std::uint32_t bump(NodeId p) {
      for (auto& [q, c] : counts) {
        if (q == p) return ++c;
      }
      counts.emplace_back(p, 1);
      return 1;
    }
  };

  /// The fields the per-insert propagation walk touches, 32 bytes per entry
  /// in one contiguous array: two entries per cache line, and a fresh
  /// block's ancestors sit at nearby indices (they were inserted recently),
  /// so the walk mostly hits lines that are already resident.
  struct Hot {
    std::uint64_t height = 0;
    std::uint64_t subtree_size = 1;
    std::uint64_t subtree_max_height = 0;
    std::uint32_t parent = kNoIndex;    ///< index of parent; kNoIndex = genesis
    std::uint32_t equality = kNoIndex;  ///< index into equality_pool_
  };

  /// Per-block payload touched only by point queries, kept out of the walk's
  /// way.  Deque storage keeps `children()` references stable across
  /// inserts, as the old node-based map did.
  struct Cold {
    BlockPtr block;
    BlockHash id{};
    BlockHash parent{};
    std::vector<BlockHash> children;
    std::uint64_t receipt_seq = 0;
  };

  std::uint32_t index_of(const BlockHash& id) const;
  /// Append the entry for `block` at index `idx` and link it under `parent`.
  void attach(BlockPtr block, std::uint32_t parent, std::uint32_t idx);
  /// Exact aggregates for entries whose incremental caches were frozen when
  /// the floor passed them: DFS that bottoms out at the first descendant at
  /// or above the floor, whose cache is still exact.
  std::uint64_t cold_subtree_size(std::uint32_t root) const;
  std::uint64_t cold_subtree_max_height(std::uint32_t root) const;
  /// Materialize (or fetch) equality statistics for entry `idx`, flushing
  /// all tracked statistics first if `n_nodes` differs from the tracked
  /// width.
  EqualityStats& equality_stats(std::uint32_t idx, std::size_t n_nodes) const;

  std::unordered_map<BlockHash, std::uint32_t, Hash32Hasher> index_;
  /// Mutable because lazy equality tracking links pool slots from `const`
  /// queries (see the thread-safety note above).
  mutable std::vector<Hot> hot_;
  std::deque<Cold> cold_;
  std::unordered_map<BlockHash, std::vector<BlockPtr>, Hash32Hasher> orphans_;
  BlockHash genesis_hash_{};
  std::uint64_t next_receipt_seq_ = 0;
  std::uint64_t max_height_ = 0;
  /// See set_aggregate_floor().  0 = maintain every entry (the default).
  std::uint64_t aggregate_floor_ = 0;

  /// Tracked equality statistics; Hot::equality indexes into this (deque:
  /// references handed out by equality_stats stay valid across growth).
  /// Slots freed by the floor advance are recycled via equality_free_.
  mutable std::deque<EqualityStats> equality_pool_;
  mutable std::vector<std::uint32_t> equality_free_;
  mutable std::size_t equality_n_nodes_ = 0;
  /// Reusable DFS scratch for materialization / producer-count queries.
  mutable std::vector<std::uint32_t> dfs_scratch_;
  /// Reusable counts buffer for below-the-floor variance recomputes.
  mutable std::vector<std::uint64_t> counts_scratch_;
};

}  // namespace themis::ledger
