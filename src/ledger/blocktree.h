// The local block tree.
//
// Each consensus node keeps every valid block it has seen in a tree rooted at
// the genesis block (§III: "Valid blocks will be added to the local block
// tree").  Fork-choice rules (longest-chain, GHOST, GEOST) walk this tree;
// GEOST additionally needs per-subtree block counts and per-producer counts,
// which are computed on demand — forks near the tip involve only small
// subtrees, so on-demand DFS is both simple and fast.
//
// Blocks can arrive out of order over gossip; children that arrive before
// their parent wait in an orphan buffer and are attached recursively once the
// parent shows up.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/block.h"
#include "ledger/types.h"

namespace themis::ledger {

class BlockTree {
 public:
  /// A tree always starts from the shared genesis block.
  BlockTree();
  explicit BlockTree(BlockPtr genesis);

  enum class InsertResult {
    inserted,   ///< attached to the tree (possibly pulling in orphans)
    duplicate,  ///< already present
    orphaned,   ///< parent unknown; buffered until it arrives
  };

  InsertResult insert(BlockPtr block);

  bool contains(const BlockHash& id) const { return entries_.contains(id); }
  BlockPtr block(const BlockHash& id) const;
  const BlockHash& genesis_hash() const { return genesis_hash_; }

  /// Children of a block in local receipt order ("the first received
  /// sub-tree" tie-break in GEOST/GHOST depends on this order).
  const std::vector<BlockHash>& children(const BlockHash& id) const;
  std::optional<BlockHash> parent(const BlockHash& id) const;
  std::uint64_t height(const BlockHash& id) const;
  /// Monotone local arrival index (0 = genesis).
  std::uint64_t receipt_seq(const BlockHash& id) const;

  /// Number of blocks in the subtree rooted at `id` (inclusive).
  std::uint64_t subtree_size(const BlockHash& id) const;

  /// Blocks produced by each of the `n_nodes` consensus nodes within the
  /// subtree rooted at `id` (inclusive).  Producers outside [0, n_nodes) —
  /// e.g. the genesis sentinel — are not counted.
  std::vector<std::uint64_t> subtree_producer_counts(const BlockHash& id,
                                                     std::size_t n_nodes) const;

  /// Deepest height present in the tree.
  std::uint64_t max_height() const { return max_height_; }

  /// Chain of block hashes from genesis (inclusive) to `head` (inclusive).
  std::vector<BlockHash> chain_to(const BlockHash& head) const;

  /// True when `ancestor` lies on the path from genesis to `descendant`
  /// (a block is its own ancestor).
  bool is_ancestor(const BlockHash& ancestor, const BlockHash& descendant) const;

  /// All leaves (blocks without children).
  std::vector<BlockHash> tips() const;

  std::size_t size() const { return entries_.size(); }
  std::size_t orphan_count() const;

 private:
  struct Entry {
    BlockPtr block;
    BlockHash parent{};
    std::vector<BlockHash> children;
    std::uint64_t receipt_seq = 0;
  };

  const Entry& entry(const BlockHash& id) const;
  void attach(BlockPtr block);

  std::unordered_map<BlockHash, Entry, Hash32Hasher> entries_;
  std::unordered_map<BlockHash, std::vector<BlockPtr>, Hash32Hasher> orphans_;
  BlockHash genesis_hash_{};
  std::uint64_t next_receipt_seq_ = 0;
  std::uint64_t max_height_ = 0;
};

}  // namespace themis::ledger
