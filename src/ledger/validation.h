// Block validation pipeline.
//
// §III specifies the receiver-side checks, in order: (1) the header signature
// belongs to a node in the consortium node set, (2) the claimed difficulty
// matches the verifier's local difficulty table and the header hash satisfies
// it, (3) the transactions are valid.  The pipeline is expressed against two
// small interfaces so the consensus layer can plug in its difficulty policy
// and key registry without a dependency cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

#include "crypto/schnorr.h"
#include "ledger/block.h"

namespace themis::ledger {

enum class BlockCheck {
  ok,
  unknown_producer,    ///< producer id not in the consensus node set
  bad_signature,       ///< header signature does not verify
  wrong_difficulty,    ///< claimed difficulty != locally computed difficulty
  pow_not_satisfied,   ///< header hash >= target for the claimed difficulty
  bad_merkle_root,     ///< header does not commit to the transaction list
  bad_transaction,     ///< malformed or duplicated transaction
  bad_height,          ///< height does not extend the declared parent
};

std::string_view to_string(BlockCheck check);

/// Verifier-side context: how to resolve producer keys and difficulties.
struct ValidationContext {
  /// Public key of a consensus node, or nullopt if not a member.
  std::function<std::optional<crypto::PublicKey>(NodeId)> public_key;
  /// Expected difficulty of `producer` for a block extending `parent`, or
  /// nullopt if the verifier cannot determine it (treated as
  /// wrong_difficulty).  Difficulty is a pure function of the parent chain,
  /// so all verifiers agree without extra communication (§IV-A).
  std::function<std::optional<double>(NodeId producer, const BlockHash& parent)>
      expected_difficulty;
  /// Height of the parent block, or nullopt if the parent is unknown (skips
  /// the height check; the block tree will buffer the block as an orphan).
  std::function<std::optional<std::uint64_t>(const BlockHash&)> parent_height;

  bool check_signature = true;
  bool check_pow = true;
  /// When false, the body commitment (merkle root, tx_count agreement) is
  /// skipped: large-scale simulations carry metadata-only blocks whose
  /// declared tx_count accounts for wire size without materialized bodies.
  bool check_body = true;
};

/// Run the full §III validation pipeline; returns the first failing check.
BlockCheck validate_block(const Block& block, const ValidationContext& ctx);

/// Stateless transaction sanity checks (canonical size, payload bounds).
bool validate_transaction(const Transaction& tx);

}  // namespace themis::ledger
