// Blocks and block headers.
//
// The header carries everything the paper's verification pipeline needs
// (§III): the producer id (to look up its per-epoch difficulty in the local
// difficulty table), the claimed difficulty, the PoW nonce, and a Schnorr
// signature over the header hash proving consortium membership.  The PoW
// digest and the block id are the double-SHA-256 of the unsigned header.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/uint256.h"
#include "crypto/schnorr.h"
#include "ledger/transaction.h"
#include "ledger/types.h"

namespace themis::ledger {

struct BlockHeader {
  std::uint32_t version = 1;
  std::uint64_t height = 0;
  BlockHash prev{};
  Hash32 merkle_root{};
  NodeId producer = kNoNode;
  /// Difficulty adjustment epoch index (e in the paper).
  std::uint32_t epoch = 0;
  /// Claimed block-producing difficulty D_i^e = m_i^e * D_base^e.
  double difficulty = 1.0;
  /// Production time in simulated nanoseconds.
  std::int64_t timestamp_nanos = 0;
  std::uint64_t nonce = 0;
  /// Number of transactions committed by this block.  Large-scale network
  /// simulations account for body size without materializing bodies; when a
  /// body is present, validation enforces tx_count == transactions().size().
  std::uint32_t tx_count = 0;

  /// Encoding of every field above (the signed/hashed preimage).
  Bytes encode_unsigned() const;
  static BlockHeader decode_unsigned(ByteSpan raw);

  /// Double-SHA-256 of the unsigned encoding: both the proof-of-work digest
  /// compared against the target and the block id.
  BlockHash hash() const;

  bool operator==(const BlockHeader&) const = default;
};

class Block {
 public:
  Block() = default;
  Block(BlockHeader header, crypto::Signature signature,
        std::vector<Transaction> transactions);

  /// The genesis block shared by all nodes (a constant; §V-B).
  static const Block& genesis();

  const BlockHeader& header() const { return header_; }
  const crypto::Signature& signature() const { return signature_; }
  const std::vector<Transaction>& transactions() const { return transactions_; }

  const BlockHash& id() const;
  std::uint64_t height() const { return header_.height; }
  NodeId producer() const { return header_.producer; }

  /// Merkle root over the transaction ids (what the header must commit to).
  Hash32 compute_merkle_root() const;

  /// Size of the full canonical encoding in bytes, counting header.tx_count
  /// transactions (drives link transmission delay in the network simulator,
  /// including for metadata-only blocks whose bodies are not materialized).
  std::size_t size_bytes() const;

  Bytes encode() const;
  static Block decode(ByteSpan raw);

 private:
  BlockHeader header_;
  crypto::Signature signature_{};
  std::vector<Transaction> transactions_;

  mutable bool id_cached_ = false;
  mutable BlockHash id_{};
};

using BlockPtr = std::shared_ptr<const Block>;

/// Build, hash and check helpers used throughout the consensus layer.
bool satisfies_target(const BlockHash& pow_digest, const UInt256& target);

}  // namespace themis::ledger
