#include "ledger/block_store.h"

#include "common/check.h"
#include "common/serialize.h"
#include "crypto/sha256.h"

namespace themis::ledger {

namespace {

constexpr std::uint32_t kRecordMagic = 0x544d4253;  // "SBMT"

/// Record layout: magic(4) | length(4) | payload | checksum(4).
/// The checksum is the first 4 bytes of sha256d(payload).
std::uint32_t checksum_of(ByteSpan payload) {
  const Hash32 digest = crypto::sha256d(payload);
  return static_cast<std::uint32_t>(digest[0]) |
         (static_cast<std::uint32_t>(digest[1]) << 8) |
         (static_cast<std::uint32_t>(digest[2]) << 16) |
         (static_cast<std::uint32_t>(digest[3]) << 24);
}

}  // namespace

BlockStore::BlockStore(std::filesystem::path path) : path_(std::move(path)) {
  expects(!std::filesystem::is_directory(path_),
          "block store path must be a file");
  if (!std::filesystem::exists(path_)) {
    std::ofstream(path_, std::ios::binary).flush();
  }
  scan();
  writer_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
  ensures(writer_.is_open(), "failed to open block store for writing");
  // Position after the last *valid* record: a torn tail is overwritten.
  writer_.seekp(static_cast<std::streamoff>(valid_bytes_));
  reader_.open(path_, std::ios::binary);
  ensures(reader_.is_open(), "failed to open block store for reading");
}

void BlockStore::scan() {
  std::ifstream in(path_, std::ios::binary);
  ensures(in.is_open(), "failed to open block store for scanning");

  const std::uint64_t file_size = std::filesystem::file_size(path_);
  std::uint64_t offset = 0;
  while (offset + 8 <= file_size) {
    std::uint8_t header[8];
    in.seekg(static_cast<std::streamoff>(offset));
    in.read(reinterpret_cast<char*>(header), 8);
    if (!in.good()) break;
    Reader r(ByteSpan(header, 8));
    const std::uint32_t magic = r.u32();
    const std::uint32_t length = r.u32();
    if (magic != kRecordMagic || offset + 8 + length + 4 > file_size) {
      recovered_ = true;  // torn or corrupt tail: stop here
      break;
    }
    Bytes payload(length);
    in.read(reinterpret_cast<char*>(payload.data()), length);
    std::uint8_t check_raw[4];
    in.read(reinterpret_cast<char*>(check_raw), 4);
    if (!in.good()) {
      recovered_ = true;
      break;
    }
    Reader cr(ByteSpan(check_raw, 4));
    if (cr.u32() != checksum_of(payload)) {
      recovered_ = true;
      break;
    }
    offsets_.push_back(Record{offset + 8, length});
    offset += 8 + length + 4;
  }
  if (offset < file_size) recovered_ = true;
  valid_bytes_ = offset;
}

void BlockStore::append(const Block& block) {
  const Bytes payload = block.encode();
  Writer w(payload.size() + 16);
  w.u32(kRecordMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u32(checksum_of(payload));
  const Bytes& record = w.buffer();

  writer_.write(reinterpret_cast<const char*>(record.data()),
                static_cast<std::streamsize>(record.size()));
  writer_.flush();
  ensures(writer_.good(), "block store write failed");

  offsets_.push_back(
      Record{valid_bytes_ + 8, static_cast<std::uint32_t>(payload.size())});
  valid_bytes_ += record.size();
}

Block BlockStore::read(std::size_t index) const {
  expects(index < offsets_.size(), "block index out of range");
  const Record& record = offsets_[index];
  Bytes payload(record.length);
  reader_.clear();
  reader_.seekg(static_cast<std::streamoff>(record.offset));
  reader_.read(reinterpret_cast<char*>(payload.data()), record.length);
  ensures(reader_.good(), "block store read failed");
  return Block::decode(payload);
}

std::vector<Block> BlockStore::read_all() const {
  std::vector<Block> out;
  out.reserve(offsets_.size());
  for (std::size_t i = 0; i < offsets_.size(); ++i) out.push_back(read(i));
  return out;
}

BlockStore::Cursor::Cursor(const BlockStore& store, std::size_t first,
                           std::size_t limit)
    : store_(store), index_(first), limit_(limit) {
  in_.open(store.path_, std::ios::binary);
  ensures(in_.is_open(), "failed to open block store cursor");
  if (index_ < limit_) {
    in_.seekg(static_cast<std::streamoff>(store.offsets_[index_].offset));
  }
}

std::optional<Block> BlockStore::Cursor::next() {
  if (index_ >= limit_) return std::nullopt;
  const Record& record = store_.offsets_[index_];
  Bytes payload(record.length);
  in_.read(reinterpret_cast<char*>(payload.data()), record.length);
  // Consume the trailing checksum plus the next record's header so the
  // stream stays sequential (scan() already verified every checksum).
  char skip[12];
  in_.read(skip, index_ + 1 < limit_ ? 12 : 4);
  ensures(in_.good() || index_ + 1 >= limit_, "block store cursor read failed");
  ++index_;
  return Block::decode(payload);
}

BlockStore::Cursor BlockStore::stream(std::size_t first,
                                      std::size_t count) const {
  expects(first <= offsets_.size(), "cursor start out of range");
  const std::size_t limit =
      count > offsets_.size() - first ? offsets_.size() : first + count;
  return Cursor(*this, first, limit);
}

std::size_t BlockStore::replay_into(BlockTree& tree) const {
  std::size_t attached = 0;
  Cursor cursor = stream();
  while (auto block = cursor.next()) {
    auto ptr = std::make_shared<const Block>(*std::move(block));
    if (tree.insert(std::move(ptr)) == BlockTree::InsertResult::inserted) {
      ++attached;
    }
  }
  return attached;
}

}  // namespace themis::ledger
